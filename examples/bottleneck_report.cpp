// Bottleneck identification and code-restructuring hints (paper §1: FlexCL
// "helps to identify the performance bottlenecks on FPGAs [and] give code
// restructuring hints").
//
// Diagnoses three deliberately different kernels — memory-starved, recurrence-
// limited, and local-port-limited — and prints what the model thinks is wrong
// plus what to do about it.
//
//   $ ./bottleneck_report
#include <cstdio>

#include "ir/lower.h"
#include "model/bottleneck.h"

using namespace flexcl;

namespace {

void diagnoseKernel(const char* title, const std::string& source,
                    const model::DesignPoint& design, std::uint64_t n,
                    int bufferCount) {
  DiagnosticEngine diags;
  auto program = ir::compileOpenCl(source, diags);
  if (!program) {
    std::fprintf(stderr, "%s failed to compile:\n%s", title, diags.str().c_str());
    return;
  }
  std::vector<std::vector<std::uint8_t>> buffers(
      static_cast<std::size_t>(bufferCount), std::vector<std::uint8_t>(n * 4, 1));
  model::LaunchInfo launch;
  launch.fn = program->module->functions().front().get();
  launch.range.global = {n, 1, 1};
  for (int b = 0; b < bufferCount; ++b) {
    launch.args.push_back(interp::KernelArg::buffer(b));
  }
  launch.buffers = &buffers;

  model::FlexCl flexcl(model::Device::virtex7());
  const model::Estimate est = flexcl.estimate(launch, design);
  if (!est.ok) {
    std::fprintf(stderr, "%s estimate failed: %s\n", title, est.error.c_str());
    return;
  }
  const model::BottleneckReport report = model::diagnose(est, design);

  std::printf("=== %s ===\n", title);
  std::printf("design: %s | mode %s | %0.f cycles\n", design.str().c_str(),
              model::commModeName(est.mode), est.cycles);
  std::printf("II_comp %.1f (RecMII %d, ResMII %d) | L_mem/wi %.1f | II_wi %.1f\n",
              est.pe.iiComp, est.pe.recMii, est.pe.resMii, est.memory.lMemWi,
              est.iiWi);
  std::printf("%s\n", report.str().c_str());
}

}  // namespace

int main() {
  model::DesignPoint dp;
  dp.workGroupSize = {64, 1, 1};
  dp.peParallelism = 2;
  dp.numComputeUnits = 2;

  // 1. Scattered reads, no reuse: the DRAM starves the pipeline.
  diagnoseKernel("scatter-gather (memory-starved)",
                 R"CL(
__kernel void gather(__global const float* a, __global float* b) {
  int i = get_global_id(0);
  b[i] = a[(i * 977) % 2048] + a[(i * 353) % 2048] + a[(i * 131) % 2048];
}
)CL",
                 dp, 2048, 2);

  // 2. Scan through local memory: work-item i needs work-item i-1's value —
  //    the classic recurrence that bounds the pipeline II (paper Figure 3).
  diagnoseKernel("local-memory scan (recurrence-limited)",
                 R"CL(
__kernel void scan(__global const float* in, __global float* out) {
  __local float B[256];
  int tid = get_local_id(0);
  float prev = 0.0f;
  if (tid > 0) { prev = B[tid - 1]; }
  B[tid] = in[get_global_id(0)] * 0.5f + exp(prev * 0.01f);
  out[get_global_id(0)] = B[tid];
}
)CL",
                 dp, 2048, 2);

  // 3. Wide local-memory fan-in: four reads per work-item through two ports.
  model::DesignPoint wide = dp;
  wide.peParallelism = 8;
  diagnoseKernel("local fan-in (port-limited)",
                 R"CL(
__kernel void fanin(__global const float* in, __global float* out) {
  __local float t[256];
  int l = get_local_id(0);
  t[l] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  int ls = get_local_size(0);
  out[get_global_id(0)] =
      t[l] + t[(l + 1) % ls] + t[(l + 7) % ls] + t[(l + 13) % ls];
}
)CL",
                 wide, 2048, 2);
  return 0;
}
