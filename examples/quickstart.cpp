// Quickstart: estimate an OpenCL kernel's FPGA performance with FlexCL.
//
// Compiles a kernel from source, describes its launch, and asks the model for
// an estimate at one design point — then cross-checks against the cycle-level
// system simulator. This is the 20-line "hello world" of the library.
//
//   $ ./quickstart
#include <cstdio>

#include "ir/lower.h"
#include "model/flexcl.h"
#include "sim/system_sim.h"

int main() {
  using namespace flexcl;

  // 1. An OpenCL kernel, exactly as you would feed it to SDAccel.
  const std::string source = R"CL(
__kernel void saxpy(__global const float* x, __global const float* y,
                    __global float* out, float a) {
  int i = get_global_id(0);
  out[i] = a * x[i] + y[i];
}
)CL";

  // 2. Compile it (preprocess -> parse -> type check -> IR).
  DiagnosticEngine diags;
  auto program = ir::compileOpenCl(source, diags);
  if (!program) {
    std::fprintf(stderr, "compile failed:\n%s", diags.str().c_str());
    return 1;
  }

  // 3. Describe the launch: NDRange, arguments, input data.
  const std::uint64_t n = 4096;
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(n * 4, 1),  // x
      std::vector<std::uint8_t>(n * 4, 2),  // y
      std::vector<std::uint8_t>(n * 4),     // out
  };
  model::LaunchInfo launch;
  launch.fn = program->module->findFunction("saxpy");
  launch.range.global = {n, 1, 1};
  launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1),
                 interp::KernelArg::buffer(2), interp::KernelArg::floatScalar(1.5)};
  launch.buffers = &buffers;

  // 4. Pick a design point and a device, and estimate.
  model::FlexCl flexcl(model::Device::virtex7());
  model::DesignPoint design;
  design.workGroupSize = {256, 1, 1};
  design.peParallelism = 4;
  design.numComputeUnits = 2;

  const model::Estimate est = flexcl.estimate(launch, design);
  if (!est.ok) {
    std::fprintf(stderr, "estimate failed: %s\n", est.error.c_str());
    return 1;
  }

  std::printf("design            : %s\n", design.str().c_str());
  std::printf("communication mode: %s\n", model::commModeName(est.mode));
  std::printf("II_comp / II_wi   : %.1f / %.1f cycles\n", est.pe.iiComp, est.iiWi);
  std::printf("pipeline depth    : %.1f cycles\n", est.pe.depth);
  std::printf("L_mem per item    : %.1f cycles\n", est.memory.lMemWi);
  std::printf("estimated total   : %.0f cycles = %.3f ms @ %.0f MHz\n", est.cycles,
              est.milliseconds, flexcl.device().frequencyMhz);

  // 5. Cross-check against the cycle-level simulator (the System-Run stand-in).
  const interp::NdRange range = model::FlexCl::rangeFor(launch, design);
  const sim::SimInput input =
      sim::prepareSimInput(*launch.fn, range, launch.args, buffers);
  const sim::SimResult sim = sim::simulate(input, flexcl.device(), design);
  if (sim.ok && sim.cycles > 0) {
    std::printf("simulator says    : %.0f cycles (model error %.1f%%)\n", sim.cycles,
                (est.cycles - sim.cycles) / sim.cycles * 100.0);
  }
  return 0;
}
