// Design-space exploration for the hotspot stencil (the paper's motivating
// use case, §1 and §4.3): sweep work-group size, pipelining, PE and CU
// parallelism, rank designs with FlexCL in milliseconds, and show how close
// the model's pick lands to the simulator-verified optimum.
//
//   $ ./explore_hotspot
#include <cstdio>

#include "dse/explorer.h"
#include "workloads/workload.h"

int main() {
  using namespace flexcl;

  const workloads::Workload* w =
      workloads::findWorkload("rodinia", "hotspot", "hotspot");
  auto compiled = workloads::compileWorkload(*w);
  if (!compiled) {
    std::fprintf(stderr, "failed to compile hotspot\n");
    return 1;
  }

  model::FlexCl flexcl(model::Device::virtex7());
  dse::Explorer explorer(flexcl, compiled->launch());
  const auto space = dse::enumerateDesignSpace(compiled->meta.range,
                                               explorer.kernelHasBarriers());
  std::printf("exploring %zu design points of %s ...\n\n", space.size(),
              w->fullName().c_str());

  const dse::ExplorationResult result = explorer.explore(space);

  // Top five designs by the model, with their ground-truth cycles.
  std::vector<const dse::EvaluatedDesign*> byModel;
  for (const auto& d : result.designs) byModel.push_back(&d);
  std::sort(byModel.begin(), byModel.end(), [](const auto* a, const auto* b) {
    return a->flexclCycles < b->flexclCycles;
  });
  std::printf("FlexCL's top designs:\n");
  std::printf("| rank | %-44s | %12s | %12s |\n", "configuration", "FlexCL (cyc)",
              "actual (cyc)");
  for (int r = 0; r < 5 && r < static_cast<int>(byModel.size()); ++r) {
    std::printf("| %4d | %-44s | %12.0f | %12.0f |\n", r + 1,
                byModel[static_cast<std::size_t>(r)]->design.str().c_str(),
                byModel[static_cast<std::size_t>(r)]->flexclCycles,
                byModel[static_cast<std::size_t>(r)]->simCycles);
  }

  const auto& best =
      result.designs[static_cast<std::size_t>(result.bestBySim)];
  const auto& picked =
      result.designs[static_cast<std::size_t>(result.bestByFlexcl)];
  std::printf("\ntrue optimum       : %s (%.0f cycles)\n", best.design.str().c_str(),
              best.simCycles);
  std::printf("FlexCL's pick      : %s (%.0f cycles, %.2f%% off optimal)\n",
              picked.design.str().c_str(), picked.simCycles, result.pickGapPct);
  std::printf("speedup vs baseline: %.0fx\n", result.speedupVsBaseline);
  std::printf("exploration time   : FlexCL %.2fs vs simulator %.2fs\n",
              result.flexclSeconds, result.simSeconds);
  return 0;
}
