// Cross-platform what-if analysis (paper §1: FlexCL can "make performance
// comparison across heterogeneous architecture" and §4.2's robustness study).
//
// Estimates the same kernels at the same design points on the Virtex-7 board
// and the UltraScale KU060 board, showing how the platform parameters (IP
// latencies, DSP/BRAM budget, dispatch overhead) shift the prediction — no
// re-synthesis required.
//
//   $ ./cross_platform
#include <cstdio>

#include "model/flexcl.h"
#include "workloads/workload.h"

using namespace flexcl;

int main() {
  const std::pair<const char*, std::pair<const char*, const char*>> picks[] = {
      {"rodinia", {"hotspot", "hotspot"}},
      {"rodinia", {"lavaMD", "lavaMD"}},
      {"rodinia", {"kmeans", "center"}},
      {"polybench", {"gemm", "gemm"}},
      {"polybench", {"atax", "atax"}},
  };

  model::FlexCl v7(model::Device::virtex7());
  model::FlexCl ku(model::Device::ku060());

  model::DesignPoint dp;
  dp.workGroupSize = {64, 1, 1};
  dp.peParallelism = 4;
  dp.numComputeUnits = 2;

  std::printf("Same kernel, same design point, two boards (cycles @200 MHz):\n\n");
  std::printf("| %-22s | %14s | %14s | %8s |\n", "kernel", "virtex7",
              "ku060", "delta");
  std::printf("|------------------------|----------------|----------------|----------|\n");

  for (const auto& [suite, bk] : picks) {
    const workloads::Workload* w = workloads::findWorkload(suite, bk.first,
                                                           bk.second);
    if (!w) continue;
    auto compiled = workloads::compileWorkload(*w);
    if (!compiled) continue;
    const model::LaunchInfo launch = compiled->launch();
    const model::Estimate a = v7.estimate(launch, dp);
    const model::Estimate b = ku.estimate(launch, dp);
    if (!a.ok || !b.ok) continue;
    std::printf("| %-22s | %14.0f | %14.0f | %+7.1f%% |\n", w->fullName().c_str(),
                a.cycles, b.cycles, (b.cycles / a.cycles - 1.0) * 100.0);
  }

  std::printf(
      "\nThe KU060's shorter floating-point pipelines shrink compute-bound\n"
      "kernels, while its smaller DSP/BRAM budget can clamp PE/CU replication\n"
      "for multiplier-heavy ones, and memory-bound kernels barely move (same\n"
      "DDR3 subsystem). This is the kind of pre-purchase what-if the paper\n"
      "positions FlexCL for.\n");
  return 0;
}
