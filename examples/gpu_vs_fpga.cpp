// Heterogeneous what-if: FPGA vs GPU for the same OpenCL kernels (paper §1:
// FlexCL can "make performance comparison across heterogenous architecture
// (GPUs v.s. FPGAs)").
//
// For each kernel, the FPGA side explores its design space and reports the
// best configuration FlexCL finds; the GPU side applies the roofline
// estimate to the same analysis/profile. The point is the *decision* — which
// kernels are worth porting where — not exact GPU cycles.
//
//   $ ./gpu_vs_fpga
#include <cstdio>

#include "dse/explorer.h"
#include "model/gpu_model.h"
#include "workloads/workload.h"

using namespace flexcl;

int main() {
  const std::pair<const char*, std::pair<const char*, const char*>> picks[] = {
      {"rodinia", {"lavaMD", "lavaMD"}},     // compute-heavy, exp() per pair
      {"rodinia", {"kmeans", "center"}},     // distance loops, streaming reads
      {"rodinia", {"nn", "nn"}},             // trivially parallel, tiny compute
      {"polybench", {"gemm", "gemm"}},       // classic dense compute
      {"polybench", {"atax", "atax"}},       // bandwidth-bound matvec
  };

  model::FlexCl flexcl(model::Device::virtex7());
  const model::GpuDevice gpu = model::GpuDevice::kepler();

  // Typical board powers for the energy comparison: the ADM-PCIE-7V3 draws
  // ~25 W under load, a GTX-780-class GPU ~250 W.
  const double fpgaWatts = 25.0, gpuWatts = 250.0;

  std::printf("Best-FPGA-design vs GPU roofline (same kernels, same inputs):\n\n");
  std::printf("| %-22s | %12s | %12s | %-12s | %12s | %12s |\n", "kernel",
              "FPGA (ms)", "GPU (ms)", "GPU regime", "FPGA (mJ)", "GPU (mJ)");
  std::printf(
      "|------------------------|--------------|--------------|--------------|"
      "--------------|--------------|\n");

  for (const auto& [suite, bk] : picks) {
    const workloads::Workload* w = workloads::findWorkload(suite, bk.first,
                                                           bk.second);
    if (!w) continue;
    auto compiled = workloads::compileWorkload(*w);
    if (!compiled) continue;
    const model::LaunchInfo launch = compiled->launch();

    // FPGA: best configuration over the design space (model-ranked).
    dse::Explorer explorer(flexcl, launch);
    const auto space = dse::enumerateDesignSpace(launch.range,
                                                 explorer.kernelHasBarriers());
    double bestFpga = 0;
    for (const model::DesignPoint& dp : space) {
      const model::Estimate est = flexcl.estimate(launch, dp);
      if (est.ok && (bestFpga == 0 || est.milliseconds < bestFpga)) {
        bestFpga = est.milliseconds;
      }
    }

    // GPU: roofline from the same profile and analysis.
    const model::DesignPoint probe;
    const cdfg::KernelAnalysis analysis = flexcl.analysisFor(launch, probe);
    const interp::KernelProfile& profile = flexcl.profileFor(launch, probe);
    const model::GpuEstimate gpuEst =
        model::estimateGpu(analysis, profile, launch.range, gpu);
    if (!gpuEst.ok || bestFpga <= 0) continue;

    std::printf("| %-22s | %12.4f | %12.4f | %-12s | %12.4f | %12.4f |\n",
                w->fullName().c_str(), bestFpga, gpuEst.milliseconds,
                gpuEst.memoryBound ? "memory" : "compute",
                bestFpga * fpgaWatts, gpuEst.milliseconds * gpuWatts);
  }

  std::printf(
      "\nReading: on raw throughput a 2013 big-die GPU outruns a handful of\n"
      "200 MHz custom pipelines — which is historically accurate; FPGAs won\n"
      "deployments on energy per op and latency, which is why the energy\n"
      "columns (time x typical board power) are the interesting ones, and why\n"
      "the regime column matters: a memory-bound kernel will not benefit from\n"
      "the FPGA's pipelining no matter how many PEs you spend. The GPU side is\n"
      "a first-order roofline (occupancy, caches, divergence ignored) over the\n"
      "scaled-down inputs — treat it as architecture triage, not a benchmark.\n");
  return 0;
}
