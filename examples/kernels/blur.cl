// 1D 3-tap blur: the CLI walkthrough kernel.
//
//   flexcl estimate examples/kernels/blur.cl blur --global 2048 --wg 128 \
//       --pe 4 --cu 2 --sim
__kernel void blur(__global const float* in, __global float* out, int n) {
  int i = get_global_id(0);
  float c = in[i];
  float l = c;
  float r = c;
  if (i > 0) { l = in[i - 1]; }
  if (i < n - 1) { r = in[i + 1]; }
  out[i] = 0.25f * l + 0.5f * c + 0.25f * r;
}
