// Deliberately racy kernel: every work-item writes out[0], so any two
// distinct work-items form a write-write data race on the same cell. Used by
// the `flexcl lint --fail-on race` smoke test and the race-verifier docs.
__kernel void race(__global int* out, __global const int* in) {
  int gid = get_global_id(0);
  out[gid] = in[gid];
  out[0] = gid;
}
