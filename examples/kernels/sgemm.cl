// Dense matrix multiply with a compile-time size (see --wg-y for 2D groups).
//
//   flexcl estimate examples/kernels/sgemm.cl sgemm --global 32 --global-y 32 \
//       --wg 8 --wg-y 8 --loop-pipeline --sim
#define N 32

__kernel void sgemm(__global const float* a, __global const float* b,
                    __global float* c) {
  int col = get_global_id(0);
  int row = get_global_id(1);
  float acc = 0.0f;
  for (int k = 0; k < N; k++) {
    acc += a[row * N + k] * b[k * N + col];
  }
  c[row * N + col] = acc;
}
