// Stages the input through a local-memory tile behind a barrier: the barrier
// forces barrier communication mode, so the simulator runs one lane per CU
// and the fast engine's skip-ahead paths fire (CI sim-throughput smoke).
//
//   flexcl estimate examples/kernels/stage_local.cl stage --global 2048 \
//       --wg 64 --sim
__kernel void stage(__global const float* in, __global float* out) {
  __local float tile[64];
  tile[get_local_id(0)] = in[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = 0.5f * tile[get_local_id(0)];
}
