// Minimal JSON reader/writer for the serve protocol (DESIGN.md §12).
//
// The repo's other subsystems only *emit* JSON (pinned-key-order
// ostringstream rendering — lint, explain, stats); the serving daemon is the
// first component that must also *accept* it. This parser covers exactly
// RFC-8259 JSON with two deliberate simplifications: numbers are held as
// double (request fields are small integers and the protocol never
// round-trips user numbers), and \uXXXX escapes outside ASCII are preserved
// as raw text (kernel sources and error strings are ASCII in practice).
// Objects preserve insertion order so parsed documents can be re-rendered
// deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flexcl::serve {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<JsonValue> items;                            ///< Array
  std::vector<std::pair<std::string, JsonValue>> fields;   ///< Object

  [[nodiscard]] bool isObject() const { return kind == Kind::Object; }
  [[nodiscard]] bool isString() const { return kind == Kind::String; }
  [[nodiscard]] bool isNumber() const { return kind == Kind::Number; }
  [[nodiscard]] bool isBool() const { return kind == Kind::Bool; }

  /// First field named `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // Typed field accessors with defaults: the tolerant-reader half of the
  // protocol's compatibility story (unknown fields ignored, absent optional
  // fields defaulted).
  [[nodiscard]] std::string stringOr(const std::string& key,
                                     const std::string& fallback) const;
  [[nodiscard]] double numberOr(const std::string& key, double fallback) const;
  [[nodiscard]] bool boolOr(const std::string& key, bool fallback) const;
};

/// Parses `text` into `out`. Returns false and sets `error` (with a byte
/// offset) on malformed input; trailing non-whitespace is an error.
bool parseJson(const std::string& text, JsonValue* out, std::string* error);

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes). Control characters become \u00XX.
std::string jsonEscapeString(const std::string& s);

/// Renders a double the way the serve protocol pins it: integers without a
/// fractional part ("3" not "3.000000"), everything else shortest-round-trip
/// via %.17g. Deterministic for a given libc, which is all the bit-identity
/// tests compare across (same binary, cold vs warm store).
std::string jsonNumber(double v);

}  // namespace flexcl::serve
