#include "serve/protocol.h"

#include <cmath>
#include <sstream>

namespace flexcl::serve {
namespace {

/// Reads a non-negative integral field; false when present but not a whole
/// number in [0, 2^53) (the double-exact range is far beyond any launch).
bool readU64(const JsonValue& obj, const std::string& key, std::uint64_t* out,
             std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return true;  // keep default
  if (!v->isNumber() || v->number < 0 || v->number != std::floor(v->number) ||
      v->number >= 9007199254740992.0) {
    *error = "field '" + key + "' must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(v->number);
  return true;
}

bool readInt(const JsonValue& obj, const std::string& key, int* out,
             std::string* error) {
  std::uint64_t v = static_cast<std::uint64_t>(*out);
  if (!readU64(obj, key, &v, error)) return false;
  if (v > 1u << 20) {
    *error = "field '" + key + "' out of range";
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool parseDesign(const JsonValue& obj, model::DesignPoint* dp,
                 std::string* error) {
  const JsonValue* d = obj.find("design");
  if (d == nullptr) return true;  // defaults
  if (!d->isObject()) {
    *error = "field 'design' must be an object";
    return false;
  }
  std::uint64_t wg = dp->workGroupSize[0];
  std::uint64_t wgY = dp->workGroupSize[1];
  if (!readU64(*d, "wg", &wg, error) || !readU64(*d, "wg_y", &wgY, error)) {
    return false;
  }
  if (wg == 0 || wgY == 0 || wg > 0xffffffffull || wgY > 0xffffffffull) {
    *error = "design work-group size out of range";
    return false;
  }
  dp->workGroupSize = {static_cast<std::uint32_t>(wg),
                       static_cast<std::uint32_t>(wgY), 1};
  dp->workItemPipeline = d->boolOr("pipeline", dp->workItemPipeline);
  dp->innerLoopPipeline = d->boolOr("loop_pipeline", dp->innerLoopPipeline);
  dp->workGroupPipeline = d->boolOr("wg_pipeline", dp->workGroupPipeline);
  if (!readInt(*d, "pe", &dp->peParallelism, error) ||
      !readInt(*d, "cu", &dp->numComputeUnits, error) ||
      !readInt(*d, "vector_width", &dp->vectorWidth, error)) {
    return false;
  }
  if (dp->peParallelism < 1 || dp->numComputeUnits < 1 ||
      dp->vectorWidth < 1) {
    *error = "design parallelism fields must be >= 1";
    return false;
  }
  const std::string mode = d->stringOr("mode", "pipeline");
  if (mode == "pipeline") {
    dp->commMode = model::CommMode::Pipeline;
  } else if (mode == "barrier") {
    dp->commMode = model::CommMode::Barrier;
  } else {
    *error = "design mode must be 'pipeline' or 'barrier'";
    return false;
  }
  return true;
}

bool opNeedsKernel(const std::string& op) {
  return op == "estimate" || op == "explore" || op == "lint" ||
         op == "explain";
}

}  // namespace

ParsedRequest parseRequest(const std::string& line) {
  ParsedRequest parsed;
  JsonValue root;
  std::string error;
  if (!parseJson(line, &root, &error)) {
    parsed.error = error;
    return parsed;
  }
  if (!root.isObject()) {
    parsed.error = "request must be a JSON object";
    return parsed;
  }
  Request& req = parsed.request;
  // Recover the id first so even a rejected request's error response can be
  // correlated by the client.
  if (!readU64(root, "id", &req.id, &parsed.error)) return parsed;

  req.op = root.stringOr("op", "");
  if (req.op.empty()) {
    parsed.error = "missing or non-string 'op'";
    return parsed;
  }
  req.source = root.stringOr("source", "");
  req.kernel = root.stringOr("kernel", "");
  req.device = root.stringOr("device", req.device);
  if (!readU64(root, "global", &req.global, &parsed.error) ||
      !readU64(root, "global_y", &req.globalY, &parsed.error) ||
      !readU64(root, "elems", &req.elems, &parsed.error)) {
    return parsed;
  }
  if (opNeedsKernel(req.op)) {
    if (req.source.empty() || req.kernel.empty()) {
      parsed.error = "op '" + req.op + "' requires 'source' and 'kernel'";
      return parsed;
    }
    if (req.global == 0 || req.globalY == 0) {
      parsed.error = "'global' and 'global_y' must be >= 1";
      return parsed;
    }
  }
  if (!parseDesign(root, &req.design, &parsed.error)) return parsed;
  req.crossCheck = root.boolOr("cross_check", req.crossCheck);
  req.simulate = root.boolOr("sim", req.simulate);
  parsed.ok = true;
  return parsed;
}

std::string renderResponse(std::uint64_t id, const std::string& op,
                           const std::string& resultJson) {
  std::ostringstream os;
  os << "{\"schema_version\": " << kServeSchemaVersion << ", \"id\": " << id
     << ", \"op\": \"" << jsonEscapeString(op) << "\", \"ok\": true"
     << ", \"result\": " << resultJson << "}";
  return os.str();
}

std::string renderErrorResponse(std::uint64_t id, const std::string& op,
                                const std::string& error) {
  std::ostringstream os;
  os << "{\"schema_version\": " << kServeSchemaVersion << ", \"id\": " << id
     << ", \"op\": \"" << jsonEscapeString(op) << "\", \"ok\": false"
     << ", \"error\": \"" << jsonEscapeString(error) << "\"}";
  return os.str();
}

std::string renderDesign(const model::DesignPoint& dp) {
  std::ostringstream os;
  os << "{\"wg\": " << dp.workGroupSize[0]
     << ", \"wg_y\": " << dp.workGroupSize[1]
     << ", \"pipeline\": " << (dp.workItemPipeline ? "true" : "false")
     << ", \"loop_pipeline\": " << (dp.innerLoopPipeline ? "true" : "false")
     << ", \"wg_pipeline\": " << (dp.workGroupPipeline ? "true" : "false")
     << ", \"pe\": " << dp.peParallelism
     << ", \"cu\": " << dp.numComputeUnits
     << ", \"vector_width\": " << dp.vectorWidth << ", \"mode\": \""
     << model::commModeName(dp.commMode) << "\"}";
  return os.str();
}

}  // namespace flexcl::serve
