// `flexcl serve` transport layer (DESIGN.md §12).
//
// Accepts line-delimited protocol requests on a stream (stdin/stdout) and,
// optionally, on a local Unix-domain socket, and dispatches them onto a
// runtime::ThreadPool. Responses stream back on the transport the request
// arrived on *as each job finishes* — out of order under `jobs > 1`; clients
// correlate by the echoed request id. Writes are line-atomic (one mutex per
// output) and flushed per response.
//
// Lifecycle: without a socket, the server stops at input EOF or a
// `shutdown` request. With a socket it is a daemon — input EOF leaves it
// serving connections until a `shutdown` request arrives on any transport.
// In-flight jobs always drain before run() returns.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.h"
#include "serve/dispatcher.h"

namespace flexcl::serve {

struct ServerOptions {
  /// Worker threads for request dispatch; 0 = runtime::defaultJobs().
  int jobs = 1;
  /// Unix-domain socket path; empty disables the socket transport.
  std::string socketPath;
  DispatcherOptions dispatcher;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  /// Serves `in`/`out` (and the socket, when configured) until shutdown.
  /// Returns 0, or 1 when a transport failed to start (message on stderr
  /// semantics are the caller's: see error()).
  int run(std::istream& in, std::ostream& out);

  [[nodiscard]] Dispatcher& dispatcher() { return *dispatcher_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  /// Parses + dispatches one line; the response is delivered via `write`
  /// (already line-atomic). A `shutdown` request flips the stop flag.
  void submitLine(std::string line,
                  const std::function<void(const std::string&)>& write);
  void requestStop();
  void waitForStop();
  /// Blocks until every submitted job has delivered its response.
  void drainJobs();

  bool startListener();
  void listenerLoop();
  void connectionLoop(int fd);
  void closeListener();

  ServerOptions options_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<runtime::ThreadPool> pool_;  ///< null when jobs == 1
  std::string error_;

  std::mutex stateMutex_;
  std::condition_variable stateCv_;
  bool stopRequested_ = false;
  std::uint64_t pendingJobs_ = 0;

  int listenFd_ = -1;
  std::thread listenerThread_;
  std::mutex connectionsMutex_;
  std::vector<int> connectionFds_;
  std::vector<std::thread> connectionThreads_;
};

}  // namespace flexcl::serve
