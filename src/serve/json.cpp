#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace flexcl::serve {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::stringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->text : fallback;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->number : fallback;
}

bool JsonValue::boolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isBool() ? v->boolean : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  bool parse(JsonValue* out, std::string* error) {
    if (!value(*out)) return fail(error);
    skipWs();
    if (pos_ != src_.size()) return fail(error);
    return true;
  }

 private:
  bool fail(std::string* error) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "JSON parse error near offset " << pos_;
      *error = os.str();
    }
    return false;
  }

  void skipWs() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (src_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(JsonValue& out) {
    skipWs();
    if (pos_ >= src_.size()) return false;
    switch (src_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::String;
        return string(out.text);
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < src_.size() && src_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      std::string key;
      if (!string(key)) return false;
      skipWs();
      if (pos_ >= src_.size() || src_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!value(v)) return false;
      out.fields.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (pos_ >= src_.size()) return false;
      if (src_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (src_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skipWs();
    if (pos_ < src_.size() && src_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(v)) return false;
      out.items.push_back(std::move(v));
      skipWs();
      if (pos_ >= src_.size()) return false;
      if (src_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (src_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string(std::string& out) {
    if (pos_ >= src_.size() || src_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < src_.size()) {
      const char c = src_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= src_.size()) return false;
      const char esc = src_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (src_.size() - pos_ < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = src_[pos_ + static_cast<std::size_t>(i)];
            if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(h))
                           ? h - '0'
                           : std::tolower(h) - 'a' + 10);
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else {
            // Preserve non-ASCII escapes verbatim (see header).
            out += "\\u" + src_.substr(pos_, 4);
          }
          pos_ += 4;
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            std::strchr("+-.eE", src_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    const std::string slice = src_.substr(start, pos_ - start);
    out.number = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) return false;
    out.kind = JsonValue::Kind::Number;
    return true;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parseJson(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text);
  return parser.parse(out, error);
}

std::string jsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace flexcl::serve
