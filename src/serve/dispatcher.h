// `flexcl serve` request dispatcher (DESIGN.md §12).
//
// Owns the process's caches — one CompileCache, one EvalCache, one
// model::FlexCl per *launch context* — and maps protocol requests onto the
// existing evaluation pipeline. A launch context is (device, kernel content
// hash, global geometry, elems): FlexCl's internal profile cache keys on the
// effective local size only, so launches differing in global size or data
// must not share a FlexCl instance or their profiles would alias. Contexts
// are created on first use and kept for the dispatcher's lifetime.
//
// With a Store attached, the dispatcher warm-starts lazily: before
// evaluating a request it seeds the relevant caches from disk (compile
// outcome, profile for the effective geometry, eval results, rendered
// lint/explain responses), and after handling it persists any entries the
// request produced (deduplicated in-memory, so steady-state traffic writes
// nothing). Seeded entries are marked warm in the caches, which is what the
// `cache.*.warm_hits` gauges and the replay bench's hit-rate claim count.
//
// Thread-safety: handle()/handleLine() may be called concurrently from the
// server's pool; contexts and the save-dedup set are mutex-protected, and
// everything downstream (MemoCache, FlexCl, EvalCache) is already
// concurrent.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/flexcl.h"
#include "runtime/compile_cache.h"
#include "runtime/eval_cache.h"
#include "runtime/stats.h"
#include "serve/protocol.h"
#include "serve/store/store.h"

namespace flexcl::serve {

struct DispatcherOptions {
  /// Store directory; empty disables persistence.
  std::string storeDir;
  model::ModelOptions model;
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options = {});
  ~Dispatcher();

  /// True when a store directory was given and opened successfully.
  [[nodiscard]] bool storeOk() const { return store_ != nullptr; }
  [[nodiscard]] const std::string& storeError() const { return storeError_; }
  [[nodiscard]] Store* store() { return store_.get(); }

  /// Handles one parsed request; returns the response line (no trailing
  /// newline). Never throws: evaluator errors become error responses.
  std::string handle(const Request& request);
  /// Parses + handles one raw protocol line. Malformed input yields an error
  /// response correlated by id when one could be recovered.
  std::string handleLine(const std::string& line);

  /// Aggregate cache traffic of everything handled so far (absolute, not a
  /// delta — the dispatcher owns its caches).
  [[nodiscard]] runtime::Stats stats() const;
  /// Rendered-response cache counters (lint/explain results).
  [[nodiscard]] runtime::CounterSnapshot responseCounters() const {
    return responses_.counters();
  }
  /// Requests handled, by outcome.
  [[nodiscard]] std::uint64_t handledOk() const { return handledOk_; }
  [[nodiscard]] std::uint64_t handledError() const { return handledError_; }

  /// Lets the transport layer report its pending-job count (submitted, not
  /// yet responded) so `metrics`/`health` can expose queue depth; without a
  /// provider, in_flight falls back to requests currently inside handle().
  void setPendingProvider(std::function<std::uint64_t()> provider) {
    pendingProvider_ = std::move(provider);
  }

 private:
  /// One (device, kernel, geometry, data) scope: the FlexCl whose profile
  /// cache this request may touch, plus the synthesized launch.
  struct LaunchContext {
    std::uint64_t scopeHash = 0;  ///< store key base for this context
    std::shared_ptr<const runtime::CompiledKernel> compiled;
    std::vector<std::vector<std::uint8_t>> buffers;
    model::LaunchInfo launch;  ///< launch.buffers points at `buffers`
    std::unique_ptr<model::FlexCl> flexcl;
    std::uint64_t evalKeyBase = 0;  ///< Explorer-compatible EvalCache prefix
    /// Profile store-key prefix (kernel content hash + geometry + elems —
    /// deliberately no device: profiles are interpreter results).
    std::uint64_t profileKeyBase = 0;
    /// Profile store keys already checked against the disk.
    std::set<std::uint64_t> profileKeysSeen;
    /// Race-verdict store keys already checked against the disk (same key
    /// scheme as profiles; the families live in separate directories).
    std::set<std::uint64_t> raceKeysSeen;
  };

  /// Finds or builds the context for `request`. nullptr (with `error` set)
  /// when compilation fails — the compile failure itself is cached and, with
  /// a store, persisted.
  LaunchContext* contextFor(const Request& request, std::string* error);

  std::string handleEstimate(const Request& request);
  std::string handleExplore(const Request& request);
  std::string handleLint(const Request& request);
  std::string handleExplain(const Request& request);
  std::string handleStats(const Request& request);
  std::string handleMetrics(const Request& request);
  std::string handleHealth(const Request& request);

  /// Runs the model for (context, design) through the EvalCache, seeding the
  /// profile and the estimate from the store first and persisting both after.
  std::shared_ptr<const model::Estimate> estimateVia(LaunchContext& ctx,
                                                     const model::DesignPoint& design);
  /// Seeds ctx's profile cache for the effective geometry of `design` from
  /// the store (checked once per key).
  void seedProfileFor(LaunchContext& ctx, const model::DesignPoint& design);
  /// Same for the race-verdict cache (Family::Race, profile key scheme).
  void seedRaceFor(LaunchContext& ctx, const model::DesignPoint& design);
  /// Rendered-response caching (lint/explain): one content-addressed string.
  std::string responseVia(std::uint64_t key,
                          const std::function<std::string()>& render);

  /// Persists `payload` once per (family, key) — repeat saves are deduped.
  void persist(Store::Family family, std::uint64_t key,
               std::uint32_t payloadVersion, std::vector<std::uint8_t> payload);
  /// Exports every cache entry not yet on disk (called after each handled
  /// request; steady-state traffic is a dedup-set sweep, no I/O).
  void persistCaches();

  DispatcherOptions options_;
  std::unique_ptr<Store> store_;
  std::string storeError_;

  runtime::CompileCache compileCache_;
  runtime::EvalCache evalCache_;
  /// Rendered lint/explain JSON, keyed by the response-store key.
  runtime::MemoCache<std::uint64_t, std::string> responses_;

  mutable std::mutex mutex_;  ///< guards contexts_, saved_, profileKeysSeen
  std::unordered_map<std::uint64_t, std::unique_ptr<LaunchContext>> contexts_;
  std::set<std::pair<std::uint32_t, std::uint64_t>> saved_;

  std::atomic<std::uint64_t> handledOk_{0};
  std::atomic<std::uint64_t> handledError_{0};
  /// Requests currently inside handle() (metrics/health in_flight fallback).
  std::atomic<std::uint64_t> inFlight_{0};
  /// obs::monotonicUs() at construction; metrics/health report uptime
  /// relative to this.
  double startedAtUs_ = 0;
  std::function<std::uint64_t()> pendingProvider_;
};

}  // namespace flexcl::serve
