// Binary serialization for the serve store (DESIGN.md §12).
//
// Plain little-endian field-by-field encoding of the result structs the
// on-disk store persists: model::Estimate, sim::SimResult, the optional
// SDAccel estimate, interp::KernelProfile, compile outcomes, and rendered
// response strings. No reflection, no framing — framing, versioning and
// integrity live in the Store entry header; each family's payload layout is
// versioned by the k*CodecVersion constants below (bump on any field
// change; the store treats a version mismatch as a quarantined entry, never
// as data to guess at).
//
// What is deliberately NOT serializable: anything holding IR pointers
// (ir::CompiledProgram, cdfg::KernelAnalysis, the PR-5 analysis-signature
// caches). Those are rebuilt in-process — cheaply once the profile and the
// eval results are warm — because persisting a pointer graph would couple
// the store format to the IR's memory layout. See DESIGN.md §12.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "interp/profiler.h"
#include "model/flexcl.h"
#include "sdaccel/sdaccel_estimator.h"
#include "sim/system_sim.h"

namespace flexcl::serve {

/// Payload layout versions, one per store family.
inline constexpr std::uint32_t kEstimateCodecVersion = 1;
inline constexpr std::uint32_t kSdaccelCodecVersion = 1;
inline constexpr std::uint32_t kSimResultCodecVersion = 1;
inline constexpr std::uint32_t kProfileCodecVersion = 2;  // +provenance u8
inline constexpr std::uint32_t kCompileCodecVersion = 1;
inline constexpr std::uint32_t kResponseCodecVersion = 1;
inline constexpr std::uint32_t kRaceCodecVersion = 1;

/// Append-only little-endian byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);
  void f64vec(const std::vector<double>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked reader over a payload. Any out-of-bounds read latches
/// `ok() == false` and yields zero values; decoders check ok() once at the
/// end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();
  std::vector<double> f64vec();

  /// True iff every read so far was in bounds and the payload is fully
  /// consumed (trailing bytes mean a layout mismatch).
  [[nodiscard]] bool fullyConsumedOk() const {
    return ok_ && pos_ == bytes_.size();
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool take(std::size_t n);
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- family payloads -------------------------------------------------------

/// Compile outcome: the CompileCache entry minus the IR (see file comment).
struct CompileOutcome {
  std::uint64_t key = 0;  ///< runtime::kernelKeyHash
  bool ok = false;
  std::string error;
  std::string kernelName;
};

void encodeEstimate(ByteWriter& w, const model::Estimate& e);
bool decodeEstimate(ByteReader& r, model::Estimate* out);

void encodeSdaccel(ByteWriter& w,
                   const std::optional<sdaccel::SdaccelEstimate>& e);
bool decodeSdaccel(ByteReader& r,
                   std::optional<sdaccel::SdaccelEstimate>* out);

void encodeSimResult(ByteWriter& w, const sim::SimResult& s);
bool decodeSimResult(ByteReader& r, sim::SimResult* out);

void encodeProfile(ByteWriter& w, const interp::KernelProfile& p);
bool decodeProfile(ByteReader& r, interp::KernelProfile* out);

void encodeCompileOutcome(ByteWriter& w, const CompileOutcome& c);
bool decodeCompileOutcome(ByteReader& r, CompileOutcome* out);

/// Race verdict: the summary fields only; per-pair results and witnesses are
/// re-derived in-process when the verifier runs (the persisted verdict is
/// enough for the simulator's conflict-tracking elision and `cache stats`).
void encodeRaceVerdict(ByteWriter& w,
                       const analysis::raceverify::RaceVerdict& v);
bool decodeRaceVerdict(ByteReader& r, analysis::raceverify::RaceVerdict* out);

}  // namespace flexcl::serve
