// Versioned on-disk cache store for `flexcl serve` (DESIGN.md §12).
//
// A directory of self-describing entry files, one per cached result, grouped
// into families that mirror the in-memory caches they warm-start:
//
//   <dir>/compile/<key>.fxe    compile outcomes (runtime::CompileCache)
//   <dir>/flexcl/<key>.fxe     model::Estimate    (runtime::EvalCache)
//   <dir>/sdaccel/<key>.fxe    SDAccel estimates  (runtime::EvalCache)
//   <dir>/sim/<key>.fxe        sim::SimResult     (runtime::EvalCache)
//   <dir>/profile/<key>.fxe    interp::KernelProfile (model::FlexCl)
//   <dir>/response/<key>.fxe   rendered lint/explain result JSON
//   <dir>/race/<key>.fxe       race verdicts (model::FlexCl)
//
// Every entry carries a fixed header — magic, store format version, family,
// per-family payload version, key, payload size, payload checksum — so a
// cold process can trust what it loads: any mismatch (corruption, torn
// write, format drift) quarantines the entry (renamed to *.quar, counted in
// `serve.store.quarantined`) instead of crashing or poisoning a cache.
// Writes go through a temp file + rename, so a crash mid-save leaves at
// worst a stale temp file, never a half-written entry under a valid name.
// Keys are content hashes (source + options + geometry + design), so
// concurrent daemons sharing a directory can only race to write identical
// bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace flexcl::serve {

/// Store format version: the entry header layout. Distinct from the
/// per-family payload versions (serve/store/codec.h).
inline constexpr std::uint32_t kStoreFormatVersion = 1;

class Store {
 public:
  enum class Family : std::uint32_t {
    Compile = 1,
    FlexclEval = 2,
    SdaccelEval = 3,
    SimEval = 4,
    Profile = 5,
    Response = 6,
    Race = 7,
  };
  static constexpr Family kAllFamilies[] = {
      Family::Compile, Family::FlexclEval, Family::SdaccelEval,
      Family::SimEval, Family::Profile,    Family::Response,
      Family::Race,
  };
  static const char* familyName(Family f);

  /// Opens (creating if needed) the store rooted at `dir`. Check ok().
  explicit Store(std::string dir);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Writes one entry (temp file + atomic rename). Overwrites an existing
  /// entry for the same key. Returns false on I/O failure.
  bool save(Family family, std::uint64_t key, std::uint32_t payloadVersion,
            const std::vector<std::uint8_t>& payload);

  /// Reads and integrity-checks one entry. nullopt when absent; a present
  /// but invalid entry (bad magic/version/family/key/size/checksum) is
  /// quarantined and reported as nullopt.
  std::optional<std::vector<std::uint8_t>> load(Family family,
                                                std::uint64_t key,
                                                std::uint32_t payloadVersion);

  /// Integrity-checks every entry of `family`, invoking `fn` for each valid
  /// payload and quarantining invalid ones. Iteration order is sorted by
  /// file name, so warm-starts are deterministic.
  void loadAll(Family family, std::uint32_t payloadVersion,
               const std::function<void(std::uint64_t key,
                                        const std::vector<std::uint8_t>&)>& fn);

  struct FamilyStats {
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;
    std::uint64_t quarantined = 0;  ///< *.quar files present
  };
  struct StoreStats {
    FamilyStats perFamily[7];  ///< indexed by family id - 1
    [[nodiscard]] std::uint64_t totalEntries() const;
    [[nodiscard]] std::uint64_t totalBytes() const;
    [[nodiscard]] std::uint64_t totalQuarantined() const;
  };

  /// Cheap directory scan: entry counts + bytes per family, no checksum
  /// verification.
  StoreStats stats() const;

  /// Full verification: every entry is header- and checksum-checked;
  /// invalid entries are quarantined. Returns the number quarantined by
  /// this pass (pre-existing *.quar files are counted in stats(), not here).
  std::uint64_t verify();

  /// Deletes every entry and quarantined file. Returns files removed.
  std::uint64_t clear();

 private:
  std::string familyDir(Family f) const;
  std::string entryPath(Family f, std::uint64_t key) const;
  /// Validates one entry file; on success fills `payload`. On failure
  /// renames it to <path>.quar and bumps the quarantine counter.
  bool loadFile(const std::string& path, Family family,
                std::optional<std::uint64_t> expectKey,
                std::uint32_t payloadVersion, std::uint64_t* keyOut,
                std::vector<std::uint8_t>* payload);
  void quarantine(const std::string& path);

  std::string dir_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace flexcl::serve
