#include "serve/store/codec.h"

#include <bit>
#include <cstring>

namespace flexcl::serve {

namespace {
/// Hard cap on any serialized container (64M elements): a corrupt length
/// field must never turn into an allocation bomb. Real payloads are far
/// smaller (profiles trace two work-groups).
constexpr std::uint64_t kMaxElements = 1ull << 26;
}  // namespace

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(const std::string& s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ByteWriter::f64vec(const std::vector<double>& v) {
  u64(v.size());
  for (const double d : v) f64(d);
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || bytes_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return bytes_[pos_++];
}

std::uint32_t ByteReader::u32() {
  std::uint32_t v = 0;
  if (!take(4)) return 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t v = 0;
  if (!take(8)) return 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (n > kMaxElements || !take(static_cast<std::size_t>(n))) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<double> ByteReader::f64vec() {
  const std::uint64_t n = u64();
  if (n > kMaxElements) {
    ok_ = false;
    return {};
  }
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n && ok_; ++i) v.push_back(f64());
  return v;
}

// --- sub-struct helpers ----------------------------------------------------

namespace {

void encodePatternCounts(ByteWriter& w, const dram::PatternCounts& c) {
  w.u32(static_cast<std::uint32_t>(dram::kPatternCount));
  for (const double d : c.counts) w.f64(d);
}

bool decodePatternCounts(ByteReader& r, dram::PatternCounts* out) {
  if (r.u32() != static_cast<std::uint32_t>(dram::kPatternCount)) return false;
  for (double& d : out->counts) d = r.f64();
  return r.ok();
}

void encodeMemoryModel(ByteWriter& w, const model::MemoryModel& m) {
  encodePatternCounts(w, m.perWorkItem);
  w.f64(m.accessesPerWorkItem);
  w.f64(m.lMemWi);
  w.f64(m.rawAccessesPerWorkItem);
  w.f64(m.serviceDemandPerWi);
  w.f64(m.iiThroughputBound);
  w.f64(m.queueingPerWi);
  w.f64vec(m.perWiChainSpan);
}

bool decodeMemoryModel(ByteReader& r, model::MemoryModel* out) {
  if (!decodePatternCounts(r, &out->perWorkItem)) return false;
  out->accessesPerWorkItem = r.f64();
  out->lMemWi = r.f64();
  out->rawAccessesPerWorkItem = r.f64();
  out->serviceDemandPerWi = r.f64();
  out->iiThroughputBound = r.f64();
  out->queueingPerWi = r.f64();
  out->perWiChainSpan = r.f64vec();
  return r.ok();
}

void encodeAccessEvent(ByteWriter& w, const interp::MemoryAccessEvent& e) {
  w.u64(e.workItem);
  w.u32(e.group);
  w.u8(static_cast<std::uint8_t>(e.space));
  w.u32(static_cast<std::uint32_t>(e.buffer));
  w.i64(e.offset);
  w.u32(e.size);
  w.boolean(e.isWrite);
  w.u32(e.instId);
}

bool decodeAccessEvent(ByteReader& r, interp::MemoryAccessEvent* out) {
  out->workItem = r.u64();
  out->group = r.u32();
  const std::uint8_t space = r.u8();
  if (space > static_cast<std::uint8_t>(ir::AddressSpace::Constant)) {
    return false;
  }
  out->space = static_cast<ir::AddressSpace>(space);
  out->buffer = static_cast<std::int32_t>(r.u32());
  out->offset = r.i64();
  out->size = r.u32();
  out->isWrite = r.boolean();
  out->instId = r.u32();
  return r.ok();
}

void encodeTrace(ByteWriter& w,
                 const std::vector<interp::MemoryAccessEvent>& trace) {
  w.u64(trace.size());
  for (const auto& e : trace) encodeAccessEvent(w, e);
}

bool decodeTrace(ByteReader& r,
                 std::vector<interp::MemoryAccessEvent>* out) {
  const std::uint64_t n = r.u64();
  if (n > kMaxElements) return false;
  out->resize(static_cast<std::size_t>(n));
  for (auto& e : *out) {
    if (!decodeAccessEvent(r, &e)) return false;
  }
  return r.ok();
}

}  // namespace

// --- family payloads -------------------------------------------------------

void encodeEstimate(ByteWriter& w, const model::Estimate& e) {
  w.boolean(e.ok);
  w.str(e.error);
  w.f64(e.cycles);
  w.f64(e.milliseconds);
  w.u8(static_cast<std::uint8_t>(e.mode));
  w.f64(e.breakdown.compute);
  w.f64(e.breakdown.memory);
  w.f64(e.breakdown.fillDrain);
  w.f64(e.breakdown.dispatch);
  // PeModel
  w.f64(e.pe.iiComp);
  w.f64(e.pe.depth);
  w.u32(static_cast<std::uint32_t>(e.pe.recMii));
  w.u32(static_cast<std::uint32_t>(e.pe.resMii));
  w.u32(static_cast<std::uint32_t>(e.pe.mii));
  w.boolean(e.pe.pipelined);
  w.f64(e.pe.localReads);
  w.f64(e.pe.localWrites);
  w.f64(e.pe.dspUnits);
  // CuModel
  w.u32(static_cast<std::uint32_t>(e.cu.effectivePes));
  w.f64(e.cu.latency);
  w.u8(static_cast<std::uint8_t>(e.cu.limiter));
  // KernelComputeModel
  w.u32(static_cast<std::uint32_t>(e.kernelCompute.effectiveCus));
  w.u32(static_cast<std::uint32_t>(e.kernelCompute.resourceCappedCus));
  w.f64(e.kernelCompute.latency);
  w.f64(e.kernelCompute.waves);
  encodeMemoryModel(w, e.memory);
  w.f64(e.iiWi);
  w.u32(static_cast<std::uint32_t>(e.barrierCount));
  w.u64(e.totalWorkItems);
}

bool decodeEstimate(ByteReader& r, model::Estimate* out) {
  out->ok = r.boolean();
  out->error = r.str();
  out->cycles = r.f64();
  out->milliseconds = r.f64();
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(model::CommMode::Pipeline)) {
    return false;
  }
  out->mode = static_cast<model::CommMode>(mode);
  out->breakdown.compute = r.f64();
  out->breakdown.memory = r.f64();
  out->breakdown.fillDrain = r.f64();
  out->breakdown.dispatch = r.f64();
  out->pe.iiComp = r.f64();
  out->pe.depth = r.f64();
  out->pe.recMii = static_cast<int>(r.u32());
  out->pe.resMii = static_cast<int>(r.u32());
  out->pe.mii = static_cast<int>(r.u32());
  out->pe.pipelined = r.boolean();
  out->pe.localReads = r.f64();
  out->pe.localWrites = r.f64();
  out->pe.dspUnits = r.f64();
  out->cu.effectivePes = static_cast<int>(r.u32());
  out->cu.latency = r.f64();
  const std::uint8_t limiter = r.u8();
  if (limiter > static_cast<std::uint8_t>(model::CuModel::Limiter::Dsp)) {
    return false;
  }
  out->cu.limiter = static_cast<model::CuModel::Limiter>(limiter);
  out->kernelCompute.effectiveCus = static_cast<int>(r.u32());
  out->kernelCompute.resourceCappedCus = static_cast<int>(r.u32());
  out->kernelCompute.latency = r.f64();
  out->kernelCompute.waves = r.f64();
  if (!decodeMemoryModel(r, &out->memory)) return false;
  out->iiWi = r.f64();
  out->barrierCount = static_cast<int>(r.u32());
  out->totalWorkItems = r.u64();
  return r.fullyConsumedOk();
}

void encodeSdaccel(ByteWriter& w,
                   const std::optional<sdaccel::SdaccelEstimate>& e) {
  w.boolean(e.has_value());
  if (e.has_value()) {
    w.f64(e->cycles);
    w.f64(e->estimationMinutes);
  }
}

bool decodeSdaccel(ByteReader& r,
                   std::optional<sdaccel::SdaccelEstimate>* out) {
  if (!r.boolean()) {
    out->reset();
    return r.fullyConsumedOk();
  }
  sdaccel::SdaccelEstimate e;
  e.cycles = r.f64();
  e.estimationMinutes = r.f64();
  *out = e;
  return r.fullyConsumedOk();
}

void encodeSimResult(ByteWriter& w, const sim::SimResult& s) {
  w.boolean(s.ok);
  w.str(s.error);
  w.f64(s.cycles);
  w.f64(s.milliseconds);
  w.f64(s.iiHw);
  w.f64(s.depthHw);
  w.u32(static_cast<std::uint32_t>(s.effectivePes));
  w.u32(static_cast<std::uint32_t>(s.effectiveCus));
  w.u64(s.dramAccesses);
  w.u64(s.dramRowHits);
  w.u64(s.workGroups);
  w.u64(s.dramRefreshStallCycles);
  w.u64(s.dramBankWaitCycles);
  w.u64(s.dramBusWaitCycles);
  w.u64(s.memStallCycles);
  w.u64(s.dispatchStallCycles);
}

bool decodeSimResult(ByteReader& r, sim::SimResult* out) {
  out->ok = r.boolean();
  out->error = r.str();
  out->cycles = r.f64();
  out->milliseconds = r.f64();
  out->iiHw = r.f64();
  out->depthHw = r.f64();
  out->effectivePes = static_cast<int>(r.u32());
  out->effectiveCus = static_cast<int>(r.u32());
  out->dramAccesses = r.u64();
  out->dramRowHits = r.u64();
  out->workGroups = r.u64();
  out->dramRefreshStallCycles = r.u64();
  out->dramBankWaitCycles = r.u64();
  out->dramBusWaitCycles = r.u64();
  out->memStallCycles = r.u64();
  out->dispatchStallCycles = r.u64();
  return r.fullyConsumedOk();
}

void encodeProfile(ByteWriter& w, const interp::KernelProfile& p) {
  w.boolean(p.ok);
  w.str(p.error);
  for (int d = 0; d < 3; ++d) w.u64(p.range.global[static_cast<std::size_t>(d)]);
  for (int d = 0; d < 3; ++d) w.u64(p.range.local[static_cast<std::size_t>(d)]);
  w.f64vec(p.loopTripCounts);
  encodeTrace(w, p.globalTrace);
  encodeTrace(w, p.localTrace);
  w.u64(p.profiledGroups);
  w.u64(p.profiledWorkItems);
  w.u64(p.oobAccesses);
  w.u8(static_cast<std::uint8_t>(p.provenance));
}

bool decodeProfile(ByteReader& r, interp::KernelProfile* out) {
  out->ok = r.boolean();
  out->error = r.str();
  for (int d = 0; d < 3; ++d) out->range.global[static_cast<std::size_t>(d)] = r.u64();
  for (int d = 0; d < 3; ++d) out->range.local[static_cast<std::size_t>(d)] = r.u64();
  out->loopTripCounts = r.f64vec();
  if (!decodeTrace(r, &out->globalTrace)) return false;
  if (!decodeTrace(r, &out->localTrace)) return false;
  out->profiledGroups = r.u64();
  out->profiledWorkItems = r.u64();
  out->oobAccesses = r.u64();
  out->provenance = static_cast<interp::KernelProfile::Provenance>(r.u8());
  return r.fullyConsumedOk();
}

void encodeCompileOutcome(ByteWriter& w, const CompileOutcome& c) {
  w.u64(c.key);
  w.boolean(c.ok);
  w.str(c.error);
  w.str(c.kernelName);
}

bool decodeCompileOutcome(ByteReader& r, CompileOutcome* out) {
  out->key = r.u64();
  out->ok = r.boolean();
  out->error = r.str();
  out->kernelName = r.str();
  return r.fullyConsumedOk();
}

void encodeRaceVerdict(ByteWriter& w,
                       const analysis::raceverify::RaceVerdict& v) {
  w.u8(static_cast<std::uint8_t>(v.kind));
  w.str(v.reason);
  w.u64(v.pairsChecked);
  w.u64(v.pairsProven);
  w.u64(v.racyPairs);
  w.u64(v.unknownPairs);
  w.u64(v.barrierIntervals);
  w.boolean(v.epochsExact);
}

bool decodeRaceVerdict(ByteReader& r, analysis::raceverify::RaceVerdict* out) {
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(
                 analysis::raceverify::RaceVerdictKind::Unknown)) {
    return false;
  }
  out->kind = static_cast<analysis::raceverify::RaceVerdictKind>(kind);
  out->reason = r.str();
  out->pairsChecked = r.u64();
  out->pairsProven = r.u64();
  out->racyPairs = r.u64();
  out->unknownPairs = r.u64();
  out->barrierIntervals = r.u64();
  out->epochsExact = r.boolean();
  return r.fullyConsumedOk();
}

}  // namespace flexcl::serve
