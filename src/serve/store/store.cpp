#include "serve/store/store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "obs/registry.h"
#include "serve/store/codec.h"
#include "support/rng.h"

namespace fs = std::filesystem;

namespace flexcl::serve {
namespace {

constexpr std::uint32_t kStoreMagic = 0x53435846;  // "FXCS" little-endian
constexpr std::size_t kHeaderSize = 4 * 4 + 3 * 8;  // 4 u32 + 3 u64
constexpr std::uint64_t kMaxPayloadSize = 1ull << 30;

std::string keyFileName(std::uint64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx.fxe",
                static_cast<unsigned long long>(key));
  return buf;
}

bool parseKeyFileName(const std::string& name, std::uint64_t* key) {
  if (name.size() != 20 || name.substr(16) != ".fxe") return false;
  std::uint64_t k = 0;
  for (int i = 0; i < 16; ++i) {
    const char c = name[static_cast<std::size_t>(i)];
    k <<= 4;
    if (c >= '0' && c <= '9') {
      k |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      k |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *key = k;
  return true;
}

/// Per-family read/write latency histograms (DESIGN.md §14). The name is
/// only materialised when observability is on; off-path cost is one load.
void recordStoreLatency(const char* opName, Store::Family family,
                        double startUs) {
  if (!obs::enabled() || startUs < 0) return;
  obs::record(std::string("serve.store.") + Store::familyName(family) + "." +
                  opName + "_us",
              obs::monotonicUs() - startUs);
}

double storeLatencyStart() { return obs::enabled() ? obs::monotonicUs() : -1; }

bool readFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return false;
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out->data()), size);
  }
  return static_cast<bool>(in);
}

}  // namespace

const char* Store::familyName(Family f) {
  switch (f) {
    case Family::Compile: return "compile";
    case Family::FlexclEval: return "flexcl";
    case Family::SdaccelEval: return "sdaccel";
    case Family::SimEval: return "sim";
    case Family::Profile: return "profile";
    case Family::Response: return "response";
    case Family::Race: return "race";
  }
  return "unknown";
}

Store::Store(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    error_ = "cannot create store directory '" + dir_ + "': " + ec.message();
    return;
  }
  for (Family f : kAllFamilies) {
    fs::create_directories(familyDir(f), ec);
    if (ec) {
      error_ = "cannot create store family directory '" + familyDir(f) +
               "': " + ec.message();
      return;
    }
  }
  ok_ = true;
}

std::string Store::familyDir(Family f) const {
  return dir_ + "/" + familyName(f);
}

std::string Store::entryPath(Family f, std::uint64_t key) const {
  return familyDir(f) + "/" + keyFileName(key);
}

bool Store::save(Family family, std::uint64_t key,
                 std::uint32_t payloadVersion,
                 const std::vector<std::uint8_t>& payload) {
  if (!ok_ || payload.size() > kMaxPayloadSize) return false;
  const double startUs = storeLatencyStart();
  ByteWriter header;
  header.u32(kStoreMagic);
  header.u32(kStoreFormatVersion);
  header.u32(static_cast<std::uint32_t>(family));
  header.u32(payloadVersion);
  header.u64(key);
  header.u64(payload.size());
  header.u64(payload.empty() ? 0 : stableHash(payload.data(), payload.size()));

  const std::string path = entryPath(family, key);
  // Temp name is unique per (pid, key); concurrent writers of the same key
  // write identical content-addressed bytes, so the last rename wins safely.
  const std::string tmp =
      path + ".tmp" + std::to_string(static_cast<unsigned>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(header.bytes().data()),
              static_cast<std::streamsize>(header.bytes().size()));
    if (!payload.empty()) {
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(payload.size()));
    }
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  obs::add("serve.store.saved");
  recordStoreLatency("write", family, startUs);
  return true;
}

bool Store::loadFile(const std::string& path, Family family,
                     std::optional<std::uint64_t> expectKey,
                     std::uint32_t payloadVersion, std::uint64_t* keyOut,
                     std::vector<std::uint8_t>* payload) {
  std::vector<std::uint8_t> bytes;
  if (!readFileBytes(path, &bytes) || bytes.size() < kHeaderSize) {
    quarantine(path);
    return false;
  }
  ByteReader r(bytes);
  const std::uint32_t magic = r.u32();
  const std::uint32_t format = r.u32();
  const std::uint32_t fam = r.u32();
  const std::uint32_t version = r.u32();
  const std::uint64_t key = r.u64();
  const std::uint64_t size = r.u64();
  const std::uint64_t hash = r.u64();
  if (!r.ok() || magic != kStoreMagic || format != kStoreFormatVersion ||
      fam != static_cast<std::uint32_t>(family) || version != payloadVersion ||
      (expectKey && key != *expectKey) || size > kMaxPayloadSize ||
      bytes.size() != kHeaderSize + size) {
    quarantine(path);
    return false;
  }
  payload->assign(bytes.begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
                  bytes.end());
  const std::uint64_t actual =
      payload->empty() ? 0 : stableHash(payload->data(), payload->size());
  if (actual != hash) {
    quarantine(path);
    return false;
  }
  if (keyOut != nullptr) *keyOut = key;
  return true;
}

void Store::quarantine(const std::string& path) {
  std::error_code ec;
  fs::rename(path, path + ".quar", ec);
  if (ec) fs::remove(path, ec);  // fall back to deletion; never re-serve it
  obs::add("serve.store.quarantined");
}

std::optional<std::vector<std::uint8_t>> Store::load(
    Family family, std::uint64_t key, std::uint32_t payloadVersion) {
  if (!ok_) return std::nullopt;
  const double startUs = storeLatencyStart();
  const std::string path = entryPath(family, key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  std::vector<std::uint8_t> payload;
  if (!loadFile(path, family, key, payloadVersion, nullptr, &payload)) {
    return std::nullopt;
  }
  obs::add("serve.store.loaded");
  recordStoreLatency("read", family, startUs);
  return payload;
}

void Store::loadAll(
    Family family, std::uint32_t payloadVersion,
    const std::function<void(std::uint64_t key,
                             const std::vector<std::uint8_t>&)>& fn) {
  if (!ok_) return;
  std::error_code ec;
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(familyDir(family), ec)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    std::uint64_t key = 0;
    if (!parseKeyFileName(name, &key)) continue;  // temp / quarantined files
    const double startUs = storeLatencyStart();
    std::vector<std::uint8_t> payload;
    if (loadFile(familyDir(family) + "/" + name, family, key, payloadVersion,
                 &key, &payload)) {
      obs::add("serve.store.loaded");
      recordStoreLatency("read", family, startUs);
      fn(key, payload);
    }
  }
}

std::uint64_t Store::StoreStats::totalEntries() const {
  std::uint64_t n = 0;
  for (const FamilyStats& f : perFamily) n += f.entries;
  return n;
}

std::uint64_t Store::StoreStats::totalBytes() const {
  std::uint64_t n = 0;
  for (const FamilyStats& f : perFamily) n += f.bytes;
  return n;
}

std::uint64_t Store::StoreStats::totalQuarantined() const {
  std::uint64_t n = 0;
  for (const FamilyStats& f : perFamily) n += f.quarantined;
  return n;
}

Store::StoreStats Store::stats() const {
  StoreStats s;
  if (!ok_) return s;
  for (Family f : kAllFamilies) {
    FamilyStats& fam =
        s.perFamily[static_cast<std::uint32_t>(f) - 1];
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(familyDir(f), ec)) {
      const std::string name = entry.path().filename().string();
      std::uint64_t key = 0;
      if (parseKeyFileName(name, &key)) {
        ++fam.entries;
        std::error_code sec;
        const std::uintmax_t sz = fs::file_size(entry.path(), sec);
        if (!sec) fam.bytes += sz;
      } else if (name.size() > 5 && name.substr(name.size() - 5) == ".quar") {
        ++fam.quarantined;
      }
    }
  }
  return s;
}

std::uint64_t Store::verify() {
  if (!ok_) return 0;
  std::uint64_t quarantined = 0;
  for (Family f : kAllFamilies) {
    const std::uint32_t version = [&] {
      switch (f) {
        case Family::Compile: return kCompileCodecVersion;
        case Family::FlexclEval: return kEstimateCodecVersion;
        case Family::SdaccelEval: return kSdaccelCodecVersion;
        case Family::SimEval: return kSimResultCodecVersion;
        case Family::Profile: return kProfileCodecVersion;
        case Family::Response: return kResponseCodecVersion;
        case Family::Race: return kRaceCodecVersion;
      }
      return 0u;
    }();
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(familyDir(f), ec)) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      std::uint64_t key = 0;
      if (!parseKeyFileName(name, &key)) continue;
      std::vector<std::uint8_t> payload;
      if (!loadFile(familyDir(f) + "/" + name, f, key, version, &key,
                    &payload)) {
        ++quarantined;
      }
    }
  }
  return quarantined;
}

std::uint64_t Store::clear() {
  if (!ok_) return 0;
  std::uint64_t removed = 0;
  for (Family f : kAllFamilies) {
    std::error_code ec;
    std::vector<fs::path> victims;
    for (const auto& entry : fs::directory_iterator(familyDir(f), ec)) {
      victims.push_back(entry.path());
    }
    for (const fs::path& p : victims) {
      std::error_code rec;
      if (fs::remove(p, rec) && !rec) ++removed;
    }
  }
  return removed;
}

}  // namespace flexcl::serve
