// `flexcl serve` wire protocol: versioned line-delimited JSON (DESIGN.md §12).
//
// One request per line on stdin (or a Unix-socket connection), one response
// per line out. Responses are tagged with the request id and may complete out
// of order — the dispatcher streams each as soon as its job finishes. The
// response key order is pinned (schema_version always first) under the same
// golden-test policy as the lint/explain JSON; any key change bumps
// kServeSchemaVersion. Responses deliberately carry no cache-provenance
// field: a warm-store run must be byte-identical to the cold run that
// produced the store (the replay bench asserts this), so provenance lives in
// the obs counters (`serve.*`, `cache.*.warm_hits`) instead.
//
// Request shape (unknown fields are ignored — tolerant reader):
//   {"id": 1, "op": "estimate", "source": "__kernel void k(...){...}",
//    "kernel": "k", "device": "virtex7", "global": 1024, "global_y": 1,
//    "elems": 0, "design": {"wg": 64, "wg_y": 1, "pipeline": true,
//    "loop_pipeline": false, "wg_pipeline": false, "pe": 1, "cu": 1,
//    "vector_width": 1, "mode": "pipeline"}}
// Ops: estimate | explore | lint | explain | stats | metrics | health |
// ping | shutdown. `metrics` and `health` are the live-introspection ops
// (DESIGN.md §14): they need no kernel and return the registry snapshot
// (counters/gauges/histograms with p50/p90/p99/max) resp. a liveness
// summary, both with pinned key order under the golden-test policy. Their
// results are intentionally timing-dependent, so they are excluded from the
// byte-identity contract that covers every other op.
#pragma once

#include <cstdint>
#include <string>

#include "model/design_point.h"
#include "serve/json.h"

namespace flexcl::serve {

/// Version of the request *and* response schema (first key of every
/// response). Bumped whenever a key is added, removed or reordered.
inline constexpr int kServeSchemaVersion = 1;

struct Request {
  std::uint64_t id = 0;
  std::string op;
  std::string source;
  std::string kernel;
  std::string device = "virtex7";
  std::uint64_t global = 1024;
  std::uint64_t globalY = 1;
  std::uint64_t elems = 0;  ///< 0 = use global size
  model::DesignPoint design;
  /// lint: cross-check static classification against the profiler.
  bool crossCheck = true;
  /// explore: also run the simulator + SDAccel evaluators (slow; off answers
  /// from the analytical model only, the serving-path default).
  bool simulate = false;
};

/// Outcome of parsing one request line. `ok == false` carries a message for
/// the error response; `id` is recovered from the line when possible so the
/// error can still be correlated by the client.
struct ParsedRequest {
  bool ok = false;
  std::string error;
  Request request;
};

/// Parses one line of the protocol. Never throws; malformed JSON, a missing
/// op, or out-of-domain fields come back as ok == false.
ParsedRequest parseRequest(const std::string& line);

/// Response envelope, pinned order:
///   {"schema_version": 1, "id": N, "op": "...", "ok": true, "result": {...}}
///   {"schema_version": 1, "id": N, "op": "...", "ok": false, "error": "..."}
/// `resultJson` must already be a JSON value (object/string/number).
std::string renderResponse(std::uint64_t id, const std::string& op,
                           const std::string& resultJson);
std::string renderErrorResponse(std::uint64_t id, const std::string& op,
                                const std::string& error);

/// Serializes a DesignPoint the way requests spell it (pinned order); used by
/// responses that echo designs and by the replay-bench request recorder.
std::string renderDesign(const model::DesignPoint& dp);

}  // namespace flexcl::serve
