#include "serve/dispatcher.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "analysis/analyze.h"
#include "dse/design_space.h"
#include "dse/explorer.h"
#include "obs/explain.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/request_scope.h"
#include "obs/trace.h"
#include "serve/store/codec.h"
#include "support/rng.h"
#include "workloads/synth_args.h"

namespace flexcl::serve {
namespace {

std::uint64_t hashString(const std::string& s) {
  return stableHash(s.data(), s.size());
}

/// Stable label for the per-kind latency histograms. Client-supplied op
/// strings are unbounded; anything unknown collapses into "other" so the
/// registry cannot be grown by request spam.
const char* opLabel(const std::string& op) {
  static constexpr const char* kKnown[] = {
      "estimate", "explore", "lint",    "explain", "stats",
      "metrics",  "health",  "ping",    "shutdown"};
  for (const char* known : kKnown) {
    if (op == known) return known;
  }
  return "other";
}

/// Marks the current request (if any) as having actually computed something
/// — called from the compute/render lambdas that only run on a cache miss,
/// which is what makes the log's `cache` field race-free.
void markRequestComputed() {
  if (obs::RequestScope* scope = obs::RequestScope::current()) {
    scope->markComputed();
  }
}

bool kernelHasBarriers(const ir::Function& fn) {
  for (const auto& bb : fn.blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::Barrier) return true;
    }
  }
  return false;
}

/// EvalKey pair + payload wrapper: eval-family store entries re-encode the
/// true key (the file name is a hash of it, not invertible).
std::vector<std::uint8_t> wrapEvalPayload(const runtime::EvalKey& key,
                                          ByteWriter&& body) {
  ByteWriter w;
  w.u64(key.kernelHash);
  w.u64(key.designId);
  for (std::uint8_t b : body.bytes()) w.u8(b);
  return w.take();
}

}  // namespace

Dispatcher::Dispatcher(DispatcherOptions options)
    : options_(std::move(options)), startedAtUs_(obs::monotonicUs()) {
  if (options_.storeDir.empty()) return;
  auto store = std::make_unique<Store>(options_.storeDir);
  if (!store->ok()) {
    storeError_ = store->error();
    return;
  }
  store_ = std::move(store);

  // Eager warm start: every family whose keys are process-stable is seeded
  // now. Profiles wait for their context (their cache key needs the live
  // ir::Function); compile *successes* are never seeded (the IR is not
  // persisted), only failures.
  const auto mark = [this](Store::Family f, std::uint64_t key) {
    saved_.insert({static_cast<std::uint32_t>(f), key});
  };
  store_->loadAll(Store::Family::FlexclEval, kEstimateCodecVersion,
                  [&](std::uint64_t fileKey, const std::vector<std::uint8_t>& bytes) {
                    ByteReader r(bytes);
                    runtime::EvalKey key{r.u64(), r.u64()};
                    model::Estimate e;
                    if (decodeEstimate(r, &e)) {
                      evalCache_.seedFlexcl(key, std::move(e));
                      mark(Store::Family::FlexclEval, fileKey);
                    }
                  });
  store_->loadAll(Store::Family::SdaccelEval, kSdaccelCodecVersion,
                  [&](std::uint64_t fileKey, const std::vector<std::uint8_t>& bytes) {
                    ByteReader r(bytes);
                    runtime::EvalKey key{r.u64(), r.u64()};
                    std::optional<sdaccel::SdaccelEstimate> e;
                    if (decodeSdaccel(r, &e)) {
                      evalCache_.seedSdaccel(key, std::move(e));
                      mark(Store::Family::SdaccelEval, fileKey);
                    }
                  });
  store_->loadAll(Store::Family::SimEval, kSimResultCodecVersion,
                  [&](std::uint64_t fileKey, const std::vector<std::uint8_t>& bytes) {
                    ByteReader r(bytes);
                    runtime::EvalKey key{r.u64(), r.u64()};
                    sim::SimResult s;
                    if (decodeSimResult(r, &s)) {
                      evalCache_.seedSim(key, std::move(s));
                      mark(Store::Family::SimEval, fileKey);
                    }
                  });
  store_->loadAll(Store::Family::Response, kResponseCodecVersion,
                  [&](std::uint64_t key, const std::vector<std::uint8_t>& bytes) {
                    responses_.seed(key, std::string(bytes.begin(), bytes.end()));
                    mark(Store::Family::Response, key);
                  });
  store_->loadAll(Store::Family::Compile, kCompileCodecVersion,
                  [&](std::uint64_t key, const std::vector<std::uint8_t>& bytes) {
                    ByteReader r(bytes);
                    CompileOutcome outcome;
                    if (decodeCompileOutcome(r, &outcome)) {
                      if (!outcome.ok) {
                        compileCache_.seedFailure(outcome.key, outcome.error);
                      }
                      mark(Store::Family::Compile, key);
                    }
                  });
  obs::setGauge("serve.store.warm_entries",
                static_cast<double>(saved_.size()));
}

Dispatcher::~Dispatcher() = default;

Dispatcher::LaunchContext* Dispatcher::contextFor(const Request& request,
                                                  std::string* error) {
  obs::PhaseTimer phase(obs::RequestScope::current(), "context");
  if (request.device != "virtex7" && request.device != "ku060") {
    *error = "unknown device '" + request.device + "'";
    return nullptr;
  }
  const std::uint64_t elems =
      request.elems ? request.elems
                    : request.global * std::max<std::uint64_t>(1, request.globalY);
  const std::uint64_t kernelHash =
      runtime::kernelKeyHash(request.source, request.kernel);
  std::uint64_t scope = stableHashCombine(kernelHash, hashString(request.device));
  scope = stableHashCombine(scope, request.global);
  scope = stableHashCombine(scope, request.globalY);
  scope = stableHashCombine(scope, elems);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = contexts_.find(scope);
    if (it != contexts_.end()) {
      if (!it->second->compiled->ok) {
        *error = it->second->compiled->error;
        return nullptr;
      }
      return it->second.get();
    }
  }

  // Compile outside the contexts lock (concurrent requests for the same
  // kernel compile once inside the CompileCache anyway).
  auto ctx = std::make_unique<LaunchContext>();
  ctx->scopeHash = scope;
  ctx->compiled = compileCache_.compile(request.source, request.kernel);
  if (store_) {
    CompileOutcome outcome;
    outcome.key = ctx->compiled->hash;
    outcome.ok = ctx->compiled->ok;
    outcome.error = ctx->compiled->error;
    outcome.kernelName = request.kernel;
    ByteWriter w;
    encodeCompileOutcome(w, outcome);
    persist(Store::Family::Compile, outcome.key, kCompileCodecVersion, w.take());
  }
  if (ctx->compiled->ok) {
    workloads::synthesiseArgs(*ctx->compiled->fn, elems, &ctx->buffers,
                              &ctx->launch.args);
    ctx->launch.fn = ctx->compiled->fn;
    ctx->launch.range.global = {request.global, request.globalY, 1};
    ctx->launch.buffers = &ctx->buffers;
    ctx->flexcl = std::make_unique<model::FlexCl>(
        request.device == "ku060" ? model::Device::ku060()
                                  : model::Device::virtex7(),
        options_.model);
    // Mirror Explorer's EvalCache key prefix exactly so serve requests and a
    // simulate-mode exploration of the same launch share entries.
    std::uint64_t base = ctx->compiled->hash;
    base = stableHashCombine(base, hashString(ctx->flexcl->device().name));
    base = stableHashCombine(base, hashString(ctx->launch.fn->name()));
    base = stableHashCombine(base, ctx->launch.fn->instructionCount());
    for (std::uint64_t g : ctx->launch.range.global) {
      base = stableHashCombine(base, g);
    }
    ctx->evalKeyBase = base;
    ctx->profileKeyBase = stableHashCombine(
        stableHashCombine(stableHashCombine(kernelHash, request.global),
                          request.globalY),
        elems);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = contexts_.emplace(scope, std::move(ctx));
  (void)inserted;  // a racing creator won; use theirs
  if (!it->second->compiled->ok) {
    *error = it->second->compiled->error;
    return nullptr;
  }
  obs::setGauge("serve.launch_contexts", static_cast<double>(contexts_.size()));
  return it->second.get();
}

void Dispatcher::seedProfileFor(LaunchContext& ctx,
                                const model::DesignPoint& design) {
  if (!store_) return;
  const interp::NdRange range = model::FlexCl::rangeFor(ctx.launch, design);
  std::uint64_t key = ctx.profileKeyBase;
  for (std::uint64_t l : range.local) key = stableHashCombine(key, l);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ctx.profileKeysSeen.insert(key).second) return;
  }
  const auto bytes = store_->load(Store::Family::Profile, key, kProfileCodecVersion);
  if (!bytes) return;
  ByteReader r(*bytes);
  interp::KernelProfile profile;
  if (!decodeProfile(r, &profile)) return;
  if (ctx.flexcl->seedProfile(ctx.launch, design, std::move(profile))) {
    std::lock_guard<std::mutex> lock(mutex_);
    saved_.insert({static_cast<std::uint32_t>(Store::Family::Profile), key});
  }
}

void Dispatcher::seedRaceFor(LaunchContext& ctx,
                             const model::DesignPoint& design) {
  if (!store_) return;
  const interp::NdRange range = model::FlexCl::rangeFor(ctx.launch, design);
  std::uint64_t key = ctx.profileKeyBase;
  for (std::uint64_t l : range.local) key = stableHashCombine(key, l);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ctx.raceKeysSeen.insert(key).second) return;
  }
  const auto bytes = store_->load(Store::Family::Race, key, kRaceCodecVersion);
  if (!bytes) return;
  ByteReader r(*bytes);
  analysis::raceverify::RaceVerdict verdict;
  if (!decodeRaceVerdict(r, &verdict)) return;
  if (ctx.flexcl->seedRaceVerdict(ctx.launch, design, std::move(verdict))) {
    std::lock_guard<std::mutex> lock(mutex_);
    saved_.insert({static_cast<std::uint32_t>(Store::Family::Race), key});
  }
}

std::shared_ptr<const model::Estimate> Dispatcher::estimateVia(
    LaunchContext& ctx, const model::DesignPoint& design) {
  obs::PhaseTimer phase(obs::RequestScope::current(), "eval");
  seedProfileFor(ctx, design);
  seedRaceFor(ctx, design);
  auto est = evalCache_.flexcl(ctx.evalKeyBase, design, [&] {
    markRequestComputed();
    return ctx.flexcl->estimate(ctx.launch, design);
  });
  if (store_) {
    const runtime::EvalKey key{ctx.evalKeyBase, design.stableId()};
    ByteWriter body;
    encodeEstimate(body, *est);
    persist(Store::Family::FlexclEval,
            stableHashCombine(key.kernelHash, key.designId),
            kEstimateCodecVersion, wrapEvalPayload(key, std::move(body)));
  }
  return est;
}

std::string Dispatcher::responseVia(std::uint64_t key,
                                    const std::function<std::string()>& render) {
  obs::PhaseTimer phase(obs::RequestScope::current(), "render");
  auto result = responses_.getOrCompute(key, [&] {
    markRequestComputed();
    return render();
  });
  if (store_) {
    persist(Store::Family::Response, key, kResponseCodecVersion,
            std::vector<std::uint8_t>(result->begin(), result->end()));
  }
  return *result;
}

void Dispatcher::persist(Store::Family family, std::uint64_t key,
                         std::uint32_t payloadVersion,
                         std::vector<std::uint8_t> payload) {
  if (!store_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!saved_.insert({static_cast<std::uint32_t>(family), key}).second) {
      return;
    }
  }
  if (!store_->save(family, key, payloadVersion, payload)) {
    // Retry on a later request rather than losing the entry for good.
    std::lock_guard<std::mutex> lock(mutex_);
    saved_.erase({static_cast<std::uint32_t>(family), key});
  }
}

void Dispatcher::persistCaches() {
  if (!store_) return;
  // Eval families: the in-memory key is re-encoded into the payload (the
  // file name hash is not invertible). persist() dedups, so steady-state
  // traffic skips everything already on disk.
  evalCache_.forEachFlexcl([&](const runtime::EvalKey& key,
                               const model::Estimate& e) {
    ByteWriter body;
    encodeEstimate(body, e);
    persist(Store::Family::FlexclEval,
            stableHashCombine(key.kernelHash, key.designId),
            kEstimateCodecVersion, wrapEvalPayload(key, std::move(body)));
  });
  evalCache_.forEachSdaccel(
      [&](const runtime::EvalKey& key,
          const std::optional<sdaccel::SdaccelEstimate>& e) {
        ByteWriter body;
        encodeSdaccel(body, e);
        persist(Store::Family::SdaccelEval,
                stableHashCombine(key.kernelHash, key.designId),
                kSdaccelCodecVersion, wrapEvalPayload(key, std::move(body)));
      });
  evalCache_.forEachSim([&](const runtime::EvalKey& key,
                            const sim::SimResult& s) {
    ByteWriter body;
    encodeSimResult(body, s);
    persist(Store::Family::SimEval,
            stableHashCombine(key.kernelHash, key.designId),
            kSimResultCodecVersion, wrapEvalPayload(key, std::move(body)));
  });
  // Profiles, per context (the store key mixes the kernel content hash and
  // geometry with the effective local size).
  std::vector<LaunchContext*> contexts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    contexts.reserve(contexts_.size());
    for (auto& [scope, ctx] : contexts_) contexts.push_back(ctx.get());
  }
  for (LaunchContext* ctx : contexts) {
    if (!ctx->flexcl) continue;
    ctx->flexcl->forEachProfile([&](std::uint64_t l0, std::uint64_t l1,
                                    std::uint64_t l2,
                                    const interp::KernelProfile& profile) {
      std::uint64_t key = ctx->profileKeyBase;
      key = stableHashCombine(key, l0);
      key = stableHashCombine(key, l1);
      key = stableHashCombine(key, l2);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (saved_.count({static_cast<std::uint32_t>(Store::Family::Profile),
                          key}) > 0) {
          return;
        }
      }
      ByteWriter w;
      encodeProfile(w, profile);
      persist(Store::Family::Profile, key, kProfileCodecVersion, w.take());
    });
    ctx->flexcl->forEachRaceVerdict(
        [&](std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
            const analysis::raceverify::RaceVerdict& verdict) {
          std::uint64_t key = ctx->profileKeyBase;
          key = stableHashCombine(key, l0);
          key = stableHashCombine(key, l1);
          key = stableHashCombine(key, l2);
          {
            std::lock_guard<std::mutex> lock(mutex_);
            if (saved_.count({static_cast<std::uint32_t>(Store::Family::Race),
                              key}) > 0) {
              return;
            }
          }
          ByteWriter w;
          encodeRaceVerdict(w, verdict);
          persist(Store::Family::Race, key, kRaceCodecVersion, w.take());
        });
  }
}

std::string Dispatcher::handleEstimate(const Request& request) {
  std::string error;
  LaunchContext* ctx = contextFor(request, &error);
  if (ctx == nullptr) return renderErrorResponse(request.id, request.op, error);
  const auto est = estimateVia(*ctx, request.design);
  if (!est->ok) return renderErrorResponse(request.id, request.op, est->error);
  std::ostringstream os;
  os << "{\"kernel\": \"" << jsonEscapeString(request.kernel) << "\""
     << ", \"device\": \"" << jsonEscapeString(request.device) << "\""
     << ", \"design\": " << renderDesign(request.design)
     << ", \"cycles\": " << jsonNumber(est->cycles)
     << ", \"ms\": " << jsonNumber(est->milliseconds)
     << ", \"mode\": \"" << model::commModeName(est->mode) << "\""
     << ", \"binding\": \"" << est->breakdown.binding() << "\""
     << ", \"breakdown\": {\"compute\": " << jsonNumber(est->breakdown.compute)
     << ", \"memory\": " << jsonNumber(est->breakdown.memory)
     << ", \"fill_drain\": " << jsonNumber(est->breakdown.fillDrain)
     << ", \"dispatch\": " << jsonNumber(est->breakdown.dispatch) << "}"
     << ", \"ii_comp\": " << jsonNumber(est->pe.iiComp)
     << ", \"ii_wi\": " << jsonNumber(est->iiWi)
     << ", \"depth\": " << jsonNumber(est->pe.depth)
     << ", \"effective_pes\": " << est->cu.effectivePes
     << ", \"effective_cus\": " << est->kernelCompute.effectiveCus
     << ", \"barrier_count\": " << est->barrierCount << "}";
  return renderResponse(request.id, request.op, os.str());
}

std::string Dispatcher::handleExplore(const Request& request) {
  std::string error;
  LaunchContext* ctx = contextFor(request, &error);
  if (ctx == nullptr) return renderErrorResponse(request.id, request.op, error);
  const bool barriers = kernelHasBarriers(*ctx->launch.fn);
  const auto space = dse::enumerateDesignSpace(ctx->launch.range, barriers);
  if (space.empty()) {
    return renderErrorResponse(request.id, request.op, "empty design space");
  }

  if (request.simulate) {
    // Full three-evaluator exploration (slow): delegate to the Explorer with
    // the dispatcher's shared EvalCache. Serial inside this request — the
    // serving pool is the parallelism layer.
    dse::ExplorerOptions exOpts;
    exOpts.jobs = 1;
    exOpts.evalCache = &evalCache_;
    exOpts.kernelHash = ctx->compiled->hash;
    exOpts.lint = ctx->compiled->lint.get();
    dse::Explorer explorer(*ctx->flexcl, ctx->launch, exOpts);
    const dse::ExplorationResult result = explorer.explore(space);
    if (result.bestByFlexcl < 0) {
      return renderErrorResponse(request.id, request.op, "exploration failed");
    }
    const auto& best =
        result.designs[static_cast<std::size_t>(result.bestByFlexcl)];
    std::ostringstream os;
    os << "{\"kernel\": \"" << jsonEscapeString(request.kernel) << "\""
       << ", \"device\": \"" << jsonEscapeString(request.device) << "\""
       << ", \"designs\": " << space.size()
       << ", \"skipped\": " << result.skippedCount
       << ", \"best_design\": " << renderDesign(best.design)
       << ", \"best_cycles\": " << jsonNumber(best.flexclCycles)
       << ", \"best_ms\": "
       << jsonNumber(ctx->flexcl->device().cyclesToMs(best.flexclCycles))
       << ", \"sim\": {\"pick_gap_pct\": " << jsonNumber(result.pickGapPct)
       << ", \"avg_error_pct\": " << jsonNumber(result.avgFlexclErrorPct)
       << "}}";
    return renderResponse(request.id, request.op, os.str());
  }

  // Serving-path default: analytical model only, one EvalCache entry per
  // design — the same entries estimate requests use, so a warm store answers
  // the whole sweep from seeds.
  int evaluated = 0;
  int best = -1;
  double bestCycles = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const auto est = estimateVia(*ctx, space[i]);
    if (!est->ok) continue;
    ++evaluated;
    if (best < 0 || est->cycles < bestCycles) {
      best = static_cast<int>(i);
      bestCycles = est->cycles;
    }
  }
  if (best < 0) {
    return renderErrorResponse(request.id, request.op,
                               "no feasible design in the space");
  }
  std::ostringstream os;
  os << "{\"kernel\": \"" << jsonEscapeString(request.kernel) << "\""
     << ", \"device\": \"" << jsonEscapeString(request.device) << "\""
     << ", \"designs\": " << space.size() << ", \"evaluated\": " << evaluated
     << ", \"best_design\": "
     << renderDesign(space[static_cast<std::size_t>(best)])
     << ", \"best_cycles\": " << jsonNumber(bestCycles) << ", \"best_ms\": "
     << jsonNumber(ctx->flexcl->device().cyclesToMs(bestCycles)) << "}";
  return renderResponse(request.id, request.op, os.str());
}

std::string Dispatcher::handleLint(const Request& request) {
  std::string error;
  LaunchContext* ctx = contextFor(request, &error);
  if (ctx == nullptr) return renderErrorResponse(request.id, request.op, error);
  std::uint64_t key = stableHashCombine(ctx->scopeHash, hashString("lint"));
  key = stableHashCombine(key, request.design.workGroupSize[0]);
  key = stableHashCombine(key, request.design.workGroupSize[1]);
  key = stableHashCombine(key, request.crossCheck ? 1 : 0);
  const std::string result = responseVia(key, [&] {
    interp::NdRange range = ctx->launch.range;
    range.local = {request.design.workGroupSize[0],
                   request.design.workGroupSize[1], 1};
    analysis::LintOptions lintOpts;
    lintOpts.range = &range;
    lintOpts.args = &ctx->launch.args;
    lintOpts.buffers = &ctx->buffers;
    lintOpts.profileCrossCheck = request.crossCheck;
    const analysis::LintReport report =
        analysis::runLintPasses(*ctx->launch.fn, lintOpts);
    return analysis::renderJson(report);
  });
  return renderResponse(request.id, request.op, result);
}

std::string Dispatcher::handleExplain(const Request& request) {
  std::string error;
  LaunchContext* ctx = contextFor(request, &error);
  if (ctx == nullptr) return renderErrorResponse(request.id, request.op, error);
  seedProfileFor(*ctx, request.design);
  const std::uint64_t key =
      stableHashCombine(stableHashCombine(ctx->scopeHash, hashString("explain")),
                        request.design.stableId());
  const std::string result = responseVia(key, [&] {
    const obs::ExplainReport report = obs::explainEstimate(
        *ctx->flexcl, ctx->launch, request.design, request.kernel);
    return report.json();
  });
  return renderResponse(request.id, request.op, result);
}

std::string Dispatcher::handleStats(const Request& request) {
  const runtime::Stats s = stats();
  std::ostringstream os;
  os << "{\"requests\": " << (handledOk_.load() + handledError_.load())
     << ", \"errors\": " << handledError_.load()
     << ", \"runtime\": " << s.json()
     << ", \"responses\": " << responseCounters().json();
  if (store_) {
    const Store::StoreStats ss = store_->stats();
    os << ", \"store\": {\"dir\": \"" << jsonEscapeString(store_->dir())
       << "\", \"entries\": " << ss.totalEntries()
       << ", \"bytes\": " << ss.totalBytes()
       << ", \"quarantined\": " << ss.totalQuarantined() << "}";
  }
  os << "}";
  return renderResponse(request.id, request.op, os.str());
}

std::string Dispatcher::handleMetrics(const Request& request) {
  // Refresh the cache gauges so the scrape is a coherent point-in-time view
  // (published directly — the metrics op answers even with obs disabled,
  // counters simply read zero then).
  stats().publishTo(obs::Registry::global());
  const double uptimeS = (obs::monotonicUs() - startedAtUs_) * 1e-6;
  const std::uint64_t inFlight =
      pendingProvider_ ? pendingProvider_()
                       : inFlight_.load(std::memory_order_relaxed);
  std::ostringstream os;
  os << "{\"uptime_s\": ";
  os.precision(3);
  os << std::fixed << uptimeS;
  os << ", \"requests\": " << (handledOk_.load() + handledError_.load())
     << ", \"ok\": " << handledOk_.load()
     << ", \"errors\": " << handledError_.load()
     << ", \"in_flight\": " << inFlight
     << ", \"registry\": " << obs::Registry::global().json();
  if (store_) {
    const Store::StoreStats ss = store_->stats();
    os << ", \"store\": {\"dir\": \"" << jsonEscapeString(store_->dir())
       << "\", \"entries\": " << ss.totalEntries()
       << ", \"bytes\": " << ss.totalBytes()
       << ", \"quarantined\": " << ss.totalQuarantined() << "}";
  }
  os << "}";
  return renderResponse(request.id, request.op, os.str());
}

std::string Dispatcher::handleHealth(const Request& request) {
  const double uptimeS = (obs::monotonicUs() - startedAtUs_) * 1e-6;
  const std::uint64_t inFlight =
      pendingProvider_ ? pendingProvider_()
                       : inFlight_.load(std::memory_order_relaxed);
  const char* status = "ok";
  std::ostringstream storeJson;
  if (store_) {
    const Store::StoreStats ss = store_->stats();
    if (ss.totalQuarantined() > 0) status = "degraded";
    storeJson << "{\"present\": true, \"entries\": " << ss.totalEntries()
              << ", \"bytes\": " << ss.totalBytes()
              << ", \"quarantined\": " << ss.totalQuarantined() << "}";
  } else {
    storeJson << "{\"present\": false}";
  }
  std::ostringstream os;
  os << "{\"status\": \"" << status << "\", \"uptime_s\": ";
  os.precision(3);
  os << std::fixed << uptimeS;
  os << ", \"requests\": " << (handledOk_.load() + handledError_.load())
     << ", \"ok\": " << handledOk_.load()
     << ", \"errors\": " << handledError_.load()
     << ", \"in_flight\": " << inFlight << ", \"store\": " << storeJson.str()
     << "}";
  return renderResponse(request.id, request.op, os.str());
}

std::string Dispatcher::handle(const Request& request) {
  obs::add("serve.requests");
  inFlight_.fetch_add(1, std::memory_order_relaxed);
  // Reuse the transport-installed scope (it carries the queue wait); one-shot
  // and direct-handle() callers get a local one so phase/provenance
  // attribution works identically.
  obs::RequestScope* scope = obs::RequestScope::current();
  std::optional<obs::RequestScope> localScope;
  if (scope == nullptr) {
    localScope.emplace(request.id, request.op);
    scope = &*localScope;
  } else if (scope->kind().empty()) {
    scope->setKind(request.op);
  }
  const bool timing = obs::requestTimingEnabled();
  const double startUs = timing ? obs::monotonicUs() : -1;
  obs::Span span("serve", [&] { return request.op; });

  std::string response;
  try {
    if (request.op == "ping") {
      response = renderResponse(request.id, request.op, "\"pong\"");
    } else if (request.op == "shutdown") {
      response = renderResponse(request.id, request.op, "\"bye\"");
    } else if (request.op == "stats") {
      response = handleStats(request);
    } else if (request.op == "metrics") {
      response = handleMetrics(request);
    } else if (request.op == "health") {
      response = handleHealth(request);
    } else if (request.op == "estimate") {
      response = handleEstimate(request);
    } else if (request.op == "explore") {
      response = handleExplore(request);
    } else if (request.op == "lint") {
      response = handleLint(request);
    } else if (request.op == "explain") {
      response = handleExplain(request);
    } else {
      response =
          renderErrorResponse(request.id, request.op,
                              "unknown op '" + request.op + "'");
    }
  } catch (const std::exception& e) {
    response = renderErrorResponse(request.id, request.op, e.what());
  }
  // The envelope's "ok" is the first one in the line (result JSON follows).
  const std::size_t okTrue = response.find("\"ok\": true");
  const std::size_t okFalse = response.find("\"ok\": false");
  const bool ok = okTrue != std::string::npos &&
                  (okFalse == std::string::npos || okTrue < okFalse);
  if (ok) {
    handledOk_.fetch_add(1, std::memory_order_relaxed);
  } else {
    handledError_.fetch_add(1, std::memory_order_relaxed);
    obs::add("serve.request_errors");
  }
  {
    obs::PhaseTimer phase(scope, "persist");
    persistCaches();
  }
  inFlight_.fetch_sub(1, std::memory_order_relaxed);
  if (timing && startUs >= 0) {
    const double durationUs = obs::monotonicUs() - startUs;
    obs::record(std::string("serve.request.") + opLabel(request.op) +
                    ".latency_us",
                durationUs);
    if (obs::logEnabled()) {
      obs::LogEvent event;
      event.event = "request";
      event.requestId = request.id;
      event.kind = request.op;
      event.outcome = ok ? "ok" : "error";
      event.provenance = scope->provenance();
      event.durationUs = durationUs;
      event.queueWaitUs = scope->queueWaitUs();
      event.phases = scope->phases();
      if (!ok) event.level = "error";
      obs::logEvent(event);
    }
  }
  return response;
}

std::string Dispatcher::handleLine(const std::string& line) {
  ParsedRequest parsed;
  {
    obs::PhaseTimer phase(obs::RequestScope::current(), "parse");
    parsed = parseRequest(line);
  }
  if (!parsed.ok) {
    obs::add("serve.requests");
    obs::add("serve.request_errors");
    handledError_.fetch_add(1, std::memory_order_relaxed);
    if (obs::logEnabled()) {
      obs::LogEvent event;
      event.level = "error";
      event.event = "request";
      event.requestId = parsed.request.id;
      event.kind = parsed.request.op.empty() ? "invalid" : parsed.request.op;
      event.outcome = "error";
      event.detail = parsed.error;
      obs::logEvent(event);
    }
    return renderErrorResponse(parsed.request.id, parsed.request.op,
                               parsed.error);
  }
  return handle(parsed.request);
}

runtime::Stats Dispatcher::stats() const {
  runtime::Stats s;
  s.compile = compileCache_.counters();
  s.flexclEval = evalCache_.flexclCounters();
  s.sdaccelEval = evalCache_.sdaccelCounters();
  s.simEval = evalCache_.simCounters();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [scope, ctx] : contexts_) {
    if (!ctx->flexcl) continue;
    s.profile += ctx->flexcl->profileCacheCounters();
    s.analysis += ctx->flexcl->analysisCacheCounters();
  }
  return s;
}

}  // namespace flexcl::serve
