#include "serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/log.h"
#include "obs/registry.h"
#include "obs/request_scope.h"

namespace flexcl::serve {

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = runtime::defaultJobs();
  options_.jobs = std::max(1, options_.jobs);
  dispatcher_ = std::make_unique<Dispatcher>(options_.dispatcher);
  dispatcher_->setPendingProvider([this] {
    std::lock_guard<std::mutex> lock(stateMutex_);
    return pendingJobs_;
  });
  if (options_.jobs > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(options_.jobs);
  }
}

Server::~Server() {
  requestStop();
  closeListener();
  if (listenerThread_.joinable()) listenerThread_.join();
  for (std::thread& t : connectionThreads_) {
    if (t.joinable()) t.join();
  }
}

void Server::requestStop() {
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    stopRequested_ = true;
  }
  stateCv_.notify_all();
  // Unblock connection reads so their loops observe the stop.
  std::lock_guard<std::mutex> lock(connectionsMutex_);
  for (int fd : connectionFds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::waitForStop() {
  std::unique_lock<std::mutex> lock(stateMutex_);
  stateCv_.wait(lock, [&] { return stopRequested_; });
}

void Server::drainJobs() {
  std::unique_lock<std::mutex> lock(stateMutex_);
  stateCv_.wait(lock, [&] { return pendingJobs_ == 0; });
}

void Server::submitLine(std::string line,
                        const std::function<void(const std::string&)>& write) {
  if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
    return;  // blank keep-alive line
  }
  // `shutdown` is transport-level: parse here so the stop takes effect even
  // while workers are busy. The response still goes through the normal path
  // (and drains after in-flight jobs under jobs == 1 semantics).
  const ParsedRequest parsed = parseRequest(line);
  const bool isShutdown = parsed.ok && parsed.request.op == "shutdown";

  // Stamp the submit time so the job can attribute its queue wait (clock
  // read gated: with observability and logging both off this is two relaxed
  // loads). The id/op recovered by the parse above seed the request scope;
  // the dispatcher re-parses inside the job as before.
  const double submitUs =
      obs::requestTimingEnabled() ? obs::monotonicUs() : -1;
  auto job = [this, line = std::move(line), write, id = parsed.request.id,
              op = parsed.request.op, submitUs] {
    obs::RequestScope scope(id, op.empty() ? std::string("invalid") : op);
    if (submitUs >= 0) {
      const double waitUs = obs::monotonicUs() - submitUs;
      scope.setQueueWaitUs(waitUs);
      obs::record("serve.queue_wait_us", waitUs);
    }
    const std::string response = dispatcher_->handleLine(line);
    write(response);
    std::uint64_t pending = 0;
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      pending = --pendingJobs_;
    }
    obs::setGauge("serve.queue_depth", static_cast<double>(pending));
    stateCv_.notify_all();
  };
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    ++pendingJobs_;
    obs::setGauge("serve.queue_depth", static_cast<double>(pendingJobs_));
  }
  if (pool_) {
    pool_->submit(job);
  } else {
    job();
  }
  if (isShutdown) {
    drainJobs();
    requestStop();
  }
}

int Server::run(std::istream& in, std::ostream& out) {
  if (!dispatcher_->storeOk() && !options_.dispatcher.storeDir.empty()) {
    error_ = dispatcher_->storeError();
    return 1;
  }
  if (!options_.socketPath.empty()) {
    if (!startListener()) return 1;
    listenerThread_ = std::thread([this] { listenerLoop(); });
  }
  if (obs::logEnabled()) {
    obs::LogEvent event;
    event.event = "serve.start";
    event.detail = "jobs=" + std::to_string(options_.jobs) +
                   (options_.socketPath.empty()
                        ? std::string()
                        : " socket=" + options_.socketPath);
    obs::logEvent(event);
  }

  std::mutex outMutex;
  const auto writeOut = [&](const std::string& response) {
    std::lock_guard<std::mutex> lock(outMutex);
    out << response << "\n";
    out.flush();
  };

  std::string line;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      if (stopRequested_) break;
    }
    if (!std::getline(in, line)) break;
    submitLine(std::move(line), writeOut);
    line.clear();
  }

  if (options_.socketPath.empty()) {
    drainJobs();
    requestStop();
  } else {
    // Daemon mode: input EOF keeps serving the socket until `shutdown`.
    waitForStop();
    drainJobs();
  }
  closeListener();
  if (listenerThread_.joinable()) listenerThread_.join();
  {
    std::lock_guard<std::mutex> lock(connectionsMutex_);
    for (int fd : connectionFds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connectionThreads_) {
    if (t.joinable()) t.join();
  }
  connectionThreads_.clear();
  if (obs::logEnabled()) {
    obs::LogEvent event;
    event.event = "serve.stop";
    event.detail = "ok=" + std::to_string(dispatcher_->handledOk()) +
                   " errors=" + std::to_string(dispatcher_->handledError());
    obs::logEvent(event);
  }
  return 0;
}

bool Server::startListener() {
  sockaddr_un addr{};
  if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + options_.socketPath;
    return false;
  }
  ::unlink(options_.socketPath.c_str());  // stale socket from a prior run
  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    error_ = "cannot create socket: " + std::string(std::strerror(errno));
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socketPath.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd_, 16) != 0) {
    error_ = "cannot bind/listen on '" + options_.socketPath +
             "': " + std::string(std::strerror(errno));
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  return true;
}

void Server::listenerLoop() {
  while (true) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed (or fatal) => stop accepting
    obs::add("serve.connections");
    std::lock_guard<std::mutex> lock(connectionsMutex_);
    connectionFds_.push_back(fd);
    connectionThreads_.emplace_back([this, fd] { connectionLoop(fd); });
  }
}

void Server::connectionLoop(int fd) {
  auto outMutex = std::make_shared<std::mutex>();
  const auto writeFd = [fd, outMutex](const std::string& response) {
    std::lock_guard<std::mutex> lock(*outMutex);
    std::string framed = response;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
      );
      if (n <= 0) return;  // peer went away; drop the response
      off += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      submitLine(buffer.substr(start, nl - start), writeFd);
      start = nl + 1;
    }
    buffer.erase(0, start);
    {
      std::lock_guard<std::mutex> lock(stateMutex_);
      if (stopRequested_) break;
    }
  }
  // Flush any unterminated trailing line before closing.
  if (!buffer.empty()) submitLine(std::move(buffer), writeFd);
  drainJobs();
  ::close(fd);
}

void Server::closeListener() {
  if (listenFd_ < 0) return;
  ::shutdown(listenFd_, SHUT_RDWR);
  ::close(listenFd_);
  listenFd_ = -1;
  if (!options_.socketPath.empty()) ::unlink(options_.socketPath.c_str());
}

}  // namespace flexcl::serve
