// Memoization of the expensive front half of every evaluation: OpenCL source
// -> preprocessed text -> AST -> IR. Keyed by a stable hash of the
// *preprocessed* source, the kernel name, and the build options (defines), so
// textually different invocations that preprocess to the same kernel share
// one compilation. The per-design back half (profiling, CDFG analysis,
// estimates) is covered by EvalCache / FlexCl's profile cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "analysis/report.h"
#include "ir/lower.h"
#include "runtime/cache.h"

namespace flexcl::runtime {

/// One cached compilation. `ok == false` carries the diagnostics instead of a
/// module; failures are cached too (recompiling a broken kernel per design
/// point would be the same waste as recompiling a working one).
struct CompiledKernel {
  std::uint64_t hash = 0;  ///< the cache key (kernelKeyHash)
  bool ok = false;
  std::string error;  ///< diagnostics when !ok, or kernel-not-found message
  std::shared_ptr<const ir::CompiledProgram> program;
  const ir::Function* fn = nullptr;  ///< the requested kernel inside program
  /// Static-only lint report of `fn` (no launch info: verifier, trip-count,
  /// barrier and local-dependence passes), cached with the compilation so
  /// per-design evaluation can consult feasibility without re-linting.
  std::shared_ptr<const analysis::LintReport> lint;
};

/// Stable key: hash of (preprocessed source, kernel name, sorted defines).
/// Exposed so callers that compile through other paths (e.g. the workload
/// suites) can still key EvalCache consistently.
std::uint64_t kernelKeyHash(
    const std::string& source, const std::string& kernelName,
    const std::unordered_map<std::string, std::string>& defines = {});

class CompileCache {
 public:
  /// `capacity` bounds the number of retained compilations (0 = unbounded).
  explicit CompileCache(std::size_t capacity = 0) : cache_(capacity) {}

  /// Returns the (possibly cached) compilation of `kernelName` in `source`.
  /// Thread-safe; concurrent requests for the same kernel compile once.
  std::shared_ptr<const CompiledKernel> compile(
      const std::string& source, const std::string& kernelName,
      const std::unordered_map<std::string, std::string>& defines = {});

  /// Serve-store warm start (DESIGN.md §12): plants a *failed* compilation
  /// (diagnostics only) deserialized from disk, so a warm process rejects a
  /// known-broken kernel without re-parsing it. Successful compilations are
  /// never seeded — CompiledKernel carries live IR that cannot round-trip
  /// disk — so good kernels recompile once per process.
  bool seedFailure(std::uint64_t hash, std::string error) {
    CompiledKernel failed;
    failed.hash = hash;
    failed.ok = false;
    failed.error = std::move(error);
    return cache_.seed(hash, std::move(failed));
  }

  /// Visits every completed compilation as fn(hash, CompiledKernel) — the
  /// store-save export path (only the outcome is persisted, not the IR).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    cache_.forEach(std::forward<Fn>(fn));
  }

  [[nodiscard]] CounterSnapshot counters() const { return cache_.counters(); }
  [[nodiscard]] std::size_t size() const { return cache_.size(); }
  void clear() { cache_.clear(); }

 private:
  MemoCache<std::uint64_t, CompiledKernel> cache_;
};

}  // namespace flexcl::runtime
