// Memoization of per-design-point evaluator results, keyed by
// (kernel hash, DesignPoint). The kernel hash is the CompileCache key
// (kernelKeyHash) combined by the caller with anything else the result
// depends on (the device — see Explorer); the design is identified by
// DesignPoint::stableId(). One EvalCache can therefore be shared across
// explorations, kernels, and threads: repeated sweeps of the same space are
// pure cache hits.
//
// Three result families are cached independently (they are produced by
// separate passes and have different costs): the FlexCL analytical estimate,
// the SDAccel-style estimate (including its deterministic failures — a
// nullopt is a result), and the cycle-level simulator ground truth.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "model/design_point.h"
#include "model/flexcl.h"
#include "runtime/cache.h"
#include "sdaccel/sdaccel_estimator.h"
#include "sim/system_sim.h"

namespace flexcl::runtime {

struct EvalKey {
  std::uint64_t kernelHash = 0;
  std::uint64_t designId = 0;

  friend bool operator<(const EvalKey& a, const EvalKey& b) {
    return a.kernelHash != b.kernelHash ? a.kernelHash < b.kernelHash
                                        : a.designId < b.designId;
  }
};

class EvalCache {
 public:
  /// `capacityPerFamily` bounds each family's entry count (0 = unbounded).
  explicit EvalCache(std::size_t capacityPerFamily = 0)
      : flexcl_(capacityPerFamily),
        sdaccel_(capacityPerFamily),
        sim_(capacityPerFamily) {}

  template <typename Fn>
  std::shared_ptr<const model::Estimate> flexcl(std::uint64_t kernelHash,
                                                const model::DesignPoint& dp,
                                                Fn&& fn) {
    return flexcl_.getOrCompute(keyFor(kernelHash, dp), std::forward<Fn>(fn));
  }

  template <typename Fn>
  std::shared_ptr<const std::optional<sdaccel::SdaccelEstimate>> sdaccel(
      std::uint64_t kernelHash, const model::DesignPoint& dp, Fn&& fn) {
    return sdaccel_.getOrCompute(keyFor(kernelHash, dp), std::forward<Fn>(fn));
  }

  template <typename Fn>
  std::shared_ptr<const sim::SimResult> sim(std::uint64_t kernelHash,
                                            const model::DesignPoint& dp,
                                            Fn&& fn) {
    return sim_.getOrCompute(keyFor(kernelHash, dp), std::forward<Fn>(fn));
  }

  // --- persistence hooks (serve store, DESIGN.md §12) ----------------------
  // seed* plants a result deserialized from the on-disk store (marked warm:
  // later hits on it count as disk-warmed in CounterSnapshot); forEach*
  // exports every completed result for serialization. Keys are stable across
  // processes: kernelHash is a content hash and designId is
  // DesignPoint::stableId().

  bool seedFlexcl(const EvalKey& key, model::Estimate value) {
    return flexcl_.seed(key, std::move(value));
  }
  bool seedSdaccel(const EvalKey& key,
                   std::optional<sdaccel::SdaccelEstimate> value) {
    return sdaccel_.seed(key, std::move(value));
  }
  bool seedSim(const EvalKey& key, sim::SimResult value) {
    return sim_.seed(key, std::move(value));
  }

  template <typename Fn>
  void forEachFlexcl(Fn&& fn) const {
    flexcl_.forEach(std::forward<Fn>(fn));
  }
  template <typename Fn>
  void forEachSdaccel(Fn&& fn) const {
    sdaccel_.forEach(std::forward<Fn>(fn));
  }
  template <typename Fn>
  void forEachSim(Fn&& fn) const {
    sim_.forEach(std::forward<Fn>(fn));
  }

  [[nodiscard]] CounterSnapshot flexclCounters() const {
    return flexcl_.counters();
  }
  [[nodiscard]] CounterSnapshot sdaccelCounters() const {
    return sdaccel_.counters();
  }
  [[nodiscard]] CounterSnapshot simCounters() const { return sim_.counters(); }

  void clear() {
    flexcl_.clear();
    sdaccel_.clear();
    sim_.clear();
  }

 private:
  static EvalKey keyFor(std::uint64_t kernelHash,
                        const model::DesignPoint& dp) {
    return EvalKey{kernelHash, dp.stableId()};
  }

  MemoCache<EvalKey, model::Estimate> flexcl_;
  MemoCache<EvalKey, std::optional<sdaccel::SdaccelEstimate>> sdaccel_;
  MemoCache<EvalKey, sim::SimResult> sim_;
};

}  // namespace flexcl::runtime
