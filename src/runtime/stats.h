// Observability for the parallel evaluation runtime: per-cache hit/miss/evict
// counters and an aggregate snapshot printed by the CLI footer and emitted as
// JSON by bench_runtime_scaling.
#pragma once

#include <cstdint>
#include <string>

namespace flexcl::obs {
class Registry;
}

namespace flexcl::runtime {

/// Point-in-time copy of one cache's counters (the live counters are atomics
/// inside the cache; snapshots are plain values safe to pass around).
struct CounterSnapshot {
  std::uint64_t hits = 0;
  /// Hits served by entries seeded from the on-disk store (MemoCache::seed)
  /// rather than computed in this process. Always a subset of `hits`, so
  /// hitRatePct() is unaffected; `hits - warmHits` is the in-process share.
  /// Lets `flexcl serve` attribute a warm-start's effect separately from the
  /// process's own reuse (DESIGN.md §12).
  std::uint64_t warmHits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hitRatePct() const {
    const std::uint64_t n = lookups();
    return n > 0 ? 100.0 * static_cast<double>(hits) / static_cast<double>(n)
                 : 0.0;
  }
  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string json() const;

  /// Traffic since `baseline` (hits/misses/evictions subtract; `entries` is a
  /// level, not a flow, and stays absolute). Used by Explorer::runtimeStats to
  /// report per-exploration traffic on caches shared across explorations —
  /// without the delta, a warm re-run would show the first run's misses too.
  [[nodiscard]] CounterSnapshot deltaSince(const CounterSnapshot& baseline) const;

  CounterSnapshot& operator+=(const CounterSnapshot& other);
};

/// Aggregate runtime state for one exploration (or one CLI invocation):
/// worker count plus the counters of every cache the evaluation touched.
struct Stats {
  int jobs = 1;                  ///< worker threads used (1 = serial)
  CounterSnapshot compile;       ///< source -> IR (CompileCache)
  CounterSnapshot flexclEval;    ///< (kernel, design) -> model::Estimate
  CounterSnapshot sdaccelEval;   ///< (kernel, design) -> SDAccel estimate
  CounterSnapshot simEval;       ///< (kernel, design) -> simulator result
  CounterSnapshot profile;       ///< (kernel, wg) -> interpreter profile
  CounterSnapshot simInput;      ///< (kernel, wg) -> prepared sim input
  CounterSnapshot analysis;      ///< (kernel, wg, pipe, budget) -> schedule analysis

  /// Multi-line human-readable footer ("runtime: ..." lines).
  [[nodiscard]] std::string str() const;
  /// One JSON object with a field per cache.
  [[nodiscard]] std::string json() const;

  /// Mirrors this snapshot into the observability registry as gauges
  /// (`cache.compile.hits`, `runtime.jobs`, ...). Stats stays the thin
  /// aggregation view over the caches' live atomics; the registry is the
  /// single sink `--metrics` serialises (DESIGN.md §9).
  void publishTo(obs::Registry& registry) const;

  Stats& operator+=(const Stats& other);
};

}  // namespace flexcl::runtime
