#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "obs/registry.h"

namespace flexcl::runtime {

int defaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, 64);
}

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(1, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  QueuedJob queued{std::move(job),
                   obs::enabled() ? obs::monotonicUs() : -1.0};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(queued));
  }
  ready_.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job.enqueueUs >= 0) {
      obs::record("pool.queue_wait_us", obs::monotonicUs() - job.enqueueUs);
    }
    job.fn();
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // One sweeper job per worker; each pulls the next index from the shared
  // cursor. Coarse jobs self-balance; nothing is pinned to a worker.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> firstFailure;
    std::mutex errorMutex;
    std::exception_ptr error;
    explicit Shared(std::size_t size) : firstFailure(size) {}
  };
  auto shared = std::make_shared<Shared>(n);

  auto sweep = [shared, n, &body] {
    for (;;) {
      const std::size_t i =
          shared->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (i > shared->firstFailure.load(std::memory_order_acquire)) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->errorMutex);
        // Keep the lowest-indexed failure so the rethrown exception does not
        // depend on worker interleaving.
        std::size_t prev = shared->firstFailure.load(std::memory_order_relaxed);
        while (i < prev && !shared->firstFailure.compare_exchange_weak(
                               prev, i, std::memory_order_release)) {
        }
        if (shared->firstFailure.load(std::memory_order_relaxed) == i) {
          shared->error = std::current_exception();
        }
      }
    }
  };

  const std::size_t sweepers =
      std::min<std::size_t>(workers_.size(), n);
  obs::add("pool.parallel_for");
  obs::add("pool.jobs_executed", n);
  std::vector<std::future<void>> done;
  done.reserve(sweepers);
  for (std::size_t s = 0; s < sweepers; ++s) done.push_back(submit(sweep));
  for (auto& f : done) f.get();  // sweep() itself never throws

  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace flexcl::runtime
