#include "runtime/stats.h"

#include <algorithm>
#include <sstream>

#include "obs/registry.h"

namespace flexcl::runtime {
namespace {

void appendJsonCache(std::ostringstream& os, const char* name,
                     const CounterSnapshot& c, bool* first) {
  if (!*first) os << ", ";
  *first = false;
  os << "\"" << name << "\": " << c.json();
}

void appendHumanCache(std::ostringstream& os, const char* name,
                      const CounterSnapshot& c) {
  if (c.lookups() == 0 && c.entries == 0) return;
  os << "  " << name << ": " << c.str() << "\n";
}

}  // namespace

CounterSnapshot CounterSnapshot::deltaSince(const CounterSnapshot& baseline) const {
  CounterSnapshot d = *this;
  d.hits -= std::min(baseline.hits, d.hits);
  d.warmHits -= std::min(baseline.warmHits, d.warmHits);
  d.misses -= std::min(baseline.misses, d.misses);
  d.evictions -= std::min(baseline.evictions, d.evictions);
  return d;
}

CounterSnapshot& CounterSnapshot::operator+=(const CounterSnapshot& other) {
  hits += other.hits;
  warmHits += other.warmHits;
  misses += other.misses;
  evictions += other.evictions;
  entries += other.entries;
  return *this;
}

std::string CounterSnapshot::str() const {
  std::ostringstream os;
  os << hits << " hits / " << misses << " misses";
  os.precision(1);
  os << std::fixed << " (" << hitRatePct() << "% hit rate, " << entries
     << " entries";
  if (warmHits > 0) os << ", " << warmHits << " disk-warmed";
  if (evictions > 0) os << ", " << evictions << " evicted";
  os << ")";
  return os.str();
}

std::string CounterSnapshot::json() const {
  std::ostringstream os;
  os << "{\"hits\": " << hits << ", \"warm_hits\": " << warmHits
     << ", \"misses\": " << misses << ", \"evictions\": " << evictions
     << ", \"entries\": " << entries << "}";
  return os.str();
}

Stats& Stats::operator+=(const Stats& other) {
  jobs = jobs > other.jobs ? jobs : other.jobs;
  compile += other.compile;
  flexclEval += other.flexclEval;
  sdaccelEval += other.sdaccelEval;
  simEval += other.simEval;
  profile += other.profile;
  simInput += other.simInput;
  analysis += other.analysis;
  return *this;
}

std::string Stats::str() const {
  std::ostringstream os;
  os << "runtime: " << jobs << (jobs == 1 ? " job\n" : " jobs\n");
  appendHumanCache(os, "compile cache  ", compile);
  appendHumanCache(os, "flexcl cache   ", flexclEval);
  appendHumanCache(os, "sdaccel cache  ", sdaccelEval);
  appendHumanCache(os, "sim cache      ", simEval);
  appendHumanCache(os, "profile cache  ", profile);
  appendHumanCache(os, "sim-input cache", simInput);
  appendHumanCache(os, "analysis cache ", analysis);
  return os.str();
}

void Stats::publishTo(obs::Registry& registry) const {
  const auto publishCache = [&registry](const char* name,
                                        const CounterSnapshot& c) {
    const std::string prefix = std::string("cache.") + name + ".";
    registry.setGauge(prefix + "hits", static_cast<double>(c.hits));
    registry.setGauge(prefix + "warm_hits", static_cast<double>(c.warmHits));
    registry.setGauge(prefix + "misses", static_cast<double>(c.misses));
    registry.setGauge(prefix + "evictions", static_cast<double>(c.evictions));
    registry.setGauge(prefix + "entries", static_cast<double>(c.entries));
  };
  registry.setGauge("runtime.jobs", static_cast<double>(jobs));
  publishCache("compile", compile);
  publishCache("flexcl_eval", flexclEval);
  publishCache("sdaccel_eval", sdaccelEval);
  publishCache("sim_eval", simEval);
  publishCache("profile", profile);
  publishCache("sim_input", simInput);
  publishCache("analysis", analysis);
}

std::string Stats::json() const {
  std::ostringstream os;
  os << "{\"jobs\": " << jobs << ", ";
  bool first = true;
  appendJsonCache(os, "compile", compile, &first);
  appendJsonCache(os, "flexcl_eval", flexclEval, &first);
  appendJsonCache(os, "sdaccel_eval", sdaccelEval, &first);
  appendJsonCache(os, "sim_eval", simEval, &first);
  appendJsonCache(os, "profile", profile, &first);
  appendJsonCache(os, "sim_input", simInput, &first);
  appendJsonCache(os, "analysis", analysis, &first);
  os << "}";
  return os.str();
}

}  // namespace flexcl::runtime
