// Concurrent compute-once memoization cache.
//
// The building block of the evaluation runtime's caches (CompileCache,
// EvalCache, the profile and sim-input caches): a map from key to value where
//  - lookups of present values take only a shared lock (the hot path of a
//    warm design-space sweep is read-mostly),
//  - a missing value is computed exactly once; concurrent requesters of the
//    same key block on that one computation instead of duplicating it
//    (profiles and sim inputs cost seconds — duplicating them would erase
//    most of the parallel speedup at warm-up),
//  - distinct keys compute concurrently,
//  - an optional capacity bounds the map with FIFO eviction of completed
//    entries (values are handed out as shared_ptr, so eviction never
//    invalidates a result a caller still holds).
//
// All operations are linearizable; hit/miss/evict counters are exposed as a
// CounterSnapshot for runtime::Stats.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "runtime/stats.h"

namespace flexcl::runtime {

template <typename Key, typename Value>
class MemoCache {
 public:
  /// `capacity` 0 means unbounded.
  explicit MemoCache(std::size_t capacity = 0) : capacity_(capacity) {}

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// Returns the cached value for `key`, computing it with `fn` on first use.
  /// `fn` runs outside the map lock (other keys stay serviceable) but under a
  /// per-key lock (each key computes once). If `fn` throws, the exception is
  /// cached and rethrown to every requester of that key — an evaluation that
  /// failed once fails identically on every retry, which keeps parallel runs
  /// deterministic.
  template <typename Fn>
  std::shared_ptr<const Value> getOrCompute(const Key& key, Fn&& fn) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        std::shared_ptr<Slot> slot = it->second;
        lock.unlock();
        countHit(*slot);
        return awaitSlot(*slot);
      }
    }

    std::shared_ptr<Slot> slot;
    // Holds the new slot's per-key lock from *before* it is published in the
    // map, so a concurrent requester of the same key blocks in awaitSlot
    // until the computation below finishes (never observes a half-built
    // slot).
    std::unique_lock<std::mutex> computeLock;
    {
      std::unique_lock<std::shared_mutex> lock(mutex_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        slot = it->second;
        lock.unlock();
        countHit(*slot);
        return awaitSlot(*slot);
      }
      slot = std::make_shared<Slot>();
      computeLock = std::unique_lock<std::mutex>(slot->compute);
      map_.emplace(key, slot);
      insertionOrder_.push_back(key);
      evictLocked();
    }
    counters_.misses.fetch_add(1, std::memory_order_relaxed);

    try {
      slot->value = std::make_shared<const Value>(std::forward<Fn>(fn)());
    } catch (...) {
      slot->error = std::current_exception();
    }
    slot->done.store(true, std::memory_order_release);
    computeLock.unlock();
    if (slot->error) std::rethrow_exception(slot->error);
    return slot->value;
  }

  /// Inserts a precomputed value for `key` (the disk warm-start path: the
  /// serve store seeds caches with entries deserialized from prior traffic).
  /// Entries planted this way are marked *warm*: a later getOrCompute hit on
  /// them counts into `warmHits` as well as `hits`, which is what lets
  /// runtime::Stats attribute disk-warmed traffic separately from hits the
  /// process earned itself. Counts neither a hit nor a miss by itself.
  /// Returns false (and changes nothing) when the key is already present —
  /// an in-process computation always wins over a seed racing it.
  bool seed(const Key& key, Value value) {
    auto slot = std::make_shared<Slot>();
    slot->value = std::make_shared<const Value>(std::move(value));
    slot->warm = true;
    slot->done.store(true, std::memory_order_release);
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto [it, inserted] = map_.emplace(key, std::move(slot));
    (void)it;
    if (!inserted) return false;
    insertionOrder_.push_back(key);
    evictLocked();
    return true;
  }

  /// Visits every completed, non-error entry as fn(key, value) under the
  /// shared map lock (the store-save export path). `fn` must not reenter the
  /// cache.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (const auto& [key, slot] : map_) {
      if (!slot->done.load(std::memory_order_acquire) || slot->error) continue;
      fn(key, *slot->value);
    }
  }

  /// Shared-lock probe; nullptr when absent or still computing. Does not
  /// touch the hit/miss counters.
  std::shared_ptr<const Value> peek(const Key& key) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end() || !it->second->done.load(std::memory_order_acquire) ||
        it->second->error) {
      return nullptr;
    }
    return it->second->value;
  }

  [[nodiscard]] std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return map_.size();
  }

  void clear() {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    map_.clear();
    insertionOrder_.clear();
  }

  [[nodiscard]] CounterSnapshot counters() const {
    CounterSnapshot snap;
    snap.hits = counters_.hits.load(std::memory_order_relaxed);
    snap.warmHits = counters_.warmHits.load(std::memory_order_relaxed);
    snap.misses = counters_.misses.load(std::memory_order_relaxed);
    snap.evictions = counters_.evictions.load(std::memory_order_relaxed);
    snap.entries = size();
    return snap;
  }

 private:
  struct Slot {
    std::mutex compute;
    std::atomic<bool> done{false};
    /// Planted by seed() (disk warm-start) rather than computed in-process.
    bool warm = false;
    std::shared_ptr<const Value> value;
    std::exception_ptr error;
  };

  struct Counters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> warmHits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  /// Hit accounting: every hit counts into `hits`; hits on seeded entries
  /// additionally count into `warmHits` (warmHits ⊆ hits). `slot.warm` is
  /// written before the slot is published and never changes, so reading it
  /// without the map lock is safe.
  void countHit(const Slot& slot) {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    if (slot.warm) counters_.warmHits.fetch_add(1, std::memory_order_relaxed);
  }

  /// Waits (if needed) for the slot's one-time computation and returns the
  /// value or rethrows the cached failure.
  static std::shared_ptr<const Value> awaitSlot(Slot& slot) {
    if (!slot.done.load(std::memory_order_acquire)) {
      // Block until the computing thread releases the per-key lock.
      std::lock_guard<std::mutex> wait(slot.compute);
    }
    if (slot.error) std::rethrow_exception(slot.error);
    return slot.value;
  }

  /// Caller holds the unique map lock. FIFO-evicts completed entries until
  /// the map fits the capacity; in-flight computations are skipped (their
  /// slots must stay reachable so waiters can find them).
  void evictLocked() {
    if (capacity_ == 0) return;
    std::size_t scanned = 0;
    const std::size_t limit = insertionOrder_.size();
    while (map_.size() > capacity_ && scanned < limit) {
      Key victim = std::move(insertionOrder_.front());
      insertionOrder_.pop_front();
      ++scanned;
      auto it = map_.find(victim);
      if (it == map_.end()) continue;
      if (!it->second->done.load(std::memory_order_acquire)) {
        insertionOrder_.push_back(std::move(victim));  // still computing
        continue;
      }
      map_.erase(it);
      counters_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  mutable std::shared_mutex mutex_;
  std::map<Key, std::shared_ptr<Slot>> map_;
  std::deque<Key> insertionOrder_;
  std::size_t capacity_;
  Counters counters_;
};

}  // namespace flexcl::runtime
