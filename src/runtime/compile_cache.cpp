#include "runtime/compile_cache.h"

#include <algorithm>
#include <vector>

#include "analysis/analyze.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "ocl/preprocessor.h"
#include "support/rng.h"

namespace flexcl::runtime {

std::uint64_t kernelKeyHash(
    const std::string& source, const std::string& kernelName,
    const std::unordered_map<std::string, std::string>& defines) {
  // Preprocess with the same options the compilation will use: two sources
  // that expand identically share a key. Diagnostics are discarded here —
  // the real compilation reports them.
  DiagnosticEngine diags;
  ocl::PreprocessorOptions ppOpts;
  ppOpts.defines = defines;
  const std::string expanded = ocl::preprocess(source, diags, ppOpts);

  std::uint64_t h = stableHash(expanded.data(), expanded.size());
  h = stableHashCombine(h, stableHash(kernelName.data(), kernelName.size()));
  // Defines in sorted order so the hash is independent of map iteration.
  std::vector<std::pair<std::string, std::string>> sorted(defines.begin(),
                                                          defines.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [name, value] : sorted) {
    h = stableHashCombine(h, stableHash(name.data(), name.size()));
    h = stableHashCombine(h, stableHash(value.data(), value.size()));
  }
  return h;
}

std::shared_ptr<const CompiledKernel> CompileCache::compile(
    const std::string& source, const std::string& kernelName,
    const std::unordered_map<std::string, std::string>& defines) {
  const std::uint64_t key = kernelKeyHash(source, kernelName, defines);
  return cache_.getOrCompute(key, [&]() {
    obs::Span span("compile", kernelName);
    obs::add("compile.runs");
    CompiledKernel compiled;
    compiled.hash = key;
    DiagnosticEngine diags;
    std::unique_ptr<ir::CompiledProgram> program =
        ir::compileOpenCl(source, diags, defines);
    if (!program) {
      compiled.error = diags.str();
      return compiled;
    }
    compiled.program = std::shared_ptr<const ir::CompiledProgram>(
        std::move(program));
    compiled.fn = compiled.program->module->findFunction(kernelName);
    if (!compiled.fn) {
      compiled.error = "kernel '" + kernelName + "' not found";
      compiled.program.reset();
      return compiled;
    }
    compiled.ok = true;
    compiled.lint = std::make_shared<const analysis::LintReport>(
        analysis::runLintPasses(*compiled.fn));
    return compiled;
  });
}

}  // namespace flexcl::runtime
