// Fixed-size work-queue thread pool for the evaluation runtime.
//
// Design-point evaluations are coarse-grained (milliseconds to seconds), so
// a plain mutex-protected FIFO queue is contention-free in practice; no
// work-stealing machinery is warranted. Exceptions thrown by a job propagate
// to the submitter through the returned future (submit) or are rethrown by
// the caller after the loop completes (parallelFor).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace flexcl::runtime {

/// Worker count for `--jobs 0` / unspecified: the hardware concurrency,
/// clamped to [1, 64] (hardware_concurrency() may return 0).
int defaultJobs();

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(int workers);

  /// Graceful shutdown: already-queued jobs still run; then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int workerCount() const {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues `fn` and returns a future for its result. An exception thrown
  /// by `fn` is captured and rethrown by future::get in the submitter.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Runs `body(i)` for every i in [0, n) on the pool workers and blocks
  /// until all complete. Indices are handed out dynamically (atomic cursor),
  /// so results must be written by index, never appended — that is what
  /// keeps callers deterministic regardless of worker count. If any body
  /// throws, the remaining indices are abandoned and the exception of the
  /// lowest-indexed failure is rethrown here.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  /// A queued job plus its enqueue timestamp (obs::monotonicUs; -1 when
  /// observability was off at enqueue time, so the off path reads no clock).
  /// Workers feed the dequeue delay into the `pool.queue_wait_us` histogram —
  /// the pool-level saturation signal behind the per-request queue wait the
  /// serve layer measures itself.
  struct QueuedJob {
    std::function<void()> fn;
    double enqueueUs = -1;
  };

  void enqueue(std::function<void()> job);
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<QueuedJob> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

}  // namespace flexcl::runtime
