// HLS-style cycle estimator standing in for SDAccel's built-in report.
//
// The paper compares FlexCL against SDAccel's own pre-implementation cycle
// estimate and finds it 30-85% off, for three stated reasons (§4.2):
//   1) it underestimates global memory latency (a fixed optimistic per-access
//      cost, no row-buffer / pattern / coalescing awareness),
//   2) it is conservative for complex control dependence (serialises all
//      blocks; both branches of a conditional are summed),
//   3) it ignores the work-group scheduling overhead of multiple CUs
//      (assumes perfect CU scaling).
// It also *fails to return a result* for ~42% of design points (complex
// parallelism / access patterns, or the synthesis run times out). This
// module reproduces those behaviours deterministically.
#pragma once

#include <optional>

#include "cdfg/cdfg.h"
#include "model/design_point.h"
#include "model/device.h"

namespace flexcl::sdaccel {

struct SdaccelEstimate {
  double cycles = 0;
  /// Modelled wall-clock the synthesis-estimation run would take (minutes),
  /// from the per-kernel complexity; reported alongside Table 2.
  double estimationMinutes = 0;
};

struct SdaccelOptions {
  /// Fixed per-access global-memory cost (bias #1; a fraction of the real
  /// average pattern latency).
  double globalAccessCycles = 4.0;
};

/// Returns nullopt when the estimator "fails" on this design (unsupported
/// parallelism / pattern combination or synthesis timeout).
std::optional<SdaccelEstimate> estimateSdaccel(
    const ir::Function& fn, const cdfg::KernelAnalysis& analysis,
    const model::Device& device, const model::DesignPoint& design,
    std::uint64_t totalWorkItems, const SdaccelOptions& options = {});

/// The failure predicate, exposed for tests and fail-rate accounting.
bool sdaccelFails(const ir::Function& fn, const cdfg::KernelAnalysis& analysis,
                  const model::DesignPoint& design);

}  // namespace flexcl::sdaccel
