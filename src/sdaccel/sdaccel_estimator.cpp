#include "sdaccel/sdaccel_estimator.h"

#include <algorithm>
#include <cmath>

#include "obs/registry.h"
#include "obs/trace.h"

namespace flexcl::sdaccel {
namespace {

using ir::Region;

bool hasDynamicLoop(const Region* region) {
  if (!region) return false;
  if (region->kind == Region::Kind::Loop && region->staticTripCount < 0) return true;
  for (const auto& child : region->children) {
    if (hasDynamicLoop(child.get())) return true;
  }
  return false;
}

double blockSerial(const ir::BasicBlock* block,
                   const cdfg::KernelAnalysis& analysis) {
  if (!block) return 0;
  double sum = 0;
  for (const cdfg::DfgNode& n : analysis.blocks[block->id].dfg.nodes()) {
    sum += n.latency;
  }
  return sum;
}

/// Bias #2: fully serialised latency — every block is a chain, conditional
/// branches are summed, loops multiply the serial body.
double serialLatency(const Region& region, const cdfg::KernelAnalysis& analysis) {
  switch (region.kind) {
    case Region::Kind::Block:
      return blockSerial(region.block, analysis);
    case Region::Kind::Seq: {
      double sum = 0;
      for (const auto& child : region.children) {
        sum += serialLatency(*child, analysis);
      }
      return sum;
    }
    case Region::Kind::If: {
      double sum = 0;  // both branches charged (conservative datapath)
      for (const auto& child : region.children) {
        sum += serialLatency(*child, analysis);
      }
      return sum;
    }
    case Region::Kind::Loop: {
      const double trips =
          region.loopId >= 0 &&
                  region.loopId < static_cast<int>(analysis.tripCounts.size())
              ? analysis.tripCounts[static_cast<std::size_t>(region.loopId)]
              : 1.0;
      double perIter = serialLatency(*region.children[0], analysis);
      perIter += blockSerial(region.condBlock, analysis);
      if (region.latchBlock != region.condBlock) {
        perIter += blockSerial(region.latchBlock, analysis);
      }
      return trips * perIter;
    }
  }
  return 0;
}

}  // namespace

bool sdaccelFails(const ir::Function& fn, const cdfg::KernelAnalysis& analysis,
                  const model::DesignPoint& design) {
  const bool dynamicLoops = hasDynamicLoop(fn.rootRegion());
  // "Lacks support for complex parallelism and memory access patterns."
  if (design.numComputeUnits > 2) return true;
  if (design.vectorWidth > 1 && design.workItemPipeline) return true;
  // "May take extremely long for certain cases" — stopped after one hour.
  if (dynamicLoops && design.peParallelism >= 4) return true;
  if (analysis.barrierCount > 0 && design.peParallelism >= 8) return true;
  if (design.workItemPipeline && design.workGroupItems() >= 256) return true;
  return false;
}

std::optional<SdaccelEstimate> estimateSdaccel(
    const ir::Function& fn, const cdfg::KernelAnalysis& analysis,
    const model::Device& device, const model::DesignPoint& design,
    std::uint64_t totalWorkItems, const SdaccelOptions& options) {
  obs::Span span("sdaccel", [&] { return design.str(); });
  obs::add("sdaccel.estimates");
  if (sdaccelFails(fn, analysis, design)) return std::nullopt;

  const double serialDepth = serialLatency(*fn.rootRegion(), analysis);
  // Bias #1: fixed optimistic cost per raw (uncoalesced) global access.
  const double memPerWi =
      (analysis.totals.globalReads + analysis.totals.globalWrites) *
      options.globalAccessCycles;

  const double nWi = static_cast<double>(design.workGroupItems());
  const double nPe = std::max(1, design.peParallelism * design.vectorWidth);

  double groupLatency = 0;
  if (design.workItemPipeline) {
    // II from port pressure only (no recurrence analysis, no memory
    // integration).
    double ii = 1.0;
    if (analysis.totals.localReads > 0) {
      ii = std::max(ii, std::ceil(analysis.totals.localReads /
                                  device.localReadPorts()));
    }
    if (analysis.totals.localWrites > 0) {
      ii = std::max(ii, std::ceil(analysis.totals.localWrites /
                                  device.localWritePorts()));
    }
    groupLatency = ii * std::max(0.0, nWi - nPe) / nPe + serialDepth + memPerWi;
  } else {
    groupLatency = (serialDepth + memPerWi) * std::ceil(nWi / nPe);
  }

  // Bias #3: perfect CU scaling, no dispatch overhead.
  const double groups = std::ceil(static_cast<double>(totalWorkItems) / nWi);
  const double waves = std::ceil(groups / std::max(1, design.numComputeUnits));

  SdaccelEstimate est;
  est.cycles = groupLatency * waves;
  // Modelled estimation wall time: dominated by RTL elaboration, which grows
  // with datapath size (ops x PE x CU).
  est.estimationMinutes =
      0.3 + analysis.totals.operations *
                std::max(1, design.peParallelism * design.numComputeUnits) /
                4000.0;
  return est;
}

}  // namespace flexcl::sdaccel
