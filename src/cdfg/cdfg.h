// Kernel-level control/data-flow analysis (paper §3.2-§3.3).
//
// Produces everything the FlexCL equations consume for one kernel:
//  - per-block list-scheduled latencies (resource-aware ASAP, §3.3.1),
//  - region-tree latency composition where independent blocks overlap
//    ("basic blocks without data dependencies ... execute in parallel"),
//  - resolved loop trip counts (static + profiled),
//  - per-work-item resource totals N_read / N_write / N_dsp (eqs. 4 & 6),
//  - the work-item pipeline dependence graph handed to MII / SMS.
#pragma once

#include <vector>

#include "analysis/dataflow/affine.h"
#include "cdfg/dfg.h"
#include "cdfg/loop_analysis.h"
#include "interp/profiler.h"
#include "sched/list_scheduler.h"
#include "sched/mii.h"

namespace flexcl::cdfg {

struct BlockInfo {
  const ir::BasicBlock* block = nullptr;
  BlockDfg dfg;
  int listLatency = 0;        ///< resource-aware list-scheduled latency
  int criticalPath = 0;       ///< dependence-only lower bound
  int localReads = 0;
  int localWrites = 0;
  int globalReads = 0;
  int globalWrites = 0;
  int dspUnits = 0;
};

/// Totals accumulated over one work-item's execution (loop-weighted;
/// divergent branches contribute their element-wise maximum, matching the
/// paper's "maximum number of accesses in the pipeline").
struct WorkItemTotals {
  double latency = 0;
  double localReads = 0;
  double localWrites = 0;
  double globalReads = 0;
  double globalWrites = 0;
  double dspUnits = 0;
  double operations = 0;
};

struct KernelAnalysis {
  const ir::Function* fn = nullptr;
  std::vector<BlockInfo> blocks;  ///< indexed by BasicBlock::id
  std::vector<double> tripCounts; ///< per Region::loopId
  /// Which tier resolved each trip count (induction / dataflow / profile /
  /// fallback), parallel to tripCounts.
  std::vector<TripSource> tripSources;

  /// One work-item executed alone (no pipelining): D_comp^PE equivalent and
  /// the eq.-4/6 resource inputs.
  WorkItemTotals totals;

  /// Dependence graph of one work-item for modulo scheduling. Loop bodies
  /// appear as exclusive "loop engine" supernodes.
  sched::PipelineGraph pipeline;
  /// IR instruction id -> pipeline node id (-1 when folded into a supernode
  /// or not represented).
  std::vector<int> pipeNodeOfInst;
  /// Number of barrier instructions encountered on the work-item path
  /// (identifies the paper's "barrier" communication mode).
  int barrierCount = 0;
};

struct AnalyzeOptions {
  TripCountOptions tripCounts;
  /// Pipeline innermost loops: a loop's latency becomes
  /// II_loop * (trips - 1) + depth_loop (MII + SMS over the body with
  /// loop-carried dependence edges) instead of trips * body latency.
  bool innerLoopPipeline = false;

  // --- optional static-analysis inputs (all default off; results are
  // bit-identical to the pre-dataflow analysis when unset) ----------------
  /// Dataflow-tier trip counts per loopId (-1 unresolved), from
  /// analysis::dataflow::resolveStaticTrips.
  const std::vector<std::int64_t>* staticTripCounts = nullptr;
  /// Symbolic kernel summary; enables the dependence tester: loop-carried
  /// distance refinement in pipelined loops and — when no profile local
  /// trace is available — statically derived cross-work-item edges.
  const analysis::KernelSummary* summary = nullptr;
  /// Leaf ranges the dependence tester evaluates under (geometry + scalar
  /// argument seeds). Required whenever `summary` is set.
  const analysis::dataflow::LeafRanges* leafRanges = nullptr;
};

/// Runs the full kernel analysis. `profile` may be null (static-only mode);
/// when present it also supplies the inter-work-item local-memory dependence
/// edges (RecMII inputs) via cdfg::addCrossWorkItemEdges.
KernelAnalysis analyzeKernel(const ir::Function& fn,
                             const model::OpLatencyDb& latencies,
                             const sched::ResourceBudget& budget,
                             const interp::KernelProfile* profile = nullptr,
                             const AnalyzeOptions& options = {});

}  // namespace flexcl::cdfg
