#include "cdfg/local_dependence.h"

#include <map>
#include <unordered_map>

#include "cdfg/cdfg.h"

namespace flexcl::cdfg {

void addCrossWorkItemEdges(KernelAnalysis& analysis,
                           const interp::KernelProfile& profile) {
  // Per local-memory cell: the last store event (work-item, inst).
  struct CellState {
    std::uint64_t storeWi = 0;
    std::uint32_t storeInst = 0;
    bool hasStore = false;
  };
  std::map<std::pair<std::int32_t, std::int64_t>, CellState> cells;

  // (fromNode, toNode) -> smallest distance seen.
  std::map<std::pair<int, int>, int> edges;

  auto note = [&](std::uint32_t fromInst, std::uint32_t toInst,
                  std::uint64_t fromWi, std::uint64_t toWi) {
    if (toWi <= fromWi) return;  // same work-item or reversed order
    const auto distance = static_cast<int>(toWi - fromWi);
    if (fromInst >= analysis.pipeNodeOfInst.size() ||
        toInst >= analysis.pipeNodeOfInst.size()) {
      return;
    }
    const int from = analysis.pipeNodeOfInst[fromInst];
    const int to = analysis.pipeNodeOfInst[toInst];
    if (from < 0 || to < 0) return;
    auto [it, inserted] = edges.try_emplace({from, to}, distance);
    if (!inserted && distance < it->second) it->second = distance;
  };

  for (const interp::MemoryAccessEvent& ev : profile.localTrace) {
    const auto key = std::make_pair(ev.buffer, ev.offset);
    CellState& cell = cells[key];
    if (ev.isWrite) {
      if (cell.hasStore) {
        note(cell.storeInst, ev.instId, cell.storeWi, ev.workItem);  // WAW
      }
      cell.hasStore = true;
      cell.storeWi = ev.workItem;
      cell.storeInst = ev.instId;
    } else if (cell.hasStore) {
      note(cell.storeInst, ev.instId, cell.storeWi, ev.workItem);  // RAW
    }
  }

  for (const auto& [key, distance] : edges) {
    const auto [from, to] = key;
    analysis.pipeline.edges.push_back(sched::PipeEdge{
        from, to,
        analysis.pipeline.nodes[static_cast<std::size_t>(from)].latency, distance});
  }
}

}  // namespace flexcl::cdfg
