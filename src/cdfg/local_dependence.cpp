#include "cdfg/local_dependence.h"

#include <algorithm>
#include <climits>
#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/dataflow/dependence.h"
#include "cdfg/cdfg.h"
#include "obs/registry.h"

namespace flexcl::cdfg {

void addCrossWorkItemEdges(KernelAnalysis& analysis,
                           const interp::KernelProfile& profile) {
  // Per local-memory cell: the last store event (work-item, inst).
  struct CellState {
    std::uint64_t storeWi = 0;
    std::uint32_t storeInst = 0;
    bool hasStore = false;
  };
  std::map<std::pair<std::int32_t, std::int64_t>, CellState> cells;

  // (fromNode, toNode) -> smallest distance seen.
  std::map<std::pair<int, int>, int> edges;

  auto note = [&](std::uint32_t fromInst, std::uint32_t toInst,
                  std::uint64_t fromWi, std::uint64_t toWi) {
    if (toWi <= fromWi) return;  // same work-item or reversed order
    const auto distance = static_cast<int>(toWi - fromWi);
    if (fromInst >= analysis.pipeNodeOfInst.size() ||
        toInst >= analysis.pipeNodeOfInst.size()) {
      return;
    }
    const int from = analysis.pipeNodeOfInst[fromInst];
    const int to = analysis.pipeNodeOfInst[toInst];
    if (from < 0 || to < 0) return;
    auto [it, inserted] = edges.try_emplace({from, to}, distance);
    if (!inserted && distance < it->second) it->second = distance;
  };

  for (const interp::MemoryAccessEvent& ev : profile.localTrace) {
    const auto key = std::make_pair(ev.buffer, ev.offset);
    CellState& cell = cells[key];
    if (ev.isWrite) {
      if (cell.hasStore) {
        note(cell.storeInst, ev.instId, cell.storeWi, ev.workItem);  // WAW
      }
      cell.hasStore = true;
      cell.storeWi = ev.workItem;
      cell.storeInst = ev.instId;
    } else if (cell.hasStore) {
      note(cell.storeInst, ev.instId, cell.storeWi, ev.workItem);  // RAW
    }
  }

  for (const auto& [key, distance] : edges) {
    const auto [from, to] = key;
    analysis.pipeline.edges.push_back(sched::PipeEdge{
        from, to,
        analysis.pipeline.nodes[static_cast<std::size_t>(from)].latency, distance});
  }
}

void addStaticCrossWorkItemEdges(
    KernelAnalysis& analysis, const analysis::KernelSummary& summary,
    const analysis::dataflow::LeafRanges& ranges) {
  namespace df = flexcl::analysis::dataflow;
  using flexcl::analysis::MemAccessInfo;
  using flexcl::analysis::PtrBase;

  const df::Interval lsz0 =
      ranges.of(df::LeafKey{flexcl::analysis::Sym::LocalSize, 0});
  // Work-items further than the group extent apart never share local memory.
  const std::int64_t maxDistance =
      lsz0.isPoint() ? lsz0.lo - 1 : (std::int64_t{1} << 20);
  if (maxDistance < 1) return;  // single-work-item groups: no recurrences

  struct LocalAccess {
    const MemAccessInfo* info;
    df::AccessForm form;
    bool exact = false;
  };
  std::vector<LocalAccess> locals;
  for (const MemAccessInfo& a : summary.accesses) {
    if (a.space != ir::AddressSpace::Local) continue;
    LocalAccess la;
    la.info = &a;
    if (auto form = df::linearize(a.offset.get())) {
      la.form.offset = std::move(*form);
      la.form.bytes = a.size;
      la.exact = true;
    }
    locals.push_back(std::move(la));
  }

  // (fromNode, toNode) -> smallest distance.
  std::map<std::pair<int, int>, int> edges;
  auto note = [&](unsigned fromInst, unsigned toInst, std::int64_t distance) {
    if (fromInst >= analysis.pipeNodeOfInst.size() ||
        toInst >= analysis.pipeNodeOfInst.size()) {
      return;
    }
    const int from = analysis.pipeNodeOfInst[fromInst];
    const int to = analysis.pipeNodeOfInst[toInst];
    if (from < 0 || to < 0) return;
    const int d = static_cast<int>(std::min<std::int64_t>(distance, INT_MAX));
    auto [it, inserted] = edges.try_emplace({from, to}, d);
    if (!inserted && d < it->second) it->second = d;
  };

  for (const LocalAccess& store : locals) {
    if (!store.info->isWrite) continue;
    for (const LocalAccess& later : locals) {
      // RAW (store -> load) and WAW (store -> store) recurrences. A store
      // paired with itself is a valid WAW candidate (e.g. buf[lid % 2]).
      const bool sameKnownBase =
          store.info->base != PtrBase::Unknown &&
          store.info->base == later.info->base &&
          store.info->baseIndex == later.info->baseIndex;
      const bool mayAlias = !sameKnownBase
                                ? (store.info->base == PtrBase::Unknown ||
                                   later.info->base == PtrBase::Unknown)
                                : true;
      if (!mayAlias) continue;

      std::int64_t distance = 1;  // conservative default
      if (sameKnownBase && store.exact && later.exact) {
        const df::DepResult r = df::testCrossWorkItem(store.form, later.form,
                                                      ranges, maxDistance);
        if (r.kind == df::DepKind::Independent) {
          obs::add("analysis.dataflow.crosswi_independent");
          continue;
        }
        if (r.kind == df::DepKind::Distance) {
          obs::add("analysis.dataflow.crosswi_distance");
          distance = r.distance;
        }
        if (r.kind == df::DepKind::Unknown) {
          // The tester declined; the assumed distance 1 below is attributable
          // in `flexcl lint --metrics` through this counter.
          obs::add("analysis.dataflow.dep.unknown");
        }
      }
      note(store.info->instId, later.info->instId, distance);
    }
  }

  for (const auto& [key, distance] : edges) {
    const auto [from, to] = key;
    analysis.pipeline.edges.push_back(sched::PipeEdge{
        from, to,
        analysis.pipeline.nodes[static_cast<std::size_t>(from)].latency,
        distance});
  }
}

}  // namespace flexcl::cdfg
