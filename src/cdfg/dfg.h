// Per-basic-block data-flow graphs.
//
// The CDFG's block bodies are turned into dependence graphs whose nodes carry
// IP latencies and resource classes (paper §3.2/§3.3.1). Register uses give
// true dependencies; loads/stores are ordered by the storage object they
// provably address (alloca / kernel-argument provenance), conservatively
// serialising accesses whose base is unknown.
#pragma once

#include <vector>

#include "ir/ir.h"
#include "model/op_latency.h"
#include "sched/resource.h"

namespace flexcl::cdfg {

struct DfgNode {
  const ir::Instruction* inst = nullptr;
  int latency = 0;
  sched::OpResource resource;
  std::vector<int> preds;
  std::vector<int> succs;
};

/// Base object a memory access provably addresses.
struct MemoryBase {
  enum class Kind : std::uint8_t { Unknown, Alloca, Argument };
  Kind kind = Kind::Unknown;
  const ir::Value* value = nullptr;  ///< the alloca instruction or argument

  friend bool operator==(const MemoryBase&, const MemoryBase&) = default;
};

/// Walks PtrAdd/Bitcast chains back to the addressed object.
MemoryBase memoryBaseOf(const ir::Value* pointer);

class BlockDfg {
 public:
  /// Builds the DFG of one block. Terminators are excluded (they carry no
  /// datapath latency); barrier instructions act as full fences.
  static BlockDfg build(const ir::BasicBlock& block,
                        const model::OpLatencyDb& latencies);

  [[nodiscard]] const std::vector<DfgNode>& nodes() const { return nodes_; }
  [[nodiscard]] const ir::BasicBlock* block() const { return block_; }

  /// Critical-path length ignoring resource limits (lower bound on latency).
  [[nodiscard]] int criticalPathLength() const;

  /// Total units requested per resource class (for ResMII-style bounds).
  [[nodiscard]] int totalUnits(sched::ResourceClass rc) const;

 private:
  const ir::BasicBlock* block_ = nullptr;
  std::vector<DfgNode> nodes_;
};

}  // namespace flexcl::cdfg
