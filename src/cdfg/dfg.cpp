#include "cdfg/dfg.h"

#include <algorithm>
#include <unordered_map>

namespace flexcl::cdfg {

using ir::Instruction;
using ir::Opcode;

MemoryBase memoryBaseOf(const ir::Value* pointer) {
  const ir::Value* v = pointer;
  for (int guard = 0; guard < 64; ++guard) {
    switch (v->valueKind()) {
      case ir::Value::Kind::Argument:
        return {MemoryBase::Kind::Argument, v};
      case ir::Value::Kind::Instruction: {
        const auto* inst = static_cast<const Instruction*>(v);
        if (inst->opcode() == Opcode::Alloca) return {MemoryBase::Kind::Alloca, v};
        if (inst->opcode() == Opcode::PtrAdd || inst->opcode() == Opcode::Bitcast) {
          v = inst->operand(0);
          continue;
        }
        // Pointer loaded from memory (e.g. a pointer slot): if it loads from
        // an alloca slot we cannot see through the store; unknown.
        return {MemoryBase::Kind::Unknown, nullptr};
      }
      default:
        return {MemoryBase::Kind::Unknown, nullptr};
    }
  }
  return {MemoryBase::Kind::Unknown, nullptr};
}

BlockDfg BlockDfg::build(const ir::BasicBlock& block,
                         const model::OpLatencyDb& latencies) {
  BlockDfg dfg;
  dfg.block_ = &block;

  std::unordered_map<const Instruction*, int> nodeIndex;
  for (const Instruction* inst : block.instructions()) {
    if (inst->isTerminator()) continue;
    DfgNode node;
    node.inst = inst;
    node.latency = latencies.latencyOf(*inst);
    node.resource = sched::classifyInstruction(*inst, latencies);
    nodeIndex[inst] = static_cast<int>(dfg.nodes_.size());
    dfg.nodes_.push_back(std::move(node));
  }

  auto addEdge = [&](int from, int to) {
    if (from == to) return;
    auto& succs = dfg.nodes_[static_cast<std::size_t>(from)].succs;
    if (std::find(succs.begin(), succs.end(), to) != succs.end()) return;
    succs.push_back(to);
    dfg.nodes_[static_cast<std::size_t>(to)].preds.push_back(from);
  };

  // Register (true) dependencies.
  for (std::size_t i = 0; i < dfg.nodes_.size(); ++i) {
    for (const ir::Value* op : dfg.nodes_[i].inst->operands()) {
      if (op->valueKind() != ir::Value::Kind::Instruction) continue;
      auto it = nodeIndex.find(static_cast<const Instruction*>(op));
      if (it != nodeIndex.end()) addEdge(it->second, static_cast<int>(i));
    }
  }

  // Memory ordering: per-base last-writer / readers-since chains, plus a
  // conservative "unknown base" bucket per address space that conflicts with
  // every access in that space.
  struct BaseState {
    int lastStore = -1;
    std::vector<int> loadsSinceStore;
  };
  struct SpaceKey {
    ir::AddressSpace space;
    MemoryBase base;
    bool operator==(const SpaceKey&) const = default;
  };
  struct SpaceKeyHash {
    std::size_t operator()(const SpaceKey& k) const {
      return std::hash<const void*>()(k.base.value) ^
             (static_cast<std::size_t>(k.space) << 1) ^
             (static_cast<std::size_t>(k.base.kind) << 3);
    }
  };
  std::unordered_map<SpaceKey, BaseState, SpaceKeyHash> states;
  int lastBarrier = -1;

  for (std::size_t i = 0; i < dfg.nodes_.size(); ++i) {
    const Instruction* inst = dfg.nodes_[i].inst;
    if (inst->opcode() == Opcode::Barrier) {
      // A barrier orders every prior access before every later one.
      for (std::size_t j = 0; j < i; ++j) {
        if (dfg.nodes_[j].inst->isMemoryAccess() ||
            dfg.nodes_[j].inst->opcode() == Opcode::Barrier) {
          addEdge(static_cast<int>(j), static_cast<int>(i));
        }
      }
      lastBarrier = static_cast<int>(i);
      states.clear();
      continue;
    }
    if (!inst->isMemoryAccess()) continue;

    const bool isStore = inst->opcode() == Opcode::Store;
    const ir::Value* ptr = isStore ? inst->operand(1) : inst->operand(0);
    const MemoryBase base = memoryBaseOf(ptr);
    const SpaceKey key{inst->memSpace, base};
    const SpaceKey unknownKey{inst->memSpace,
                              MemoryBase{MemoryBase::Kind::Unknown, nullptr}};

    if (lastBarrier >= 0) addEdge(lastBarrier, static_cast<int>(i));

    auto link = [&](const SpaceKey& k, bool alsoLoads) {
      auto it = states.find(k);
      if (it == states.end()) return;
      if (it->second.lastStore >= 0) addEdge(it->second.lastStore, static_cast<int>(i));
      if (alsoLoads) {
        for (int load : it->second.loadsSinceStore) addEdge(load, static_cast<int>(i));
      }
    };

    if (base.kind == MemoryBase::Kind::Unknown) {
      // Unknown conflicts with everything in this address space.
      for (auto& [k, st] : states) {
        if (k.space != inst->memSpace) continue;
        if (st.lastStore >= 0) addEdge(st.lastStore, static_cast<int>(i));
        if (isStore) {
          for (int load : st.loadsSinceStore) addEdge(load, static_cast<int>(i));
        }
      }
    } else {
      link(key, /*alsoLoads=*/isStore);
      link(unknownKey, /*alsoLoads=*/isStore);
    }

    BaseState& st = states[key];
    if (isStore) {
      st.lastStore = static_cast<int>(i);
      st.loadsSinceStore.clear();
      if (base.kind == MemoryBase::Kind::Unknown) {
        // A store through an unknown pointer invalidates every chain in the
        // space: later accesses must order after it via the unknown bucket.
        for (auto& [k, other] : states) {
          if (k.space == inst->memSpace && !(k == key)) {
            other.lastStore = static_cast<int>(i);
            other.loadsSinceStore.clear();
          }
        }
      }
    } else {
      st.loadsSinceStore.push_back(static_cast<int>(i));
    }
  }

  return dfg;
}

int BlockDfg::criticalPathLength() const {
  std::vector<int> finish(nodes_.size(), 0);
  int best = 0;
  // Nodes are in program order, which is a topological order of the DFG.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    int start = 0;
    for (int p : nodes_[i].preds) {
      start = std::max(start, finish[static_cast<std::size_t>(p)]);
    }
    finish[i] = start + nodes_[i].latency;
    best = std::max(best, finish[i]);
  }
  return best;
}

int BlockDfg::totalUnits(sched::ResourceClass rc) const {
  int total = 0;
  for (const DfgNode& n : nodes_) {
    if (n.resource.rc == rc) total += n.resource.units;
  }
  return total;
}

}  // namespace flexcl::cdfg
