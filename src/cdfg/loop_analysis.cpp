#include "cdfg/loop_analysis.h"

#include "obs/registry.h"

namespace flexcl::cdfg {
namespace {

void collectStatic(const ir::Region* region, std::vector<double>& trips,
                   std::vector<TripSource>& sources) {
  if (!region) return;
  if (region->kind == ir::Region::Kind::Loop && region->loopId >= 0 &&
      region->staticTripCount >= 0) {
    const auto i = static_cast<std::size_t>(region->loopId);
    trips[i] = static_cast<double>(region->staticTripCount);
    sources[i] = TripSource::StaticInduction;
  }
  for (const auto& child : region->children) {
    collectStatic(child.get(), trips, sources);
  }
}

}  // namespace

ResolvedTripCounts resolveTripCountsDetailed(
    const ir::Function& fn, const interp::KernelProfile* profile,
    const TripCountOptions& options,
    const std::vector<std::int64_t>* staticTrips) {
  ResolvedTripCounts r;
  r.trips.assign(static_cast<std::size_t>(fn.loopCount), -1.0);
  r.sources.assign(static_cast<std::size_t>(fn.loopCount),
                   TripSource::Fallback);
  collectStatic(fn.rootRegion(), r.trips, r.sources);

  for (std::size_t i = 0; i < r.trips.size(); ++i) {
    if (r.trips[i] >= 0) continue;
    if (staticTrips && i < staticTrips->size() && (*staticTrips)[i] >= 0) {
      r.trips[i] = static_cast<double>((*staticTrips)[i]);
      r.sources[i] = TripSource::StaticDataflow;
    } else if (profile && profile->ok && i < profile->loopTripCounts.size() &&
               profile->loopTripCounts[i] > 0) {
      r.trips[i] = profile->loopTripCounts[i];
      r.sources[i] = TripSource::Profile;
    } else {
      r.trips[i] = options.fallbackTripCount;
    }
    obs::add(r.sources[i] == TripSource::StaticDataflow
                 ? "analysis.dataflow.trips_dataflow"
             : r.sources[i] == TripSource::Profile
                 ? "analysis.dataflow.trips_profile"
                 : "analysis.dataflow.trips_fallback");
  }
  return r;
}

std::vector<double> resolveTripCounts(const ir::Function& fn,
                                      const interp::KernelProfile* profile,
                                      const TripCountOptions& options) {
  return resolveTripCountsDetailed(fn, profile, options).trips;
}

}  // namespace flexcl::cdfg
