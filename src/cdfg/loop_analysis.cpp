#include "cdfg/loop_analysis.h"

namespace flexcl::cdfg {
namespace {

void collectStatic(const ir::Region* region, std::vector<double>& trips) {
  if (!region) return;
  if (region->kind == ir::Region::Kind::Loop && region->loopId >= 0 &&
      region->staticTripCount >= 0) {
    trips[static_cast<std::size_t>(region->loopId)] =
        static_cast<double>(region->staticTripCount);
  }
  for (const auto& child : region->children) collectStatic(child.get(), trips);
}

}  // namespace

std::vector<double> resolveTripCounts(const ir::Function& fn,
                                      const interp::KernelProfile* profile,
                                      const TripCountOptions& options) {
  std::vector<double> trips(static_cast<std::size_t>(fn.loopCount), -1.0);
  collectStatic(fn.rootRegion(), trips);

  for (std::size_t i = 0; i < trips.size(); ++i) {
    if (trips[i] >= 0) continue;
    if (profile && profile->ok && i < profile->loopTripCounts.size() &&
        profile->loopTripCounts[i] > 0) {
      trips[i] = profile->loopTripCounts[i];
    } else {
      trips[i] = options.fallbackTripCount;
    }
  }
  return trips;
}

}  // namespace flexcl::cdfg
