// Loop trip-count resolution (paper §3.2).
//
// Static trip counts come from the lowering's induction-pattern matcher
// (Region::staticTripCount), then from the dataflow tier (bounded evaluation
// of launch-uniform loop conditions, analysis::dataflow::resolveStaticTrips),
// then from the profiler. This module merges the tiers: earlier tiers win,
// later ones fill the gaps, and a documented default covers loops no tier
// could resolve.
#pragma once

#include <vector>

#include "analysis/dataflow/trip_count.h"
#include "interp/profiler.h"
#include "ir/ir.h"

namespace flexcl::cdfg {

/// One shared trip-count knob set for the model and the access-pattern
/// expander (fallbackTripCount, maxStaticTrips).
using TripCountOptions = analysis::dataflow::TripCountConfig;
using TripSource = analysis::dataflow::TripSource;

struct ResolvedTripCounts {
  /// Resolved average trip count per Region::loopId.
  std::vector<double> trips;
  /// Which tier produced each count.
  std::vector<TripSource> sources;
};

/// Full resolution with provenance. `staticTrips` (per loopId, -1 when
/// unresolved) is the dataflow tier's output; pass null to skip that tier.
ResolvedTripCounts resolveTripCountsDetailed(
    const ir::Function& fn, const interp::KernelProfile* profile,
    const TripCountOptions& options = {},
    const std::vector<std::int64_t>* staticTrips = nullptr);

/// Resolved average trip count per Region::loopId (no provenance).
std::vector<double> resolveTripCounts(const ir::Function& fn,
                                      const interp::KernelProfile* profile,
                                      const TripCountOptions& options = {});

}  // namespace flexcl::cdfg
