// Loop trip-count resolution (paper §3.2).
//
// Static trip counts come from the lowering's induction-pattern matcher
// (Region::staticTripCount); dynamic counts from the profiler. This module
// merges the two: static wins when known, profile fills the gaps, and a
// documented default covers loops that never executed during profiling.
#pragma once

#include <vector>

#include "interp/profiler.h"
#include "ir/ir.h"

namespace flexcl::cdfg {

struct TripCountOptions {
  /// Used when neither static analysis nor profiling produced a count.
  double fallbackTripCount = 16.0;
};

/// Resolved average trip count per Region::loopId.
std::vector<double> resolveTripCounts(const ir::Function& fn,
                                      const interp::KernelProfile* profile,
                                      const TripCountOptions& options = {});

}  // namespace flexcl::cdfg
