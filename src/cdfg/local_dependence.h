// Inter-work-item dependence detection (paper §3.3.1, RecMII inputs).
//
// Work-item pipelining is limited by dependences between successive
// work-items that flow through local memory (Figure 3's B[tid-1] example).
// We detect them from the profiled local-memory trace: a store by work-item
// i whose cell is later loaded by work-item j > i creates a recurrence edge
// with distance j - i. Combined with the intra-work-item load->...->store
// path already present in the pipeline graph, these edges form the cycles
// RecMII measures.
#pragma once

#include "analysis/dataflow/affine.h"
#include "analysis/symbolic.h"
#include "interp/profiler.h"

namespace flexcl::cdfg {

struct KernelAnalysis;

/// Appends cross-work-item RAW and WAW edges to `analysis.pipeline`.
/// Distances are the smallest observed work-item gap per (producer inst,
/// consumer inst) pair.
void addCrossWorkItemEdges(KernelAnalysis& analysis,
                           const interp::KernelProfile& profile);

/// Profiler-free variant: derives the edges from the symbolic summary with
/// the GCD/Banerjee dependence tester. Sound over-approximation of the
/// profiled edges — proven distances are exact, undecidable local-memory
/// store/access pairs get a conservative distance-1 edge, and only proven
/// independence drops a pair. `ranges` should bind the work-group geometry
/// (at minimum LocalSize/LocalId dim 0) so distances can be bounded by the
/// group size.
void addStaticCrossWorkItemEdges(KernelAnalysis& analysis,
                                 const analysis::KernelSummary& summary,
                                 const analysis::dataflow::LeafRanges& ranges);

}  // namespace flexcl::cdfg
