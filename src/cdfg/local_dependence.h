// Inter-work-item dependence detection (paper §3.3.1, RecMII inputs).
//
// Work-item pipelining is limited by dependences between successive
// work-items that flow through local memory (Figure 3's B[tid-1] example).
// We detect them from the profiled local-memory trace: a store by work-item
// i whose cell is later loaded by work-item j > i creates a recurrence edge
// with distance j - i. Combined with the intra-work-item load->...->store
// path already present in the pipeline graph, these edges form the cycles
// RecMII measures.
#pragma once

#include "interp/profiler.h"

namespace flexcl::cdfg {

struct KernelAnalysis;

/// Appends cross-work-item RAW and WAW edges to `analysis.pipeline`.
/// Distances are the smallest observed work-item gap per (producer inst,
/// consumer inst) pair.
void addCrossWorkItemEdges(KernelAnalysis& analysis,
                           const interp::KernelProfile& profile);

}  // namespace flexcl::cdfg
