#include "cdfg/cdfg.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "analysis/dataflow/dependence.h"
#include "cdfg/local_dependence.h"
#include "obs/registry.h"
#include "sched/sms.h"

namespace flexcl::cdfg {
namespace {

using ir::AddressSpace;
using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Region;

/// Memory access summary of a region: which bases it reads/writes, per
/// address space. `unknown` wildcards the whole space.
struct AccessSet {
  std::unordered_set<const ir::Value*> bases[4];
  bool unknown[4] = {false, false, false, false};

  void add(AddressSpace space, const MemoryBase& base) {
    const auto s = static_cast<std::size_t>(space);
    if (base.kind == MemoryBase::Kind::Unknown) {
      unknown[s] = true;
    } else {
      bases[s].insert(base.value);
    }
  }
  void merge(const AccessSet& other) {
    for (std::size_t s = 0; s < 4; ++s) {
      unknown[s] = unknown[s] || other.unknown[s];
      bases[s].insert(other.bases[s].begin(), other.bases[s].end());
    }
  }
  [[nodiscard]] bool intersects(const AccessSet& other) const {
    for (std::size_t s = 0; s < 4; ++s) {
      const bool eitherHasAny =
          unknown[s] || other.unknown[s] || !bases[s].empty() || !other.bases[s].empty();
      if (!eitherHasAny) continue;
      if ((unknown[s] && (other.unknown[s] || !other.bases[s].empty())) ||
          (other.unknown[s] && !bases[s].empty())) {
        return true;
      }
      for (const ir::Value* b : bases[s]) {
        if (other.bases[s].count(b)) return true;
      }
    }
    return false;
  }
  [[nodiscard]] bool empty() const {
    for (std::size_t s = 0; s < 4; ++s) {
      if (unknown[s] || !bases[s].empty()) return false;
    }
    return true;
  }
};

struct RegionSummary {
  WorkItemTotals totals;
  AccessSet reads;
  AccessSet writes;
  std::unordered_set<const ir::Value*> defs;
  std::unordered_set<const ir::Value*> uses;
};

WorkItemTotals& operator+=(WorkItemTotals& a, const WorkItemTotals& b) {
  a.latency += b.latency;
  a.localReads += b.localReads;
  a.localWrites += b.localWrites;
  a.globalReads += b.globalReads;
  a.globalWrites += b.globalWrites;
  a.dspUnits += b.dspUnits;
  a.operations += b.operations;
  return a;
}

WorkItemTotals scaled(const WorkItemTotals& t, double factor) {
  WorkItemTotals r = t;
  r.latency *= factor;
  r.localReads *= factor;
  r.localWrites *= factor;
  r.globalReads *= factor;
  r.globalWrites *= factor;
  r.dspUnits *= factor;
  r.operations *= factor;
  return r;
}

WorkItemTotals elementwiseMax(const WorkItemTotals& a, const WorkItemTotals& b) {
  WorkItemTotals r;
  r.latency = std::max(a.latency, b.latency);
  r.localReads = std::max(a.localReads, b.localReads);
  r.localWrites = std::max(a.localWrites, b.localWrites);
  r.globalReads = std::max(a.globalReads, b.globalReads);
  r.globalWrites = std::max(a.globalWrites, b.globalWrites);
  r.dspUnits = std::max(a.dspUnits, b.dspUnits);
  r.operations = std::max(a.operations, b.operations);
  return r;
}

class Analyzer {
 public:
  Analyzer(const ir::Function& fn, const model::OpLatencyDb& latencies,
           const sched::ResourceBudget& budget)
      : fn_(fn), latencies_(latencies), budget_(budget) {}

  KernelAnalysis run(const interp::KernelProfile* profile,
                     const AnalyzeOptions& options);

 private:
  // --- inner-loop pipelining ------------------------------------------------
  static bool isInnermostLoop(const Region& loop);
  void collectLoopBlocks(const Region& region, std::vector<const BasicBlock*>* out);
  /// II_loop * (trips - 1) + depth via SMS over the loop body with
  /// loop-carried memory dependence edges.
  double pipelinedLoopLatency(const Region& loop, double trips);
  /// Dependence-tester refinement of one loop-carried edge: -1 to drop the
  /// edge (proven independent), otherwise the edge distance (proven d, or
  /// the conservative 1).
  int loopCarriedDistance(const Instruction* src, const Instruction* dst,
                          int loopId, std::int64_t maxDistance);
  // --- phase 1: per-block scheduling ---------------------------------------
  void analyzeBlocks();
  // --- phase 2: region latency + totals -------------------------------------
  RegionSummary summarizeRegion(const Region& region);
  RegionSummary summarizeBlock(const BasicBlock& block);
  RegionSummary summarizeSeq(const Region& region);
  // --- phase 3: pipeline graph ------------------------------------------------
  void emitPipeline(const Region& region);
  void emitBlockNodes(const BasicBlock& block);
  void emitLoopSupernode(const Region& loop);
  void mapLoopInstructions(const Region& loop, int nodeId);
  void buildPipelineEdges();

  const ir::Function& fn_;
  const model::OpLatencyDb& latencies_;
  const sched::ResourceBudget& budget_;
  AnalyzeOptions options_;
  KernelAnalysis result_;
  /// Shared list-scheduler working buffers: one function schedules every
  /// block, so the vectors stay at high-water capacity across blocks.
  sched::ListScheduleScratch listScratch_;

  // Pipeline emission state.
  struct NodeAccess {
    AccessSet reads;
    AccessSet writes;
  };
  std::vector<NodeAccess> nodeAccess_;
  std::vector<const Instruction*> nodeInst_;  ///< null for supernodes

  // Dependence-tester inputs (populated only when options.summary is set).
  struct SummaryAccess {
    analysis::dataflow::AccessForm form;
    analysis::PtrBase base = analysis::PtrBase::Unknown;
    int baseIndex = -1;
    AddressSpace space = AddressSpace::Global;
    bool exact = false;
  };
  std::unordered_map<unsigned, SummaryAccess> summaryAccess_;
  analysis::dataflow::LeafRanges depRanges_;
};

void Analyzer::analyzeBlocks() {
  result_.blocks.resize(fn_.blockCount());
  for (const auto& bb : fn_.blocks()) {
    BlockInfo info;
    info.block = bb.get();
    info.dfg = BlockDfg::build(*bb, latencies_);
    info.criticalPath = info.dfg.criticalPathLength();
    info.listLatency = sched::listSchedule(info.dfg, budget_, listScratch_).latency;
    info.localReads = info.dfg.totalUnits(sched::ResourceClass::LocalRead);
    info.localWrites = info.dfg.totalUnits(sched::ResourceClass::LocalWrite);
    info.dspUnits = info.dfg.totalUnits(sched::ResourceClass::Dsp);
    for (const DfgNode& n : info.dfg.nodes()) {
      if (n.inst->opcode() == Opcode::Load &&
          (n.inst->memSpace == AddressSpace::Global ||
           n.inst->memSpace == AddressSpace::Constant)) {
        ++info.globalReads;
      }
      if (n.inst->opcode() == Opcode::Store &&
          (n.inst->memSpace == AddressSpace::Global ||
           n.inst->memSpace == AddressSpace::Constant)) {
        ++info.globalWrites;
      }
      if (n.inst->opcode() == Opcode::Barrier) ++result_.barrierCount;
    }
    result_.blocks[bb->id] = std::move(info);
  }
}

RegionSummary Analyzer::summarizeBlock(const BasicBlock& block) {
  const BlockInfo& info = result_.blocks[block.id];
  RegionSummary s;
  s.totals.latency = info.listLatency;
  s.totals.localReads = info.localReads;
  s.totals.localWrites = info.localWrites;
  s.totals.globalReads = info.globalReads;
  s.totals.globalWrites = info.globalWrites;
  s.totals.dspUnits = info.dspUnits;
  s.totals.operations = static_cast<double>(info.dfg.nodes().size());

  for (const DfgNode& n : info.dfg.nodes()) {
    s.defs.insert(n.inst);
    for (const ir::Value* op : n.inst->operands()) {
      if (op->valueKind() == ir::Value::Kind::Instruction) s.uses.insert(op);
    }
    if (n.inst->opcode() == Opcode::Load) {
      s.reads.add(n.inst->memSpace, memoryBaseOf(n.inst->operand(0)));
    } else if (n.inst->opcode() == Opcode::Store) {
      s.writes.add(n.inst->memSpace, memoryBaseOf(n.inst->operand(1)));
    }
  }
  return s;
}

RegionSummary Analyzer::summarizeSeq(const Region& region) {
  // Children summaries first.
  std::vector<RegionSummary> children;
  children.reserve(region.children.size());
  for (const auto& child : region.children) {
    children.push_back(summarizeRegion(*child));
  }

  RegionSummary s;
  if (children.empty()) return s;

  // Dependence DAG over children: j depends on i (i < j) when j uses a value
  // i defines or their memory footprints conflict.
  const std::size_t n = children.size();
  std::vector<double> finish(n, 0.0);
  double makespan = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    double start = 0.0;
    for (std::size_t i = 0; i < j; ++i) {
      bool dep = false;
      for (const ir::Value* u : children[j].uses) {
        if (children[i].defs.count(u)) {
          dep = true;
          break;
        }
      }
      if (!dep) {
        dep = children[i].writes.intersects(children[j].reads) ||
              children[i].writes.intersects(children[j].writes) ||
              children[i].reads.intersects(children[j].writes);
      }
      if (dep) start = std::max(start, finish[i]);
    }
    finish[j] = start + children[j].totals.latency;
    makespan = std::max(makespan, finish[j]);
  }

  for (const RegionSummary& c : children) {
    s.totals += c.totals;
    s.reads.merge(c.reads);
    s.writes.merge(c.writes);
    s.defs.insert(c.defs.begin(), c.defs.end());
    s.uses.insert(c.uses.begin(), c.uses.end());
  }
  s.totals.latency = makespan;  // blocks without dependencies overlap
  return s;
}

RegionSummary Analyzer::summarizeRegion(const Region& region) {
  switch (region.kind) {
    case Region::Kind::Block:
      return summarizeBlock(*region.block);
    case Region::Kind::Seq:
      return summarizeSeq(region);
    case Region::Kind::If: {
      // Both branches are synthesised; latency is the slower branch, resource
      // totals the element-wise maximum (§3.3.1 "maximum number of
      // accesses"). The condition lives in the preceding block child.
      RegionSummary thenS = summarizeRegion(*region.children[0]);
      RegionSummary elseS = region.children.size() > 1
                                ? summarizeRegion(*region.children[1])
                                : RegionSummary{};
      RegionSummary s;
      s.totals = elementwiseMax(thenS.totals, elseS.totals);
      s.reads = thenS.reads;
      s.reads.merge(elseS.reads);
      s.writes = thenS.writes;
      s.writes.merge(elseS.writes);
      s.defs = std::move(thenS.defs);
      s.defs.insert(elseS.defs.begin(), elseS.defs.end());
      s.uses = std::move(thenS.uses);
      s.uses.insert(elseS.uses.begin(), elseS.uses.end());
      return s;
    }
    case Region::Kind::Loop: {
      RegionSummary body = summarizeRegion(*region.children[0]);
      RegionSummary cond = region.condBlock ? summarizeBlock(*region.condBlock)
                                            : RegionSummary{};
      RegionSummary latch =
          region.latchBlock && region.latchBlock != region.condBlock
              ? summarizeBlock(*region.latchBlock)
              : RegionSummary{};

      const double trips =
          region.loopId >= 0 &&
                  region.loopId < static_cast<int>(result_.tripCounts.size())
              ? result_.tripCounts[static_cast<std::size_t>(region.loopId)]
              : 1.0;

      double perIter = cond.totals.latency + body.totals.latency +
                       latch.totals.latency;
      double effTrips = trips;
      // Inner-loop pipelining: an innermost, non-unrolled loop initiates a
      // new iteration every II_loop cycles.
      double pipelinedLatency = -1.0;
      if (options_.innerLoopPipeline && region.unrollHint <= 1 && trips > 1.0 &&
          isInnermostLoop(region)) {
        pipelinedLatency = pipelinedLoopLatency(region, trips);
      }

      // Inner-loop unrolling: u bodies run concurrently, bounded by the
      // resource issue rate of the replicated body.
      double u = region.unrollHint > 1 ? region.unrollHint
                 : region.unrollHint == -1 ? std::max(1.0, trips)
                                           : 1.0;
      if (u > 1.0) {
        u = std::min(u, std::max(1.0, trips));
        effTrips = std::ceil(trips / u);
        double resBound = 0.0;
        auto bound = [&](double units, int cap) {
          if (cap > 0) resBound = std::max(resBound, std::ceil(u * units / cap));
        };
        bound(body.totals.localReads, budget_.localReadPorts);
        bound(body.totals.localWrites, budget_.localWritePorts);
        bound(body.totals.globalReads + body.totals.globalWrites,
              budget_.globalPorts);
        bound(body.totals.dspUnits, budget_.dspUnits);
        perIter = cond.totals.latency + latch.totals.latency +
                  std::max(body.totals.latency, resBound);
      }

      RegionSummary s;
      WorkItemTotals iter = body.totals;
      iter += cond.totals;
      iter += latch.totals;
      s.totals = scaled(iter, trips);
      // One trailing condition evaluation (the failing check) plus the loop's
      // sequential latency.
      s.totals.latency = effTrips * perIter + cond.totals.latency;
      if (pipelinedLatency >= 0) {
        s.totals.latency = std::min(s.totals.latency, pipelinedLatency);
      }

      s.reads = body.reads;
      s.reads.merge(cond.reads);
      s.reads.merge(latch.reads);
      s.writes = body.writes;
      s.writes.merge(cond.writes);
      s.writes.merge(latch.writes);
      s.defs = std::move(body.defs);
      s.defs.insert(cond.defs.begin(), cond.defs.end());
      s.defs.insert(latch.defs.begin(), latch.defs.end());
      s.uses = std::move(body.uses);
      s.uses.insert(cond.uses.begin(), cond.uses.end());
      s.uses.insert(latch.uses.begin(), latch.uses.end());
      return s;
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Inner-loop pipelining
// ---------------------------------------------------------------------------

bool Analyzer::isInnermostLoop(const Region& loop) {
  std::vector<const Region*> stack = {loop.children[0].get()};
  while (!stack.empty()) {
    const Region* r = stack.back();
    stack.pop_back();
    if (r->kind == Region::Kind::Loop) return false;
    for (const auto& child : r->children) stack.push_back(child.get());
  }
  return true;
}

void Analyzer::collectLoopBlocks(const Region& region,
                                 std::vector<const BasicBlock*>* out) {
  if (region.block) out->push_back(region.block);
  for (const auto& child : region.children) collectLoopBlocks(*child, out);
}

double Analyzer::pipelinedLoopLatency(const Region& loop, double trips) {
  // One iteration's instruction set: the condition check, the body (both
  // branches of any if — speculative datapath), and the step.
  std::vector<const BasicBlock*> blocks;
  if (loop.condBlock) blocks.push_back(loop.condBlock);
  collectLoopBlocks(*loop.children[0], &blocks);
  if (loop.latchBlock && loop.latchBlock != loop.condBlock) {
    blocks.push_back(loop.latchBlock);
  }

  sched::PipelineGraph graph;
  std::unordered_map<const Instruction*, int> nodeOf;
  struct Access {
    int node;
    const Instruction* inst = nullptr;
    AccessSet reads;
    AccessSet writes;
  };
  std::vector<Access> accesses;

  for (const BasicBlock* bb : blocks) {
    for (const Instruction* inst : bb->instructions()) {
      if (inst->isTerminator()) continue;
      sched::PipeNode node;
      node.latency = latencies_.latencyOf(*inst);
      node.resource = sched::classifyInstruction(*inst, latencies_);
      const int id = static_cast<int>(graph.nodes.size());
      nodeOf[inst] = id;
      graph.nodes.push_back(node);

      if (inst->isMemoryAccess()) {
        Access a;
        a.node = id;
        a.inst = inst;
        if (inst->opcode() == Opcode::Load) {
          a.reads.add(inst->memSpace, memoryBaseOf(inst->operand(0)));
        } else {
          a.writes.add(inst->memSpace, memoryBaseOf(inst->operand(1)));
        }
        accesses.push_back(std::move(a));
      }
    }
  }

  // Intra-iteration edges: register uses + memory program order per base.
  for (const auto& [inst, to] : nodeOf) {
    for (const ir::Value* op : inst->operands()) {
      if (op->valueKind() != ir::Value::Kind::Instruction) continue;
      auto from = nodeOf.find(static_cast<const Instruction*>(op));
      if (from == nodeOf.end() || from->second == to) continue;
      graph.edges.push_back(sched::PipeEdge{
          from->second, to,
          graph.nodes[static_cast<std::size_t>(from->second)].latency, 0});
    }
  }
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i + 1; j < accesses.size(); ++j) {
      if (accesses[i].node >= accesses[j].node) continue;
      const bool conflict =
          accesses[i].writes.intersects(accesses[j].reads) ||
          accesses[i].writes.intersects(accesses[j].writes) ||
          accesses[i].reads.intersects(accesses[j].writes);
      if (conflict) {
        graph.edges.push_back(sched::PipeEdge{
            accesses[i].node, accesses[j].node,
            graph.nodes[static_cast<std::size_t>(accesses[i].node)].latency, 0});
      }
    }
  }
  // Loop-carried edges: the last write of each base feeds a later
  // iteration's accesses of that base (RAW + WAW; e.g. the accumulator and
  // the induction-variable slots). The dependence tester refines the default
  // distance 1 where the subscript pair is affine: a proven distance d
  // relaxes the recurrence, proven independence drops the edge.
  const std::int64_t maxDist = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(trips)) - 1);
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (accesses[i].writes.empty()) continue;
    for (std::size_t j = 0; j < accesses.size(); ++j) {
      const bool conflict = accesses[i].writes.intersects(accesses[j].reads) ||
                            accesses[i].writes.intersects(accesses[j].writes);
      if (conflict) {
        const int dist = loopCarriedDistance(accesses[i].inst,
                                             accesses[j].inst, loop.loopId,
                                             maxDist);
        if (dist < 0) continue;  // proven independent
        graph.edges.push_back(sched::PipeEdge{
            accesses[i].node, accesses[j].node,
            graph.nodes[static_cast<std::size_t>(accesses[i].node)].latency,
            dist});
      }
    }
  }

  const sched::SmsResult sms = sched::swingModuloSchedule(graph, budget_);
  return sms.ii * (trips - 1.0) + sms.depth;
}

int Analyzer::loopCarriedDistance(const Instruction* src,
                                  const Instruction* dst, int loopId,
                                  std::int64_t maxDistance) {
  if (!options_.summary || !options_.leafRanges || loopId < 0 || !src || !dst) {
    return 1;
  }
  const auto si = summaryAccess_.find(src->id);
  const auto di = summaryAccess_.find(dst->id);
  if (si == summaryAccess_.end() || di == summaryAccess_.end()) return 1;
  const SummaryAccess& s = si->second;
  const SummaryAccess& d = di->second;
  if (!s.exact || !d.exact) return 1;
  if (s.base == analysis::PtrBase::Unknown ||
      s.base == analysis::PtrBase::None || s.base != d.base ||
      s.baseIndex != d.baseIndex || s.space != d.space) {
    return 1;
  }
  const auto r = analysis::dataflow::testLoopCarried(s.form, d.form, loopId,
                                                     depRanges_, maxDistance);
  switch (r.kind) {
    case analysis::dataflow::DepKind::Independent:
      obs::add("analysis.dataflow.loop_dep_independent");
      return -1;
    case analysis::dataflow::DepKind::Distance:
      if (r.distance > 1) obs::add("analysis.dataflow.loop_dep_relaxed");
      return static_cast<int>(std::min<std::int64_t>(r.distance, INT_MAX));
    case analysis::dataflow::DepKind::Unknown:
      // Conservative verdict: the pair is scheduled at the assumed distance
      // 1. Counted so `flexcl lint --metrics` can attribute how many RecMII
      // constraints rest on the tester declining rather than proving.
      obs::add("analysis.dataflow.dep.unknown");
      break;
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Pipeline graph
// ---------------------------------------------------------------------------

void Analyzer::emitBlockNodes(const BasicBlock& block) {
  const BlockInfo& info = result_.blocks[block.id];
  for (const DfgNode& dn : info.dfg.nodes()) {
    sched::PipeNode node;
    node.latency = dn.latency;
    node.resource = dn.resource;
    node.blockingCycles = 1;
    const int id = static_cast<int>(result_.pipeline.nodes.size());
    result_.pipeline.nodes.push_back(node);
    result_.pipeNodeOfInst[dn.inst->id] = id;
    nodeInst_.push_back(dn.inst);

    NodeAccess access;
    if (dn.inst->opcode() == Opcode::Load) {
      access.reads.add(dn.inst->memSpace, memoryBaseOf(dn.inst->operand(0)));
    } else if (dn.inst->opcode() == Opcode::Store) {
      access.writes.add(dn.inst->memSpace, memoryBaseOf(dn.inst->operand(1)));
    } else if (dn.inst->opcode() == Opcode::Barrier) {
      // A barrier fences every space.
      for (int s = 0; s < 4; ++s) {
        access.reads.unknown[s] = true;
        access.writes.unknown[s] = true;
      }
    }
    nodeAccess_.push_back(std::move(access));
  }
}

void Analyzer::mapLoopInstructions(const Region& loop, int nodeId) {
  auto mapBlock = [&](const BasicBlock* bb) {
    if (!bb) return;
    for (const Instruction* inst : bb->instructions()) {
      result_.pipeNodeOfInst[inst->id] = nodeId;
    }
  };
  mapBlock(loop.condBlock);
  mapBlock(loop.latchBlock);
  // Recursively map everything inside the body.
  std::vector<const Region*> stack = {loop.children[0].get()};
  while (!stack.empty()) {
    const Region* r = stack.back();
    stack.pop_back();
    mapBlock(r->block);
    mapBlock(r->condBlock);
    mapBlock(r->latchBlock);
    for (const auto& child : r->children) stack.push_back(child.get());
  }
}

void Analyzer::emitLoopSupernode(const Region& loop) {
  RegionSummary summary = summarizeRegion(loop);
  sched::PipeNode node;
  node.latency = std::max(1, static_cast<int>(std::lround(summary.totals.latency)));
  node.resource.rc = sched::ResourceClass::LoopEngine;
  node.resource.units = 1;
  node.blockingCycles = node.latency;  // the loop is not work-item-pipelined
  const int id = static_cast<int>(result_.pipeline.nodes.size());
  result_.pipeline.nodes.push_back(node);
  nodeInst_.push_back(nullptr);

  NodeAccess access;
  access.reads = summary.reads;
  access.writes = summary.writes;
  nodeAccess_.push_back(std::move(access));

  mapLoopInstructions(loop, id);
}

void Analyzer::emitPipeline(const Region& region) {
  switch (region.kind) {
    case Region::Kind::Block:
      emitBlockNodes(*region.block);
      return;
    case Region::Kind::Seq:
      for (const auto& child : region.children) emitPipeline(*child);
      return;
    case Region::Kind::If:
      // Speculative datapath: both branches' operations are present.
      for (const auto& child : region.children) emitPipeline(*child);
      return;
    case Region::Kind::Loop:
      emitLoopSupernode(region);
      return;
  }
}

void Analyzer::buildPipelineEdges() {
  auto& graph = result_.pipeline;

  // Register dependencies (cross-block; operand chains to supernodes).
  for (std::size_t to = 0; to < graph.nodes.size(); ++to) {
    const Instruction* inst = nodeInst_[to];
    if (!inst) continue;  // supernode inputs are covered by memory chains
    for (const ir::Value* op : inst->operands()) {
      if (op->valueKind() != ir::Value::Kind::Instruction) continue;
      const auto* def = static_cast<const Instruction*>(op);
      if (def->opcode() == Opcode::Alloca) continue;
      const int from = result_.pipeNodeOfInst[def->id];
      if (from < 0 || from == static_cast<int>(to)) continue;
      graph.edges.push_back(sched::PipeEdge{
          from, static_cast<int>(to),
          graph.nodes[static_cast<std::size_t>(from)].latency, 0});
    }
  }

  // Memory ordering chains across the flattened node sequence.
  struct ChainState {
    int lastStore = -1;
    std::vector<int> loadsSinceStore;
  };
  std::unordered_map<const ir::Value*, ChainState> chains[4];
  ChainState unknownChain[4];

  auto addEdge = [&](int from, int to) {
    if (from < 0 || from == to) return;
    graph.edges.push_back(sched::PipeEdge{
        from, to, graph.nodes[static_cast<std::size_t>(from)].latency, 0});
  };

  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const NodeAccess& access = nodeAccess_[i];
    const int id = static_cast<int>(i);
    for (int s = 0; s < 4; ++s) {
      const bool readsSpace = access.reads.unknown[s] || !access.reads.bases[s].empty();
      const bool writesSpace =
          access.writes.unknown[s] || !access.writes.bases[s].empty();
      if (!readsSpace && !writesSpace) continue;

      auto touch = [&](ChainState& st, bool isWrite) {
        if (isWrite) {
          addEdge(st.lastStore, id);
          for (int l : st.loadsSinceStore) addEdge(l, id);
          st.lastStore = id;
          st.loadsSinceStore.clear();
        } else {
          addEdge(st.lastStore, id);
          st.loadsSinceStore.push_back(id);
        }
      };

      if (access.reads.unknown[s] || access.writes.unknown[s]) {
        // An unknown access conflicts with every chain in this space.
        const bool isWrite = writesSpace;
        for (auto& [base, st] : chains[s]) touch(st, isWrite);
        touch(unknownChain[s], isWrite);
        continue;
      }
      // Known bases: order within their own chain, plus against genuinely
      // unknown accessors (the unknown chain tracks only those).
      for (const ir::Value* base : access.reads.bases[s]) {
        touch(chains[s][base], false);
        addEdge(unknownChain[s].lastStore, id);
      }
      for (const ir::Value* base : access.writes.bases[s]) {
        touch(chains[s][base], true);
        addEdge(unknownChain[s].lastStore, id);
        for (int l : unknownChain[s].loadsSinceStore) addEdge(l, id);
      }
    }
  }
}

KernelAnalysis Analyzer::run(const interp::KernelProfile* profile,
                             const AnalyzeOptions& options) {
  options_ = options;
  result_.fn = &fn_;
  ResolvedTripCounts resolved = resolveTripCountsDetailed(
      fn_, profile, options.tripCounts, options.staticTripCounts);
  result_.tripCounts = std::move(resolved.trips);
  result_.tripSources = std::move(resolved.sources);

  if (options_.summary && options_.leafRanges) {
    depRanges_ = *options_.leafRanges;
    // Bind iteration-counter ranges only where the trip count is exact
    // (static tiers); profiled averages and fallbacks could under-bound.
    for (std::size_t i = 0; i < result_.tripCounts.size(); ++i) {
      const bool exact =
          result_.tripSources[i] == TripSource::StaticInduction ||
          result_.tripSources[i] == TripSource::StaticDataflow;
      const double t = result_.tripCounts[i];
      if (exact && t >= 1.0 && t < 9.0e15) {
        depRanges_.set(analysis::Sym::LoopIter, static_cast<int>(i),
                       analysis::dataflow::Interval::belowCount(
                           static_cast<std::int64_t>(std::ceil(t))));
      }
    }
    for (const analysis::MemAccessInfo& a : options_.summary->accesses) {
      SummaryAccess sa;
      sa.base = a.base;
      sa.baseIndex = a.baseIndex;
      sa.space = a.space;
      if (auto form = analysis::dataflow::linearize(a.offset.get())) {
        sa.form.offset = std::move(*form);
        sa.form.bytes = a.size;
        sa.exact = true;
      }
      summaryAccess_.emplace(a.instId, std::move(sa));
    }
  }

  analyzeBlocks();

  result_.totals = summarizeRegion(*fn_.rootRegion()).totals;

  result_.pipeNodeOfInst.assign(fn_.instructionCount(), -1);
  emitPipeline(*fn_.rootRegion());
  buildPipelineEdges();

  if (profile && profile->ok) {
    addCrossWorkItemEdges(result_, *profile);
  } else if (options_.summary && options_.leafRanges) {
    addStaticCrossWorkItemEdges(result_, *options_.summary, depRanges_);
  }
  return std::move(result_);
}

}  // namespace

KernelAnalysis analyzeKernel(const ir::Function& fn,
                             const model::OpLatencyDb& latencies,
                             const sched::ResourceBudget& budget,
                             const interp::KernelProfile* profile,
                             const AnalyzeOptions& options) {
  Analyzer analyzer(fn, latencies, budget);
  return analyzer.run(profile, options);
}

}  // namespace flexcl::cdfg
