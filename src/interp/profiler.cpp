#include "interp/profiler.h"

namespace flexcl::interp {

std::vector<MemoryAccessEvent> KernelProfile::traceOfWorkItem(
    std::uint64_t workItem) const {
  std::vector<MemoryAccessEvent> out;
  for (const MemoryAccessEvent& ev : globalTrace) {
    if (ev.workItem == workItem) out.push_back(ev);
  }
  return out;
}

double KernelProfile::avgGlobalAccessesPerWorkItem() const {
  if (profiledWorkItems == 0) return 0.0;
  return static_cast<double>(globalTrace.size()) /
         static_cast<double>(profiledWorkItems);
}

KernelProfile profileKernel(const ir::Function& fn, const NdRange& range,
                            const std::vector<KernelArg>& args,
                            const std::vector<std::vector<std::uint8_t>>& buffers,
                            const ProfileOptions& options) {
  KernelProfile profile;
  profile.range = range;

  std::vector<std::vector<std::uint8_t>> scratch = buffers;

  InterpOptions interpOptions;
  interpOptions.captureGlobalTrace = true;
  interpOptions.captureLocalTrace = options.captureLocalTrace;
  interpOptions.groupLimit = static_cast<std::int64_t>(options.groupsToProfile);
  interpOptions.strictBounds = false;

  InterpResult result = runKernel(fn, range, args, scratch, interpOptions);
  profile.ok = result.ok;
  profile.error = result.error;
  profile.oobAccesses = result.oobAccesses;
  if (!result.ok) return profile;

  profile.loopTripCounts.reserve(result.loops.size());
  for (const LoopStats& stats : result.loops) {
    profile.loopTripCounts.push_back(stats.avgTripCount());
  }
  profile.profiledGroups = result.executedGroups;
  profile.profiledWorkItems = result.executedWorkItems;

  profile.globalTrace.reserve(result.trace.size());
  for (MemoryAccessEvent& ev : result.trace) {
    if (ev.space == ir::AddressSpace::Local) {
      profile.localTrace.push_back(ev);
    } else {
      profile.globalTrace.push_back(ev);
    }
  }
  return profile;
}

}  // namespace flexcl::interp
