#include "interp/interpreter.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

namespace flexcl::interp {
namespace {

using ir::AddressSpace;
using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;

double evalMathScalar(ir::MathFunc f, const std::vector<double>& a) {
  switch (f) {
    case ir::MathFunc::Sqrt: return std::sqrt(a[0]);
    case ir::MathFunc::Rsqrt: return 1.0 / std::sqrt(a[0]);
    case ir::MathFunc::Exp: return std::exp(a[0]);
    case ir::MathFunc::Exp2: return std::exp2(a[0]);
    case ir::MathFunc::Log: return std::log(a[0]);
    case ir::MathFunc::Log2: return std::log2(a[0]);
    case ir::MathFunc::Pow: return std::pow(a[0], a[1]);
    case ir::MathFunc::Sin: return std::sin(a[0]);
    case ir::MathFunc::Cos: return std::cos(a[0]);
    case ir::MathFunc::Tan: return std::tan(a[0]);
    case ir::MathFunc::Fabs: return std::fabs(a[0]);
    case ir::MathFunc::Floor: return std::floor(a[0]);
    case ir::MathFunc::Ceil: return std::ceil(a[0]);
    case ir::MathFunc::Round: return std::round(a[0]);
    case ir::MathFunc::Fmax: return std::fmax(a[0], a[1]);
    case ir::MathFunc::Fmin: return std::fmin(a[0], a[1]);
    case ir::MathFunc::Fmod: return std::fmod(a[0], a[1]);
    case ir::MathFunc::Mad:
    case ir::MathFunc::Fma: return a[0] * a[1] + a[2];
    case ir::MathFunc::Abs: return std::fabs(a[0]);
    case ir::MathFunc::Max: return std::fmax(a[0], a[1]);
    case ir::MathFunc::Min: return std::fmin(a[0], a[1]);
    case ir::MathFunc::Clamp: return std::fmin(std::fmax(a[0], a[1]), a[2]);
    case ir::MathFunc::Select: return a[2] != 0.0 ? a[1] : a[0];
    case ir::MathFunc::Hypot: return std::hypot(a[0], a[1]);
    case ir::MathFunc::Atan: return std::atan(a[0]);
    case ir::MathFunc::Atan2: return std::atan2(a[0], a[1]);
  }
  return 0.0;
}

std::int64_t evalMathInt(ir::MathFunc f, const std::vector<std::int64_t>& a) {
  switch (f) {
    case ir::MathFunc::Abs: return a[0] < 0 ? -a[0] : a[0];
    case ir::MathFunc::Max: return a[0] > a[1] ? a[0] : a[1];
    case ir::MathFunc::Min: return a[0] < a[1] ? a[0] : a[1];
    case ir::MathFunc::Clamp: {
      const std::int64_t lo = a[1], hi = a[2];
      return a[0] < lo ? lo : (a[0] > hi ? hi : a[0]);
    }
    case ir::MathFunc::Select: return a[2] != 0 ? a[1] : a[0];
    case ir::MathFunc::Mad: return a[0] * a[1] + a[2];
    default:
      // Float-only function reached with int operands: evaluate in double.
      {
        std::vector<double> d(a.begin(), a.end());
        return static_cast<std::int64_t>(evalMathScalar(f, d));
      }
  }
}

struct WorkItem {
  std::array<std::uint64_t, 3> globalId = {0, 0, 0};
  std::array<std::uint64_t, 3> localId = {0, 0, 0};
  std::uint64_t linearGlobal = 0;
  std::vector<RtValue> values;                  // by instruction id
  std::vector<std::vector<std::uint8_t>> priv;  // by private alloca index
  const BasicBlock* block = nullptr;
  std::size_t ip = 0;
  enum class Status : std::uint8_t { Running, AtBarrier, Done } status = Status::Running;
};

class Machine {
 public:
  Machine(const ir::Function& fn, const NdRange& range,
          const std::vector<KernelArg>& args,
          std::vector<std::vector<std::uint8_t>>& buffers, const InterpOptions& options)
      : fn_(fn), range_(range), args_(args), buffers_(buffers), options_(options) {
    // Alloca indices.
    for (std::size_t i = 0; i < fn_.privateAllocas.size(); ++i) {
      allocaIndex_[fn_.privateAllocas[i]] = static_cast<std::int32_t>(i);
    }
    for (std::size_t i = 0; i < fn_.localAllocas.size(); ++i) {
      allocaIndex_[fn_.localAllocas[i]] = static_cast<std::int32_t>(i);
    }
    // Loop bookkeeping from the region tree.
    result_.loops.resize(static_cast<std::size_t>(fn_.loopCount));
    result_.buffersWritten.assign(buffers_.size(), 0);
    indexLoops(fn_.rootRegion());
  }

  InterpResult run();

 private:
  void indexLoops(const ir::Region* region) {
    if (!region) return;
    if (region->kind == ir::Region::Kind::Loop && region->condBlock) {
      const Instruction* term = region->condBlock->terminator();
      if (term && term->opcode() == Opcode::CondBr) {
        bodyArrival_[term->target0->id] = region->loopId;
        exitArrival_[term->target1->id] = region->loopId;
      }
    }
    for (const auto& child : region->children) indexLoops(child.get());
  }

  bool fail(const std::string& msg) {
    if (result_.error.empty()) result_.error = msg;
    return false;
  }

  RtValue evalOperand(const ir::Value* v, WorkItem& wi);
  bool step(WorkItem& wi, std::uint32_t group);
  bool execInstruction(const Instruction& inst, WorkItem& wi, std::uint32_t group);
  void jumpTo(WorkItem& wi, BasicBlock* target);
  std::vector<std::uint8_t>* poolFor(const Pointer& p, WorkItem& wi);
  bool access(const Instruction& inst, const Pointer& p, std::uint64_t size,
              bool isWrite, WorkItem& wi, std::uint32_t group, RtValue* out,
              const RtValue* in);

  RtValue evalBinary(const Instruction& inst, const RtValue& a, const RtValue& b);
  RtValue evalBinaryScalar(const Instruction& inst, const ir::Type& type,
                           const RtValue& a, const RtValue& b);
  RtValue evalCmp(const Instruction& inst, const RtValue& a, const RtValue& b);
  RtValue evalCast(const Instruction& inst, const RtValue& v);
  RtValue evalCastScalar(Opcode op, const ir::Type& from, const ir::Type& to,
                         const RtValue& v);
  RtValue evalCall(const Instruction& inst, WorkItem& wi);

  const ir::Function& fn_;
  const NdRange& range_;
  const std::vector<KernelArg>& args_;
  std::vector<std::vector<std::uint8_t>>& buffers_;
  InterpOptions options_;
  InterpResult result_;

  std::unordered_map<const Instruction*, std::int32_t> allocaIndex_;
  std::unordered_map<unsigned, int> bodyArrival_;  // blockId -> loopId
  std::unordered_map<unsigned, int> exitArrival_;
  std::vector<std::vector<std::uint8_t>> localMem_;  // current group's local pools

  // Dynamic race checker (options_.raceCheck): per-byte shadow state with
  // happens-before over barrier epochs. epoch_ resets at each group and
  // advances when a barrier releases; two accesses within a group are ordered
  // iff their epochs differ, and accesses from different groups are never
  // ordered (barriers are group-local).
  struct ShadowRef {
    std::uint64_t workItem = 0;
    std::uint32_t group = 0;
    std::uint64_t epoch = 0;
    std::uint32_t inst = 0;
    bool valid = false;
  };
  struct ShadowCell {
    ShadowRef writer;
    // Last reader, last reader from a different work-item than reader1, and
    // a reader from an earlier group than the most recent one (cross-group
    // read/write conflicts survive same-group reader turnover).
    ShadowRef reader1, reader2, readerPrevGroup;
  };
  void raceShadowCheck(const Instruction& inst, const Pointer& p,
                       std::uint64_t size, bool isWrite, const WorkItem& wi,
                       std::uint32_t group);
  void noteRace(const Pointer& p, std::int64_t byte, const ShadowRef& prior,
                bool priorWrite, const ShadowRef& cur, bool curWrite);

  std::uint64_t epoch_ = 0;
  std::unordered_map<std::uint64_t, ShadowCell> globalShadow_;
  std::unordered_map<std::uint64_t, ShadowCell> localShadow_;
  std::unordered_set<std::uint64_t> raceSeen_;  // dedup key: instA/instB/space
};

RtValue Machine::evalOperand(const ir::Value* v, WorkItem& wi) {
  switch (v->valueKind()) {
    case ir::Value::Kind::Constant: {
      const auto* c = static_cast<const ir::Constant*>(v);
      if (c->isFloatConstant()) return RtValue::makeFloat(c->floatValue());
      return RtValue::makeInt(c->intValue());
    }
    case ir::Value::Kind::Argument: {
      const auto* arg = static_cast<const ir::Argument*>(v);
      const KernelArg& ka = args_[arg->index()];
      if (ka.isBuffer) {
        Pointer p;
        p.space = arg->type()->isPointer() ? arg->type()->addressSpace()
                                           : AddressSpace::Global;
        p.buffer = ka.bufferIndex;
        p.offset = 0;
        return RtValue::makePtr(p);
      }
      return ka.scalar;
    }
    case ir::Value::Kind::Instruction: {
      const auto* inst = static_cast<const Instruction*>(v);
      if (inst->opcode() == Opcode::Alloca) {
        Pointer p;
        p.space = inst->allocaSpace;
        p.buffer = allocaIndex_.at(inst);
        p.offset = 0;
        return RtValue::makePtr(p);
      }
      return wi.values[inst->id];
    }
  }
  return {};
}

std::vector<std::uint8_t>* Machine::poolFor(const Pointer& p, WorkItem& wi) {
  switch (p.space) {
    case AddressSpace::Global:
    case AddressSpace::Constant:
      if (p.buffer < 0 || static_cast<std::size_t>(p.buffer) >= buffers_.size())
        return nullptr;
      return &buffers_[static_cast<std::size_t>(p.buffer)];
    case AddressSpace::Local:
      if (p.buffer < 0 || static_cast<std::size_t>(p.buffer) >= localMem_.size())
        return nullptr;
      return &localMem_[static_cast<std::size_t>(p.buffer)];
    case AddressSpace::Private:
      if (p.buffer < 0 || static_cast<std::size_t>(p.buffer) >= wi.priv.size())
        return nullptr;
      return &wi.priv[static_cast<std::size_t>(p.buffer)];
  }
  return nullptr;
}

bool Machine::access(const Instruction& inst, const Pointer& p, std::uint64_t size,
                     bool isWrite, WorkItem& wi, std::uint32_t group, RtValue* out,
                     const RtValue* in) {
  std::vector<std::uint8_t>* pool = poolFor(p, wi);
  const ir::Type* valueType = inst.type();
  const bool inBounds = pool && p.offset >= 0 &&
                        static_cast<std::uint64_t>(p.offset) + size <= pool->size();
  if (!inBounds) {
    ++result_.oobAccesses;
    if (options_.strictBounds) {
      return fail("out-of-bounds " + std::string(isWrite ? "write" : "read") +
                  " at " + ir::addressSpaceName(p.space) + " buffer " +
                  std::to_string(p.buffer) + " offset " + std::to_string(p.offset) +
                  " size " + std::to_string(size) + " (work-item " +
                  std::to_string(wi.linearGlobal) + ")");
    }
    if (!isWrite && out) {
      // Lenient mode: reads of invalid memory produce zero.
      std::vector<std::uint8_t> zeros(size, 0);
      *out = readValue(*valueType, zeros.data());
    }
  } else if (isWrite) {
    writeValue(*valueType, *in, pool->data() + p.offset);
    if (p.space == AddressSpace::Global || p.space == AddressSpace::Constant) {
      result_.buffersWritten[static_cast<std::size_t>(p.buffer)] = 1;
    }
  } else if (out) {
    *out = readValue(*valueType, pool->data() + p.offset);
  }

  if (options_.raceCheck && inBounds &&
      (p.space == AddressSpace::Global || p.space == AddressSpace::Local)) {
    raceShadowCheck(inst, p, size, isWrite, wi, group);
  }

  const bool record =
      (p.space == AddressSpace::Global || p.space == AddressSpace::Constant)
          ? options_.captureGlobalTrace
          : (p.space == AddressSpace::Local && options_.captureLocalTrace);
  if (record) {
    MemoryAccessEvent ev;
    ev.workItem = wi.linearGlobal;
    ev.group = group;
    ev.space = p.space;
    ev.buffer = p.buffer;
    ev.offset = p.offset;
    ev.size = static_cast<std::uint32_t>(size);
    ev.isWrite = isWrite;
    ev.instId = inst.id;
    if (options_.traceSink != nullptr) {
      options_.traceSink->onAccess(ev);
    } else {
      result_.trace.push_back(ev);
    }
  }
  return true;
}

void Machine::noteRace(const Pointer& p, std::int64_t byte,
                       const ShadowRef& prior, bool priorWrite,
                       const ShadowRef& cur, bool curWrite) {
  ++result_.raceCount;
  const std::uint64_t key = (static_cast<std::uint64_t>(prior.inst) << 33) |
                            (static_cast<std::uint64_t>(cur.inst) << 1) |
                            (p.space == AddressSpace::Local ? 1u : 0u);
  if (!raceSeen_.insert(key).second) return;
  if (result_.races.size() >= 64) return;
  RaceRecord r;
  r.space = p.space;
  r.buffer = p.buffer;
  r.offset = byte;
  r.instA = prior.inst;
  r.instB = cur.inst;
  r.workItemA = prior.workItem;
  r.workItemB = cur.workItem;
  r.writeA = priorWrite;
  r.writeB = curWrite;
  result_.races.push_back(r);
}

void Machine::raceShadowCheck(const Instruction& inst, const Pointer& p,
                              std::uint64_t size, bool isWrite,
                              const WorkItem& wi, std::uint32_t group) {
  const bool global = p.space == AddressSpace::Global;
  auto& shadow = global ? globalShadow_ : localShadow_;
  ShadowRef cur;
  cur.workItem = wi.linearGlobal;
  cur.group = group;
  cur.epoch = epoch_;
  cur.inst = inst.id;
  cur.valid = true;
  // Unordered iff different work-items and no barrier between: same epoch
  // within a group, or (global memory) different groups — barriers never
  // order accesses across groups.
  const auto conflicts = [&](const ShadowRef& prior) {
    if (!prior.valid || prior.workItem == cur.workItem) return false;
    if (global && prior.group != cur.group) return true;
    return prior.epoch == cur.epoch;
  };
  for (std::uint64_t b = 0; b < size; ++b) {
    const std::int64_t byte = p.offset + static_cast<std::int64_t>(b);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.buffer)) << 45) |
        static_cast<std::uint64_t>(byte);
    ShadowCell& cell = shadow[key];
    if (conflicts(cell.writer)) {
      noteRace(p, byte, cell.writer, /*priorWrite=*/true, cur, isWrite);
    }
    if (isWrite) {
      if (conflicts(cell.reader1)) noteRace(p, byte, cell.reader1, false, cur, true);
      if (conflicts(cell.reader2)) noteRace(p, byte, cell.reader2, false, cur, true);
      if (conflicts(cell.readerPrevGroup)) {
        noteRace(p, byte, cell.readerPrevGroup, false, cur, true);
      }
      cell.writer = cur;
      cell.reader1.valid = cell.reader2.valid = false;
      cell.readerPrevGroup.valid = false;
    } else {
      // Readers from earlier groups conflict with any later-group write;
      // park one before the same-group slots turn over.
      if (cell.reader1.valid && cell.reader1.group != group) {
        cell.readerPrevGroup = cell.reader1;
      } else if (cell.reader2.valid && cell.reader2.group != group) {
        cell.readerPrevGroup = cell.reader2;
      }
      if (cell.reader1.valid && cell.reader1.workItem != cur.workItem) {
        cell.reader2 = cell.reader1;
      }
      cell.reader1 = cur;
    }
  }
}

void Machine::jumpTo(WorkItem& wi, BasicBlock* target) {
  auto body = bodyArrival_.find(target->id);
  if (body != bodyArrival_.end()) {
    ++result_.loops[static_cast<std::size_t>(body->second)].bodyExecutions;
  }
  auto exit = exitArrival_.find(target->id);
  if (exit != exitArrival_.end()) {
    ++result_.loops[static_cast<std::size_t>(exit->second)].entries;
  }
  wi.block = target;
  wi.ip = 0;
}

RtValue Machine::evalBinaryScalar(const Instruction& inst, const ir::Type& type,
                                  const RtValue& a, const RtValue& b) {
  switch (inst.opcode()) {
    case Opcode::FAdd: return RtValue::makeFloat(a.f + b.f);
    case Opcode::FSub: return RtValue::makeFloat(a.f - b.f);
    case Opcode::FMul: return RtValue::makeFloat(a.f * b.f);
    case Opcode::FDiv: return RtValue::makeFloat(b.f == 0.0 ? 0.0 : a.f / b.f);
    case Opcode::FRem: return RtValue::makeFloat(b.f == 0.0 ? 0.0 : std::fmod(a.f, b.f));
    default:
      break;
  }
  std::int64_t r = 0;
  const std::int64_t x = a.i, y = b.i;
  switch (inst.opcode()) {
    case Opcode::Add: r = x + y; break;
    case Opcode::Sub: r = x - y; break;
    case Opcode::Mul: r = x * y; break;
    case Opcode::Div:
      if (y == 0) {
        r = 0;
      } else if (type.isSigned()) {
        r = x / y;
      } else {
        r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) /
                                      static_cast<std::uint64_t>(y));
      }
      break;
    case Opcode::Rem:
      if (y == 0) {
        r = 0;
      } else if (type.isSigned()) {
        r = x % y;
      } else {
        r = static_cast<std::int64_t>(static_cast<std::uint64_t>(x) %
                                      static_cast<std::uint64_t>(y));
      }
      break;
    case Opcode::And: r = x & y; break;
    case Opcode::Or: r = x | y; break;
    case Opcode::Xor: r = x ^ y; break;
    case Opcode::Shl: r = x << (y & 63); break;
    case Opcode::Shr:
      if (type.isSigned()) {
        r = x >> (y & 63);
      } else {
        const unsigned bits = type.bits();
        const std::uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
        r = static_cast<std::int64_t>((static_cast<std::uint64_t>(x) & mask) >>
                                      (y & 63));
      }
      break;
    default:
      break;
  }
  return RtValue::makeInt(normalizeInt(type, r));
}

RtValue Machine::evalBinary(const Instruction& inst, const RtValue& a,
                            const RtValue& b) {
  const ir::Type* type = inst.type();
  if (type->isVector()) {
    std::vector<RtValue> lanes;
    lanes.reserve(type->count());
    for (std::uint64_t l = 0; l < type->count(); ++l) {
      lanes.push_back(evalBinaryScalar(inst, *type->element(), a.lanes[l], b.lanes[l]));
    }
    return RtValue::makeVec(std::move(lanes));
  }
  return evalBinaryScalar(inst, *type, a, b);
}

RtValue Machine::evalCmp(const Instruction& inst, const RtValue& a, const RtValue& b) {
  bool result = false;
  if (inst.opcode() == Opcode::FCmp) {
    switch (inst.cmpPred) {
      case ir::CmpPred::Eq: result = a.f == b.f; break;
      case ir::CmpPred::Ne: result = a.f != b.f; break;
      case ir::CmpPred::Lt: result = a.f < b.f; break;
      case ir::CmpPred::Le: result = a.f <= b.f; break;
      case ir::CmpPred::Gt: result = a.f > b.f; break;
      case ir::CmpPred::Ge: result = a.f >= b.f; break;
    }
    return RtValue::makeInt(result ? 1 : 0);
  }
  if (a.isPtr() || b.isPtr()) {
    const auto key = [](const Pointer& p) {
      return std::pair<std::int64_t, std::int64_t>(p.buffer, p.offset);
    };
    const auto ka = key(a.ptr), kb = key(b.ptr);
    switch (inst.cmpPred) {
      case ir::CmpPred::Eq: result = ka == kb; break;
      case ir::CmpPred::Ne: result = ka != kb; break;
      case ir::CmpPred::Lt: result = ka < kb; break;
      case ir::CmpPred::Le: result = ka <= kb; break;
      case ir::CmpPred::Gt: result = ka > kb; break;
      case ir::CmpPred::Ge: result = ka >= kb; break;
    }
    return RtValue::makeInt(result ? 1 : 0);
  }
  // Integer compare honouring the operand type's signedness.
  const ir::Type* opType = inst.operand(0)->type();
  const bool isSigned = opType->isBool() || opType->isSigned();
  if (isSigned) {
    switch (inst.cmpPred) {
      case ir::CmpPred::Eq: result = a.i == b.i; break;
      case ir::CmpPred::Ne: result = a.i != b.i; break;
      case ir::CmpPred::Lt: result = a.i < b.i; break;
      case ir::CmpPred::Le: result = a.i <= b.i; break;
      case ir::CmpPred::Gt: result = a.i > b.i; break;
      case ir::CmpPred::Ge: result = a.i >= b.i; break;
    }
  } else {
    const auto ua = static_cast<std::uint64_t>(a.i);
    const auto ub = static_cast<std::uint64_t>(b.i);
    switch (inst.cmpPred) {
      case ir::CmpPred::Eq: result = ua == ub; break;
      case ir::CmpPred::Ne: result = ua != ub; break;
      case ir::CmpPred::Lt: result = ua < ub; break;
      case ir::CmpPred::Le: result = ua <= ub; break;
      case ir::CmpPred::Gt: result = ua > ub; break;
      case ir::CmpPred::Ge: result = ua >= ub; break;
    }
  }
  return RtValue::makeInt(result ? 1 : 0);
}

RtValue Machine::evalCastScalar(Opcode op, const ir::Type& from, const ir::Type& to,
                                const RtValue& v) {
  switch (op) {
    case Opcode::Trunc:
      return RtValue::makeInt(normalizeInt(to, v.i));
    case Opcode::ZExt: {
      const unsigned bits = from.isBool() ? 1 : from.bits();
      const std::uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
      return RtValue::makeInt(
          normalizeInt(to, static_cast<std::int64_t>(static_cast<std::uint64_t>(v.i) &
                                                     mask)));
    }
    case Opcode::SExt:
      return RtValue::makeInt(normalizeInt(to, v.i));
    case Opcode::FPTrunc:
      return RtValue::makeFloat(static_cast<double>(static_cast<float>(v.f)));
    case Opcode::FPExt:
      return RtValue::makeFloat(v.f);
    case Opcode::SIToFP:
      return RtValue::makeFloat(static_cast<double>(v.i));
    case Opcode::UIToFP: {
      const unsigned bits = from.isBool() ? 1 : from.bits();
      const std::uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
      return RtValue::makeFloat(
          static_cast<double>(static_cast<std::uint64_t>(v.i) & mask));
    }
    case Opcode::FPToSI: {
      const double clamped = std::isnan(v.f) ? 0.0 : v.f;
      return RtValue::makeInt(normalizeInt(to, static_cast<std::int64_t>(clamped)));
    }
    case Opcode::FPToUI: {
      const double clamped = std::isnan(v.f) || v.f < 0 ? 0.0 : v.f;
      return RtValue::makeInt(
          normalizeInt(to, static_cast<std::int64_t>(
                               static_cast<std::uint64_t>(clamped))));
    }
    case Opcode::Bitcast:
      if (v.isPtr()) return v;
      return RtValue::makeInt(normalizeInt(to, v.i));
    default:
      return v;
  }
}

RtValue Machine::evalCast(const Instruction& inst, const RtValue& v) {
  const ir::Type* to = inst.type();
  const ir::Type* from = inst.operand(0)->type();
  if (to->isVector()) {
    std::vector<RtValue> lanes;
    lanes.reserve(to->count());
    for (std::uint64_t l = 0; l < to->count(); ++l) {
      lanes.push_back(
          evalCastScalar(inst.opcode(), *from->element(), *to->element(), v.lanes[l]));
    }
    return RtValue::makeVec(std::move(lanes));
  }
  return evalCastScalar(inst.opcode(), *from, *to, v);
}

RtValue Machine::evalCall(const Instruction& inst, WorkItem& wi) {
  const ir::Type* type = inst.type();
  const bool vector = type->isVector();
  const ir::Type* scalarType = vector ? type->element() : type;
  const std::uint64_t lanes = vector ? type->count() : 1;

  std::vector<RtValue> argValues;
  argValues.reserve(inst.operands().size());
  for (const ir::Value* op : inst.operands()) argValues.push_back(evalOperand(op, wi));

  auto laneOf = [&](const RtValue& v, std::uint64_t l) -> const RtValue& {
    return v.isVec() ? v.lanes[l] : v;
  };

  std::vector<RtValue> outLanes;
  for (std::uint64_t l = 0; l < lanes; ++l) {
    RtValue r;
    if (scalarType->isFloat()) {
      std::vector<double> a;
      for (const RtValue& av : argValues) {
        const RtValue& lv = laneOf(av, l);
        a.push_back(lv.isFloat() ? lv.f : static_cast<double>(lv.i));
      }
      r = RtValue::makeFloat(evalMathScalar(inst.mathFunc, a));
    } else {
      std::vector<std::int64_t> a;
      for (const RtValue& av : argValues) {
        const RtValue& lv = laneOf(av, l);
        a.push_back(lv.isInt() ? lv.i : static_cast<std::int64_t>(lv.f));
      }
      r = RtValue::makeInt(normalizeInt(*scalarType, evalMathInt(inst.mathFunc, a)));
    }
    if (!vector) return r;
    outLanes.push_back(std::move(r));
  }
  return RtValue::makeVec(std::move(outLanes));
}

bool Machine::execInstruction(const Instruction& inst, WorkItem& wi,
                              std::uint32_t group) {
  switch (inst.opcode()) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
    case Opcode::Rem: case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
    case Opcode::FDiv: case Opcode::FRem: case Opcode::And: case Opcode::Or:
    case Opcode::Xor: case Opcode::Shl: case Opcode::Shr: {
      RtValue a = evalOperand(inst.operand(0), wi);
      RtValue b = evalOperand(inst.operand(1), wi);
      wi.values[inst.id] = evalBinary(inst, a, b);
      return true;
    }
    case Opcode::ICmp:
    case Opcode::FCmp: {
      RtValue a = evalOperand(inst.operand(0), wi);
      RtValue b = evalOperand(inst.operand(1), wi);
      wi.values[inst.id] = evalCmp(inst, a, b);
      return true;
    }
    case Opcode::Select: {
      RtValue c = evalOperand(inst.operand(0), wi);
      wi.values[inst.id] =
          c.truthy() ? evalOperand(inst.operand(1), wi) : evalOperand(inst.operand(2), wi);
      return true;
    }
    case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt: case Opcode::FPTrunc:
    case Opcode::FPExt: case Opcode::SIToFP: case Opcode::UIToFP:
    case Opcode::FPToSI: case Opcode::FPToUI: case Opcode::Bitcast: {
      RtValue v = evalOperand(inst.operand(0), wi);
      wi.values[inst.id] = evalCast(inst, v);
      return true;
    }
    case Opcode::PtrAdd: {
      RtValue base = evalOperand(inst.operand(0), wi);
      RtValue off = evalOperand(inst.operand(1), wi);
      if (!base.isPtr()) return fail("ptradd on non-pointer value");
      Pointer p = base.ptr;
      p.offset += off.i;
      if (inst.type()->isPointer()) p.space = inst.type()->addressSpace();
      wi.values[inst.id] = RtValue::makePtr(p);
      return true;
    }
    case Opcode::Load: {
      RtValue addr = evalOperand(inst.operand(0), wi);
      if (!addr.isPtr()) return fail("load from non-pointer value");
      RtValue out;
      if (!access(inst, addr.ptr, inst.type()->sizeInBytes(), false, wi, group, &out,
                  nullptr)) {
        return false;
      }
      wi.values[inst.id] = std::move(out);
      return true;
    }
    case Opcode::Store: {
      RtValue value = evalOperand(inst.operand(0), wi);
      RtValue addr = evalOperand(inst.operand(1), wi);
      if (!addr.isPtr()) return fail("store to non-pointer value");
      return access(inst, addr.ptr, inst.type()->sizeInBytes(), true, wi, group,
                    nullptr, &value);
    }
    case Opcode::ExtractLane: {
      RtValue vec = evalOperand(inst.operand(0), wi);
      RtValue lane = evalOperand(inst.operand(1), wi);
      if (!vec.isVec() || lane.i < 0 ||
          static_cast<std::size_t>(lane.i) >= vec.lanes.size()) {
        return fail("invalid lane extract");
      }
      wi.values[inst.id] = vec.lanes[static_cast<std::size_t>(lane.i)];
      return true;
    }
    case Opcode::InsertLane: {
      RtValue vec = evalOperand(inst.operand(0), wi);
      RtValue lane = evalOperand(inst.operand(1), wi);
      RtValue elem = evalOperand(inst.operand(2), wi);
      if (!vec.isVec() || lane.i < 0 ||
          static_cast<std::size_t>(lane.i) >= vec.lanes.size()) {
        return fail("invalid lane insert");
      }
      vec.lanes[static_cast<std::size_t>(lane.i)] = std::move(elem);
      wi.values[inst.id] = std::move(vec);
      return true;
    }
    case Opcode::Splat: {
      RtValue scalar = evalOperand(inst.operand(0), wi);
      std::vector<RtValue> lanes(inst.type()->count(), scalar);
      wi.values[inst.id] = RtValue::makeVec(std::move(lanes));
      return true;
    }
    case Opcode::Call: {
      wi.values[inst.id] = evalCall(inst, wi);
      return true;
    }
    case Opcode::WorkItemId: {
      RtValue dimV = evalOperand(inst.operand(0), wi);
      const int dim = dimV.i >= 0 && dimV.i < 3 ? static_cast<int>(dimV.i) : 0;
      std::uint64_t v = 0;
      const auto groups = range_.groupsPerDim();
      switch (inst.wiQuery) {
        case ir::WiQuery::GlobalId: v = wi.globalId[dim]; break;
        case ir::WiQuery::LocalId: v = wi.localId[dim]; break;
        case ir::WiQuery::GroupId: v = wi.globalId[dim] / range_.local[dim]; break;
        case ir::WiQuery::GlobalSize: v = range_.global[dim]; break;
        case ir::WiQuery::LocalSize: v = range_.local[dim]; break;
        case ir::WiQuery::NumGroups: v = groups[dim]; break;
      }
      wi.values[inst.id] = RtValue::makeInt(static_cast<std::int64_t>(v));
      return true;
    }
    case Opcode::Barrier:
      wi.status = WorkItem::Status::AtBarrier;
      return true;
    case Opcode::Br:
      jumpTo(wi, inst.target0);
      return true;
    case Opcode::CondBr: {
      RtValue c = evalOperand(inst.operand(0), wi);
      jumpTo(wi, c.truthy() ? inst.target0 : inst.target1);
      return true;
    }
    case Opcode::Ret:
      wi.status = WorkItem::Status::Done;
      return true;
    case Opcode::Alloca:
      return fail("alloca must not be executed");
  }
  return fail("unknown opcode");
}

bool Machine::step(WorkItem& wi, std::uint32_t group) {
  // Runs until the work-item hits a barrier or finishes.
  while (wi.status == WorkItem::Status::Running) {
    if (wi.ip >= wi.block->instructions().size()) {
      return fail("fell off the end of block " + wi.block->name());
    }
    const Instruction& inst = *wi.block->instructions()[wi.ip];
    ++wi.ip;  // advance first: jumps overwrite, barrier resume continues after
    ++result_.executedInstructions;
    if (result_.executedInstructions > options_.maxSteps) {
      return fail("instruction budget exceeded (runaway loop?)");
    }
    if (!execInstruction(inst, wi, group)) return false;
  }
  return true;
}

InterpResult Machine::run() {
  const auto groupsPerDim = range_.groupsPerDim();
  const std::uint64_t totalGroups = range_.groupCount();
  const std::uint64_t groupsToRun =
      options_.groupLimit >= 0
          ? std::min<std::uint64_t>(totalGroups,
                                    static_cast<std::uint64_t>(options_.groupLimit))
          : totalGroups;
  const std::uint64_t wgSize = range_.localCount();

  for (int d = 0; d < 3; ++d) {
    if (range_.local[d] == 0 || range_.global[d] % range_.local[d] != 0) {
      fail("global size must be a multiple of local size in every dimension");
      result_.ok = false;
      return std::move(result_);
    }
  }

  for (std::uint64_t g = 0; g < groupsToRun; ++g) {
    // Group coordinates.
    std::array<std::uint64_t, 3> groupId;
    groupId[0] = g % groupsPerDim[0];
    groupId[1] = (g / groupsPerDim[0]) % groupsPerDim[1];
    groupId[2] = g / (groupsPerDim[0] * groupsPerDim[1]);

    // Fresh local memory per work-group.
    localMem_.clear();
    for (const Instruction* a : fn_.localAllocas) {
      localMem_.emplace_back(a->allocaType->sizeInBytes(), 0);
    }
    // Fresh barrier-epoch and local shadow state per group (global shadow
    // persists: cross-group conflicts compare group ids, not epochs).
    epoch_ = 0;
    localShadow_.clear();

    std::vector<WorkItem> items(wgSize);
    for (std::uint64_t l = 0; l < wgSize; ++l) {
      WorkItem& wi = items[l];
      wi.localId[0] = l % range_.local[0];
      wi.localId[1] = (l / range_.local[0]) % range_.local[1];
      wi.localId[2] = l / (range_.local[0] * range_.local[1]);
      for (int d = 0; d < 3; ++d) {
        wi.globalId[d] = groupId[d] * range_.local[d] + wi.localId[d];
      }
      wi.linearGlobal = wi.globalId[0] + wi.globalId[1] * range_.global[0] +
                        wi.globalId[2] * range_.global[0] * range_.global[1];
      wi.values.resize(fn_.instructionCount());
      for (const Instruction* a : fn_.privateAllocas) {
        wi.priv.emplace_back(a->allocaType->sizeInBytes(), 0);
      }
      wi.block = fn_.entry();
      wi.ip = 0;
    }

    // Round-robin until everyone is done, synchronising at barriers.
    for (;;) {
      bool anyRunning = false;
      for (WorkItem& wi : items) {
        if (wi.status == WorkItem::Status::Running) {
          anyRunning = true;
          if (!step(wi, static_cast<std::uint32_t>(g))) {
            result_.ok = false;
            return std::move(result_);
          }
        }
      }
      if (anyRunning) continue;

      std::size_t atBarrier = 0, done = 0;
      for (const WorkItem& wi : items) {
        if (wi.status == WorkItem::Status::AtBarrier) ++atBarrier;
        if (wi.status == WorkItem::Status::Done) ++done;
      }
      if (done == items.size()) break;
      if (atBarrier == items.size()) {
        for (WorkItem& wi : items) wi.status = WorkItem::Status::Running;
        ++epoch_;  // barrier release opens a new happens-before epoch
        continue;
      }
      fail("barrier divergence: " + std::to_string(atBarrier) + " of " +
           std::to_string(items.size()) + " work-items reached the barrier");
      result_.ok = false;
      return std::move(result_);
    }

    result_.executedWorkItems += wgSize;
    ++result_.executedGroups;
  }

  result_.ok = true;
  return std::move(result_);
}

}  // namespace

InterpResult runKernel(const ir::Function& fn, const NdRange& range,
                       const std::vector<KernelArg>& args,
                       std::vector<std::vector<std::uint8_t>>& buffers,
                       const InterpOptions& options) {
  Machine machine(fn, range, args, buffers, options);
  return machine.run();
}

}  // namespace flexcl::interp
