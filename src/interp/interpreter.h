// NDRange interpreter for the FlexCL IR.
//
// Executes kernels functionally (for validation against reference
// implementations) and produces the dynamic-profiling artefacts the paper's
// kernel analysis needs (§3.2): loop trip counts and the per-work-item global
// memory access trace. Work-items of a work-group run round-robin and are
// synchronised at barriers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "interp/value.h"
#include "ir/ir.h"

namespace flexcl::interp {

/// Kernel launch geometry. Sizes are per dimension; unused dims are 1.
struct NdRange {
  std::array<std::uint64_t, 3> global = {1, 1, 1};
  std::array<std::uint64_t, 3> local = {1, 1, 1};

  [[nodiscard]] std::uint64_t globalCount() const {
    return global[0] * global[1] * global[2];
  }
  [[nodiscard]] std::uint64_t localCount() const {
    return local[0] * local[1] * local[2];
  }
  [[nodiscard]] std::uint64_t groupCount() const {
    std::uint64_t n = 1;
    for (int d = 0; d < 3; ++d) n *= (global[d] + local[d] - 1) / local[d];
    return n;
  }
  [[nodiscard]] std::array<std::uint64_t, 3> groupsPerDim() const {
    return {(global[0] + local[0] - 1) / local[0],
            (global[1] + local[1] - 1) / local[1],
            (global[2] + local[2] - 1) / local[2]};
  }
};

/// One kernel argument: either a scalar value or an index into the buffer
/// list (for __global/__constant pointers).
struct KernelArg {
  bool isBuffer = false;
  RtValue scalar;
  std::int32_t bufferIndex = -1;

  static KernelArg buffer(std::int32_t index) {
    KernelArg a;
    a.isBuffer = true;
    a.bufferIndex = index;
    return a;
  }
  static KernelArg intScalar(std::int64_t v) {
    KernelArg a;
    a.scalar = RtValue::makeInt(v);
    return a;
  }
  static KernelArg floatScalar(double v) {
    KernelArg a;
    a.scalar = RtValue::makeFloat(v);
    return a;
  }
};

/// One recorded memory access (global or local address space).
struct MemoryAccessEvent {
  std::uint64_t workItem = 0;  ///< linear global work-item id
  std::uint32_t group = 0;     ///< linear work-group id
  ir::AddressSpace space = ir::AddressSpace::Global;
  std::int32_t buffer = -1;
  std::int64_t offset = 0;
  std::uint32_t size = 0;
  bool isWrite = false;
  std::uint32_t instId = 0;  ///< IR instruction id of the load/store
};

/// Streaming consumer for captured memory-access events (InterpOptions::
/// traceSink). When set, every recorded event is delivered here in execution
/// order instead of accumulating in InterpResult::trace — the full trace of a
/// large NDRange never has to materialize. Events arrive exactly as they
/// would have been appended: groups sequentially, work-items of a group
/// round-robin at barrier-segment granularity.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void onAccess(const MemoryAccessEvent& ev) = 0;
};

struct InterpOptions {
  /// Error out on out-of-bounds accesses instead of reading zero / dropping.
  bool strictBounds = false;
  bool captureGlobalTrace = false;
  bool captureLocalTrace = false;
  /// Streaming trace consumer; when non-null, captured events go here and
  /// InterpResult::trace stays empty.
  TraceSink* traceSink = nullptr;
  /// Dynamic race detection: happens-before over barrier epochs with
  /// per-address last-writer/last-reader shadow state. Conflicts are reported
  /// in InterpResult::races without affecting execution.
  bool raceCheck = false;
  /// Run only the first N work-groups (profiling mode); -1 = all.
  std::int64_t groupLimit = -1;
  /// Abort with an error after this many executed instructions.
  std::uint64_t maxSteps = 1ull << 32;
};

/// One dynamically detected cross-work-item conflict (InterpOptions::
/// raceCheck). Two accesses to the same byte conflict when they come from
/// different work-items, at least one is a write, and no barrier orders them:
/// same barrier epoch within a group, or any two accesses from different
/// groups (barriers are group-local). Records are deduplicated by the
/// (instA, instB, space) triple; raceCount counts every conflicting byte.
struct RaceRecord {
  ir::AddressSpace space = ir::AddressSpace::Global;
  std::int32_t buffer = -1;   ///< buffer index (global) / local object index
  std::int64_t offset = 0;    ///< conflicting byte offset from the base
  std::uint32_t instA = 0;    ///< IR instruction id of the earlier access
  std::uint32_t instB = 0;    ///< IR instruction id of the later access
  std::uint64_t workItemA = 0;  ///< linear global work-item ids
  std::uint64_t workItemB = 0;
  bool writeA = false;
  bool writeB = false;
};

/// Per-loop dynamic statistics (indexed by Region::loopId).
struct LoopStats {
  std::uint64_t bodyExecutions = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] double avgTripCount() const {
    return entries == 0 ? 0.0 : static_cast<double>(bodyExecutions) /
                                    static_cast<double>(entries);
  }
};

struct InterpResult {
  bool ok = false;
  std::string error;
  std::vector<MemoryAccessEvent> trace;
  std::vector<LoopStats> loops;
  /// Distinct conflicting instruction pairs (InterpOptions::raceCheck),
  /// capped at 64 records; raceCount keeps the uncapped conflict tally.
  std::vector<RaceRecord> races;
  std::uint64_t raceCount = 0;
  /// One flag per global buffer: 1 iff the kernel performed an in-bounds
  /// write to it. Lets callers that keep private buffer images (sim::
  /// SimScratch) re-copy only what the execution actually mutated.
  std::vector<std::uint8_t> buffersWritten;
  std::uint64_t oobAccesses = 0;
  std::uint64_t executedInstructions = 0;
  std::uint64_t executedWorkItems = 0;
  std::uint64_t executedGroups = 0;
};

/// Executes `fn` over `range`. `buffers` are the global-memory buffers
/// referenced by buffer-kind args; they are mutated in place (kernel output).
InterpResult runKernel(const ir::Function& fn, const NdRange& range,
                       const std::vector<KernelArg>& args,
                       std::vector<std::vector<std::uint8_t>>& buffers,
                       const InterpOptions& options = {});

}  // namespace flexcl::interp
