// Runtime values for the IR interpreter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace flexcl::interp {

/// A typed pointer into one of the interpreter's memory pools. `buffer`
/// indexes the pool selected by `space` (global: kernel buffer list, local:
/// the work-group's local allocations, private: the work-item's slots).
struct Pointer {
  ir::AddressSpace space = ir::AddressSpace::Private;
  std::int32_t buffer = -1;
  std::int64_t offset = 0;

  friend bool operator==(const Pointer&, const Pointer&) = default;
};

/// Encodes a pointer into the 8 bytes a pointer-typed slot occupies in
/// memory: [ offset:46 | space:2 | buffer:16 ]. Offsets are < 2^45 and buffer
/// counts < 2^16 for every workload we run.
std::uint64_t encodePointer(const Pointer& p);
Pointer decodePointer(std::uint64_t bits);

/// Dynamically-typed runtime value. Integers are stored canonically: signed
/// types sign-extended into `i`, unsigned types zero-extended.
struct RtValue {
  enum class Kind : std::uint8_t { Empty, Int, Float, Ptr, Vec };
  Kind kind = Kind::Empty;
  std::int64_t i = 0;
  double f = 0.0;
  Pointer ptr;
  std::vector<RtValue> lanes;

  static RtValue makeInt(std::int64_t v) {
    RtValue r;
    r.kind = Kind::Int;
    r.i = v;
    return r;
  }
  static RtValue makeFloat(double v) {
    RtValue r;
    r.kind = Kind::Float;
    r.f = v;
    return r;
  }
  static RtValue makePtr(Pointer p) {
    RtValue r;
    r.kind = Kind::Ptr;
    r.ptr = p;
    return r;
  }
  static RtValue makeVec(std::vector<RtValue> ls) {
    RtValue r;
    r.kind = Kind::Vec;
    r.lanes = std::move(ls);
    return r;
  }

  [[nodiscard]] bool isInt() const { return kind == Kind::Int; }
  [[nodiscard]] bool isFloat() const { return kind == Kind::Float; }
  [[nodiscard]] bool isPtr() const { return kind == Kind::Ptr; }
  [[nodiscard]] bool isVec() const { return kind == Kind::Vec; }
  [[nodiscard]] bool truthy() const;
  [[nodiscard]] std::string str() const;
};

/// Clamps an int64 to the canonical representation of the given int type
/// (sign- or zero-extended to 64 bits).
std::int64_t normalizeInt(const ir::Type& type, std::int64_t v);

/// Serialises `value` (of IR type `type`) into `bytes` (little endian,
/// packed). `bytes` must have type.sizeInBytes() space.
void writeValue(const ir::Type& type, const RtValue& value, std::uint8_t* bytes);
/// Deserialises a value of `type` from `bytes`.
RtValue readValue(const ir::Type& type, const std::uint8_t* bytes);

}  // namespace flexcl::interp
