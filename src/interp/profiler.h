// Dynamic profiling (paper §3.2): executes a few work-groups of the kernel on
// the host interpreter to collect loop trip counts and the global memory
// access trace, used where static analysis fails.
#pragma once

#include <cstdint>
#include <vector>

#include "interp/interpreter.h"

namespace flexcl::interp {

struct ProfileOptions {
  /// Work-groups to execute. The paper profiles "only a few work-groups";
  /// 2 is enough for the kernels we model and keeps profiling sub-second.
  std::uint64_t groupsToProfile = 2;
  bool captureLocalTrace = true;
};

/// Kernel-analysis artefacts for one (kernel, NDRange) pair.
struct KernelProfile {
  /// How the profile was obtained: by running the profiling interpreter, or
  /// synthesized statically (analysis::staticprof) with an Exact verdict.
  /// Either way the contents are event-identical; provenance is recorded for
  /// observability and cache accounting only.
  enum class Provenance : std::uint8_t { Interpreted = 0, Synthesized = 1 };

  bool ok = false;
  std::string error;
  NdRange range;
  Provenance provenance = Provenance::Interpreted;
  /// Average body iterations per loop entry, by Region::loopId. Loops that
  /// never executed report 0.
  std::vector<double> loopTripCounts;
  /// Global/constant memory accesses of the profiled work-groups, in
  /// execution order (round-robin over the work-items of each group).
  std::vector<MemoryAccessEvent> globalTrace;
  /// Local-memory accesses (used for inter-work-item dependence detection).
  std::vector<MemoryAccessEvent> localTrace;
  std::uint64_t profiledGroups = 0;
  std::uint64_t profiledWorkItems = 0;
  std::uint64_t oobAccesses = 0;

  /// Global-memory accesses of one work-item, program order.
  [[nodiscard]] std::vector<MemoryAccessEvent> traceOfWorkItem(
      std::uint64_t workItem) const;
  /// Average number of global accesses per profiled work-item.
  [[nodiscard]] double avgGlobalAccessesPerWorkItem() const;
};

/// Runs the profiling interpreter. Buffers are copied internally so profiling
/// does not disturb the caller's data.
KernelProfile profileKernel(const ir::Function& fn, const NdRange& range,
                            const std::vector<KernelArg>& args,
                            const std::vector<std::vector<std::uint8_t>>& buffers,
                            const ProfileOptions& options = {});

}  // namespace flexcl::interp
