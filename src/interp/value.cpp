#include "interp/value.h"

#include <cassert>
#include <cstring>
#include <sstream>

namespace flexcl::interp {

std::uint64_t encodePointer(const Pointer& p) {
  const auto offset = static_cast<std::uint64_t>(p.offset) & ((1ull << 46) - 1);
  const auto space = static_cast<std::uint64_t>(p.space) & 0x3;
  const auto buffer = static_cast<std::uint64_t>(static_cast<std::uint16_t>(p.buffer));
  return (offset << 18) | (space << 16) | buffer;
}

Pointer decodePointer(std::uint64_t bits) {
  Pointer p;
  p.buffer = static_cast<std::int32_t>(static_cast<std::int16_t>(bits & 0xffff));
  p.space = static_cast<ir::AddressSpace>((bits >> 16) & 0x3);
  p.offset = static_cast<std::int64_t>(bits >> 18);
  return p;
}

bool RtValue::truthy() const {
  switch (kind) {
    case Kind::Int: return i != 0;
    case Kind::Float: return f != 0.0;
    case Kind::Ptr: return ptr.buffer >= 0;
    default: return false;
  }
}

std::string RtValue::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::Empty: os << "<empty>"; break;
    case Kind::Int: os << i; break;
    case Kind::Float: os << f; break;
    case Kind::Ptr:
      os << '(' << ir::addressSpaceName(ptr.space) << " #" << ptr.buffer << " +"
         << ptr.offset << ')';
      break;
    case Kind::Vec: {
      os << '<';
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        if (l) os << ", ";
        os << lanes[l].str();
      }
      os << '>';
      break;
    }
  }
  return os.str();
}

std::int64_t normalizeInt(const ir::Type& type, std::int64_t v) {
  if (type.isBool()) return v != 0 ? 1 : 0;
  const unsigned bits = type.bits();
  if (bits >= 64) return v;
  const std::uint64_t mask = (1ull << bits) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
  if (type.isSigned() && (u & (1ull << (bits - 1)))) {
    u |= ~mask;  // sign extend
  }
  return static_cast<std::int64_t>(u);
}

void writeValue(const ir::Type& type, const RtValue& value, std::uint8_t* bytes) {
  switch (type.kind()) {
    case ir::Type::Kind::Bool: {
      bytes[0] = value.i != 0 ? 1 : 0;
      return;
    }
    case ir::Type::Kind::Int: {
      const std::uint64_t u = static_cast<std::uint64_t>(value.i);
      std::memcpy(bytes, &u, type.bits() / 8);
      return;
    }
    case ir::Type::Kind::Float: {
      if (type.bits() == 32) {
        const float fv = static_cast<float>(value.f);
        std::memcpy(bytes, &fv, 4);
      } else {
        std::memcpy(bytes, &value.f, 8);
      }
      return;
    }
    case ir::Type::Kind::Pointer: {
      const std::uint64_t bitsEnc = encodePointer(value.ptr);
      std::memcpy(bytes, &bitsEnc, 8);
      return;
    }
    case ir::Type::Kind::Vector: {
      const std::uint64_t elemSize = type.element()->sizeInBytes();
      for (std::uint64_t l = 0; l < type.count(); ++l) {
        const RtValue& lane =
            l < value.lanes.size() ? value.lanes[l] : RtValue{};
        writeValue(*type.element(), lane, bytes + l * elemSize);
      }
      return;
    }
    default:
      assert(false && "cannot write aggregate value");
  }
}

RtValue readValue(const ir::Type& type, const std::uint8_t* bytes) {
  switch (type.kind()) {
    case ir::Type::Kind::Bool:
      return RtValue::makeInt(bytes[0] != 0 ? 1 : 0);
    case ir::Type::Kind::Int: {
      std::uint64_t u = 0;
      std::memcpy(&u, bytes, type.bits() / 8);
      return RtValue::makeInt(normalizeInt(type, static_cast<std::int64_t>(u)));
    }
    case ir::Type::Kind::Float: {
      if (type.bits() == 32) {
        float fv = 0;
        std::memcpy(&fv, bytes, 4);
        return RtValue::makeFloat(static_cast<double>(fv));
      }
      double dv = 0;
      std::memcpy(&dv, bytes, 8);
      return RtValue::makeFloat(dv);
    }
    case ir::Type::Kind::Pointer: {
      std::uint64_t bits = 0;
      std::memcpy(&bits, bytes, 8);
      return RtValue::makePtr(decodePointer(bits));
    }
    case ir::Type::Kind::Vector: {
      std::vector<RtValue> lanes;
      lanes.reserve(type.count());
      const std::uint64_t elemSize = type.element()->sizeInBytes();
      for (std::uint64_t l = 0; l < type.count(); ++l) {
        lanes.push_back(readValue(*type.element(), bytes + l * elemSize));
      }
      return RtValue::makeVec(std::move(lanes));
    }
    default:
      assert(false && "cannot read aggregate value");
      return {};
  }
}

}  // namespace flexcl::interp
