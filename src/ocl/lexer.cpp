#include "ocl/lexer.h"

#include <cctype>
#include <unordered_map>

namespace flexcl::ocl {
namespace {

const std::unordered_map<std::string_view, TokenKind>& keywordMap() {
  static const std::unordered_map<std::string_view, TokenKind> map = {
      {"__kernel", TokenKind::KwKernel},   {"kernel", TokenKind::KwKernel},
      {"__global", TokenKind::KwGlobal},   {"global", TokenKind::KwGlobal},
      {"__local", TokenKind::KwLocal},     {"local", TokenKind::KwLocal},
      {"__constant", TokenKind::KwConstantAS}, {"constant", TokenKind::KwConstantAS},
      {"__private", TokenKind::KwPrivate}, {"private", TokenKind::KwPrivate},
      {"if", TokenKind::KwIf},             {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},           {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},             {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},       {"continue", TokenKind::KwContinue},
      {"struct", TokenKind::KwStruct},     {"typedef", TokenKind::KwTypedef},
      {"const", TokenKind::KwConst},       {"volatile", TokenKind::KwVolatile},
      {"restrict", TokenKind::KwRestrict}, {"__restrict", TokenKind::KwRestrict},
      {"unsigned", TokenKind::KwUnsigned}, {"signed", TokenKind::KwSigned},
      {"void", TokenKind::KwVoid},         {"bool", TokenKind::KwBool},
      {"char", TokenKind::KwChar},         {"short", TokenKind::KwShort},
      {"int", TokenKind::KwInt},           {"long", TokenKind::KwLong},
      {"float", TokenKind::KwFloat},       {"double", TokenKind::KwDouble},
      {"sizeof", TokenKind::KwSizeof},     {"__attribute__", TokenKind::KwAttribute},
      {"true", TokenKind::KwTrue},         {"false", TokenKind::KwFalse},
      {"switch", TokenKind::KwSwitch},     {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault},
  };
  return map;
}

bool isIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool isIdentCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Lexer::Lexer(const SourceManager& sm, DiagnosticEngine& diags)
    : sm_(sm), diags_(diags), text_(sm.text()) {}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> tokens;
  for (;;) {
    Token t = lexToken();
    const bool done = t.is(TokenKind::EndOfFile);
    tokens.push_back(std::move(t));
    if (done) break;
  }
  return tokens;
}

char Lexer::peek(std::uint32_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() { return text_[pos_++]; }

bool Lexer::match(char expected) {
  if (atEnd() || text_[pos_] != expected) return false;
  ++pos_;
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    if (atEnd()) return;
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++pos_;
    } else if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n') ++pos_;
    } else if (c == '/' && peek(1) == '*') {
      pos_ += 2;
      while (!atEnd() && !(peek() == '*' && peek(1) == '/')) ++pos_;
      if (!atEnd()) pos_ += 2;
    } else {
      return;
    }
  }
}

Token Lexer::makeToken(TokenKind kind, std::uint32_t beginOffset) {
  Token t;
  t.kind = kind;
  t.location = sm_.locate(beginOffset);
  t.text = std::string(text_.substr(beginOffset, pos_ - beginOffset));
  return t;
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  tokenBegin_ = pos_;
  if (atEnd()) return makeToken(TokenKind::EndOfFile, pos_);

  const char c = peek();
  if (isIdentStart(c)) return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
    return lexNumber();
  }
  if (c == '\'') return lexCharLiteral();
  if (c == '"') return lexStringLiteral();

  advance();
  switch (c) {
    case '(': return makeToken(TokenKind::LParen, tokenBegin_);
    case ')': return makeToken(TokenKind::RParen, tokenBegin_);
    case '{': return makeToken(TokenKind::LBrace, tokenBegin_);
    case '}': return makeToken(TokenKind::RBrace, tokenBegin_);
    case '[': return makeToken(TokenKind::LBracket, tokenBegin_);
    case ']': return makeToken(TokenKind::RBracket, tokenBegin_);
    case ',': return makeToken(TokenKind::Comma, tokenBegin_);
    case ';': return makeToken(TokenKind::Semicolon, tokenBegin_);
    case ':': return makeToken(TokenKind::Colon, tokenBegin_);
    case '?': return makeToken(TokenKind::Question, tokenBegin_);
    case '~': return makeToken(TokenKind::Tilde, tokenBegin_);
    case '.':
      if (peek() == '.' && peek(1) == '.') {
        pos_ += 2;
        return makeToken(TokenKind::Ellipsis, tokenBegin_);
      }
      return makeToken(TokenKind::Dot, tokenBegin_);
    case '+':
      if (match('+')) return makeToken(TokenKind::PlusPlus, tokenBegin_);
      if (match('=')) return makeToken(TokenKind::PlusEqual, tokenBegin_);
      return makeToken(TokenKind::Plus, tokenBegin_);
    case '-':
      if (match('-')) return makeToken(TokenKind::MinusMinus, tokenBegin_);
      if (match('=')) return makeToken(TokenKind::MinusEqual, tokenBegin_);
      if (match('>')) return makeToken(TokenKind::Arrow, tokenBegin_);
      return makeToken(TokenKind::Minus, tokenBegin_);
    case '*':
      if (match('=')) return makeToken(TokenKind::StarEqual, tokenBegin_);
      return makeToken(TokenKind::Star, tokenBegin_);
    case '/':
      if (match('=')) return makeToken(TokenKind::SlashEqual, tokenBegin_);
      return makeToken(TokenKind::Slash, tokenBegin_);
    case '%':
      if (match('=')) return makeToken(TokenKind::PercentEqual, tokenBegin_);
      return makeToken(TokenKind::Percent, tokenBegin_);
    case '&':
      if (match('&')) return makeToken(TokenKind::AmpAmp, tokenBegin_);
      if (match('=')) return makeToken(TokenKind::AmpEqual, tokenBegin_);
      return makeToken(TokenKind::Amp, tokenBegin_);
    case '|':
      if (match('|')) return makeToken(TokenKind::PipePipe, tokenBegin_);
      if (match('=')) return makeToken(TokenKind::PipeEqual, tokenBegin_);
      return makeToken(TokenKind::Pipe, tokenBegin_);
    case '^':
      if (match('=')) return makeToken(TokenKind::CaretEqual, tokenBegin_);
      return makeToken(TokenKind::Caret, tokenBegin_);
    case '!':
      if (match('=')) return makeToken(TokenKind::ExclaimEqual, tokenBegin_);
      return makeToken(TokenKind::Exclaim, tokenBegin_);
    case '=':
      if (match('=')) return makeToken(TokenKind::EqualEqual, tokenBegin_);
      return makeToken(TokenKind::Equal, tokenBegin_);
    case '<':
      if (match('<')) {
        if (match('=')) return makeToken(TokenKind::LessLessEqual, tokenBegin_);
        return makeToken(TokenKind::LessLess, tokenBegin_);
      }
      if (match('=')) return makeToken(TokenKind::LessEqual, tokenBegin_);
      return makeToken(TokenKind::Less, tokenBegin_);
    case '>':
      if (match('>')) {
        if (match('=')) return makeToken(TokenKind::GreaterGreaterEqual, tokenBegin_);
        return makeToken(TokenKind::GreaterGreater, tokenBegin_);
      }
      if (match('=')) return makeToken(TokenKind::GreaterEqual, tokenBegin_);
      return makeToken(TokenKind::Greater, tokenBegin_);
    default:
      diags_.error(sm_.locate(tokenBegin_),
                   std::string("unexpected character '") + c + "'");
      return lexToken();
  }
}

Token Lexer::lexIdentifierOrKeyword() {
  while (!atEnd() && isIdentCont(peek())) ++pos_;
  Token t = makeToken(TokenKind::Identifier, tokenBegin_);
  auto it = keywordMap().find(t.text);
  if (it != keywordMap().end()) t.kind = it->second;
  return t;
}

Token Lexer::lexNumber() {
  bool isFloat = false;
  bool isHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    pos_ += 2;
    isHex = true;
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek()))) ++pos_;
  } else {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      isFloat = true;
      ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      isFloat = true;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
  }
  // Suffixes: f/F force float; u/U/l/L are integer suffixes.
  if (!isHex && (peek() == 'f' || peek() == 'F')) {
    isFloat = true;
    ++pos_;
  } else {
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') ++pos_;
  }
  return makeToken(isFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                   tokenBegin_);
}

Token Lexer::lexCharLiteral() {
  advance();  // opening quote
  while (!atEnd() && peek() != '\'') {
    if (peek() == '\\') ++pos_;
    ++pos_;
  }
  if (atEnd()) {
    diags_.error(sm_.locate(tokenBegin_), "unterminated character literal");
  } else {
    advance();
  }
  return makeToken(TokenKind::CharLiteral, tokenBegin_);
}

Token Lexer::lexStringLiteral() {
  advance();  // opening quote
  while (!atEnd() && peek() != '"') {
    if (peek() == '\\') ++pos_;
    ++pos_;
  }
  if (atEnd()) {
    diags_.error(sm_.locate(tokenBegin_), "unterminated string literal");
  } else {
    advance();
  }
  return makeToken(TokenKind::StringLiteral, tokenBegin_);
}

}  // namespace flexcl::ocl
