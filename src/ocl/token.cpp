#include "ocl/token.h"

namespace flexcl::ocl {

std::string_view tokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::EndOfFile: return "end of file";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::CharLiteral: return "char literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::KwKernel: return "'__kernel'";
    case TokenKind::KwGlobal: return "'__global'";
    case TokenKind::KwLocal: return "'__local'";
    case TokenKind::KwConstantAS: return "'__constant'";
    case TokenKind::KwPrivate: return "'__private'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwDo: return "'do'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::KwStruct: return "'struct'";
    case TokenKind::KwTypedef: return "'typedef'";
    case TokenKind::KwConst: return "'const'";
    case TokenKind::KwVolatile: return "'volatile'";
    case TokenKind::KwRestrict: return "'restrict'";
    case TokenKind::KwUnsigned: return "'unsigned'";
    case TokenKind::KwSigned: return "'signed'";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwBool: return "'bool'";
    case TokenKind::KwChar: return "'char'";
    case TokenKind::KwShort: return "'short'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwLong: return "'long'";
    case TokenKind::KwFloat: return "'float'";
    case TokenKind::KwDouble: return "'double'";
    case TokenKind::KwSizeof: return "'sizeof'";
    case TokenKind::KwAttribute: return "'__attribute__'";
    case TokenKind::KwTrue: return "'true'";
    case TokenKind::KwFalse: return "'false'";
    case TokenKind::KwSwitch: return "'switch'";
    case TokenKind::KwCase: return "'case'";
    case TokenKind::KwDefault: return "'default'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::Question: return "'?'";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Arrow: return "'->'";
    case TokenKind::Ellipsis: return "'...'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Exclaim: return "'!'";
    case TokenKind::Less: return "'<'";
    case TokenKind::Greater: return "'>'";
    case TokenKind::LessLess: return "'<<'";
    case TokenKind::GreaterGreater: return "'>>'";
    case TokenKind::LessEqual: return "'<='";
    case TokenKind::GreaterEqual: return "'>='";
    case TokenKind::EqualEqual: return "'=='";
    case TokenKind::ExclaimEqual: return "'!='";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::Equal: return "'='";
    case TokenKind::PlusEqual: return "'+='";
    case TokenKind::MinusEqual: return "'-='";
    case TokenKind::StarEqual: return "'*='";
    case TokenKind::SlashEqual: return "'/='";
    case TokenKind::PercentEqual: return "'%='";
    case TokenKind::AmpEqual: return "'&='";
    case TokenKind::PipeEqual: return "'|='";
    case TokenKind::CaretEqual: return "'^='";
    case TokenKind::LessLessEqual: return "'<<='";
    case TokenKind::GreaterGreaterEqual: return "'>>='";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
  }
  return "<unknown token>";
}

bool Token::isTypeKeyword() const {
  switch (kind) {
    case TokenKind::KwVoid:
    case TokenKind::KwBool:
    case TokenKind::KwChar:
    case TokenKind::KwShort:
    case TokenKind::KwInt:
    case TokenKind::KwLong:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwUnsigned:
    case TokenKind::KwSigned:
    case TokenKind::KwStruct:
      return true;
    default:
      return false;
  }
}

}  // namespace flexcl::ocl
