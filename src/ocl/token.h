// Token definitions for the OpenCL C frontend.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.h"

namespace flexcl::ocl {

enum class TokenKind : std::uint8_t {
  EndOfFile,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwKernel, KwGlobal, KwLocal, KwConstantAS, KwPrivate,
  KwIf, KwElse, KwFor, KwWhile, KwDo, KwReturn, KwBreak, KwContinue,
  KwStruct, KwTypedef, KwConst, KwVolatile, KwRestrict, KwUnsigned, KwSigned,
  KwVoid, KwBool, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
  KwSizeof, KwAttribute, KwTrue, KwFalse, KwSwitch, KwCase, KwDefault,

  // Punctuation / operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Colon, Question, Dot, Arrow, Ellipsis,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Exclaim,
  Less, Greater, LessLess, GreaterGreater,
  LessEqual, GreaterEqual, EqualEqual, ExclaimEqual,
  AmpAmp, PipePipe,
  Equal, PlusEqual, MinusEqual, StarEqual, SlashEqual, PercentEqual,
  AmpEqual, PipeEqual, CaretEqual, LessLessEqual, GreaterGreaterEqual,
  PlusPlus, MinusMinus,
};

/// Returns a human-readable spelling of a token kind (for diagnostics).
std::string_view tokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  SourceLocation location;
  std::string text;  ///< Spelling: identifier name or literal text.

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool isTypeKeyword() const;
};

}  // namespace flexcl::ocl
