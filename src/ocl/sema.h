// Semantic analysis for the OpenCL C subset: name resolution, type checking,
// implicit conversions, builtin resolution, kernel-signature validation.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "ocl/ast.h"
#include "support/diagnostics.h"

namespace flexcl::ocl {

/// Runs over a parsed Program and annotates the AST in place:
///  - every Expr gets a type and lvalue-ness,
///  - DeclRefExpr::decl, CallExpr::builtin / ::function, MemberExpr indices,
///  - implicit CastExpr nodes are inserted where C's usual conversions apply.
class Sema {
 public:
  explicit Sema(DiagnosticEngine& diags) : diags_(diags) {}

  /// Returns true when the program type-checked without errors.
  bool check(Program& program);

 private:
  // Scope management: a simple spaghetti stack of name -> VarDecl maps.
  void pushScope();
  void popScope();
  void declare(VarDecl& var);
  const VarDecl* lookup(const std::string& name) const;

  void checkFunction(FunctionDecl& fn);
  void checkStmt(Stmt& stmt);
  void checkVarDecl(VarDecl& var);

  /// Type-checks an expression tree; returns its type (also stored in the
  /// node). `owner` is the owning pointer so implicit casts can be inserted.
  const ir::Type* checkExpr(ExprPtr& owner);

  const ir::Type* checkBinary(ExprPtr& owner);
  const ir::Type* checkUnary(ExprPtr& owner);
  const ir::Type* checkAssign(ExprPtr& owner);
  const ir::Type* checkCall(ExprPtr& owner);
  const ir::Type* checkIndex(ExprPtr& owner);
  const ir::Type* checkMember(ExprPtr& owner);
  const ir::Type* checkConditional(ExprPtr& owner);

  /// Inserts an implicit cast to `target` if needed; reports an error when the
  /// conversion is not allowed.
  void convertTo(ExprPtr& expr, const ir::Type* target);
  /// Applies the usual arithmetic conversions to a pair of operands and
  /// returns the common type (handles vector/scalar splats).
  const ir::Type* usualConversions(ExprPtr& lhs, ExprPtr& rhs);
  const ir::Type* commonArithmeticType(const ir::Type* a, const ir::Type* b);
  /// Condition contexts: any scalar converts to bool.
  void convertToCondition(ExprPtr& expr);

  DiagnosticEngine& diags_;
  Program* program_ = nullptr;
  ir::TypeContext* types_ = nullptr;
  FunctionDecl* currentFunction_ = nullptr;
  std::vector<std::unordered_map<std::string, VarDecl*>> scopes_;
};

/// Maps a function name to a Builtin; Builtin::None when unknown.
Builtin lookupBuiltin(const std::string& name);

/// True for builtins that take/return floating-point values.
bool isFloatBuiltin(Builtin b);

}  // namespace flexcl::ocl
