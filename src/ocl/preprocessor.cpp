#include "ocl/preprocessor.h"

#include <cctype>
#include <sstream>
#include <vector>

#include "support/source_manager.h"

namespace flexcl::ocl {
namespace {

bool isIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool isIdentCont(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

std::string stripComments(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  std::size_t i = 0;
  while (i < in.size()) {
    if (in[i] == '/' && i + 1 < in.size() && in[i + 1] == '/') {
      while (i < in.size() && in[i] != '\n') ++i;
    } else if (in[i] == '/' && i + 1 < in.size() && in[i + 1] == '*') {
      i += 2;
      while (i + 1 < in.size() && !(in[i] == '*' && in[i + 1] == '/')) {
        if (in[i] == '\n') out.push_back('\n');  // keep line numbering intact
        ++i;
      }
      i = i + 1 < in.size() ? i + 2 : in.size();
      out.push_back(' ');
    } else {
      out.push_back(in[i++]);
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

/// Substitutes object-like macros in one line of code. Re-scans the result so
/// macros may expand to other macros, with a depth guard against cycles.
std::string expandMacros(const std::string& line,
                         const std::unordered_map<std::string, std::string>& macros,
                         int depth = 0) {
  if (depth > 16 || macros.empty()) return line;
  std::string out;
  out.reserve(line.size());
  bool changed = false;
  std::size_t i = 0;
  while (i < line.size()) {
    if (isIdentStart(line[i])) {
      std::size_t b = i;
      while (i < line.size() && isIdentCont(line[i])) ++i;
      std::string ident = line.substr(b, i - b);
      auto it = macros.find(ident);
      if (it != macros.end()) {
        out += it->second;
        changed = true;
      } else {
        out += ident;
      }
    } else {
      out.push_back(line[i++]);
    }
  }
  return changed ? expandMacros(out, macros, depth + 1) : out;
}

}  // namespace

std::string preprocess(const std::string& source, DiagnosticEngine& diags,
                       const PreprocessorOptions& options) {
  const std::string noComments = stripComments(source);
  SourceManager sm(noComments);

  std::unordered_map<std::string, std::string> macros = options.defines;
  // Standard OpenCL fence-flag macros, overridable by user defines.
  macros.try_emplace("CLK_LOCAL_MEM_FENCE", "1");
  macros.try_emplace("CLK_GLOBAL_MEM_FENCE", "2");
  // Conditional-inclusion stack: each entry is "currently emitting?".
  std::vector<bool> condStack;
  auto emitting = [&] {
    for (bool b : condStack)
      if (!b) return false;
    return true;
  };

  std::ostringstream out;
  std::istringstream in(noComments);
  std::string line;
  std::uint32_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string trimmed = trim(line);
    if (!trimmed.empty() && trimmed[0] == '#') {
      std::istringstream dir(trimmed.substr(1));
      std::string word;
      dir >> word;
      const SourceLocation loc{0, lineNo, 1};
      if (word == "define") {
        std::string name;
        dir >> name;
        if (name.empty() || !isIdentStart(name[0])) {
          diags.error(loc, "#define expects a macro name");
        } else if (name.find('(') != std::string::npos) {
          diags.error(loc, "function-like macros are not supported: " + name);
        } else if (emitting()) {
          std::string rest;
          std::getline(dir, rest);
          macros[name] = trim(rest);
        }
      } else if (word == "undef") {
        std::string name;
        dir >> name;
        if (emitting()) macros.erase(name);
      } else if (word == "ifdef" || word == "ifndef") {
        std::string name;
        dir >> name;
        const bool defined = macros.count(name) != 0;
        condStack.push_back(word == "ifdef" ? defined : !defined);
      } else if (word == "else") {
        if (condStack.empty()) {
          diags.error(loc, "#else without #ifdef");
        } else {
          condStack.back() = !condStack.back();
        }
      } else if (word == "endif") {
        if (condStack.empty()) {
          diags.error(loc, "#endif without #ifdef");
        } else {
          condStack.pop_back();
        }
      } else if (word == "pragma") {
        std::string what;
        dir >> what;
        if (what == "unroll" && emitting()) {
          std::string factor;
          dir >> factor;
          if (factor.empty()) factor = "0";  // 0 = full unroll request
          factor = expandMacros(factor, macros);
          out << "__attribute__((opencl_unroll_hint(" << factor << ")))";
        } else if (emitting()) {
          diags.warning(loc, "ignoring unsupported #pragma " + what);
        }
      } else if (word == "include") {
        diags.warning(loc, "#include is not supported and was ignored");
      } else {
        diags.error(loc, "unknown preprocessor directive #" + word);
      }
      out << '\n';  // keep line numbering aligned with the original
      continue;
    }
    out << (emitting() ? expandMacros(line, macros) : std::string()) << '\n';
  }
  if (!condStack.empty()) {
    diags.error(SourceLocation{0, lineNo, 1}, "unterminated #ifdef block");
  }
  return out.str();
}

}  // namespace flexcl::ocl
