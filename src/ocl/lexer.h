// Hand-written lexer for the OpenCL C subset.
#pragma once

#include <vector>

#include "ocl/token.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace flexcl::ocl {

/// Tokenises a (preprocessed) source buffer. Comments are expected to have
/// been stripped by the preprocessor; the lexer still tolerates them so it
/// can be used standalone in tests.
class Lexer {
 public:
  Lexer(const SourceManager& sm, DiagnosticEngine& diags);

  /// Lexes the whole buffer including a trailing EndOfFile token.
  std::vector<Token> lexAll();

 private:
  Token lexToken();
  Token makeToken(TokenKind kind, std::uint32_t beginOffset);
  void skipWhitespaceAndComments();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();

  [[nodiscard]] char peek(std::uint32_t ahead = 0) const;
  char advance();
  bool match(char expected);
  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }

  const SourceManager& sm_;
  DiagnosticEngine& diags_;
  std::string_view text_;
  std::uint32_t pos_ = 0;
  std::uint32_t tokenBegin_ = 0;
};

}  // namespace flexcl::ocl
