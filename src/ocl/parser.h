// Recursive-descent parser for the OpenCL C subset.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ocl/ast.h"
#include "ocl/token.h"
#include "support/diagnostics.h"

namespace flexcl::ocl {

/// Parses a token stream into a Program. Type names (builtin scalar + vector
/// names, typedefs, struct tags) are tracked so declarations can be told
/// apart from expressions at statement start.
class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticEngine& diags);

  /// Parses the whole translation unit. Returns a Program even on error;
  /// check diags.hasErrors().
  std::unique_ptr<Program> parseProgram();

 private:
  // --- token stream helpers -------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind kind) const { return peek().is(kind); }
  bool accept(TokenKind kind);
  bool expect(TokenKind kind, const char* context);
  void synchronizeToSemicolon();

  // --- types ----------------------------------------------------------------
  /// True when the upcoming tokens start a type (keyword, typedef name,
  /// struct tag, or address-space qualifier).
  [[nodiscard]] bool startsType(std::size_t ahead = 0) const;
  struct ParsedQuals {
    ir::AddressSpace addressSpace = ir::AddressSpace::Private;
    bool hasAddressSpace = false;
    bool isConst = false;
  };
  ParsedQuals parseQualifiers();
  /// Parses a type specifier (without declarator): scalar/vector/struct name,
  /// plus trailing '*' pointers.
  const ir::Type* parseTypeSpecifier(const ParsedQuals& quals);
  const ir::Type* parseBaseType();

  // --- declarations ----------------------------------------------------------
  void parseTopLevel(Program& program);
  void parseStructDefinition(bool isTypedef);
  std::unique_ptr<FunctionDecl> parseFunction(bool isKernel,
                                              std::array<std::uint32_t, 3> wgSize);
  std::unique_ptr<VarDecl> parseParam();
  std::unique_ptr<DeclStmt> parseDeclStmt();
  /// Parses array extents on a declarator and wraps elementType accordingly.
  const ir::Type* parseArrayDimensions(const ir::Type* elementType);

  /// Parses __attribute__((...)) lists; returns any unroll hint found and
  /// fills wgSize for reqd_work_group_size.
  int parseAttributes(std::array<std::uint32_t, 3>* wgSize);

  // --- statements ------------------------------------------------------------
  StmtPtr parseStatement();
  StmtPtr parseCompound();
  StmtPtr parseIf();
  StmtPtr parseFor(int unrollHint);
  StmtPtr parseWhile(int unrollHint);
  StmtPtr parseDo();

  // --- expressions -----------------------------------------------------------
  ExprPtr parseExpression();        // assignment level (lowest)
  ExprPtr parseAssignment();
  ExprPtr parseConditional();
  ExprPtr parseBinary(int minPrecedence);
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr parseIntLiteral();
  ExprPtr parseFloatLiteral();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  DiagnosticEngine& diags_;
  std::unique_ptr<Program> program_;
  /// typedef name -> type
  std::unordered_map<std::string, const ir::Type*> typedefs_;
};

/// Convenience: preprocess + lex + parse + sema in one call. Returns nullptr
/// when any stage reported errors.
std::unique_ptr<Program> parseOpenCl(
    const std::string& source, DiagnosticEngine& diags,
    const std::unordered_map<std::string, std::string>& defines = {});

}  // namespace flexcl::ocl
