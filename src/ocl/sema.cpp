#include "ocl/sema.h"

#include <cassert>

namespace flexcl::ocl {
namespace {

struct BuiltinEntry {
  const char* name;
  Builtin builtin;
};

constexpr BuiltinEntry kBuiltins[] = {
    {"get_global_id", Builtin::GetGlobalId},
    {"get_local_id", Builtin::GetLocalId},
    {"get_group_id", Builtin::GetGroupId},
    {"get_global_size", Builtin::GetGlobalSize},
    {"get_local_size", Builtin::GetLocalSize},
    {"get_num_groups", Builtin::GetNumGroups},
    {"get_work_dim", Builtin::GetWorkDim},
    {"barrier", Builtin::Barrier},
    {"mem_fence", Builtin::MemFence},
    {"sqrt", Builtin::Sqrt},
    {"native_sqrt", Builtin::Sqrt},
    {"half_sqrt", Builtin::Sqrt},
    {"rsqrt", Builtin::Rsqrt},
    {"native_rsqrt", Builtin::Rsqrt},
    {"exp", Builtin::Exp},
    {"native_exp", Builtin::Exp},
    {"exp2", Builtin::Exp2},
    {"log", Builtin::Log},
    {"native_log", Builtin::Log},
    {"log2", Builtin::Log2},
    {"pow", Builtin::Pow},
    {"powf", Builtin::Pow},
    {"sin", Builtin::Sin},
    {"native_sin", Builtin::Sin},
    {"cos", Builtin::Cos},
    {"native_cos", Builtin::Cos},
    {"tan", Builtin::Tan},
    {"fabs", Builtin::Fabs},
    {"floor", Builtin::Floor},
    {"ceil", Builtin::Ceil},
    {"round", Builtin::Round},
    {"fmax", Builtin::Fmax},
    {"fmin", Builtin::Fmin},
    {"fmod", Builtin::Fmod},
    {"mad", Builtin::Mad},
    {"fma", Builtin::Fma},
    {"abs", Builtin::Abs},
    {"max", Builtin::Max},
    {"min", Builtin::Min},
    {"clamp", Builtin::Clamp},
    {"select", Builtin::Select},
    {"hypot", Builtin::Hypot},
    {"atan", Builtin::Atan},
    {"atan2", Builtin::Atan2},
};

int vectorLaneIndex(const std::string& member) {
  if (member.size() == 1) {
    switch (member[0]) {
      case 'x': return 0;
      case 'y': return 1;
      case 'z': return 2;
      case 'w': return 3;
      default: return -1;
    }
  }
  if (member.size() == 2 && member[0] == 's') {
    const char c = member[1];
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Builtin lookupBuiltin(const std::string& name) {
  for (const BuiltinEntry& e : kBuiltins) {
    if (name == e.name) return e.builtin;
  }
  return Builtin::None;
}

bool isFloatBuiltin(Builtin b) {
  switch (b) {
    case Builtin::Abs:
    case Builtin::Max:
    case Builtin::Min:
    case Builtin::Clamp:
    case Builtin::Select:
    case Builtin::GetGlobalId:
    case Builtin::GetLocalId:
    case Builtin::GetGroupId:
    case Builtin::GetGlobalSize:
    case Builtin::GetLocalSize:
    case Builtin::GetNumGroups:
    case Builtin::GetWorkDim:
    case Builtin::Barrier:
    case Builtin::MemFence:
    case Builtin::None:
      return false;
    default:
      return true;
  }
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

void Sema::pushScope() { scopes_.emplace_back(); }
void Sema::popScope() { scopes_.pop_back(); }

void Sema::declare(VarDecl& var) {
  assert(!scopes_.empty());
  auto& scope = scopes_.back();
  if (scope.count(var.name)) {
    diags_.error(var.location, "redefinition of '" + var.name + "'");
    return;
  }
  scope[var.name] = &var;
}

const VarDecl* Sema::lookup(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) return found->second;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

bool Sema::check(Program& program) {
  program_ = &program;
  types_ = program.types.get();
  for (auto& fn : program.functions) checkFunction(*fn);
  return !diags_.hasErrors();
}

void Sema::checkFunction(FunctionDecl& fn) {
  currentFunction_ = &fn;
  pushScope();
  for (auto& param : fn.params) {
    if (fn.isKernel && param->type->isPointer() &&
        param->type->addressSpace() == ir::AddressSpace::Private) {
      diags_.error(param->location,
                   "kernel pointer parameter '" + param->name +
                       "' must be __global, __local or __constant");
    }
    declare(*param);
  }
  if (fn.body) checkStmt(*fn.body);
  popScope();
  currentFunction_ = nullptr;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Sema::checkStmt(Stmt& stmt) {
  switch (stmt.kind()) {
    case Stmt::Kind::Compound: {
      auto& c = static_cast<CompoundStmt&>(stmt);
      pushScope();
      for (auto& s : c.body) checkStmt(*s);
      popScope();
      break;
    }
    case Stmt::Kind::Decl: {
      auto& d = static_cast<DeclStmt&>(stmt);
      for (auto& var : d.decls) checkVarDecl(*var);
      break;
    }
    case Stmt::Kind::Expr: {
      auto& e = static_cast<ExprStmt&>(stmt);
      if (e.expr) checkExpr(e.expr);
      break;
    }
    case Stmt::Kind::If: {
      auto& s = static_cast<IfStmt&>(stmt);
      checkExpr(s.cond);
      convertToCondition(s.cond);
      if (s.thenStmt) checkStmt(*s.thenStmt);
      if (s.elseStmt) checkStmt(*s.elseStmt);
      break;
    }
    case Stmt::Kind::For: {
      auto& s = static_cast<ForStmt&>(stmt);
      pushScope();
      if (s.init) checkStmt(*s.init);
      if (s.cond) {
        checkExpr(s.cond);
        convertToCondition(s.cond);
      }
      if (s.step) checkExpr(s.step);
      if (s.body) checkStmt(*s.body);
      popScope();
      break;
    }
    case Stmt::Kind::While: {
      auto& s = static_cast<WhileStmt&>(stmt);
      checkExpr(s.cond);
      convertToCondition(s.cond);
      if (s.body) checkStmt(*s.body);
      break;
    }
    case Stmt::Kind::Do: {
      auto& s = static_cast<DoStmt&>(stmt);
      if (s.body) checkStmt(*s.body);
      checkExpr(s.cond);
      convertToCondition(s.cond);
      break;
    }
    case Stmt::Kind::Return: {
      auto& s = static_cast<ReturnStmt&>(stmt);
      const ir::Type* expected = currentFunction_->returnType;
      if (s.value) {
        checkExpr(s.value);
        if (expected->isVoid()) {
          diags_.error(s.location, "void function cannot return a value");
        } else {
          convertTo(s.value, expected);
        }
      } else if (!expected->isVoid()) {
        diags_.error(s.location, "non-void function must return a value");
      }
      break;
    }
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      break;
  }
}

void Sema::checkVarDecl(VarDecl& var) {
  if (var.type->isVoid()) {
    diags_.error(var.location, "variable '" + var.name + "' has void type");
    var.type = types_->i32();
  }
  if (var.init) {
    checkExpr(var.init);
    if (var.type->isArray() || var.type->isStruct()) {
      diags_.error(var.location, "aggregate initialisers are not supported");
      var.init.reset();
    } else {
      convertTo(var.init, var.type);
    }
  }
  declare(var);
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

const ir::Type* Sema::commonArithmeticType(const ir::Type* a, const ir::Type* b) {
  // Bool promotes to int in arithmetic.
  if (a->isBool()) a = types_->i32();
  if (b->isBool()) b = types_->i32();
  if (a->isFloat() || b->isFloat()) {
    const unsigned bits = std::max(a->isFloat() ? a->bits() : 0u,
                                   b->isFloat() ? b->bits() : 0u);
    return types_->floatType(std::max(bits, 32u));
  }
  const unsigned bits = std::max(std::max(a->bits(), b->bits()), 32u);
  const bool isSigned =
      a->bits() == b->bits() ? (a->isSigned() && b->isSigned())
                             : (a->bits() > b->bits() ? a->isSigned() : b->isSigned());
  return types_->intType(bits, isSigned);
}

void Sema::convertTo(ExprPtr& expr, const ir::Type* target) {
  const ir::Type* from = expr->type;
  if (!from || from == target) return;

  // Scalar -> vector splat.
  if (target->isVector() && from->isScalar()) {
    auto loc = expr->location;
    auto cast = std::make_unique<CastExpr>(target, std::move(expr), true);
    cast->location = loc;
    cast->type = target;
    expr = std::move(cast);
    return;
  }
  const bool scalarOk = (from->isScalar() && target->isScalar());
  const bool vectorOk = (from->isVector() && target->isVector() &&
                         from->count() == target->count());
  const bool pointerOk = (from->isPointer() && target->isPointer());
  // Array-to-pointer decay (e.g. passing a private array to a helper).
  const bool decayOk = (from->isArray() && target->isPointer() &&
                        from->element() == target->element());
  if (!scalarOk && !vectorOk && !pointerOk && !decayOk) {
    diags_.error(expr->location, "cannot convert " + from->str() + " to " +
                                     target->str());
    expr->type = target;
    return;
  }
  auto loc = expr->location;
  auto cast = std::make_unique<CastExpr>(target, std::move(expr), true);
  cast->location = loc;
  cast->type = target;
  expr = std::move(cast);
}

void Sema::convertToCondition(ExprPtr& expr) {
  const ir::Type* t = expr->type;
  if (!t) return;
  if (t->isBool()) return;
  if (t->isInt() || t->isFloat() || t->isPointer()) {
    convertTo(expr, types_->boolType());
    return;
  }
  diags_.error(expr->location, "condition must be scalar, got " + t->str());
}

const ir::Type* Sema::usualConversions(ExprPtr& lhs, ExprPtr& rhs) {
  const ir::Type* lt = lhs->type;
  const ir::Type* rt = rhs->type;
  if (lt->isVector() || rt->isVector()) {
    const ir::Type* vec = lt->isVector() ? lt : rt;
    const ir::Type* common = vec;
    if (lt->isVector() && rt->isVector()) {
      if (lt->count() != rt->count()) {
        diags_.error(lhs->location, "vector lane mismatch: " + lt->str() + " vs " +
                                        rt->str());
        return lt;
      }
      common = types_->vectorType(
          commonArithmeticType(lt->element(), rt->element()), lt->count());
    } else {
      const ir::Type* scalarSide = lt->isVector() ? rt : lt;
      common = types_->vectorType(
          commonArithmeticType(vec->element(), scalarSide), vec->count());
    }
    convertTo(lhs, common);
    convertTo(rhs, common);
    return common;
  }
  const ir::Type* common = commonArithmeticType(lt, rt);
  convertTo(lhs, common);
  convertTo(rhs, common);
  return common;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

const ir::Type* Sema::checkExpr(ExprPtr& owner) {
  Expr& e = *owner;
  switch (e.kind()) {
    case Expr::Kind::IntLiteral: {
      auto& lit = static_cast<IntLiteralExpr&>(e);
      const unsigned bits = lit.isLong ? 64 : 32;
      e.type = types_->intType(bits, !lit.isUnsigned);
      break;
    }
    case Expr::Kind::FloatLiteral: {
      auto& lit = static_cast<FloatLiteralExpr&>(e);
      e.type = lit.isDoublePrecision ? types_->f64() : types_->f32();
      break;
    }
    case Expr::Kind::BoolLiteral:
      e.type = types_->boolType();
      break;
    case Expr::Kind::DeclRef: {
      auto& ref = static_cast<DeclRefExpr&>(e);
      ref.decl = lookup(ref.name);
      if (!ref.decl) {
        diags_.error(e.location, "use of undeclared identifier '" + ref.name + "'");
        e.type = types_->i32();
        break;
      }
      e.type = ref.decl->type;
      e.isLValue = !ref.decl->isConst;
      break;
    }
    case Expr::Kind::Binary:
      return checkBinary(owner);
    case Expr::Kind::Unary:
      return checkUnary(owner);
    case Expr::Kind::Assign:
      return checkAssign(owner);
    case Expr::Kind::Call:
      return checkCall(owner);
    case Expr::Kind::Index:
      return checkIndex(owner);
    case Expr::Kind::Member:
      return checkMember(owner);
    case Expr::Kind::Conditional:
      return checkConditional(owner);
    case Expr::Kind::Cast: {
      auto& cast = static_cast<CastExpr&>(e);
      checkExpr(cast.operand);
      e.type = cast.toType;
      break;
    }
    case Expr::Kind::VectorConstruct: {
      auto& v = static_cast<VectorConstructExpr&>(e);
      std::uint64_t lanes = 0;
      for (auto& elem : v.elements) {
        const ir::Type* t = checkExpr(elem);
        lanes += t->isVector() ? t->count() : 1;
        if (!t->isVector()) convertTo(elem, v.vectorType->element());
      }
      if (lanes != v.vectorType->count()) {
        diags_.error(e.location, "vector construct provides " +
                                     std::to_string(lanes) + " lanes, needs " +
                                     std::to_string(v.vectorType->count()));
      }
      e.type = v.vectorType;
      break;
    }
    case Expr::Kind::Sizeof: {
      auto& s = static_cast<SizeofExpr&>(e);
      (void)s;
      e.type = types_->u64();
      break;
    }
  }
  return e.type;
}

const ir::Type* Sema::checkBinary(ExprPtr& owner) {
  auto& b = static_cast<BinaryExpr&>(*owner);
  const ir::Type* lt = checkExpr(b.lhs);
  const ir::Type* rt = checkExpr(b.rhs);

  switch (b.op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      // Pointer arithmetic: ptr +/- int.
      if (lt->isPointer() && rt->isInt()) {
        b.type = lt;
        return b.type;
      }
      if (b.op == BinaryOp::Add && lt->isInt() && rt->isPointer()) {
        b.type = rt;
        return b.type;
      }
      if (b.op == BinaryOp::Sub && lt->isPointer() && rt->isPointer()) {
        b.type = types_->i64();
        return b.type;
      }
      [[fallthrough]];
    case BinaryOp::Mul:
    case BinaryOp::Div:
      b.type = usualConversions(b.lhs, b.rhs);
      return b.type;
    case BinaryOp::Rem:
    case BinaryOp::Shl:
    case BinaryOp::Shr:
    case BinaryOp::BitAnd:
    case BinaryOp::BitOr:
    case BinaryOp::BitXor: {
      const ir::Type* common = usualConversions(b.lhs, b.rhs);
      if (!(common->isInt() ||
            (common->isVector() && common->element()->isInt()))) {
        diags_.error(b.location, "integer operation on " + common->str());
      }
      b.type = common;
      return b.type;
    }
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (lt->isPointer() && rt->isPointer()) {
        b.type = types_->boolType();
        return b.type;
      }
      usualConversions(b.lhs, b.rhs);
      b.type = types_->boolType();
      return b.type;
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
      convertToCondition(b.lhs);
      convertToCondition(b.rhs);
      b.type = types_->boolType();
      return b.type;
  }
  b.type = types_->i32();
  return b.type;
}

const ir::Type* Sema::checkUnary(ExprPtr& owner) {
  auto& u = static_cast<UnaryExpr&>(*owner);
  const ir::Type* t = checkExpr(u.operand);
  switch (u.op) {
    case UnaryOp::Plus:
    case UnaryOp::Minus:
      if (!t->isArithmetic() && !(t->isVector() && t->element()->isArithmetic())) {
        diags_.error(u.location, "arithmetic negation on " + t->str());
      }
      u.type = t->isBool() ? types_->i32() : t;
      break;
    case UnaryOp::BitNot:
      if (!t->isInt() && !(t->isVector() && t->element()->isInt())) {
        diags_.error(u.location, "bitwise not on " + t->str());
      }
      u.type = t;
      break;
    case UnaryOp::LogNot:
      convertToCondition(u.operand);
      u.type = types_->boolType();
      break;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      if (!u.operand->isLValue) {
        diags_.error(u.location, "increment/decrement needs an lvalue");
      }
      u.type = t;
      break;
    case UnaryOp::Deref:
      if (!t->isPointer()) {
        diags_.error(u.location, "dereference of non-pointer " + t->str());
        u.type = types_->i32();
      } else {
        u.type = t->element();
        u.isLValue = true;
      }
      break;
    case UnaryOp::AddrOf:
      if (!u.operand->isLValue) {
        diags_.error(u.location, "address-of needs an lvalue");
      }
      u.type = types_->pointerType(t, ir::AddressSpace::Private);
      break;
  }
  return u.type;
}

const ir::Type* Sema::checkAssign(ExprPtr& owner) {
  auto& a = static_cast<AssignExpr&>(*owner);
  const ir::Type* targetType = checkExpr(a.target);
  checkExpr(a.value);
  if (!a.target->isLValue) {
    diags_.error(a.location, "assignment target is not an lvalue");
  }
  if (a.hasCompoundOp && targetType->isPointer()) {
    // ptr += int and ptr -= int keep the pointer type.
    if (!a.value->type->isInt()) {
      diags_.error(a.location, "pointer compound assignment needs integer rhs");
    }
  } else {
    convertTo(a.value, targetType);
  }
  a.type = targetType;
  return a.type;
}

const ir::Type* Sema::checkCall(ExprPtr& owner) {
  auto& call = static_cast<CallExpr&>(*owner);
  for (auto& arg : call.args) checkExpr(arg);

  call.builtin = lookupBuiltin(call.callee);
  if (call.builtin != Builtin::None) {
    switch (call.builtin) {
      case Builtin::GetGlobalId:
      case Builtin::GetLocalId:
      case Builtin::GetGroupId:
      case Builtin::GetGlobalSize:
      case Builtin::GetLocalSize:
      case Builtin::GetNumGroups:
        if (call.args.size() != 1) {
          diags_.error(call.location, call.callee + " expects one argument");
        } else {
          convertTo(call.args[0], types_->u32());
        }
        call.type = types_->u64();  // size_t
        return call.type;
      case Builtin::GetWorkDim:
        call.type = types_->u32();
        return call.type;
      case Builtin::Barrier:
      case Builtin::MemFence:
        call.type = types_->voidType();
        return call.type;
      default:
        break;
    }
    // Math builtins: unify arguments. Integer builtins keep int types, float
    // builtins promote to float.
    const bool isFloat = isFloatBuiltin(call.builtin);
    const ir::Type* common =
        isFloat ? static_cast<const ir::Type*>(types_->f32()) : types_->i32();
    for (auto& arg : call.args) {
      if (arg->type->isVector()) {
        common = arg->type;
      } else if (arg->type->isFloat() && arg->type->bits() > common->bits()) {
        common = arg->type;
      } else if (!isFloat && arg->type->isInt() &&
                 (common->isInt() && arg->type->bits() > common->bits())) {
        common = arg->type;
      } else if (isFloat && !common->isVector() && !common->isFloat()) {
        common = types_->f32();
      }
    }
    if (isFloat && common->isInt()) common = types_->f32();
    for (auto& arg : call.args) convertTo(arg, common);
    call.type = common;
    return call.type;
  }

  call.function = program_->findFunction(call.callee);
  if (!call.function) {
    diags_.error(call.location, "call to unknown function '" + call.callee + "'");
    call.type = types_->i32();
    return call.type;
  }
  if (call.function->isKernel) {
    diags_.error(call.location, "kernels cannot be called from device code");
  }
  if (call.args.size() != call.function->params.size()) {
    diags_.error(call.location,
                 "'" + call.callee + "' expects " +
                     std::to_string(call.function->params.size()) + " arguments, got " +
                     std::to_string(call.args.size()));
  } else {
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      convertTo(call.args[i], call.function->params[i]->type);
    }
  }
  call.type = call.function->returnType;
  return call.type;
}

const ir::Type* Sema::checkIndex(ExprPtr& owner) {
  auto& idx = static_cast<IndexExpr&>(*owner);
  const ir::Type* baseType = checkExpr(idx.base);
  checkExpr(idx.index);
  convertTo(idx.index, types_->i64());

  if (baseType->isPointer() || baseType->isArray()) {
    idx.type = baseType->element();
    idx.isLValue = true;
  } else if (baseType->isVector()) {
    idx.type = baseType->element();
    idx.isLValue = idx.base->isLValue;
  } else {
    diags_.error(idx.location, "subscript on non-indexable " + baseType->str());
    idx.type = types_->i32();
  }
  return idx.type;
}

const ir::Type* Sema::checkMember(ExprPtr& owner) {
  auto& m = static_cast<MemberExpr&>(*owner);
  const ir::Type* baseType = checkExpr(m.base);
  if (m.isArrow) {
    if (!baseType->isPointer()) {
      diags_.error(m.location, "'->' on non-pointer " + baseType->str());
      m.type = types_->i32();
      return m.type;
    }
    baseType = baseType->element();
  }
  if (baseType->isStruct()) {
    m.fieldIndex = baseType->fieldIndex(m.member);
    if (m.fieldIndex < 0) {
      diags_.error(m.location, "no field '" + m.member + "' in " + baseType->str());
      m.type = types_->i32();
      return m.type;
    }
    m.type = baseType->fields()[static_cast<std::size_t>(m.fieldIndex)].type;
    m.isLValue = m.isArrow || m.base->isLValue;
    return m.type;
  }
  if (baseType->isVector()) {
    m.laneIndex = vectorLaneIndex(m.member);
    if (m.laneIndex < 0 ||
        static_cast<std::uint64_t>(m.laneIndex) >= baseType->count()) {
      diags_.error(m.location, "invalid vector component '." + m.member + "'");
      m.type = baseType->element();
      return m.type;
    }
    m.type = baseType->element();
    m.isLValue = m.base->isLValue;
    return m.type;
  }
  diags_.error(m.location, "member access on " + baseType->str());
  m.type = types_->i32();
  return m.type;
}

const ir::Type* Sema::checkConditional(ExprPtr& owner) {
  auto& c = static_cast<ConditionalExpr&>(*owner);
  checkExpr(c.cond);
  convertToCondition(c.cond);
  const ir::Type* lt = checkExpr(c.thenExpr);
  const ir::Type* rt = checkExpr(c.elseExpr);
  if (lt->isPointer() && rt->isPointer()) {
    c.type = lt;
  } else {
    c.type = usualConversions(c.thenExpr, c.elseExpr);
  }
  return c.type;
}

}  // namespace flexcl::ocl
