// Minimal preprocessor for OpenCL kernel sources.
//
// Supported directives:
//   #define NAME replacement        (object-like macros only)
//   #undef NAME
//   #ifdef NAME / #ifndef NAME / #else / #endif   (no nesting limits)
//   #pragma unroll [N]     -> rewritten to __attribute__((opencl_unroll_hint(N)))
//   other #pragma / #include lines are dropped with a warning
//
// The output preserves line structure (directive lines become blank lines) so
// diagnostics after preprocessing still point at the right line.
#pragma once

#include <string>
#include <unordered_map>

#include "support/diagnostics.h"

namespace flexcl::ocl {

struct PreprocessorOptions {
  /// Predefined object-like macros (e.g. problem-size parameters).
  std::unordered_map<std::string, std::string> defines;
};

/// Runs the preprocessor over `source` and returns the expanded text.
std::string preprocess(const std::string& source, DiagnosticEngine& diags,
                       const PreprocessorOptions& options = {});

}  // namespace flexcl::ocl
