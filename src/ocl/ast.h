// Abstract syntax tree for the OpenCL C subset.
//
// Nodes are owned through std::unique_ptr by their parents; the Program node
// owns everything. Sema annotates nodes in place (types, resolved decls,
// builtin kinds) — see ocl/sema.h.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/source_location.h"

namespace flexcl::ocl {

class Expr;
class Stmt;
class VarDecl;
class FunctionDecl;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, BitAnd, BitOr, BitXor,
  LogAnd, LogOr,
  Lt, Gt, Le, Ge, Eq, Ne,
};

enum class UnaryOp : std::uint8_t {
  Plus, Minus, BitNot, LogNot, PreInc, PreDec, PostInc, PostDec, Deref, AddrOf,
};

/// Builtin functions known to sema. Work-item queries and barrier become
/// dedicated IR instructions; math builtins become Call IR instructions with
/// per-builtin FPGA IP latencies.
enum class Builtin : std::uint8_t {
  None,
  GetGlobalId, GetLocalId, GetGroupId, GetGlobalSize, GetLocalSize, GetNumGroups,
  GetWorkDim, Barrier, MemFence,
  Sqrt, Rsqrt, Exp, Exp2, Log, Log2, Pow, Sin, Cos, Tan,
  Fabs, Floor, Ceil, Round, Fmax, Fmin, Fmod, Mad, Fma,
  Abs, Max, Min, Clamp, Select, Hypot, Atan, Atan2,
};

const char* builtinName(Builtin b);

class Expr {
 public:
  enum class Kind : std::uint8_t {
    IntLiteral, FloatLiteral, BoolLiteral, DeclRef, Binary, Unary, Assign,
    Call, Index, Member, Cast, Conditional, VectorConstruct, Sizeof,
  };

  virtual ~Expr() = default;
  [[nodiscard]] Kind kind() const { return kind_; }

  SourceLocation location;
  /// Set by sema; null until type checking ran.
  const ir::Type* type = nullptr;
  /// True when this expression denotes a modifiable object (sema).
  bool isLValue = false;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

class IntLiteralExpr final : public Expr {
 public:
  explicit IntLiteralExpr(std::uint64_t value, bool isUnsigned = false,
                          bool isLong = false)
      : Expr(Kind::IntLiteral), value(value), isUnsigned(isUnsigned), isLong(isLong) {}
  std::uint64_t value;
  bool isUnsigned;
  bool isLong;
};

class FloatLiteralExpr final : public Expr {
 public:
  explicit FloatLiteralExpr(double value, bool isDoublePrecision = false)
      : Expr(Kind::FloatLiteral), value(value), isDoublePrecision(isDoublePrecision) {}
  double value;
  bool isDoublePrecision;
};

class BoolLiteralExpr final : public Expr {
 public:
  explicit BoolLiteralExpr(bool value) : Expr(Kind::BoolLiteral), value(value) {}
  bool value;
};

class DeclRefExpr final : public Expr {
 public:
  explicit DeclRefExpr(std::string name) : Expr(Kind::DeclRef), name(std::move(name)) {}
  std::string name;
  /// Resolved by sema: the variable or parameter this name refers to.
  const VarDecl* decl = nullptr;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind::Binary), op(op), lhs(std::move(lhs)), rhs(std::move(rhs)) {}
  BinaryOp op;
  ExprPtr lhs, rhs;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(Kind::Unary), op(op), operand(std::move(operand)) {}
  UnaryOp op;
  ExprPtr operand;
};

/// Assignment, including compound forms. For `a op= b` the `op` field holds
/// the arithmetic operator; for plain `=` it is std::nullopt-like None flag.
class AssignExpr final : public Expr {
 public:
  AssignExpr(ExprPtr target, ExprPtr value)
      : Expr(Kind::Assign), target(std::move(target)), value(std::move(value)) {}
  AssignExpr(BinaryOp compoundOp, ExprPtr target, ExprPtr value)
      : Expr(Kind::Assign), hasCompoundOp(true), compoundOp(compoundOp),
        target(std::move(target)), value(std::move(value)) {}
  bool hasCompoundOp = false;
  BinaryOp compoundOp = BinaryOp::Add;
  ExprPtr target, value;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string callee, std::vector<ExprPtr> args)
      : Expr(Kind::Call), callee(std::move(callee)), args(std::move(args)) {}
  std::string callee;
  std::vector<ExprPtr> args;
  /// Resolution by sema: either a builtin or a user function (inlined during
  /// IR lowering).
  Builtin builtin = Builtin::None;
  const FunctionDecl* function = nullptr;
};

class IndexExpr final : public Expr {
 public:
  IndexExpr(ExprPtr base, ExprPtr index)
      : Expr(Kind::Index), base(std::move(base)), index(std::move(index)) {}
  ExprPtr base, index;
};

/// Struct field access (`s.f`, `p->f`) or vector component access
/// (`v.x`, `v.s3`). Sema fills in exactly one of fieldIndex / laneIndex.
class MemberExpr final : public Expr {
 public:
  MemberExpr(ExprPtr base, std::string member, bool isArrow)
      : Expr(Kind::Member), base(std::move(base)), member(std::move(member)),
        isArrow(isArrow) {}
  ExprPtr base;
  std::string member;
  bool isArrow;
  int fieldIndex = -1;
  int laneIndex = -1;
};

class CastExpr final : public Expr {
 public:
  CastExpr(const ir::Type* toType, ExprPtr operand, bool isImplicit = false)
      : Expr(Kind::Cast), toType(toType), operand(std::move(operand)),
        isImplicit(isImplicit) {}
  const ir::Type* toType;
  ExprPtr operand;
  bool isImplicit;
};

class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr(ExprPtr cond, ExprPtr thenExpr, ExprPtr elseExpr)
      : Expr(Kind::Conditional), cond(std::move(cond)),
        thenExpr(std::move(thenExpr)), elseExpr(std::move(elseExpr)) {}
  ExprPtr cond, thenExpr, elseExpr;
};

/// OpenCL vector construction `(float4)(a, b, c, d)`. Elements may themselves
/// be vectors whose lanes are flattened.
class VectorConstructExpr final : public Expr {
 public:
  VectorConstructExpr(const ir::Type* vectorType, std::vector<ExprPtr> elements)
      : Expr(Kind::VectorConstruct), vectorType(vectorType),
        elements(std::move(elements)) {}
  const ir::Type* vectorType;
  std::vector<ExprPtr> elements;
};

class SizeofExpr final : public Expr {
 public:
  explicit SizeofExpr(const ir::Type* queried) : Expr(Kind::Sizeof), queried(queried) {}
  const ir::Type* queried;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

class Stmt {
 public:
  enum class Kind : std::uint8_t {
    Compound, Decl, Expr, If, For, While, Do, Return, Break, Continue,
  };
  virtual ~Stmt() = default;
  [[nodiscard]] Kind kind() const { return kind_; }
  SourceLocation location;

 protected:
  explicit Stmt(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// A declared variable (local variable or function parameter).
class VarDecl {
 public:
  std::string name;
  const ir::Type* type = nullptr;
  ir::AddressSpace addressSpace = ir::AddressSpace::Private;
  bool isConst = false;
  bool isParameter = false;
  ExprPtr init;  ///< Optional initialiser (locals only).
  SourceLocation location;
};

class CompoundStmt final : public Stmt {
 public:
  CompoundStmt() : Stmt(Kind::Compound) {}
  std::vector<StmtPtr> body;
};

class DeclStmt final : public Stmt {
 public:
  DeclStmt() : Stmt(Kind::Decl) {}
  std::vector<std::unique_ptr<VarDecl>> decls;
};

class ExprStmt final : public Stmt {
 public:
  explicit ExprStmt(ExprPtr expr) : Stmt(Kind::Expr), expr(std::move(expr)) {}
  ExprPtr expr;
};

class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr cond, StmtPtr thenStmt, StmtPtr elseStmt)
      : Stmt(Kind::If), cond(std::move(cond)), thenStmt(std::move(thenStmt)),
        elseStmt(std::move(elseStmt)) {}
  ExprPtr cond;
  StmtPtr thenStmt, elseStmt;  ///< elseStmt may be null.
};

class ForStmt final : public Stmt {
 public:
  ForStmt() : Stmt(Kind::For) {}
  StmtPtr init;   ///< DeclStmt or ExprStmt or null.
  ExprPtr cond;   ///< may be null (infinite loop)
  ExprPtr step;   ///< may be null
  StmtPtr body;
  /// From `#pragma unroll N` / opencl_unroll_hint: 0 = none requested,
  /// -1 = full unroll, otherwise the factor.
  int unrollHint = 0;
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(ExprPtr cond, StmtPtr body)
      : Stmt(Kind::While), cond(std::move(cond)), body(std::move(body)) {}
  ExprPtr cond;
  StmtPtr body;
  int unrollHint = 0;
};

class DoStmt final : public Stmt {
 public:
  DoStmt(StmtPtr body, ExprPtr cond)
      : Stmt(Kind::Do), body(std::move(body)), cond(std::move(cond)) {}
  StmtPtr body;
  ExprPtr cond;
};

class ReturnStmt final : public Stmt {
 public:
  explicit ReturnStmt(ExprPtr value) : Stmt(Kind::Return), value(std::move(value)) {}
  ExprPtr value;  ///< null for `return;`
};

class BreakStmt final : public Stmt {
 public:
  BreakStmt() : Stmt(Kind::Break) {}
};

class ContinueStmt final : public Stmt {
 public:
  ContinueStmt() : Stmt(Kind::Continue) {}
};

// ---------------------------------------------------------------------------
// Declarations / program
// ---------------------------------------------------------------------------

class FunctionDecl {
 public:
  std::string name;
  const ir::Type* returnType = nullptr;
  std::vector<std::unique_ptr<VarDecl>> params;
  std::unique_ptr<CompoundStmt> body;
  bool isKernel = false;
  /// From __attribute__((reqd_work_group_size(x,y,z))); 0 = unspecified.
  std::array<std::uint32_t, 3> reqdWorkGroupSize = {0, 0, 0};
  SourceLocation location;
};

/// A parsed translation unit. Owns the TypeContext so AST type pointers stay
/// valid for the lifetime of the Program.
class Program {
 public:
  Program() : types(std::make_unique<ir::TypeContext>()) {}
  std::unique_ptr<ir::TypeContext> types;
  std::vector<std::unique_ptr<FunctionDecl>> functions;

  [[nodiscard]] const FunctionDecl* findFunction(const std::string& name) const;
  [[nodiscard]] std::vector<const FunctionDecl*> kernels() const;
};

}  // namespace flexcl::ocl
