#include "ocl/parser.h"

#include <cstdlib>

#include "ocl/lexer.h"
#include "ocl/preprocessor.h"
#include "ocl/sema.h"
#include "support/source_manager.h"

namespace flexcl::ocl {
namespace {

/// Binary operator precedence (C-like). Higher binds tighter.
int precedenceOf(TokenKind kind) {
  switch (kind) {
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::LessLess:
    case TokenKind::GreaterGreater: return 8;
    case TokenKind::Less:
    case TokenKind::Greater:
    case TokenKind::LessEqual:
    case TokenKind::GreaterEqual: return 7;
    case TokenKind::EqualEqual:
    case TokenKind::ExclaimEqual: return 6;
    case TokenKind::Amp: return 5;
    case TokenKind::Caret: return 4;
    case TokenKind::Pipe: return 3;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::PipePipe: return 1;
    default: return -1;
  }
}

BinaryOp binaryOpFor(TokenKind kind) {
  switch (kind) {
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Rem;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::LessLess: return BinaryOp::Shl;
    case TokenKind::GreaterGreater: return BinaryOp::Shr;
    case TokenKind::Less: return BinaryOp::Lt;
    case TokenKind::Greater: return BinaryOp::Gt;
    case TokenKind::LessEqual: return BinaryOp::Le;
    case TokenKind::GreaterEqual: return BinaryOp::Ge;
    case TokenKind::EqualEqual: return BinaryOp::Eq;
    case TokenKind::ExclaimEqual: return BinaryOp::Ne;
    case TokenKind::Amp: return BinaryOp::BitAnd;
    case TokenKind::Caret: return BinaryOp::BitXor;
    case TokenKind::Pipe: return BinaryOp::BitOr;
    case TokenKind::AmpAmp: return BinaryOp::LogAnd;
    case TokenKind::PipePipe: return BinaryOp::LogOr;
    default: return BinaryOp::Add;
  }
}

/// Compound-assignment operator, or nullopt-equivalent via bool.
bool compoundOpFor(TokenKind kind, BinaryOp* op) {
  switch (kind) {
    case TokenKind::PlusEqual: *op = BinaryOp::Add; return true;
    case TokenKind::MinusEqual: *op = BinaryOp::Sub; return true;
    case TokenKind::StarEqual: *op = BinaryOp::Mul; return true;
    case TokenKind::SlashEqual: *op = BinaryOp::Div; return true;
    case TokenKind::PercentEqual: *op = BinaryOp::Rem; return true;
    case TokenKind::AmpEqual: *op = BinaryOp::BitAnd; return true;
    case TokenKind::PipeEqual: *op = BinaryOp::BitOr; return true;
    case TokenKind::CaretEqual: *op = BinaryOp::BitXor; return true;
    case TokenKind::LessLessEqual: *op = BinaryOp::Shl; return true;
    case TokenKind::GreaterGreaterEqual: *op = BinaryOp::Shr; return true;
    default: return false;
  }
}

/// Splits vector type names like "float4" into (scalar spelling, lanes).
bool splitVectorName(const std::string& name, std::string* scalar, unsigned* lanes) {
  static const char* scalars[] = {"char", "uchar", "short", "ushort", "int",
                                  "uint", "long", "ulong", "float", "double"};
  for (const char* s : scalars) {
    const std::size_t len = std::string_view(s).size();
    if (name.size() > len && name.compare(0, len, s) == 0) {
      const std::string suffix = name.substr(len);
      if (suffix == "2" || suffix == "3" || suffix == "4" || suffix == "8" ||
          suffix == "16") {
        *scalar = s;
        *lanes = static_cast<unsigned>(std::strtoul(suffix.c_str(), nullptr, 10));
        return true;
      }
    }
  }
  return false;
}

const ir::Type* scalarTypeByName(ir::TypeContext& types, const std::string& name) {
  if (name == "char") return types.i8();
  if (name == "uchar") return types.u8();
  if (name == "short") return types.i16();
  if (name == "ushort") return types.u16();
  if (name == "int") return types.i32();
  if (name == "uint") return types.u32();
  if (name == "long") return types.i64();
  if (name == "ulong") return types.u64();
  if (name == "float") return types.f32();
  if (name == "double") return types.f64();
  if (name == "size_t") return types.u64();
  if (name == "ptrdiff_t") return types.i64();
  return nullptr;
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), diags_(diags) {}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(TokenKind kind) {
  if (check(kind)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(TokenKind kind, const char* context) {
  if (accept(kind)) return true;
  diags_.error(peek().location, std::string("expected ") +
                                    std::string(tokenKindName(kind)) + " " + context +
                                    ", found " + std::string(tokenKindName(peek().kind)));
  return false;
}

void Parser::synchronizeToSemicolon() {
  while (!check(TokenKind::EndOfFile) && !check(TokenKind::Semicolon) &&
         !check(TokenKind::RBrace)) {
    advance();
  }
  accept(TokenKind::Semicolon);
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

bool Parser::startsType(std::size_t ahead) const {
  const Token& t = peek(ahead);
  if (t.isTypeKeyword()) return true;
  switch (t.kind) {
    case TokenKind::KwGlobal:
    case TokenKind::KwLocal:
    case TokenKind::KwConstantAS:
    case TokenKind::KwPrivate:
    case TokenKind::KwConst:
    case TokenKind::KwVolatile:
      return true;
    default:
      break;
  }
  if (t.is(TokenKind::Identifier)) {
    if (typedefs_.count(t.text)) return true;
    std::string scalar;
    unsigned lanes = 0;
    if (splitVectorName(t.text, &scalar, &lanes)) return true;
    if (scalarTypeByName(*program_->types, t.text)) return true;
  }
  return false;
}

Parser::ParsedQuals Parser::parseQualifiers() {
  ParsedQuals q;
  for (;;) {
    if (accept(TokenKind::KwGlobal)) {
      q.addressSpace = ir::AddressSpace::Global;
      q.hasAddressSpace = true;
    } else if (accept(TokenKind::KwLocal)) {
      q.addressSpace = ir::AddressSpace::Local;
      q.hasAddressSpace = true;
    } else if (accept(TokenKind::KwConstantAS)) {
      q.addressSpace = ir::AddressSpace::Constant;
      q.hasAddressSpace = true;
    } else if (accept(TokenKind::KwPrivate)) {
      q.addressSpace = ir::AddressSpace::Private;
      q.hasAddressSpace = true;
    } else if (accept(TokenKind::KwConst)) {
      q.isConst = true;
    } else if (accept(TokenKind::KwVolatile) || accept(TokenKind::KwRestrict)) {
      // Accepted and ignored: they do not affect the performance model.
    } else {
      return q;
    }
  }
}

const ir::Type* Parser::parseBaseType() {
  ir::TypeContext& types = *program_->types;
  // Struct tag reference or inline definition is handled by caller contexts;
  // here `struct Name` refers to an already-declared struct.
  if (accept(TokenKind::KwStruct)) {
    if (!check(TokenKind::Identifier)) {
      diags_.error(peek().location, "expected struct name");
      return types.i32();
    }
    const std::string name = advance().text;
    if (const ir::Type* s = types.findStruct(name)) return s;
    diags_.error(peek().location, "unknown struct '" + name + "'");
    return types.i32();
  }

  bool sawUnsigned = false, sawSigned = false;
  while (check(TokenKind::KwUnsigned) || check(TokenKind::KwSigned)) {
    sawUnsigned |= accept(TokenKind::KwUnsigned);
    sawSigned |= accept(TokenKind::KwSigned);
  }
  (void)sawSigned;

  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::KwVoid: advance(); return types.voidType();
    case TokenKind::KwBool: advance(); return types.boolType();
    case TokenKind::KwChar: advance(); return types.intType(8, !sawUnsigned);
    case TokenKind::KwShort: advance(); return types.intType(16, !sawUnsigned);
    case TokenKind::KwInt: advance(); return types.intType(32, !sawUnsigned);
    case TokenKind::KwLong:
      advance();
      accept(TokenKind::KwLong);  // tolerate `long long`
      accept(TokenKind::KwInt);
      return types.intType(64, !sawUnsigned);
    case TokenKind::KwFloat: advance(); return types.f32();
    case TokenKind::KwDouble: advance(); return types.f64();
    default: break;
  }
  if (sawUnsigned) return types.u32();  // bare `unsigned`

  if (t.is(TokenKind::Identifier)) {
    auto td = typedefs_.find(t.text);
    if (td != typedefs_.end()) {
      advance();
      return td->second;
    }
    std::string scalar;
    unsigned lanes = 0;
    if (splitVectorName(t.text, &scalar, &lanes)) {
      advance();
      return types.vectorType(scalarTypeByName(types, scalar), lanes);
    }
    if (const ir::Type* s = scalarTypeByName(types, t.text)) {
      advance();
      return s;
    }
  }
  diags_.error(t.location, "expected type, found " + std::string(tokenKindName(t.kind)));
  advance();
  return types.i32();
}

const ir::Type* Parser::parseTypeSpecifier(const ParsedQuals& quals) {
  const ir::Type* base = parseBaseType();
  // Qualifiers may also appear between base type and '*' (e.g. `float const *`).
  while (accept(TokenKind::KwConst) || accept(TokenKind::KwVolatile) ||
         accept(TokenKind::KwRestrict)) {
  }
  const ir::Type* result = base;
  while (accept(TokenKind::Star)) {
    const ir::AddressSpace as =
        quals.hasAddressSpace ? quals.addressSpace : ir::AddressSpace::Private;
    result = program_->types->pointerType(result, as);
    while (accept(TokenKind::KwConst) || accept(TokenKind::KwRestrict) ||
           accept(TokenKind::KwVolatile)) {
    }
  }
  return result;
}

const ir::Type* Parser::parseArrayDimensions(const ir::Type* elementType) {
  // Collect extents outside-in, then wrap inside-out so a[2][3] is
  // array<2, array<3, T>>.
  std::vector<std::uint64_t> extents;
  while (accept(TokenKind::LBracket)) {
    ExprPtr extent = parseConditional();
    std::uint64_t value = 0;
    if (auto* lit = dynamic_cast<IntLiteralExpr*>(extent.get())) {
      value = lit->value;
    } else {
      diags_.error(peek().location, "array extent must be an integer constant");
      value = 1;
    }
    extents.push_back(value);
    expect(TokenKind::RBracket, "after array extent");
  }
  const ir::Type* result = elementType;
  for (auto it = extents.rbegin(); it != extents.rend(); ++it) {
    result = program_->types->arrayType(result, *it);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Attributes
// ---------------------------------------------------------------------------

int Parser::parseAttributes(std::array<std::uint32_t, 3>* wgSize) {
  int unrollHint = 0;
  while (accept(TokenKind::KwAttribute)) {
    expect(TokenKind::LParen, "after __attribute__");
    expect(TokenKind::LParen, "after __attribute__(");
    while (!check(TokenKind::RParen) && !check(TokenKind::EndOfFile)) {
      if (!check(TokenKind::Identifier)) {
        diags_.error(peek().location, "expected attribute name");
        break;
      }
      const std::string name = advance().text;
      std::vector<std::int64_t> args;
      if (accept(TokenKind::LParen)) {
        while (!check(TokenKind::RParen) && !check(TokenKind::EndOfFile)) {
          ExprPtr arg = parseConditional();
          if (auto* lit = dynamic_cast<IntLiteralExpr*>(arg.get())) {
            args.push_back(static_cast<std::int64_t>(lit->value));
          } else {
            args.push_back(0);
          }
          if (!accept(TokenKind::Comma)) break;
        }
        expect(TokenKind::RParen, "after attribute arguments");
      }
      if (name == "opencl_unroll_hint") {
        unrollHint = args.empty() || args[0] == 0 ? -1 : static_cast<int>(args[0]);
      } else if (name == "reqd_work_group_size" && wgSize) {
        for (std::size_t i = 0; i < 3 && i < args.size(); ++i) {
          (*wgSize)[i] = static_cast<std::uint32_t>(args[i]);
        }
      } else if (name == "work_item_pipeline" || name == "xcl_pipeline_workitems") {
        // Pipelining is a design-point parameter in FlexCL; the source-level
        // directive is accepted for compatibility and ignored here.
      } else {
        diags_.warning(peek().location, "ignoring unknown attribute '" + name + "'");
      }
      if (!accept(TokenKind::Comma)) break;
    }
    expect(TokenKind::RParen, "to close attribute");
    expect(TokenKind::RParen, "to close __attribute__");
  }
  return unrollHint;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

std::unique_ptr<Program> Parser::parseProgram() {
  program_ = std::make_unique<Program>();
  while (!check(TokenKind::EndOfFile)) {
    parseTopLevel(*program_);
  }
  return std::move(program_);
}

void Parser::parseTopLevel(Program& program) {
  if (accept(TokenKind::Semicolon)) return;

  if (check(TokenKind::KwTypedef)) {
    advance();
    if (check(TokenKind::KwStruct) &&
        (peek(1).is(TokenKind::LBrace) ||
         (peek(1).is(TokenKind::Identifier) && peek(2).is(TokenKind::LBrace)))) {
      parseStructDefinition(/*isTypedef=*/true);
      return;
    }
    // typedef <type> Name;
    ParsedQuals quals = parseQualifiers();
    const ir::Type* type = parseTypeSpecifier(quals);
    if (!check(TokenKind::Identifier)) {
      diags_.error(peek().location, "expected typedef name");
      synchronizeToSemicolon();
      return;
    }
    const std::string name = advance().text;
    typedefs_[name] = parseArrayDimensions(type);
    expect(TokenKind::Semicolon, "after typedef");
    return;
  }

  if (check(TokenKind::KwStruct) &&
      (peek(1).is(TokenKind::LBrace) ||
       (peek(1).is(TokenKind::Identifier) && peek(2).is(TokenKind::LBrace)))) {
    parseStructDefinition(/*isTypedef=*/false);
    return;
  }

  std::array<std::uint32_t, 3> wgSize = {0, 0, 0};
  bool isKernel = false;
  // Kernels: [__attribute__((...))] __kernel [__attribute__((...))] type name(...)
  parseAttributes(&wgSize);
  if (accept(TokenKind::KwKernel)) isKernel = true;
  parseAttributes(&wgSize);

  auto fn = parseFunction(isKernel, wgSize);
  if (fn) program.functions.push_back(std::move(fn));
}

void Parser::parseStructDefinition(bool isTypedef) {
  expect(TokenKind::KwStruct, "to begin struct definition");
  std::string tag;
  if (check(TokenKind::Identifier)) tag = advance().text;
  expect(TokenKind::LBrace, "to open struct body");

  std::vector<ir::Type::Field> fields;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    ParsedQuals quals = parseQualifiers();
    const ir::Type* fieldType = parseTypeSpecifier(quals);
    do {
      if (!check(TokenKind::Identifier)) {
        diags_.error(peek().location, "expected field name");
        synchronizeToSemicolon();
        break;
      }
      const std::string fieldName = advance().text;
      const ir::Type* full = parseArrayDimensions(fieldType);
      fields.push_back(ir::Type::Field{fieldName, full});
    } while (accept(TokenKind::Comma));
    expect(TokenKind::Semicolon, "after struct field");
  }
  expect(TokenKind::RBrace, "to close struct body");

  std::string typedefName;
  if (isTypedef) {
    if (check(TokenKind::Identifier)) {
      typedefName = advance().text;
    } else {
      diags_.error(peek().location, "expected typedef name after struct body");
    }
  }
  expect(TokenKind::Semicolon, "after struct definition");

  const std::string structName =
      !tag.empty() ? tag : (!typedefName.empty() ? typedefName : "<anon>");
  const ir::Type* type = program_->types->structType(structName, std::move(fields));
  if (!typedefName.empty()) typedefs_[typedefName] = type;
}

std::unique_ptr<FunctionDecl> Parser::parseFunction(
    bool isKernel, std::array<std::uint32_t, 3> wgSize) {
  auto fn = std::make_unique<FunctionDecl>();
  fn->isKernel = isKernel;
  fn->reqdWorkGroupSize = wgSize;
  fn->location = peek().location;

  ParsedQuals quals = parseQualifiers();
  fn->returnType = parseTypeSpecifier(quals);

  if (!check(TokenKind::Identifier)) {
    diags_.error(peek().location, "expected function name");
    synchronizeToSemicolon();
    return nullptr;
  }
  fn->name = advance().text;

  if (!expect(TokenKind::LParen, "after function name")) return nullptr;
  if (!check(TokenKind::RParen)) {
    do {
      if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
        advance();
        break;
      }
      auto param = parseParam();
      if (param) fn->params.push_back(std::move(param));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");

  std::array<std::uint32_t, 3> postWg = {0, 0, 0};
  parseAttributes(&postWg);
  for (std::size_t i = 0; i < 3; ++i) {
    if (postWg[i]) fn->reqdWorkGroupSize[i] = postWg[i];
  }

  if (!check(TokenKind::LBrace)) {
    diags_.error(peek().location, "expected function body");
    synchronizeToSemicolon();
    return nullptr;
  }
  StmtPtr body = parseCompound();
  fn->body.reset(static_cast<CompoundStmt*>(body.release()));
  return fn;
}

std::unique_ptr<VarDecl> Parser::parseParam() {
  auto param = std::make_unique<VarDecl>();
  param->isParameter = true;
  param->location = peek().location;
  ParsedQuals quals = parseQualifiers();
  param->type = parseTypeSpecifier(quals);
  param->isConst = quals.isConst;
  param->addressSpace =
      param->type->isPointer() ? param->type->addressSpace() : ir::AddressSpace::Private;
  if (check(TokenKind::Identifier)) {
    param->name = advance().text;
  } else {
    diags_.error(peek().location, "expected parameter name");
  }
  param->type = parseArrayDimensions(param->type);
  return param;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

StmtPtr Parser::parseCompound() {
  auto compound = std::make_unique<CompoundStmt>();
  compound->location = peek().location;
  expect(TokenKind::LBrace, "to open block");
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    StmtPtr s = parseStatement();
    if (s) compound->body.push_back(std::move(s));
  }
  expect(TokenKind::RBrace, "to close block");
  return compound;
}

std::unique_ptr<DeclStmt> Parser::parseDeclStmt() {
  auto decl = std::make_unique<DeclStmt>();
  decl->location = peek().location;
  ParsedQuals quals = parseQualifiers();
  const ir::Type* baseType = parseTypeSpecifier(quals);
  do {
    auto var = std::make_unique<VarDecl>();
    var->location = peek().location;
    var->addressSpace = quals.hasAddressSpace ? quals.addressSpace
                                              : ir::AddressSpace::Private;
    var->isConst = quals.isConst;
    // Each declarator may add its own leading '*'s.
    const ir::Type* declType = baseType;
    while (accept(TokenKind::Star)) {
      declType = program_->types->pointerType(declType, var->addressSpace);
    }
    if (!check(TokenKind::Identifier)) {
      diags_.error(peek().location, "expected variable name");
      synchronizeToSemicolon();
      return decl;
    }
    var->name = advance().text;
    var->type = parseArrayDimensions(declType);
    if (accept(TokenKind::Equal)) {
      var->init = parseAssignment();
    }
    decl->decls.push_back(std::move(var));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semicolon, "after declaration");
  return decl;
}

StmtPtr Parser::parseStatement() {
  const int unrollHint = parseAttributes(nullptr);

  switch (peek().kind) {
    case TokenKind::LBrace: return parseCompound();
    case TokenKind::KwIf: return parseIf();
    case TokenKind::KwFor: return parseFor(unrollHint);
    case TokenKind::KwWhile: return parseWhile(unrollHint);
    case TokenKind::KwDo: return parseDo();
    case TokenKind::KwReturn: {
      auto loc = advance().location;
      ExprPtr value;
      if (!check(TokenKind::Semicolon)) value = parseExpression();
      expect(TokenKind::Semicolon, "after return");
      auto s = std::make_unique<ReturnStmt>(std::move(value));
      s->location = loc;
      return s;
    }
    case TokenKind::KwBreak: {
      auto loc = advance().location;
      expect(TokenKind::Semicolon, "after break");
      auto s = std::make_unique<BreakStmt>();
      s->location = loc;
      return s;
    }
    case TokenKind::KwContinue: {
      auto loc = advance().location;
      expect(TokenKind::Semicolon, "after continue");
      auto s = std::make_unique<ContinueStmt>();
      s->location = loc;
      return s;
    }
    case TokenKind::Semicolon:
      advance();
      return nullptr;
    default:
      break;
  }

  if (startsType()) return parseDeclStmt();

  auto loc = peek().location;
  ExprPtr e = parseExpression();
  expect(TokenKind::Semicolon, "after expression");
  auto s = std::make_unique<ExprStmt>(std::move(e));
  s->location = loc;
  return s;
}

StmtPtr Parser::parseIf() {
  auto loc = advance().location;  // 'if'
  expect(TokenKind::LParen, "after if");
  ExprPtr cond = parseExpression();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr thenStmt = parseStatement();
  StmtPtr elseStmt;
  if (accept(TokenKind::KwElse)) elseStmt = parseStatement();
  auto s = std::make_unique<IfStmt>(std::move(cond), std::move(thenStmt),
                                    std::move(elseStmt));
  s->location = loc;
  return s;
}

StmtPtr Parser::parseFor(int unrollHint) {
  auto loc = advance().location;  // 'for'
  auto s = std::make_unique<ForStmt>();
  s->location = loc;
  s->unrollHint = unrollHint;
  expect(TokenKind::LParen, "after for");
  if (!accept(TokenKind::Semicolon)) {
    if (startsType()) {
      s->init = parseDeclStmt();
    } else {
      auto initLoc = peek().location;
      auto e = std::make_unique<ExprStmt>(parseExpression());
      e->location = initLoc;
      s->init = std::move(e);
      expect(TokenKind::Semicolon, "after for initialiser");
    }
  }
  if (!check(TokenKind::Semicolon)) s->cond = parseExpression();
  expect(TokenKind::Semicolon, "after for condition");
  if (!check(TokenKind::RParen)) s->step = parseExpression();
  expect(TokenKind::RParen, "after for step");
  s->body = parseStatement();
  return s;
}

StmtPtr Parser::parseWhile(int unrollHint) {
  auto loc = advance().location;  // 'while'
  expect(TokenKind::LParen, "after while");
  ExprPtr cond = parseExpression();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr body = parseStatement();
  auto s = std::make_unique<WhileStmt>(std::move(cond), std::move(body));
  s->location = loc;
  s->unrollHint = unrollHint;
  return s;
}

StmtPtr Parser::parseDo() {
  auto loc = advance().location;  // 'do'
  StmtPtr body = parseStatement();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after do-while");
  ExprPtr cond = parseExpression();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semicolon, "after do-while");
  auto s = std::make_unique<DoStmt>(std::move(body), std::move(cond));
  s->location = loc;
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parseExpression() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  ExprPtr lhs = parseConditional();
  const auto loc = peek().location;
  if (accept(TokenKind::Equal)) {
    ExprPtr rhs = parseAssignment();
    auto e = std::make_unique<AssignExpr>(std::move(lhs), std::move(rhs));
    e->location = loc;
    return e;
  }
  BinaryOp op;
  if (compoundOpFor(peek().kind, &op)) {
    advance();
    ExprPtr rhs = parseAssignment();
    auto e = std::make_unique<AssignExpr>(op, std::move(lhs), std::move(rhs));
    e->location = loc;
    return e;
  }
  return lhs;
}

ExprPtr Parser::parseConditional() {
  ExprPtr cond = parseBinary(0);
  if (accept(TokenKind::Question)) {
    const auto loc = peek().location;
    ExprPtr thenExpr = parseAssignment();
    expect(TokenKind::Colon, "in conditional expression");
    ExprPtr elseExpr = parseConditional();
    auto e = std::make_unique<ConditionalExpr>(std::move(cond), std::move(thenExpr),
                                               std::move(elseExpr));
    e->location = loc;
    return e;
  }
  return cond;
}

ExprPtr Parser::parseBinary(int minPrecedence) {
  ExprPtr lhs = parseUnary();
  for (;;) {
    const int prec = precedenceOf(peek().kind);
    if (prec < 0 || prec < minPrecedence) return lhs;
    const TokenKind opTok = peek().kind;
    const auto loc = advance().location;
    ExprPtr rhs = parseBinary(prec + 1);
    auto e = std::make_unique<BinaryExpr>(binaryOpFor(opTok), std::move(lhs),
                                          std::move(rhs));
    e->location = loc;
    lhs = std::move(e);
  }
}

ExprPtr Parser::parseUnary() {
  const auto loc = peek().location;
  switch (peek().kind) {
    case TokenKind::Plus:
      advance();
      return parseUnary();
    case TokenKind::Minus: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::Minus, parseUnary());
      e->location = loc;
      return e;
    }
    case TokenKind::Tilde: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary());
      e->location = loc;
      return e;
    }
    case TokenKind::Exclaim: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::LogNot, parseUnary());
      e->location = loc;
      return e;
    }
    case TokenKind::PlusPlus: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::PreInc, parseUnary());
      e->location = loc;
      return e;
    }
    case TokenKind::MinusMinus: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::PreDec, parseUnary());
      e->location = loc;
      return e;
    }
    case TokenKind::Star: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::Deref, parseUnary());
      e->location = loc;
      return e;
    }
    case TokenKind::Amp: {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::AddrOf, parseUnary());
      e->location = loc;
      return e;
    }
    case TokenKind::KwSizeof: {
      advance();
      expect(TokenKind::LParen, "after sizeof");
      ParsedQuals quals = parseQualifiers();
      const ir::Type* t = parseTypeSpecifier(quals);
      expect(TokenKind::RParen, "after sizeof type");
      auto e = std::make_unique<SizeofExpr>(t);
      e->location = loc;
      return e;
    }
    case TokenKind::LParen:
      // Cast: '(' type ')' expr — including the OpenCL vector-construct form
      // '(float4)(a,b,c,d)'.
      if (startsType(1)) {
        advance();  // '('
        ParsedQuals quals = parseQualifiers();
        const ir::Type* t = parseTypeSpecifier(quals);
        expect(TokenKind::RParen, "after cast type");
        if (t->isVector() && check(TokenKind::LParen)) {
          advance();  // '('
          std::vector<ExprPtr> elems;
          if (!check(TokenKind::RParen)) {
            do {
              elems.push_back(parseAssignment());
            } while (accept(TokenKind::Comma));
          }
          expect(TokenKind::RParen, "after vector elements");
          // One element is a scalar splat cast; several are a construct.
          if (elems.size() > 1) {
            auto e = std::make_unique<VectorConstructExpr>(t, std::move(elems));
            e->location = loc;
            return e;
          }
          auto e = std::make_unique<CastExpr>(t, std::move(elems[0]));
          e->location = loc;
          return e;
        }
        auto e = std::make_unique<CastExpr>(t, parseUnary());
        e->location = loc;
        return e;
      }
      break;
    default:
      break;
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr e = parsePrimary();
  for (;;) {
    const auto loc = peek().location;
    if (accept(TokenKind::LBracket)) {
      ExprPtr index = parseExpression();
      expect(TokenKind::RBracket, "after subscript");
      auto idx = std::make_unique<IndexExpr>(std::move(e), std::move(index));
      idx->location = loc;
      e = std::move(idx);
    } else if (accept(TokenKind::Dot)) {
      if (!check(TokenKind::Identifier)) {
        diags_.error(peek().location, "expected member name after '.'");
        return e;
      }
      auto m = std::make_unique<MemberExpr>(std::move(e), advance().text, false);
      m->location = loc;
      e = std::move(m);
    } else if (accept(TokenKind::Arrow)) {
      if (!check(TokenKind::Identifier)) {
        diags_.error(peek().location, "expected member name after '->'");
        return e;
      }
      auto m = std::make_unique<MemberExpr>(std::move(e), advance().text, true);
      m->location = loc;
      e = std::move(m);
    } else if (accept(TokenKind::PlusPlus)) {
      auto u = std::make_unique<UnaryExpr>(UnaryOp::PostInc, std::move(e));
      u->location = loc;
      e = std::move(u);
    } else if (accept(TokenKind::MinusMinus)) {
      auto u = std::make_unique<UnaryExpr>(UnaryOp::PostDec, std::move(e));
      u->location = loc;
      e = std::move(u);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parsePrimary() {
  const Token& t = peek();
  switch (t.kind) {
    case TokenKind::IntLiteral: return parseIntLiteral();
    case TokenKind::FloatLiteral: return parseFloatLiteral();
    case TokenKind::KwTrue: {
      auto e = std::make_unique<BoolLiteralExpr>(true);
      e->location = advance().location;
      return e;
    }
    case TokenKind::KwFalse: {
      auto e = std::make_unique<BoolLiteralExpr>(false);
      e->location = advance().location;
      return e;
    }
    case TokenKind::CharLiteral: {
      const Token& tok = advance();
      // Value of the first character after the opening quote (escapes: \n \t \0 \\ \').
      std::uint64_t value = 0;
      if (tok.text.size() >= 3) {
        char c = tok.text[1];
        if (c == '\\' && tok.text.size() >= 4) {
          switch (tok.text[2]) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case '0': c = '\0'; break;
            default: c = tok.text[2]; break;
          }
        }
        value = static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      }
      auto e = std::make_unique<IntLiteralExpr>(value);
      e->location = tok.location;
      return e;
    }
    case TokenKind::Identifier: {
      const Token& tok = advance();
      if (check(TokenKind::LParen)) {
        advance();
        std::vector<ExprPtr> args;
        if (!check(TokenKind::RParen)) {
          do {
            args.push_back(parseAssignment());
          } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RParen, "after call arguments");
        auto e = std::make_unique<CallExpr>(tok.text, std::move(args));
        e->location = tok.location;
        return e;
      }
      auto e = std::make_unique<DeclRefExpr>(tok.text);
      e->location = tok.location;
      return e;
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr e = parseExpression();
      expect(TokenKind::RParen, "to close parenthesised expression");
      return e;
    }
    default:
      diags_.error(t.location, "expected expression, found " +
                                   std::string(tokenKindName(t.kind)));
      advance();
      return std::make_unique<IntLiteralExpr>(0);
  }
}

ExprPtr Parser::parseIntLiteral() {
  const Token& tok = advance();
  const std::string& s = tok.text;
  bool isUnsigned = false, isLong = false;
  std::size_t end = s.size();
  while (end > 0 && (s[end - 1] == 'u' || s[end - 1] == 'U' || s[end - 1] == 'l' ||
                     s[end - 1] == 'L')) {
    if (s[end - 1] == 'u' || s[end - 1] == 'U') isUnsigned = true;
    if (s[end - 1] == 'l' || s[end - 1] == 'L') isLong = true;
    --end;
  }
  const std::uint64_t value = std::strtoull(s.substr(0, end).c_str(), nullptr, 0);
  auto e = std::make_unique<IntLiteralExpr>(value, isUnsigned, isLong);
  e->location = tok.location;
  return e;
}

ExprPtr Parser::parseFloatLiteral() {
  const Token& tok = advance();
  std::string s = tok.text;
  bool isDouble = true;
  if (!s.empty() && (s.back() == 'f' || s.back() == 'F')) {
    isDouble = false;
    s.pop_back();
  }
  auto e = std::make_unique<FloatLiteralExpr>(std::strtod(s.c_str(), nullptr), isDouble);
  e->location = tok.location;
  return e;
}

// ---------------------------------------------------------------------------

std::unique_ptr<Program> parseOpenCl(
    const std::string& source, DiagnosticEngine& diags,
    const std::unordered_map<std::string, std::string>& defines) {
  PreprocessorOptions ppOpts;
  ppOpts.defines = defines;
  const std::string expanded = preprocess(source, diags, ppOpts);
  if (diags.hasErrors()) return nullptr;

  SourceManager sm(expanded);
  Lexer lexer(sm, diags);
  std::vector<Token> tokens = lexer.lexAll();
  if (diags.hasErrors()) return nullptr;

  Parser parser(std::move(tokens), diags);
  std::unique_ptr<Program> program = parser.parseProgram();
  if (diags.hasErrors()) return nullptr;

  Sema sema(diags);
  if (!sema.check(*program)) return nullptr;
  return program;
}

}  // namespace flexcl::ocl
