#include "ocl/ast.h"

namespace flexcl::ocl {

const char* builtinName(Builtin b) {
  switch (b) {
    case Builtin::None: return "<none>";
    case Builtin::GetGlobalId: return "get_global_id";
    case Builtin::GetLocalId: return "get_local_id";
    case Builtin::GetGroupId: return "get_group_id";
    case Builtin::GetGlobalSize: return "get_global_size";
    case Builtin::GetLocalSize: return "get_local_size";
    case Builtin::GetNumGroups: return "get_num_groups";
    case Builtin::GetWorkDim: return "get_work_dim";
    case Builtin::Barrier: return "barrier";
    case Builtin::MemFence: return "mem_fence";
    case Builtin::Sqrt: return "sqrt";
    case Builtin::Rsqrt: return "rsqrt";
    case Builtin::Exp: return "exp";
    case Builtin::Exp2: return "exp2";
    case Builtin::Log: return "log";
    case Builtin::Log2: return "log2";
    case Builtin::Pow: return "pow";
    case Builtin::Sin: return "sin";
    case Builtin::Cos: return "cos";
    case Builtin::Tan: return "tan";
    case Builtin::Fabs: return "fabs";
    case Builtin::Floor: return "floor";
    case Builtin::Ceil: return "ceil";
    case Builtin::Round: return "round";
    case Builtin::Fmax: return "fmax";
    case Builtin::Fmin: return "fmin";
    case Builtin::Fmod: return "fmod";
    case Builtin::Mad: return "mad";
    case Builtin::Fma: return "fma";
    case Builtin::Abs: return "abs";
    case Builtin::Max: return "max";
    case Builtin::Min: return "min";
    case Builtin::Clamp: return "clamp";
    case Builtin::Select: return "select";
    case Builtin::Hypot: return "hypot";
    case Builtin::Atan: return "atan";
    case Builtin::Atan2: return "atan2";
  }
  return "<invalid>";
}

const FunctionDecl* Program::findFunction(const std::string& name) const {
  for (const auto& f : functions) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

std::vector<const FunctionDecl*> Program::kernels() const {
  std::vector<const FunctionDecl*> result;
  for (const auto& f : functions) {
    if (f->isKernel) result.push_back(f.get());
  }
  return result;
}

}  // namespace flexcl::ocl
