#include "model/pe_model.h"

#include <algorithm>
#include <cmath>

namespace flexcl::model {

sched::ResourceBudget peBudget(const Device& device, const DesignPoint& design) {
  sched::ResourceBudget budget;
  const int pes = std::max(1, design.peParallelism * design.vectorWidth);
  const int cus = std::max(1, design.numComputeUnits);
  // The CU's local-memory ports and global issue slots are shared by its PEs;
  // the chip's DSPs are shared by all CUs and PEs.
  budget.localReadPorts = std::max(1, device.localReadPorts() / pes);
  budget.localWritePorts = std::max(1, device.localWritePorts() / pes);
  budget.globalPorts = std::max(1, device.globalPortsPerCu / pes);
  budget.dspUnits = std::max(4, device.totalDsp / (cus * pes));
  return budget;
}

PeModel buildPeModel(const cdfg::KernelAnalysis& analysis, const Device& device,
                     const DesignPoint& design, bool smsRefinement) {
  PeModel pe;
  pe.localReads = analysis.totals.localReads;
  pe.localWrites = analysis.totals.localWrites;
  pe.dspUnits = analysis.totals.dspUnits;
  pe.pipelined = design.workItemPipeline;

  if (!design.workItemPipeline) {
    // No pipelining: a PE processes one work-item at a time.
    pe.depth = analysis.totals.latency;
    pe.iiComp = std::max(1.0, analysis.totals.latency);
    pe.recMii = pe.resMii = pe.mii = static_cast<int>(pe.iiComp);
    return pe;
  }

  const sched::ResourceBudget budget = peBudget(device, design);
  if (!smsRefinement) {
    // Ablation: take the optimistic MII as the II (skip SMS's step 2).
    pe.recMii = sched::computeRecMII(analysis.pipeline);
    pe.resMii = sched::computeResMII(analysis.pipeline, budget);
    pe.mii = std::max(pe.recMii, pe.resMii);
    pe.iiComp = pe.mii;
    pe.depth = analysis.totals.latency;
  } else {
    const sched::SmsResult sms =
        sched::swingModuloSchedule(analysis.pipeline, budget);
    pe.recMii = sms.recMii;
    pe.resMii = sms.resMii;
    pe.mii = sms.mii;
    pe.iiComp = sms.ii;
    pe.depth = std::max<double>(sms.depth, analysis.totals.latency);
  }

  // Each barrier forces all in-flight work-items to drain before the next
  // pipeline region fills: approximated as one extra pipeline turn per
  // barrier, i.e. the effective II grows by a factor of (#barriers + 1).
  if (analysis.barrierCount > 0) {
    pe.iiComp *= (analysis.barrierCount + 1);
  }
  return pe;
}

double peLatency(const PeModel& pe, double workItemsPerGroup) {
  // Eq. 1: L = II * (N - 1) + D.
  return pe.iiComp * std::max(0.0, workItemsPerGroup - 1.0) + pe.depth;
}

}  // namespace flexcl::model
