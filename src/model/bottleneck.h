// Bottleneck identification and code-restructuring hints (paper §1: FlexCL
// "helps to identify the performance bottlenecks on FPGAs [and] give code
// restructuring hints").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/flexcl.h"

namespace flexcl::model {

enum class Bottleneck : std::uint8_t {
  MemoryLatency,     ///< L_mem^wi dominates II_wi (pipeline) or T (barrier)
  ComputeRecurrence, ///< RecMII limits the work-item pipeline
  LocalMemoryPorts,  ///< ResMII or N_PE clamped by BRAM ports
  DspBudget,         ///< ResMII or N_PE clamped by DSPs
  WorkGroupDispatch, ///< CU parallelism clamped by ΔL_schedule
  PipelineDisabled,  ///< no work-item pipelining requested
  Balanced,
};

const char* bottleneckName(Bottleneck b);

struct BottleneckReport {
  Bottleneck primary = Bottleneck::Balanced;
  /// Share of the predicted time attributed to the primary bottleneck (0-1).
  double severity = 0;
  std::vector<std::string> hints;
  [[nodiscard]] std::string str() const;
};

/// Diagnoses an estimate and produces actionable hints.
BottleneckReport diagnose(const Estimate& estimate, const DesignPoint& design);

}  // namespace flexcl::model
