// Chip resource estimation for a design point.
//
// The paper's computation model already tracks the resources that constrain
// performance (DSP blocks, BRAM, ports — §3.3); this module exposes them as a
// first-class area report so the explorer can reject configurations that do
// not fit the chip, and users can see *why* a design was clamped. This is the
// natural companion of the performance estimate during DSE (paper §1: "help
// the designers to quickly identify the solutions subject to a user defined
// performance constraint").
#pragma once

#include <cstdint>
#include <string>

#include "cdfg/cdfg.h"
#include "model/design_point.h"
#include "model/device.h"

namespace flexcl::model {

struct ResourceEstimate {
  /// DSP blocks consumed by one PE's datapath.
  int dspPerPe = 0;
  /// Local (BRAM) bytes per compute unit.
  std::uint64_t bramBytesPerCu = 0;
  /// Totals for the requested replication (P PEs x C CUs).
  int totalDsp = 0;
  std::uint64_t totalBramBytes = 0;
  /// Utilisation against the device (1.0 = 100%).
  double dspUtilisation = 0;
  double bramUtilisation = 0;
  /// True when the requested replication fits on the chip.
  bool fits = true;
  /// The largest CU count that fits with the requested PE parallelism.
  int maxComputeUnitsThatFit = 1;

  [[nodiscard]] std::string str() const;
};

/// Estimates the footprint of `design` for an analysed kernel.
ResourceEstimate estimateResources(const cdfg::KernelAnalysis& analysis,
                                   const Device& device, const DesignPoint& design);

}  // namespace flexcl::model
