#include "model/cu_model.h"

#include <algorithm>
#include <cmath>

namespace flexcl::model {

int effectivePeParallelism(const PeModel& pe, const Device& device,
                           const DesignPoint& design, CuModel::Limiter* limiter) {
  const int requested = std::max(1, design.peParallelism * design.vectorWidth);
  auto result = static_cast<double>(requested);
  CuModel::Limiter why = CuModel::Limiter::Requested;

  // Per eq. 6: each PE consumes N_read/II read ports per cycle; the CU's
  // ports bound how many PEs it can feed (same for writes and DSP blocks,
  // where DSPs are resident per PE datapath).
  const double ii = std::max(1.0, pe.iiComp);
  if (pe.localReads > 0) {
    const double supported = device.localReadPorts() * ii / pe.localReads;
    if (supported < result) {
      result = supported;
      why = CuModel::Limiter::LocalRead;
    }
  }
  if (pe.localWrites > 0) {
    const double supported = device.localWritePorts() * ii / pe.localWrites;
    if (supported < result) {
      result = supported;
      why = CuModel::Limiter::LocalWrite;
    }
  }
  if (pe.dspUnits > 0) {
    const double dspPerCu = static_cast<double>(device.totalDsp) /
                            std::max(1, design.numComputeUnits);
    const double supported = dspPerCu / pe.dspUnits;
    if (supported < result) {
      result = supported;
      why = CuModel::Limiter::Dsp;
    }
  }

  if (limiter) *limiter = why;
  return std::max(1, static_cast<int>(std::floor(result)));
}

CuModel buildCuModel(const PeModel& pe, const Device& device,
                     const DesignPoint& design) {
  CuModel cu;
  cu.effectivePes = effectivePeParallelism(pe, device, design, &cu.limiter);
  const double nWi = static_cast<double>(design.workGroupItems());
  const double nPe = cu.effectivePes;
  // Eq. 5: L = II * ceil((N_wi - N_PE) / N_PE) + D.
  const double interleaves = std::ceil(std::max(0.0, nWi - nPe) / nPe);
  cu.latency = pe.iiComp * interleaves + pe.depth;
  return cu;
}

}  // namespace flexcl::model
