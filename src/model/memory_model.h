// Global memory model (paper §3.4, Table 1, eq. 9).
//
// The profiled per-work-item access trace is coalesced (factor f), mapped to
// banks under the byte-interleaved layout, classified into the eight
// patterns against per-bank row-buffer state, and priced with the
// micro-benchmark-calibrated ΔT table. L_mem^wi is the per-work-item average.
//
// Classification order matters: in hardware, the access streams of the
// concurrently running work-items (one per PE lane across all CUs) interleave
// at the memory controller, which is what turns would-be row hits into
// misses. The model therefore classifies the trace in the pipelined issue
// order for the design's concurrency — this is the design-dependent part of
// the paper's "get the global memory access patterns for each bank".
#pragma once

#include <vector>

#include "dram/calibrate.h"
#include "dram/pattern.h"
#include "interp/profiler.h"

namespace flexcl::model {

struct MemoryModel {
  /// N_* of Table 1, averaged per work-item (post-coalescing).
  dram::PatternCounts perWorkItem;
  /// Coalesced global accesses per work-item.
  double accessesPerWorkItem = 0;
  /// L_mem^wi (eq. 9).
  double lMemWi = 0;
  /// Raw (pre-coalescing) accesses per work-item, for diagnostics.
  double rawAccessesPerWorkItem = 0;
  /// DRAM service demand of ONE work-item's chain: the busiest bank's (or
  /// the bus's) occupancy per work-item. No matter how many engines overlap,
  /// the memory system cannot retire work-items faster than this.
  double serviceDemandPerWi = 0;
  /// Throughput lower bound on the work-item initiation interval: with
  /// `concurrency` chains in flight, the busiest bank (or the data bus) must
  /// serve `concurrency` work-items' demand every II cycles, so
  /// II >= concurrency * serviceDemandPerWi.
  double iiThroughputBound = 0;
  /// Queueing delay per work-item (diagnostic): average difference between
  /// the effective chain span under the design's concurrency and the
  /// contention-free ΔT sum.
  double queueingPerWi = 0;
  /// Effective memory chain span of every profiled work-item: eq. 9
  /// evaluated with per-bank service occupancy under the design's
  /// concurrency, so inter-lane queueing is priced in.
  std::vector<double> perWiChainSpan;

  /// Memory-side II, as the *expectation over work-items* of
  /// max(other, span_i): Jensen's inequality makes max(other, mean span) an
  /// underestimate when work-items diverge (e.g. bfs frontiers), so the
  /// distribution is carried instead of its mean.
  [[nodiscard]] double expectedIiMax(double other) const;
};

struct MemoryModelOptions {
  /// Coalesce consecutive accesses (§3.4); off = one DRAM access per raw
  /// load/store (the ablation baseline).
  bool coalesce = true;
};

/// `concurrency` is the number of work-item access chains in flight
/// (effective PEs x effective CUs); 1 reproduces a purely sequential
/// classification (the ablation baseline).
MemoryModel buildMemoryModel(const interp::KernelProfile& profile,
                             const dram::DramConfig& dramConfig,
                             const dram::PatternLatencyTable& deltaT,
                             int concurrency = 1,
                             const MemoryModelOptions& options = {});

}  // namespace flexcl::model
