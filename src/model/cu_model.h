// Compute unit model (paper §3.3.2, eqs. 5-6).
#pragma once

#include <cstdint>

#include "model/pe_model.h"

namespace flexcl::model {

struct CuModel {
  /// N_PE: effective PE parallelism after local-port / DSP constraints.
  int effectivePes = 1;
  /// L_comp^CU for one work-group (eq. 5).
  double latency = 0;
  /// Which constraint clamped N_PE (diagnostics for the bottleneck report).
  enum class Limiter : std::uint8_t { Requested, LocalRead, LocalWrite, Dsp } limiter =
      Limiter::Requested;
};

/// Eq. 6: PEs within a CU share its local memory ports and the chip's DSPs;
/// the effective parallelism is the requested P clamped by the rate at which
/// shared resources can feed the PEs.
int effectivePeParallelism(const PeModel& pe, const Device& device,
                           const DesignPoint& design,
                           CuModel::Limiter* limiter = nullptr);

/// Eq. 5: work-group latency on one CU with N_PE-way work-item interleaving.
CuModel buildCuModel(const PeModel& pe, const Device& device,
                     const DesignPoint& design);

}  // namespace flexcl::model
