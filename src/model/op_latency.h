// Per-operation FPGA IP-core latencies.
//
// The paper obtains each IR operation's latency "through micro-benchmark
// profiling" of the synthesised IP cores (§3.2). Offline we cannot run
// SDAccel, so the table below is a curated equivalent calibrated to typical
// Vivado HLS IP latencies at 200 MHz on Virtex-7-class fabric; the system
// simulator perturbs each hardware *instance* around these averages, which
// reproduces the paper's first stated source of model error (§4.2).
#pragma once

#include <array>
#include <cstdint>

#include "ir/ir.h"

namespace flexcl::model {

/// Latency (cycles) and DSP cost of each IR operation on a given device
/// generation. Copyable value type.
class OpLatencyDb {
 public:
  /// Latency in cycles of one instruction instance. Global loads/stores
  /// return only their *issue* latency: their true cost is carried by the
  /// global memory model (§3.4) and integrated per communication mode (§3.5).
  [[nodiscard]] int latencyOf(const ir::Instruction& inst) const;

  /// DSP blocks consumed by the operation's datapath (0 for LUT-only ops).
  [[nodiscard]] int dspCostOf(const ir::Instruction& inst) const;

  /// Uniform scale applied to floating-point op latencies; used to model a
  /// different fabric generation (UltraScale KU060 runs the same IPs with
  /// shorter pipelines).
  double floatLatencyScale = 1.0;
  /// Latency of a local (BRAM) access.
  int localMemLatency = 2;
  /// Issue latency charged to a global access inside the datapath.
  int globalIssueLatency = 1;

  static OpLatencyDb virtex7();
  static OpLatencyDb ku060();

  /// Returns a copy whose per-opcode latencies are deterministically
  /// perturbed around this table's averages. Models the synthesis tool
  /// realising each IP with an implementation the programmer cannot control
  /// (§4.2's first error source): the model sees the averages, the
  /// "hardware" (system simulator) sees one concrete realisation per design.
  [[nodiscard]] OpLatencyDb perturbed(std::uint64_t seed, double spread) const;

 private:
  [[nodiscard]] int scaledFloat(int cycles) const;
  [[nodiscard]] int baseLatency(const ir::Instruction& inst) const;
  /// Per-opcode multiplicative factors (1.0 = table average).
  std::array<double, 64> opcodeScale_ = [] {
    std::array<double, 64> a{};
    a.fill(1.0);
    return a;
  }();
  [[nodiscard]] int applyScale(ir::Opcode op, int cycles) const;
};

}  // namespace flexcl::model
