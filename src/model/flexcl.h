// FlexCL: the integrated analytical performance model (paper §3.5).
//
// Ties together kernel analysis, the computation models (PE/CU/kernel) and
// the global memory model, integrating them according to the communication
// mode: barrier (eq. 10) or pipeline (eqs. 11-12). The estimate is produced
// in cycles at the device's kernel clock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/dataflow/trip_count.h"
#include "analysis/raceverify/raceverify.h"
#include "analysis/staticprof/staticprof.h"
#include "analysis/symbolic.h"
#include "cdfg/cdfg.h"
#include "model/kernel_model.h"
#include "model/memory_model.h"
#include "runtime/cache.h"

namespace flexcl::model {

/// Exact additive decomposition of a prediction's `cycles` — the data behind
/// `flexcl explain` (DESIGN.md §9). The model's integration overlaps memory
/// with computation (eqs. 10-12); the breakdown resolves that overlap by
/// attributing overlapped cycles to the side that binds and exposing only
/// the remainder of the other. The invariant `total() == cycles` (to fp
/// rounding) holds for every ok estimate, in both communication modes and
/// under every ModelOptions ablation — asserted over all bundled workloads
/// in tests/test_obs.cpp.
struct CycleBreakdown {
  /// Compute-bound cycles: steady-state issue paced by II_comp (pipeline
  /// mode) or the kernel compute latency L_comp (barrier mode).
  double compute = 0;
  /// Exposed memory cycles: pipeline-mode stall beyond the compute II
  /// (II_wi - II_comp per initiation), or the serialised transfer phase of
  /// barrier mode (eq. 10's L_mem term).
  double memory = 0;
  /// Pipeline fill + drain: the depth paid per wave (or once per CU with
  /// work-group pipelining). Zero in barrier mode (depth is inside L_CU).
  double fillDrain = 0;
  /// Work-group dispatch overhead: the ΔL_schedule term (eqs. 7-8).
  double dispatch = 0;

  [[nodiscard]] double total() const {
    return compute + memory + fillDrain + dispatch;
  }
  /// Largest component's name: "compute" | "memory" | "fill-drain" |
  /// "dispatch" ("none" when all are zero).
  [[nodiscard]] const char* binding() const;
};

struct Estimate {
  bool ok = false;
  std::string error;

  double cycles = 0;
  double milliseconds = 0;
  CommMode mode = CommMode::Pipeline;
  /// Where the cycles go (see CycleBreakdown); zero-filled when !ok.
  CycleBreakdown breakdown;

  // Sub-model results, exposed for the bottleneck report and the benches.
  PeModel pe;
  CuModel cu;
  KernelComputeModel kernelCompute;
  MemoryModel memory;
  /// II_wi = max(L_mem^wi, II_comp^wi) (eq. 12) — pipeline mode only.
  double iiWi = 0;
  int barrierCount = 0;
  std::uint64_t totalWorkItems = 0;
};

/// Inputs describing one launch (kernel + data + geometry). Buffers are only
/// read (profiling copies them).
struct LaunchInfo {
  const ir::Function* fn = nullptr;
  interp::NdRange range;  ///< local sizes here are overridden per design point
  std::vector<interp::KernelArg> args;
  const std::vector<std::vector<std::uint8_t>>* buffers = nullptr;
};

/// Feature switches for the ablation study (bench_ablation; DESIGN.md §4).
/// All on by default — turning one off quantifies that design choice.
/// Profiler-free analysis inputs for one (kernel, effective NDRange, scalar
/// args): the symbolic summary, launch-seeded leaf ranges and the dataflow
/// trip-count tier. Cached alongside the profile cache and threaded into
/// cdfg::analyzeKernel via AnalyzeOptions.
struct StaticInputs {
  analysis::KernelSummary summary;
  analysis::dataflow::LeafRanges leafRanges;
  std::vector<std::int64_t> staticTrips;  ///< per loopId, -1 unresolved
};

struct ModelOptions {
  /// Eight-pattern ΔT table (Table 1) vs one average latency for all accesses.
  bool eightPatterns = true;
  /// SMS refinement of the II (paper §3.3.1 step 2) vs stopping at MII.
  bool smsRefinement = true;
  /// Model the work-group dispatch overhead ΔL_schedule (eqs. 7-8).
  bool dispatchOverhead = true;
  /// Model SDAccel's access coalescing (§3.4).
  bool coalescing = true;
  /// Classify patterns in the pipelined issue order (design concurrency)
  /// instead of sequential program order.
  bool interferenceAwareClassification = true;
  /// Memoize the factorized estimation stages (kernel analysis, PE model, CU
  /// model) across design points (DESIGN.md §11). The stages are pure
  /// functions of their keys, so results are bit-identical with the cache off
  /// (asserted over all bundled workloads in tests/test_model.cpp); off is
  /// only useful to measure the factorization's speedup.
  bool analysisCache = true;
  /// Synthesize profiles statically (analysis::staticprof) and consume them
  /// when the exactness verdict is Exact, falling back to the profiling
  /// interpreter otherwise. Exact synthesized profiles are event-identical
  /// to interpreted ones, so estimates are bit-identical either way
  /// (asserted over all bundled workloads in tests/test_staticprof.cpp);
  /// off forces the interpreter tier for every kernel.
  bool staticProfiles = true;
};

class FlexCl {
 public:
  explicit FlexCl(Device device, ModelOptions options = {});

  [[nodiscard]] const Device& device() const { return device_; }
  [[nodiscard]] const dram::PatternLatencyTable& patternTable() const {
    return deltaT_;
  }

  /// Estimates the execution of `launch` under `design`. The work-group size
  /// of the design point replaces the launch range's local size. Profiles
  /// (a few work-groups on the interpreter) are cached per (kernel, wg).
  /// Thread-safe: concurrent estimates (the parallel Explorer) share the
  /// profile cache; a profile missing under contention is computed once.
  Estimate estimate(const LaunchInfo& launch, const DesignPoint& design);

  /// Access to the cached profile / the (cached) kernel analysis for one
  /// design point (bottleneck reports). Both are thread-safe.
  const interp::KernelProfile& profileFor(const LaunchInfo& launch,
                                          const DesignPoint& design);
  cdfg::KernelAnalysis analysisFor(const LaunchInfo& launch,
                                   const DesignPoint& design);

  /// Copy-free variant of analysisFor: the cache entry itself. The pointer
  /// stays valid for the FlexCl's lifetime (the cache is unbounded); with
  /// `ModelOptions::analysisCache` off it is a fresh, uncached computation.
  std::shared_ptr<const cdfg::KernelAnalysis> analysisShared(
      const LaunchInfo& launch, const DesignPoint& design);

  /// Identity of the analysis-cache entry `design` maps to: two designs with
  /// equal signatures share one `cdfg::analyzeKernel` run. The key spells out
  /// exactly what the schedule analysis depends on — the kernel fingerprint,
  /// the effective NDRange and scalar arguments (trip counts, leaf ranges),
  /// the inner-loop-pipeline flag, and the canonicalized per-PE resource
  /// budget — and deliberately NOT the CU count or communication mode, which
  /// is what lets a CU×mode sweep compute each schedule once.
  using StaticKey =
      std::tuple<const ir::Function*, std::string, unsigned,
                 std::uint64_t, std::uint64_t, std::uint64_t,
                 std::uint64_t, std::uint64_t, std::uint64_t,
                 std::vector<std::int64_t>>;
  using AnalysisSignature = std::tuple<StaticKey, bool, int, int, int, int>;
  AnalysisSignature analysisSignatureFor(const LaunchInfo& launch,
                                         const DesignPoint& design);

  /// Static-analysis inputs (summary + seeded leaf ranges + dataflow trip
  /// counts) for the effective launch of a design point. Cached per
  /// (kernel, NDRange, scalar args); thread-safe like profileFor.
  const StaticInputs& staticInputsFor(const LaunchInfo& launch,
                                      const DesignPoint& design);

  /// Exactness verdict of the static-profile tier for the effective launch
  /// of `design` (the lint/explain surface). Cached per ProfileKey; with
  /// `ModelOptions::staticProfiles` off the verdict is
  /// Unsupported("static tier disabled").
  analysis::staticprof::Verdict staticVerdict(const LaunchInfo& launch,
                                              const DesignPoint& design);

  /// Race-verifier verdict (DESIGN.md §15) for the effective launch of
  /// `design`. Cached per ProfileKey (same slot identity as profiles and
  /// static verdicts); the reference stays valid for the FlexCl's lifetime.
  const analysis::raceverify::RaceVerdict& raceVerdictFor(
      const LaunchInfo& launch, const DesignPoint& design);

  /// Persistence hooks for the serve store (DESIGN.md §12). seedProfile
  /// plants a profile deserialized from disk for the effective launch
  /// geometry of `design` (marked warm — later hits count into
  /// CounterSnapshot::warmHits); false when the slot is already occupied.
  /// forEachProfile exports every cached profile as
  /// fn(local0, local1, local2, profile) — the local size is the
  /// process-stable half of ProfileKey (the store mixes it with the kernel
  /// content hash; the fn pointer half is meaningless across processes).
  bool seedProfile(const LaunchInfo& launch, const DesignPoint& design,
                   interp::KernelProfile profile);
  template <typename Fn>
  void forEachProfile(Fn&& fn) const {
    profiles_.forEach(
        [&](const ProfileKey& key, const interp::KernelProfile& profile) {
          fn(std::get<3>(key), std::get<4>(key), std::get<5>(key), profile);
        });
  }

  /// Race-verdict analogues of seedProfile / forEachProfile (the store's
  /// Family::Race records).
  bool seedRaceVerdict(const LaunchInfo& launch, const DesignPoint& design,
                       analysis::raceverify::RaceVerdict verdict);
  template <typename Fn>
  void forEachRaceVerdict(Fn&& fn) const {
    races_.forEach([&](const ProfileKey& key,
                       const analysis::raceverify::RaceVerdict& verdict) {
      fn(std::get<3>(key), std::get<4>(key), std::get<5>(key), verdict);
    });
  }

  /// Hit/miss counters of the profile cache (runtime::Stats reporting).
  [[nodiscard]] runtime::CounterSnapshot profileCacheCounters() const {
    return profiles_.counters();
  }
  /// Hit/miss counters of the kernel-analysis cache. A design-space sweep's
  /// miss count equals the number of distinct AnalysisSignatures it touched —
  /// the factorization claim of DESIGN.md §11 is asserted on this.
  [[nodiscard]] runtime::CounterSnapshot analysisCacheCounters() const {
    return analyses_.counters();
  }

  [[nodiscard]] const ModelOptions& options() const { return options_; }

  /// Builds the NDRange actually launched for a design point (the design's
  /// work-group size clamped to the launch's global size).
  static interp::NdRange rangeFor(const LaunchInfo& launch,
                                  const DesignPoint& design);

 private:
  /// Per-kernel saturation totals for budget canonicalization: the summed
  /// resource demand of every instruction, per schedulable resource class
  /// (LocalRead, LocalWrite, GlobalPort, Dsp — the ResourceBudget fields).
  /// Any budget cap at or above the kernel's total demand behaves exactly
  /// like an infinite cap in every budget consumer (list scheduler hazard
  /// checks, SMS reservation rows, ResMII ceil(demand/cap)), so clamping the
  /// cap to the total maps all such budgets onto one cache key. The one
  /// consumer where a cap above the per-iteration demand still matters is
  /// the unroll resource bound ceil(u * units / cap), hence `saturable` is
  /// false (canonicalization disabled) when any region carries an unroll
  /// hint.
  struct BudgetSaturation {
    bool saturable = false;
    int totals[4] = {0, 0, 0, 0};  ///< LocalRead, LocalWrite, GlobalPort, Dsp
  };

  const BudgetSaturation& saturationFor(const LaunchInfo& launch);
  /// peBudget clamped per `saturationFor` — the budget component of
  /// AnalysisSignature. Scheduling results are identical under the original
  /// and the canonical budget.
  sched::ResourceBudget canonicalBudgetFor(const LaunchInfo& launch,
                                           const DesignPoint& design);
  std::shared_ptr<const cdfg::KernelAnalysis> analysisSharedByKey(
      const AnalysisSignature& key, const LaunchInfo& launch,
      const DesignPoint& design);
  /// Memoized buildPeModel / buildCuModel (keys derived from the analysis
  /// signature; see DESIGN.md §11 for the invalidation table).
  PeModel peModelFor(const AnalysisSignature& akey,
                     const cdfg::KernelAnalysis& analysis,
                     const Device& modelDevice, const DesignPoint& effective);
  CuModel cuModelFor(const AnalysisSignature& akey, const PeModel& pe,
                     const Device& modelDevice, const DesignPoint& effective);

  Device device_;
  ModelOptions options_;
  dram::PatternLatencyTable deltaT_;
  // Profile cache. The key mixes the function pointer with its name and
  // instruction count: allocators reuse addresses after a kernel is
  // destroyed, so the pointer alone would alias unrelated kernels. The cache
  // is unbounded, so the references profileFor hands out stay valid for the
  // FlexCl's lifetime.
  using ProfileKey = std::tuple<const ir::Function*, std::string, unsigned,
                                std::uint64_t, std::uint64_t, std::uint64_t>;
  runtime::MemoCache<ProfileKey, interp::KernelProfile> profiles_;
  /// Verdict of the static tier per profile slot. Seeded by profileFor when
  /// it synthesizes; computed on demand by staticVerdict for profiles that
  /// arrived via seedProfile (store-warmed) and never went through the tier.
  runtime::MemoCache<ProfileKey, analysis::staticprof::Verdict> verdicts_;
  /// Race-verifier verdict per profile slot (raceVerdictFor). Seeded from
  /// the store by seedRaceVerdict, computed on demand otherwise.
  runtime::MemoCache<ProfileKey, analysis::raceverify::RaceVerdict> races_;
  // Static-analysis cache. Same aliasing defence as ProfileKey, plus the
  // full geometry and the integer scalar arguments (both feed the resolved
  // trip counts and leaf ranges). StaticKey is declared in the public
  // section (it is the base of AnalysisSignature).
  runtime::MemoCache<StaticKey, StaticInputs> statics_;
  // Factorized-stage caches (DESIGN.md §11). All unbounded like profiles_.
  using FnKey = std::tuple<const ir::Function*, std::string, unsigned>;
  runtime::MemoCache<FnKey, BudgetSaturation> saturations_;
  runtime::MemoCache<AnalysisSignature, cdfg::KernelAnalysis> analyses_;
  using PeKey = std::tuple<AnalysisSignature, bool>;  ///< + workItemPipeline
  runtime::MemoCache<PeKey, PeModel> peModels_;
  /// + requested PEs and the canonical DSP-per-CU supply (the only channels
  /// through which the CU count reaches eq. 6).
  using CuKey = std::tuple<PeKey, int, double>;
  runtime::MemoCache<CuKey, CuModel> cuModels_;
};

}  // namespace flexcl::model
