#include "model/resource_estimate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace flexcl::model {

std::string ResourceEstimate::str() const {
  std::ostringstream os;
  os << "DSP " << totalDsp << " (" << static_cast<int>(dspUtilisation * 100)
     << "%), BRAM " << totalBramBytes / 1024 << " KiB ("
     << static_cast<int>(bramUtilisation * 100) << "%)"
     << (fits ? "" : " — DOES NOT FIT") << ", max CUs at this P: "
     << maxComputeUnitsThatFit;
  return os.str();
}

ResourceEstimate estimateResources(const cdfg::KernelAnalysis& analysis,
                                   const Device& device,
                                   const DesignPoint& design) {
  ResourceEstimate r;
  // Every DSP-consuming op instance is its own IP in the PE datapath. Blocks
  // hold the *static* instance counts (loop bodies counted once — iterations
  // share the body's hardware), unlike totals.dspUnits which is loop-weighted
  // for throughput purposes.
  int staticDsp = 0;
  for (const cdfg::BlockInfo& block : analysis.blocks) {
    staticDsp += block.dspUnits;
  }
  r.dspPerPe = staticDsp;

  for (const ir::Instruction* a : analysis.fn->localAllocas) {
    r.bramBytesPerCu += a->allocaType->sizeInBytes();
  }

  const int pes = std::max(1, design.peParallelism * design.vectorWidth);
  const int cus = std::max(1, design.numComputeUnits);
  r.totalDsp = r.dspPerPe * pes * cus;
  r.totalBramBytes = r.bramBytesPerCu * static_cast<std::uint64_t>(cus);

  r.dspUtilisation =
      device.totalDsp > 0 ? static_cast<double>(r.totalDsp) / device.totalDsp : 0;
  r.bramUtilisation = device.bramBytes() > 0
                          ? static_cast<double>(r.totalBramBytes) /
                                static_cast<double>(device.bramBytes())
                          : 0;
  r.fits = r.dspUtilisation <= 1.0 && r.bramUtilisation <= 1.0;

  std::uint64_t maxCus = 16;
  if (r.dspPerPe > 0) {
    maxCus = std::min<std::uint64_t>(
        maxCus, static_cast<std::uint64_t>(device.totalDsp) /
                    static_cast<std::uint64_t>(std::max(1, r.dspPerPe * pes)));
  }
  if (r.bramBytesPerCu > 0) {
    maxCus = std::min(maxCus, device.bramBytes() / r.bramBytesPerCu);
  }
  r.maxComputeUnitsThatFit = static_cast<int>(std::max<std::uint64_t>(1, maxCus));
  return r;
}

}  // namespace flexcl::model
