#include "model/device.h"

namespace flexcl::model {

Device Device::virtex7() {
  Device d;
  d.name = "virtex7-xc7vx690t";
  d.opLatencies = OpLatencyDb::virtex7();
  d.dram = dram::DramConfig{};  // 8 banks, 1 KB rows (ADM-PCIE-7V3 DDR3)
  d.totalDsp = 3600;
  d.totalBram36 = 1470;
  d.frequencyMhz = 200.0;
  return d;
}

Device Device::ku060() {
  Device d;
  d.name = "ultrascale-ku060";
  d.opLatencies = OpLatencyDb::ku060();
  d.dram = dram::DramConfig{};
  // The NAS-120A pairs the KU060 with DDR3 behind a slightly slower
  // controller path.
  d.dram.controllerOverhead = 7;
  d.totalDsp = 2760;
  d.totalBram36 = 1080;
  d.frequencyMhz = 200.0;
  d.workGroupDispatchOverhead = 36;
  return d;
}

}  // namespace flexcl::model
