// Cross-architecture comparison: a roofline-style GPU estimate (paper §1:
// FlexCL can "make performance comparison across heterogenous architecture
// (GPUs v.s. FPGAs)").
//
// This is intentionally a coarse first-order model — SIMT occupancy x issue
// rate for compute, transaction-counted DRAM bandwidth for memory, the
// classic roofline max of the two — because its job is architecture
// *selection*, not GPU tuning: it reuses the same kernel analysis and memory
// profile FlexCL already has, so a designer can ask "would this kernel even
// be worth porting?" before committing to either platform.
#pragma once

#include <cstdint>
#include <string>

#include "cdfg/cdfg.h"
#include "interp/profiler.h"

namespace flexcl::model {

struct GpuDevice {
  std::string name;
  int sms = 15;                  ///< streaming multiprocessors
  int warpSize = 32;
  /// Scalar-op issue throughput per SM (ops/cycle): CUDA cores per SM for
  /// simple ops; long-latency ops are divided down via opWeight below.
  double opsPerCyclePerSm = 192;
  double frequencyMhz = 900;
  double dramBandwidthGBs = 250;
  /// Minimum DRAM transaction size (coalescing granularity).
  std::uint32_t transactionBytes = 32;
  /// Fixed kernel-launch overhead in microseconds.
  double launchOverheadUs = 5.0;

  /// A 2013-era big Kepler (GTX-780/K20-class), contemporary with the
  /// paper's Virtex-7 board.
  static GpuDevice kepler();
};

struct GpuEstimate {
  bool ok = false;
  double milliseconds = 0;
  double computeMs = 0;   ///< SIMT issue-limited time
  double memoryMs = 0;    ///< bandwidth-limited time
  bool memoryBound = false;
  double totalOps = 0;
  double totalBytes = 0;  ///< DRAM traffic after transaction rounding
};

/// Estimates `range` work-items of the analysed kernel on `gpu`, reusing the
/// FPGA flow's per-work-item op totals and memory profile.
GpuEstimate estimateGpu(const cdfg::KernelAnalysis& analysis,
                        const interp::KernelProfile& profile,
                        const interp::NdRange& range, const GpuDevice& gpu);

}  // namespace flexcl::model
