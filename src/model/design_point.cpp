#include "model/design_point.h"

#include <sstream>

#include "support/rng.h"

namespace flexcl::model {

const char* commModeName(CommMode mode) {
  switch (mode) {
    case CommMode::Barrier: return "barrier";
    case CommMode::Pipeline: return "pipeline";
  }
  return "?";
}

std::string DesignPoint::str() const {
  std::ostringstream os;
  os << "wg=" << workGroupSize[0];
  if (workGroupSize[1] > 1 || workGroupSize[2] > 1) {
    os << 'x' << workGroupSize[1] << 'x' << workGroupSize[2];
  }
  os << " pipe=" << (workItemPipeline ? "on" : "off");
  if (workGroupPipeline) os << "+wg";
  os << " P=" << peParallelism
     << " CU=" << numComputeUnits << " mode=" << commModeName(commMode);
  if (vectorWidth > 1) os << " vec=" << vectorWidth;
  if (innerLoopPipeline) os << " loop-pipe";
  return os.str();
}

std::uint64_t DesignPoint::stableId() const {
  std::uint64_t h = stableHash(workGroupSize.data(), sizeof(workGroupSize));
  h = stableHashCombine(h, workItemPipeline ? 1 : 0);
  h = stableHashCombine(h, workGroupPipeline ? 2 : 0);
  h = stableHashCombine(h, static_cast<std::uint64_t>(peParallelism));
  h = stableHashCombine(h, static_cast<std::uint64_t>(numComputeUnits));
  h = stableHashCombine(h, static_cast<std::uint64_t>(commMode));
  h = stableHashCombine(h, static_cast<std::uint64_t>(vectorWidth));
  h = stableHashCombine(h, innerLoopPipeline ? 1 : 0);
  return h;
}

}  // namespace flexcl::model
