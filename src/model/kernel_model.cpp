#include "model/kernel_model.h"

#include <algorithm>
#include <cmath>

namespace flexcl::model {

int maxComputeUnits(const cdfg::KernelAnalysis& analysis, const PeModel& pe,
                    const Device& device, const DesignPoint& design) {
  // Local arrays are replicated per CU; resident DSPs per CU scale with its
  // effective PEs.
  std::uint64_t localBytesPerCu = 0;
  for (const ir::Instruction* a : analysis.fn->localAllocas) {
    localBytesPerCu += a->allocaType->sizeInBytes();
  }
  int cap = 16;  // SDAccel's practical CU replication bound
  if (localBytesPerCu > 0) {
    cap = std::min<std::uint64_t>(cap, device.bramBytes() / localBytesPerCu);
  }
  const double dspPerCu =
      pe.dspUnits * std::max(1, design.peParallelism * design.vectorWidth);
  if (dspPerCu > 0) {
    cap = std::min<double>(cap, device.totalDsp / dspPerCu);
  }
  return std::max(1, cap);
}

KernelComputeModel buildKernelComputeModel(const cdfg::KernelAnalysis& analysis,
                                           const PeModel& pe, const CuModel& cu,
                                           const Device& device,
                                           const DesignPoint& design,
                                           std::uint64_t totalWorkItems) {
  KernelComputeModel km;
  km.resourceCappedCus = maxComputeUnits(analysis, pe, device, design);
  int cus = std::min(design.numComputeUnits, km.resourceCappedCus);
  cus = std::max(1, cus);

  // Eq. 8: the round-robin dispatcher issues one work-group every
  // ΔL_schedule cycles, so at most L_CU / ΔL work-groups are in flight.
  const double dispatch = std::max(1, device.workGroupDispatchOverhead);
  const double maxConcurrent = std::ceil(std::max(1.0, cu.latency) / dispatch);
  km.effectiveCus = std::max(1, std::min<int>(cus, maxConcurrent));

  const double groups =
      std::ceil(static_cast<double>(totalWorkItems) /
                static_cast<double>(design.workGroupItems()));
  km.waves = std::ceil(groups / km.effectiveCus);
  // Eq. 7: L = L_CU * waves + C * ΔL_schedule.
  km.latency = cu.latency * km.waves + cus * dispatch;
  (void)analysis;
  return km;
}

}  // namespace flexcl::model
