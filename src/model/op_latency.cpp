#include "model/op_latency.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace flexcl::model {

using ir::Instruction;
using ir::MathFunc;
using ir::Opcode;

int OpLatencyDb::scaledFloat(int cycles) const {
  return std::max(1, static_cast<int>(std::lround(cycles * floatLatencyScale)));
}

namespace {

int mathLatency(MathFunc f) {
  switch (f) {
    case MathFunc::Sqrt: return 14;
    case MathFunc::Rsqrt: return 16;
    case MathFunc::Exp:
    case MathFunc::Exp2: return 18;
    case MathFunc::Log:
    case MathFunc::Log2: return 18;
    case MathFunc::Pow: return 34;
    case MathFunc::Sin:
    case MathFunc::Cos: return 22;
    case MathFunc::Tan: return 28;
    case MathFunc::Fabs: return 1;
    case MathFunc::Floor:
    case MathFunc::Ceil:
    case MathFunc::Round: return 2;
    case MathFunc::Fmax:
    case MathFunc::Fmin: return 2;
    case MathFunc::Fmod: return 24;
    case MathFunc::Mad:
    case MathFunc::Fma: return 9;
    case MathFunc::Abs:
    case MathFunc::Max:
    case MathFunc::Min:
    case MathFunc::Clamp:
    case MathFunc::Select: return 1;
    case MathFunc::Hypot: return 20;
    case MathFunc::Atan: return 24;
    case MathFunc::Atan2: return 28;
  }
  return 4;
}

int mathDsp(MathFunc f) {
  switch (f) {
    case MathFunc::Sqrt:
    case MathFunc::Rsqrt: return 0;
    case MathFunc::Exp:
    case MathFunc::Exp2:
    case MathFunc::Log:
    case MathFunc::Log2: return 7;
    case MathFunc::Pow: return 14;
    case MathFunc::Sin:
    case MathFunc::Cos:
    case MathFunc::Tan: return 8;
    case MathFunc::Mad:
    case MathFunc::Fma: return 5;
    case MathFunc::Fmod: return 4;
    case MathFunc::Hypot: return 6;
    case MathFunc::Atan:
    case MathFunc::Atan2: return 8;
    default: return 0;
  }
}

bool isFloatType(const ir::Type* t) {
  if (!t) return false;
  if (t->isVector()) return t->element()->isFloat();
  return t->isFloat();
}

std::uint64_t laneCount(const ir::Type* t) {
  return t && t->isVector() ? t->count() : 1;
}

}  // namespace

int OpLatencyDb::applyScale(ir::Opcode op, int cycles) const {
  if (cycles <= 0) return cycles;
  const double factor = opcodeScale_[static_cast<std::size_t>(op)];
  return std::max(1, static_cast<int>(std::lround(cycles * factor)));
}

OpLatencyDb OpLatencyDb::perturbed(std::uint64_t seed, double spread) const {
  OpLatencyDb db = *this;
  Rng rng(stableHashCombine(seed, 0x0b5e55edull));
  for (double& s : db.opcodeScale_) {
    // Clamped multiplicative noise: real IP variants differ by tens of
    // percent, never by orders of magnitude.
    const double factor = 1.0 + spread * rng.nextGaussian();
    s *= std::clamp(factor, 0.6, 1.6);
  }
  return db;
}

int OpLatencyDb::latencyOf(const Instruction& inst) const {
  return applyScale(inst.opcode(), baseLatency(inst));
}

int OpLatencyDb::baseLatency(const Instruction& inst) const {
  const ir::Type* type = inst.type();
  const bool isFloat = isFloatType(type);
  switch (inst.opcode()) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::ICmp:
    case Opcode::Select:
      return 1;
    case Opcode::Mul:
      return 3;
    case Opcode::Div:
    case Opcode::Rem:
      return 18;  // 32-bit integer divider IP
    case Opcode::FAdd:
    case Opcode::FSub:
      return scaledFloat(7);
    case Opcode::FMul:
      return scaledFloat(5);
    case Opcode::FDiv:
      return scaledFloat(14);
    case Opcode::FRem:
      return scaledFloat(24);
    case Opcode::FCmp:
      return scaledFloat(2);
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::Bitcast:
    case Opcode::ExtractLane:
    case Opcode::InsertLane:
    case Opcode::Splat:
      return 0;  // wiring / register renaming
    case Opcode::FPTrunc:
    case Opcode::FPExt:
      return scaledFloat(2);
    case Opcode::SIToFP:
    case Opcode::UIToFP:
    case Opcode::FPToSI:
    case Opcode::FPToUI:
      return scaledFloat(5);
    case Opcode::PtrAdd:
      return 1;  // address adder
    case Opcode::Load:
    case Opcode::Store:
      switch (inst.memSpace) {
        case ir::AddressSpace::Private: return 0;  // registers / LUTRAM wiring
        case ir::AddressSpace::Local: return localMemLatency;
        case ir::AddressSpace::Global:
        case ir::AddressSpace::Constant: return globalIssueLatency;
      }
      return 0;
    case Opcode::Call:
      return isFloat || true ? scaledFloat(mathLatency(inst.mathFunc))
                             : mathLatency(inst.mathFunc);
    case Opcode::WorkItemId:
      return 0;  // provided by the work-item dispatcher
    case Opcode::Alloca:
    case Opcode::Barrier:
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      return 0;
  }
  return 1;
}

int OpLatencyDb::dspCostOf(const Instruction& inst) const {
  const ir::Type* type = inst.type();
  const int lanes = static_cast<int>(laneCount(type));
  switch (inst.opcode()) {
    case Opcode::Mul:
      return 4 * lanes;  // 32x32 multiplier
    case Opcode::Div:
    case Opcode::Rem:
      return 0;  // LUT-based divider
    case Opcode::FAdd:
    case Opcode::FSub:
      return 2 * lanes;
    case Opcode::FMul:
      return 3 * lanes;
    case Opcode::FDiv:
      return 0;
    case Opcode::Call:
      return mathDsp(inst.mathFunc) * lanes;
    default:
      return 0;
  }
}

OpLatencyDb OpLatencyDb::virtex7() { return OpLatencyDb{}; }

OpLatencyDb OpLatencyDb::ku060() {
  OpLatencyDb db;
  // UltraScale DSP/CLB fabric closes the same IPs with ~20% shorter pipelines
  // at 200 MHz.
  db.floatLatencyScale = 0.8;
  db.localMemLatency = 2;
  return db;
}

}  // namespace flexcl::model
