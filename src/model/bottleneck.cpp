#include "model/bottleneck.h"

#include <algorithm>
#include <sstream>

namespace flexcl::model {

const char* bottleneckName(Bottleneck b) {
  switch (b) {
    case Bottleneck::MemoryLatency: return "global-memory latency";
    case Bottleneck::ComputeRecurrence: return "inter-work-item recurrence";
    case Bottleneck::LocalMemoryPorts: return "local-memory ports";
    case Bottleneck::DspBudget: return "DSP budget";
    case Bottleneck::WorkGroupDispatch: return "work-group dispatch";
    case Bottleneck::PipelineDisabled: return "work-item pipeline disabled";
    case Bottleneck::Balanced: return "balanced";
  }
  return "?";
}

std::string BottleneckReport::str() const {
  std::ostringstream os;
  os << "primary bottleneck: " << bottleneckName(primary) << " (severity "
     << static_cast<int>(severity * 100) << "%)\n";
  for (const std::string& h : hints) os << "  - " << h << '\n';
  return os.str();
}

BottleneckReport diagnose(const Estimate& est, const DesignPoint& design) {
  BottleneckReport report;
  if (!est.ok) {
    report.hints.push_back("estimate failed: " + est.error);
    return report;
  }

  if (est.mode == CommMode::Barrier) {
    // Memory share of the total; CU overlap can make the naive product
    // exceed the modelled total, hence the clamp.
    const double memPart =
        est.memory.lMemWi * est.totalWorkItems /
        std::max(1, est.kernelCompute.effectiveCus);
    report.severity = est.cycles > 0 ? std::min(1.0, memPart / est.cycles) : 0;
    if (report.severity > 0.5) {
      report.primary = Bottleneck::MemoryLatency;
      report.hints.push_back(
          "barrier mode serialises global transfers against computation; "
          "restructure to stream data (pipeline mode) or stage through "
          "__local memory with coalesced loads");
      if (est.memory.rawAccessesPerWorkItem >
          est.memory.accessesPerWorkItem * 1.5) {
        report.hints.push_back(
            "accesses already coalesce well; reduce the number of distinct "
            "global arrays touched per work-item");
      } else {
        report.hints.push_back(
            "accesses barely coalesce: make consecutive work-items touch "
            "consecutive addresses (stride-1 layout)");
      }
      return report;
    }
  }

  if (!design.workItemPipeline) {
    report.primary = Bottleneck::PipelineDisabled;
    report.severity = 1.0;
    report.hints.push_back(
        "enable work-item pipelining: without it every work-item occupies "
        "the PE for its full depth");
    return report;
  }

  if (est.mode == CommMode::Pipeline && est.iiWi > est.pe.iiComp) {
    report.primary = Bottleneck::MemoryLatency;
    report.severity = est.iiWi > 0 ? 1.0 - est.pe.iiComp / est.iiWi : 0;
    report.hints.push_back(
        "L_mem^wi exceeds the compute II: the pipeline starves on DRAM; "
        "coalesce accesses or cache reused data in __local memory");
    return report;
  }

  if (est.pe.recMii >= est.pe.resMii && est.pe.recMii > 1) {
    report.primary = Bottleneck::ComputeRecurrence;
    report.severity =
        est.pe.iiComp > 0 ? est.pe.recMii / est.pe.iiComp : 0;
    report.hints.push_back(
        "an inter-work-item dependence chain through __local memory bounds "
        "the II; break the recurrence (privatise the accumulator, use a "
        "reduction tree)");
    return report;
  }

  if (est.pe.resMii > 1) {
    const bool ports = est.cu.limiter == CuModel::Limiter::LocalRead ||
                       est.cu.limiter == CuModel::Limiter::LocalWrite;
    report.primary = ports ? Bottleneck::LocalMemoryPorts : Bottleneck::DspBudget;
    report.severity = est.pe.iiComp > 0 ? est.pe.resMii / est.pe.iiComp : 0;
    if (ports) {
      report.hints.push_back(
          "local-memory ports limit the issue rate; increase banking "
          "(partition the __local array) or widen accesses");
    } else {
      report.hints.push_back(
          "DSP demand limits the issue rate; lower PE/CU replication or "
          "reduce multiplier count per work-item");
    }
    return report;
  }

  if (est.kernelCompute.effectiveCus < design.numComputeUnits) {
    report.primary = Bottleneck::WorkGroupDispatch;
    report.severity =
        1.0 - static_cast<double>(est.kernelCompute.effectiveCus) /
                  design.numComputeUnits;
    report.hints.push_back(
        "work-group dispatch overhead caps CU concurrency; use larger "
        "work-groups so each dispatch amortises over more work");
    return report;
  }

  report.primary = Bottleneck::Balanced;
  report.hints.push_back("design is balanced at this configuration");
  return report;
}

}  // namespace flexcl::model
