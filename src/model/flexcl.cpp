#include "model/flexcl.h"

#include <algorithm>
#include <cmath>

#include "obs/registry.h"
#include "obs/trace.h"

namespace flexcl::model {

const char* CycleBreakdown::binding() const {
  const char* name = "none";
  double best = 0;
  if (compute > best) { best = compute; name = "compute"; }
  if (memory > best) { best = memory; name = "memory"; }
  if (fillDrain > best) { best = fillDrain; name = "fill-drain"; }
  if (dispatch > best) { name = "dispatch"; }
  return name;
}

FlexCl::FlexCl(Device device, ModelOptions options)
    : device_(std::move(device)), options_(options) {
  // Pattern latencies are "profiled using micro-benchmarks" (§3.4): we run
  // them against the DRAM simulator standing in for the board.
  deltaT_ = dram::calibratePatternLatencies(device_.dram);
  if (!options_.eightPatterns) {
    // Ablation: one average latency regardless of direction/hit state.
    double avg = 0;
    for (double l : deltaT_.latency) avg += l;
    avg /= dram::kPatternCount;
    for (double& l : deltaT_.latency) l = avg;
  }
}

interp::NdRange FlexCl::rangeFor(const LaunchInfo& launch,
                                 const DesignPoint& design) {
  interp::NdRange range = launch.range;
  for (int d = 0; d < 3; ++d) {
    std::uint64_t wg = design.workGroupSize[static_cast<std::size_t>(d)];
    if (wg == 0) wg = 1;
    wg = std::min<std::uint64_t>(wg, range.global[static_cast<std::size_t>(d)]);
    // Work-group size must divide the global size; shrink to the largest
    // divisor <= wg (SDAccel would reject non-dividing sizes outright).
    while (range.global[static_cast<std::size_t>(d)] % wg != 0) --wg;
    range.local[static_cast<std::size_t>(d)] = wg;
  }
  return range;
}

const interp::KernelProfile& FlexCl::profileFor(const LaunchInfo& launch,
                                                const DesignPoint& design) {
  const interp::NdRange range = rangeFor(launch, design);
  const ProfileKey key{launch.fn,      launch.fn->name(), launch.fn->instructionCount(),
                       range.local[0], range.local[1],    range.local[2]};
  // The static tier's inputs live in the statics_ cache (unbounded), so the
  // reference fetched here stays valid inside the compute lambda.
  const StaticInputs* si =
      options_.staticProfiles ? &staticInputsFor(launch, design) : nullptr;
  return *profiles_.getOrCompute(key, [&] {
    if (si) {
      // Tier 1: interpreter-free synthesis. Only Exact results are consumed;
      // anything else falls through to the interpreter, so estimates are
      // bit-identical whether the tier is on or off.
      analysis::staticprof::SynthResult synth;
      {
        obs::Span span("staticprof", [&] { return launch.fn->name(); });
        synth = analysis::staticprof::synthesizeProfile(
            si->summary, range, launch.args, *launch.buffers);
      }
      verdicts_.seed(key, synth.verdict);
      if (synth.verdict.exact()) {
        obs::add("analysis.staticprof.exact");
        return std::move(synth.profile);
      }
      if (synth.verdict.kind ==
          analysis::staticprof::VerdictKind::Approximate) {
        obs::add("analysis.staticprof.approx");
      }
      obs::add("analysis.staticprof.fallback");
    }
    obs::Span span("profile", [&] { return launch.fn->name(); });
    obs::add("model.profiles_computed");
    return interp::profileKernel(*launch.fn, range, launch.args,
                                 *launch.buffers);
  });
}

analysis::staticprof::Verdict FlexCl::staticVerdict(const LaunchInfo& launch,
                                                    const DesignPoint& design) {
  if (!options_.staticProfiles) {
    analysis::staticprof::Verdict off;
    off.kind = analysis::staticprof::VerdictKind::Unsupported;
    off.reason = "static tier disabled";
    return off;
  }
  const interp::NdRange range = rangeFor(launch, design);
  const ProfileKey key{launch.fn,      launch.fn->name(), launch.fn->instructionCount(),
                       range.local[0], range.local[1],    range.local[2]};
  const StaticInputs& si = staticInputsFor(launch, design);
  return *verdicts_.getOrCompute(key, [&] {
    // Only reached for profiles seeded from the store (profileFor plants the
    // verdict when it runs the tier itself).
    return analysis::staticprof::synthesizeProfile(si.summary, range,
                                                   launch.args, *launch.buffers)
        .verdict;
  });
}

const analysis::raceverify::RaceVerdict& FlexCl::raceVerdictFor(
    const LaunchInfo& launch, const DesignPoint& design) {
  const interp::NdRange range = rangeFor(launch, design);
  const ProfileKey key{launch.fn,      launch.fn->name(), launch.fn->instructionCount(),
                       range.local[0], range.local[1],    range.local[2]};
  const StaticInputs& si = staticInputsFor(launch, design);
  return *races_.getOrCompute(key, [&] {
    obs::Span span("raceverify", [&] { return launch.fn->name(); });
    analysis::raceverify::VerifyOptions vo;
    vo.args = &launch.args;
    vo.staticTrips = &si.staticTrips;
    std::vector<std::uint64_t> bufferBytes;
    if (launch.buffers) {
      for (const auto& buf : *launch.buffers) bufferBytes.push_back(buf.size());
      vo.bufferBytes = &bufferBytes;
    }
    return analysis::raceverify::verifyRaces(si.summary, range, vo);
  });
}

bool FlexCl::seedRaceVerdict(const LaunchInfo& launch, const DesignPoint& design,
                             analysis::raceverify::RaceVerdict verdict) {
  const interp::NdRange range = rangeFor(launch, design);
  const ProfileKey key{launch.fn,      launch.fn->name(), launch.fn->instructionCount(),
                       range.local[0], range.local[1],    range.local[2]};
  return races_.seed(key, std::move(verdict));
}

bool FlexCl::seedProfile(const LaunchInfo& launch, const DesignPoint& design,
                         interp::KernelProfile profile) {
  const interp::NdRange range = rangeFor(launch, design);
  const ProfileKey key{launch.fn,      launch.fn->name(), launch.fn->instructionCount(),
                       range.local[0], range.local[1],    range.local[2]};
  return profiles_.seed(key, std::move(profile));
}

const StaticInputs& FlexCl::staticInputsFor(const LaunchInfo& launch,
                                            const DesignPoint& design) {
  const interp::NdRange range = rangeFor(launch, design);
  std::vector<std::int64_t> scalars;
  scalars.reserve(launch.args.size());
  for (const interp::KernelArg& a : launch.args) {
    scalars.push_back(!a.isBuffer && a.scalar.kind == interp::RtValue::Kind::Int
                          ? a.scalar.i
                          : 0);
  }
  const StaticKey key{launch.fn,       launch.fn->name(),
                      launch.fn->instructionCount(),
                      range.global[0], range.global[1], range.global[2],
                      range.local[0],  range.local[1],  range.local[2],
                      std::move(scalars)};
  return *statics_.getOrCompute(key, [&] {
    obs::Span span("static-analysis", [&] { return launch.fn->name(); });
    StaticInputs si;
    si.summary = analysis::summarizeKernel(*launch.fn);
    si.leafRanges = analysis::dataflow::LeafRanges::fromRange(range);

    analysis::SymBinding bind;
    const auto groups = range.groupsPerDim();
    for (std::size_t d = 0; d < 3; ++d) {
      bind.globalSize[d] = static_cast<std::int64_t>(range.global[d]);
      bind.localSize[d] = static_cast<std::int64_t>(range.local[d]);
      bind.numGroups[d] = static_cast<std::int64_t>(groups[d]);
    }
    for (std::size_t i = 0; i < launch.args.size(); ++i) {
      const interp::KernelArg& a = launch.args[i];
      if (a.isBuffer || a.scalar.kind != interp::RtValue::Kind::Int) continue;
      bind.scalarArgs[static_cast<int>(i)] = a.scalar.i;
      si.leafRanges.set(analysis::Sym::ScalarArg, static_cast<int>(i),
                        analysis::dataflow::Interval::point(a.scalar.i));
    }
    si.staticTrips = analysis::dataflow::resolveStaticTrips(
        si.summary, bind, analysis::dataflow::TripCountConfig{});
    return si;
  });
}

const FlexCl::BudgetSaturation& FlexCl::saturationFor(const LaunchInfo& launch) {
  const FnKey key{launch.fn, launch.fn->name(), launch.fn->instructionCount()};
  return *saturations_.getOrCompute(key, [&] {
    BudgetSaturation s;
    for (const auto& bb : launch.fn->blocks()) {
      for (const ir::Instruction* inst : bb->instructions()) {
        const sched::OpResource r =
            sched::classifyInstruction(*inst, device_.opLatencies);
        switch (r.rc) {
          case sched::ResourceClass::LocalRead: s.totals[0] += r.units; break;
          case sched::ResourceClass::LocalWrite: s.totals[1] += r.units; break;
          case sched::ResourceClass::GlobalPort: s.totals[2] += r.units; break;
          case sched::ResourceClass::Dsp: s.totals[3] += r.units; break;
          default: break;
        }
      }
    }
    // The unroll resource bound ceil(u * units / cap) scales the demand by
    // the unroll factor, so a cap between the per-iteration demand and the
    // kernel total still changes results there — saturation is only sound
    // for kernels without unroll hints.
    s.saturable = true;
    std::vector<const ir::Region*> stack = {launch.fn->rootRegion()};
    while (!stack.empty()) {
      const ir::Region* r = stack.back();
      stack.pop_back();
      if (r->unrollHint > 1 || r->unrollHint == -1) {
        s.saturable = false;
        break;
      }
      for (const auto& child : r->children) stack.push_back(child.get());
    }
    return s;
  });
}

sched::ResourceBudget FlexCl::canonicalBudgetFor(const LaunchInfo& launch,
                                                 const DesignPoint& design) {
  sched::ResourceBudget budget = peBudget(device_, design);
  const BudgetSaturation& s = saturationFor(launch);
  if (!s.saturable) return budget;
  budget.localReadPorts = std::min(budget.localReadPorts, std::max(1, s.totals[0]));
  budget.localWritePorts =
      std::min(budget.localWritePorts, std::max(1, s.totals[1]));
  budget.globalPorts = std::min(budget.globalPorts, std::max(1, s.totals[2]));
  budget.dspUnits = std::min(budget.dspUnits, std::max(1, s.totals[3]));
  return budget;
}

FlexCl::AnalysisSignature FlexCl::analysisSignatureFor(const LaunchInfo& launch,
                                                       const DesignPoint& design) {
  const interp::NdRange range = rangeFor(launch, design);
  std::vector<std::int64_t> scalars;
  scalars.reserve(launch.args.size());
  for (const interp::KernelArg& a : launch.args) {
    scalars.push_back(!a.isBuffer && a.scalar.kind == interp::RtValue::Kind::Int
                          ? a.scalar.i
                          : 0);
  }
  StaticKey base{launch.fn,       launch.fn->name(),
                 launch.fn->instructionCount(),
                 range.global[0], range.global[1], range.global[2],
                 range.local[0],  range.local[1],  range.local[2],
                 std::move(scalars)};
  const sched::ResourceBudget budget = canonicalBudgetFor(launch, design);
  return AnalysisSignature{std::move(base), design.innerLoopPipeline,
                           budget.localReadPorts, budget.localWritePorts,
                           budget.globalPorts, budget.dspUnits};
}

std::shared_ptr<const cdfg::KernelAnalysis> FlexCl::analysisSharedByKey(
    const AnalysisSignature& key, const LaunchInfo& launch,
    const DesignPoint& design) {
  // Stage inputs first: both are themselves memoized, and fetching them
  // outside the analysis cache's compute lambda keeps their references valid
  // for the whole computation.
  const interp::KernelProfile& profile = profileFor(launch, design);
  const StaticInputs& statics = staticInputsFor(launch, design);
  auto compute = [&] {
    cdfg::AnalyzeOptions options;
    options.innerLoopPipeline = design.innerLoopPipeline;
    options.staticTripCounts = &statics.staticTrips;
    options.summary = &statics.summary;
    options.leafRanges = &statics.leafRanges;
    return cdfg::analyzeKernel(*launch.fn, device_.opLatencies,
                               peBudget(device_, design),
                               profile.ok ? &profile : nullptr, options);
  };
  if (!options_.analysisCache) {
    return std::make_shared<const cdfg::KernelAnalysis>(compute());
  }
  bool computed = false;
  auto result = analyses_.getOrCompute(key, [&] {
    computed = true;
    obs::Span span("analysis", [&] { return launch.fn->name(); });
    return compute();
  });
  // Per-call attribution: the MemoCache counters are cumulative across the
  // FlexCl's lifetime, the obs counters attribute each lookup to the phase
  // that issued it.
  obs::add(computed ? "model.analysis_cache.misses"
                    : "model.analysis_cache.hits");
  return result;
}

std::shared_ptr<const cdfg::KernelAnalysis> FlexCl::analysisShared(
    const LaunchInfo& launch, const DesignPoint& design) {
  return analysisSharedByKey(analysisSignatureFor(launch, design), launch,
                             design);
}

cdfg::KernelAnalysis FlexCl::analysisFor(const LaunchInfo& launch,
                                         const DesignPoint& design) {
  return *analysisShared(launch, design);
}

PeModel FlexCl::peModelFor(const AnalysisSignature& akey,
                           const cdfg::KernelAnalysis& analysis,
                           const Device& modelDevice,
                           const DesignPoint& effective) {
  // The PE model reads the device only through peBudget (canonical-equivalent
  // under akey's budget) and the design only through workItemPipeline and the
  // budget, so (akey, workItemPipeline) determines it exactly.
  if (!options_.analysisCache) {
    return buildPeModel(analysis, modelDevice, effective, options_.smsRefinement);
  }
  const PeKey key{akey, effective.workItemPipeline};
  return *peModels_.getOrCompute(key, [&] {
    return buildPeModel(analysis, modelDevice, effective, options_.smsRefinement);
  });
}

CuModel FlexCl::cuModelFor(const AnalysisSignature& akey, const PeModel& pe,
                           const Device& modelDevice,
                           const DesignPoint& effective) {
  if (!options_.analysisCache) {
    return buildCuModel(pe, modelDevice, effective);
  }
  // Eq. 6 sees the CU count only as DSP supply totalDsp / CUs, and that
  // supply only binds below requested * pe.dspUnits — clamping to the
  // threshold maps all non-binding CU counts onto one entry.
  const int requested =
      std::max(1, effective.peParallelism * effective.vectorWidth);
  const double dspPerCu = static_cast<double>(modelDevice.totalDsp) /
                          std::max(1, effective.numComputeUnits);
  const double canonicalDsp =
      pe.dspUnits > 0 ? std::min(dspPerCu, requested * pe.dspUnits) : -1.0;
  const CuKey key{PeKey{akey, effective.workItemPipeline}, requested,
                  canonicalDsp};
  return *cuModels_.getOrCompute(
      key, [&] { return buildCuModel(pe, modelDevice, effective); });
}

Estimate FlexCl::estimate(const LaunchInfo& launch, const DesignPoint& design) {
  obs::Span span("model", [&] { return design.str(); });
  obs::add("model.estimates");
  Estimate est;
  if (!launch.fn || !launch.buffers) {
    est.error = "launch info incomplete";
    return est;
  }
  const interp::NdRange range = rangeFor(launch, design);
  const interp::KernelProfile& profile = profileFor(launch, design);
  if (!profile.ok) {
    est.error = "profiling failed: " + profile.error;
    return est;
  }

  // Factorized stages (DESIGN.md §11): the schedule analysis, PE model and
  // CU model are memoized on keys independent of the CU count and the
  // communication mode, so a CU×mode sweep computes each of them once.
  const AnalysisSignature akey = analysisSignatureFor(launch, design);
  const std::shared_ptr<const cdfg::KernelAnalysis> analysisPtr =
      analysisSharedByKey(akey, launch, design);
  const cdfg::KernelAnalysis& analysis = *analysisPtr;

  est.totalWorkItems = range.globalCount();
  est.barrierCount = analysis.barrierCount;

  // Design point copy with the effective wg size (after divisor clamping).
  DesignPoint effective = design;
  for (int d = 0; d < 3; ++d) {
    effective.workGroupSize[static_cast<std::size_t>(d)] =
        static_cast<std::uint32_t>(range.local[static_cast<std::size_t>(d)]);
  }

  // The ablation "no dispatch overhead" uses a 1-cycle ΔL inside the model
  // only (the simulator keeps the real dispatcher).
  Device modelDevice = device_;
  if (!options_.dispatchOverhead) modelDevice.workGroupDispatchOverhead = 1;

  est.pe = peModelFor(akey, analysis, modelDevice, effective);
  est.cu = cuModelFor(akey, est.pe, modelDevice, effective);
  est.kernelCompute = buildKernelComputeModel(analysis, est.pe, est.cu,
                                              modelDevice, effective,
                                              est.totalWorkItems);
  // Interference concurrency: chains in flight at the memory controller.
  // Pipeline mode runs one chain per PE lane on every CU; barrier mode
  // streams one chain per CU's memory engine. (The circular dependence of
  // eq. 8 on the memory model is broken by assuming full CU occupancy.)
  const bool barrierMode = analysis.barrierCount > 0 ||
                           design.commMode == CommMode::Barrier;
  const int occupiedCus = std::max(
      1, std::min(design.numComputeUnits, est.kernelCompute.resourceCappedCus));
  const int concurrency =
      options_.interferenceAwareClassification
          ? (barrierMode ? occupiedCus : est.cu.effectivePes * occupiedCus)
          : 1;
  MemoryModelOptions memOpts;
  memOpts.coalesce = options_.coalescing;
  est.memory =
      buildMemoryModel(profile, device_.dram, deltaT_, concurrency, memOpts);

  // Communication mode: barriers in the kernel force barrier mode (§3.5 —
  // identified from the OpenCL intrinsics); otherwise the design chooses.
  est.mode = analysis.barrierCount > 0 ? CommMode::Barrier : design.commMode;

  const int cappedCusAll = std::max(
      1, std::min(design.numComputeUnits, est.kernelCompute.resourceCappedCus));
  const double dispatchAll = std::max(1, modelDevice.workGroupDispatchOverhead);

  if (est.mode == CommMode::Barrier) {
    // Eq. 10 generalised: with one CU the whole kernel's transfers serialise
    // (T = L_mem * N + L_comp, the paper's form); with several CUs their
    // memory phases overlap until the DRAM's per-chain service demand caps
    // the rate.
    const double wgItems = static_cast<double>(effective.workGroupItems());
    const double groupLatency =
        est.memory.lMemWi * wgItems + est.cu.latency;
    const int effCus = std::max(
        1, std::min<int>(cappedCusAll,
                         static_cast<int>(std::ceil(groupLatency / dispatchAll))));
    est.kernelCompute.effectiveCus = effCus;
    const double memPerWi = std::max(est.memory.lMemWi / effCus,
                                     est.memory.serviceDemandPerWi);
    est.cycles = memPerWi * static_cast<double>(est.totalWorkItems) +
                 est.kernelCompute.latency;
    // Breakdown: the serialised transfer phase is memory; L_comp^kernel
    // (eq. 7) splits into its per-wave CU latency and its ΔL term. Using the
    // stored waves keeps the identity exact under every ablation.
    est.breakdown.memory = memPerWi * static_cast<double>(est.totalWorkItems);
    est.breakdown.compute = est.cu.latency * est.kernelCompute.waves;
    est.breakdown.dispatch =
        est.kernelCompute.latency - est.breakdown.compute;
  } else {
    // Eqs. 11-12: memory transfers overlap computation in the work-item
    // pipeline; the slower of the two sets the initiation interval.
    // Refinements over the bare eq. 12 (each one ablatable, see
    // bench_ablation): the expectation of the max over the per-work-item
    // lmem distribution, per-round bank-collision queueing, and the DRAM
    // throughput bound.
    est.iiWi = std::max(est.memory.expectedIiMax(est.pe.iiComp),
                        est.memory.iiThroughputBound);
    const double nWi = static_cast<double>(effective.workGroupItems());
    const double nPe = est.cu.effectivePes;
    const double steadyIters = std::ceil(std::max(0.0, nWi - nPe) / nPe);
    const double groupLatency = est.iiWi * steadyIters + est.pe.depth;
    // Eq. 8's concurrency bound, but with the memory-integrated group
    // latency: that is how long the CU is actually occupied per work-group.
    const int cappedCus = std::max(
        1, std::min(design.numComputeUnits, est.kernelCompute.resourceCappedCus));
    const double dispatchUnit = std::max(1, modelDevice.workGroupDispatchOverhead);
    const int effCus = std::max(
        1, std::min<int>(cappedCus,
                         static_cast<int>(std::ceil(groupLatency / dispatchUnit))));
    est.kernelCompute.effectiveCus = effCus;
    const double waves =
        std::ceil(static_cast<double>(est.totalWorkItems) / (nWi * effCus));
    if (design.workGroupPipeline) {
      // Work-group pipelining: groups stream through the CU back-to-back, so
      // the pipeline depth is paid once per CU, not once per wave.
      est.cycles = est.iiWi * steadyIters * waves + est.pe.depth +
                   cappedCus * dispatchUnit;
      est.breakdown.fillDrain = est.pe.depth;
    } else {
      est.cycles = groupLatency * waves + cappedCus * dispatchUnit;
      est.breakdown.fillDrain = est.pe.depth * waves;
    }
    // Breakdown: each initiation costs II_wi, of which II_comp is compute
    // and the excess (II_wi - II_comp, when memory binds) is exposed DRAM
    // stall; the depth term is fill/drain and ΔL_schedule is dispatch.
    const double issueCycles = est.iiWi * steadyIters * waves;
    const double computeShare =
        est.iiWi > 0 ? std::min(est.pe.iiComp, est.iiWi) / est.iiWi : 0.0;
    est.breakdown.compute = issueCycles * computeShare;
    est.breakdown.memory = issueCycles - est.breakdown.compute;
    est.breakdown.dispatch = cappedCus * dispatchUnit;
  }

  est.milliseconds = device_.cyclesToMs(est.cycles);
  est.ok = true;
  return est;
}

}  // namespace flexcl::model
