#include "model/memory_model.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace flexcl::model {
namespace {

/// Per-work-item coalesced chains, in work-item order of first appearance.
std::vector<std::vector<dram::CoalescedAccess>> perWorkItemChains(
    const interp::KernelProfile& profile, const dram::DramConfig& dramConfig,
    bool coalesce) {
  std::map<std::uint64_t, std::vector<interp::MemoryAccessEvent>> raw;
  for (const interp::MemoryAccessEvent& ev : profile.globalTrace) {
    raw[ev.workItem].push_back(ev);
  }
  std::vector<std::vector<dram::CoalescedAccess>> chains;
  chains.reserve(raw.size());
  for (auto& [wi, events] : raw) {
    if (coalesce) {
      chains.push_back(dram::coalesce(events, dramConfig));
      continue;
    }
    // Ablation: one DRAM access per raw event.
    std::vector<dram::CoalescedAccess> chain;
    chain.reserve(events.size());
    for (const interp::MemoryAccessEvent& ev : events) {
      dram::CoalescedAccess a;
      a.buffer = ev.buffer;
      a.offset = ev.offset;
      a.bytes = ev.size;
      a.isWrite = ev.isWrite;
      a.workItem = ev.workItem;
      chain.push_back(a);
    }
    chains.push_back(std::move(chain));
  }
  return chains;
}

/// Merges `concurrency` chains round-robin, modelling the interleaving of the
/// concurrently pipelined work-items at the memory controller.
std::vector<dram::CoalescedAccess> interleave(
    const std::vector<std::vector<dram::CoalescedAccess>>& chains,
    int concurrency) {
  std::vector<dram::CoalescedAccess> merged;
  std::size_t total = 0;
  for (const auto& c : chains) total += c.size();
  merged.reserve(total);

  const auto lanes = static_cast<std::size_t>(std::max(1, concurrency));
  std::size_t nextChain = 0;  // next chain to hand to a lane
  struct LaneState {
    std::size_t chain = static_cast<std::size_t>(-1);
    std::size_t pos = 0;
  };
  std::vector<LaneState> lane(lanes);

  auto refill = [&](LaneState& l) {
    if (nextChain < chains.size()) {
      l.chain = nextChain++;
      l.pos = 0;
    } else {
      l.chain = static_cast<std::size_t>(-1);
    }
  };
  for (LaneState& l : lane) refill(l);

  bool any = true;
  while (any) {
    any = false;
    for (LaneState& l : lane) {
      while (l.chain != static_cast<std::size_t>(-1) &&
             l.pos >= chains[l.chain].size()) {
        refill(l);
      }
      if (l.chain == static_cast<std::size_t>(-1)) continue;
      merged.push_back(chains[l.chain][l.pos++]);
      any = true;
    }
  }
  return merged;
}

}  // namespace

double MemoryModel::expectedIiMax(double other) const {
  if (perWiChainSpan.empty()) return std::max(other, lMemWi);
  double sum = 0;
  for (double span : perWiChainSpan) sum += std::max(other, span);
  return sum / static_cast<double>(perWiChainSpan.size());
}

MemoryModel buildMemoryModel(const interp::KernelProfile& profile,
                             const dram::DramConfig& dramConfig,
                             const dram::PatternLatencyTable& deltaT,
                             int concurrency, const MemoryModelOptions& options) {
  MemoryModel mm;
  if (profile.profiledWorkItems == 0) return mm;

  const auto chains = perWorkItemChains(profile, dramConfig, options.coalesce);
  const std::vector<dram::CoalescedAccess> stream =
      interleave(chains, concurrency);
  const dram::StreamAnalysis analysis = dram::analyzeStream(stream, dramConfig);
  const dram::PatternCounts& counts = analysis.counts;

  const double wis = static_cast<double>(profile.profiledWorkItems);
  mm.perWorkItem = counts.scaled(1.0 / wis);
  mm.accessesPerWorkItem = static_cast<double>(stream.size()) / wis;
  mm.rawAccessesPerWorkItem =
      static_cast<double>(profile.globalTrace.size()) / wis;

  // Eq. 9: L_mem^wi = sum over patterns of ΔT * N.
  double l = 0;
  for (int p = 0; p < dram::kPatternCount; ++p) {
    l += deltaT.latency[static_cast<std::size_t>(p)] *
         mm.perWorkItem.counts[static_cast<std::size_t>(p)];
  }
  mm.lMemWi = l;

  // Throughput bound (see header): service demand per work-item on the
  // busiest bank / the bus, times the number of concurrent chains.
  double maxBank = 0;
  for (double occ : analysis.bankOccupancy) maxBank = std::max(maxBank, occ);
  mm.serviceDemandPerWi = std::max(maxBank, analysis.busOccupancy) / wis;
  mm.iiThroughputBound = concurrency * mm.serviceDemandPerWi;

  // Collision queueing: in each issue round (one access per in-flight
  // chain), accesses to the same bank serialise behind each other's service
  // occupancy. Only accesses after a chain's first are extended — in steady
  // state the first access's wait overlaps the previous work-item's tail.
  double queueing = 0;
  if (concurrency > 1 && !analysis.accessBank.empty()) {
    const auto round = static_cast<std::size_t>(concurrency);
    double extra = 0;
    std::map<int, double> busyInRound;
    for (std::size_t i = 0; i < analysis.accessBank.size(); ++i) {
      if (i % round == 0) busyInRound.clear();
      double& busy = busyInRound[analysis.accessBank[i]];
      extra += busy;  // wait behind earlier same-bank accesses of this round
      busy += analysis.accessOccupancy[i];
    }
    queueing = extra / wis;
  }
  // One round captures a single collision layer; with more chains in flight
  // the backlog compounds somewhat — grow gently with concurrency, capped:
  // rounds drift apart in practice, so full compounding overprices.
  const double backlog =
      std::clamp(std::sqrt(static_cast<double>(concurrency)) / 2.0, 1.0, 1.5);
  const double a = mm.accessesPerWorkItem;
  mm.queueingPerWi = a > 1.0 ? queueing * backlog * (a - 1.0) / a : 0.0;

  // Per-work-item chain spans: the eq. 9 ΔT sum scaled to each work-item's
  // access count, plus its share of the queueing delay.
  const double perAccess = a > 0 ? (mm.lMemWi + mm.queueingPerWi) / a : 0.0;
  mm.perWiChainSpan.reserve(chains.size());
  for (const auto& chain : chains) {
    mm.perWiChainSpan.push_back(perAccess * static_cast<double>(chain.size()));
  }
  while (mm.perWiChainSpan.size() < static_cast<std::size_t>(wis)) {
    mm.perWiChainSpan.push_back(0.0);
  }
  return mm;
}

}  // namespace flexcl::model
