// One point of the OpenCL-to-FPGA optimisation space (paper §4.1): work-group
// size, work-item pipelining, PE parallelism (loop-unroll pragma), CU count,
// and the data communication mode.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace flexcl::model {

enum class CommMode : std::uint8_t { Barrier, Pipeline };
const char* commModeName(CommMode mode);

struct DesignPoint {
  std::array<std::uint32_t, 3> workGroupSize = {64, 1, 1};
  bool workItemPipeline = true;
  /// Work-group pipelining (§3.3's second pipeline optimisation): the next
  /// work-group starts filling a CU's pipeline while the previous one drains,
  /// removing the per-group depth/drain cost. Pipeline communication mode
  /// only; barrier-mode phase structure leaves nothing to overlap.
  bool workGroupPipeline = false;
  /// PEs instantiated per compute unit (the implicit work-item loop unroll).
  int peParallelism = 1;
  /// Compute units instantiated on the chip.
  int numComputeUnits = 1;
  CommMode commMode = CommMode::Pipeline;
  /// Kernel vectorisation factor (footnote 1: an intN PE behaves as N scalar
  /// PEs for the parallelism model).
  int vectorWidth = 1;
  /// Pipeline innermost loops (HLS loop pipelining): the loop body initiates
  /// a new iteration every II_loop cycles instead of serialising iterations.
  /// An extension beyond the paper's explored space (its §3.3 machinery — MII
  /// + SMS — applies to loop iterations exactly as to work-items).
  bool innerLoopPipeline = false;

  [[nodiscard]] std::uint64_t workGroupItems() const {
    return static_cast<std::uint64_t>(workGroupSize[0]) * workGroupSize[1] *
           workGroupSize[2];
  }
  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::uint64_t stableId() const;

  friend bool operator==(const DesignPoint&, const DesignPoint&) = default;
};

}  // namespace flexcl::model
