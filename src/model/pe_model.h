// Processing element model (paper §3.3.1, eqs. 1-4).
#pragma once

#include "cdfg/cdfg.h"
#include "model/design_point.h"
#include "model/device.h"
#include "sched/sms.h"

namespace flexcl::model {

struct PeModel {
  /// II_comp^wi: work-item initiation interval of the compute pipeline.
  double iiComp = 1;
  /// D_comp^PE: pipeline depth.
  double depth = 0;
  // Diagnostics (eq. 2-4).
  int recMii = 1;
  int resMii = 1;
  int mii = 1;
  bool pipelined = true;
  /// Eq. 4/6 inputs (per work-item, loop-weighted).
  double localReads = 0;
  double localWrites = 0;
  double dspUnits = 0;
};

/// Derives the per-PE scheduling budget from the device and design point:
/// the CU's local ports and the chip's DSPs are divided among the CUs and
/// PEs that share them.
sched::ResourceBudget peBudget(const Device& device, const DesignPoint& design);

/// Builds the PE model. With work-item pipelining enabled the II and depth
/// come from MII + Swing Modulo Scheduling; without it every work-item
/// occupies the PE for its full latency (II = D). Barriers force the
/// pipeline to drain once per barrier region, which scales the effective II.
/// `smsRefinement` = false stops at MII (skipping §3.3.1 step 2; ablation).
PeModel buildPeModel(const cdfg::KernelAnalysis& analysis, const Device& device,
                     const DesignPoint& design, bool smsRefinement = true);

/// Eq. 1: latency of one work-group on one PE.
double peLatency(const PeModel& pe, double workItemsPerGroup);

}  // namespace flexcl::model
