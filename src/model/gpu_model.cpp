#include "model/gpu_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace flexcl::model {

GpuDevice GpuDevice::kepler() {
  GpuDevice g;
  g.name = "kepler-gtx780";
  g.sms = 12;
  g.warpSize = 32;
  g.opsPerCyclePerSm = 192;
  g.frequencyMhz = 900;
  g.dramBandwidthGBs = 288;
  g.transactionBytes = 32;
  g.launchOverheadUs = 5.0;
  return g;
}

GpuEstimate estimateGpu(const cdfg::KernelAnalysis& analysis,
                        const interp::KernelProfile& profile,
                        const interp::NdRange& range, const GpuDevice& gpu) {
  GpuEstimate est;
  if (!profile.ok || profile.profiledWorkItems == 0) return est;

  const double workItems = static_cast<double>(range.globalCount());

  // Compute side: loop-weighted operations per work-item, issued across all
  // SIMT lanes of the chip.
  est.totalOps = analysis.totals.operations * workItems;
  const double opsPerCycle = gpu.opsPerCyclePerSm * gpu.sms;
  const double computeCycles = est.totalOps / std::max(1.0, opsPerCycle);
  est.computeMs = computeCycles / (gpu.frequencyMhz * 1e3);

  // Memory side: DRAM traffic with SIMT coalescing — per warp-sized window
  // of work-items, distinct transactions are what travels on the bus.
  std::map<std::uint64_t, std::vector<const interp::MemoryAccessEvent*>> byWi;
  for (const interp::MemoryAccessEvent& ev : profile.globalTrace) {
    byWi[ev.workItem].push_back(&ev);
  }
  double transactions = 0;
  std::set<std::tuple<std::int32_t, std::int64_t, bool>> warpTransactions;
  int inWarp = 0;
  for (const auto& [wi, events] : byWi) {
    for (const auto* ev : events) {
      warpTransactions.insert(
          {ev->buffer, ev->offset / gpu.transactionBytes, ev->isWrite});
    }
    if (++inWarp == gpu.warpSize) {
      transactions += static_cast<double>(warpTransactions.size());
      warpTransactions.clear();
      inWarp = 0;
    }
  }
  transactions += static_cast<double>(warpTransactions.size());

  const double profiled = static_cast<double>(profile.profiledWorkItems);
  est.totalBytes =
      transactions * gpu.transactionBytes * (workItems / std::max(1.0, profiled));
  est.memoryMs = est.totalBytes / (gpu.dramBandwidthGBs * 1e6);

  est.milliseconds =
      std::max(est.computeMs, est.memoryMs) + gpu.launchOverheadUs * 1e-3;
  est.memoryBound = est.memoryMs > est.computeMs;
  est.ok = true;
  return est;
}

}  // namespace flexcl::model
