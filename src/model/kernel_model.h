// Kernel computation model (paper §3.3.3, eqs. 7-8).
#pragma once

#include <cstdint>

#include "model/cu_model.h"

namespace flexcl::model {

struct KernelComputeModel {
  /// N_CU: effective CU parallelism (eq. 8 + chip resource limits).
  int effectiveCus = 1;
  /// CU count the chip can actually host (BRAM/DSP replication limit).
  int resourceCappedCus = 1;
  /// L_comp^kernel (eq. 7).
  double latency = 0;
  /// Number of work-group waves processed per CU.
  double waves = 0;
};

/// Chip capacity check: how many CUs fit given the kernel's local memory and
/// resident DSP demand.
int maxComputeUnits(const cdfg::KernelAnalysis& analysis, const PeModel& pe,
                    const Device& device, const DesignPoint& design);

KernelComputeModel buildKernelComputeModel(const cdfg::KernelAnalysis& analysis,
                                           const PeModel& pe, const CuModel& cu,
                                           const Device& device,
                                           const DesignPoint& design,
                                           std::uint64_t totalWorkItems);

}  // namespace flexcl::model
