// FPGA platform descriptors.
//
// Bundles everything platform-specific the model and the simulator consume:
// IP-core latencies, DRAM geometry/timings, chip resource totals, local
// memory porting, and the work-group dispatch overhead. Two boards from the
// paper are provided: the Alpha Data ADM-PCIE-7V3 (Virtex-7 XC7VX690T) and
// the NAS-120A (Kintex UltraScale KU060) used in the robustness study.
#pragma once

#include <cstdint>
#include <string>

#include "dram/address_map.h"
#include "model/op_latency.h"

namespace flexcl::model {

struct Device {
  std::string name;
  OpLatencyDb opLatencies;
  dram::DramConfig dram;

  // Chip resources.
  int totalDsp = 3600;          ///< DSP48 slices (XC7VX690T)
  int totalBram36 = 1470;       ///< 36 Kb BRAM blocks
  double frequencyMhz = 200.0;  ///< kernel clock (paper §4.1)

  // Local memory configuration per compute unit.
  int localBanks = 2;
  int readPortsPerBank = 2;   ///< true-dual-port BRAM read side
  int writePortsPerBank = 1;

  // Global-memory interface per compute unit (outstanding AXI issues/cycle).
  int globalPortsPerCu = 2;

  /// Work-group dispatch overhead ΔL_comp^schedule (cycles): queueing a
  /// work-group onto an idle CU through the round-robin scheduler (eq. 7-8).
  int workGroupDispatchOverhead = 40;

  [[nodiscard]] std::uint64_t bramBytes() const {
    return static_cast<std::uint64_t>(totalBram36) * (36 * 1024 / 8);
  }
  [[nodiscard]] int localReadPorts() const { return localBanks * readPortsPerBank; }
  [[nodiscard]] int localWritePorts() const { return localBanks * writePortsPerBank; }

  [[nodiscard]] double cyclesToMs(double cycles) const {
    return cycles / (frequencyMhz * 1e3);
  }

  static Device virtex7();
  static Device ku060();
};

}  // namespace flexcl::model
