// Resource classes and budgets used by the schedulers.
//
// The paper's list scheduler and SMS are "resource-aware": local memory read
// and write ports and DSP blocks are the contended resources (§3.3.1). We add
// a global-memory issue port (the AXI master) and an exclusive per-loop
// engine used to model non-unrolled inner loops blocking the work-item
// pipeline.
#pragma once

#include <cstdint>

#include "ir/ir.h"
#include "model/op_latency.h"

namespace flexcl::sched {

enum class ResourceClass : std::uint8_t {
  None,       ///< unlimited (LUT logic)
  LocalRead,  ///< local memory (BRAM) read ports
  LocalWrite, ///< local memory (BRAM) write ports
  GlobalPort, ///< global memory issue slots (AXI outstanding requests)
  Dsp,        ///< DSP blocks
  LoopEngine, ///< exclusive: a non-pipelined inner-loop body
};

const char* resourceClassName(ResourceClass rc);

/// Issue-slot budget per cycle for one processing element.
struct ResourceBudget {
  int localReadPorts = 2;   ///< dual-port BRAM, both ports readable
  int localWritePorts = 1;
  int globalPorts = 2;
  int dspUnits = 40;        ///< DSP blocks available to one PE's datapath

  [[nodiscard]] int capacity(ResourceClass rc) const {
    switch (rc) {
      case ResourceClass::LocalRead: return localReadPorts;
      case ResourceClass::LocalWrite: return localWritePorts;
      case ResourceClass::GlobalPort: return globalPorts;
      case ResourceClass::Dsp: return dspUnits;
      case ResourceClass::LoopEngine: return 1;
      case ResourceClass::None: return 1 << 30;
    }
    return 1 << 30;
  }
};

/// How one instruction occupies resources when issued.
struct OpResource {
  ResourceClass rc = ResourceClass::None;
  /// Units of `rc` consumed in the issue cycle (DSP ops consume their DSP
  /// count; port ops consume one port).
  int units = 0;
};

/// Classifies one IR instruction against the device resource model.
OpResource classifyInstruction(const ir::Instruction& inst,
                               const model::OpLatencyDb& latencies);

}  // namespace flexcl::sched
