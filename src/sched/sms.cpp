#include "sched/sms.h"

#include <algorithm>
#include <array>
#include <vector>

namespace flexcl::sched {
namespace {

/// Modulo reservation table: per (cycle mod II, resource class) used units.
/// Constructed once per SMS run and reset per II attempt, so the row storage
/// is reused across the II retry loop (rows only grow to the largest II
/// tried) instead of reallocating six vectors per attempt.
class ReservationTable {
 public:
  explicit ReservationTable(const ResourceBudget& budget) : budget_(budget) {}

  void reset(int ii) {
    ii_ = ii;
    for (auto& row : used_) row.assign(static_cast<std::size_t>(ii), 0);
  }

  [[nodiscard]] bool fits(const PipeNode& node, int cycle) const {
    if (node.resource.rc == ResourceClass::None) return true;
    // Each loop supernode is its own (exclusive) engine: distinct loops are
    // distinct hardware. Their II constraint (II >= blockingCycles) is
    // enforced by ResMII, not by a shared reservation row.
    if (node.resource.rc == ResourceClass::LoopEngine) return true;
    const auto& row = used_[static_cast<std::size_t>(node.resource.rc)];
    const int cap = budget_.capacity(node.resource.rc);
    for (int c = 0; c < node.blockingCycles && c < ii_; ++c) {
      const int slot = ((cycle + c) % ii_ + ii_) % ii_;
      if (row[static_cast<std::size_t>(slot)] + node.resource.units > cap) return false;
    }
    // A node blocking more than II cycles wraps the reservation table and
    // monopolises its resource: only legal when it is the sole user, which
    // `fits` approximates by requiring an empty row.
    if (node.blockingCycles > ii_) {
      for (int v : row) {
        if (v != 0) return false;
      }
    }
    return true;
  }

  void place(const PipeNode& node, int cycle) {
    if (node.resource.rc == ResourceClass::None ||
        node.resource.rc == ResourceClass::LoopEngine) {
      return;
    }
    auto& row = used_[static_cast<std::size_t>(node.resource.rc)];
    for (int c = 0; c < node.blockingCycles && c < ii_; ++c) {
      const int slot = ((cycle + c) % ii_ + ii_) % ii_;
      row[static_cast<std::size_t>(slot)] += node.resource.units;
    }
  }

 private:
  int ii_ = 1;
  ResourceBudget budget_;
  std::array<std::vector<int>, 6> used_;
};

struct Adjacency {
  // Edges grouped by endpoint for schedule-window computation.
  std::vector<std::vector<int>> in;   // edge indices entering node
  std::vector<std::vector<int>> out;  // edge indices leaving node
};

Adjacency buildAdjacency(const PipelineGraph& graph) {
  Adjacency adj;
  adj.in.resize(graph.nodes.size());
  adj.out.resize(graph.nodes.size());
  for (std::size_t e = 0; e < graph.edges.size(); ++e) {
    adj.out[static_cast<std::size_t>(graph.edges[e].from)].push_back(
        static_cast<int>(e));
    adj.in[static_cast<std::size_t>(graph.edges[e].to)].push_back(static_cast<int>(e));
  }
  return adj;
}

/// ASAP / ALAP over distance-0 edges only (the acyclic skeleton). Distance>0
/// edges are recurrence back-edges handled by the modulo constraint.
/// Every distance-0 edge points from a lower to a higher node id (nodes are
/// emitted in program order), so one pass in node-id order is exact — a pass
/// in edge-list order would not be, because memory-chain edges are appended
/// after all register edges.
void computeAsapAlap(const PipelineGraph& graph, const Adjacency& adj,
                     std::vector<int>* asap, std::vector<int>* alap,
                     int* makespan) {
  const std::size_t n = graph.nodes.size();
  asap->assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int e : adj.in[i]) {
      const PipeEdge& edge = graph.edges[static_cast<std::size_t>(e)];
      if (edge.distance != 0) continue;
      (*asap)[i] = std::max(
          (*asap)[i], (*asap)[static_cast<std::size_t>(edge.from)] + edge.delay);
    }
  }
  int ms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ms = std::max(ms, (*asap)[i] + graph.nodes[i].latency);
  }
  *makespan = ms;
  alap->assign(n, ms);
  for (std::size_t i = n; i-- > 0;) {
    (*alap)[i] = ms - graph.nodes[i].latency;
    for (int e : adj.out[i]) {
      const PipeEdge& edge = graph.edges[static_cast<std::size_t>(e)];
      if (edge.distance != 0) continue;
      (*alap)[i] = std::min(
          (*alap)[i], (*alap)[static_cast<std::size_t>(edge.to)] - edge.delay);
    }
  }
}

}  // namespace

SmsResult swingModuloSchedule(const PipelineGraph& graph,
                              const ResourceBudget& budget) {
  SmsResult result;
  if (graph.empty()) {
    result.ii = 1;
    result.depth = 0;
    return result;
  }

  result.recMii = computeRecMII(graph);
  result.resMii = computeResMII(graph, budget);
  result.mii = std::max(result.recMii, result.resMii);

  const Adjacency adj = buildAdjacency(graph);
  std::vector<int> asap, alap;
  int makespan = 0;
  computeAsapAlap(graph, adj, &asap, &alap, &makespan);

  // Node order: topological over distance-0 edges (ASAP ascending, stable on
  // the program order, which is itself topological). This guarantees that
  // when a node is placed, its distance-0 successors are still unplaced, so
  // its schedule window is only bounded above by recurrence back-edges —
  // whose II*distance slack grows with II, keeping the retry loop convergent.
  // Within equal ASAP, recurrence members go first and low mobility breaks
  // ties (the lifetime-sensitive intent of the original swing order).
  std::vector<int> order(graph.nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  // Ties keep program order: with delay-0 edges, reordering inside an equal-
  // ASAP group could place a successor before its producer and wedge the
  // window shut.
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return asap[static_cast<std::size_t>(a)] < asap[static_cast<std::size_t>(b)];
  });
  (void)alap;

  const int iiCap = std::max(result.mii * 4 + makespan, result.mii + 64);
  ReservationTable table(budget);
  std::vector<int> start;
  for (int ii = result.mii; ii <= iiCap; ++ii) {
    table.reset(ii);
    start.assign(graph.nodes.size(), -1);
    bool ok = true;

    for (int nodeId : order) {
      const auto ni = static_cast<std::size_t>(nodeId);
      const PipeNode& node = graph.nodes[ni];

      // Schedule window from already-placed neighbours, with the modulo
      // relaxation delay - II*distance.
      int earliest = 0;
      int latest = 1 << 28;
      for (int e : adj.in[ni]) {
        const PipeEdge& edge = graph.edges[static_cast<std::size_t>(e)];
        const auto from = static_cast<std::size_t>(edge.from);
        if (start[from] < 0) continue;
        earliest = std::max(earliest, start[from] + edge.delay - ii * edge.distance);
      }
      for (int e : adj.out[ni]) {
        const PipeEdge& edge = graph.edges[static_cast<std::size_t>(e)];
        const auto to = static_cast<std::size_t>(edge.to);
        if (start[to] < 0) continue;
        latest = std::min(latest, start[to] - edge.delay + ii * edge.distance);
      }
      earliest = std::max(earliest, 0);
      if (latest == (1 << 28)) latest = earliest + ii - 1;

      bool placed = false;
      // Try the window first (keeps lifetimes short), then slide forward up
      // to one full II beyond it.
      for (int t = earliest; t <= std::max(latest, earliest + ii - 1); ++t) {
        // Must still respect successors exactly when they are already placed.
        if (t > latest) break;
        if (table.fits(node, t)) {
          table.place(node, t);
          start[ni] = t;
          placed = true;
          break;
        }
      }
      if (!placed) {
        // Forward scan disregarding the (possibly empty) successor window —
        // successors were placed by the heuristic, so a failure simply bumps
        // the II as in the original algorithm.
        ok = false;
        break;
      }
    }

    if (ok) {
      result.ii = ii;
      int depth = 0;
      for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
        depth = std::max(depth, start[i] + graph.nodes[i].latency);
      }
      result.startCycle = std::move(start);
      result.depth = depth;
      result.feasible = true;
      return result;
    }
  }

  // Could not find a modulo schedule (pathological); fall back to a serial
  // pipeline: II = depth = serial latency.
  int serial = 0;
  for (const PipeNode& n : graph.nodes) serial += std::max(1, n.latency);
  result.ii = serial;
  result.depth = serial;
  result.feasible = false;
  return result;
}

}  // namespace flexcl::sched
