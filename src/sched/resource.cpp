#include "sched/resource.h"

namespace flexcl::sched {

const char* resourceClassName(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::None: return "none";
    case ResourceClass::LocalRead: return "local-read";
    case ResourceClass::LocalWrite: return "local-write";
    case ResourceClass::GlobalPort: return "global-port";
    case ResourceClass::Dsp: return "dsp";
    case ResourceClass::LoopEngine: return "loop-engine";
  }
  return "?";
}

OpResource classifyInstruction(const ir::Instruction& inst,
                               const model::OpLatencyDb& latencies) {
  using ir::Opcode;
  switch (inst.opcode()) {
    case Opcode::Load:
      if (inst.memSpace == ir::AddressSpace::Local) {
        return {ResourceClass::LocalRead, 1};
      }
      if (inst.memSpace == ir::AddressSpace::Global ||
          inst.memSpace == ir::AddressSpace::Constant) {
        return {ResourceClass::GlobalPort, 1};
      }
      return {ResourceClass::None, 0};
    case Opcode::Store:
      if (inst.memSpace == ir::AddressSpace::Local) {
        return {ResourceClass::LocalWrite, 1};
      }
      if (inst.memSpace == ir::AddressSpace::Global ||
          inst.memSpace == ir::AddressSpace::Constant) {
        return {ResourceClass::GlobalPort, 1};
      }
      return {ResourceClass::None, 0};
    default: {
      const int dsp = latencies.dspCostOf(inst);
      if (dsp > 0) return {ResourceClass::Dsp, dsp};
      return {ResourceClass::None, 0};
    }
  }
}

}  // namespace flexcl::sched
