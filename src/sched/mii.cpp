#include "sched/mii.h"

#include <algorithm>
#include <array>

namespace flexcl::sched {

int computeResMII(const PipelineGraph& graph, const ResourceBudget& budget) {
  std::array<long long, 6> demand = {0, 0, 0, 0, 0, 0};
  int loopBound = 1;
  for (const PipeNode& n : graph.nodes) {
    if (n.resource.rc == ResourceClass::LoopEngine) {
      // An exclusive engine held for `blockingCycles` every work-item.
      loopBound = std::max(loopBound, n.blockingCycles);
      continue;
    }
    if (n.resource.rc == ResourceClass::None) continue;
    demand[static_cast<std::size_t>(n.resource.rc)] +=
        static_cast<long long>(n.resource.units) * n.blockingCycles;
  }
  int mii = loopBound;
  for (std::size_t rc = 0; rc < demand.size(); ++rc) {
    if (demand[rc] == 0) continue;
    const int cap = budget.capacity(static_cast<ResourceClass>(rc));
    const long long bound = (demand[rc] + cap - 1) / cap;
    mii = std::max<long long>(mii, bound);
  }
  return mii;
}

namespace {

/// True when the graph contains a cycle with positive total weight under
/// edge weight = delay - II * distance. Uses Bellman-Ford on longest paths:
/// if relaxation still succeeds after |V| rounds, a positive cycle exists.
/// `dist` is caller-provided working storage, reused across the binary
/// search's probes (it is reinitialised here each call).
bool hasPositiveCycle(const PipelineGraph& graph, int ii,
                      std::vector<long long>& dist) {
  const std::size_t n = graph.nodes.size();
  dist.assign(n, 0);  // start everywhere: detects any cycle
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (const PipeEdge& e : graph.edges) {
      const long long w =
          static_cast<long long>(e.delay) - static_cast<long long>(ii) * e.distance;
      if (dist[static_cast<std::size_t>(e.from)] + w >
          dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] =
            dist[static_cast<std::size_t>(e.from)] + w;
        changed = true;
      }
    }
    if (!changed) return false;
  }
  return true;
}

}  // namespace

int computeRecMII(const PipelineGraph& graph) {
  bool anyRecurrence = false;
  long long delaySum = 0;
  for (const PipeEdge& e : graph.edges) {
    delaySum += std::max(0, e.delay);
    if (e.distance > 0) anyRecurrence = true;
  }
  if (!anyRecurrence) return 1;

  // Binary search the smallest II with no positive cycle.
  int lo = 1;
  int hi = static_cast<int>(std::min<long long>(delaySum + 1, 1 << 20));
  std::vector<long long> dist;
  if (hasPositiveCycle(graph, hi, dist)) return hi;  // degenerate (distance-0 cycle)
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (hasPositiveCycle(graph, mid, dist)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int computeMII(const PipelineGraph& graph, const ResourceBudget& budget) {
  return std::max(computeRecMII(graph), computeResMII(graph, budget));
}

}  // namespace flexcl::sched
