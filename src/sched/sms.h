// Swing Modulo Scheduling (paper §3.3.1, step 2; Llosa et al., PACT'96).
//
// Starting from MII, places each node into a modulo reservation table,
// increasing II until every node fits. The node order follows SMS's
// lifetime-sensitive intent: recurrence members first (most critical
// recurrence first), remaining nodes by low mobility (ALAP - ASAP), so nodes
// are placed close to their already-scheduled neighbours and value lifetimes
// stay short. The output is the achieved initiation interval II and the
// pipeline depth (schedule makespan), i.e. II_comp^wi and D_comp^PE.
#pragma once

#include "sched/mii.h"

namespace flexcl::sched {

struct SmsResult {
  int ii = 1;        ///< achieved initiation interval
  int depth = 0;     ///< schedule makespan (pipeline depth of the PE)
  int mii = 1;       ///< the lower bound SMS started from
  int recMii = 1;
  int resMii = 1;
  bool feasible = true;
  std::vector<int> startCycle;  ///< per node
};

SmsResult swingModuloSchedule(const PipelineGraph& graph,
                              const ResourceBudget& budget);

}  // namespace flexcl::sched
