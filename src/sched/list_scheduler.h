// Resource-aware priority-ordered list scheduling (paper §3.3.1).
//
// Schedules one basic block's DFG with an ASAP policy: at each cycle, data-
// ready operations are issued in priority order (longest path to sink first)
// while per-cycle resource budgets (local memory ports, global issue slots,
// DSP units) allow. IP cores are fully pipelined, so a unit is consumed only
// in the issue cycle.
#pragma once

#include <vector>

#include "cdfg/dfg.h"
#include "sched/resource.h"

namespace flexcl::sched {

struct ListScheduleResult {
  /// Completion time of the block (max over nodes of start + latency).
  int latency = 0;
  /// Issue cycle of each DFG node, parallel to BlockDfg::nodes().
  std::vector<int> startCycle;
};

/// Reusable working buffers for listSchedule. A kernel analysis schedules
/// every block of the function; passing one scratch across those calls keeps
/// the per-block vectors at their high-water capacity instead of
/// reallocating five of them per block (measured by BM_KernelAnalysis).
/// Purely an allocation cache: results are identical with or without it.
struct ListScheduleScratch {
  std::vector<int> priority;
  std::vector<int> remainingPreds;
  std::vector<int> readyAt;
  std::vector<int> pool;
  std::vector<int> eligible;
};

ListScheduleResult listSchedule(const cdfg::BlockDfg& dfg,
                                const ResourceBudget& budget,
                                ListScheduleScratch& scratch);

/// Convenience overload with call-local scratch.
ListScheduleResult listSchedule(const cdfg::BlockDfg& dfg,
                                const ResourceBudget& budget);

}  // namespace flexcl::sched
