#include "sched/list_scheduler.h"

#include <algorithm>

namespace flexcl::sched {

ListScheduleResult listSchedule(const cdfg::BlockDfg& dfg,
                                const ResourceBudget& budget,
                                ListScheduleScratch& scratch) {
  const auto& nodes = dfg.nodes();
  ListScheduleResult result;
  result.startCycle.assign(nodes.size(), 0);
  if (nodes.empty()) return result;

  // Priority: longest latency path from the node to any sink (computed over
  // the reverse topological order — nodes are in program order).
  std::vector<int>& priority = scratch.priority;
  priority.assign(nodes.size(), 0);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    int best = 0;
    for (int s : nodes[i].succs) {
      best = std::max(best, priority[static_cast<std::size_t>(s)]);
    }
    priority[i] = best + std::max(1, nodes[i].latency);
  }

  std::vector<int>& remainingPreds = scratch.remainingPreds;
  std::vector<int>& readyAt = scratch.readyAt;
  remainingPreds.resize(nodes.size());
  readyAt.assign(nodes.size(), 0);  // earliest data-ready cycle
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    remainingPreds[i] = static_cast<int>(nodes[i].preds.size());
  }

  // Ready pool: nodes whose predecessors all issued; they become eligible at
  // readyAt[i].
  std::vector<int>& pool = scratch.pool;
  pool.clear();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (remainingPreds[i] == 0) pool.push_back(static_cast<int>(i));
  }

  std::size_t scheduled = 0;
  int cycle = 0;
  while (scheduled < nodes.size()) {
    // Per-cycle budget.
    int used[6] = {0, 0, 0, 0, 0, 0};
    // Candidates eligible this cycle, best priority first.
    std::vector<int>& eligible = scratch.eligible;
    eligible.clear();
    for (int i : pool) {
      if (readyAt[static_cast<std::size_t>(i)] <= cycle) eligible.push_back(i);
    }
    std::stable_sort(eligible.begin(), eligible.end(), [&](int a, int b) {
      return priority[static_cast<std::size_t>(a)] >
             priority[static_cast<std::size_t>(b)];
    });

    for (int i : eligible) {
      const auto& node = nodes[static_cast<std::size_t>(i)];
      const auto rc = static_cast<std::size_t>(node.resource.rc);
      if (node.resource.rc != ResourceClass::None &&
          used[rc] + node.resource.units > budget.capacity(node.resource.rc)) {
        continue;  // structural hazard this cycle
      }
      used[rc] += node.resource.units;
      result.startCycle[static_cast<std::size_t>(i)] = cycle;
      result.latency = std::max(result.latency, cycle + node.latency);
      ++scheduled;
      pool.erase(std::find(pool.begin(), pool.end(), i));
      for (int s : node.succs) {
        auto si = static_cast<std::size_t>(s);
        readyAt[si] = std::max(readyAt[si], cycle + node.latency);
        if (--remainingPreds[si] == 0) pool.push_back(s);
      }
    }
    ++cycle;
    // Fast-forward over gaps where nothing becomes ready.
    if (!pool.empty()) {
      int next = 1 << 30;
      bool anyEligibleNow = false;
      for (int i : pool) {
        const int r = readyAt[static_cast<std::size_t>(i)];
        if (r <= cycle) {
          anyEligibleNow = true;
          break;
        }
        next = std::min(next, r);
      }
      if (!anyEligibleNow && next != (1 << 30)) cycle = next;
    }
  }
  return result;
}

ListScheduleResult listSchedule(const cdfg::BlockDfg& dfg,
                                const ResourceBudget& budget) {
  ListScheduleScratch scratch;
  return listSchedule(dfg, budget, scratch);
}

}  // namespace flexcl::sched
