// Minimum initiation interval bounds (paper §3.3.1, eqs. 2-4).
//
// The work-item pipeline is modelled as a modulo-scheduled loop whose
// "iterations" are successive work-items. RecMII comes from inter-work-item
// dependence cycles (detected from local-memory access analysis); ResMII from
// local memory ports, DSP budget, and exclusive loop engines.
#pragma once

#include <vector>

#include "sched/resource.h"

namespace flexcl::sched {

/// A node of the pipeline dependence graph (one op instance per work-item).
struct PipeNode {
  int latency = 0;
  OpResource resource;
  /// Cycles the node holds its resource exclusively. 1 for pipelined IP
  /// cores; an inner non-unrolled loop holds its engine for its whole
  /// latency, forcing II >= blockingCycles.
  int blockingCycles = 1;
};

/// Dependence edge. `distance` counts work-items (0 = same work-item).
struct PipeEdge {
  int from = 0;
  int to = 0;
  int delay = 0;
  int distance = 0;
};

struct PipelineGraph {
  std::vector<PipeNode> nodes;
  std::vector<PipeEdge> edges;

  [[nodiscard]] bool empty() const { return nodes.empty(); }
};

/// Resource-constrained MII (eq. 3-4 plus loop engines).
int computeResMII(const PipelineGraph& graph, const ResourceBudget& budget);

/// Recurrence-constrained MII: the smallest II for which no dependence cycle
/// has positive slack deficit (max over cycles of ceil(delay / distance)).
/// Computed by a Bellman-Ford positive-cycle check over edge weights
/// delay - II * distance, binary-searched over II.
int computeRecMII(const PipelineGraph& graph);

/// MII = max(RecMII, ResMII) (eq. 2).
int computeMII(const PipelineGraph& graph, const ResourceBudget& budget);

}  // namespace flexcl::sched
