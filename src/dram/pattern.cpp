#include "dram/pattern.h"

#include <sstream>
#include <vector>

namespace flexcl::dram {

const char* patternName(AccessPattern p) {
  switch (p) {
    case AccessPattern::RarHit: return "RAR(hit)";
    case AccessPattern::RawHit: return "RAW(hit)";
    case AccessPattern::WarHit: return "WAR(hit)";
    case AccessPattern::WawHit: return "WAW(hit)";
    case AccessPattern::RarMiss: return "RAR(miss)";
    case AccessPattern::RawMiss: return "RAW(miss)";
    case AccessPattern::WarMiss: return "WAR(miss)";
    case AccessPattern::WawMiss: return "WAW(miss)";
  }
  return "?";
}

AccessPattern classifyPattern(bool prevWrite, bool isWrite, bool hit) {
  // Naming follows the paper: "read access after write" = RAW.
  int idx = 0;
  if (!isWrite && !prevWrite) idx = 0;  // RAR
  if (!isWrite && prevWrite) idx = 1;   // RAW
  if (isWrite && !prevWrite) idx = 2;   // WAR
  if (isWrite && prevWrite) idx = 3;    // WAW
  if (!hit) idx += 4;
  return static_cast<AccessPattern>(idx);
}

double PatternCounts::total() const {
  double t = 0;
  for (double c : counts) t += c;
  return t;
}

PatternCounts& PatternCounts::operator+=(const PatternCounts& other) {
  for (int i = 0; i < kPatternCount; ++i) counts[static_cast<std::size_t>(i)] +=
      other.counts[static_cast<std::size_t>(i)];
  return *this;
}

PatternCounts PatternCounts::scaled(double factor) const {
  PatternCounts r = *this;
  for (double& c : r.counts) c *= factor;
  return r;
}

std::string PatternLatencyTable::str() const {
  std::ostringstream os;
  for (int i = 0; i < kPatternCount; ++i) {
    os << patternName(static_cast<AccessPattern>(i)) << " = "
       << latency[static_cast<std::size_t>(i)] << (i + 1 < kPatternCount ? ", " : "");
  }
  return os.str();
}

PatternCounts classifyStream(const std::vector<CoalescedAccess>& stream,
                             const DramConfig& config) {
  return analyzeStream(stream, config).counts;
}

StreamAnalysis analyzeStream(const std::vector<CoalescedAccess>& stream,
                             const DramConfig& config) {
  struct BankState {
    std::uint64_t openRow = ~0ull;
    bool lastWasWrite = false;
    bool anyAccess = false;
  };
  std::vector<BankState> banks(static_cast<std::size_t>(config.banks));
  StreamAnalysis analysis;
  analysis.bankOccupancy.assign(static_cast<std::size_t>(config.banks), 0.0);

  for (const CoalescedAccess& a : stream) {
    const BankAddress ba = mapAddress(config, linearAddress(a.buffer, a.offset));
    BankState& bank = banks[static_cast<std::size_t>(ba.bank)];
    const bool hit = bank.anyAccess && bank.openRow == ba.row;
    // The very first access to a bank is a miss after "read" (idle precharge).
    const bool prevWrite = bank.anyAccess && bank.lastWasWrite;
    analysis.counts[classifyPattern(prevWrite, a.isWrite, hit)] += 1.0;

    // Service occupancy: how long the bank cannot take another command.
    double busy = config.tCcd;
    if (!hit) {
      busy += config.tRcd;
      if (bank.anyAccess) busy += config.tRp;
    }
    if (a.isWrite) busy += config.tWr;
    analysis.bankOccupancy[static_cast<std::size_t>(ba.bank)] += busy;
    analysis.busOccupancy += config.transferCycles;
    analysis.accessBank.push_back(ba.bank);
    analysis.accessOccupancy.push_back(busy);

    bank.openRow = ba.row;
    bank.lastWasWrite = a.isWrite;
    bank.anyAccess = true;
  }
  return analysis;
}

}  // namespace flexcl::dram
