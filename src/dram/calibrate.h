// Micro-benchmark calibration of the eight pattern latencies (paper §3.4:
// "the access latency of each global memory access pattern is profiled using
// micro-benchmarks").
//
// For every (previous direction, direction, hit/miss) combination we drive a
// synthetic two-access sequence against the DRAM simulator many times —
// exactly what the paper's micro-benchmarks do against the board — and
// record the average latency of the second access as ΔT of that pattern.
#pragma once

#include "dram/dram_sim.h"
#include "dram/pattern.h"

namespace flexcl::dram {

struct CalibrationOptions {
  /// Repetitions averaged per pattern (across different banks and refresh
  /// phases, so refresh cost is amortised into the averages).
  int repetitions = 256;
};

PatternLatencyTable calibratePatternLatencies(const DramConfig& config,
                                              const CalibrationOptions& options = {});

}  // namespace flexcl::dram
