#include "dram/coalescer.h"

#include <map>
#include <tuple>

namespace flexcl::dram {

std::vector<CoalescedAccess> coalesce(
    const std::vector<interp::MemoryAccessEvent>& trace, const DramConfig& config) {
  // Burst inference per (work-item, buffer, direction): SDAccel gives each
  // global pointer its own AXI master, so a read stream on one array keeps
  // bursting even when accesses to other arrays interleave with it in
  // program order. An opposite-direction access to the same buffer closes
  // its runs (the port serialises the hazard).
  struct Run {
    std::int32_t buffer = -1;
    bool isWrite = false;
    std::uint64_t workItem = 0;
    std::int64_t start = 0;
    std::int64_t end = 0;
  };
  std::vector<Run> runs;  // in order of run creation = program order of starts
  // (workItem, buffer, direction) -> index of the open run in `runs`.
  std::map<std::tuple<std::uint64_t, std::int32_t, bool>, std::size_t> open;

  for (const interp::MemoryAccessEvent& ev : trace) {
    // A write closes the buffer's open read run and vice versa.
    open.erase({ev.workItem, ev.buffer, !ev.isWrite});

    const auto key = std::make_tuple(ev.workItem, ev.buffer, ev.isWrite);
    auto it = open.find(key);
    if (it != open.end() && runs[it->second].end == ev.offset) {
      runs[it->second].end += ev.size;
      continue;
    }
    Run run;
    run.buffer = ev.buffer;
    run.isWrite = ev.isWrite;
    run.workItem = ev.workItem;
    run.start = ev.offset;
    run.end = ev.offset + ev.size;
    open[key] = runs.size();
    runs.push_back(run);
  }

  std::vector<CoalescedAccess> out;
  for (const Run& run : runs) {
    std::int64_t emitted = run.start;
    while (emitted < run.end) {
      CoalescedAccess a;
      a.buffer = run.buffer;
      a.offset = emitted;
      a.bytes = static_cast<std::uint32_t>(
          std::min<std::int64_t>(config.accessUnitBytes, run.end - emitted));
      a.isWrite = run.isWrite;
      a.workItem = run.workItem;
      out.push_back(a);
      emitted += a.bytes;
    }
  }
  return out;
}

}  // namespace flexcl::dram
