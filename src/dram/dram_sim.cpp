#include "dram/dram_sim.h"

#include <algorithm>

#include "dram/coalescer.h"

namespace flexcl::dram {

namespace {

bool isPow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

std::uint32_t log2Of(std::uint64_t v) {
  std::uint32_t s = 0;
  while ((1ull << s) < v) ++s;
  return s;
}

}  // namespace

DramSim::DramSim(const DramConfig& config) : config_(config) {
  banks_.resize(static_cast<std::size_t>(config.banks));
  const auto banks = static_cast<std::uint64_t>(config.banks);
  pow2Map_ = isPow2(config.interleaveBytes) && isPow2(banks) &&
             isPow2(config.rowBytes);
  if (pow2Map_) {
    interleaveShift_ = log2Of(config.interleaveBytes);
    interleaveMask_ = config.interleaveBytes - 1ull;
    bankShift_ = log2Of(banks);
    bankMask_ = banks - 1;
    rowShift_ = log2Of(config.rowBytes);
  }
}

void DramSim::reset() {
  for (Bank& b : banks_) b = Bank{};
  busReadyAt_ = 0;
  totalAccesses_ = 0;
  rowHits_ = 0;
  latencySum_ = 0;
  refreshStallCycles_ = 0;
  bankWaitCycles_ = 0;
  busWaitCycles_ = 0;
  refreshWindowStart_ = 0;
  refreshWindowEnd_ = 0;
  refreshClearAt_ = 0;
}

std::uint64_t DramSim::refreshAdjusted(std::uint64_t cycle) {
  if (config_.refreshInterval <= 0) return cycle;
  if (cycle < refreshWindowStart_ || cycle >= refreshWindowEnd_) {
    // Refresh occupies [k*interval, k*interval + duration).
    const auto interval = static_cast<std::uint64_t>(config_.refreshInterval);
    refreshWindowStart_ = (cycle / interval) * interval;
    refreshWindowEnd_ = refreshWindowStart_ + interval;
    refreshClearAt_ =
        refreshWindowStart_ + static_cast<std::uint64_t>(config_.refreshDuration);
  }
  return cycle < refreshClearAt_ ? refreshClearAt_ : cycle;
}

BankAddress DramSim::map(std::uint64_t address) const {
  if (!pow2Map_) return mapAddress(config_, address);
  const std::uint64_t chunk = address >> interleaveShift_;
  BankAddress result;
  result.bank = static_cast<int>(chunk & bankMask_);
  const std::uint64_t inBank =
      ((chunk >> bankShift_) << interleaveShift_) | (address & interleaveMask_);
  result.row = inBank >> rowShift_;
  return result;
}

std::uint64_t DramSim::access(std::uint64_t cycle, std::uint64_t address,
                              bool isWrite) {
  const BankAddress ba = map(address);
  Bank& bank = banks_[static_cast<std::size_t>(ba.bank)];

  // The bank accepts the command once free of its previous one; the
  // controller pipeline adds latency but not occupancy.
  const std::uint64_t refreshFree = refreshAdjusted(cycle);
  const std::uint64_t start = std::max(refreshFree, bank.readyAt);
  refreshStallCycles_ += refreshFree - cycle;
  bankWaitCycles_ += start - refreshFree;

  const bool hit = bank.rowOpen && bank.openRow == ba.row;
  // Command latency before data moves.
  std::uint64_t commandCycles = static_cast<std::uint64_t>(config_.tCl);
  // Cycles the bank itself is tied up and cannot take the next command.
  std::uint64_t bankBusy = static_cast<std::uint64_t>(config_.tCcd);
  if (!hit) {
    std::uint64_t rowWork = static_cast<std::uint64_t>(config_.tRcd);
    if (bank.rowOpen) rowWork += static_cast<std::uint64_t>(config_.tRp);
    commandCycles += rowWork;
    bankBusy += rowWork;
  }
  // Direction turnaround on the shared data pins.
  if (bank.lastWasWrite && !isWrite) {
    commandCycles += static_cast<std::uint64_t>(config_.writeToReadTurnaround);
  } else if (!bank.lastWasWrite && isWrite && totalAccesses_ > 0) {
    commandCycles += static_cast<std::uint64_t>(config_.readToWriteTurnaround);
  }
  if (isWrite) bankBusy += static_cast<std::uint64_t>(config_.tWr);

  // Transfer occupies the shared data bus; completion adds controller
  // pipeline latency on the return path.
  const std::uint64_t transferStart = std::max(start + commandCycles, busReadyAt_);
  busWaitCycles_ += transferStart - (start + commandCycles);
  const std::uint64_t transferDone =
      transferStart + static_cast<std::uint64_t>(config_.transferCycles);
  busReadyAt_ = transferDone;
  const std::uint64_t done =
      transferDone + static_cast<std::uint64_t>(config_.controllerOverhead);

  bank.readyAt = start + bankBusy;
  bank.rowOpen = true;
  bank.openRow = ba.row;
  bank.lastWasWrite = isWrite;

  ++totalAccesses_;
  if (hit) ++rowHits_;
  latencySum_ += done - cycle;
  return done;
}

std::uint64_t DramSim::accessChain(std::uint64_t cycle,
                                   const CoalescedAccess* chain,
                                   std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const CoalescedAccess& a = chain[i];
    cycle = access(cycle, linearAddress(a.buffer, a.offset), a.isWrite);
  }
  return cycle;
}

}  // namespace flexcl::dram
