#include "dram/dram_sim.h"

#include <algorithm>

namespace flexcl::dram {

DramSim::DramSim(const DramConfig& config) : config_(config) {
  banks_.resize(static_cast<std::size_t>(config.banks));
}

void DramSim::reset() {
  for (Bank& b : banks_) b = Bank{};
  busReadyAt_ = 0;
  totalAccesses_ = 0;
  rowHits_ = 0;
  latencySum_ = 0;
  refreshStallCycles_ = 0;
  bankWaitCycles_ = 0;
  busWaitCycles_ = 0;
}

std::uint64_t DramSim::refreshAdjusted(std::uint64_t cycle) const {
  if (config_.refreshInterval <= 0) return cycle;
  const auto interval = static_cast<std::uint64_t>(config_.refreshInterval);
  const auto duration = static_cast<std::uint64_t>(config_.refreshDuration);
  // Refresh occupies [k*interval, k*interval + duration).
  const std::uint64_t phase = cycle % interval;
  if (phase < duration) return cycle + (duration - phase);
  return cycle;
}

std::uint64_t DramSim::access(std::uint64_t cycle, std::uint64_t address,
                              bool isWrite) {
  const BankAddress ba = mapAddress(config_, address);
  Bank& bank = banks_[static_cast<std::size_t>(ba.bank)];

  // The bank accepts the command once free of its previous one; the
  // controller pipeline adds latency but not occupancy.
  const std::uint64_t refreshFree = refreshAdjusted(cycle);
  const std::uint64_t start = std::max(refreshFree, bank.readyAt);
  refreshStallCycles_ += refreshFree - cycle;
  bankWaitCycles_ += start - refreshFree;

  const bool hit = bank.rowOpen && bank.openRow == ba.row;
  // Command latency before data moves.
  std::uint64_t commandCycles = static_cast<std::uint64_t>(config_.tCl);
  // Cycles the bank itself is tied up and cannot take the next command.
  std::uint64_t bankBusy = static_cast<std::uint64_t>(config_.tCcd);
  if (!hit) {
    std::uint64_t rowWork = static_cast<std::uint64_t>(config_.tRcd);
    if (bank.rowOpen) rowWork += static_cast<std::uint64_t>(config_.tRp);
    commandCycles += rowWork;
    bankBusy += rowWork;
  }
  // Direction turnaround on the shared data pins.
  if (bank.lastWasWrite && !isWrite) {
    commandCycles += static_cast<std::uint64_t>(config_.writeToReadTurnaround);
  } else if (!bank.lastWasWrite && isWrite && totalAccesses_ > 0) {
    commandCycles += static_cast<std::uint64_t>(config_.readToWriteTurnaround);
  }
  if (isWrite) bankBusy += static_cast<std::uint64_t>(config_.tWr);

  // Transfer occupies the shared data bus; completion adds controller
  // pipeline latency on the return path.
  const std::uint64_t transferStart = std::max(start + commandCycles, busReadyAt_);
  busWaitCycles_ += transferStart - (start + commandCycles);
  const std::uint64_t transferDone =
      transferStart + static_cast<std::uint64_t>(config_.transferCycles);
  busReadyAt_ = transferDone;
  const std::uint64_t done =
      transferDone + static_cast<std::uint64_t>(config_.controllerOverhead);

  bank.readyAt = start + bankBusy;
  bank.rowOpen = true;
  bank.openRow = ba.row;
  bank.lastWasWrite = isWrite;

  ++totalAccesses_;
  if (hit) ++rowHits_;
  latencySum_ += done - cycle;
  return done;
}

}  // namespace flexcl::dram
