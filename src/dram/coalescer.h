// Global-memory access coalescing (paper §3.4).
//
// SDAccel merges consecutive reads (or writes) into wide accesses of the
// memory access unit (512 bit). A run of consecutive same-direction accesses
// shrinks by the coalescing factor f = unitBytes / accessBytes.
//
// Coalescing (burst inference) happens within one work-item's datapath — a
// loop streaming consecutive addresses becomes a burst — not across distinct
// work-items of the pipeline, so runs are cut at work-item boundaries. The
// model and the system simulator share this function, keeping the two sides'
// access granularity consistent.
#pragma once

#include <vector>

#include "dram/address_map.h"
#include "interp/interpreter.h"

namespace flexcl::dram {

/// One post-coalescing global access.
struct CoalescedAccess {
  std::int32_t buffer = -1;
  std::int64_t offset = 0;   ///< byte offset of the (wide) access
  std::uint32_t bytes = 0;   ///< accessUnitBytes, or less for runt accesses
  bool isWrite = false;
  std::uint64_t workItem = 0;
};

/// Coalesces one work-item's (or any in-order) access stream. A run is a
/// maximal subsequence of same-buffer, same-direction accesses at strictly
/// consecutive byte offsets; each run of B bytes becomes ceil(B / unit)
/// accesses.
std::vector<CoalescedAccess> coalesce(
    const std::vector<interp::MemoryAccessEvent>& trace, const DramConfig& config);

/// Convenience: the paper's coalescing factor for a given data width.
inline double coalescingFactor(const DramConfig& config, std::uint32_t dataBytes) {
  return dataBytes == 0 ? 1.0
                        : static_cast<double>(config.accessUnitBytes) / dataBytes;
}

}  // namespace flexcl::dram
