// The eight global-memory access patterns of Table 1 (paper §3.4).
//
// Each access is classified by (a) its direction, (b) the direction of the
// previous access to the same bank, and (c) whether it hits the bank's open
// row. Pattern latencies ΔT come from micro-benchmark calibration against
// the DRAM simulator (dram/calibrate.h).
#pragma once

#include <array>
#include <string>

#include "dram/coalescer.h"

namespace flexcl::dram {

enum class AccessPattern : std::uint8_t {
  RarHit, RawHit, WarHit, WawHit,
  RarMiss, RawMiss, WarMiss, WawMiss,
};
inline constexpr int kPatternCount = 8;

const char* patternName(AccessPattern p);

/// Builds the pattern id from components. `prevWrite` is the direction of
/// the previous access to the same bank; `isWrite` the current one.
AccessPattern classifyPattern(bool prevWrite, bool isWrite, bool hit);

/// Access counts per pattern (third column of Table 1).
struct PatternCounts {
  std::array<double, kPatternCount> counts = {};

  double& operator[](AccessPattern p) { return counts[static_cast<std::size_t>(p)]; }
  double operator[](AccessPattern p) const {
    return counts[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] double total() const;
  PatternCounts& operator+=(const PatternCounts& other);
  PatternCounts scaled(double factor) const;
};

/// ΔT per pattern, in cycles (second column of Table 1).
struct PatternLatencyTable {
  std::array<double, kPatternCount> latency = {};

  double& operator[](AccessPattern p) { return latency[static_cast<std::size_t>(p)]; }
  double operator[](AccessPattern p) const {
    return latency[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::string str() const;
};

/// Replays a coalesced access stream through per-bank row-buffer state and
/// counts the pattern of every access (the model-side classification of
/// §3.4: sequential program order, no inter-CU interference).
PatternCounts classifyStream(const std::vector<CoalescedAccess>& stream,
                             const DramConfig& config);

/// Classification plus throughput accounting: how many cycles each bank and
/// the shared data bus are *occupied* serving the stream. Occupancy is what
/// bounds sustained issue rate (as opposed to ΔT, which is latency); the
/// memory model turns it into a lower bound on the work-item initiation
/// interval.
struct StreamAnalysis {
  PatternCounts counts;
  std::vector<double> bankOccupancy;  ///< per bank, cycles of service demand
  double busOccupancy = 0;            ///< data-bus cycles of the whole stream
  /// Per-access: which bank it hit and how long it occupied it (parallel to
  /// the input stream; used for collision-queueing estimates).
  std::vector<int> accessBank;
  std::vector<double> accessOccupancy;
};

StreamAnalysis analyzeStream(const std::vector<CoalescedAccess>& stream,
                             const DramConfig& config);

}  // namespace flexcl::dram
