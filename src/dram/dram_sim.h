// Command-level DRAM bank simulator.
//
// This is the "hardware" side of the global memory: per-bank row-buffer
// state machines with activate/precharge/CAS timings, a shared data bus,
// read/write turnaround penalties, and periodic refresh. The system
// simulator issues requests here; the analytical model never sees this —
// it works from pattern-average latencies calibrated against this simulator
// (dram/calibrate.h), exactly as the paper profiles its board with
// micro-benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "dram/address_map.h"

namespace flexcl::dram {

struct CoalescedAccess;  // coalescer.h

class DramSim {
 public:
  explicit DramSim(const DramConfig& config);

  /// Issues one access at `cycle`; returns its completion cycle. Requests to
  /// a busy bank queue behind it; the shared bus serialises transfers.
  std::uint64_t access(std::uint64_t cycle, std::uint64_t address, bool isWrite);

  /// Issues one lane's contiguous span of coalesced accesses back-to-back:
  /// each command starts when the previous one completed (a lane's memory
  /// engine serialises its own chain), exactly as if the caller looped over
  /// access(). Returns the completion cycle of the last command; `count` of
  /// zero returns `cycle`. Batching keeps the bank/bus/refresh state hot in
  /// one tight loop instead of re-entering per command.
  std::uint64_t accessChain(std::uint64_t cycle, const CoalescedAccess* chain,
                            std::size_t count);

  /// Resets all bank state (row buffers closed, buses idle).
  void reset();

  // --- statistics ------------------------------------------------------------
  // Plain (non-atomic) members: a DramSim serves one simulation run on one
  // thread; the system simulator publishes them into the obs registry once
  // per run (DESIGN.md §9), never per access.
  [[nodiscard]] std::uint64_t totalAccesses() const { return totalAccesses_; }
  [[nodiscard]] std::uint64_t rowHits() const { return rowHits_; }
  [[nodiscard]] std::uint64_t rowMisses() const { return totalAccesses_ - rowHits_; }
  [[nodiscard]] double avgLatency() const {
    return totalAccesses_ ? static_cast<double>(latencySum_) / totalAccesses_ : 0.0;
  }
  /// Cycles requests spent blocked behind a refresh window.
  [[nodiscard]] std::uint64_t refreshStallCycles() const { return refreshStallCycles_; }
  /// Cycles requests waited for their bank to finish a prior command.
  [[nodiscard]] std::uint64_t bankWaitCycles() const { return bankWaitCycles_; }
  /// Cycles transfers queued for the shared data bus.
  [[nodiscard]] std::uint64_t busWaitCycles() const { return busWaitCycles_; }

  [[nodiscard]] const DramConfig& config() const { return config_; }

 private:
  /// First cycle at or after `cycle` not blocked by refresh. Memoizes the
  /// enclosing refresh window: accesses cluster in time, so the common case
  /// is a compare + subtract instead of a 64-bit modulo per command.
  [[nodiscard]] std::uint64_t refreshAdjusted(std::uint64_t cycle);

  /// mapAddress with a shift/mask fast path when the geometry is all
  /// powers of two (the default 8 banks / 1 KB rows / 64 B interleave is).
  [[nodiscard]] BankAddress map(std::uint64_t address) const;

  struct Bank {
    std::uint64_t openRow = ~0ull;
    bool rowOpen = false;
    bool lastWasWrite = false;
    std::uint64_t readyAt = 0;  ///< bank busy until this cycle
  };

  DramConfig config_;
  std::vector<Bank> banks_;
  std::uint64_t busReadyAt_ = 0;
  std::uint64_t totalAccesses_ = 0;
  std::uint64_t rowHits_ = 0;
  std::uint64_t latencySum_ = 0;
  std::uint64_t refreshStallCycles_ = 0;
  std::uint64_t bankWaitCycles_ = 0;
  std::uint64_t busWaitCycles_ = 0;

  // Refresh-window memo (refreshAdjusted): [windowStart_, windowEnd_) is the
  // refresh interval last queried; cycles below clearAt_ are blocked.
  std::uint64_t refreshWindowStart_ = 0;
  std::uint64_t refreshWindowEnd_ = 0;  ///< 0 = memo cold
  std::uint64_t refreshClearAt_ = 0;

  // Power-of-two geometry fast path (precomputed once per config).
  bool pow2Map_ = false;
  std::uint32_t interleaveShift_ = 0;
  std::uint64_t interleaveMask_ = 0;
  std::uint32_t bankShift_ = 0;
  std::uint64_t bankMask_ = 0;
  std::uint32_t rowShift_ = 0;
};

}  // namespace flexcl::dram
