// DRAM geometry and address mapping (paper §3.4).
//
// Global memory is the board DRAM: multiple banks, each fronted by a row
// buffer; data is interleaved across banks to spread consecutive accesses.
// The ADM-PCIE-7V3 board: 16 GB DDR3, 8 banks, 1 KB row buffer.
#pragma once

#include <cstdint>

namespace flexcl::dram {

struct DramConfig {
  int banks = 8;
  /// Row-buffer size per bank in bytes.
  std::uint32_t rowBytes = 1024;
  /// Interleave granularity: consecutive chunks of this size map to
  /// consecutive banks (the burst size of the memory controller).
  std::uint32_t interleaveBytes = 64;
  /// Memory access unit for coalescing (512-bit AXI data path).
  std::uint32_t accessUnitBytes = 64;

  // Command timings in FPGA cycles (200 MHz, DDR3-1600 behind a controller).
  // Latency components add to an access's completion time; occupancy
  // components keep the bank/bus busy (commands pipeline otherwise).
  int controllerOverhead = 6;  ///< request queue + PHY crossing (latency)
  int tRcd = 3;                ///< activate -> column command
  int tRp = 3;                 ///< precharge
  int tCl = 3;                 ///< column access (CAS)
  int tCcd = 1;                ///< column-to-column gap (bank occupancy, hits)
  int tWr = 4;                 ///< write recovery (bank occupancy after write)
  int transferCycles = 1;      ///< data-bus occupancy of one access unit
  int readToWriteTurnaround = 1;
  int writeToReadTurnaround = 2;

  // Refresh (all banks pause): interval and duration in FPGA cycles.
  int refreshInterval = 1560;  ///< ~7.8 us at 200 MHz
  int refreshDuration = 52;    ///< ~260 ns tRFC
};

struct BankAddress {
  int bank = 0;
  std::uint64_t row = 0;
};

/// Maps a byte address to its bank and row under the interleaved layout.
BankAddress mapAddress(const DramConfig& config, std::uint64_t address);

/// Buffers live in one linear global address space: buffer b starts at
/// b * kBufferStride plus one interleave chunk per buffer index. The large
/// stride keeps buffers in distinct rows (separate DDR allocations); the
/// per-buffer chunk skew staggers their bank phases — real allocations do
/// not all start on bank 0, and a power-of-two alignment would otherwise
/// park element i of *every* array on the same bank.
inline constexpr std::uint64_t kBufferStride = 1ull << 24;
inline constexpr std::uint64_t kBufferBankSkew = 64;

inline std::uint64_t linearAddress(std::int32_t buffer, std::int64_t offset) {
  return static_cast<std::uint64_t>(buffer) * (kBufferStride + kBufferBankSkew) +
         static_cast<std::uint64_t>(offset);
}

}  // namespace flexcl::dram
