#include "dram/calibrate.h"

namespace flexcl::dram {

PatternLatencyTable calibratePatternLatencies(const DramConfig& config,
                                              const CalibrationOptions& options) {
  PatternLatencyTable table;
  DramSim sim(config);

  // Addresses: same bank, same row / different row. Bank stride chosen so the
  // pair lands on one bank; row stride jumps rows within the bank.
  const std::uint64_t sameRowDelta = 0;
  const std::uint64_t otherRowDelta =
      static_cast<std::uint64_t>(config.rowBytes) * config.banks * 2;

  for (int p = 0; p < kPatternCount; ++p) {
    const auto pattern = static_cast<AccessPattern>(p);
    const bool isWrite = pattern == AccessPattern::WarHit ||
                         pattern == AccessPattern::WawHit ||
                         pattern == AccessPattern::WarMiss ||
                         pattern == AccessPattern::WawMiss;
    const bool prevWrite = pattern == AccessPattern::RawHit ||
                           pattern == AccessPattern::WawHit ||
                           pattern == AccessPattern::RawMiss ||
                           pattern == AccessPattern::WawMiss;
    const bool hit = p < 4;

    double sum = 0;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      sim.reset();
      // Spread repetitions over time so the refresh window is sampled.
      const std::uint64_t t0 =
          static_cast<std::uint64_t>(rep) *
          static_cast<std::uint64_t>(config.refreshInterval) / options.repetitions *
          7;
      const std::uint64_t base =
          static_cast<std::uint64_t>(rep % config.banks) * config.interleaveBytes +
          (1ull << 20);
      // Conditioning access: sets the bank's open row and last direction.
      const std::uint64_t cond = sim.access(t0, base, prevWrite);
      // Measured access.
      const std::uint64_t addr = base + (hit ? sameRowDelta : otherRowDelta);
      const std::uint64_t done = sim.access(cond, addr, isWrite);
      sum += static_cast<double>(done - cond);
    }
    table[pattern] = sum / options.repetitions;
  }
  return table;
}

}  // namespace flexcl::dram
