#include "dram/address_map.h"

namespace flexcl::dram {

BankAddress mapAddress(const DramConfig& config, std::uint64_t address) {
  const std::uint64_t chunk = address / config.interleaveBytes;
  BankAddress result;
  result.bank = static_cast<int>(chunk % static_cast<std::uint64_t>(config.banks));
  // Address within the bank, then row index.
  const std::uint64_t inBank =
      (chunk / static_cast<std::uint64_t>(config.banks)) * config.interleaveBytes +
      address % config.interleaveBytes;
  result.row = inBank / config.rowBytes;
  return result;
}

}  // namespace flexcl::dram
