#include "dse/design_space.h"

#include <algorithm>

namespace flexcl::dse {
namespace {

/// Splits a total work-group size into a (x, y) shape for 2D ranges.
std::array<std::uint32_t, 3> shapeFor(std::uint32_t total,
                                      const interp::NdRange& range) {
  if (range.global[1] <= 1) return {total, 1, 1};
  // Square-ish: x = 2^ceil(bits/2).
  std::uint32_t x = 1;
  while (x * x < total) x *= 2;
  std::uint32_t y = total / x;
  if (y == 0) y = 1;
  return {x, y, 1};
}

bool divides(const std::array<std::uint32_t, 3>& wg, const interp::NdRange& range) {
  for (int d = 0; d < 3; ++d) {
    const auto g = range.global[static_cast<std::size_t>(d)];
    const auto w = wg[static_cast<std::size_t>(d)];
    if (w == 0 || w > g || g % w != 0) return false;
  }
  return true;
}

}  // namespace

std::vector<model::DesignPoint> enumerateDesignSpace(const interp::NdRange& range,
                                                     bool kernelHasBarriers,
                                                     const SpaceOptions& options) {
  std::vector<model::DesignPoint> space;
  std::vector<bool> pipelineChoices =
      options.varyPipeline ? std::vector<bool>{false, true} : std::vector<bool>{true};
  std::vector<model::CommMode> modes;
  if (kernelHasBarriers || !options.varyCommMode) {
    modes = {kernelHasBarriers ? model::CommMode::Barrier
                               : model::CommMode::Pipeline};
  } else {
    modes = {model::CommMode::Barrier, model::CommMode::Pipeline};
  }

  for (std::uint32_t wg : options.workGroupSizes) {
    const auto shape = shapeFor(wg, range);
    if (!divides(shape, range)) continue;
    for (bool pipe : pipelineChoices) {
      for (int pe : options.peParallelism) {
        for (int cu : options.computeUnits) {
          for (model::CommMode mode : modes) {
            model::DesignPoint dp;
            dp.workGroupSize = shape;
            dp.workItemPipeline = pipe;
            dp.peParallelism = pe;
            dp.numComputeUnits = cu;
            dp.commMode = mode;
            space.push_back(dp);
            if (options.varyInnerLoopPipeline) {
              model::DesignPoint lp = dp;
              lp.innerLoopPipeline = true;
              space.push_back(lp);
            }
            if (options.varyWorkGroupPipeline && pipe &&
                mode == model::CommMode::Pipeline) {
              model::DesignPoint wp = dp;
              wp.workGroupPipeline = true;
              space.push_back(wp);
            }
          }
        }
      }
    }
  }
  return space;
}

model::DesignPoint unoptimizedBaseline(const interp::NdRange& range) {
  model::DesignPoint dp;
  // Smallest shape that still divides the global size.
  dp.workGroupSize = {1, 1, 1};
  for (std::uint32_t candidate : {16u, 8u, 4u, 2u, 1u}) {
    if (range.global[0] % candidate == 0) {
      dp.workGroupSize[0] = candidate;
      break;
    }
  }
  dp.workItemPipeline = false;
  dp.peParallelism = 1;
  dp.numComputeUnits = 1;
  dp.commMode = model::CommMode::Barrier;
  return dp;
}

}  // namespace flexcl::dse
