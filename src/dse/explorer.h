// Design-space exploration harness (paper §4.2-§4.3).
//
// Evaluates every design point with three evaluators — FlexCL (analytical),
// the System-Run substitute (cycle-level simulator, ground truth), and the
// SDAccel-style estimator — and aggregates the paper's metrics: per-kernel
// average absolute error, SDAccel failure rate, exploration wall times, and
// the quality of the configuration FlexCL picks.
//
// Evaluation runs on the runtime's thread pool when `ExplorerOptions::jobs`
// exceeds one. Every pass writes results by design index, so the outcome is
// byte-identical regardless of worker count (see tests/test_runtime.cpp);
// only the measured wall times vary.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "analysis/report.h"
#include "dse/design_space.h"
#include "model/bottleneck.h"
#include "model/flexcl.h"
#include "runtime/eval_cache.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "sdaccel/sdaccel_estimator.h"
#include "sim/system_sim.h"

namespace flexcl::dse {

struct EvaluatedDesign {
  model::DesignPoint design;
  double flexclCycles = 0;
  double simCycles = 0;
  std::optional<double> sdaccelCycles;  ///< nullopt = estimator failed
  double sdaccelMinutes = 0;
  /// Statically infeasible (lint verdict): no evaluator ran on this point.
  bool skipped = false;
  /// Feasible pipeline point whose II is bound by a cross-work-item
  /// recurrence (annotation only; the point is still evaluated).
  bool recMiiBound = false;
  /// The race verifier found a concrete data race for this launch
  /// (annotation only, from the lint report; the point is still evaluated).
  bool racy = false;
  std::string infeasibleReason;  ///< set when skipped or recMiiBound

  [[nodiscard]] double flexclErrorPct() const {
    return simCycles > 0 ? std::abs(flexclCycles - simCycles) / simCycles * 100.0
                         : 0.0;
  }
  [[nodiscard]] std::optional<double> sdaccelErrorPct() const {
    if (!sdaccelCycles || simCycles <= 0) return std::nullopt;
    return std::abs(*sdaccelCycles - simCycles) / simCycles * 100.0;
  }
};

struct ExplorationResult {
  std::vector<EvaluatedDesign> designs;

  /// Design points skipped as statically infeasible (see EvaluatedDesign).
  int skippedCount = 0;
  double avgFlexclErrorPct = 0;
  double avgSdaccelErrorPct = 0;  ///< over surviving designs only
  double sdaccelFailRatePct = 0;

  int bestBySim = -1;     ///< ground-truth optimum
  int bestByFlexcl = -1;  ///< configuration FlexCL would pick
  /// sim(bestByFlexcl) / sim(bestBySim) - 1, in percent (paper: within 2.1%).
  double pickGapPct = 0;
  /// sim(baseline) / sim(bestByFlexcl) (paper: 273x on average).
  double speedupVsBaseline = 0;

  // Measured wall times of the two explorations (seconds).
  double flexclSeconds = 0;
  double simSeconds = 0;
  /// Modelled SDAccel estimation time (minutes, summed over survivors).
  double sdaccelMinutes = 0;
};

/// How an Explorer evaluates: worker count and (optional) result caching.
struct ExplorerOptions {
  /// Evaluation jobs. 1 runs serially in the caller's thread (no pool);
  /// > 1 spawns a runtime::ThreadPool of that size for the Explorer's
  /// lifetime. 0 means runtime::defaultJobs().
  int jobs = 1;
  /// Optional shared result cache: FlexCL / SDAccel / simulator results are
  /// memoized per (kernel hash, design point), so re-exploring a space is
  /// pure cache hits. The cache may be shared across Explorers and threads.
  runtime::EvalCache* evalCache = nullptr;
  /// Identity of the kernel + build options for evalCache keys — use
  /// runtime::kernelKeyHash (the CompileCache key). The Explorer further
  /// mixes in the device, launch geometry, and kernel fingerprint, so a zero
  /// hash still distinguishes most launches; passing the real hash makes the
  /// key collision-safe across same-named kernels.
  std::uint64_t kernelHash = 0;
  /// Optional lint report for the kernel (runtime::CompiledKernel::lint or a
  /// fresh analysis::runLintPasses result). When set, statically infeasible
  /// design points are skipped before any evaluator runs and RecMII-bound
  /// pipeline points are annotated. Null preserves pre-lint behaviour
  /// exactly.
  const analysis::LintReport* lint = nullptr;
};

class Explorer {
 public:
  /// `launch.range.local` is ignored; each design point supplies it.
  Explorer(model::FlexCl& flexcl, model::LaunchInfo launch,
           ExplorerOptions options = {});

  /// Evaluates the given space exhaustively with all three evaluators.
  ExplorationResult explore(const std::vector<model::DesignPoint>& space);

  /// Simulator-only evaluation of one design (used for baselines and the
  /// heuristic-search comparison).
  double simulateDesign(const model::DesignPoint& design);
  /// FlexCL-only evaluation of one design.
  double modelDesign(const model::DesignPoint& design);

  [[nodiscard]] bool kernelHasBarriers();

  /// Worker count actually in use (1 when serial).
  [[nodiscard]] int jobs() const;
  /// Per-exploration cache traffic: its own sim-input cache, the model's
  /// profile and analysis caches, and (when attached) the shared EvalCache.
  /// Shared caches outlive the Explorer, so hits/misses are reported as
  /// deltas against their values at construction — a second Explorer over a
  /// warm shared cache reports ~100% hit rate, not the union of both runs'
  /// traffic. (Entry counts are absolute levels. When several Explorers over
  /// one FlexCl/EvalCache run concurrently — the sharded suite benches — the
  /// deltas include the siblings' overlapping traffic and are approximate.)
  [[nodiscard]] runtime::Stats runtimeStats() const;

 private:
  using LocalSizeKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

  const sim::SimInput& simInputFor(const model::DesignPoint& design);
  /// Runs body(i) for i in [0, n): on the pool when parallel, else inline.
  void forEachIndex(std::size_t n,
                    const std::function<void(std::size_t)>& body);
  /// One representative design index per distinct effective local size —
  /// the unit of profile / sim-input prewarming. `candidates` are the
  /// (feasible) indices into `space` to draw from.
  std::vector<std::size_t> localSizeRepresentatives(
      const std::vector<model::DesignPoint>& space,
      const std::vector<std::size_t>& candidates);
  /// One representative design index per distinct analysis-cache signature —
  /// the unit of analysis prewarming (mirrors the profile prewarm: without
  /// it, a parallel sweep's first jobs all block on the same schedule
  /// computation). Empty when the model's analysis cache is disabled.
  std::vector<std::size_t> analysisRepresentatives(
      const std::vector<model::DesignPoint>& space,
      const std::vector<std::size_t>& candidates);

  model::Estimate evalFlexcl(const model::DesignPoint& design);
  sim::SimResult evalSim(const model::DesignPoint& design);
  std::optional<sdaccel::SdaccelEstimate> evalSdaccel(
      const model::DesignPoint& design);

  model::FlexCl& flexcl_;
  model::LaunchInfo launch_;
  ExplorerOptions options_;
  /// Shared-cache counter values at construction — the baselines
  /// runtimeStats() subtracts (see its doc comment).
  runtime::Stats statsBaseline_;
  /// EvalCache key prefix: options_.kernelHash mixed with the device and the
  /// launch fingerprint (kernel name, instruction count, global size).
  std::uint64_t evalKeyBase_ = 0;
  std::unique_ptr<runtime::ThreadPool> pool_;  ///< null when jobs == 1
  // Design-independent simulator input per effective local size. Unbounded,
  // so simInputFor's references stay valid for the Explorer's lifetime.
  runtime::MemoCache<LocalSizeKey, sim::SimInput> simInputs_;
  // Free-list of sim::SimScratch instances: prepareSimInput calls can run
  // concurrently on pool threads (prewarm), and each reuses one scratch's
  // buffer images / coalescer arenas instead of reallocating per local size.
  std::mutex simScratchMutex_;
  std::vector<std::unique_ptr<sim::SimScratch>> simScratchPool_;
};

}  // namespace flexcl::dse
