// Design-space exploration harness (paper §4.2-§4.3).
//
// Evaluates every design point with three evaluators — FlexCL (analytical),
// the System-Run substitute (cycle-level simulator, ground truth), and the
// SDAccel-style estimator — and aggregates the paper's metrics: per-kernel
// average absolute error, SDAccel failure rate, exploration wall times, and
// the quality of the configuration FlexCL picks.
#pragma once

#include <map>
#include <optional>

#include "dse/design_space.h"
#include "model/bottleneck.h"
#include "model/flexcl.h"
#include "sdaccel/sdaccel_estimator.h"
#include "sim/system_sim.h"

namespace flexcl::dse {

struct EvaluatedDesign {
  model::DesignPoint design;
  double flexclCycles = 0;
  double simCycles = 0;
  std::optional<double> sdaccelCycles;  ///< nullopt = estimator failed
  double sdaccelMinutes = 0;

  [[nodiscard]] double flexclErrorPct() const {
    return simCycles > 0 ? std::abs(flexclCycles - simCycles) / simCycles * 100.0
                         : 0.0;
  }
  [[nodiscard]] std::optional<double> sdaccelErrorPct() const {
    if (!sdaccelCycles || simCycles <= 0) return std::nullopt;
    return std::abs(*sdaccelCycles - simCycles) / simCycles * 100.0;
  }
};

struct ExplorationResult {
  std::vector<EvaluatedDesign> designs;

  double avgFlexclErrorPct = 0;
  double avgSdaccelErrorPct = 0;  ///< over surviving designs only
  double sdaccelFailRatePct = 0;

  int bestBySim = -1;     ///< ground-truth optimum
  int bestByFlexcl = -1;  ///< configuration FlexCL would pick
  /// sim(bestByFlexcl) / sim(bestBySim) - 1, in percent (paper: within 2.1%).
  double pickGapPct = 0;
  /// sim(baseline) / sim(bestByFlexcl) (paper: 273x on average).
  double speedupVsBaseline = 0;

  // Measured wall times of the two explorations (seconds).
  double flexclSeconds = 0;
  double simSeconds = 0;
  /// Modelled SDAccel estimation time (minutes, summed over survivors).
  double sdaccelMinutes = 0;
};

class Explorer {
 public:
  /// `launch.range.local` is ignored; each design point supplies it.
  Explorer(model::FlexCl& flexcl, model::LaunchInfo launch);

  /// Evaluates the given space exhaustively with all three evaluators.
  ExplorationResult explore(const std::vector<model::DesignPoint>& space);

  /// Simulator-only evaluation of one design (used for baselines and the
  /// heuristic-search comparison).
  double simulateDesign(const model::DesignPoint& design);
  /// FlexCL-only evaluation of one design.
  double modelDesign(const model::DesignPoint& design);

  [[nodiscard]] bool kernelHasBarriers();

 private:
  const sim::SimInput& simInputFor(const model::DesignPoint& design);

  model::FlexCl& flexcl_;
  model::LaunchInfo launch_;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           std::unique_ptr<sim::SimInput>>
      simInputs_;
};

}  // namespace flexcl::dse
