// Design-space enumeration (paper §4.1: "for each OpenCL kernel, we form a
// design space consisting of hundreds of design solutions by varying the
// parameters of optimizations, including work-group size, work-item and
// work-group pipeline, PE and CU parallelism, and data communication mode").
#pragma once

#include <cstdint>
#include <vector>

#include "interp/interpreter.h"
#include "model/design_point.h"

namespace flexcl::dse {

struct SpaceOptions {
  std::vector<std::uint32_t> workGroupSizes = {32, 64, 128, 256};
  std::vector<int> peParallelism = {1, 2, 4, 8};
  std::vector<int> computeUnits = {1, 2, 4};
  bool varyPipeline = true;
  /// Only meaningful for kernels without barriers (barrier intrinsics force
  /// barrier mode); enumerated for the rest.
  bool varyCommMode = true;
  /// Extension axes (off by default to keep Table-2-scale spaces): inner-loop
  /// pipelining and work-group pipelining.
  bool varyInnerLoopPipeline = false;
  bool varyWorkGroupPipeline = false;
};

/// Enumerates the space for a kernel launched over `range`. 2D NDRanges get
/// square-ish work-group shapes; work-group sizes that cannot divide the
/// global size are dropped.
std::vector<model::DesignPoint> enumerateDesignSpace(const interp::NdRange& range,
                                                     bool kernelHasBarriers,
                                                     const SpaceOptions& options = {});

/// The unoptimised reference configuration (§4.3's "baseline unoptimized
/// design"): smallest work-group, no pipelining, single PE and CU, barrier
/// communication.
model::DesignPoint unoptimizedBaseline(const interp::NdRange& range);

}  // namespace flexcl::dse
