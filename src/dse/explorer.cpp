#include "dse/explorer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace flexcl::dse {
namespace {

double seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Explorer::Explorer(model::FlexCl& flexcl, model::LaunchInfo launch)
    : flexcl_(flexcl), launch_(std::move(launch)) {}

bool Explorer::kernelHasBarriers() {
  for (const auto& bb : launch_.fn->blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::Barrier) return true;
    }
  }
  return false;
}

const sim::SimInput& Explorer::simInputFor(const model::DesignPoint& design) {
  const interp::NdRange range = model::FlexCl::rangeFor(launch_, design);
  const auto key = std::make_tuple(range.local[0], range.local[1], range.local[2]);
  auto it = simInputs_.find(key);
  if (it != simInputs_.end()) return *it->second;
  auto input = std::make_unique<sim::SimInput>(sim::prepareSimInput(
      *launch_.fn, range, launch_.args, *launch_.buffers));
  auto [pos, inserted] = simInputs_.emplace(key, std::move(input));
  (void)inserted;
  return *pos->second;
}

double Explorer::simulateDesign(const model::DesignPoint& design) {
  const sim::SimInput& input = simInputFor(design);
  const sim::SimResult r = sim::simulate(input, flexcl_.device(), design);
  return r.ok ? r.cycles : 0.0;
}

double Explorer::modelDesign(const model::DesignPoint& design) {
  const model::Estimate est = flexcl_.estimate(launch_, design);
  return est.ok ? est.cycles : 0.0;
}

ExplorationResult Explorer::explore(const std::vector<model::DesignPoint>& space) {
  ExplorationResult result;
  result.designs.reserve(space.size());

  // FlexCL pass (timed separately: this is the "seconds" column of Table 2).
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<model::Estimate> estimates;
  estimates.reserve(space.size());
  for (const model::DesignPoint& dp : space) {
    estimates.push_back(flexcl_.estimate(launch_, dp));
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.flexclSeconds = seconds(t0, t1);

  // System-Run pass (the hours column in the paper; minutes of simulation
  // here — the substitution is documented in DESIGN.md).
  std::vector<sim::SimResult> sims;
  sims.reserve(space.size());
  for (const model::DesignPoint& dp : space) {
    sims.push_back(sim::simulate(simInputFor(dp), flexcl_.device(), dp));
  }
  const auto t2 = std::chrono::steady_clock::now();
  result.simSeconds = seconds(t1, t2);

  // SDAccel pass.
  int sdaccelFailures = 0;
  double flexclErrSum = 0, sdaccelErrSum = 0;
  int sdaccelSurvivors = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    EvaluatedDesign ed;
    ed.design = space[i];
    ed.flexclCycles = estimates[i].ok ? estimates[i].cycles : 0;
    ed.simCycles = sims[i].ok ? sims[i].cycles : 0;

    cdfg::KernelAnalysis analysis = flexcl_.analysisFor(launch_, space[i]);
    const interp::NdRange range = model::FlexCl::rangeFor(launch_, space[i]);
    auto sd = sdaccel::estimateSdaccel(*launch_.fn, analysis, flexcl_.device(),
                                       space[i], range.globalCount());
    if (sd) {
      ed.sdaccelCycles = sd->cycles;
      ed.sdaccelMinutes = sd->estimationMinutes;
      result.sdaccelMinutes += sd->estimationMinutes;
      if (auto err = ed.sdaccelErrorPct()) {
        sdaccelErrSum += *err;
        ++sdaccelSurvivors;
      }
    } else {
      ++sdaccelFailures;
    }

    flexclErrSum += ed.flexclErrorPct();
    result.designs.push_back(std::move(ed));
  }

  if (!result.designs.empty()) {
    result.avgFlexclErrorPct = flexclErrSum / result.designs.size();
    result.sdaccelFailRatePct =
        100.0 * sdaccelFailures / static_cast<double>(result.designs.size());
  }
  if (sdaccelSurvivors > 0) {
    result.avgSdaccelErrorPct = sdaccelErrSum / sdaccelSurvivors;
  }

  // Optima and pick quality.
  for (std::size_t i = 0; i < result.designs.size(); ++i) {
    const EvaluatedDesign& ed = result.designs[i];
    if (ed.simCycles <= 0 || ed.flexclCycles <= 0) continue;
    if (result.bestBySim < 0 ||
        ed.simCycles <
            result.designs[static_cast<std::size_t>(result.bestBySim)].simCycles) {
      result.bestBySim = static_cast<int>(i);
    }
    if (result.bestByFlexcl < 0 ||
        ed.flexclCycles <
            result.designs[static_cast<std::size_t>(result.bestByFlexcl)]
                .flexclCycles) {
      result.bestByFlexcl = static_cast<int>(i);
    }
  }
  if (result.bestBySim >= 0 && result.bestByFlexcl >= 0) {
    const double simBest =
        result.designs[static_cast<std::size_t>(result.bestBySim)].simCycles;
    const double simPicked =
        result.designs[static_cast<std::size_t>(result.bestByFlexcl)].simCycles;
    result.pickGapPct = simBest > 0 ? (simPicked / simBest - 1.0) * 100.0 : 0.0;

    const double baselineCycles =
        simulateDesign(unoptimizedBaseline(launch_.range));
    result.speedupVsBaseline =
        simPicked > 0 ? baselineCycles / simPicked : 0.0;
  }
  return result;
}

}  // namespace flexcl::dse
