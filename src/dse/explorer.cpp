#include "dse/explorer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "obs/registry.h"
#include "obs/trace.h"
#include "support/rng.h"

namespace flexcl::dse {
namespace {

double seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::uint64_t hashString(const std::string& s) {
  return stableHash(s.data(), s.size());
}

}  // namespace

Explorer::Explorer(model::FlexCl& flexcl, model::LaunchInfo launch,
                   ExplorerOptions options)
    : flexcl_(flexcl), launch_(std::move(launch)), options_(options) {
  if (options_.jobs == 0) options_.jobs = runtime::defaultJobs();
  options_.jobs = std::max(1, options_.jobs);
  if (options_.jobs > 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(options_.jobs);
  }

  // EvalCache key prefix: results depend on the kernel (hash from the
  // caller), the device, and the launch (geometry + the kernel fingerprint
  // also used by the profile cache).
  evalKeyBase_ = options_.kernelHash;
  evalKeyBase_ = stableHashCombine(evalKeyBase_, hashString(flexcl_.device().name));
  if (launch_.fn) {
    evalKeyBase_ = stableHashCombine(evalKeyBase_, hashString(launch_.fn->name()));
    evalKeyBase_ = stableHashCombine(evalKeyBase_, launch_.fn->instructionCount());
  }
  for (std::uint64_t g : launch_.range.global) {
    evalKeyBase_ = stableHashCombine(evalKeyBase_, g);
  }

  // Baselines for runtimeStats' delta reporting: the shared caches (model
  // profile/analysis caches, EvalCache) may already be warm from an earlier
  // exploration; this Explorer only reports the traffic it generates.
  statsBaseline_.profile = flexcl_.profileCacheCounters();
  statsBaseline_.analysis = flexcl_.analysisCacheCounters();
  if (options_.evalCache) {
    statsBaseline_.flexclEval = options_.evalCache->flexclCounters();
    statsBaseline_.sdaccelEval = options_.evalCache->sdaccelCounters();
    statsBaseline_.simEval = options_.evalCache->simCounters();
  }
}

int Explorer::jobs() const { return pool_ ? pool_->workerCount() : 1; }

runtime::Stats Explorer::runtimeStats() const {
  runtime::Stats stats;
  stats.jobs = jobs();
  stats.profile =
      flexcl_.profileCacheCounters().deltaSince(statsBaseline_.profile);
  stats.analysis =
      flexcl_.analysisCacheCounters().deltaSince(statsBaseline_.analysis);
  stats.simInput = simInputs_.counters();  // per-Explorer, no baseline needed
  if (options_.evalCache) {
    stats.flexclEval =
        options_.evalCache->flexclCounters().deltaSince(statsBaseline_.flexclEval);
    stats.sdaccelEval = options_.evalCache->sdaccelCounters().deltaSince(
        statsBaseline_.sdaccelEval);
    stats.simEval =
        options_.evalCache->simCounters().deltaSince(statsBaseline_.simEval);
  }
  return stats;
}

bool Explorer::kernelHasBarriers() {
  for (const auto& bb : launch_.fn->blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::Barrier) return true;
    }
  }
  return false;
}

const sim::SimInput& Explorer::simInputFor(const model::DesignPoint& design) {
  const interp::NdRange range = model::FlexCl::rangeFor(launch_, design);
  const LocalSizeKey key{range.local[0], range.local[1], range.local[2]};
  return *simInputs_.getOrCompute(key, [&] {
    // Perf payoff of the static race verifier (DESIGN.md §15): a kernel
    // proven RaceFree needs no cross-work-item conflict tracking during the
    // functional execution. Detection never mutates state, so the trace and
    // all simulator results are bit-identical either way (asserted in
    // tests/test_raceverify.cpp).
    sim::SimInputOptions simOptions;
    simOptions.conflictTracking =
        !flexcl_.raceVerdictFor(launch_, design).raceFree();
    // Borrow a scratch from the free list (prewarm runs these on pool
    // threads); its interpreter buffer images and coalescer arenas are
    // reused across local sizes — the launch buffers are byte-stable for
    // the Explorer's lifetime, which is the SimScratch reuse contract.
    std::unique_ptr<sim::SimScratch> scratch;
    {
      const std::lock_guard<std::mutex> lock(simScratchMutex_);
      if (!simScratchPool_.empty()) {
        scratch = std::move(simScratchPool_.back());
        simScratchPool_.pop_back();
      }
    }
    if (!scratch) scratch = std::make_unique<sim::SimScratch>();
    sim::SimInput input = sim::prepareSimInput(
        *launch_.fn, range, launch_.args, *launch_.buffers, simOptions,
        *scratch);
    {
      const std::lock_guard<std::mutex> lock(simScratchMutex_);
      simScratchPool_.push_back(std::move(scratch));
    }
    return input;
  });
}

void Explorer::forEachIndex(std::size_t n,
                            const std::function<void(std::size_t)>& body) {
  if (pool_ && n > 1) {
    pool_->parallelFor(n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

std::vector<std::size_t> Explorer::localSizeRepresentatives(
    const std::vector<model::DesignPoint>& space,
    const std::vector<std::size_t>& candidates) {
  std::vector<std::size_t> reps;
  std::set<LocalSizeKey> seen;
  for (std::size_t i : candidates) {
    const interp::NdRange range = model::FlexCl::rangeFor(launch_, space[i]);
    const LocalSizeKey key{range.local[0], range.local[1], range.local[2]};
    if (seen.insert(key).second) reps.push_back(i);
  }
  return reps;
}

std::vector<std::size_t> Explorer::analysisRepresentatives(
    const std::vector<model::DesignPoint>& space,
    const std::vector<std::size_t>& candidates) {
  std::vector<std::size_t> reps;
  if (!flexcl_.options().analysisCache) return reps;  // nothing to prewarm
  std::set<model::FlexCl::AnalysisSignature> seen;
  for (std::size_t i : candidates) {
    if (seen.insert(flexcl_.analysisSignatureFor(launch_, space[i])).second) {
      reps.push_back(i);
    }
  }
  return reps;
}

model::Estimate Explorer::evalFlexcl(const model::DesignPoint& design) {
  if (options_.evalCache) {
    return *options_.evalCache->flexcl(evalKeyBase_, design, [&] {
      return flexcl_.estimate(launch_, design);
    });
  }
  return flexcl_.estimate(launch_, design);
}

sim::SimResult Explorer::evalSim(const model::DesignPoint& design) {
  auto run = [&] {
    return sim::simulate(simInputFor(design), flexcl_.device(), design);
  };
  if (options_.evalCache) {
    return *options_.evalCache->sim(evalKeyBase_, design, run);
  }
  return run();
}

std::optional<sdaccel::SdaccelEstimate> Explorer::evalSdaccel(
    const model::DesignPoint& design) {
  auto run = [&]() -> std::optional<sdaccel::SdaccelEstimate> {
    // Shared handle into the model's analysis cache: the SDAccel pass reuses
    // the schedule computed by the FlexCL pass instead of re-analyzing.
    const std::shared_ptr<const cdfg::KernelAnalysis> analysis =
        flexcl_.analysisShared(launch_, design);
    const interp::NdRange range = model::FlexCl::rangeFor(launch_, design);
    return sdaccel::estimateSdaccel(*launch_.fn, *analysis, flexcl_.device(),
                                    design, range.globalCount());
  };
  if (options_.evalCache) {
    return *options_.evalCache->sdaccel(evalKeyBase_, design, run);
  }
  return run();
}

double Explorer::simulateDesign(const model::DesignPoint& design) {
  const sim::SimResult r = evalSim(design);
  return r.ok ? r.cycles : 0.0;
}

double Explorer::modelDesign(const model::DesignPoint& design) {
  const model::Estimate est = evalFlexcl(design);
  return est.ok ? est.cycles : 0.0;
}

ExplorationResult Explorer::explore(const std::vector<model::DesignPoint>& space) {
  obs::Span exploreSpan("dse", [&] {
    return launch_.fn ? std::string(launch_.fn->name()) : std::string("explore");
  });
  ExplorationResult result;

  // Static feasibility: with a lint report attached, statically infeasible
  // points are skipped before any evaluator runs (and never prewarmed).
  // Without one every point is feasible and the behaviour matches the
  // pre-lint explorer exactly.
  std::vector<analysis::Feasibility> verdicts(space.size());
  if (options_.lint) {
    // checkDesign is pure (interval checks against the precomputed report),
    // so the verdicts land by index in parallel; the prune counters are then
    // bumped serially in design order, keeping rule attribution deterministic
    // regardless of worker count.
    forEachIndex(space.size(), [&](std::size_t i) {
      verdicts[i] = analysis::checkDesign(*options_.lint, space[i]);
    });
    for (std::size_t i = 0; i < space.size(); ++i) {
      // Every skip decision is attributable: one counter per verdict rule.
      if (!verdicts[i].feasible) {
        obs::add("analysis.dataflow.prune." + verdicts[i].rule);
      }
    }
  }
  std::vector<std::size_t> feasible;
  feasible.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    if (verdicts[i].feasible) feasible.push_back(i);
  }

  // One representative design per distinct effective local size: the shared
  // per-wg artifacts (interpreter profile, simulator input) are built from
  // these, in parallel across sizes, before each full sweep. Without the
  // prewarm, the first jobs of a parallel sweep would all block on the same
  // per-key computation and serialise the warm-up.
  const std::vector<std::size_t> reps = localSizeRepresentatives(space, feasible);

  // FlexCL pass (timed separately: this is the "seconds" column of Table 2;
  // profiling is part of the model's cost, so the prewarm is inside the
  // timed window).
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<model::Estimate> estimates(space.size());
  {
    obs::Span pass("dse", "flexcl pass");
    forEachIndex(reps.size(), [&](std::size_t k) {
      flexcl_.profileFor(launch_, space[reps[k]]);
    });
    // Same prewarm idea one stage deeper: one representative per distinct
    // analysis-cache signature, so a CU x comm-mode sweep computes each
    // schedule once in parallel instead of its first jobs piling up on the
    // same in-flight analysis. Empty (no-op) when the cache is disabled.
    const std::vector<std::size_t> analysisReps =
        analysisRepresentatives(space, feasible);
    forEachIndex(analysisReps.size(), [&](std::size_t k) {
      flexcl_.analysisShared(launch_, space[analysisReps[k]]);
    });
    forEachIndex(feasible.size(), [&](std::size_t k) {
      estimates[feasible[k]] = evalFlexcl(space[feasible[k]]);
    });
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.flexclSeconds = seconds(t0, t1);

  // System-Run pass (the hours column in the paper; minutes of simulation
  // here — the substitution is documented in DESIGN.md). The full-range
  // functional execution (sim input) is part of the simulator's cost.
  std::vector<sim::SimResult> sims(space.size());
  {
    obs::Span pass("dse", "sim pass");
    forEachIndex(reps.size(),
                 [&](std::size_t k) { simInputFor(space[reps[k]]); });
    forEachIndex(feasible.size(), [&](std::size_t k) {
      sims[feasible[k]] = evalSim(space[feasible[k]]);
    });
  }
  const auto t2 = std::chrono::steady_clock::now();
  result.simSeconds = seconds(t1, t2);

  // SDAccel pass.
  std::vector<std::optional<sdaccel::SdaccelEstimate>> sdaccels(space.size());
  {
    obs::Span pass("dse", "sdaccel pass");
    forEachIndex(feasible.size(), [&](std::size_t k) {
      sdaccels[feasible[k]] = evalSdaccel(space[feasible[k]]);
    });
  }

  // Serial aggregation, in design order — together with the by-index result
  // vectors above this makes `result` independent of the worker count.
  // Averages divide by the evaluated (feasible) count, which equals the
  // design count whenever nothing is skipped.
  result.designs.reserve(space.size());
  int sdaccelFailures = 0;
  double flexclErrSum = 0, sdaccelErrSum = 0;
  int sdaccelSurvivors = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    EvaluatedDesign ed;
    ed.design = space[i];
    if (!verdicts[i].feasible) {
      ed.skipped = true;
      ed.infeasibleReason = verdicts[i].reason;
      ++result.skippedCount;
      result.designs.push_back(std::move(ed));
      continue;
    }
    ed.recMiiBound = verdicts[i].recMiiBound;
    if (ed.recMiiBound) ed.infeasibleReason = verdicts[i].reason;
    ed.racy = verdicts[i].racy;
    ed.flexclCycles = estimates[i].ok ? estimates[i].cycles : 0;
    ed.simCycles = sims[i].ok ? sims[i].cycles : 0;

    if (const auto& sd = sdaccels[i]) {
      ed.sdaccelCycles = sd->cycles;
      ed.sdaccelMinutes = sd->estimationMinutes;
      result.sdaccelMinutes += sd->estimationMinutes;
      if (auto err = ed.sdaccelErrorPct()) {
        sdaccelErrSum += *err;
        ++sdaccelSurvivors;
      }
    } else {
      ++sdaccelFailures;
    }

    flexclErrSum += ed.flexclErrorPct();
    result.designs.push_back(std::move(ed));
  }

  obs::add("dse.points_evaluated", feasible.size());
  obs::add("dse.points_skipped",
           static_cast<std::uint64_t>(result.skippedCount));

  if (!feasible.empty()) {
    result.avgFlexclErrorPct =
        flexclErrSum / static_cast<double>(feasible.size());
    result.sdaccelFailRatePct =
        100.0 * sdaccelFailures / static_cast<double>(feasible.size());
  }
  if (sdaccelSurvivors > 0) {
    result.avgSdaccelErrorPct = sdaccelErrSum / sdaccelSurvivors;
  }

  // Optima and pick quality.
  for (std::size_t i = 0; i < result.designs.size(); ++i) {
    const EvaluatedDesign& ed = result.designs[i];
    if (ed.simCycles <= 0 || ed.flexclCycles <= 0) continue;
    if (result.bestBySim < 0 ||
        ed.simCycles <
            result.designs[static_cast<std::size_t>(result.bestBySim)].simCycles) {
      result.bestBySim = static_cast<int>(i);
    }
    if (result.bestByFlexcl < 0 ||
        ed.flexclCycles <
            result.designs[static_cast<std::size_t>(result.bestByFlexcl)]
                .flexclCycles) {
      result.bestByFlexcl = static_cast<int>(i);
    }
  }
  if (result.bestBySim >= 0 && result.bestByFlexcl >= 0) {
    const double simBest =
        result.designs[static_cast<std::size_t>(result.bestBySim)].simCycles;
    const double simPicked =
        result.designs[static_cast<std::size_t>(result.bestByFlexcl)].simCycles;
    result.pickGapPct = simBest > 0 ? (simPicked / simBest - 1.0) * 100.0 : 0.0;

    const double baselineCycles =
        simulateDesign(unoptimizedBaseline(launch_.range));
    result.speedupVsBaseline =
        simPicked > 0 ? baselineCycles / simPicked : 0.0;
  }
  return result;
}

}  // namespace flexcl::dse
