#include "dse/heuristic16.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace flexcl::dse {

double coarseCost(model::FlexCl& flexcl, const model::LaunchInfo& launch,
                  const model::DesignPoint& design) {
  // Coarse model: one analysis for totals, then closed-form scaling. No
  // pattern classification, no SMS, no dispatch overhead — the knobs are
  // treated as independent dividers, which is precisely why the heuristic
  // misjudges interacting configurations.
  cdfg::KernelAnalysis analysis = flexcl.analysisFor(launch, design);
  const interp::NdRange range = model::FlexCl::rangeFor(launch, design);

  const double memPerWi =
      (analysis.totals.globalReads + analysis.totals.globalWrites) * 10.0;
  const double computePerWi =
      design.workItemPipeline ? std::max(4.0, analysis.totals.latency / 16.0)
                              : analysis.totals.latency;
  // Coarse communication-mode handling: barrier serialises transfers against
  // compute, pipeline overlaps them — but with a flat per-access cost and no
  // pattern/coalescing/interference awareness.
  const double perWi = design.commMode == model::CommMode::Barrier
                           ? memPerWi + computePerWi
                           : std::max(memPerWi, computePerWi);
  const double parallel = static_cast<double>(design.peParallelism) *
                          design.numComputeUnits *
                          std::max(1, design.vectorWidth);
  return perWi * static_cast<double>(range.globalCount()) / parallel;
}

HeuristicResult heuristicSearch(model::FlexCl& flexcl,
                                const model::LaunchInfo& launch,
                                const std::vector<model::DesignPoint>& space) {
  HeuristicResult result;
  if (space.empty()) return result;

  // Distinct values per axis, preserving the enumeration order.
  auto distinct = [&](auto project) {
    std::vector<decltype(project(space.front()))> values;
    for (const model::DesignPoint& dp : space) {
      const auto v = project(dp);
      if (std::find(values.begin(), values.end(), v) == values.end()) {
        values.push_back(v);
      }
    }
    return values;
  };

  model::DesignPoint current = space.front();
  auto evaluate = [&](const model::DesignPoint& dp) {
    ++result.evaluations;
    return coarseCost(flexcl, launch, dp);
  };

  // Axis 1: work-group size.
  {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& wg :
         distinct([](const model::DesignPoint& d) { return d.workGroupSize; })) {
      model::DesignPoint candidate = current;
      candidate.workGroupSize = wg;
      const double cost = evaluate(candidate);
      if (cost < best) {
        best = cost;
        current.workGroupSize = wg;
      }
    }
  }
  // Axis 2: pipeline.
  {
    double best = std::numeric_limits<double>::infinity();
    for (bool pipe :
         distinct([](const model::DesignPoint& d) { return d.workItemPipeline; })) {
      model::DesignPoint candidate = current;
      candidate.workItemPipeline = pipe;
      const double cost = evaluate(candidate);
      if (cost < best) {
        best = cost;
        current.workItemPipeline = pipe;
      }
    }
  }
  // Axis 3: PE parallelism.
  {
    double best = std::numeric_limits<double>::infinity();
    for (int pe :
         distinct([](const model::DesignPoint& d) { return d.peParallelism; })) {
      model::DesignPoint candidate = current;
      candidate.peParallelism = pe;
      const double cost = evaluate(candidate);
      if (cost < best) {
        best = cost;
        current.peParallelism = pe;
      }
    }
  }
  // Axis 4: CU count.
  {
    double best = std::numeric_limits<double>::infinity();
    for (int cu :
         distinct([](const model::DesignPoint& d) { return d.numComputeUnits; })) {
      model::DesignPoint candidate = current;
      candidate.numComputeUnits = cu;
      const double cost = evaluate(candidate);
      if (cost < best) {
        best = cost;
        current.numComputeUnits = cu;
      }
    }
  }
  // Axis 5: communication mode.
  {
    double best = std::numeric_limits<double>::infinity();
    for (model::CommMode mode :
         distinct([](const model::DesignPoint& d) { return d.commMode; })) {
      model::DesignPoint candidate = current;
      candidate.commMode = mode;
      const double cost = evaluate(candidate);
      if (cost < best) {
        best = cost;
        current.commMode = mode;
      }
    }
  }

  result.chosen = current;
  result.coarseCycles = coarseCost(flexcl, launch, current);
  return result;
}

}  // namespace flexcl::dse
