// Step-by-step heuristic search in the style of Wang et al. [16] (HPCA'16),
// used as the DSE-quality baseline in §4.3.
//
// [16] optimises one knob at a time with a coarse-grained model that ignores
// memory access patterns, pipelining interactions, and scheduling overhead —
// assuming the knobs are independent. The paper shows this lands on the true
// optimum for only 12% of kernels versus 96% for FlexCL + exhaustive search.
#pragma once

#include <vector>

#include "dse/explorer.h"

namespace flexcl::dse {

struct HeuristicResult {
  model::DesignPoint chosen;
  double coarseCycles = 0;  ///< the coarse model's score of the chosen point
  int evaluations = 0;      ///< coarse-model evaluations spent
};

/// Coarse cost model of [16]: serialised compute scaled by PE*CU parallelism
/// plus a flat per-access memory charge; no pattern, pipeline-interaction or
/// dispatch modelling.
double coarseCost(model::FlexCl& flexcl, const model::LaunchInfo& launch,
                  const model::DesignPoint& design);

/// Coordinate-descent over the space axes in a fixed order (work-group size,
/// pipeline, PE parallelism, CU count, communication mode), keeping the best
/// value of each axis before moving on.
HeuristicResult heuristicSearch(model::FlexCl& flexcl,
                                const model::LaunchInfo& launch,
                                const std::vector<model::DesignPoint>& space);

}  // namespace flexcl::dse
