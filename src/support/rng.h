// Deterministic pseudo-random number generation.
//
// Everything in FlexCL that involves randomness (per-instance hardware
// latency spread, workload input generation) must be reproducible run to run,
// so we use an explicit splitmix64-seeded xoshiro256** generator instead of
// std::random_device / std::mt19937 defaults.
#pragma once

#include <cstdint>

namespace flexcl {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound must be non-zero.
  std::uint64_t nextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Uniform double in [lo, hi).
  double nextDouble(double lo, double hi);

  /// Approximately normal (Irwin-Hall of 4 uniforms), mean 0, sd ~1.
  double nextGaussian();

 private:
  std::uint64_t state_[4];
};

/// Stable 64-bit hash (FNV-1a) used to derive per-design / per-instance seeds.
std::uint64_t stableHash(const void* data, std::size_t size,
                         std::uint64_t seed = 0xcbf29ce484222325ull);
std::uint64_t stableHashCombine(std::uint64_t a, std::uint64_t b);

}  // namespace flexcl
