// Owns a source buffer and maps byte offsets to line/column positions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace flexcl {

/// Holds one translation unit's text. Line starts are indexed once so that
/// locations can be produced in O(log n).
class SourceManager {
 public:
  explicit SourceManager(std::string text, std::string name = "<kernel>");

  [[nodiscard]] std::string_view text() const { return text_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Builds a full SourceLocation for a byte offset.
  [[nodiscard]] SourceLocation locate(std::uint32_t offset) const;

  /// Returns the text of the (1-based) line, without the trailing newline.
  [[nodiscard]] std::string_view line(std::uint32_t lineNumber) const;

  [[nodiscard]] std::uint32_t lineCount() const {
    return static_cast<std::uint32_t>(lineStarts_.size());
  }

 private:
  std::string text_;
  std::string name_;
  std::vector<std::uint32_t> lineStarts_;
};

}  // namespace flexcl
