// Diagnostic reporting shared by every frontend and analysis stage.
#pragma once

#include <string>
#include <vector>

#include "support/source_location.h"

namespace flexcl {

enum class DiagSeverity { Note, Warning, Error };

/// One reported problem with its location and rendered message.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLocation location;
  std::string message;
};

/// Collects diagnostics; stages keep running after errors where possible so a
/// single pass reports as much as it can.
class DiagnosticEngine {
 public:
  void report(DiagSeverity severity, SourceLocation loc, std::string message);
  void error(SourceLocation loc, std::string message) {
    report(DiagSeverity::Error, loc, std::move(message));
  }
  void warning(SourceLocation loc, std::string message) {
    report(DiagSeverity::Warning, loc, std::move(message));
  }
  void note(SourceLocation loc, std::string message) {
    report(DiagSeverity::Note, loc, std::move(message));
  }

  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] std::size_t errorCount() const { return errorCount_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  [[nodiscard]] std::string str() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errorCount_ = 0;
};

}  // namespace flexcl
