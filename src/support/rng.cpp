#include "support/rng.h"

#include <cstddef>

namespace flexcl {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t v = next();
    if (v >= threshold) return v % bound;
  }
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(nextBelow(span));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextDouble(double lo, double hi) {
  return lo + (hi - lo) * nextDouble();
}

double Rng::nextGaussian() {
  // Irwin-Hall: sum of 4 uniforms has variance 4/12; scale to sd 1.
  double s = 0.0;
  for (int i = 0; i < 4; ++i) s += nextDouble();
  return (s - 2.0) * 1.7320508075688772;  // sqrt(12/4)
}

std::uint64_t stableHash(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t stableHashCombine(std::uint64_t a, std::uint64_t b) {
  return stableHash(&b, sizeof(b), a);
}

}  // namespace flexcl
