#include "support/diagnostics.h"

#include <sstream>

namespace flexcl {

void DiagnosticEngine::report(DiagSeverity severity, SourceLocation loc,
                              std::string message) {
  if (severity == DiagSeverity::Error) ++errorCount_;
  diags_.push_back(Diagnostic{severity, loc, std::move(message)});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    if (d.location.isValid()) os << d.location.line << ':' << d.location.column << ": ";
    switch (d.severity) {
      case DiagSeverity::Note: os << "note: "; break;
      case DiagSeverity::Warning: os << "warning: "; break;
      case DiagSeverity::Error: os << "error: "; break;
    }
    os << d.message << '\n';
  }
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errorCount_ = 0;
}

}  // namespace flexcl
