// Source locations and ranges for the OpenCL frontend.
#pragma once

#include <cstdint>

namespace flexcl {

/// A position in a source buffer. Offsets are byte offsets from the start of
/// the buffer; line/column are 1-based and precomputed by the lexer.
struct SourceLocation {
  std::uint32_t offset = 0;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool isValid() const { return line != 0; }
  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// Half-open range [begin, end) in a source buffer.
struct SourceRange {
  SourceLocation begin;
  SourceLocation end;
};

}  // namespace flexcl
