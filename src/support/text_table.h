// Plain-text table rendering used by the benchmark harnesses to print
// paper-style tables (Table 2, DSE summaries, ...).
#pragma once

#include <string>
#include <vector>

namespace flexcl {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision. Rendering pads each column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(std::string value);
  TextTable& cell(const char* value) { return cell(std::string(value)); }
  TextTable& cell(std::int64_t value);
  TextTable& cell(std::size_t value);
  TextTable& cell(double value, int precision = 1);

  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace flexcl
