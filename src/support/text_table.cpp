#include "support/text_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace flexcl {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(std::int64_t value) { return cell(std::to_string(value)); }
TextTable& TextTable::cell(std::size_t value) { return cell(std::to_string(value)); }

TextTable& TextTable::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << "| " << v << std::string(widths[c] - v.size(), ' ') << ' ';
    }
    os << "|\n";
  };
  emitRow(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& r : rows_) emitRow(r);
  return os.str();
}

}  // namespace flexcl
