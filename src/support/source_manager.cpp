#include "support/source_manager.h"

#include <algorithm>

namespace flexcl {

SourceManager::SourceManager(std::string text, std::string name)
    : text_(std::move(text)), name_(std::move(name)) {
  lineStarts_.push_back(0);
  for (std::uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') lineStarts_.push_back(i + 1);
  }
}

SourceLocation SourceManager::locate(std::uint32_t offset) const {
  offset = std::min<std::uint32_t>(offset, static_cast<std::uint32_t>(text_.size()));
  auto it = std::upper_bound(lineStarts_.begin(), lineStarts_.end(), offset);
  const auto lineIndex = static_cast<std::uint32_t>(it - lineStarts_.begin() - 1);
  SourceLocation loc;
  loc.offset = offset;
  loc.line = lineIndex + 1;
  loc.column = offset - lineStarts_[lineIndex] + 1;
  return loc;
}

std::string_view SourceManager::line(std::uint32_t lineNumber) const {
  if (lineNumber == 0 || lineNumber > lineStarts_.size()) return {};
  const std::uint32_t begin = lineStarts_[lineNumber - 1];
  std::uint32_t end = lineNumber < lineStarts_.size()
                          ? lineStarts_[lineNumber] - 1
                          : static_cast<std::uint32_t>(text_.size());
  if (end > begin && text_[end - 1] == '\r') --end;
  return std::string_view(text_).substr(begin, end - begin);
}

}  // namespace flexcl
