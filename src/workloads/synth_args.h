// Synthesised kernel arguments for driving arbitrary .cl kernels (the CLI
// and `flexcl serve`): every pointer argument gets a buffer of `elems`
// elements filled with small pseudo-random values from a fixed seed, scalar
// int arguments receive `elems`, scalar float arguments 1.0. Deterministic —
// the same signature and elems always produce the same bytes, which is what
// lets serve responses and store entries be content-addressed.
#pragma once

#include <cstdint>
#include <vector>

#include "interp/interpreter.h"
#include "ir/lower.h"

namespace flexcl::workloads {

void synthesiseArgs(const ir::Function& fn, std::uint64_t elems,
                    std::vector<std::vector<std::uint8_t>>* buffers,
                    std::vector<interp::KernelArg>* args);

}  // namespace flexcl::workloads
