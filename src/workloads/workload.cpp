#include "workloads/workload.h"

#include <cstring>

namespace flexcl::workloads {

int DataBuilder::addRawBuffer(std::vector<std::uint8_t> bytes) {
  const int index = static_cast<int>(buffers.size());
  buffers.push_back(std::move(bytes));
  args.push_back(interp::KernelArg::buffer(index));
  return index;
}

int DataBuilder::addFloatBuffer(std::size_t count, double lo, double hi) {
  std::vector<std::uint8_t> bytes(count * 4);
  for (std::size_t i = 0; i < count; ++i) {
    const float v = static_cast<float>(rng_.nextDouble(lo, hi));
    std::memcpy(bytes.data() + i * 4, &v, 4);
  }
  return addRawBuffer(std::move(bytes));
}

int DataBuilder::addIntBuffer(std::size_t count, std::int64_t lo, std::int64_t hi) {
  std::vector<std::uint8_t> bytes(count * 4);
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<std::int32_t>(rng_.nextInRange(lo, hi));
    std::memcpy(bytes.data() + i * 4, &v, 4);
  }
  return addRawBuffer(std::move(bytes));
}

int DataBuilder::addZeroFloatBuffer(std::size_t count) {
  return addRawBuffer(std::vector<std::uint8_t>(count * 4, 0));
}

int DataBuilder::addZeroIntBuffer(std::size_t count) {
  return addRawBuffer(std::vector<std::uint8_t>(count * 4, 0));
}

void DataBuilder::addIntArg(std::int64_t value) {
  args.push_back(interp::KernelArg::intScalar(value));
}

void DataBuilder::addFloatArg(double value) {
  args.push_back(interp::KernelArg::floatScalar(value));
}

std::optional<CompiledWorkload> compileWorkload(const Workload& workload,
                                                std::string* error) {
  DiagnosticEngine diags;
  auto program = ir::compileOpenCl(workload.source, diags, workload.defines);
  if (!program) {
    if (error) *error = workload.fullName() + ": " + diags.str();
    return std::nullopt;
  }
  const ir::Function* fn = program->module->findFunction(workload.kernel);
  if (!fn) {
    if (error) *error = workload.fullName() + ": kernel function not found";
    return std::nullopt;
  }

  CompiledWorkload compiled;
  compiled.meta = workload;
  compiled.program = std::move(program);
  compiled.fn = fn;

  DataBuilder builder(stableHash(workload.kernel.data(), workload.kernel.size(),
                                 stableHash(workload.benchmark.data(),
                                            workload.benchmark.size())));
  workload.setup(builder);
  compiled.buffers = std::move(builder.buffers);
  compiled.args = std::move(builder.args);

  if (compiled.args.size() != fn->arguments().size()) {
    if (error) {
      *error = workload.fullName() + ": setup provided " +
               std::to_string(compiled.args.size()) + " args, kernel expects " +
               std::to_string(fn->arguments().size());
    }
    return std::nullopt;
  }
  return compiled;
}

const Workload* findWorkload(const std::string& suite, const std::string& benchmark,
                             const std::string& kernel) {
  const std::vector<Workload>& list =
      suite == "rodinia" ? rodiniaSuite() : polybenchSuite();
  for (const Workload& w : list) {
    if (w.benchmark == benchmark && w.kernel == kernel) return &w;
  }
  return nullptr;
}

}  // namespace flexcl::workloads
