// Rodinia benchmark suite, part 2: lavaMD, leukocyte, lud, nn, nw,
// particlefilter, pathfinder, srad, streamcluster.
#include <cstring>

#include "workloads/suite_detail.h"

namespace flexcl::workloads::detail {

void addRodiniaPart2(std::vector<Workload>& out) {
  // ------------------------------------------------------------------- lavaMD
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "lavaMD";
    w.kernel = "lavaMD";
    w.defines = {{"NEIGH", "16"}, {"A2", "2.0f"}};
    w.source = R"CL(
__kernel void lavaMD(__global const float* pos, __global const float* charge,
                     __global float* force) {
  int i = get_global_id(0);
  float px = pos[i * 3];
  float py = pos[i * 3 + 1];
  float pz = pos[i * 3 + 2];
  float fx = 0.0f;
  float fy = 0.0f;
  float fz = 0.0f;
  int boxStart = (i / NEIGH) * NEIGH;
  for (int j = 0; j < NEIGH; j++) {
    int idx = boxStart + j;
    float dx = px - pos[idx * 3];
    float dy = py - pos[idx * 3 + 1];
    float dz = pz - pos[idx * 3 + 2];
    float r2 = dx * dx + dy * dy + dz * dz + 0.5f;
    float vij = exp(-A2 * r2);
    float fs = 2.0f * vij * charge[idx];
    fx += fs * dx;
    fy += fs * dy;
    fz += fs * dz;
  }
  force[i * 3] = fx;
  force[i * 3 + 1] = fy;
  force[i * 3 + 2] = fz;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024 * 3, -1.0, 1.0);
      b.addFloatBuffer(1024, 0.1, 1.0);
      b.addZeroFloatBuffer(1024 * 3);
    };
    out.push_back(std::move(w));
  }

  // ---------------------------------------------------------------- leukocyte
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "leukocyte";
    w.kernel = "gicov";
    w.defines = {{"NDIR", "8"}, {"NSAMPLE", "8"}, {"SIZE", "2048"},
                 {"COS_T", "0.92f"}, {"SIN_T", "0.38f"}};
    w.source = R"CL(
__kernel void gicov(__global const float* grad_x, __global const float* grad_y,
                    __global float* gicov_out) {
  int i = get_global_id(0);
  float maxScore = 0.0f;
  for (int d = 0; d < NDIR; d++) {
    float sum = 0.0f;
    float sum2 = 0.0f;
    for (int s = 0; s < NSAMPLE; s++) {
      int off = (i + d * 7 + s * 13) & (SIZE - 1);
      float g = grad_x[off] * COS_T + grad_y[off] * SIN_T;
      sum += g;
      sum2 += g * g;
    }
    float mean = sum / (float)NSAMPLE;
    float var = sum2 / (float)NSAMPLE - mean * mean;
    if (var > 0.0001f) {
      float score = mean * mean / var;
      if (score > maxScore) {
        maxScore = score;
      }
    }
  }
  gicov_out[i] = maxScore;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, -1.0, 1.0);
      b.addFloatBuffer(2048, -1.0, 1.0);
      b.addZeroFloatBuffer(1024);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "leukocyte";
    w.kernel = "dilate";
    w.source = R"CL(
__kernel void dilate(__global const float* img, __global float* out, int width,
                     int height) {
  int i = get_global_id(0);
  int x = i % width;
  int y = i / width;
  float m = 0.0f;
  for (int dy = -2; dy <= 2; dy++) {
    for (int dx = -2; dx <= 2; dx++) {
      int xx = x + dx;
      int yy = y + dy;
      if (xx >= 0) {
        if (xx < width) {
          if (yy >= 0) {
            if (yy < height) {
              float v = img[yy * width + xx];
              if (v > m) {
                m = v;
              }
            }
          }
        }
      }
    }
  }
  out[i] = m;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, 0.0, 1.0);
      b.addZeroFloatBuffer(2048);
      b.addIntArg(64);
      b.addIntArg(32);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "leukocyte";
    w.kernel = "imgvf";
    w.defines = {{"MU", "0.05f"}};
    w.source = R"CL(
__kernel void imgvf(__global const float* vf_in, __global float* vf_out,
                    __global const float* img, int width, int height) {
  int i = get_global_id(0);
  int x = i % width;
  int y = i / width;
  float c = vf_in[i];
  float up = c;
  float down = c;
  float left = c;
  float right = c;
  if (y > 0) { up = vf_in[i - width]; }
  if (y < height - 1) { down = vf_in[i + width]; }
  if (x > 0) { left = vf_in[i - 1]; }
  if (x < width - 1) { right = vf_in[i + 1]; }
  float lap = up + down + left + right - 4.0f * c;
  float b = img[i];
  vf_out[i] = c + MU * lap - b * (c - img[i]) * fabs(b);
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, -1.0, 1.0);
      b.addZeroFloatBuffer(2048);
      b.addFloatBuffer(2048, -1.0, 1.0);
      b.addIntArg(64);
      b.addIntArg(32);
    };
    out.push_back(std::move(w));
  }

  // ---------------------------------------------------------------------- lud
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "lud";
    w.kernel = "diagonal";
    w.defines = {{"BS", "16"}, {"DIM", "64"}};
    w.source = R"CL(
__kernel void diagonal(__global float* m) {
  __local float shadow[BS][BS];
  int gid = get_global_id(0);
  int tx = gid % BS;
  int block = gid / BS;
  int offset = block * BS;
  for (int i = 0; i < BS; i++) {
    shadow[i][tx] = m[(offset + i) * DIM + offset + tx];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int i = 0; i < BS - 1; i++) {
    if (tx > i) {
      shadow[tx][i] = shadow[tx][i] / shadow[i][i];
      for (int j = i + 1; j < BS; j++) {
        shadow[tx][j] -= shadow[tx][i] * shadow[i][j];
      }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  for (int i = 0; i < BS; i++) {
    m[(offset + i) * DIM + offset + tx] = shadow[i][tx];
  }
}
)CL";
    w.range.global = {64, 1, 1};
    w.setup = [](DataBuilder& b) { b.addFloatBuffer(64 * 64, 1.0, 2.0); };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "lud";
    w.kernel = "perimeter";
    w.defines = {{"BS", "16"}, {"DIM", "64"}};
    w.source = R"CL(
__kernel void perimeter(__global float* m, int offset) {
  __local float dia[BS][BS];
  int tx = get_global_id(0) % BS;
  int strip = get_global_id(0) / BS;
  for (int i = 0; i < BS; i++) {
    dia[i][tx] = m[(offset + i) * DIM + offset + tx];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  int col = offset + BS + strip * BS + tx;
  if (col < DIM) {
    for (int i = 0; i < BS; i++) {
      float sum = 0.0f;
      for (int j = 0; j < BS; j++) {
        if (j < i) {
          sum += dia[i][j] * m[(offset + j) * DIM + col];
        }
      }
      m[(offset + i) * DIM + col] -= sum;
    }
  }
}
)CL";
    w.range.global = {64, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(64 * 64, 1.0, 2.0);
      b.addIntArg(0);
    };
    out.push_back(std::move(w));
  }

  // ----------------------------------------------------------------------- nn
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "nn";
    w.kernel = "nn";
    w.source = R"CL(
typedef struct { float lat; float lng; } LatLong;

__kernel void nn(__global const LatLong* locations, __global float* distances,
                 int numRecords, float lat, float lng) {
  int gid = get_global_id(0);
  if (gid < numRecords) {
    float dLat = lat - locations[gid].lat;
    float dLng = lng - locations[gid].lng;
    distances[gid] = sqrt(dLat * dLat + dLng * dLng);
  }
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048 * 2, -90.0, 90.0);  // packed LatLong records
      b.addZeroFloatBuffer(2048);
      b.addIntArg(2048);
      b.addFloatArg(30.0);
      b.addFloatArg(-60.0);
    };
    out.push_back(std::move(w));
  }

  // ----------------------------------------------------------------------- nw
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "nw";
    w.kernel = "nw1";
    w.defines = {{"DIM", "64"}};
    w.source = R"CL(
__kernel void nw1(__global const int* similarity, __global int* matrix, int penalty,
                  int diag) {
  int tid = get_global_id(0);
  int x = tid + 1;
  int y = diag - tid;
  if (y >= 1) {
    if (y <= DIM) {
      if (x <= DIM) {
        int idx = y * (DIM + 1) + x;
        int up = matrix[idx - (DIM + 1)] - penalty;
        int left = matrix[idx - 1] - penalty;
        int corner = matrix[idx - (DIM + 1) - 1] + similarity[idx];
        int best = up;
        if (left > best) { best = left; }
        if (corner > best) { best = corner; }
        matrix[idx] = best;
      }
    }
  }
}
)CL";
    w.range.global = {64, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addIntBuffer(65 * 65, -4, 4);
      b.addIntBuffer(65 * 65, -10, 10);
      b.addIntArg(2);
      b.addIntArg(32);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "nw";
    w.kernel = "nw2";
    w.defines = {{"DIM", "64"}};
    w.source = R"CL(
__kernel void nw2(__global const int* similarity, __global int* matrix, int penalty,
                  int diag) {
  int tid = get_global_id(0);
  int x = DIM - tid;
  int y = diag + tid;
  if (x >= 1) {
    if (y <= DIM) {
      int idx = y * (DIM + 1) + x;
      int up = matrix[idx - (DIM + 1)] - penalty;
      int left = matrix[idx - 1] - penalty;
      int corner = matrix[idx - (DIM + 1) - 1] + similarity[idx];
      int best = up;
      if (left > best) { best = left; }
      if (corner > best) { best = corner; }
      matrix[idx] = best;
    }
  }
}
)CL";
    w.range.global = {64, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addIntBuffer(65 * 65, -4, 4);
      b.addIntBuffer(65 * 65, -10, 10);
      b.addIntArg(2);
      b.addIntArg(16);
    };
    out.push_back(std::move(w));
  }

  // ------------------------------------------------------------ particlefilter
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "particlefilter";
    w.kernel = "find_index";
    w.defines = {{"CDF_LEN", "128"}};
    w.source = R"CL(
__kernel void find_index(__global const float* cdf, __global const float* u,
                         __global int* indices) {
  int tid = get_global_id(0);
  float val = u[tid];
  int index = -1;
  for (int i = 0; i < CDF_LEN; i++) {
    if (index < 0) {
      if (cdf[i] >= val) {
        index = i;
      }
    }
  }
  if (index < 0) {
    index = CDF_LEN - 1;
  }
  indices[tid] = index;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      // Monotone cdf in [0, 1].
      std::vector<std::uint8_t> cdf(128 * 4);
      for (int i = 0; i < 128; ++i) {
        const float v = static_cast<float>(i + 1) / 128.0f;
        std::memcpy(cdf.data() + i * 4, &v, 4);
      }
      b.addRawBuffer(std::move(cdf));
      b.addFloatBuffer(1024, 0.0, 1.0);
      b.addZeroIntBuffer(1024);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "particlefilter";
    w.kernel = "normalize";
    w.source = R"CL(
__kernel void normalize(__global float* weights, __global const float* sumBuf) {
  int tid = get_global_id(0);
  weights[tid] = weights[tid] / sumBuf[0];
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024, 0.0, 1.0);
      b.addFloatBuffer(1, 100.0, 200.0);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "particlefilter";
    w.kernel = "sum";
    w.source = R"CL(
__kernel void sum(__global const float* weights, __global float* partial) {
  __local float buf[256];
  int l = get_local_id(0);
  int g = get_global_id(0);
  int ls = get_local_size(0);
  buf[l] = weights[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 1; s < ls; s *= 2) {
    int idx = 2 * s * l;
    if (idx + s < ls) {
      buf[idx] += buf[idx + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (l == 0) {
    partial[get_group_id(0)] = buf[0];
  }
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024, 0.0, 1.0);
      b.addZeroFloatBuffer(64);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "particlefilter";
    w.kernel = "likelihood";
    w.defines = {{"NUM_ONES", "12"}};
    w.source = R"CL(
__kernel void likelihood(__global const float* arrayX, __global const float* arrayY,
                         __global float* weights, __global const int* objxy) {
  int i = get_global_id(0);
  float likelihoodSum = 0.0f;
  for (int j = 0; j < NUM_ONES; j++) {
    int ox = objxy[j * 2];
    int oy = objxy[j * 2 + 1];
    float dx = arrayX[i] - (float)ox;
    float dy = arrayY[i] - (float)oy;
    likelihoodSum += (dx * dx + dy * dy) / 50.0f;
  }
  weights[i] = exp(-likelihoodSum / (float)NUM_ONES);
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024, 0.0, 64.0);
      b.addFloatBuffer(1024, 0.0, 64.0);
      b.addZeroFloatBuffer(1024);
      b.addIntBuffer(24, 0, 64);
    };
    out.push_back(std::move(w));
  }

  // --------------------------------------------------------------- pathfinder
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "pathfinder";
    w.kernel = "dynproc";
    w.source = R"CL(
__kernel void dynproc(__global const int* wall, __global const int* src,
                      __global int* dst) {
  __local int prev[256];
  int l = get_local_id(0);
  int g = get_global_id(0);
  int ls = get_local_size(0);
  prev[l] = src[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  int center = prev[l];
  int left = center;
  int right = center;
  if (l > 0) { left = prev[l - 1]; }
  if (l < ls - 1) { right = prev[l + 1]; }
  int best = center;
  if (left < best) { best = left; }
  if (right < best) { best = right; }
  dst[g] = best + wall[g];
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addIntBuffer(2048, 0, 10);
      b.addIntBuffer(2048, 0, 100);
      b.addZeroIntBuffer(2048);
    };
    out.push_back(std::move(w));
  }

  // --------------------------------------------------------------------- srad
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "srad";
    w.kernel = "extract";
    w.source = R"CL(
__kernel void extract(__global float* image) {
  int i = get_global_id(0);
  image[i] = exp(image[i] / 255.0f);
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) { b.addFloatBuffer(2048, 0.0, 255.0); };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "srad";
    w.kernel = "prepare";
    w.source = R"CL(
__kernel void prepare(__global const float* image, __global float* sums,
                      __global float* sums2) {
  int i = get_global_id(0);
  float v = image[i];
  sums[i] = v;
  sums2[i] = v * v;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, 0.9, 2.8);
      b.addZeroFloatBuffer(2048);
      b.addZeroFloatBuffer(2048);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "srad";
    w.kernel = "reduce";
    w.source = R"CL(
__kernel void reduce(__global float* sums, __global float* sums2) {
  __local float s1[256];
  __local float s2[256];
  int l = get_local_id(0);
  int g = get_global_id(0);
  int ls = get_local_size(0);
  s1[l] = sums[g];
  s2[l] = sums2[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int stride = 1; stride < ls; stride *= 2) {
    int idx = 2 * stride * l;
    if (idx + stride < ls) {
      s1[idx] += s1[idx + stride];
      s2[idx] += s2[idx + stride];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (l == 0) {
    sums[get_group_id(0)] = s1[0];
    sums2[get_group_id(0)] = s2[0];
  }
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, 0.9, 2.8);
      b.addFloatBuffer(2048, 0.8, 8.0);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "srad";
    w.kernel = "srad";
    w.defines = {{"Q0SQR", "0.05f"}};
    w.source = R"CL(
__kernel void srad(__global const float* image, __global float* dN,
                   __global float* dS, __global float* dW, __global float* dE,
                   __global float* c, int cols, int rows) {
  int i = get_global_id(0);
  int x = i % cols;
  int y = i / cols;
  float Jc = image[i];
  float n = Jc;
  float s = Jc;
  float west = Jc;
  float east = Jc;
  if (y > 0) { n = image[i - cols]; }
  if (y < rows - 1) { s = image[i + cols]; }
  if (x > 0) { west = image[i - 1]; }
  if (x < cols - 1) { east = image[i + 1]; }
  float dn = n - Jc;
  float ds = s - Jc;
  float dw = west - Jc;
  float de = east - Jc;
  float G2 = (dn * dn + ds * ds + dw * dw + de * de) / (Jc * Jc);
  float L = (dn + ds + dw + de) / Jc;
  float num = 0.5f * G2 - 0.0625f * L * L;
  float den = 1.0f + 0.25f * L;
  float qsqr = num / (den * den);
  den = (qsqr - Q0SQR) / (Q0SQR * (1.0f + Q0SQR));
  float coeff = 1.0f / (1.0f + den);
  if (coeff < 0.0f) { coeff = 0.0f; }
  if (coeff > 1.0f) { coeff = 1.0f; }
  dN[i] = dn;
  dS[i] = ds;
  dW[i] = dw;
  dE[i] = de;
  c[i] = coeff;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, 0.9, 2.8);
      b.addZeroFloatBuffer(2048);
      b.addZeroFloatBuffer(2048);
      b.addZeroFloatBuffer(2048);
      b.addZeroFloatBuffer(2048);
      b.addZeroFloatBuffer(2048);
      b.addIntArg(64);
      b.addIntArg(32);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "srad";
    w.kernel = "srad2";
    w.defines = {{"LAMBDA", "0.5f"}};
    w.source = R"CL(
__kernel void srad2(__global float* image, __global const float* dN,
                    __global const float* dS, __global const float* dW,
                    __global const float* dE, __global const float* c, int cols,
                    int rows) {
  int i = get_global_id(0);
  int x = i % cols;
  int y = i / cols;
  float cN = c[i];
  float cS = cN;
  float cW = cN;
  float cE = cN;
  if (y < rows - 1) { cS = c[i + cols]; }
  if (x < cols - 1) { cE = c[i + 1]; }
  float D = cN * dN[i] + cS * dS[i] + cW * dW[i] + cE * dE[i];
  image[i] = image[i] + 0.25f * LAMBDA * D;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, 0.9, 2.8);
      b.addFloatBuffer(2048, -0.5, 0.5);
      b.addFloatBuffer(2048, -0.5, 0.5);
      b.addFloatBuffer(2048, -0.5, 0.5);
      b.addFloatBuffer(2048, -0.5, 0.5);
      b.addFloatBuffer(2048, 0.0, 1.0);
      b.addIntArg(64);
      b.addIntArg(32);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "srad";
    w.kernel = "compress";
    w.source = R"CL(
__kernel void compress(__global float* image) {
  int i = get_global_id(0);
  image[i] = log(image[i]) * 255.0f;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) { b.addFloatBuffer(2048, 1.0, 3.0); };
    out.push_back(std::move(w));
  }

  // ------------------------------------------------------------ streamcluster
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "streamcluster";
    w.kernel = "memset";
    w.source = R"CL(
__kernel void memset(__global int* a, int value) {
  a[get_global_id(0)] = value;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addZeroIntBuffer(2048);
      b.addIntArg(0);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "streamcluster";
    w.kernel = "pgain";
    w.defines = {{"K", "8"}, {"DIM", "8"}, {"WEIGHT", "1.5f"}};
    w.source = R"CL(
__kernel void pgain(__global const float* points, __global const float* centers,
                    __global float* cost, __global int* assign) {
  int pid = get_global_id(0);
  float best = 3.0e38f;
  int bestIdx = 0;
  for (int c = 0; c < K; c++) {
    float d = 0.0f;
    for (int f = 0; f < DIM; f++) {
      float diff = points[pid * DIM + f] - centers[c * DIM + f];
      d += diff * diff;
    }
    float weighted = d * WEIGHT;
    if (weighted < best) {
      best = weighted;
      bestIdx = c;
    }
  }
  cost[pid] = best;
  assign[pid] = bestIdx;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024 * 8, 0.0, 10.0);
      b.addFloatBuffer(8 * 8, 0.0, 10.0);
      b.addZeroFloatBuffer(1024);
      b.addZeroIntBuffer(1024);
    };
    out.push_back(std::move(w));
  }
}

}  // namespace flexcl::workloads::detail
