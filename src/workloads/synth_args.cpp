#include "workloads/synth_args.h"

#include <algorithm>
#include <cstring>

#include "support/rng.h"

namespace flexcl::workloads {

void synthesiseArgs(const ir::Function& fn, std::uint64_t elems,
                    std::vector<std::vector<std::uint8_t>>* buffers,
                    std::vector<interp::KernelArg>* args) {
  Rng rng(0xc11);
  for (const auto& arg : fn.arguments()) {
    const ir::Type* t = arg->type();
    if (t->isPointer()) {
      const std::uint64_t bytes =
          elems * std::max<std::uint64_t>(4, t->element()->sizeInBytes());
      std::vector<std::uint8_t> data(bytes);
      if (t->element()->isFloat() ||
          (t->element()->isStruct() || t->element()->isVector())) {
        for (std::uint64_t e = 0; e + 4 <= bytes; e += 4) {
          const float v = static_cast<float>(rng.nextDouble(0.1, 2.0));
          std::memcpy(data.data() + e, &v, 4);
        }
      } else {
        for (std::uint64_t e = 0; e + 4 <= bytes; e += 4) {
          const std::int32_t v = static_cast<std::int32_t>(
              rng.nextBelow(std::max<std::uint64_t>(1, elems)));
          std::memcpy(data.data() + e, &v, 4);
        }
      }
      const int index = static_cast<int>(buffers->size());
      buffers->push_back(std::move(data));
      args->push_back(interp::KernelArg::buffer(index));
    } else if (t->isFloat()) {
      args->push_back(interp::KernelArg::floatScalar(1.0));
    } else {
      args->push_back(
          interp::KernelArg::intScalar(static_cast<std::int64_t>(elems)));
    }
  }
}

}  // namespace flexcl::workloads
