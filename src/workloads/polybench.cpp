// PolyBench/GPU suite (InPar'12): 15 kernels with regular loop nests and
// affine accesses — the paper notes these "have simpler structures and are
// easy to analyze" (§4.2). Matrices are NxN with N = 32 so the full design
// space simulates quickly; structure (loop depth, access pattern) matches
// the originals.
#include "workloads/suite_detail.h"

namespace flexcl::workloads {
namespace {

constexpr int kN = 32;

Workload makeMatrixKernel(const std::string& benchmark, const std::string& kernel,
                          const std::string& body,
                          std::function<void(DataBuilder&)> setup,
                          interp::NdRange range) {
  Workload w;
  w.suite = "polybench";
  w.benchmark = benchmark;
  w.kernel = kernel;
  w.defines = {{"N", std::to_string(kN)}};
  w.source = body;
  w.range = range;
  w.setup = std::move(setup);
  return w;
}

interp::NdRange range2d() {
  interp::NdRange r;
  r.global = {kN, kN, 1};
  return r;
}

interp::NdRange range1d() {
  interp::NdRange r;
  r.global = {kN * kN, 1, 1};
  return r;
}

}  // namespace

const std::vector<Workload>& polybenchSuite() {
  static const std::vector<Workload> suite = [] {
    std::vector<Workload> list;

    // 2MM: D = A*B, E = C*D (first product kernel; structure identical for
    // both, so one kernel with two tensors).
    list.push_back(makeMatrixKernel(
        "2mm", "mm2_k1",
        R"CL(
__kernel void mm2_k1(__global const float* A, __global const float* B,
                     __global float* D) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < N; k++) {
    acc += A[i * N + k] * B[k * N + j];
  }
  D[i * N + j] = acc;
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addZeroFloatBuffer(kN * kN);
        },
        range2d()));

    // 3MM: three chained products; the representative kernel fuses one
    // product plus the accumulate of the previous stage.
    list.push_back(makeMatrixKernel(
        "3mm", "mm3_k1",
        R"CL(
__kernel void mm3_k1(__global const float* A, __global const float* B,
                     __global const float* C, __global float* G) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float e = 0.0f;
  for (int k = 0; k < N; k++) {
    e += A[i * N + k] * B[k * N + j];
  }
  float g = 0.0f;
  for (int k = 0; k < N; k++) {
    g += e * C[k * N + j];
  }
  G[i * N + j] = g;
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addZeroFloatBuffer(kN * kN);
        },
        range2d()));

    // ATAX: y = A^T (A x).
    {
      interp::NdRange r;
      r.global = {kN * kN, 1, 1};
      list.push_back(makeMatrixKernel(
          "atax", "atax",
          R"CL(
__kernel void atax(__global const float* A, __global const float* x,
                   __global float* y) {
  int row = get_global_id(0) % N;
  float tmp = 0.0f;
  for (int k = 0; k < N; k++) {
    tmp += A[row * N + k] * x[k];
  }
  float acc = 0.0f;
  for (int k = 0; k < N; k++) {
    acc += A[k * N + row] * tmp;
  }
  y[get_global_id(0)] = acc;
}
)CL",
          [](DataBuilder& b) {
            b.addFloatBuffer(kN * kN, -1.0, 1.0);
            b.addFloatBuffer(kN, -1.0, 1.0);
            b.addZeroFloatBuffer(kN * kN);
          },
          r));
    }

    // BICG: q = A p, s = A^T r.
    list.push_back(makeMatrixKernel(
        "bicg", "bicg",
        R"CL(
__kernel void bicg(__global const float* A, __global const float* p,
                   __global const float* r, __global float* q,
                   __global float* s) {
  int i = get_global_id(0) % N;
  float qv = 0.0f;
  float sv = 0.0f;
  for (int k = 0; k < N; k++) {
    qv += A[i * N + k] * p[k];
    sv += A[k * N + i] * r[k];
  }
  q[get_global_id(0)] = qv;
  s[get_global_id(0)] = sv;
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN, -1.0, 1.0);
          b.addFloatBuffer(kN, -1.0, 1.0);
          b.addZeroFloatBuffer(kN * kN);
          b.addZeroFloatBuffer(kN * kN);
        },
        range1d()));

    // 2DCONV: 3x3 convolution.
    list.push_back(makeMatrixKernel(
        "conv2d", "conv2d",
        R"CL(
__kernel void conv2d(__global const float* in, __global float* out) {
  int j = get_global_id(0);
  int i = get_global_id(1);
  float acc = 0.0f;
  if (i > 0) {
    if (i < N - 1) {
      if (j > 0) {
        if (j < N - 1) {
          acc = 0.2f * in[(i - 1) * N + (j - 1)] - 0.3f * in[(i - 1) * N + j] +
                0.4f * in[(i - 1) * N + (j + 1)] - 0.5f * in[i * N + (j - 1)] +
                0.6f * in[i * N + j] - 0.7f * in[i * N + (j + 1)] +
                0.8f * in[(i + 1) * N + (j - 1)] - 0.9f * in[(i + 1) * N + j] +
                0.10f * in[(i + 1) * N + (j + 1)];
        }
      }
    }
  }
  out[i * N + j] = acc;
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addZeroFloatBuffer(kN * kN);
        },
        range2d()));

    // 3DCONV: 3x3x3 convolution over a shallow volume.
    {
      Workload w = makeMatrixKernel(
          "conv3d", "conv3d",
          R"CL(
__kernel void conv3d(__global const float* in, __global float* out) {
  int j = get_global_id(0);
  int i = get_global_id(1);
  for (int k = 1; k < DEPTH - 1; k++) {
    float acc = 0.0f;
    if (i > 0) {
      if (i < N - 1) {
        if (j > 0) {
          if (j < N - 1) {
            int c = k * N * N + i * N + j;
            acc = 0.5f * in[c] + 0.25f * (in[c - 1] + in[c + 1]) +
                  0.125f * (in[c - N] + in[c + N]) +
                  0.0625f * (in[c - N * N] + in[c + N * N]);
          }
        }
      }
    }
    out[k * N * N + i * N + j] = acc;
  }
}
)CL",
          [](DataBuilder& b) {
            b.addFloatBuffer(kN * kN * 4, -1.0, 1.0);
            b.addZeroFloatBuffer(kN * kN * 4);
          },
          range2d());
      w.defines["DEPTH"] = "4";
      list.push_back(std::move(w));
    }

    // CORR: correlation matrix row.
    list.push_back(makeMatrixKernel(
        "corr", "corr",
        R"CL(
__kernel void corr(__global const float* data, __global const float* mean,
                   __global const float* stddev, __global float* symmat) {
  int j1 = get_global_id(1);
  int j2 = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < N; i++) {
    acc += (data[i * N + j1] - mean[j1]) * (data[i * N + j2] - mean[j2]);
  }
  symmat[j1 * N + j2] = acc / ((float)N * stddev[j1] * stddev[j2] + 0.001f);
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN, -0.1, 0.1);
          b.addFloatBuffer(kN, 0.5, 1.5);
          b.addZeroFloatBuffer(kN * kN);
        },
        range2d()));

    // COVAR: covariance matrix.
    list.push_back(makeMatrixKernel(
        "covar", "covar",
        R"CL(
__kernel void covar(__global const float* data, __global const float* mean,
                    __global float* symmat) {
  int j1 = get_global_id(1);
  int j2 = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < N; i++) {
    acc += (data[i * N + j1] - mean[j1]) * (data[i * N + j2] - mean[j2]);
  }
  symmat[j1 * N + j2] = acc / (float)(N - 1);
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN, -0.1, 0.1);
          b.addZeroFloatBuffer(kN * kN);
        },
        range2d()));

    // FDTD-2D: one field-update step.
    list.push_back(makeMatrixKernel(
        "fdtd2d", "fdtd2d",
        R"CL(
__kernel void fdtd2d(__global float* ex, __global float* ey, __global float* hz) {
  int j = get_global_id(0);
  int i = get_global_id(1);
  int c = i * N + j;
  if (i > 0) {
    ey[c] = ey[c] - 0.5f * (hz[c] - hz[c - N]);
  }
  if (j > 0) {
    ex[c] = ex[c] - 0.5f * (hz[c] - hz[c - 1]);
  }
  if (i < N - 1) {
    if (j < N - 1) {
      hz[c] = hz[c] - 0.7f * (ex[c + 1] - ex[c] + ey[c + N] - ey[c]);
    }
  }
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
        },
        range2d()));

    // GEMM: C = alpha*A*B + beta*C.
    list.push_back(makeMatrixKernel(
        "gemm", "gemm",
        R"CL(
__kernel void gemm(__global const float* A, __global const float* B,
                   __global float* C, float alpha, float beta) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < N; k++) {
    acc += A[i * N + k] * B[k * N + j];
  }
  C[i * N + j] = alpha * acc + beta * C[i * N + j];
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatArg(1.5);
          b.addFloatArg(0.5);
        },
        range2d()));

    // GESUMMV: y = alpha*A*x + beta*B*x.
    list.push_back(makeMatrixKernel(
        "gesummv", "gesummv",
        R"CL(
__kernel void gesummv(__global const float* A, __global const float* B,
                      __global const float* x, __global float* y, float alpha,
                      float beta) {
  int i = get_global_id(0) % N;
  float t1 = 0.0f;
  float t2 = 0.0f;
  for (int k = 0; k < N; k++) {
    t1 += A[i * N + k] * x[k];
    t2 += B[i * N + k] * x[k];
  }
  y[get_global_id(0)] = alpha * t1 + beta * t2;
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN, -1.0, 1.0);
          b.addZeroFloatBuffer(kN * kN);
          b.addFloatArg(1.2);
          b.addFloatArg(0.8);
        },
        range1d()));

    // GRAMSCHMIDT: projection step (the inner kernel of the factorisation).
    list.push_back(makeMatrixKernel(
        "gramschmidt", "gramschmidt",
        R"CL(
__kernel void gramschmidt(__global const float* A, __global const float* Q,
                          __global float* R, int col) {
  int j = get_global_id(0) % N;
  float acc = 0.0f;
  for (int i = 0; i < N; i++) {
    acc += Q[i * N + col] * A[i * N + j];
  }
  R[(get_global_id(0) / N) * N + j] = acc;
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addZeroFloatBuffer(kN * kN);
          b.addIntArg(3);
        },
        range1d()));

    // MVT: x1 += A y1; x2 += A^T y2.
    list.push_back(makeMatrixKernel(
        "mvt", "mvt",
        R"CL(
__kernel void mvt(__global const float* A, __global float* x1,
                  __global float* x2, __global const float* y1,
                  __global const float* y2) {
  int i = get_global_id(0) % N;
  float a1 = 0.0f;
  float a2 = 0.0f;
  for (int k = 0; k < N; k++) {
    a1 += A[i * N + k] * y1[k];
    a2 += A[k * N + i] * y2[k];
  }
  x1[get_global_id(0)] += a1;
  x2[get_global_id(0)] += a2;
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN, -1.0, 1.0);
          b.addFloatBuffer(kN, -1.0, 1.0);
        },
        range1d()));

    // SYRK: C = alpha*A*A^T + beta*C.
    list.push_back(makeMatrixKernel(
        "syrk", "syrk",
        R"CL(
__kernel void syrk(__global const float* A, __global float* C, float alpha,
                   float beta) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < N; k++) {
    acc += A[i * N + k] * A[j * N + k];
  }
  C[i * N + j] = alpha * acc + beta * C[i * N + j];
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatArg(1.1);
          b.addFloatArg(0.9);
        },
        range2d()));

    // SYR2K: C = alpha*(A*B^T + B*A^T) + beta*C.
    list.push_back(makeMatrixKernel(
        "syr2k", "syr2k",
        R"CL(
__kernel void syr2k(__global const float* A, __global const float* B,
                    __global float* C, float alpha, float beta) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < N; k++) {
    acc += A[i * N + k] * B[j * N + k] + B[i * N + k] * A[j * N + k];
  }
  C[i * N + j] = alpha * acc + beta * C[i * N + j];
}
)CL",
        [](DataBuilder& b) {
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatBuffer(kN * kN, -1.0, 1.0);
          b.addFloatArg(1.1);
          b.addFloatArg(0.9);
        },
        range2d()));

    return list;
  }();
  return suite;
}

}  // namespace flexcl::workloads
