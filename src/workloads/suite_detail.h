// Internal: suite registration split across translation units.
#pragma once

#include <vector>

#include "workloads/workload.h"

namespace flexcl::workloads::detail {

void addRodiniaPart1(std::vector<Workload>& out);  // backprop .. kmeans
void addRodiniaPart2(std::vector<Workload>& out);  // lavaMD .. streamcluster

}  // namespace flexcl::workloads::detail
