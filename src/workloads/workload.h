// Benchmark workload definitions: OpenCL kernel sources, launch geometry and
// input builders for the Rodinia and PolyBench suites (paper §4.1-§4.2).
//
// The kernels are compact re-implementations that preserve each benchmark's
// loop structure, local-memory usage, barrier placement, and global access
// pattern — the properties the model and simulator consume. Problem sizes
// are scaled down so the System-Run substitute (cycle-level simulation of
// the whole design space) completes in minutes rather than weeks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "interp/interpreter.h"
#include "ir/lower.h"
#include "model/flexcl.h"
#include "support/rng.h"

namespace flexcl::workloads {

/// Builds a workload's buffers and arguments. Buffer-adding helpers append
/// the matching buffer KernelArg, so calls must follow the kernel signature
/// order.
class DataBuilder {
 public:
  explicit DataBuilder(std::uint64_t seed) : rng_(seed) {}

  int addFloatBuffer(std::size_t count, double lo = 0.0, double hi = 1.0);
  int addIntBuffer(std::size_t count, std::int64_t lo, std::int64_t hi);
  /// Zero-initialised buffer of `count` 32-bit elements (outputs).
  int addZeroFloatBuffer(std::size_t count);
  int addZeroIntBuffer(std::size_t count);
  /// Raw bytes, caller fills.
  int addRawBuffer(std::vector<std::uint8_t> bytes);
  void addIntArg(std::int64_t value);
  void addFloatArg(double value);

  [[nodiscard]] Rng& rng() { return rng_; }

  std::vector<std::vector<std::uint8_t>> buffers;
  std::vector<interp::KernelArg> args;

 private:
  Rng rng_;
};

struct Workload {
  std::string suite;      ///< "rodinia" | "polybench"
  std::string benchmark;  ///< e.g. "backprop"
  std::string kernel;     ///< kernel function name, e.g. "layer"
  std::string source;     ///< OpenCL C
  std::unordered_map<std::string, std::string> defines;
  interp::NdRange range;  ///< global size (local comes from design points)
  std::function<void(DataBuilder&)> setup;

  [[nodiscard]] std::string fullName() const {
    return benchmark + "/" + kernel;
  }
};

/// A compiled, data-ready workload.
struct CompiledWorkload {
  Workload meta;
  std::unique_ptr<ir::CompiledProgram> program;
  const ir::Function* fn = nullptr;
  std::vector<std::vector<std::uint8_t>> buffers;
  std::vector<interp::KernelArg> args;

  [[nodiscard]] model::LaunchInfo launch() const {
    model::LaunchInfo info;
    info.fn = fn;
    info.range = meta.range;
    info.args = args;
    info.buffers = &buffers;
    return info;
  }
};

/// Compiles a workload (preprocess/parse/sema/lower/verify) and builds its
/// data. Returns nullopt with `error` filled on failure.
std::optional<CompiledWorkload> compileWorkload(const Workload& workload,
                                                std::string* error = nullptr);

/// The 45 Rodinia kernels of Table 2.
const std::vector<Workload>& rodiniaSuite();
/// The 15 PolyBench/GPU kernels (§4.2).
const std::vector<Workload>& polybenchSuite();

/// Lookup helper (nullptr when absent).
const Workload* findWorkload(const std::string& suite, const std::string& benchmark,
                             const std::string& kernel);

}  // namespace flexcl::workloads
