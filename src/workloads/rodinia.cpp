// Rodinia benchmark suite, part 1: backprop, bfs, b+tree, cfd, dwt2d,
// gaussian, hotspot, hotspot3D, hybridsort, kmeans (see workload.h for the
// scaling rationale). Part 2 lives in rodinia2.cpp.
#include <cstring>

#include "workloads/suite_detail.h"

namespace flexcl::workloads {

const std::vector<Workload>& rodiniaSuite() {
  static const std::vector<Workload> suite = [] {
    std::vector<Workload> list;
    detail::addRodiniaPart1(list);
    detail::addRodiniaPart2(list);
    return list;
  }();
  return suite;
}

namespace detail {

void addRodiniaPart1(std::vector<Workload>& out) {
  // ----------------------------------------------------------------- backprop
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "backprop";
    w.kernel = "layer";
    w.defines = {{"N_IN", "32"}, {"N_OUT", "1024"}};
    w.source = R"CL(
__kernel void layer(__global const float* input, __global const float* weights,
                    __global float* hidden) {
  int j = get_global_id(0);
  float sum = 0.0f;
  for (int i = 0; i < N_IN; i++) {
    sum += input[i] * weights[i * N_OUT + j];
  }
  hidden[j] = 1.0f / (1.0f + exp(-sum));
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(32, -1.0, 1.0);
      b.addFloatBuffer(32 * 1024, -0.5, 0.5);
      b.addZeroFloatBuffer(1024);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "backprop";
    w.kernel = "adjust";
    w.defines = {{"N_OUT", "128"}, {"ETA", "0.3f"}, {"MOMENTUM", "0.3f"}};
    w.source = R"CL(
__kernel void adjust(__global float* weights, __global const float* delta,
                     __global const float* input) {
  int j = get_global_id(0);
  int i = get_global_id(1);
  float grad = ETA * delta[j] * input[i];
  float old = weights[i * N_OUT + j];
  weights[i * N_OUT + j] = old + grad + MOMENTUM * old;
}
)CL";
    w.range.global = {128, 32, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(32 * 128, -0.5, 0.5);
      b.addFloatBuffer(128, -1.0, 1.0);
      b.addFloatBuffer(32, -1.0, 1.0);
    };
    out.push_back(std::move(w));
  }

  // ---------------------------------------------------------------------- bfs
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "bfs";
    w.kernel = "bfs_1";
    w.source = R"CL(
__kernel void bfs_1(__global const int* starts, __global const int* lens,
                    __global const int* edges, __global const int* mask_in,
                    __global int* mask_out, __global int* cost, int n) {
  int tid = get_global_id(0);
  if (tid < n) {
    if (mask_in[tid] != 0) {
      int start = starts[tid];
      int len = lens[tid];
      for (int e = start; e < start + len; e++) {
        int nb = edges[e];
        if (cost[nb] < 0) {
          cost[nb] = cost[tid] + 1;
          mask_out[nb] = 1;
        }
      }
    }
  }
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      const int n = 1024, degree = 4;
      // CSR adjacency: node i owns edges [i*degree, (i+1)*degree).
      std::vector<std::uint8_t> starts(n * 4), lens(n * 4), edges(n * degree * 4);
      std::vector<std::uint8_t> maskIn(n * 4, 0), cost(n * 4);
      for (int i = 0; i < n; ++i) {
        const std::int32_t s = i * degree, l = degree;
        std::memcpy(starts.data() + i * 4, &s, 4);
        std::memcpy(lens.data() + i * 4, &l, 4);
        const std::int32_t frontier = (i % 4 == 0) ? 1 : 0;
        std::memcpy(maskIn.data() + i * 4, &frontier, 4);
        const std::int32_t c = (i % 4 == 0) ? 0 : -1;
        std::memcpy(cost.data() + i * 4, &c, 4);
        for (int e = 0; e < degree; ++e) {
          const std::int32_t nb =
              static_cast<std::int32_t>(b.rng().nextBelow(n));
          std::memcpy(edges.data() + (i * degree + e) * 4, &nb, 4);
        }
      }
      b.addRawBuffer(std::move(starts));
      b.addRawBuffer(std::move(lens));
      b.addRawBuffer(std::move(edges));
      b.addRawBuffer(std::move(maskIn));
      b.addZeroIntBuffer(n);
      b.addRawBuffer(std::move(cost));
      b.addIntArg(n);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "bfs";
    w.kernel = "bfs_2";
    w.source = R"CL(
__kernel void bfs_2(__global int* mask_in, __global const int* mask_out,
                    __global int* visited, __global int* over) {
  int tid = get_global_id(0);
  mask_in[tid] = mask_out[tid];
  if (mask_out[tid] != 0) {
    visited[tid] = 1;
    over[0] = 1;
  }
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addZeroIntBuffer(1024);
      b.addIntBuffer(1024, 0, 1);
      b.addZeroIntBuffer(1024);
      b.addZeroIntBuffer(1);
    };
    out.push_back(std::move(w));
  }

  // ------------------------------------------------------------------- b+tree
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "btree";
    w.kernel = "findK";
    w.source = R"CL(
__kernel void findK(__global const int* keys, __global const int* queries,
                    __global int* results, int n) {
  int tid = get_global_id(0);
  int lo = 0;
  int hi = n - 1;
  int pos = -1;
  int q = queries[tid];
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    int k = keys[mid];
    if (k == q) {
      pos = mid;
      break;
    }
    if (k < q) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  results[tid] = pos;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      const int n = 2048;
      std::vector<std::uint8_t> keys(n * 4);
      for (int i = 0; i < n; ++i) {
        const std::int32_t k = 2 * i;
        std::memcpy(keys.data() + i * 4, &k, 4);
      }
      b.addRawBuffer(std::move(keys));
      b.addIntBuffer(1024, 0, 2 * n);
      b.addZeroIntBuffer(1024);
      b.addIntArg(n);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "btree";
    w.kernel = "rangeK";
    w.defines = {{"NKEYS", "64"}};
    w.source = R"CL(
__kernel void rangeK(__global const int* keys, __global const int* lo,
                     __global const int* hi, __global int* counts) {
  int tid = get_global_id(0);
  int l = lo[tid];
  int h = hi[tid];
  int c = 0;
  for (int i = 0; i < NKEYS; i++) {
    int k = keys[i];
    if (k >= l) {
      if (k < h) {
        c++;
      }
    }
  }
  counts[tid] = c;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addIntBuffer(64, 0, 1000);
      b.addIntBuffer(1024, 0, 500);
      b.addIntBuffer(1024, 500, 1000);
      b.addZeroIntBuffer(1024);
    };
    out.push_back(std::move(w));
  }

  // ---------------------------------------------------------------------- cfd
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "cfd";
    w.kernel = "memset";
    w.source = R"CL(
__kernel void memset(__global float* a) {
  a[get_global_id(0)] = 0.0f;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) { b.addFloatBuffer(2048); };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "cfd";
    w.kernel = "initialize";
    w.source = R"CL(
__kernel void initialize(__global float* density, __global float* momx,
                         __global float* momy, __global float* energy) {
  int i = get_global_id(0);
  density[i] = 1.4f;
  momx[i] = 0.5f;
  momy[i] = 0.1f;
  energy[i] = 2.5f;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addZeroFloatBuffer(1024);
      b.addZeroFloatBuffer(1024);
      b.addZeroFloatBuffer(1024);
      b.addZeroFloatBuffer(1024);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "cfd";
    w.kernel = "compute";
    w.source = R"CL(
__kernel void compute(__global const int* neighbors, __global const float* density,
                      __global const float* momx, __global const float* momy,
                      __global const float* energy, __global float* flux) {
  int i = get_global_id(0);
  float d = density[i];
  float mx = momx[i];
  float my = momy[i];
  float e = energy[i];
  float p = 0.4f * (e - 0.5f * (mx * mx + my * my) / d);
  float vel = sqrt(mx * mx + my * my) / d;
  float f = 0.0f;
  for (int j = 0; j < 4; j++) {
    int nb = neighbors[i * 4 + j];
    if (nb >= 0) {
      float dn = density[nb];
      float mn = momx[nb];
      float pn = 0.4f * (energy[nb] - 0.5f * mn * mn / dn);
      f += 0.5f * (p + pn) + vel * (dn - d);
    }
  }
  flux[i] = f;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      const int n = 1024, width = 32;
      std::vector<std::uint8_t> neighbors(n * 4 * 4);
      for (int i = 0; i < n; ++i) {
        const std::int32_t nb[4] = {
            i % width > 0 ? i - 1 : -1, i % width < width - 1 ? i + 1 : -1,
            i >= width ? i - width : -1, i + width < n ? i + width : -1};
        std::memcpy(neighbors.data() + i * 16, nb, 16);
      }
      b.addRawBuffer(std::move(neighbors));
      b.addFloatBuffer(n, 0.5, 2.0);
      b.addFloatBuffer(n, -1.0, 1.0);
      b.addFloatBuffer(n, -1.0, 1.0);
      b.addFloatBuffer(n, 1.0, 3.0);
      b.addZeroFloatBuffer(n);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "cfd";
    w.kernel = "time_step";
    w.source = R"CL(
__kernel void time_step(__global float* density, __global const float* flux) {
  int i = get_global_id(0);
  density[i] = density[i] + 0.2f * flux[i];
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024, 0.5, 2.0);
      b.addFloatBuffer(1024, -0.1, 0.1);
    };
    out.push_back(std::move(w));
  }

  // -------------------------------------------------------------------- dwt2d
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "dwt2d";
    w.kernel = "compute";
    w.source = R"CL(
__kernel void compute(__global const float* r, __global const float* g,
                      __global const float* bl, __global float* y) {
  int i = get_global_id(0);
  float lum = 0.299f * r[i] + 0.587f * g[i] + 0.114f * bl[i];
  y[i] = lum - 128.0f;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(2048, 0.0, 255.0);
      b.addFloatBuffer(2048, 0.0, 255.0);
      b.addFloatBuffer(2048, 0.0, 255.0);
      b.addZeroFloatBuffer(2048);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "dwt2d";
    w.kernel = "components";
    w.source = R"CL(
__kernel void components(__global const int* rgb, __global float* r,
                         __global float* g, __global float* bl) {
  int i = get_global_id(0);
  int px = rgb[i];
  r[i] = (float)(px & 255) - 128.0f;
  g[i] = (float)((px >> 8) & 255) - 128.0f;
  bl[i] = (float)((px >> 16) & 255) - 128.0f;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addIntBuffer(2048, 0, 0xFFFFFF);
      b.addZeroFloatBuffer(2048);
      b.addZeroFloatBuffer(2048);
      b.addZeroFloatBuffer(2048);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "dwt2d";
    w.kernel = "component";
    w.source = R"CL(
__kernel void component(__global const int* src, __global float* dst) {
  int i = get_global_id(0);
  dst[i] = (float)(src[i] & 255) - 128.0f;
}
)CL";
    w.range.global = {2048, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addIntBuffer(2048, 0, 255);
      b.addZeroFloatBuffer(2048);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "dwt2d";
    w.kernel = "fdwt";
    w.defines = {{"WIDTH", "64"}};
    w.source = R"CL(
__kernel void fdwt(__global const float* in, __global float* lowBand,
                   __global float* highBand) {
  int i = get_global_id(0);
  int half = WIDTH / 2;
  int row = i / half;
  int col = i % half;
  int base = row * WIDTH + 2 * col;
  float a = in[base];
  float b = in[base + 1];
  float c = a;
  if (col + 1 < half) {
    c = in[base + 2];
  }
  float high = b - 0.5f * (a + c);
  float low = a + 0.25f * high;
  lowBand[row * half + col] = low;
  highBand[row * half + col] = high;
}
)CL";
    w.range.global = {1024, 1, 1};  // 32 rows x 32 pairs
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(32 * 64, -128.0, 128.0);
      b.addZeroFloatBuffer(1024);
      b.addZeroFloatBuffer(1024);
    };
    out.push_back(std::move(w));
  }

  // ----------------------------------------------------------------- gaussian
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "gaussian";
    w.kernel = "fan1";
    w.defines = {{"SIZE", "256"}};
    w.source = R"CL(
__kernel void fan1(__global const float* a, __global float* m, int t) {
  int i = get_global_id(0);
  if (i < SIZE - 1 - t) {
    m[(i + t + 1) * SIZE + t] = a[(i + t + 1) * SIZE + t] / a[t * SIZE + t];
  }
}
)CL";
    w.range.global = {256, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(256 * 256, 1.0, 2.0);
      b.addZeroFloatBuffer(256 * 256);
      b.addIntArg(8);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "gaussian";
    w.kernel = "fan2";
    w.defines = {{"SIZE", "64"}};
    w.source = R"CL(
__kernel void fan2(__global float* a, __global float* b, __global const float* m,
                   int t) {
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  if (gx < SIZE - 1 - t) {
    if (gy < SIZE - t) {
      a[(gx + 1 + t) * SIZE + (gy + t)] -=
          m[(gx + 1 + t) * SIZE + t] * a[t * SIZE + (gy + t)];
      if (gy == 0) {
        b[gx + 1 + t] -= m[(gx + 1 + t) * SIZE + t] * b[t];
      }
    }
  }
}
)CL";
    w.range.global = {64, 64, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(64 * 64, 1.0, 2.0);
      b.addFloatBuffer(64, 0.0, 1.0);
      b.addFloatBuffer(64 * 64, 0.0, 1.0);
      b.addIntArg(4);
    };
    out.push_back(std::move(w));
  }

  // ------------------------------------------------------------------ hotspot
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "hotspot";
    w.kernel = "hotspot";
    w.defines = {{"TS", "16"}, {"RX", "0.1f"}, {"RY", "0.1f"}, {"RZ", "3.0e-4f"},
                 {"AMB", "80.0f"}};
    w.source = R"CL(
__kernel void hotspot(__global const float* temp_in, __global const float* power,
                      __global float* temp_out, int width) {
  __local float tile[TS][TS];
  int tx = get_local_id(0);
  int ty = get_local_id(1);
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  tile[ty][tx] = temp_in[gy * width + gx];
  barrier(CLK_LOCAL_MEM_FENCE);
  float c = tile[ty][tx];
  float n = c;
  float s = c;
  float w2 = c;
  float e = c;
  int lsx = get_local_size(0);
  int lsy = get_local_size(1);
  if (ty > 0) { n = tile[ty - 1][tx]; }
  if (ty < lsy - 1) { s = tile[ty + 1][tx]; }
  if (tx > 0) { w2 = tile[ty][tx - 1]; }
  if (tx < lsx - 1) { e = tile[ty][tx + 1]; }
  float delta = 0.001f * (power[gy * width + gx] + (n + s - 2.0f * c) * RY +
                          (e + w2 - 2.0f * c) * RX + (AMB - c) * RZ);
  temp_out[gy * width + gx] = c + delta;
}
)CL";
    w.range.global = {64, 32, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(64 * 32, 50.0, 90.0);
      b.addFloatBuffer(64 * 32, 0.0, 1.0);
      b.addZeroFloatBuffer(64 * 32);
      b.addIntArg(64);
    };
    out.push_back(std::move(w));
  }

  // ---------------------------------------------------------------- hotspot3D
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "hotspot3D";
    w.kernel = "hotspot3D";
    w.defines = {{"NZ", "8"},  {"CC", "0.5f"},      {"CW", "0.02f"},
                 {"CN", "0.02f"}, {"CT", "0.01f"},  {"CP", "0.001f"},
                 {"AMB_TEMP", "35.0f"}};
    w.source = R"CL(
__kernel void hotspot3D(__global const float* tIn, __global const float* pIn,
                        __global float* tOut, int nx, int ny) {
  int i = get_global_id(0);
  int j = get_global_id(1);
  for (int k = 0; k < NZ; k++) {
    int c = i + j * nx + k * nx * ny;
    float cc = tIn[c];
    float west = cc;
    float east = cc;
    float north = cc;
    float south = cc;
    float below = cc;
    float above = cc;
    if (i > 0) { west = tIn[c - 1]; }
    if (i < nx - 1) { east = tIn[c + 1]; }
    if (j > 0) { north = tIn[c - nx]; }
    if (j < ny - 1) { south = tIn[c + nx]; }
    if (k > 0) { below = tIn[c - nx * ny]; }
    if (k < NZ - 1) { above = tIn[c + nx * ny]; }
    tOut[c] = cc * CC + (west + east) * CW + (north + south) * CN +
              (below + above) * CT + AMB_TEMP * 0.001f + pIn[c] * CP;
  }
}
)CL";
    w.range.global = {32, 32, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(32 * 32 * 8, 30.0, 45.0);
      b.addFloatBuffer(32 * 32 * 8, 0.0, 1.0);
      b.addZeroFloatBuffer(32 * 32 * 8);
      b.addIntArg(32);
      b.addIntArg(32);
    };
    out.push_back(std::move(w));
  }

  // --------------------------------------------------------------- hybridsort
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "hybridsort";
    w.kernel = "count";
    w.defines = {{"BUCKETS", "16"}};
    w.source = R"CL(
__kernel void count(__global const float* input, __global int* histo, int n) {
  int tid = get_global_id(0);
  int stride = get_global_size(0);
  int priv[BUCKETS];
  for (int b = 0; b < BUCKETS; b++) {
    priv[b] = 0;
  }
  for (int i = tid; i < n; i += stride) {
    int bucket = (int)(input[i] * (float)BUCKETS);
    if (bucket >= BUCKETS) {
      bucket = BUCKETS - 1;
    }
    priv[bucket] += 1;
  }
  for (int b = 0; b < BUCKETS; b++) {
    histo[tid * BUCKETS + b] = priv[b];
  }
}
)CL";
    w.range.global = {512, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(4096, 0.0, 1.0);
      b.addZeroIntBuffer(512 * 16);
      b.addIntArg(4096);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "hybridsort";
    w.kernel = "prefix";
    w.source = R"CL(
__kernel void prefix(__global const int* in, __global int* out) {
  __local int temp[256];
  int l = get_local_id(0);
  int g = get_global_id(0);
  int ls = get_local_size(0);
  temp[l] = in[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int off = 1; off < ls; off *= 2) {
    int v = 0;
    if (l >= off) {
      v = temp[l - off];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    temp[l] += v;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[g] = temp[l];
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addIntBuffer(1024, 0, 16);
      b.addZeroIntBuffer(1024);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "hybridsort";
    w.kernel = "sort";
    w.defines = {{"WINDOW", "16"}};
    w.source = R"CL(
__kernel void sort(__global const float* in, __global const int* offsets,
                   __global float* out, int n) {
  int tid = get_global_id(0);
  float v = in[tid];
  int bucket = (int)(v * 16.0f);
  if (bucket > 15) {
    bucket = 15;
  }
  int base = tid - tid % WINDOW;
  int rank = 0;
  for (int i = 0; i < WINDOW; i++) {
    float o = in[base + i];
    if (o < v) {
      rank++;
    }
  }
  out[(offsets[bucket] + rank) & (n - 1)] = v;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024, 0.0, 1.0);
      b.addIntBuffer(16, 0, 1023);
      b.addZeroFloatBuffer(1024);
      b.addIntArg(1024);
    };
    out.push_back(std::move(w));
  }

  // ------------------------------------------------------------------- kmeans
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "kmeans";
    w.kernel = "center";
    w.defines = {{"NCLUSTERS", "5"}, {"NFEATURES", "8"}};
    w.source = R"CL(
__kernel void center(__global const float* features, __global const float* clusters,
                     __global int* membership) {
  int pid = get_global_id(0);
  int best = 0;
  float bestDist = 3.0e38f;
  for (int c = 0; c < NCLUSTERS; c++) {
    float dist = 0.0f;
    for (int f = 0; f < NFEATURES; f++) {
      float diff = features[pid * NFEATURES + f] - clusters[c * NFEATURES + f];
      dist += diff * diff;
    }
    if (dist < bestDist) {
      bestDist = dist;
      best = c;
    }
  }
  membership[pid] = best;
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024 * 8, 0.0, 10.0);
      b.addFloatBuffer(5 * 8, 0.0, 10.0);
      b.addZeroIntBuffer(1024);
    };
    out.push_back(std::move(w));
  }
  {
    Workload w;
    w.suite = "rodinia";
    w.benchmark = "kmeans";
    w.kernel = "swap";
    w.defines = {{"NFEATURES", "8"}};
    w.source = R"CL(
__kernel void swap(__global const float* feature, __global float* feature_swap,
                   int npoints) {
  int tid = get_global_id(0);
  for (int f = 0; f < NFEATURES; f++) {
    feature_swap[f * npoints + tid] = feature[tid * NFEATURES + f];
  }
}
)CL";
    w.range.global = {1024, 1, 1};
    w.setup = [](DataBuilder& b) {
      b.addFloatBuffer(1024 * 8, 0.0, 10.0);
      b.addZeroFloatBuffer(1024 * 8);
      b.addIntArg(1024);
    };
    out.push_back(std::move(w));
  }
}

}  // namespace detail
}  // namespace flexcl::workloads
