// Human-readable IR dumping, used by tests and debugging.
#pragma once

#include <string>

#include "ir/ir.h"

namespace flexcl::ir {

/// Renders a function as text. Instruction names are %<id>; blocks print as
/// labels. The output is stable (renumber() is called internally).
std::string printFunction(Function& fn);

/// Renders a single instruction (without trailing newline).
std::string printInstruction(const Instruction& inst);

}  // namespace flexcl::ir
