#include "ir/ir.h"

namespace flexcl::ir {

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Div: return "div";
    case Opcode::Rem: return "rem";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::FRem: return "frem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::Select: return "select";
    case Opcode::Trunc: return "trunc";
    case Opcode::ZExt: return "zext";
    case Opcode::SExt: return "sext";
    case Opcode::FPTrunc: return "fptrunc";
    case Opcode::FPExt: return "fpext";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::UIToFP: return "uitofp";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::FPToUI: return "fptoui";
    case Opcode::Bitcast: return "bitcast";
    case Opcode::Alloca: return "alloca";
    case Opcode::PtrAdd: return "ptradd";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::ExtractLane: return "extractlane";
    case Opcode::InsertLane: return "insertlane";
    case Opcode::Splat: return "splat";
    case Opcode::Call: return "call";
    case Opcode::WorkItemId: return "wi.query";
    case Opcode::Barrier: return "barrier";
    case Opcode::Br: return "br";
    case Opcode::CondBr: return "condbr";
    case Opcode::Ret: return "ret";
  }
  return "?";
}

const char* cmpPredName(CmpPred pred) {
  switch (pred) {
    case CmpPred::Eq: return "eq";
    case CmpPred::Ne: return "ne";
    case CmpPred::Lt: return "lt";
    case CmpPred::Le: return "le";
    case CmpPred::Gt: return "gt";
    case CmpPred::Ge: return "ge";
  }
  return "?";
}

const char* wiQueryName(WiQuery q) {
  switch (q) {
    case WiQuery::GlobalId: return "global_id";
    case WiQuery::LocalId: return "local_id";
    case WiQuery::GroupId: return "group_id";
    case WiQuery::GlobalSize: return "global_size";
    case WiQuery::LocalSize: return "local_size";
    case WiQuery::NumGroups: return "num_groups";
  }
  return "?";
}

const char* mathFuncName(MathFunc f) {
  switch (f) {
    case MathFunc::Sqrt: return "sqrt";
    case MathFunc::Rsqrt: return "rsqrt";
    case MathFunc::Exp: return "exp";
    case MathFunc::Exp2: return "exp2";
    case MathFunc::Log: return "log";
    case MathFunc::Log2: return "log2";
    case MathFunc::Pow: return "pow";
    case MathFunc::Sin: return "sin";
    case MathFunc::Cos: return "cos";
    case MathFunc::Tan: return "tan";
    case MathFunc::Fabs: return "fabs";
    case MathFunc::Floor: return "floor";
    case MathFunc::Ceil: return "ceil";
    case MathFunc::Round: return "round";
    case MathFunc::Fmax: return "fmax";
    case MathFunc::Fmin: return "fmin";
    case MathFunc::Fmod: return "fmod";
    case MathFunc::Mad: return "mad";
    case MathFunc::Fma: return "fma";
    case MathFunc::Abs: return "abs";
    case MathFunc::Max: return "max";
    case MathFunc::Min: return "min";
    case MathFunc::Clamp: return "clamp";
    case MathFunc::Select: return "select";
    case MathFunc::Hypot: return "hypot";
    case MathFunc::Atan: return "atan";
    case MathFunc::Atan2: return "atan2";
  }
  return "?";
}

Argument* Function::addArgument(const Type* type, std::string argName) {
  args_.push_back(std::make_unique<Argument>(
      type, static_cast<unsigned>(args_.size()), std::move(argName)));
  return args_.back().get();
}

BasicBlock* Function::createBlock(std::string blockName) {
  blocks_.push_back(std::make_unique<BasicBlock>(std::move(blockName)));
  return blocks_.back().get();
}

Instruction* Function::createInstruction(Opcode op, const Type* type) {
  instructions_.push_back(std::make_unique<Instruction>(op, type));
  return instructions_.back().get();
}

Constant* Function::intConstant(const Type* type, std::int64_t value) {
  for (const auto& c : constants_) {
    if (!c->isFloatConstant() && c->type() == type && c->intValue() == value)
      return c.get();
  }
  constants_.push_back(std::make_unique<Constant>(type, value));
  return constants_.back().get();
}

Constant* Function::floatConstant(const Type* type, double value) {
  for (const auto& c : constants_) {
    if (c->isFloatConstant() && c->type() == type && c->floatValue() == value)
      return c.get();
  }
  constants_.push_back(std::make_unique<Constant>(type, value));
  return constants_.back().get();
}

void Function::renumber() {
  unsigned blockId = 0;
  nextInstId_ = 0;
  for (auto& bb : blocks_) {
    bb->id = blockId++;
    for (Instruction* inst : bb->instructions()) inst->id = nextInstId_++;
  }
}

Function* Module::createFunction(std::string name, const Type* returnType) {
  functions_.push_back(std::make_unique<Function>(std::move(name), returnType));
  return functions_.back().get();
}

Function* Module::findFunction(const std::string& name) const {
  for (const auto& f : functions_) {
    if (f->name() == name) return f.get();
  }
  return nullptr;
}

}  // namespace flexcl::ir
