// AST -> IR lowering.
//
// Each OpenCL kernel becomes one ir::Function; helper functions are inlined
// at their call sites (matching what HLS synthesis does). Structured control
// flow is recorded in the function's RegionTree as it is lowered, and static
// loop trip counts are derived where the induction pattern is recognisable
// (paper §3.2: dynamic profiling covers the rest).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "ir/ir.h"
#include "ocl/ast.h"
#include "support/diagnostics.h"

namespace flexcl::ir {

/// Owns the AST and the IR lowered from it (the IR references types owned by
/// the AST's TypeContext).
struct CompiledProgram {
  std::unique_ptr<ocl::Program> ast;
  std::unique_ptr<Module> module;
};

/// Lowers all kernels of `program`. Reports problems to `diags`; returns a
/// module even with errors (check diags.hasErrors()).
std::unique_ptr<Module> lowerProgram(ocl::Program& program, DiagnosticEngine& diags);

/// Front-to-back convenience: preprocess + parse + sema + lower + verify.
/// Returns nullptr and leaves messages in `diags` on any failure.
std::unique_ptr<CompiledProgram> compileOpenCl(
    const std::string& source, DiagnosticEngine& diags,
    const std::unordered_map<std::string, std::string>& defines = {});

}  // namespace flexcl::ir
