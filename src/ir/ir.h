// FlexCL intermediate representation.
//
// A deliberately simple register IR: straight-line instructions grouped into
// basic blocks, with mutable variables lowered to private "slot" memory
// (alloca + load/store) instead of SSA phis. Structured control flow from the
// OpenCL source is preserved in a RegionTree alongside the CFG, which is what
// lets the CDFG stage "merge basic blocks with complex control dependencies
// such as loops" (paper §3.2) without a general CFG structurizer.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"
#include "support/source_location.h"

namespace flexcl::ir {

class BasicBlock;
class Function;
class Instruction;

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

class Value {
 public:
  enum class Kind : std::uint8_t { Constant, Argument, Instruction };
  virtual ~Value() = default;

  [[nodiscard]] Kind valueKind() const { return kind_; }
  [[nodiscard]] const Type* type() const { return type_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

 protected:
  Value(Kind kind, const Type* type) : type_(type), kind_(kind) {}
  const Type* type_;

 private:
  Kind kind_;
  std::string name_;
};

/// Scalar constant. Integer constants store the value sign-extended into
/// int64; float constants store a double.
class Constant final : public Value {
 public:
  Constant(const Type* type, std::int64_t intValue)
      : Value(Kind::Constant, type), int_(intValue) {}
  Constant(const Type* type, double floatValue)
      : Value(Kind::Constant, type), float_(floatValue), isFloat_(true) {}

  [[nodiscard]] bool isFloatConstant() const { return isFloat_; }
  [[nodiscard]] std::int64_t intValue() const { return int_; }
  [[nodiscard]] double floatValue() const { return float_; }

 private:
  std::int64_t int_ = 0;
  double float_ = 0.0;
  bool isFloat_ = false;
};

/// Kernel argument. Pointer arguments reference host-provided buffers; scalar
/// arguments are passed by value at launch.
class Argument final : public Value {
 public:
  Argument(const Type* type, unsigned index, std::string name)
      : Value(Kind::Argument, type), index_(index) {
    setName(std::move(name));
  }
  [[nodiscard]] unsigned index() const { return index_; }

 private:
  unsigned index_;
};

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

enum class Opcode : std::uint8_t {
  // Integer arithmetic (signedness taken from the type).
  Add, Sub, Mul, Div, Rem,
  // Floating-point arithmetic.
  FAdd, FSub, FMul, FDiv, FRem,
  // Bitwise / shifts.
  And, Or, Xor, Shl, Shr,
  // Comparisons.
  ICmp, FCmp,
  // select(cond, a, b)
  Select,
  // Casts.
  Trunc, ZExt, SExt, FPTrunc, FPExt, SIToFP, UIToFP, FPToSI, FPToUI, Bitcast,
  // Memory. Alloca creates private (per work-item) or local (per work-group)
  // storage. PtrAdd offsets a pointer by a byte amount. Load/Store move a
  // value of the instruction's type.
  Alloca, PtrAdd, Load, Store,
  // Vector lane manipulation.
  ExtractLane, InsertLane, Splat,
  // Math builtin call (operand latencies come from the device IP library).
  Call,
  // NDRange queries: operand 0 is the dimension constant.
  WorkItemId,
  // Work-group barrier (paper: separates barrier-mode phases).
  Barrier,
  // Control flow terminators.
  Br, CondBr, Ret,
};

const char* opcodeName(Opcode op);

enum class CmpPred : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };
const char* cmpPredName(CmpPred pred);

/// Which NDRange quantity a WorkItemId instruction reads.
enum class WiQuery : std::uint8_t {
  GlobalId, LocalId, GroupId, GlobalSize, LocalSize, NumGroups,
};
const char* wiQueryName(WiQuery q);

/// Math builtins that survive to IR level (work-item queries and barriers
/// have dedicated opcodes).
enum class MathFunc : std::uint8_t {
  Sqrt, Rsqrt, Exp, Exp2, Log, Log2, Pow, Sin, Cos, Tan,
  Fabs, Floor, Ceil, Round, Fmax, Fmin, Fmod, Mad, Fma,
  Abs, Max, Min, Clamp, Select, Hypot, Atan, Atan2,
};
const char* mathFuncName(MathFunc f);

class Instruction final : public Value {
 public:
  Instruction(Opcode op, const Type* type) : Value(Kind::Instruction, type), op_(op) {}

  [[nodiscard]] Opcode opcode() const { return op_; }
  [[nodiscard]] const std::vector<Value*>& operands() const { return operands_; }
  [[nodiscard]] Value* operand(std::size_t i) const { return operands_[i]; }
  void addOperand(Value* v) { operands_.push_back(v); }

  [[nodiscard]] BasicBlock* parent() const { return parent_; }
  void setParent(BasicBlock* bb) { parent_ = bb; }

  // --- opcode-specific payloads --------------------------------------------
  CmpPred cmpPred = CmpPred::Eq;
  WiQuery wiQuery = WiQuery::GlobalId;
  MathFunc mathFunc = MathFunc::Sqrt;
  /// Alloca: storage address space (Private or Local) and allocated type.
  AddressSpace allocaSpace = AddressSpace::Private;
  const Type* allocaType = nullptr;
  /// Load/Store: address space the access finally hits (from pointer type).
  AddressSpace memSpace = AddressSpace::Private;
  /// CondBr: [trueTarget, falseTarget]; Br: [target].
  BasicBlock* target0 = nullptr;
  BasicBlock* target1 = nullptr;
  /// Unique id within the function, assigned by Function::renumber().
  unsigned id = 0;
  /// Kernel source position this instruction was lowered from (invalid when
  /// the instruction is lowering plumbing with no direct source statement).
  SourceLocation loc;

  [[nodiscard]] bool isTerminator() const {
    return op_ == Opcode::Br || op_ == Opcode::CondBr || op_ == Opcode::Ret;
  }
  [[nodiscard]] bool isMemoryAccess() const {
    return op_ == Opcode::Load || op_ == Opcode::Store;
  }

 private:
  Opcode op_;
  std::vector<Value*> operands_;
  BasicBlock* parent_ = nullptr;
};

// ---------------------------------------------------------------------------
// Blocks / regions / functions
// ---------------------------------------------------------------------------

class BasicBlock {
 public:
  explicit BasicBlock(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Instruction*>& instructions() const {
    return instructions_;
  }
  void append(Instruction* inst) {
    inst->setParent(this);
    instructions_.push_back(inst);
  }
  [[nodiscard]] Instruction* terminator() const {
    return !instructions_.empty() && instructions_.back()->isTerminator()
               ? instructions_.back()
               : nullptr;
  }
  /// Unique id within the function.
  unsigned id = 0;

 private:
  std::string name_;
  std::vector<Instruction*> instructions_;
};

/// Structured control-flow tree preserved from the source. The CDFG stage
/// walks this instead of re-discovering loops from the CFG.
struct Region {
  enum class Kind : std::uint8_t { Seq, Block, Loop, If };
  Kind kind = Kind::Seq;

  // Block node.
  BasicBlock* block = nullptr;

  // Seq: ordered children. If: children[0] = then, children[1] = else (may be
  // an empty Seq). Loop: children[0] = body.
  std::vector<std::unique_ptr<Region>> children;

  // If / Loop: block that computes the branch condition.
  BasicBlock* condBlock = nullptr;
  // Loop: latch block holding the step computation and back edge.
  BasicBlock* latchBlock = nullptr;
  // Loop metadata.
  int loopId = -1;           ///< dense id used by trip-count profiling
  std::int64_t staticTripCount = -1;  ///< -1 when unknown statically
  int unrollHint = 0;        ///< 0 none, -1 full, >0 factor
  /// Source position of the statement this region was lowered from (loop /
  /// if keyword); invalid for synthesized Seq/Block nodes.
  SourceLocation loc;
};

class Function {
 public:
  explicit Function(std::string name, const Type* returnType)
      : name_(std::move(name)), returnType_(returnType) {}
  Function(const Function&) = delete;
  Function& operator=(const Function&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Type* returnType() const { return returnType_; }

  Argument* addArgument(const Type* type, std::string argName);
  [[nodiscard]] const std::vector<std::unique_ptr<Argument>>& arguments() const {
    return args_;
  }

  BasicBlock* createBlock(std::string blockName);
  [[nodiscard]] const std::vector<std::unique_ptr<BasicBlock>>& blocks() const {
    return blocks_;
  }
  [[nodiscard]] BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }

  // Value ownership: all instructions/constants live here.
  Instruction* createInstruction(Opcode op, const Type* type);
  Constant* intConstant(const Type* type, std::int64_t value);
  Constant* floatConstant(const Type* type, double value);

  /// Assigns dense ids to blocks and instructions (after construction).
  void renumber();
  [[nodiscard]] unsigned instructionCount() const { return nextInstId_; }
  [[nodiscard]] unsigned blockCount() const {
    return static_cast<unsigned>(blocks_.size());
  }

  /// Root of the structured control-flow tree (set by the lowerer).
  Region* rootRegion() { return root_.get(); }
  [[nodiscard]] const Region* rootRegion() const { return root_.get(); }
  void setRootRegion(std::unique_ptr<Region> root) { root_ = std::move(root); }

  /// Number of loops (dense loopIds 0..loopCount-1).
  int loopCount = 0;
  /// Kernel attributes carried over from the AST.
  bool isKernel = false;
  std::array<std::uint32_t, 3> reqdWorkGroupSize = {0, 0, 0};
  /// Local (work-group shared) allocas, for local-memory accounting.
  std::vector<Instruction*> localAllocas;
  /// Private allocas (scalar slots + private arrays).
  std::vector<Instruction*> privateAllocas;

 private:
  std::string name_;
  const Type* returnType_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::vector<std::unique_ptr<Instruction>> instructions_;
  std::vector<std::unique_ptr<Constant>> constants_;
  std::unique_ptr<Region> root_;
  unsigned nextInstId_ = 0;
};

/// A lowered translation unit: one Function per OpenCL kernel (helper
/// functions are inlined during lowering). References the TypeContext owned
/// by the source ocl::Program — keep both alive together (see
/// ir::CompiledProgram in lower.h).
class Module {
 public:
  explicit Module(TypeContext& types) : types_(&types) {}

  [[nodiscard]] TypeContext& types() { return *types_; }
  Function* createFunction(std::string name, const Type* returnType);
  [[nodiscard]] const std::vector<std::unique_ptr<Function>>& functions() const {
    return functions_;
  }
  [[nodiscard]] Function* findFunction(const std::string& name) const;

 private:
  TypeContext* types_;
  std::vector<std::unique_ptr<Function>> functions_;
};

}  // namespace flexcl::ir
