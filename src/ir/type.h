// Type system shared by the OpenCL semantic analyser and the IR.
//
// Types are interned in a TypeContext; equal types are pointer-equal, so all
// type comparisons throughout the compiler are cheap pointer compares.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace flexcl::ir {

/// OpenCL address spaces. Private is the work-item's own storage, Local is
/// shared within a work-group (on-chip BRAM), Global/Constant live in the
/// off-chip DRAM.
enum class AddressSpace : std::uint8_t { Private, Local, Global, Constant };

const char* addressSpaceName(AddressSpace as);

class TypeContext;

/// Immutable, interned type node.
class Type {
 public:
  enum class Kind : std::uint8_t { Void, Bool, Int, Float, Pointer, Vector, Array, Struct };

  struct Field {
    std::string name;
    const Type* type;
  };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isVoid() const { return kind_ == Kind::Void; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool isInt() const { return kind_ == Kind::Int; }
  [[nodiscard]] bool isFloat() const { return kind_ == Kind::Float; }
  [[nodiscard]] bool isPointer() const { return kind_ == Kind::Pointer; }
  [[nodiscard]] bool isVector() const { return kind_ == Kind::Vector; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isStruct() const { return kind_ == Kind::Struct; }
  [[nodiscard]] bool isScalar() const { return isBool() || isInt() || isFloat(); }
  [[nodiscard]] bool isArithmetic() const { return isInt() || isFloat(); }

  /// Integer/float bit width; for Bool returns 1.
  [[nodiscard]] unsigned bits() const { return bits_; }
  [[nodiscard]] bool isSigned() const { return isSigned_; }

  /// Pointer pointee / vector or array element type.
  [[nodiscard]] const Type* element() const { return element_; }
  [[nodiscard]] AddressSpace addressSpace() const { return addressSpace_; }
  /// Vector lane count or array extent.
  [[nodiscard]] std::uint64_t count() const { return count_; }

  [[nodiscard]] const std::string& structName() const { return name_; }
  [[nodiscard]] const std::vector<Field>& fields() const { return fields_; }
  /// Index of a struct field by name, or -1.
  [[nodiscard]] int fieldIndex(const std::string& name) const;
  /// Byte offset of a struct field (packed layout, no padding — the FPGA
  /// memory model addresses elements, not ABI-padded records).
  [[nodiscard]] std::uint64_t fieldOffset(unsigned index) const;

  /// Size of one object of this type in bytes (packed layout).
  [[nodiscard]] std::uint64_t sizeInBytes() const;

  [[nodiscard]] std::string str() const;

 private:
  friend class TypeContext;
  Type() = default;

  Kind kind_ = Kind::Void;
  unsigned bits_ = 0;
  bool isSigned_ = false;
  const Type* element_ = nullptr;
  AddressSpace addressSpace_ = AddressSpace::Private;
  std::uint64_t count_ = 0;
  std::string name_;
  std::vector<Field> fields_;
};

/// Owns and interns all Type nodes of one compilation.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  const Type* voidType() const { return void_; }
  const Type* boolType() const { return bool_; }
  const Type* intType(unsigned bits, bool isSigned);
  const Type* floatType(unsigned bits);
  const Type* pointerType(const Type* pointee, AddressSpace as);
  const Type* vectorType(const Type* element, std::uint64_t lanes);
  const Type* arrayType(const Type* element, std::uint64_t extent);
  /// Creates (or retrieves) a named struct type. Fields are fixed at creation.
  const Type* structType(const std::string& name, std::vector<Type::Field> fields);
  /// Looks up a previously created struct by name; nullptr if unknown.
  const Type* findStruct(const std::string& name) const;

  // Common shorthands.
  const Type* i8() { return intType(8, true); }
  const Type* u8() { return intType(8, false); }
  const Type* i16() { return intType(16, true); }
  const Type* u16() { return intType(16, false); }
  const Type* i32() { return intType(32, true); }
  const Type* u32() { return intType(32, false); }
  const Type* i64() { return intType(64, true); }
  const Type* u64() { return intType(64, false); }
  const Type* f32() { return floatType(32); }
  const Type* f64() { return floatType(64); }

 private:
  Type* make();
  std::vector<std::unique_ptr<Type>> pool_;
  const Type* void_ = nullptr;
  const Type* bool_ = nullptr;
};

}  // namespace flexcl::ir
