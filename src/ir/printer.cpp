#include "ir/printer.h"

#include <sstream>

namespace flexcl::ir {
namespace {

std::string valueRef(const Value* v) {
  switch (v->valueKind()) {
    case Value::Kind::Constant: {
      const auto* c = static_cast<const Constant*>(v);
      std::ostringstream os;
      if (c->isFloatConstant()) {
        os << c->floatValue();
      } else {
        os << c->intValue();
      }
      return os.str();
    }
    case Value::Kind::Argument:
      return "%" + v->name();
    case Value::Kind::Instruction: {
      const auto* inst = static_cast<const Instruction*>(v);
      if (inst->opcode() == Opcode::Alloca) return "%" + inst->name();
      return "%t" + std::to_string(inst->id);
    }
  }
  return "?";
}

}  // namespace

std::string printInstruction(const Instruction& inst) {
  std::ostringstream os;
  const bool producesValue = inst.type() != nullptr && !inst.type()->isVoid() &&
                             !inst.isTerminator() && inst.opcode() != Opcode::Store;
  if (producesValue) os << valueRef(&inst) << " = ";
  os << opcodeName(inst.opcode());
  if (inst.opcode() == Opcode::ICmp || inst.opcode() == Opcode::FCmp) {
    os << ' ' << cmpPredName(inst.cmpPred);
  }
  if (inst.opcode() == Opcode::WorkItemId) os << ' ' << wiQueryName(inst.wiQuery);
  if (inst.opcode() == Opcode::Call) os << ' ' << mathFuncName(inst.mathFunc);
  if (inst.opcode() == Opcode::Load || inst.opcode() == Opcode::Store) {
    os << '.' << addressSpaceName(inst.memSpace);
  }
  bool first = true;
  for (const Value* op : inst.operands()) {
    os << (first ? " " : ", ") << valueRef(op);
    first = false;
  }
  if (inst.opcode() == Opcode::Br) {
    os << " ^" << inst.target0->name();
  } else if (inst.opcode() == Opcode::CondBr) {
    os << ", ^" << inst.target0->name() << ", ^" << inst.target1->name();
  }
  if (producesValue) os << " : " << inst.type()->str();
  return os.str();
}

std::string printFunction(Function& fn) {
  fn.renumber();
  std::ostringstream os;
  os << (fn.isKernel ? "kernel" : "func") << " @" << fn.name() << '(';
  bool first = true;
  for (const auto& arg : fn.arguments()) {
    if (!first) os << ", ";
    os << arg->type()->str() << " %" << arg->name();
    first = false;
  }
  os << ") {\n";
  for (const Instruction* a : fn.privateAllocas) {
    os << "  %" << a->name() << " = alloca." << addressSpaceName(a->allocaSpace)
       << ' ' << a->allocaType->str() << '\n';
  }
  for (const Instruction* a : fn.localAllocas) {
    os << "  %" << a->name() << " = alloca." << addressSpaceName(a->allocaSpace)
       << ' ' << a->allocaType->str() << '\n';
  }
  for (const auto& bb : fn.blocks()) {
    os << bb->name() << ":\n";
    for (const Instruction* inst : bb->instructions()) {
      os << "  " << printInstruction(*inst) << '\n';
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace flexcl::ir
