// Instruction-building convenience layer over ir::Function.
#pragma once

#include "ir/ir.h"

namespace flexcl::ir {

/// Appends instructions to a current insertion block. All create* methods
/// return the new instruction (usable as a Value).
class IRBuilder {
 public:
  explicit IRBuilder(Function& fn) : fn_(fn) {}

  void setInsertBlock(BasicBlock* bb) { block_ = bb; }
  [[nodiscard]] BasicBlock* insertBlock() const { return block_; }

  /// Source position stamped onto every instruction emitted until the next
  /// call. The lowerer sets this at each statement/expression boundary.
  void setCurrentLoc(SourceLocation loc) { loc_ = loc; }
  [[nodiscard]] SourceLocation currentLoc() const { return loc_; }

  // --- arithmetic / logic ----------------------------------------------------
  Value* binary(Opcode op, Value* lhs, Value* rhs, const Type* type);
  Value* icmp(CmpPred pred, Value* lhs, Value* rhs, const Type* boolType);
  Value* fcmp(CmpPred pred, Value* lhs, Value* rhs, const Type* boolType);
  Value* select(Value* cond, Value* a, Value* b);

  // --- casts ------------------------------------------------------------------
  Value* cast(Opcode op, Value* v, const Type* to);

  // --- memory -----------------------------------------------------------------
  /// Creates an alloca in the current function. Allocas are registered on the
  /// function's private/local lists for later resource accounting.
  Instruction* allocaInst(const Type* allocated, AddressSpace space,
                      const Type* ptrType, std::string name);
  /// Byte-offset pointer arithmetic. `resultType` retypes the result (used
  /// when indexing decays an array pointer to an element pointer); defaults
  /// to the base pointer's type.
  Value* ptrAdd(Value* base, Value* byteOffset, const Type* resultType = nullptr);
  Value* load(Value* ptr, const Type* valueType);
  void store(Value* value, Value* ptr);

  // --- vectors ----------------------------------------------------------------
  Value* extractLane(Value* vec, Value* lane, const Type* elemType);
  Value* insertLane(Value* vec, Value* lane, Value* elem);
  Value* splat(Value* scalar, const Type* vecType);

  // --- calls / queries ----------------------------------------------------------
  Value* call(MathFunc fn, const std::vector<Value*>& args, const Type* type);
  Value* workItemId(WiQuery query, Value* dim, const Type* type);
  void barrier();

  // --- control flow --------------------------------------------------------------
  void br(BasicBlock* target);
  void condBr(Value* cond, BasicBlock* trueTarget, BasicBlock* falseTarget);
  void ret(Value* value);  ///< value may be null for `ret void`

  [[nodiscard]] Function& function() { return fn_; }

 private:
  Instruction* emit(Opcode op, const Type* type);

  Function& fn_;
  BasicBlock* block_ = nullptr;
  SourceLocation loc_;
};

}  // namespace flexcl::ir
