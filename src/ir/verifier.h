// Structural IR sanity checks run after lowering (and in tests).
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"
#include "support/diagnostics.h"

namespace flexcl::ir {

/// One verifier finding. `rule` is a stable short identifier (used by lint
/// output and tests); `loc` points at the kernel source when the offending
/// instruction carries a location.
struct VerifierIssue {
  DiagSeverity severity = DiagSeverity::Error;
  SourceLocation loc;
  std::string rule;
  std::string message;
};

/// Full verification: terminator and block invariants, branch targets,
/// operand shapes, def-before-use dominance over reachable blocks, operand
/// type consistency (warnings), alloca placement, and region-tree invariants
/// (loop/if structure, dense loop ids). Empty result means clean.
std::vector<VerifierIssue> verifyFunctionIssues(const Function& fn);

/// Error-severity problems only, rendered as strings (legacy interface kept
/// for tests and quick checks).
std::vector<std::string> verifyFunction(const Function& fn);

/// Reports every issue into `diags`, prefixing messages with the function
/// name so multi-kernel modules stay readable.
void reportVerifierIssues(const Function& fn, DiagnosticEngine& diags);

}  // namespace flexcl::ir
