// Structural IR sanity checks run after lowering (and in tests).
#pragma once

#include <string>
#include <vector>

#include "ir/ir.h"

namespace flexcl::ir {

/// Checks invariants: every block ends in exactly one terminator, branch
/// targets belong to the function, operand types are present for
/// value-producing ops, loads/stores take pointer operands, and the region
/// tree references only blocks of this function. Returns problem descriptions;
/// empty means the function verified clean.
std::vector<std::string> verifyFunction(const Function& fn);

}  // namespace flexcl::ir
