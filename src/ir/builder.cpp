#include "ir/builder.h"

#include <cassert>

namespace flexcl::ir {

Instruction* IRBuilder::emit(Opcode op, const Type* type) {
  assert(block_ && "no insertion block set");
  Instruction* inst = fn_.createInstruction(op, type);
  inst->loc = loc_;
  block_->append(inst);
  return inst;
}

Value* IRBuilder::binary(Opcode op, Value* lhs, Value* rhs, const Type* type) {
  Instruction* inst = emit(op, type);
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return inst;
}

Value* IRBuilder::icmp(CmpPred pred, Value* lhs, Value* rhs, const Type* boolType) {
  Instruction* inst = emit(Opcode::ICmp, boolType);
  inst->cmpPred = pred;
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return inst;
}

Value* IRBuilder::fcmp(CmpPred pred, Value* lhs, Value* rhs, const Type* boolType) {
  Instruction* inst = emit(Opcode::FCmp, boolType);
  inst->cmpPred = pred;
  inst->addOperand(lhs);
  inst->addOperand(rhs);
  return inst;
}

Value* IRBuilder::select(Value* cond, Value* a, Value* b) {
  Instruction* inst = emit(Opcode::Select, a->type());
  inst->addOperand(cond);
  inst->addOperand(a);
  inst->addOperand(b);
  return inst;
}

Value* IRBuilder::cast(Opcode op, Value* v, const Type* to) {
  if (v->type() == to && op != Opcode::Bitcast) return v;
  Instruction* inst = emit(op, to);
  inst->addOperand(v);
  return inst;
}

Instruction* IRBuilder::allocaInst(const Type* allocated, AddressSpace space,
                               const Type* ptrType, std::string name) {
  // Allocas are not placed in any block: they live on the function's alloca
  // lists and storage is materialised at frame setup (interpreter) or BRAM
  // allocation (model). This sidesteps ordering issues for declarations that
  // appear after control flow has branched.
  Instruction* inst = fn_.createInstruction(Opcode::Alloca, ptrType);
  inst->loc = loc_;
  inst->allocaSpace = space;
  inst->allocaType = allocated;
  inst->setName(std::move(name));
  if (space == AddressSpace::Local) {
    fn_.localAllocas.push_back(inst);
  } else {
    fn_.privateAllocas.push_back(inst);
  }
  return inst;
}

Value* IRBuilder::ptrAdd(Value* base, Value* byteOffset, const Type* resultType) {
  Instruction* inst = emit(Opcode::PtrAdd, resultType ? resultType : base->type());
  inst->addOperand(base);
  inst->addOperand(byteOffset);
  return inst;
}

Value* IRBuilder::load(Value* ptr, const Type* valueType) {
  Instruction* inst = emit(Opcode::Load, valueType);
  inst->addOperand(ptr);
  inst->memSpace = ptr->type()->isPointer() ? ptr->type()->addressSpace()
                                            : AddressSpace::Private;
  return inst;
}

void IRBuilder::store(Value* value, Value* ptr) {
  Instruction* inst = emit(Opcode::Store, value->type());
  inst->addOperand(value);
  inst->addOperand(ptr);
  inst->memSpace = ptr->type()->isPointer() ? ptr->type()->addressSpace()
                                            : AddressSpace::Private;
}

Value* IRBuilder::extractLane(Value* vec, Value* lane, const Type* elemType) {
  Instruction* inst = emit(Opcode::ExtractLane, elemType);
  inst->addOperand(vec);
  inst->addOperand(lane);
  return inst;
}

Value* IRBuilder::insertLane(Value* vec, Value* lane, Value* elem) {
  Instruction* inst = emit(Opcode::InsertLane, vec->type());
  inst->addOperand(vec);
  inst->addOperand(lane);
  inst->addOperand(elem);
  return inst;
}

Value* IRBuilder::splat(Value* scalar, const Type* vecType) {
  Instruction* inst = emit(Opcode::Splat, vecType);
  inst->addOperand(scalar);
  return inst;
}

Value* IRBuilder::call(MathFunc fn, const std::vector<Value*>& args, const Type* type) {
  Instruction* inst = emit(Opcode::Call, type);
  inst->mathFunc = fn;
  for (Value* a : args) inst->addOperand(a);
  return inst;
}

Value* IRBuilder::workItemId(WiQuery query, Value* dim, const Type* type) {
  Instruction* inst = emit(Opcode::WorkItemId, type);
  inst->wiQuery = query;
  inst->addOperand(dim);
  return inst;
}

void IRBuilder::barrier() { emit(Opcode::Barrier, nullptr); }

void IRBuilder::br(BasicBlock* target) {
  if (block_->terminator()) return;  // unreachable tail (after return/break)
  Instruction* inst = emit(Opcode::Br, nullptr);
  inst->target0 = target;
}

void IRBuilder::condBr(Value* cond, BasicBlock* trueTarget, BasicBlock* falseTarget) {
  if (block_->terminator()) return;
  Instruction* inst = emit(Opcode::CondBr, nullptr);
  inst->addOperand(cond);
  inst->target0 = trueTarget;
  inst->target1 = falseTarget;
}

void IRBuilder::ret(Value* value) {
  if (block_->terminator()) return;
  Instruction* inst = emit(Opcode::Ret, nullptr);
  if (value) inst->addOperand(value);
}

}  // namespace flexcl::ir
