#include "ir/lower.h"

#include <cassert>
#include <optional>
#include <unordered_map>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "ocl/parser.h"
#include "ocl/sema.h"

namespace flexcl::ir {
namespace {

using ocl::BinaryOp;
using ocl::Builtin;
using ocl::Expr;
using ocl::ExprPtr;
using ocl::Stmt;
using ocl::UnaryOp;

std::optional<MathFunc> mathFuncFor(Builtin b) {
  switch (b) {
    case Builtin::Sqrt: return MathFunc::Sqrt;
    case Builtin::Rsqrt: return MathFunc::Rsqrt;
    case Builtin::Exp: return MathFunc::Exp;
    case Builtin::Exp2: return MathFunc::Exp2;
    case Builtin::Log: return MathFunc::Log;
    case Builtin::Log2: return MathFunc::Log2;
    case Builtin::Pow: return MathFunc::Pow;
    case Builtin::Sin: return MathFunc::Sin;
    case Builtin::Cos: return MathFunc::Cos;
    case Builtin::Tan: return MathFunc::Tan;
    case Builtin::Fabs: return MathFunc::Fabs;
    case Builtin::Floor: return MathFunc::Floor;
    case Builtin::Ceil: return MathFunc::Ceil;
    case Builtin::Round: return MathFunc::Round;
    case Builtin::Fmax: return MathFunc::Fmax;
    case Builtin::Fmin: return MathFunc::Fmin;
    case Builtin::Fmod: return MathFunc::Fmod;
    case Builtin::Mad: return MathFunc::Mad;
    case Builtin::Fma: return MathFunc::Fma;
    case Builtin::Abs: return MathFunc::Abs;
    case Builtin::Max: return MathFunc::Max;
    case Builtin::Min: return MathFunc::Min;
    case Builtin::Clamp: return MathFunc::Clamp;
    case Builtin::Select: return MathFunc::Select;
    case Builtin::Hypot: return MathFunc::Hypot;
    case Builtin::Atan: return MathFunc::Atan;
    case Builtin::Atan2: return MathFunc::Atan2;
    default: return std::nullopt;
  }
}

std::optional<WiQuery> wiQueryFor(Builtin b) {
  switch (b) {
    case Builtin::GetGlobalId: return WiQuery::GlobalId;
    case Builtin::GetLocalId: return WiQuery::LocalId;
    case Builtin::GetGroupId: return WiQuery::GroupId;
    case Builtin::GetGlobalSize: return WiQuery::GlobalSize;
    case Builtin::GetLocalSize: return WiQuery::LocalSize;
    case Builtin::GetNumGroups: return WiQuery::NumGroups;
    default: return std::nullopt;
  }
}

/// Folds an integer-constant expression tree (post-sema, so implicit casts
/// may wrap literals). Returns nullopt when not a compile-time constant.
std::optional<std::int64_t> foldInt(const Expr* e) {
  if (!e) return std::nullopt;
  switch (e->kind()) {
    case Expr::Kind::IntLiteral:
      return static_cast<std::int64_t>(static_cast<const ocl::IntLiteralExpr*>(e)->value);
    case Expr::Kind::BoolLiteral:
      return static_cast<const ocl::BoolLiteralExpr*>(e)->value ? 1 : 0;
    case Expr::Kind::Sizeof:
      return static_cast<std::int64_t>(
          static_cast<const ocl::SizeofExpr*>(e)->queried->sizeInBytes());
    case Expr::Kind::Cast: {
      const auto* c = static_cast<const ocl::CastExpr*>(e);
      if (!c->toType->isInt() && !c->toType->isBool()) return std::nullopt;
      return foldInt(c->operand.get());
    }
    case Expr::Kind::Unary: {
      const auto* u = static_cast<const ocl::UnaryExpr*>(e);
      auto v = foldInt(u->operand.get());
      if (!v) return std::nullopt;
      switch (u->op) {
        case UnaryOp::Plus: return v;
        case UnaryOp::Minus: return -*v;
        case UnaryOp::BitNot: return ~*v;
        case UnaryOp::LogNot: return *v == 0 ? 1 : 0;
        default: return std::nullopt;
      }
    }
    case Expr::Kind::Binary: {
      const auto* b = static_cast<const ocl::BinaryExpr*>(e);
      auto l = foldInt(b->lhs.get());
      auto r = foldInt(b->rhs.get());
      if (!l || !r) return std::nullopt;
      switch (b->op) {
        case BinaryOp::Add: return *l + *r;
        case BinaryOp::Sub: return *l - *r;
        case BinaryOp::Mul: return *l * *r;
        case BinaryOp::Div: return *r == 0 ? std::nullopt : std::optional(*l / *r);
        case BinaryOp::Rem: return *r == 0 ? std::nullopt : std::optional(*l % *r);
        case BinaryOp::Shl: return *l << *r;
        case BinaryOp::Shr: return *l >> *r;
        case BinaryOp::BitAnd: return *l & *r;
        case BinaryOp::BitOr: return *l | *r;
        case BinaryOp::BitXor: return *l ^ *r;
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

/// Strips implicit casts (inserted by sema) to look at the underlying node.
const Expr* stripCasts(const Expr* e) {
  while (e && e->kind() == Expr::Kind::Cast) {
    const auto* c = static_cast<const ocl::CastExpr*>(e);
    if (!c->isImplicit) break;
    e = c->operand.get();
  }
  return e;
}

/// The VarDecl a (cast-stripped) expression directly names, or nullptr.
const ocl::VarDecl* referencedVar(const Expr* e) {
  e = stripCasts(e);
  if (e && e->kind() == Expr::Kind::DeclRef) {
    return static_cast<const ocl::DeclRefExpr*>(e)->decl;
  }
  return nullptr;
}

/// Checks whether `stmt` (recursively) may modify `var`.
bool mayModify(const Stmt* stmt, const ocl::VarDecl* var);

bool exprMayModify(const Expr* e, const ocl::VarDecl* var) {
  if (!e) return false;
  switch (e->kind()) {
    case Expr::Kind::Assign: {
      const auto* a = static_cast<const ocl::AssignExpr*>(e);
      if (referencedVar(a->target.get()) == var) return true;
      return exprMayModify(a->target.get(), var) || exprMayModify(a->value.get(), var);
    }
    case Expr::Kind::Unary: {
      const auto* u = static_cast<const ocl::UnaryExpr*>(e);
      const bool mutating = u->op == UnaryOp::PreInc || u->op == UnaryOp::PreDec ||
                            u->op == UnaryOp::PostInc || u->op == UnaryOp::PostDec ||
                            u->op == UnaryOp::AddrOf;
      if (mutating && referencedVar(u->operand.get()) == var) return true;
      return exprMayModify(u->operand.get(), var);
    }
    case Expr::Kind::Binary: {
      const auto* b = static_cast<const ocl::BinaryExpr*>(e);
      return exprMayModify(b->lhs.get(), var) || exprMayModify(b->rhs.get(), var);
    }
    case Expr::Kind::Call: {
      const auto* c = static_cast<const ocl::CallExpr*>(e);
      for (const auto& arg : c->args) {
        if (exprMayModify(arg.get(), var)) return true;
      }
      return false;
    }
    case Expr::Kind::Index: {
      const auto* i = static_cast<const ocl::IndexExpr*>(e);
      return exprMayModify(i->base.get(), var) || exprMayModify(i->index.get(), var);
    }
    case Expr::Kind::Member:
      return exprMayModify(static_cast<const ocl::MemberExpr*>(e)->base.get(), var);
    case Expr::Kind::Cast:
      return exprMayModify(static_cast<const ocl::CastExpr*>(e)->operand.get(), var);
    case Expr::Kind::Conditional: {
      const auto* c = static_cast<const ocl::ConditionalExpr*>(e);
      return exprMayModify(c->cond.get(), var) ||
             exprMayModify(c->thenExpr.get(), var) ||
             exprMayModify(c->elseExpr.get(), var);
    }
    default:
      return false;
  }
}

bool mayModify(const Stmt* stmt, const ocl::VarDecl* var) {
  if (!stmt) return false;
  switch (stmt->kind()) {
    case Stmt::Kind::Compound: {
      const auto* c = static_cast<const ocl::CompoundStmt*>(stmt);
      for (const auto& s : c->body) {
        if (mayModify(s.get(), var)) return true;
      }
      return false;
    }
    case Stmt::Kind::Decl: {
      const auto* d = static_cast<const ocl::DeclStmt*>(stmt);
      for (const auto& v : d->decls) {
        if (v->init && exprMayModify(v->init.get(), var)) return true;
      }
      return false;
    }
    case Stmt::Kind::Expr:
      return exprMayModify(static_cast<const ocl::ExprStmt*>(stmt)->expr.get(), var);
    case Stmt::Kind::If: {
      const auto* s = static_cast<const ocl::IfStmt*>(stmt);
      return exprMayModify(s->cond.get(), var) || mayModify(s->thenStmt.get(), var) ||
             mayModify(s->elseStmt.get(), var);
    }
    case Stmt::Kind::For: {
      const auto* s = static_cast<const ocl::ForStmt*>(stmt);
      return mayModify(s->init.get(), var) || exprMayModify(s->cond.get(), var) ||
             exprMayModify(s->step.get(), var) || mayModify(s->body.get(), var);
    }
    case Stmt::Kind::While: {
      const auto* s = static_cast<const ocl::WhileStmt*>(stmt);
      return exprMayModify(s->cond.get(), var) || mayModify(s->body.get(), var);
    }
    case Stmt::Kind::Do: {
      const auto* s = static_cast<const ocl::DoStmt*>(stmt);
      return exprMayModify(s->cond.get(), var) || mayModify(s->body.get(), var);
    }
    case Stmt::Kind::Return:
      return exprMayModify(static_cast<const ocl::ReturnStmt*>(stmt)->value.get(), var);
    default:
      return false;
  }
}

/// Recognises the canonical `for (i = a; i <cmp> b; i += c)` shape and
/// returns its trip count; -1 when unknown statically.
std::int64_t detectStaticTripCount(const ocl::ForStmt& loop) {
  const ocl::VarDecl* var = nullptr;
  std::optional<std::int64_t> init;

  if (loop.init && loop.init->kind() == Stmt::Kind::Decl) {
    const auto* d = static_cast<const ocl::DeclStmt*>(loop.init.get());
    if (d->decls.size() == 1 && d->decls[0]->init) {
      var = d->decls[0].get();
      init = foldInt(d->decls[0]->init.get());
    }
  } else if (loop.init && loop.init->kind() == Stmt::Kind::Expr) {
    const auto* es = static_cast<const ocl::ExprStmt*>(loop.init.get());
    const Expr* e = es->expr.get();
    if (e && e->kind() == Expr::Kind::Assign) {
      const auto* a = static_cast<const ocl::AssignExpr*>(e);
      if (!a->hasCompoundOp) {
        var = referencedVar(a->target.get());
        init = foldInt(a->value.get());
      }
    }
  }
  if (!var || !init) return -1;

  const Expr* cond = stripCasts(loop.cond.get());
  if (!cond || cond->kind() != Expr::Kind::Binary) return -1;
  const auto* cmp = static_cast<const ocl::BinaryExpr*>(cond);
  std::optional<std::int64_t> bound;
  BinaryOp op = cmp->op;
  if (referencedVar(cmp->lhs.get()) == var) {
    bound = foldInt(cmp->rhs.get());
  } else if (referencedVar(cmp->rhs.get()) == var) {
    bound = foldInt(cmp->lhs.get());
    // Flip the comparison so `var` is conceptually on the left.
    switch (op) {
      case BinaryOp::Lt: op = BinaryOp::Gt; break;
      case BinaryOp::Le: op = BinaryOp::Ge; break;
      case BinaryOp::Gt: op = BinaryOp::Lt; break;
      case BinaryOp::Ge: op = BinaryOp::Le; break;
      default: break;
    }
  }
  if (!bound) return -1;

  std::optional<std::int64_t> step;
  const Expr* stepExpr = loop.step.get();
  if (!stepExpr) return -1;
  if (stepExpr->kind() == Expr::Kind::Unary) {
    const auto* u = static_cast<const ocl::UnaryExpr*>(stepExpr);
    if (referencedVar(u->operand.get()) != var) return -1;
    if (u->op == UnaryOp::PreInc || u->op == UnaryOp::PostInc) step = 1;
    if (u->op == UnaryOp::PreDec || u->op == UnaryOp::PostDec) step = -1;
  } else if (stepExpr->kind() == Expr::Kind::Assign) {
    const auto* a = static_cast<const ocl::AssignExpr*>(stepExpr);
    if (referencedVar(a->target.get()) != var) return -1;
    if (a->hasCompoundOp) {
      auto c = foldInt(a->value.get());
      if (!c) return -1;
      if (a->compoundOp == BinaryOp::Add) step = *c;
      if (a->compoundOp == BinaryOp::Sub) step = -*c;
    } else {
      const Expr* v = stripCasts(a->value.get());
      if (v && v->kind() == Expr::Kind::Binary) {
        const auto* b = static_cast<const ocl::BinaryExpr*>(v);
        if (referencedVar(b->lhs.get()) == var) {
          auto c = foldInt(b->rhs.get());
          if (c && b->op == BinaryOp::Add) step = *c;
          if (c && b->op == BinaryOp::Sub) step = -*c;
        } else if (referencedVar(b->rhs.get()) == var && b->op == BinaryOp::Add) {
          step = foldInt(b->lhs.get());
        }
      }
    }
  }
  if (!step || *step == 0) return -1;
  if (loop.body && mayModify(loop.body.get(), var)) return -1;

  const std::int64_t a = *init, b = *bound, s = *step;
  auto ceilDiv = [](std::int64_t num, std::int64_t den) {
    return (num + den - 1) / den;
  };
  switch (op) {
    case BinaryOp::Lt: return (s > 0 && b > a) ? ceilDiv(b - a, s) : (s > 0 ? 0 : -1);
    case BinaryOp::Le: return (s > 0 && b >= a) ? ceilDiv(b - a + 1, s) : (s > 0 ? 0 : -1);
    case BinaryOp::Gt: return (s < 0 && b < a) ? ceilDiv(a - b, -s) : (s < 0 ? 0 : -1);
    case BinaryOp::Ge: return (s < 0 && b <= a) ? ceilDiv(a - b + 1, -s) : (s < 0 ? 0 : -1);
    case BinaryOp::Ne:
      if ((b - a) % s == 0 && (b - a) / s >= 0) return (b - a) / s;
      return -1;
    default:
      return -1;
  }
}

// ---------------------------------------------------------------------------
// Lowerer
// ---------------------------------------------------------------------------

class Lowerer {
 public:
  Lowerer(Module& module, ocl::Program& program, DiagnosticEngine& diags)
      : module_(module), types_(module.types()), program_(program), diags_(diags) {}

  void lowerKernel(const ocl::FunctionDecl& decl);

 private:
  // --- region / block helpers ------------------------------------------------
  BasicBlock* newBlock(const std::string& hint) {
    return fn_->createBlock(hint + "." + std::to_string(blockCounter_++));
  }
  Region* currentSeq() { return seqStack_.back(); }
  /// Appends a Block region for `bb` unless it is already the last child.
  void noteBlock(BasicBlock* bb) {
    Region* seq = currentSeq();
    if (!seq->children.empty() &&
        seq->children.back()->kind == Region::Kind::Block &&
        seq->children.back()->block == bb) {
      return;
    }
    auto region = std::make_unique<Region>();
    region->kind = Region::Kind::Block;
    region->block = bb;
    seq->children.push_back(std::move(region));
  }
  /// Switches insertion to `bb` and records it in the current Seq.
  void startBlock(BasicBlock* bb) {
    b_->setInsertBlock(bb);
    noteBlock(bb);
  }

  // --- declarations -----------------------------------------------------------
  Instruction* slotFor(const ocl::VarDecl& var);
  void error(SourceLocation loc, std::string msg) { diags_.error(loc, std::move(msg)); }

  // --- statements --------------------------------------------------------------
  void lowerStmt(const Stmt& stmt);
  void lowerCompound(const ocl::CompoundStmt& stmt);
  void lowerDecl(const ocl::DeclStmt& stmt);
  void lowerIf(const ocl::IfStmt& stmt);
  void lowerFor(const ocl::ForStmt& stmt);
  void lowerWhile(const ocl::WhileStmt& stmt);
  void lowerDo(const ocl::DoStmt& stmt);
  void lowerReturn(const ocl::ReturnStmt& stmt);

  // --- expressions --------------------------------------------------------------
  Value* lowerExpr(const Expr& e);
  /// Memory-backed lvalue address. Returns a pointer Value; reports an error
  /// and returns a dummy pointer when the expression is not an lvalue we can
  /// address.
  Value* lowerAddress(const Expr& e);
  Value* lowerBinary(const ocl::BinaryExpr& e);
  Value* lowerUnary(const ocl::UnaryExpr& e);
  Value* lowerAssign(const ocl::AssignExpr& e);
  Value* lowerCall(const ocl::CallExpr& e);
  Value* lowerCast(const Value* dummy, const ocl::CastExpr& e);
  Value* emitCast(Value* v, const Type* from, const Type* to, SourceLocation loc);
  Value* emitBinaryOp(BinaryOp op, Value* lhs, Value* rhs, const Type* type,
                      SourceLocation loc);
  Value* emitPointerOffset(Value* ptr, Value* index, const Type* pointee, bool negate);

  Constant* intConst(const Type* t, std::int64_t v) { return fn_->intConstant(t, v); }
  Constant* i64Const(std::int64_t v) { return fn_->intConstant(types_.i64(), v); }

  Module& module_;
  TypeContext& types_;
  ocl::Program& program_;
  DiagnosticEngine& diags_;

  Function* fn_ = nullptr;
  std::unique_ptr<IRBuilder> b_;
  std::unordered_map<const ocl::VarDecl*, Instruction*> slots_;
  /// Parameters the body never modifies are used as SSA-like values directly
  /// (no slot round-trip) so memory provenance can see through to the
  /// Argument.
  std::unordered_map<const ocl::VarDecl*, Value*> immutableParams_;
  BasicBlock* kernelExit_ = nullptr;

  struct LoopTargets {
    BasicBlock* latch;
    BasicBlock* exit;
  };
  std::vector<LoopTargets> loopStack_;
  std::vector<Region*> seqStack_;

  struct InlineFrame {
    Instruction* retSlot;
    BasicBlock* exitBlock;
  };
  std::vector<InlineFrame> inlineStack_;
  int inlineDepth_ = 0;
  int blockCounter_ = 0;
  int allocaCounter_ = 0;
};

Instruction* Lowerer::slotFor(const ocl::VarDecl& var) {
  auto it = slots_.find(&var);
  if (it != slots_.end()) return it->second;
  const AddressSpace space = var.addressSpace == AddressSpace::Local
                                 ? AddressSpace::Local
                                 : AddressSpace::Private;
  const Type* ptrType = types_.pointerType(var.type, space);
  Instruction* slot = b_->allocaInst(var.type, space, ptrType,
                                 var.name + "." + std::to_string(allocaCounter_++));
  slots_[&var] = slot;
  return slot;
}

void Lowerer::lowerKernel(const ocl::FunctionDecl& decl) {
  fn_ = module_.createFunction(decl.name, decl.returnType);
  fn_->isKernel = decl.isKernel;
  fn_->reqdWorkGroupSize = decl.reqdWorkGroupSize;
  b_ = std::make_unique<IRBuilder>(*fn_);
  slots_.clear();
  loopStack_.clear();
  seqStack_.clear();
  inlineStack_.clear();
  blockCounter_ = 0;
  allocaCounter_ = 0;

  auto root = std::make_unique<Region>();
  root->kind = Region::Kind::Seq;
  Region* rootPtr = root.get();
  fn_->setRootRegion(std::move(root));
  seqStack_.push_back(rootPtr);

  BasicBlock* entry = fn_->createBlock("entry");
  kernelExit_ = fn_->createBlock("exit");
  b_->setInsertBlock(entry);
  noteBlock(entry);

  // Parameters the body modifies become private slots initialised from the
  // Argument; untouched ones are used directly (keeps pointer provenance
  // visible to the dependence analysis).
  immutableParams_.clear();
  for (const auto& param : decl.params) {
    Argument* arg = fn_->addArgument(param->type, param->name);
    if (decl.body && !mayModify(decl.body.get(), param.get()) &&
        !param->type->isArray() && !param->type->isStruct()) {
      immutableParams_[param.get()] = arg;
    } else {
      Instruction* slot = slotFor(*param);
      b_->store(arg, slot);
    }
  }

  if (decl.body) lowerCompound(*decl.body);

  b_->br(kernelExit_);
  b_->setInsertBlock(kernelExit_);
  noteBlock(kernelExit_);
  b_->ret(nullptr);

  fn_->renumber();
  seqStack_.pop_back();
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Lowerer::lowerStmt(const Stmt& stmt) {
  b_->setCurrentLoc(stmt.location);
  switch (stmt.kind()) {
    case Stmt::Kind::Compound:
      lowerCompound(static_cast<const ocl::CompoundStmt&>(stmt));
      break;
    case Stmt::Kind::Decl:
      lowerDecl(static_cast<const ocl::DeclStmt&>(stmt));
      break;
    case Stmt::Kind::Expr: {
      const auto& s = static_cast<const ocl::ExprStmt&>(stmt);
      if (s.expr) lowerExpr(*s.expr);
      break;
    }
    case Stmt::Kind::If:
      lowerIf(static_cast<const ocl::IfStmt&>(stmt));
      break;
    case Stmt::Kind::For:
      lowerFor(static_cast<const ocl::ForStmt&>(stmt));
      break;
    case Stmt::Kind::While:
      lowerWhile(static_cast<const ocl::WhileStmt&>(stmt));
      break;
    case Stmt::Kind::Do:
      lowerDo(static_cast<const ocl::DoStmt&>(stmt));
      break;
    case Stmt::Kind::Return:
      lowerReturn(static_cast<const ocl::ReturnStmt&>(stmt));
      break;
    case Stmt::Kind::Break: {
      if (loopStack_.empty()) {
        error(stmt.location, "break outside of a loop");
        break;
      }
      b_->br(loopStack_.back().exit);
      startBlock(newBlock("dead"));
      break;
    }
    case Stmt::Kind::Continue: {
      if (loopStack_.empty()) {
        error(stmt.location, "continue outside of a loop");
        break;
      }
      b_->br(loopStack_.back().latch);
      startBlock(newBlock("dead"));
      break;
    }
  }
}

void Lowerer::lowerCompound(const ocl::CompoundStmt& stmt) {
  for (const auto& s : stmt.body) lowerStmt(*s);
}

void Lowerer::lowerDecl(const ocl::DeclStmt& stmt) {
  for (const auto& var : stmt.decls) {
    Instruction* slot = slotFor(*var);
    if (var->init) {
      Value* init = lowerExpr(*var->init);
      b_->store(init, slot);
    }
  }
}

void Lowerer::lowerIf(const ocl::IfStmt& stmt) {
  Value* cond = lowerExpr(*stmt.cond);
  BasicBlock* condBlock = b_->insertBlock();

  BasicBlock* thenBB = newBlock("if.then");
  BasicBlock* mergeBB = newBlock("if.end");
  BasicBlock* elseBB = stmt.elseStmt ? newBlock("if.else") : mergeBB;
  b_->condBr(cond, thenBB, elseBB);

  auto ifRegion = std::make_unique<Region>();
  ifRegion->kind = Region::Kind::If;
  ifRegion->condBlock = condBlock;
  ifRegion->loc = stmt.location;

  auto thenSeq = std::make_unique<Region>();
  thenSeq->kind = Region::Kind::Seq;
  Region* thenPtr = thenSeq.get();
  ifRegion->children.push_back(std::move(thenSeq));

  auto elseSeq = std::make_unique<Region>();
  elseSeq->kind = Region::Kind::Seq;
  Region* elsePtr = elseSeq.get();
  ifRegion->children.push_back(std::move(elseSeq));

  currentSeq()->children.push_back(std::move(ifRegion));

  seqStack_.push_back(thenPtr);
  b_->setInsertBlock(thenBB);
  noteBlock(thenBB);
  if (stmt.thenStmt) lowerStmt(*stmt.thenStmt);
  b_->br(mergeBB);
  seqStack_.pop_back();

  if (stmt.elseStmt) {
    seqStack_.push_back(elsePtr);
    b_->setInsertBlock(elseBB);
    noteBlock(elseBB);
    lowerStmt(*stmt.elseStmt);
    b_->br(mergeBB);
    seqStack_.pop_back();
  }

  startBlock(mergeBB);
}

void Lowerer::lowerFor(const ocl::ForStmt& stmt) {
  if (stmt.init) lowerStmt(*stmt.init);

  BasicBlock* headerBB = newBlock("loop.head");
  BasicBlock* bodyBB = newBlock("loop.body");
  BasicBlock* latchBB = newBlock("loop.latch");
  BasicBlock* exitBB = newBlock("loop.exit");
  b_->br(headerBB);

  auto loopRegion = std::make_unique<Region>();
  loopRegion->kind = Region::Kind::Loop;
  loopRegion->condBlock = headerBB;
  loopRegion->latchBlock = latchBB;
  loopRegion->loopId = fn_->loopCount++;
  loopRegion->staticTripCount = detectStaticTripCount(stmt);
  loopRegion->unrollHint = stmt.unrollHint;
  loopRegion->loc = stmt.location;

  auto bodySeq = std::make_unique<Region>();
  bodySeq->kind = Region::Kind::Seq;
  Region* bodyPtr = bodySeq.get();
  loopRegion->children.push_back(std::move(bodySeq));
  currentSeq()->children.push_back(std::move(loopRegion));

  b_->setInsertBlock(headerBB);
  if (stmt.cond) {
    Value* cond = lowerExpr(*stmt.cond);
    b_->condBr(cond, bodyBB, exitBB);
  } else {
    b_->br(bodyBB);
  }

  loopStack_.push_back({latchBB, exitBB});
  seqStack_.push_back(bodyPtr);
  b_->setInsertBlock(bodyBB);
  noteBlock(bodyBB);
  if (stmt.body) lowerStmt(*stmt.body);
  b_->br(latchBB);
  seqStack_.pop_back();
  loopStack_.pop_back();

  b_->setInsertBlock(latchBB);
  if (stmt.step) lowerExpr(*stmt.step);
  b_->br(headerBB);

  startBlock(exitBB);
}

void Lowerer::lowerWhile(const ocl::WhileStmt& stmt) {
  BasicBlock* headerBB = newBlock("while.head");
  BasicBlock* bodyBB = newBlock("while.body");
  BasicBlock* latchBB = newBlock("while.latch");
  BasicBlock* exitBB = newBlock("while.exit");
  b_->br(headerBB);

  auto loopRegion = std::make_unique<Region>();
  loopRegion->kind = Region::Kind::Loop;
  loopRegion->condBlock = headerBB;
  loopRegion->latchBlock = latchBB;
  loopRegion->loopId = fn_->loopCount++;
  loopRegion->staticTripCount = -1;
  loopRegion->unrollHint = stmt.unrollHint;
  loopRegion->loc = stmt.location;

  auto bodySeq = std::make_unique<Region>();
  bodySeq->kind = Region::Kind::Seq;
  Region* bodyPtr = bodySeq.get();
  loopRegion->children.push_back(std::move(bodySeq));
  currentSeq()->children.push_back(std::move(loopRegion));

  b_->setInsertBlock(headerBB);
  Value* cond = lowerExpr(*stmt.cond);
  b_->condBr(cond, bodyBB, exitBB);

  loopStack_.push_back({latchBB, exitBB});
  seqStack_.push_back(bodyPtr);
  b_->setInsertBlock(bodyBB);
  noteBlock(bodyBB);
  if (stmt.body) lowerStmt(*stmt.body);
  b_->br(latchBB);
  seqStack_.pop_back();
  loopStack_.pop_back();

  b_->setInsertBlock(latchBB);
  b_->br(headerBB);

  startBlock(exitBB);
}

void Lowerer::lowerDo(const ocl::DoStmt& stmt) {
  // do { body } while (c) is lowered with the condition in the header after
  // one unconditional first entry: body; latch evaluates cond and loops.
  BasicBlock* bodyBB = newBlock("do.body");
  BasicBlock* latchBB = newBlock("do.latch");
  BasicBlock* exitBB = newBlock("do.exit");
  b_->br(bodyBB);

  auto loopRegion = std::make_unique<Region>();
  loopRegion->kind = Region::Kind::Loop;
  loopRegion->condBlock = latchBB;  // condition lives in the latch
  loopRegion->latchBlock = latchBB;
  loopRegion->loopId = fn_->loopCount++;
  loopRegion->staticTripCount = -1;
  loopRegion->loc = stmt.location;
  auto bodySeq = std::make_unique<Region>();
  bodySeq->kind = Region::Kind::Seq;
  Region* bodyPtr = bodySeq.get();
  loopRegion->children.push_back(std::move(bodySeq));
  currentSeq()->children.push_back(std::move(loopRegion));

  loopStack_.push_back({latchBB, exitBB});
  seqStack_.push_back(bodyPtr);
  b_->setInsertBlock(bodyBB);
  noteBlock(bodyBB);
  if (stmt.body) lowerStmt(*stmt.body);
  b_->br(latchBB);
  seqStack_.pop_back();
  loopStack_.pop_back();

  b_->setInsertBlock(latchBB);
  Value* cond = lowerExpr(*stmt.cond);
  b_->condBr(cond, bodyBB, exitBB);

  startBlock(exitBB);
}

void Lowerer::lowerReturn(const ocl::ReturnStmt& stmt) {
  if (!inlineStack_.empty()) {
    InlineFrame& frame = inlineStack_.back();
    if (stmt.value && frame.retSlot) {
      Value* v = lowerExpr(*stmt.value);
      b_->store(v, frame.retSlot);
    }
    b_->br(frame.exitBlock);
  } else {
    if (stmt.value) lowerExpr(*stmt.value);  // evaluated for effect; kernels are void
    b_->br(kernelExit_);
  }
  startBlock(newBlock("dead"));
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value* Lowerer::lowerExpr(const Expr& e) {
  if (e.location.isValid()) b_->setCurrentLoc(e.location);
  switch (e.kind()) {
    case Expr::Kind::IntLiteral: {
      const auto& lit = static_cast<const ocl::IntLiteralExpr&>(e);
      return intConst(e.type, static_cast<std::int64_t>(lit.value));
    }
    case Expr::Kind::FloatLiteral: {
      const auto& lit = static_cast<const ocl::FloatLiteralExpr&>(e);
      return fn_->floatConstant(e.type, lit.value);
    }
    case Expr::Kind::BoolLiteral: {
      const auto& lit = static_cast<const ocl::BoolLiteralExpr&>(e);
      return intConst(types_.boolType(), lit.value ? 1 : 0);
    }
    case Expr::Kind::DeclRef: {
      const auto& ref = static_cast<const ocl::DeclRefExpr&>(e);
      auto immutable = immutableParams_.find(ref.decl);
      if (immutable != immutableParams_.end()) return immutable->second;
      Instruction* slot = slotFor(*ref.decl);
      if (ref.decl->type->isArray() || ref.decl->type->isStruct()) {
        // Arrays/structs decay to their storage pointer.
        return slot;
      }
      return b_->load(slot, ref.decl->type);
    }
    case Expr::Kind::Binary:
      return lowerBinary(static_cast<const ocl::BinaryExpr&>(e));
    case Expr::Kind::Unary:
      return lowerUnary(static_cast<const ocl::UnaryExpr&>(e));
    case Expr::Kind::Assign:
      return lowerAssign(static_cast<const ocl::AssignExpr&>(e));
    case Expr::Kind::Call:
      return lowerCall(static_cast<const ocl::CallExpr&>(e));
    case Expr::Kind::Index:
    case Expr::Kind::Member: {
      // Vector component of a register value falls back to lane extraction;
      // everything else is a memory access through the computed address.
      if (e.kind() == Expr::Kind::Member) {
        const auto& m = static_cast<const ocl::MemberExpr&>(e);
        if (m.laneIndex >= 0 && !m.base->isLValue) {
          Value* vec = lowerExpr(*m.base);
          return b_->extractLane(vec, i64Const(m.laneIndex), e.type);
        }
      }
      Value* addr = lowerAddress(e);
      return b_->load(addr, e.type);
    }
    case Expr::Kind::Cast: {
      const auto& c = static_cast<const ocl::CastExpr&>(e);
      Value* v = lowerExpr(*c.operand);
      return emitCast(v, c.operand->type, c.toType, e.location);
    }
    case Expr::Kind::Conditional: {
      const auto& c = static_cast<const ocl::ConditionalExpr&>(e);
      // Both sides evaluated + select: matches the speculative datapath HLS
      // generates for small conditionals.
      Value* cond = lowerExpr(*c.cond);
      Value* t = lowerExpr(*c.thenExpr);
      Value* f = lowerExpr(*c.elseExpr);
      return b_->select(cond, t, f);
    }
    case Expr::Kind::VectorConstruct: {
      const auto& v = static_cast<const ocl::VectorConstructExpr&>(e);
      Value* acc = b_->splat(fn_->intConstant(types_.i32(), 0), v.vectorType);
      if (v.vectorType->element()->isFloat()) {
        acc = b_->splat(fn_->floatConstant(v.vectorType->element(), 0.0), v.vectorType);
      }
      std::int64_t lane = 0;
      for (const auto& elem : v.elements) {
        Value* ev = lowerExpr(*elem);
        if (elem->type->isVector()) {
          for (std::uint64_t i = 0; i < elem->type->count(); ++i) {
            Value* comp = b_->extractLane(ev, i64Const(static_cast<std::int64_t>(i)),
                                          elem->type->element());
            acc = b_->insertLane(acc, i64Const(lane++), comp);
          }
        } else {
          acc = b_->insertLane(acc, i64Const(lane++), ev);
        }
      }
      return acc;
    }
    case Expr::Kind::Sizeof: {
      const auto& s = static_cast<const ocl::SizeofExpr&>(e);
      return intConst(e.type, static_cast<std::int64_t>(s.queried->sizeInBytes()));
    }
  }
  error(e.location, "unsupported expression in lowering");
  return intConst(types_.i32(), 0);
}

Value* Lowerer::lowerAddress(const Expr& e) {
  if (e.location.isValid()) b_->setCurrentLoc(e.location);
  switch (e.kind()) {
    case Expr::Kind::DeclRef: {
      const auto& ref = static_cast<const ocl::DeclRefExpr&>(e);
      return slotFor(*ref.decl);
    }
    case Expr::Kind::Index: {
      const auto& idx = static_cast<const ocl::IndexExpr&>(e);
      const Type* baseType = idx.base->type;
      Value* basePtr = nullptr;
      const Type* elemType = nullptr;
      AddressSpace space = AddressSpace::Private;
      if (baseType->isPointer()) {
        basePtr = lowerExpr(*idx.base);
        elemType = baseType->element();
        space = baseType->addressSpace();
      } else if (baseType->isArray()) {
        basePtr = lowerAddress(*idx.base);
        elemType = baseType->element();
        space = basePtr->type()->isPointer() ? basePtr->type()->addressSpace()
                                             : AddressSpace::Private;
      } else if (baseType->isVector()) {
        basePtr = lowerAddress(*idx.base);
        elemType = baseType->element();
        space = basePtr->type()->isPointer() ? basePtr->type()->addressSpace()
                                             : AddressSpace::Private;
      } else {
        error(e.location, "cannot index " + baseType->str());
        return slotFor(*static_cast<const ocl::DeclRefExpr&>(*idx.base).decl);
      }
      Value* index = lowerExpr(*idx.index);
      Value* idx64 = index;
      if (index->type() != types_.i64()) {
        idx64 = b_->cast(index->type()->isSigned() ? Opcode::SExt : Opcode::ZExt,
                         index, types_.i64());
      }
      Value* scaled = b_->binary(
          Opcode::Mul, idx64,
          i64Const(static_cast<std::int64_t>(elemType->sizeInBytes())), types_.i64());
      return b_->ptrAdd(basePtr, scaled, types_.pointerType(elemType, space));
    }
    case Expr::Kind::Member: {
      const auto& m = static_cast<const ocl::MemberExpr&>(e);
      Value* basePtr = nullptr;
      const Type* recordType = m.base->type;
      if (m.isArrow) {
        basePtr = lowerExpr(*m.base);
        recordType = m.base->type->element();
      } else {
        basePtr = lowerAddress(*m.base);
      }
      const AddressSpace space = basePtr->type()->isPointer()
                                     ? basePtr->type()->addressSpace()
                                     : AddressSpace::Private;
      if (m.fieldIndex >= 0) {
        const std::uint64_t offset =
            recordType->fieldOffset(static_cast<unsigned>(m.fieldIndex));
        return b_->ptrAdd(basePtr, i64Const(static_cast<std::int64_t>(offset)),
                          types_.pointerType(e.type, space));
      }
      if (m.laneIndex >= 0) {
        const std::uint64_t offset =
            recordType->element()->sizeInBytes() *
            static_cast<std::uint64_t>(m.laneIndex);
        return b_->ptrAdd(basePtr, i64Const(static_cast<std::int64_t>(offset)),
                          types_.pointerType(e.type, space));
      }
      error(e.location, "unresolved member access");
      return basePtr;
    }
    case Expr::Kind::Unary: {
      const auto& u = static_cast<const ocl::UnaryExpr&>(e);
      if (u.op == UnaryOp::Deref) return lowerExpr(*u.operand);
      break;
    }
    default:
      break;
  }
  error(e.location, "expression is not addressable");
  // Recovery: synthesize a scratch slot of the right type.
  const Type* t = e.type ? e.type : types_.i32();
  return b_->allocaInst(t, AddressSpace::Private, types_.pointerType(t, AddressSpace::Private),
                    "scratch." + std::to_string(allocaCounter_++));
}

Value* Lowerer::emitPointerOffset(Value* ptr, Value* index, const Type* pointee,
                                  bool negate) {
  Value* idx64 = index;
  if (index->type() != types_.i64()) {
    idx64 = b_->cast(index->type()->isSigned() ? Opcode::SExt : Opcode::ZExt, index,
                     types_.i64());
  }
  Value* scaled = b_->binary(
      Opcode::Mul, idx64,
      i64Const(static_cast<std::int64_t>(pointee->sizeInBytes())), types_.i64());
  if (negate) {
    scaled = b_->binary(Opcode::Sub, i64Const(0), scaled, types_.i64());
  }
  return b_->ptrAdd(ptr, scaled);
}

Value* Lowerer::emitBinaryOp(BinaryOp op, Value* lhs, Value* rhs, const Type* type,
                             SourceLocation loc) {
  const Type* opType = lhs->type();
  const bool isFloat = opType->isFloat() ||
                       (opType->isVector() && opType->element()->isFloat());
  switch (op) {
    case BinaryOp::Add:
      return b_->binary(isFloat ? Opcode::FAdd : Opcode::Add, lhs, rhs, type);
    case BinaryOp::Sub:
      return b_->binary(isFloat ? Opcode::FSub : Opcode::Sub, lhs, rhs, type);
    case BinaryOp::Mul:
      return b_->binary(isFloat ? Opcode::FMul : Opcode::Mul, lhs, rhs, type);
    case BinaryOp::Div:
      return b_->binary(isFloat ? Opcode::FDiv : Opcode::Div, lhs, rhs, type);
    case BinaryOp::Rem:
      return b_->binary(isFloat ? Opcode::FRem : Opcode::Rem, lhs, rhs, type);
    case BinaryOp::Shl: return b_->binary(Opcode::Shl, lhs, rhs, type);
    case BinaryOp::Shr: return b_->binary(Opcode::Shr, lhs, rhs, type);
    case BinaryOp::BitAnd: return b_->binary(Opcode::And, lhs, rhs, type);
    case BinaryOp::BitOr: return b_->binary(Opcode::Or, lhs, rhs, type);
    case BinaryOp::BitXor: return b_->binary(Opcode::Xor, lhs, rhs, type);
    case BinaryOp::LogAnd: return b_->binary(Opcode::And, lhs, rhs, type);
    case BinaryOp::LogOr: return b_->binary(Opcode::Or, lhs, rhs, type);
    case BinaryOp::Lt:
    case BinaryOp::Gt:
    case BinaryOp::Le:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      CmpPred pred = CmpPred::Eq;
      switch (op) {
        case BinaryOp::Lt: pred = CmpPred::Lt; break;
        case BinaryOp::Gt: pred = CmpPred::Gt; break;
        case BinaryOp::Le: pred = CmpPred::Le; break;
        case BinaryOp::Ge: pred = CmpPred::Ge; break;
        case BinaryOp::Eq: pred = CmpPred::Eq; break;
        case BinaryOp::Ne: pred = CmpPred::Ne; break;
        default: break;
      }
      if (isFloat) return b_->fcmp(pred, lhs, rhs, types_.boolType());
      return b_->icmp(pred, lhs, rhs, types_.boolType());
    }
  }
  error(loc, "unsupported binary operator in lowering");
  return lhs;
}

Value* Lowerer::lowerBinary(const ocl::BinaryExpr& e) {
  const Type* lt = e.lhs->type;
  const Type* rt = e.rhs->type;

  // Pointer arithmetic forms.
  if ((e.op == BinaryOp::Add || e.op == BinaryOp::Sub) && lt->isPointer() &&
      rt->isInt()) {
    Value* ptr = lowerExpr(*e.lhs);
    Value* idx = lowerExpr(*e.rhs);
    return emitPointerOffset(ptr, idx, lt->element(), e.op == BinaryOp::Sub);
  }
  if (e.op == BinaryOp::Add && lt->isInt() && rt->isPointer()) {
    Value* ptr = lowerExpr(*e.rhs);
    Value* idx = lowerExpr(*e.lhs);
    return emitPointerOffset(ptr, idx, rt->element(), false);
  }
  if (e.op == BinaryOp::Sub && lt->isPointer() && rt->isPointer()) {
    error(e.location, "pointer difference is not supported");
    return i64Const(0);
  }

  Value* lhs = lowerExpr(*e.lhs);
  Value* rhs = lowerExpr(*e.rhs);
  return emitBinaryOp(e.op, lhs, rhs, e.type, e.location);
}

Value* Lowerer::lowerUnary(const ocl::UnaryExpr& e) {
  switch (e.op) {
    case UnaryOp::Plus:
      return lowerExpr(*e.operand);
    case UnaryOp::Minus: {
      Value* v = lowerExpr(*e.operand);
      const Type* t = e.type;
      const bool isFloat = t->isFloat() || (t->isVector() && t->element()->isFloat());
      Value* zero = isFloat
          ? static_cast<Value*>(fn_->floatConstant(
                t->isVector() ? t->element() : t, 0.0))
          : static_cast<Value*>(intConst(t->isVector() ? t->element() : t, 0));
      if (t->isVector()) zero = b_->splat(zero, t);
      return b_->binary(isFloat ? Opcode::FSub : Opcode::Sub, zero, v, t);
    }
    case UnaryOp::BitNot: {
      Value* v = lowerExpr(*e.operand);
      const Type* t = e.type;
      Value* allOnes = intConst(t->isVector() ? t->element() : t, -1);
      if (t->isVector()) allOnes = b_->splat(allOnes, t);
      return b_->binary(Opcode::Xor, v, allOnes, t);
    }
    case UnaryOp::LogNot: {
      Value* v = lowerExpr(*e.operand);
      const Type* vt = v->type();
      if (vt->isFloat()) {
        return b_->fcmp(CmpPred::Eq, v, fn_->floatConstant(vt, 0.0), types_.boolType());
      }
      if (vt->isPointer()) {
        // Pointers are never null in our memory model, so !p is false.
        return intConst(types_.boolType(), 0);
      }
      return b_->icmp(CmpPred::Eq, v, intConst(vt, 0), types_.boolType());
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
      Value* addr = lowerAddress(*e.operand);
      const Type* t = e.operand->type;
      Value* oldV = b_->load(addr, t);
      Value* newV = nullptr;
      const bool inc = e.op == UnaryOp::PreInc || e.op == UnaryOp::PostInc;
      if (t->isPointer()) {
        newV = emitPointerOffset(oldV, i64Const(1), t->element(), !inc);
      } else if (t->isFloat()) {
        Value* one = fn_->floatConstant(t, 1.0);
        newV = b_->binary(inc ? Opcode::FAdd : Opcode::FSub, oldV, one, t);
      } else {
        Value* one = intConst(t, 1);
        newV = b_->binary(inc ? Opcode::Add : Opcode::Sub, oldV, one, t);
      }
      b_->store(newV, addr);
      const bool isPost = e.op == UnaryOp::PostInc || e.op == UnaryOp::PostDec;
      return isPost ? oldV : newV;
    }
    case UnaryOp::Deref: {
      Value* ptr = lowerExpr(*e.operand);
      return b_->load(ptr, e.type);
    }
    case UnaryOp::AddrOf:
      return lowerAddress(*e.operand);
  }
  error(e.location, "unsupported unary operator");
  return intConst(types_.i32(), 0);
}

Value* Lowerer::lowerAssign(const ocl::AssignExpr& e) {
  Value* addr = lowerAddress(*e.target);
  Value* result = nullptr;
  if (e.hasCompoundOp) {
    const Type* t = e.target->type;
    Value* oldV = b_->load(addr, t);
    Value* rhs = lowerExpr(*e.value);
    if (t->isPointer()) {
      result = emitPointerOffset(oldV, rhs, t->element(),
                                 e.compoundOp == BinaryOp::Sub);
    } else {
      result = emitBinaryOp(e.compoundOp, oldV, rhs, t, e.location);
    }
  } else {
    result = lowerExpr(*e.value);
  }
  b_->store(result, addr);
  return result;
}

Value* Lowerer::lowerCall(const ocl::CallExpr& e) {
  if (e.builtin != Builtin::None) {
    if (e.builtin == Builtin::Barrier || e.builtin == Builtin::MemFence) {
      b_->barrier();
      return nullptr;
    }
    if (auto q = wiQueryFor(e.builtin)) {
      Value* dim = e.args.empty() ? static_cast<Value*>(intConst(types_.u32(), 0))
                                  : lowerExpr(*e.args[0]);
      return b_->workItemId(*q, dim, e.type);
    }
    if (auto mf = mathFuncFor(e.builtin)) {
      std::vector<Value*> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) args.push_back(lowerExpr(*a));
      return b_->call(*mf, args, e.type);
    }
    error(e.location, "builtin not supported in lowering: " + e.callee);
    return intConst(types_.i32(), 0);
  }

  // User function: inline the body.
  const ocl::FunctionDecl* callee = e.function;
  if (!callee || !callee->body) {
    error(e.location, "cannot inline function '" + e.callee + "'");
    return intConst(e.type ? e.type : types_.i32(), 0);
  }
  if (inlineDepth_ > 32) {
    error(e.location, "inline depth exceeded (recursive call chain?)");
    return intConst(e.type ? e.type : types_.i32(), 0);
  }

  // Evaluate arguments, then bind them to fresh parameter slots.
  std::vector<Value*> argValues;
  argValues.reserve(e.args.size());
  for (const auto& a : e.args) argValues.push_back(lowerExpr(*a));

  for (std::size_t i = 0; i < callee->params.size() && i < argValues.size(); ++i) {
    const ocl::VarDecl* param = callee->params[i].get();
    slots_.erase(param);  // fresh slot per inline expansion site
    Instruction* slot = slotFor(*param);
    b_->store(argValues[i], slot);
  }

  Instruction* retSlot = nullptr;
  if (!callee->returnType->isVoid()) {
    retSlot = b_->allocaInst(
        callee->returnType, AddressSpace::Private,
        types_.pointerType(callee->returnType, AddressSpace::Private),
        "ret." + callee->name + "." + std::to_string(allocaCounter_++));
  }
  BasicBlock* exitBB = newBlock("inline.exit");
  inlineStack_.push_back({retSlot, exitBB});
  ++inlineDepth_;
  lowerCompound(*callee->body);
  --inlineDepth_;
  inlineStack_.pop_back();

  b_->br(exitBB);
  startBlock(exitBB);
  if (retSlot) return b_->load(retSlot, callee->returnType);
  return nullptr;
}

Value* Lowerer::emitCast(Value* v, const Type* from, const Type* to,
                         SourceLocation loc) {
  if (from == to) return v;

  // Scalar -> vector splat (element is converted first).
  if (to->isVector() && from->isScalar()) {
    Value* elem = emitCast(v, from, to->element(), loc);
    return b_->splat(elem, to);
  }
  // Vector -> vector: one lane-wise cast instruction.
  if (to->isVector() && from->isVector()) {
    const Type* fe = from->element();
    const Type* te = to->element();
    if (fe == te) return v;
    // Choose opcode from element kinds.
    if (fe->isFloat() && te->isFloat()) {
      return b_->cast(te->bits() > fe->bits() ? Opcode::FPExt : Opcode::FPTrunc, v, to);
    }
    if (fe->isFloat()) {
      return b_->cast(te->isSigned() ? Opcode::FPToSI : Opcode::FPToUI, v, to);
    }
    if (te->isFloat()) {
      return b_->cast(fe->isSigned() ? Opcode::SIToFP : Opcode::UIToFP, v, to);
    }
    if (te->bits() < fe->bits()) return b_->cast(Opcode::Trunc, v, to);
    return b_->cast(fe->isSigned() ? Opcode::SExt : Opcode::ZExt, v, to);
  }

  if (from->isPointer() && to->isPointer()) return b_->cast(Opcode::Bitcast, v, to);
  // Array-to-pointer decay: the value is already the storage pointer.
  if (from->isArray() && to->isPointer()) return b_->cast(Opcode::Bitcast, v, to);

  if (to->isBool()) {
    if (from->isFloat()) {
      return b_->fcmp(CmpPred::Ne, v, fn_->floatConstant(from, 0.0), types_.boolType());
    }
    if (from->isPointer()) {
      // Null-pointer checks are not meaningful in our memory model; treat any
      // pointer as true.
      return intConst(types_.boolType(), 1);
    }
    return b_->icmp(CmpPred::Ne, v, intConst(from, 0), types_.boolType());
  }
  if (from->isBool()) {
    if (to->isFloat()) {
      Value* asInt = b_->cast(Opcode::ZExt, v, types_.i32());
      return b_->cast(Opcode::UIToFP, asInt, to);
    }
    return b_->cast(Opcode::ZExt, v, to);
  }
  if (from->isFloat() && to->isFloat()) {
    return b_->cast(to->bits() > from->bits() ? Opcode::FPExt : Opcode::FPTrunc, v, to);
  }
  if (from->isFloat() && to->isInt()) {
    return b_->cast(to->isSigned() ? Opcode::FPToSI : Opcode::FPToUI, v, to);
  }
  if (from->isInt() && to->isFloat()) {
    return b_->cast(from->isSigned() ? Opcode::SIToFP : Opcode::UIToFP, v, to);
  }
  if (from->isInt() && to->isInt()) {
    if (to->bits() < from->bits()) return b_->cast(Opcode::Trunc, v, to);
    if (to->bits() > from->bits()) {
      return b_->cast(from->isSigned() ? Opcode::SExt : Opcode::ZExt, v, to);
    }
    return b_->cast(Opcode::Bitcast, v, to);  // same width, signedness change
  }
  error(loc, "unsupported cast from " + from->str() + " to " + to->str());
  return v;
}

}  // namespace

std::unique_ptr<Module> lowerProgram(ocl::Program& program, DiagnosticEngine& diags) {
  auto module = std::make_unique<Module>(*program.types);
  Lowerer lowerer(*module, program, diags);
  for (const auto& fn : program.functions) {
    if (fn->isKernel) lowerer.lowerKernel(*fn);
  }
  return module;
}

std::unique_ptr<CompiledProgram> compileOpenCl(
    const std::string& source, DiagnosticEngine& diags,
    const std::unordered_map<std::string, std::string>& defines) {
  std::unique_ptr<ocl::Program> ast = ocl::parseOpenCl(source, diags, defines);
  if (!ast) return nullptr;
  auto compiled = std::make_unique<CompiledProgram>();
  compiled->module = lowerProgram(*ast, diags);
  compiled->ast = std::move(ast);
  if (diags.hasErrors()) return nullptr;
  for (const auto& fn : compiled->module->functions()) {
    reportVerifierIssues(*fn, diags);
  }
  if (diags.hasErrors()) return nullptr;
  return compiled;
}

}  // namespace flexcl::ir
