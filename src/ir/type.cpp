#include "ir/type.h"

#include <cassert>
#include <sstream>

namespace flexcl::ir {

const char* addressSpaceName(AddressSpace as) {
  switch (as) {
    case AddressSpace::Private: return "private";
    case AddressSpace::Local: return "local";
    case AddressSpace::Global: return "global";
    case AddressSpace::Constant: return "constant";
  }
  return "?";
}

int Type::fieldIndex(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::uint64_t Type::fieldOffset(unsigned index) const {
  std::uint64_t offset = 0;
  for (unsigned i = 0; i < index; ++i) offset += fields_[i].type->sizeInBytes();
  return offset;
}

std::uint64_t Type::sizeInBytes() const {
  switch (kind_) {
    case Kind::Void: return 0;
    case Kind::Bool: return 1;
    case Kind::Int:
    case Kind::Float: return bits_ / 8;
    case Kind::Pointer: return 8;
    case Kind::Vector:
    case Kind::Array: return element_->sizeInBytes() * count_;
    case Kind::Struct: {
      std::uint64_t size = 0;
      for (const Field& f : fields_) size += f.type->sizeInBytes();
      return size;
    }
  }
  return 0;
}

std::string Type::str() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::Void: os << "void"; break;
    case Kind::Bool: os << "bool"; break;
    case Kind::Int: os << (isSigned_ ? 'i' : 'u') << bits_; break;
    case Kind::Float: os << 'f' << bits_; break;
    case Kind::Pointer:
      os << element_->str() << ' ' << addressSpaceName(addressSpace_) << '*';
      break;
    case Kind::Vector: os << element_->str() << 'x' << count_; break;
    case Kind::Array: os << '[' << count_ << " x " << element_->str() << ']'; break;
    case Kind::Struct: os << "struct " << name_; break;
  }
  return os.str();
}

TypeContext::TypeContext() {
  Type* v = make();
  v->kind_ = Type::Kind::Void;
  void_ = v;
  Type* b = make();
  b->kind_ = Type::Kind::Bool;
  b->bits_ = 1;
  bool_ = b;
}

Type* TypeContext::make() {
  pool_.push_back(std::unique_ptr<Type>(new Type()));
  return pool_.back().get();
}

const Type* TypeContext::intType(unsigned bits, bool isSigned) {
  for (const auto& t : pool_) {
    if (t->kind_ == Type::Kind::Int && t->bits_ == bits && t->isSigned_ == isSigned)
      return t.get();
  }
  Type* t = make();
  t->kind_ = Type::Kind::Int;
  t->bits_ = bits;
  t->isSigned_ = isSigned;
  return t;
}

const Type* TypeContext::floatType(unsigned bits) {
  for (const auto& t : pool_) {
    if (t->kind_ == Type::Kind::Float && t->bits_ == bits) return t.get();
  }
  Type* t = make();
  t->kind_ = Type::Kind::Float;
  t->bits_ = bits;
  return t;
}

const Type* TypeContext::pointerType(const Type* pointee, AddressSpace as) {
  for (const auto& t : pool_) {
    if (t->kind_ == Type::Kind::Pointer && t->element_ == pointee &&
        t->addressSpace_ == as)
      return t.get();
  }
  Type* t = make();
  t->kind_ = Type::Kind::Pointer;
  t->element_ = pointee;
  t->addressSpace_ = as;
  return t;
}

const Type* TypeContext::vectorType(const Type* element, std::uint64_t lanes) {
  assert(element->isScalar() && "vector elements must be scalar");
  for (const auto& t : pool_) {
    if (t->kind_ == Type::Kind::Vector && t->element_ == element && t->count_ == lanes)
      return t.get();
  }
  Type* t = make();
  t->kind_ = Type::Kind::Vector;
  t->element_ = element;
  t->count_ = lanes;
  return t;
}

const Type* TypeContext::arrayType(const Type* element, std::uint64_t extent) {
  for (const auto& t : pool_) {
    if (t->kind_ == Type::Kind::Array && t->element_ == element && t->count_ == extent)
      return t.get();
  }
  Type* t = make();
  t->kind_ = Type::Kind::Array;
  t->element_ = element;
  t->count_ = extent;
  return t;
}

const Type* TypeContext::structType(const std::string& name,
                                    std::vector<Type::Field> fields) {
  if (const Type* existing = findStruct(name)) return existing;
  Type* t = make();
  t->kind_ = Type::Kind::Struct;
  t->name_ = name;
  t->fields_ = std::move(fields);
  return t;
}

const Type* TypeContext::findStruct(const std::string& name) const {
  for (const auto& t : pool_) {
    if (t->kind_ == Type::Kind::Struct && t->name_ == name) return t.get();
  }
  return nullptr;
}

}  // namespace flexcl::ir
