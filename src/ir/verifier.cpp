#include "ir/verifier.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace flexcl::ir {
namespace {

void collectRegionBlocks(const Region* region,
                         std::unordered_set<const BasicBlock*>& out) {
  if (!region) return;
  if (region->block) out.insert(region->block);
  if (region->condBlock) out.insert(region->condBlock);
  if (region->latchBlock) out.insert(region->latchBlock);
  for (const auto& child : region->children) collectRegionBlocks(child.get(), out);
}

/// Dense per-function CFG facts used by the dominance checks. Blocks are
/// indexed by their position in Function::blocks() (ids may be stale when the
/// caller has not renumbered yet).
struct CfgInfo {
  std::unordered_map<const BasicBlock*, unsigned> index;
  std::vector<std::vector<unsigned>> preds;
  std::vector<bool> reachable;
  // dom[b] = bitset of blocks dominating b (only meaningful when reachable).
  std::vector<std::vector<std::uint64_t>> dom;
  unsigned words = 0;

  [[nodiscard]] bool dominates(unsigned a, unsigned b) const {
    return (dom[b][a >> 6] >> (a & 63)) & 1;
  }
};

CfgInfo buildCfg(const Function& fn) {
  CfgInfo cfg;
  const auto& blocks = fn.blocks();
  const unsigned n = static_cast<unsigned>(blocks.size());
  for (unsigned i = 0; i < n; ++i) cfg.index[blocks[i].get()] = i;
  cfg.preds.resize(n);
  cfg.reachable.assign(n, false);

  auto successors = [&](unsigned i) {
    std::vector<unsigned> out;
    const Instruction* term = blocks[i]->terminator();
    if (!term) return out;
    for (BasicBlock* t : {term->target0, term->target1}) {
      auto it = t ? cfg.index.find(t) : cfg.index.end();
      if (it != cfg.index.end()) out.push_back(it->second);
    }
    return out;
  };

  if (n == 0) return cfg;
  std::vector<unsigned> worklist = {0};
  cfg.reachable[0] = true;
  while (!worklist.empty()) {
    unsigned b = worklist.back();
    worklist.pop_back();
    for (unsigned s : successors(b)) {
      cfg.preds[s].push_back(b);
      if (!cfg.reachable[s]) {
        cfg.reachable[s] = true;
        worklist.push_back(s);
      }
    }
  }

  // Iterative dominator sets over the reachable subgraph: dom(entry) =
  // {entry}; dom(b) = {b} ∪ ⋂ dom(preds). Block counts are small (tens), so
  // plain bitset iteration converges quickly.
  cfg.words = (n + 63) / 64;
  std::vector<std::uint64_t> all(cfg.words, ~std::uint64_t{0});
  cfg.dom.assign(n, all);
  auto onlySelf = [&](unsigned b) {
    std::vector<std::uint64_t> s(cfg.words, 0);
    s[b >> 6] |= std::uint64_t{1} << (b & 63);
    return s;
  };
  cfg.dom[0] = onlySelf(0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (unsigned b = 1; b < n; ++b) {
      if (!cfg.reachable[b]) continue;
      std::vector<std::uint64_t> next(cfg.words, ~std::uint64_t{0});
      bool anyPred = false;
      for (unsigned p : cfg.preds[b]) {
        if (!cfg.reachable[p]) continue;
        anyPred = true;
        for (unsigned w = 0; w < cfg.words; ++w) next[w] &= cfg.dom[p][w];
      }
      if (!anyPred) next.assign(cfg.words, 0);
      next[b >> 6] |= std::uint64_t{1} << (b & 63);
      if (next != cfg.dom[b]) {
        cfg.dom[b] = std::move(next);
        changed = true;
      }
    }
  }
  return cfg;
}

class Checker {
 public:
  explicit Checker(const Function& fn) : fn_(fn) {}

  std::vector<VerifierIssue> run() {
    checkBlocks();
    checkDefBeforeUse();
    checkAllocaLists();
    checkRegionTree();
    return std::move(issues_);
  }

 private:
  void add(DiagSeverity sev, SourceLocation loc, std::string rule,
           std::string message) {
    issues_.push_back({sev, loc, std::move(rule), std::move(message)});
  }
  void error(SourceLocation loc, std::string rule, std::string message) {
    add(DiagSeverity::Error, loc, std::move(rule), std::move(message));
  }
  void warn(SourceLocation loc, std::string rule, std::string message) {
    add(DiagSeverity::Warning, loc, std::move(rule), std::move(message));
  }

  void checkBlocks() {
    std::unordered_set<const BasicBlock*> ownBlocks;
    for (const auto& bb : fn_.blocks()) ownBlocks.insert(bb.get());

    for (const auto& bb : fn_.blocks()) {
      const auto& insts = bb->instructions();
      if (insts.empty() || !insts.back()->isTerminator()) {
        error({}, "terminator",
              "block '" + bb->name() + "' does not end in a terminator");
      }
      for (std::size_t i = 0; i < insts.size(); ++i) {
        const Instruction* inst = insts[i];
        if (inst->isTerminator() && i + 1 != insts.size()) {
          error(inst->loc, "terminator",
                "block '" + bb->name() + "' has instructions after a terminator");
        }
        if (inst->opcode() == Opcode::Alloca) {
          error(inst->loc, "alloca-placement",
                "alloca must not appear inside a block (block '" + bb->name() +
                    "')");
        }
        checkInstruction(*inst, *bb, ownBlocks);
      }
    }
  }

  void checkInstruction(const Instruction& inst, const BasicBlock& bb,
                        const std::unordered_set<const BasicBlock*>& ownBlocks) {
    switch (inst.opcode()) {
      case Opcode::Br:
        if (!inst.target0 || !ownBlocks.count(inst.target0)) {
          error(inst.loc, "branch-target",
                "br in '" + bb.name() + "' targets a foreign block");
        }
        break;
      case Opcode::CondBr:
        if (!inst.target0 || !inst.target1 || !ownBlocks.count(inst.target0) ||
            !ownBlocks.count(inst.target1)) {
          error(inst.loc, "branch-target",
                "condbr in '" + bb.name() + "' targets a foreign block");
        }
        if (inst.operands().size() != 1) {
          error(inst.loc, "operand-shape",
                "condbr must have exactly one condition operand");
        }
        break;
      case Opcode::Load:
        if (inst.operands().size() != 1 || !inst.operand(0)->type() ||
            !inst.operand(0)->type()->isPointer()) {
          error(inst.loc, "operand-shape",
                "load in '" + bb.name() + "' needs a pointer operand");
        } else if (inst.type() &&
                   inst.operand(0)->type()->element() != inst.type()) {
          warn(inst.loc, "type-consistency",
               "load in '" + bb.name() + "' reads " + inst.type()->str() +
                   " through a pointer to " +
                   inst.operand(0)->type()->element()->str());
        }
        if (!inst.type()) {
          error(inst.loc, "operand-shape", "load must produce a typed value");
        }
        break;
      case Opcode::Store:
        if (inst.operands().size() != 2 || !inst.operand(1)->type() ||
            !inst.operand(1)->type()->isPointer()) {
          error(inst.loc, "operand-shape",
                "store in '" + bb.name() + "' needs (value, pointer) operands");
        } else if (inst.operand(0)->type() &&
                   inst.operand(1)->type()->element() != inst.operand(0)->type()) {
          warn(inst.loc, "type-consistency",
               "store in '" + bb.name() + "' writes " +
                   inst.operand(0)->type()->str() + " through a pointer to " +
                   inst.operand(1)->type()->element()->str());
        }
        break;
      case Opcode::Select:
        if (inst.operands().size() != 3) {
          error(inst.loc, "operand-shape", "select needs three operands");
        } else if (inst.type() && (inst.operand(1)->type() != inst.type() ||
                                   inst.operand(2)->type() != inst.type())) {
          warn(inst.loc, "type-consistency",
               "select in '" + bb.name() + "' mixes arm types");
        }
        break;
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem:
      case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
      case Opcode::FDiv: case Opcode::FRem:
      case Opcode::And: case Opcode::Or: case Opcode::Xor:
        if (inst.operands().size() == 2 && inst.type() &&
            (inst.operand(0)->type() != inst.type() ||
             inst.operand(1)->type() != inst.type())) {
          warn(inst.loc, "type-consistency",
               std::string("'") + opcodeName(inst.opcode()) + "' in '" +
                   bb.name() + "' mixes operand and result types");
        }
        if (!inst.type()) {
          error(inst.loc, "operand-shape",
                std::string("instruction '") + opcodeName(inst.opcode()) +
                    "' missing a result type");
        }
        break;
      case Opcode::Shl: case Opcode::Shr:
        // Shift amounts may legitimately be narrower than the shifted value.
        if (inst.operands().size() == 2 && inst.type() &&
            inst.operand(0)->type() != inst.type()) {
          warn(inst.loc, "type-consistency",
               std::string("'") + opcodeName(inst.opcode()) + "' in '" +
                   bb.name() + "' mixes operand and result types");
        }
        if (!inst.type()) {
          error(inst.loc, "operand-shape",
                std::string("instruction '") + opcodeName(inst.opcode()) +
                    "' missing a result type");
        }
        break;
      case Opcode::ICmp: case Opcode::FCmp:
        if (inst.operands().size() == 2 &&
            inst.operand(0)->type() != inst.operand(1)->type()) {
          warn(inst.loc, "type-consistency",
               std::string("'") + opcodeName(inst.opcode()) + "' in '" +
                   bb.name() + "' compares values of different types (" +
                   inst.operand(0)->type()->str() + " vs " +
                   inst.operand(1)->type()->str() + ")");
        }
        break;
      case Opcode::Barrier:
      case Opcode::Ret:
        break;
      default:
        if (!inst.isTerminator() && !inst.type()) {
          error(inst.loc, "operand-shape",
                std::string("instruction '") + opcodeName(inst.opcode()) +
                    "' missing a result type");
        }
        break;
    }
  }

  void checkDefBeforeUse() {
    CfgInfo cfg = buildCfg(fn_);
    // Position of each in-block instruction: (block index, index in block).
    std::unordered_map<const Instruction*, std::pair<unsigned, unsigned>> pos;
    const auto& blocks = fn_.blocks();
    for (unsigned b = 0; b < blocks.size(); ++b) {
      const auto& insts = blocks[b]->instructions();
      for (unsigned i = 0; i < insts.size(); ++i) pos[insts[i]] = {b, i};
    }

    for (unsigned b = 0; b < blocks.size(); ++b) {
      if (b >= cfg.reachable.size() || !cfg.reachable[b]) continue;
      const auto& insts = blocks[b]->instructions();
      for (unsigned i = 0; i < insts.size(); ++i) {
        const Instruction* inst = insts[i];
        for (const Value* opnd : inst->operands()) {
          if (opnd->valueKind() != Value::Kind::Instruction) continue;
          const auto* def = static_cast<const Instruction*>(opnd);
          if (def->opcode() == Opcode::Alloca) continue;  // frame storage
          auto it = pos.find(def);
          if (it == pos.end()) {
            error(inst->loc, "def-before-use",
                  std::string("'") + opcodeName(inst->opcode()) + "' in '" +
                      blocks[b]->name() +
                      "' uses an instruction that is not in any block");
            continue;
          }
          const auto [defBlock, defIdx] = it->second;
          const bool ok = defBlock == b
                              ? defIdx < i
                              : (cfg.reachable[defBlock] &&
                                 cfg.dominates(defBlock, b));
          if (!ok) {
            error(inst->loc, "def-before-use",
                  std::string("'") + opcodeName(inst->opcode()) + "' in '" +
                      blocks[b]->name() + "' uses '" +
                      opcodeName(def->opcode()) + "' from '" +
                      blocks[defBlock]->name() +
                      "' which does not dominate the use");
          }
        }
      }
    }
  }

  void checkAllocaLists() {
    for (const Instruction* a : fn_.privateAllocas) {
      if (a->opcode() != Opcode::Alloca || !a->allocaType) {
        error(a->loc, "alloca-placement", "bad private alloca entry");
      }
    }
    for (const Instruction* a : fn_.localAllocas) {
      if (a->opcode() != Opcode::Alloca || a->allocaSpace != AddressSpace::Local) {
        error(a->loc, "alloca-placement", "bad local alloca entry");
      }
    }
  }

  void checkRegionTree() {
    if (!fn_.rootRegion()) {
      if (fn_.isKernel) {
        error({}, "region-tree", "kernel function has no region tree");
      }
      return;
    }
    std::unordered_set<const BasicBlock*> ownBlocks;
    for (const auto& bb : fn_.blocks()) ownBlocks.insert(bb.get());
    std::unordered_set<const BasicBlock*> regionBlocks;
    collectRegionBlocks(fn_.rootRegion(), regionBlocks);
    for (const BasicBlock* bb : regionBlocks) {
      if (!ownBlocks.count(bb)) {
        error({}, "region-tree", "region tree references a foreign block");
      }
    }
    std::unordered_set<int> loopIds;
    walkRegion(*fn_.rootRegion(), loopIds);
  }

  void walkRegion(const Region& region, std::unordered_set<int>& loopIds) {
    switch (region.kind) {
      case Region::Kind::Block:
        if (!region.block) {
          error(region.loc, "region-tree", "Block region without a block");
        }
        break;
      case Region::Kind::Loop:
        if (!region.condBlock) {
          error(region.loc, "region-tree", "Loop region without a cond block");
        }
        if (region.children.empty()) {
          error(region.loc, "region-tree", "Loop region without a body");
        }
        if (region.loopId < 0 || region.loopId >= fn_.loopCount) {
          error(region.loc, "region-tree",
                "loop id " + std::to_string(region.loopId) +
                    " outside [0, loopCount)");
        } else if (!loopIds.insert(region.loopId).second) {
          error(region.loc, "region-tree",
                "duplicate loop id " + std::to_string(region.loopId));
        }
        break;
      case Region::Kind::If:
        if (region.children.size() != 2) {
          error(region.loc, "region-tree",
                "If region needs exactly then + else children");
        }
        if (!region.condBlock) {
          error(region.loc, "region-tree", "If region without a cond block");
        }
        break;
      case Region::Kind::Seq:
        break;
    }
    for (const auto& child : region.children) walkRegion(*child, loopIds);
  }

  const Function& fn_;
  std::vector<VerifierIssue> issues_;
};

}  // namespace

std::vector<VerifierIssue> verifyFunctionIssues(const Function& fn) {
  return Checker(fn).run();
}

std::vector<std::string> verifyFunction(const Function& fn) {
  std::vector<std::string> problems;
  for (const VerifierIssue& issue : verifyFunctionIssues(fn)) {
    if (issue.severity == DiagSeverity::Error) problems.push_back(issue.message);
  }
  return problems;
}

void reportVerifierIssues(const Function& fn, DiagnosticEngine& diags) {
  for (const VerifierIssue& issue : verifyFunctionIssues(fn)) {
    diags.report(issue.severity, issue.loc,
                 "IR verifier [" + issue.rule + "]: " + fn.name() + ": " +
                     issue.message);
  }
}

}  // namespace flexcl::ir
