#include "ir/verifier.h"

#include <unordered_set>

namespace flexcl::ir {
namespace {

void collectRegionBlocks(const Region* region,
                         std::unordered_set<const BasicBlock*>& out) {
  if (!region) return;
  if (region->block) out.insert(region->block);
  if (region->condBlock) out.insert(region->condBlock);
  if (region->latchBlock) out.insert(region->latchBlock);
  for (const auto& child : region->children) collectRegionBlocks(child.get(), out);
}

}  // namespace

std::vector<std::string> verifyFunction(const Function& fn) {
  std::vector<std::string> problems;
  auto problem = [&](std::string msg) { problems.push_back(std::move(msg)); };

  std::unordered_set<const BasicBlock*> ownBlocks;
  for (const auto& bb : fn.blocks()) ownBlocks.insert(bb.get());

  for (const auto& bb : fn.blocks()) {
    const auto& insts = bb->instructions();
    if (insts.empty() || !insts.back()->isTerminator()) {
      problem("block '" + bb->name() + "' does not end in a terminator");
    }
    for (std::size_t i = 0; i < insts.size(); ++i) {
      const Instruction* inst = insts[i];
      if (inst->isTerminator() && i + 1 != insts.size()) {
        problem("block '" + bb->name() + "' has instructions after a terminator");
      }
      if (inst->opcode() == Opcode::Alloca) {
        problem("alloca must not appear inside a block (block '" + bb->name() + "')");
      }
      switch (inst->opcode()) {
        case Opcode::Br:
          if (!inst->target0 || !ownBlocks.count(inst->target0)) {
            problem("br in '" + bb->name() + "' targets a foreign block");
          }
          break;
        case Opcode::CondBr:
          if (!inst->target0 || !inst->target1 ||
              !ownBlocks.count(inst->target0) || !ownBlocks.count(inst->target1)) {
            problem("condbr in '" + bb->name() + "' targets a foreign block");
          }
          if (inst->operands().size() != 1) {
            problem("condbr must have exactly one condition operand");
          }
          break;
        case Opcode::Load:
          if (inst->operands().size() != 1 || !inst->operand(0)->type() ||
              !inst->operand(0)->type()->isPointer()) {
            problem("load in '" + bb->name() + "' needs a pointer operand");
          }
          if (!inst->type()) problem("load must produce a typed value");
          break;
        case Opcode::Store:
          if (inst->operands().size() != 2 || !inst->operand(1)->type() ||
              !inst->operand(1)->type()->isPointer()) {
            problem("store in '" + bb->name() + "' needs (value, pointer) operands");
          }
          break;
        case Opcode::Select:
          if (inst->operands().size() != 3) problem("select needs three operands");
          break;
        case Opcode::Barrier:
        case Opcode::Ret:
          break;
        default:
          if (!inst->isTerminator() && !inst->type()) {
            problem(std::string("instruction '") + opcodeName(inst->opcode()) +
                    "' missing a result type");
          }
          break;
      }
    }
  }

  for (const Instruction* a : fn.privateAllocas) {
    if (a->opcode() != Opcode::Alloca || !a->allocaType) {
      problem("bad private alloca entry");
    }
  }
  for (const Instruction* a : fn.localAllocas) {
    if (a->opcode() != Opcode::Alloca || a->allocaSpace != AddressSpace::Local) {
      problem("bad local alloca entry");
    }
  }

  if (fn.rootRegion()) {
    std::unordered_set<const BasicBlock*> regionBlocks;
    collectRegionBlocks(fn.rootRegion(), regionBlocks);
    for (const BasicBlock* bb : regionBlocks) {
      if (!ownBlocks.count(bb)) problem("region tree references a foreign block");
    }
  } else if (fn.isKernel) {
    problem("kernel function has no region tree");
  }
  return problems;
}

}  // namespace flexcl::ir
