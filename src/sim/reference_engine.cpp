#include "sim/reference_engine.h"

#include <algorithm>
#include <cmath>

namespace flexcl::sim {

ReferenceEngine::ReferenceEngine(const SimInput& input, dram::DramSim& dram,
                                 const CuHardware& hw, int numCus,
                                 int dispatchOverhead, double dispatchJitter,
                                 std::uint64_t seed)
    : input_(input),
      dram_(dram),
      hw_(hw),
      dispatchOverhead_(dispatchOverhead),
      dispatchJitter_(dispatchJitter),
      rng_(seed) {
  cus_.resize(static_cast<std::size_t>(std::max(1, numCus)));
  // Barrier mode streams the work-group's transfers through one memory
  // engine; pipeline mode runs one engine per PE lane.
  const int lanes = hw_.barrierMode ? 1 : std::max(1, hw_.nPe);
  for (Cu& cu : cus_) cu.lanes.resize(static_cast<std::size_t>(lanes));
  totalGroups_ = input_.range.groupCount();
}

void ReferenceEngine::dispatchNextGroup(int cuIdx, std::uint64_t readyTime) {
  Cu& cu = cus_[static_cast<std::size_t>(cuIdx)];
  makespan_ = std::max(makespan_, readyTime);
  if (nextGroup_ >= totalGroups_) {
    cu.active = false;
    return;
  }
  const std::uint64_t group = nextGroup_++;
  const std::uint64_t issue = std::max(dispatcherFree_, readyTime);
  dispatchStallCycles_ += issue - readyTime;
  const double factor = 1.0 + dispatchJitter_ * (rng_.nextDouble() - 0.5) * 2.0;
  const auto cost = static_cast<std::uint64_t>(
      std::llround(std::max(1.0, dispatchOverhead_ * factor)));
  dispatcherFree_ = issue + cost;
  const std::uint64_t start = issue + cost;

  cu.active = true;
  cu.currentGroup = group;
  cu.groupWis = workItemsOfGroup(input_.range, group);
  cu.nextLocalWi = 0;
  cu.outstandingWis = 0;
  cu.groupDone = start;
  cu.lastIssue = start;
  for (std::size_t l = 0; l < cu.lanes.size(); ++l) {
    cu.lanes[l] = Lane{};
    cu.lanes[l].nextIssue = start;
    events_.push(Event{start, cuIdx, static_cast<int>(l)});
  }
}

void ReferenceEngine::laneAcquireWorkItem(int cuIdx, int laneIdx,
                                          std::uint64_t now) {
  Cu& cu = cus_[static_cast<std::size_t>(cuIdx)];
  Lane& lane = cu.lanes[static_cast<std::size_t>(laneIdx)];
  if (cu.nextLocalWi >= cu.groupWis.size()) return;  // lane goes idle

  const std::uint64_t start = std::max(now, lane.nextIssue);
  cu.lastIssue = std::max(cu.lastIssue, start);
  lane.hasWorkItem = true;
  lane.workItem = cu.groupWis[cu.nextLocalWi++];
  lane.accessPos = 0;
  lane.memTime = start;
  lane.computeDone =
      start + static_cast<std::uint64_t>(std::llround(hw_.depthHw));
  // II pacing applies in pipeline mode; barrier mode streams chains
  // back-to-back through the single engine.
  lane.nextIssue =
      hw_.barrierMode
          ? start
          : start + static_cast<std::uint64_t>(std::llround(hw_.iiHw));
  ++cu.outstandingWis;
  events_.push(Event{start, cuIdx, laneIdx});
}

void ReferenceEngine::finishWorkItem(int cuIdx, int laneIdx,
                                     std::uint64_t wiDone) {
  Cu& cu = cus_[static_cast<std::size_t>(cuIdx)];
  Lane& lane = cu.lanes[static_cast<std::size_t>(laneIdx)];
  lane.hasWorkItem = false;
  cu.groupDone = std::max(cu.groupDone, wiDone);
  --cu.outstandingWis;

  if (cu.nextLocalWi < cu.groupWis.size()) {
    // Lane is ready for its next work-item once the II has elapsed and its
    // memory engine drained.
    const std::uint64_t ready = std::max(lane.nextIssue, lane.memTime);
    events_.push(Event{ready, cuIdx, laneIdx});
    return;
  }
  if (cu.outstandingWis == 0) {
    std::uint64_t done = cu.groupDone;
    if (hw_.barrierMode) {
      // Compute phase after the memory phase: the (pipelined) PE array
      // processes the work-items from on-chip data.
      const double n = static_cast<double>(cu.groupWis.size());
      const double nPe = std::max(1, hw_.nPe);
      const double compute =
          hw_.iiHw * std::ceil(std::max(0.0, n - nPe) / nPe) + hw_.depthHw;
      done += static_cast<std::uint64_t>(std::llround(compute));
    }
    makespan_ = std::max(makespan_, done);
    // With work-group pipelining the next group starts filling while this
    // one drains: the CU is ready at its last issue, not its last retire.
    const bool overlap = hw_.wgPipeline && !hw_.barrierMode;
    dispatchNextGroup(cuIdx, overlap ? cu.lastIssue : done);
  }
}

void ReferenceEngine::step(const Event& ev) {
  Cu& cu = cus_[static_cast<std::size_t>(ev.cu)];
  if (!cu.active) return;
  Lane& lane = cu.lanes[static_cast<std::size_t>(ev.lane)];

  if (!lane.hasWorkItem) {
    laneAcquireWorkItem(ev.cu, ev.lane, ev.time);
    return;
  }

  // Bind the work-item's chain by pointer — a ternary mixing an lvalue with
  // a prvalue vector used to deep-copy the whole chain per event here
  // (DESIGN.md §16 regression note).
  const bool hasChain = lane.workItem < input_.workItemCount();
  const dram::CoalescedAccess* chain =
      hasChain ? input_.chainBegin(lane.workItem) : nullptr;
  const std::size_t chainLen = hasChain ? input_.chainLength(lane.workItem) : 0;
  if (lane.accessPos < chainLen) {
    const dram::CoalescedAccess& a = chain[lane.accessPos++];
    lane.memTime = dram_.access(std::max(ev.time, lane.memTime),
                                dram::linearAddress(a.buffer, a.offset), a.isWrite);
    if (lane.accessPos < chainLen) {
      events_.push(Event{lane.memTime, ev.cu, ev.lane});
      return;
    }
  }
  // Chain complete (or empty): the work-item retires when both its memory
  // chain and its compute pipeline have drained.
  const std::uint64_t wiDone =
      hw_.barrierMode ? lane.memTime : std::max(lane.memTime, lane.computeDone);
  if (!hw_.barrierMode && lane.memTime > lane.computeDone) {
    memStallCycles_ += lane.memTime - lane.computeDone;
  }
  finishWorkItem(ev.cu, ev.lane, wiDone);
}

std::uint64_t ReferenceEngine::run() {
  for (std::size_t c = 0; c < cus_.size(); ++c) {
    dispatchNextGroup(static_cast<int>(c), 0);
  }
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    step(ev);
  }
  return makespan_;
}

}  // namespace flexcl::sim
