#include "sim/system_sim.h"

#include <algorithm>
#include <cmath>

#include "cdfg/cdfg.h"
#include "model/kernel_model.h"
#include "model/pe_model.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/cu_pipeline.h"
#include "sim/reference_engine.h"
#include "support/rng.h"

namespace flexcl::sim {

namespace {

/// Streams the interpreter's recorded events straight into coalescer runs
/// (global accesses) and the local trace (local accesses), so the raw trace
/// of the full NDRange never materializes. Run growth mirrors
/// dram::coalesce() exactly: runs are keyed (work-item, buffer, direction),
/// an opposite-direction access to the same buffer closes the open run, and
/// extension requires strictly consecutive byte offsets. Work-item ids never
/// recur across work-groups, so the open-run map is cleared at each group
/// boundary (groups execute sequentially) to stay small.
class CoalescingSink final : public interp::TraceSink {
 public:
  CoalescingSink(SimScratch& scratch, std::uint64_t workItemCount)
      : scratch_(scratch), workItemCount_(workItemCount) {
    scratch_.runs.clear();
    scratch_.openRuns.clear();
  }

  void onAccess(const interp::MemoryAccessEvent& ev) override {
    if (ev.space == ir::AddressSpace::Local) {
      localTrace_.push_back(ev);
      return;
    }
    if (ev.workItem >= workItemCount_) return;
    if (ev.group != currentGroup_) {
      scratch_.openRuns.clear();
      currentGroup_ = ev.group;
    }
    // A write closes the buffer's open read run and vice versa.
    scratch_.openRuns.erase(key(ev.workItem, ev.buffer, !ev.isWrite));

    const std::uint64_t k = key(ev.workItem, ev.buffer, ev.isWrite);
    const auto it = scratch_.openRuns.find(k);
    if (it != scratch_.openRuns.end() &&
        scratch_.runs[it->second].end == ev.offset) {
      scratch_.runs[it->second].end += ev.size;
      return;
    }
    detail::AccessRun run;
    run.buffer = ev.buffer;
    run.isWrite = ev.isWrite;
    run.workItem = ev.workItem;
    run.start = ev.offset;
    run.end = ev.offset + ev.size;
    scratch_.openRuns[k] = scratch_.runs.size();
    scratch_.runs.push_back(run);
  }

  [[nodiscard]] std::vector<interp::MemoryAccessEvent>& localTrace() {
    return localTrace_;
  }

 private:
  // Buffer indices are kernel-argument indices (small); work-item ids carry
  // the high bits.
  static std::uint64_t key(std::uint64_t workItem, std::int32_t buffer,
                           bool isWrite) {
    return (workItem << 17) |
           ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(buffer)) &
             0xffffull)
            << 1) |
           (isWrite ? 1ull : 0ull);
  }

  SimScratch& scratch_;
  std::uint64_t workItemCount_;
  std::uint32_t currentGroup_ = 0;
  std::vector<interp::MemoryAccessEvent> localTrace_;
};

/// Expands the recorded runs into the canonical CSR layout: unit-sized
/// accesses grouped by work-item, program order within a work-item. Runs are
/// visited in creation order, so the stable scatter keeps each work-item's
/// run order identical to coalescing its isolated event stream.
void buildCsr(SimInput& input, SimScratch& scratch, std::uint32_t unitBytes) {
  const std::uint64_t n = input.range.globalCount();
  scratch.unitCursor.assign(n + 1, 0);
  for (const detail::AccessRun& run : scratch.runs) {
    const auto bytes = static_cast<std::uint64_t>(run.end - run.start);
    scratch.unitCursor[run.workItem + 1] += (bytes + unitBytes - 1) / unitBytes;
  }
  input.accessOffsets.resize(n + 1);
  input.accessOffsets[0] = 0;
  for (std::uint64_t wi = 0; wi < n; ++wi) {
    input.accessOffsets[wi + 1] =
        input.accessOffsets[wi] + scratch.unitCursor[wi + 1];
  }
  input.accesses.resize(input.accessOffsets[n]);
  // unitCursor[wi] becomes the next free slot of work-item wi's chain.
  std::copy(input.accessOffsets.begin(), input.accessOffsets.end() - 1,
            scratch.unitCursor.begin());
  for (const detail::AccessRun& run : scratch.runs) {
    std::uint64_t& cursor = scratch.unitCursor[run.workItem];
    std::int64_t emitted = run.start;
    while (emitted < run.end) {
      dram::CoalescedAccess& a = input.accesses[cursor++];
      a.buffer = run.buffer;
      a.offset = emitted;
      a.bytes = static_cast<std::uint32_t>(
          std::min<std::int64_t>(unitBytes, run.end - emitted));
      a.isWrite = run.isWrite;
      a.workItem = run.workItem;
      emitted += a.bytes;
    }
  }
}

/// Refreshes the scratch-owned interpreter buffer images from the caller's
/// buffers, copying only images the previous run dirtied or whose source
/// changed (see SimScratch contract).
void syncBufferImages(SimScratch& scratch,
                      const std::vector<std::vector<std::uint8_t>>& buffers) {
  const std::size_t n = buffers.size();
  scratch.bufferImages.resize(n);
  scratch.imageSources.resize(n, nullptr);
  scratch.imageSizes.resize(n, 0);
  scratch.imageDirty.resize(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const bool reusable = scratch.imageSources[i] == buffers[i].data() &&
                          scratch.imageSizes[i] == buffers[i].size() &&
                          scratch.imageDirty[i] == 0;
    if (!reusable) scratch.bufferImages[i] = buffers[i];
  }
}

}  // namespace

SimInput prepareSimInput(const ir::Function& fn, const interp::NdRange& range,
                         const std::vector<interp::KernelArg>& args,
                         const std::vector<std::vector<std::uint8_t>>& buffers,
                         const SimInputOptions& options) {
  SimScratch scratch;
  return prepareSimInput(fn, range, args, buffers, options, scratch);
}

SimInput prepareSimInput(const ir::Function& fn, const interp::NdRange& range,
                         const std::vector<interp::KernelArg>& args,
                         const std::vector<std::vector<std::uint8_t>>& buffers,
                         const SimInputOptions& options, SimScratch& scratch) {
  SimInput input;
  input.fn = &fn;
  input.range = range;

  syncBufferImages(scratch, buffers);
  CoalescingSink sink(scratch, range.globalCount());
  interp::InterpOptions opts;
  opts.captureGlobalTrace = true;
  opts.captureLocalTrace = true;
  opts.traceSink = &sink;
  opts.raceCheck = options.conflictTracking;
  interp::InterpResult result =
      runKernel(fn, range, args, scratch.bufferImages, opts);
  // Record image provenance for the next call sharing this scratch; a
  // buffer stays reusable iff this run left it untouched.
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    scratch.imageSources[i] = buffers[i].data();
    scratch.imageSizes[i] = buffers[i].size();
    scratch.imageDirty[i] =
        i < result.buffersWritten.size() ? result.buffersWritten[i] : 1;
  }
  if (!result.ok) {
    input.error = result.error;
    return input;
  }
  input.raceChecked = options.conflictTracking;
  input.raceConflicts = result.raceCount;
  if (obs::enabled()) {
    obs::add(options.conflictTracking ? "sim.race_check.run"
                                      : "sim.race_check.elided");
    obs::add("sim.race_check.conflicts", result.raceCount);
  }

  dram::DramConfig dramCfg;  // coalescing unit is a platform constant
  buildCsr(input, scratch, dramCfg.accessUnitBytes);

  for (const auto& bb : fn.blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::Barrier) input.hasBarriers = true;
    }
  }

  // Full-range profile used for the hardware-side analysis (trip counts and
  // inter-work-item dependences from the complete execution).
  input.profile.ok = true;
  input.profile.range = range;
  for (const interp::LoopStats& stats : result.loops) {
    input.profile.loopTripCounts.push_back(stats.avgTripCount());
  }
  input.profile.localTrace = std::move(sink.localTrace());
  input.profile.profiledGroups = result.executedGroups;
  input.profile.profiledWorkItems = result.executedWorkItems;

  input.ok = true;
  return input;
}

SimResult simulate(const SimInput& input, const model::Device& device,
                   const model::DesignPoint& design, const SimOptions& options) {
  obs::Span span("sim", [&] { return design.str(); });
  SimResult result;
  if (!input.ok) {
    result.error = input.error.empty() ? "sim input not prepared" : input.error;
    return result;
  }
  for (int d = 0; d < 3; ++d) {
    const std::uint64_t wg = input.range.local[static_cast<std::size_t>(d)];
    if (wg == 0 || input.range.global[static_cast<std::size_t>(d)] % wg != 0) {
      result.error = "sim input range is not group-aligned";
      return result;
    }
  }

  // One concrete hardware realisation per kernel: the synthesis tool picks
  // an IP implementation the model cannot see (§4.2's error source #1), but
  // re-synthesising the same kernel at a different design point largely
  // reuses the same op implementations — so the realisation is seeded by the
  // kernel, not the design point. (Seeding per design would add a ±spread
  // noise floor to design *ranking* that real hardware does not have.)
  const std::uint64_t instanceSeed = stableHashCombine(
      options.seed, stableHash(input.fn->name().data(), input.fn->name().size()));
  model::Device hwDevice = device;
  hwDevice.opLatencies =
      device.opLatencies.perturbed(instanceSeed, options.latencySpread);

  // Hardware-side analysis and pipeline realisation.
  cdfg::AnalyzeOptions analyzeOptions;
  analyzeOptions.innerLoopPipeline = design.innerLoopPipeline;
  cdfg::KernelAnalysis analysis = cdfg::analyzeKernel(
      *input.fn, hwDevice.opLatencies, model::peBudget(hwDevice, design),
      &input.profile, analyzeOptions);
  const model::PeModel pe = model::buildPeModel(analysis, hwDevice, design);
  const int nPe = model::effectivePeParallelism(pe, hwDevice, design);
  const int maxCus = model::maxComputeUnits(analysis, pe, hwDevice, design);
  const int cus = std::max(1, std::min(design.numComputeUnits, maxCus));

  const bool barrierMode = input.hasBarriers ||
                           design.commMode == model::CommMode::Barrier;

  CuHardware hw;
  hw.iiHw = pe.iiComp;
  hw.depthHw = pe.depth;
  hw.nPe = nPe;
  hw.barrierMode = barrierMode;
  hw.wgPipeline = design.workGroupPipeline;

  dram::DramSim dram(hwDevice.dram);
  const std::uint64_t engineSeed = instanceSeed ^ 0xd15ca7c4ull;
  std::uint64_t makespan = 0;
  std::uint64_t events = 0, skipChain = 0, skipIssue = 0, heapPeak = 0;
  if (options.engine == EngineKind::Reference) {
    ReferenceEngine engine(input, dram, hw, cus,
                           hwDevice.workGroupDispatchOverhead,
                           options.dispatchJitter, engineSeed);
    makespan = engine.run();
    result.memStallCycles = engine.memStallCycles();
    result.dispatchStallCycles = engine.dispatchStallCycles();
  } else {
    SystemEngine engine(input, dram, hw, cus,
                        hwDevice.workGroupDispatchOverhead,
                        options.dispatchJitter, engineSeed);
    makespan = engine.run();
    result.memStallCycles = engine.memStallCycles();
    result.dispatchStallCycles = engine.dispatchStallCycles();
    events = engine.events();
    skipChain = engine.skipAheadChain();
    skipIssue = engine.skipAheadIssue();
    heapPeak = engine.heapPeak();
  }

  result.ok = true;
  result.cycles = static_cast<double>(makespan);
  result.milliseconds = hwDevice.cyclesToMs(result.cycles);
  result.iiHw = hw.iiHw;
  result.depthHw = hw.depthHw;
  result.effectivePes = nPe;
  result.effectiveCus = cus;
  result.dramAccesses = dram.totalAccesses();
  result.dramRowHits = dram.rowHits();
  result.workGroups = input.range.groupCount();
  result.dramRefreshStallCycles = dram.refreshStallCycles();
  result.dramBankWaitCycles = dram.bankWaitCycles();
  result.dramBusWaitCycles = dram.busWaitCycles();

  // Publish once per run — the inner loops stay counter-free so the
  // simulation is untouched by observability (DESIGN.md §9).
  if (obs::enabled()) {
    obs::add("sim.runs");
    obs::add("sim.work_groups", result.workGroups);
    obs::add("dram.access", result.dramAccesses);
    obs::add("dram.row_hit", result.dramRowHits);
    obs::add("dram.row_miss", result.dramAccesses - result.dramRowHits);
    obs::add("dram.refresh_stall_cycles", result.dramRefreshStallCycles);
    obs::add("dram.bank_wait_cycles", result.dramBankWaitCycles);
    obs::add("dram.bus_wait_cycles", result.dramBusWaitCycles);
    obs::add("sim.mem_stall_cycles", result.memStallCycles);
    obs::add("sim.dispatch_stall_cycles", result.dispatchStallCycles);
    if (options.engine == EngineKind::Fast) {
      obs::add("sim.events", events);
      obs::add("sim.skip_ahead.chain", skipChain);
      obs::add("sim.skip_ahead.issue", skipIssue);
      obs::setGauge("sim.heap_peak", static_cast<double>(heapPeak));
    }
  }
  return result;
}

}  // namespace flexcl::sim
