#include "sim/system_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "cdfg/cdfg.h"
#include "model/kernel_model.h"
#include "model/pe_model.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/cu_pipeline.h"
#include "support/rng.h"

namespace flexcl::sim {

SimInput prepareSimInput(const ir::Function& fn, const interp::NdRange& range,
                         const std::vector<interp::KernelArg>& args,
                         const std::vector<std::vector<std::uint8_t>>& buffers,
                         const SimInputOptions& options) {
  SimInput input;
  input.fn = &fn;
  input.range = range;

  std::vector<std::vector<std::uint8_t>> scratch = buffers;
  interp::InterpOptions opts;
  opts.captureGlobalTrace = true;
  opts.captureLocalTrace = true;
  opts.raceCheck = options.conflictTracking;
  interp::InterpResult result = runKernel(fn, range, args, scratch, opts);
  if (!result.ok) {
    input.error = result.error;
    return input;
  }
  input.raceChecked = options.conflictTracking;
  input.raceConflicts = result.raceCount;
  if (obs::enabled()) {
    obs::add(options.conflictTracking ? "sim.race_check.run"
                                      : "sim.race_check.elided");
    obs::add("sim.race_check.conflicts", result.raceCount);
  }

  // Split the global trace per work-item, preserving each item's order, then
  // coalesce each chain.
  std::vector<std::vector<interp::MemoryAccessEvent>> perWi(range.globalCount());
  std::vector<interp::MemoryAccessEvent> localTrace;
  for (const interp::MemoryAccessEvent& ev : result.trace) {
    if (ev.space == ir::AddressSpace::Local) {
      localTrace.push_back(ev);
      continue;
    }
    if (ev.workItem < perWi.size()) perWi[ev.workItem].push_back(ev);
  }
  input.workItemAccesses.resize(perWi.size());
  dram::DramConfig dramCfg;  // coalescing unit is a platform constant
  for (std::size_t wi = 0; wi < perWi.size(); ++wi) {
    input.workItemAccesses[wi] = dram::coalesce(perWi[wi], dramCfg);
  }

  for (const auto& bb : fn.blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::Barrier) input.hasBarriers = true;
    }
  }

  // Full-range profile used for the hardware-side analysis (trip counts and
  // inter-work-item dependences from the complete execution).
  input.profile.ok = true;
  input.profile.range = range;
  for (const interp::LoopStats& stats : result.loops) {
    input.profile.loopTripCounts.push_back(stats.avgTripCount());
  }
  input.profile.localTrace = std::move(localTrace);
  input.profile.profiledGroups = result.executedGroups;
  input.profile.profiledWorkItems = result.executedWorkItems;

  input.ok = true;
  return input;
}

SimResult simulate(const SimInput& input, const model::Device& device,
                   const model::DesignPoint& design, const SimOptions& options) {
  obs::Span span("sim", [&] { return design.str(); });
  SimResult result;
  if (!input.ok) {
    result.error = input.error.empty() ? "sim input not prepared" : input.error;
    return result;
  }
  for (int d = 0; d < 3; ++d) {
    const std::uint64_t wg = input.range.local[static_cast<std::size_t>(d)];
    if (wg == 0 || input.range.global[static_cast<std::size_t>(d)] % wg != 0) {
      result.error = "sim input range is not group-aligned";
      return result;
    }
  }

  // One concrete hardware realisation per kernel: the synthesis tool picks
  // an IP implementation the model cannot see (§4.2's error source #1), but
  // re-synthesising the same kernel at a different design point largely
  // reuses the same op implementations — so the realisation is seeded by the
  // kernel, not the design point. (Seeding per design would add a ±spread
  // noise floor to design *ranking* that real hardware does not have.)
  const std::uint64_t instanceSeed = stableHashCombine(
      options.seed, stableHash(input.fn->name().data(), input.fn->name().size()));
  model::Device hwDevice = device;
  hwDevice.opLatencies =
      device.opLatencies.perturbed(instanceSeed, options.latencySpread);

  // Hardware-side analysis and pipeline realisation.
  cdfg::AnalyzeOptions analyzeOptions;
  analyzeOptions.innerLoopPipeline = design.innerLoopPipeline;
  cdfg::KernelAnalysis analysis = cdfg::analyzeKernel(
      *input.fn, hwDevice.opLatencies, model::peBudget(hwDevice, design),
      &input.profile, analyzeOptions);
  const model::PeModel pe = model::buildPeModel(analysis, hwDevice, design);
  const int nPe = model::effectivePeParallelism(pe, hwDevice, design);
  const int maxCus = model::maxComputeUnits(analysis, pe, hwDevice, design);
  const int cus = std::max(1, std::min(design.numComputeUnits, maxCus));

  const bool barrierMode = input.hasBarriers ||
                           design.commMode == model::CommMode::Barrier;

  CuHardware hw;
  hw.iiHw = pe.iiComp;
  hw.depthHw = pe.depth;
  hw.nPe = nPe;
  hw.barrierMode = barrierMode;
  hw.wgPipeline = design.workGroupPipeline;

  dram::DramSim dram(hwDevice.dram);
  SystemEngine engine(input, dram, hw, cus, hwDevice.workGroupDispatchOverhead,
                      options.dispatchJitter, instanceSeed ^ 0xd15ca7c4ull);
  const std::uint64_t makespan = engine.run();

  result.ok = true;
  result.cycles = static_cast<double>(makespan);
  result.milliseconds = hwDevice.cyclesToMs(result.cycles);
  result.iiHw = hw.iiHw;
  result.depthHw = hw.depthHw;
  result.effectivePes = nPe;
  result.effectiveCus = cus;
  result.dramAccesses = dram.totalAccesses();
  result.dramRowHits = dram.rowHits();
  result.workGroups = input.range.groupCount();
  result.dramRefreshStallCycles = dram.refreshStallCycles();
  result.dramBankWaitCycles = dram.bankWaitCycles();
  result.dramBusWaitCycles = dram.busWaitCycles();
  result.memStallCycles = engine.memStallCycles();
  result.dispatchStallCycles = engine.dispatchStallCycles();

  // Publish once per run — the inner loops stay counter-free so the
  // simulation is untouched by observability (DESIGN.md §9).
  if (obs::enabled()) {
    obs::add("sim.runs");
    obs::add("sim.work_groups", result.workGroups);
    obs::add("dram.access", result.dramAccesses);
    obs::add("dram.row_hit", result.dramRowHits);
    obs::add("dram.row_miss", result.dramAccesses - result.dramRowHits);
    obs::add("dram.refresh_stall_cycles", result.dramRefreshStallCycles);
    obs::add("dram.bank_wait_cycles", result.dramBankWaitCycles);
    obs::add("dram.bus_wait_cycles", result.dramBusWaitCycles);
    obs::add("sim.mem_stall_cycles", result.memStallCycles);
    obs::add("sim.dispatch_stall_cycles", result.dispatchStallCycles);
  }
  return result;
}

}  // namespace flexcl::sim
