// System simulator — the "System Run" stand-in (see DESIGN.md §1).
//
// A cycle-approximate simulator of the OpenCL-on-FPGA execution that is
// *independent* of the analytical model's averaging assumptions:
//  - per-design IP latencies are one concrete perturbed realisation
//    (OpLatencyDb::perturbed), not the table averages;
//  - every global access goes through the command-level DRAM simulator, so
//    bank conflicts, row thrashing across concurrent CUs/PEs, bus contention
//    and refresh happen dynamically;
//  - work-groups flow through a serial round-robin dispatcher with jittered
//    per-dispatch overhead;
//  - each work-item replays its own profiled access chain, so data-dependent
//    work-items differ.
// The analytical model's error against this simulator therefore arises from
// the same mechanisms the paper names in §4.2.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dram/coalescer.h"
#include "interp/interpreter.h"
#include "interp/profiler.h"
#include "model/design_point.h"
#include "model/device.h"

namespace flexcl::sim {

/// Everything design-independent about one launch, computed once per
/// (kernel, work-group size) and reused across the design space. The
/// coalesced access chains live in one flat CSR layout (DESIGN.md §16):
/// work-item `wi` owns accesses[accessOffsets[wi] .. accessOffsets[wi+1]),
/// one contiguous array instead of a vector-of-vectors — built by streaming
/// the interpreter's trace through the coalescer without ever materializing
/// the raw event list.
struct SimInput {
  bool ok = false;
  std::string error;
  const ir::Function* fn = nullptr;
  interp::NdRange range;
  /// CSR chain boundaries: globalCount() + 1 entries, accessOffsets[0] == 0.
  std::vector<std::uint64_t> accessOffsets;
  /// All work-items' coalesced global accesses, contiguous, grouped by
  /// work-item in linear-global-id order, program order within a work-item.
  std::vector<dram::CoalescedAccess> accesses;
  /// Kernel has barriers (forces barrier communication mode).
  bool hasBarriers = false;
  /// Full-range profile (loop trips, local-memory trace) for the
  /// hardware-side analysis.
  interp::KernelProfile profile;
  /// Cross-work-item conflict tracking ran during the functional execution
  /// (SimInputOptions::conflictTracking) and what it observed.
  bool raceChecked = false;
  std::uint64_t raceConflicts = 0;

  [[nodiscard]] std::uint64_t workItemCount() const {
    return accessOffsets.empty() ? 0 : accessOffsets.size() - 1;
  }
  [[nodiscard]] const dram::CoalescedAccess* chainBegin(std::uint64_t wi) const {
    return accesses.data() + accessOffsets[wi];
  }
  [[nodiscard]] std::size_t chainLength(std::uint64_t wi) const {
    return static_cast<std::size_t>(accessOffsets[wi + 1] - accessOffsets[wi]);
  }
};

struct SimInputOptions {
  /// Track cross-work-item conflicts (the interpreter's dynamic race
  /// checker, DESIGN.md §15) while producing the functional trace. Callers
  /// turn this off when the static race verifier proved the kernel RaceFree:
  /// the shadow-state bookkeeping is pure detection, so the trace and every
  /// simulator result are bit-identical either way (asserted in
  /// tests/test_raceverify.cpp) — the win is the skipped per-byte shadow
  /// updates, reported via the sim.race_check.{run,elided} counters.
  bool conflictTracking = true;
};

namespace detail {
/// One maximal run of consecutive same-direction bytes on one buffer from
/// one work-item (the streaming coalescer's unit of growth; see
/// dram/coalescer.h for the run semantics it mirrors).
struct AccessRun {
  std::int32_t buffer = -1;
  bool isWrite = false;
  std::uint64_t workItem = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
};
}  // namespace detail

/// Caller-owned scratch for prepareSimInput (mirrors sched::
/// ListScheduleScratch): reusing one SimScratch across calls reuses the
/// interpreter's buffer images and the streaming coalescer's arenas instead
/// of reallocating per call. Buffer images are re-copied from the caller's
/// buffers only when the previous run wrote them (InterpResult::
/// buffersWritten) or the source buffer changed identity/size — callers
/// sharing a scratch must keep their buffer contents byte-stable between
/// calls (the Explorer's launch buffers are).
struct SimScratch {
  // Interpreter buffer images + the provenance that decides reuse.
  std::vector<std::vector<std::uint8_t>> bufferImages;
  std::vector<const std::uint8_t*> imageSources;
  std::vector<std::size_t> imageSizes;
  std::vector<std::uint8_t> imageDirty;
  // Streaming coalescer arenas.
  std::vector<detail::AccessRun> runs;
  std::unordered_map<std::uint64_t, std::size_t> openRuns;
  std::vector<std::uint64_t> unitCursor;
};

/// Runs the interpreter over the full NDRange once, streaming the global
/// trace straight into per-work-item coalesced CSR chains.
SimInput prepareSimInput(const ir::Function& fn, const interp::NdRange& range,
                         const std::vector<interp::KernelArg>& args,
                         const std::vector<std::vector<std::uint8_t>>& buffers,
                         const SimInputOptions& options = {});

/// Same, with caller-owned scratch reused across calls (see SimScratch).
SimInput prepareSimInput(const ir::Function& fn, const interp::NdRange& range,
                         const std::vector<interp::KernelArg>& args,
                         const std::vector<std::vector<std::uint8_t>>& buffers,
                         const SimInputOptions& options, SimScratch& scratch);

/// Which execution engine simulate() runs. Both process the identical
/// pinned (time, cu, lane) event order and are bit-identical on every
/// result field (gated over the whole suite in tests/test_simengine.cpp);
/// Reference is the straightforward per-event oracle kept for differential
/// testing and bench_sim_throughput.
enum class EngineKind {
  Fast,       ///< SoA state, d-ary heap, skip-ahead (DESIGN.md §16)
  Reference,  ///< per-event std::priority_queue oracle
};

struct SimOptions {
  std::uint64_t seed = 0x5eed;
  /// Relative spread of per-design IP latency realisations.
  double latencySpread = 0.12;
  /// Relative jitter on each work-group dispatch.
  double dispatchJitter = 0.2;
  EngineKind engine = EngineKind::Fast;
};

struct SimResult {
  bool ok = false;
  std::string error;
  double cycles = 0;
  double milliseconds = 0;
  // Hardware realisation diagnostics.
  double iiHw = 0;      ///< realised work-item II of the compute pipeline
  double depthHw = 0;   ///< realised pipeline depth
  int effectivePes = 1;
  int effectiveCus = 1;
  std::uint64_t dramAccesses = 0;
  std::uint64_t dramRowHits = 0;
  std::uint64_t workGroups = 0;
  // Stall attribution (DESIGN.md §9): where simulated time was lost.
  std::uint64_t dramRefreshStallCycles = 0;  ///< accesses blocked by refresh
  std::uint64_t dramBankWaitCycles = 0;      ///< accesses queued behind a bank
  std::uint64_t dramBusWaitCycles = 0;       ///< transfers queued for the bus
  std::uint64_t memStallCycles = 0;          ///< work-items retired late on memory
  std::uint64_t dispatchStallCycles = 0;     ///< CUs idle behind the dispatcher
};

/// Simulates `input` under `design` on `device`.
SimResult simulate(const SimInput& input, const model::Device& device,
                   const model::DesignPoint& design, const SimOptions& options = {});

}  // namespace flexcl::sim
