// System simulator — the "System Run" stand-in (see DESIGN.md §1).
//
// A cycle-approximate simulator of the OpenCL-on-FPGA execution that is
// *independent* of the analytical model's averaging assumptions:
//  - per-design IP latencies are one concrete perturbed realisation
//    (OpLatencyDb::perturbed), not the table averages;
//  - every global access goes through the command-level DRAM simulator, so
//    bank conflicts, row thrashing across concurrent CUs/PEs, bus contention
//    and refresh happen dynamically;
//  - work-groups flow through a serial round-robin dispatcher with jittered
//    per-dispatch overhead;
//  - each work-item replays its own profiled access chain, so data-dependent
//    work-items differ.
// The analytical model's error against this simulator therefore arises from
// the same mechanisms the paper names in §4.2.
#pragma once

#include <string>
#include <vector>

#include "dram/coalescer.h"
#include "interp/interpreter.h"
#include "interp/profiler.h"
#include "model/design_point.h"
#include "model/device.h"

namespace flexcl::sim {

/// Everything design-independent about one launch, computed once per
/// (kernel, work-group size) and reused across the design space: the full
/// functional execution trace, split per work-item and coalesced.
struct SimInput {
  bool ok = false;
  std::string error;
  const ir::Function* fn = nullptr;
  interp::NdRange range;
  /// Coalesced global accesses of each work-item (by linear global id).
  std::vector<std::vector<dram::CoalescedAccess>> workItemAccesses;
  /// Kernel has barriers (forces barrier communication mode).
  bool hasBarriers = false;
  /// Full-range profile (loop trips, local-memory trace) for the
  /// hardware-side analysis.
  interp::KernelProfile profile;
  /// Cross-work-item conflict tracking ran during the functional execution
  /// (SimInputOptions::conflictTracking) and what it observed.
  bool raceChecked = false;
  std::uint64_t raceConflicts = 0;
};

struct SimInputOptions {
  /// Track cross-work-item conflicts (the interpreter's dynamic race
  /// checker, DESIGN.md §15) while producing the functional trace. Callers
  /// turn this off when the static race verifier proved the kernel RaceFree:
  /// the shadow-state bookkeeping is pure detection, so the trace and every
  /// simulator result are bit-identical either way (asserted in
  /// tests/test_raceverify.cpp) — the win is the skipped per-byte shadow
  /// updates, reported via the sim.race_check.{run,elided} counters.
  bool conflictTracking = true;
};

/// Runs the interpreter over the full NDRange once and prepares per-work-item
/// access chains.
SimInput prepareSimInput(const ir::Function& fn, const interp::NdRange& range,
                         const std::vector<interp::KernelArg>& args,
                         const std::vector<std::vector<std::uint8_t>>& buffers,
                         const SimInputOptions& options = {});

struct SimOptions {
  std::uint64_t seed = 0x5eed;
  /// Relative spread of per-design IP latency realisations.
  double latencySpread = 0.12;
  /// Relative jitter on each work-group dispatch.
  double dispatchJitter = 0.2;
};

struct SimResult {
  bool ok = false;
  std::string error;
  double cycles = 0;
  double milliseconds = 0;
  // Hardware realisation diagnostics.
  double iiHw = 0;      ///< realised work-item II of the compute pipeline
  double depthHw = 0;   ///< realised pipeline depth
  int effectivePes = 1;
  int effectiveCus = 1;
  std::uint64_t dramAccesses = 0;
  std::uint64_t dramRowHits = 0;
  std::uint64_t workGroups = 0;
  // Stall attribution (DESIGN.md §9): where simulated time was lost.
  std::uint64_t dramRefreshStallCycles = 0;  ///< accesses blocked by refresh
  std::uint64_t dramBankWaitCycles = 0;      ///< accesses queued behind a bank
  std::uint64_t dramBusWaitCycles = 0;       ///< transfers queued for the bus
  std::uint64_t memStallCycles = 0;          ///< work-items retired late on memory
  std::uint64_t dispatchStallCycles = 0;     ///< CUs idle behind the dispatcher
};

/// Simulates `input` under `design` on `device`.
SimResult simulate(const SimInput& input, const model::Device& device,
                   const model::DesignPoint& design, const SimOptions& options = {});

}  // namespace flexcl::sim
