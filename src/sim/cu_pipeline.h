// Event-driven execution engine of the system simulator (EngineKind::Fast).
//
// All compute units and their PE lanes advance through a single time-ordered
// event queue, so their memory accesses reach the DRAM simulator interleaved
// as they would in hardware — concurrent work-groups genuinely contend for
// banks and the data bus instead of being replayed one after another.
//
// This is the throughput-tuned engine (DESIGN.md §16). Versus the
// per-event ReferenceEngine it keeps lane/CU state in struct-of-arrays,
// replaces std::priority_queue with a 4-ary min-heap keyed by the pinned
// (time, cu, lane) order, derives each group's work-item ids arithmetically
// instead of materializing a per-group vector, and skips ahead: whenever a
// lane's next event would be the heap minimum anyway, the engine processes
// it inline — barrier-mode and sole-earliest lanes drain whole coalesced
// chains (dram::DramSim::accessChain) without per-access heap churn. Every
// skip preserves the pinned event order, so results are bit-identical to
// the reference engine (gated suite-wide in tests/test_simengine.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "dram/dram_sim.h"
#include "sim/system_sim.h"
#include "support/rng.h"

namespace flexcl::sim {

struct CuHardware {
  double iiHw = 1;     ///< realised work-item initiation interval (compute)
  double depthHw = 0;  ///< realised pipeline depth
  int nPe = 1;
  bool barrierMode = false;
  /// Work-group pipelining: the CU accepts the next group once the current
  /// one's work-items have all issued (drain overlaps the next fill).
  bool wgPipeline = false;
};

class SystemEngine {
 public:
  SystemEngine(const SimInput& input, dram::DramSim& dram, const CuHardware& hw,
               int numCus, int dispatchOverhead, double dispatchJitter,
               std::uint64_t seed);

  /// Runs every work-group to completion; returns the makespan in cycles.
  std::uint64_t run();

  // --- statistics ------------------------------------------------------------
  // Plain members, published once per run by the system simulator.
  /// Cycles retiring work-items spent waiting on memory beyond their compute
  /// pipeline drain (pipeline mode only; barrier mode serialises the phases).
  [[nodiscard]] std::uint64_t memStallCycles() const { return memStallCycles_; }
  /// Cycles CUs sat ready while the serial dispatcher was busy elsewhere.
  [[nodiscard]] std::uint64_t dispatchStallCycles() const {
    return dispatchStallCycles_;
  }
  /// Lane micro-steps processed (heap pops + inline continuations).
  [[nodiscard]] std::uint64_t events() const { return events_; }
  /// Chain accesses issued without their own heap event (sim.skip_ahead.chain).
  [[nodiscard]] std::uint64_t skipAheadChain() const { return skipAheadChain_; }
  /// Acquire/retire continuations processed inline (sim.skip_ahead.issue).
  [[nodiscard]] std::uint64_t skipAheadIssue() const { return skipAheadIssue_; }
  /// Peak event-heap size over the run (sim.heap_peak).
  [[nodiscard]] std::uint64_t heapPeak() const { return heapPeak_; }

 private:
  /// Heap entry. slot = cu * lanesPerCu + lane, so comparing (time, slot)
  /// is exactly the pinned (time, cu, lane) order.
  struct Event {
    std::uint64_t time = 0;
    std::uint32_t slot = 0;
  };

  static bool keyLess(std::uint64_t ta, std::uint32_t sa, std::uint64_t tb,
                      std::uint32_t sb) {
    return ta < tb || (ta == tb && sa < sb);
  }
  void heapPush(std::uint64_t time, std::uint32_t slot);
  Event heapPop();
  /// True iff processing (time, slot) now is the heap minimum anyway: the
  /// heap is empty, the key beats the top, or it duplicates the top (equal
  /// keys name the same lane, so the two orders are interchangeable).
  [[nodiscard]] bool canRunInline(std::uint64_t time, std::uint32_t slot) const {
    return heap_.empty() ||
           !keyLess(heap_[0].time, heap_[0].slot, time, slot);
  }

  void dispatchNextGroup(std::uint32_t cuIdx, std::uint64_t readyTime);
  /// Advances one lane from the event at `now`, continuing inline while the
  /// lane's follow-up would be the next event popped anyway.
  void runLane(std::uint32_t slot, std::uint64_t now);
  /// Linear global id base of group `group` (work-item l of the group is
  /// base + localOffsets_[l]).
  [[nodiscard]] std::uint64_t groupBase(std::uint64_t group) const;

  const SimInput& input_;
  dram::DramSim& dram_;
  CuHardware hw_;
  int dispatchOverhead_;
  double dispatchJitter_;
  Rng rng_;

  // Geometry, precomputed once.
  std::uint32_t lanesPerCu_ = 1;
  std::uint64_t localCount_ = 1;
  std::vector<std::uint64_t> localOffsets_;  ///< wi offset from group base
  std::uint64_t iiCycles_ = 0;               ///< llround(iiHw)
  std::uint64_t depthCycles_ = 0;            ///< llround(depthHw)
  std::uint64_t barrierComputeCycles_ = 0;   ///< group compute phase add-on

  // Lane state, struct-of-arrays indexed by slot.
  std::vector<std::uint64_t> laneNextIssue_;
  std::vector<std::uint64_t> laneWorkItem_;
  std::vector<std::uint64_t> laneChainPos_;  ///< absolute index into accesses
  std::vector<std::uint64_t> laneChainEnd_;
  std::vector<std::uint64_t> laneComputeDone_;
  std::vector<std::uint64_t> laneMemTime_;
  std::vector<std::uint8_t> laneHasWi_;

  // CU state, struct-of-arrays indexed by cu.
  std::vector<std::uint8_t> cuActive_;
  std::vector<std::uint64_t> cuGroupBase_;
  std::vector<std::uint64_t> cuNextLocalWi_;
  std::vector<std::uint64_t> cuOutstanding_;
  std::vector<std::uint64_t> cuGroupDone_;
  std::vector<std::uint64_t> cuLastIssue_;

  std::vector<Event> heap_;  ///< 4-ary min-heap on (time, slot)
  std::uint64_t nextGroup_ = 0;
  std::uint64_t totalGroups_ = 0;
  std::uint64_t dispatcherFree_ = 0;
  std::uint64_t makespan_ = 0;
  std::uint64_t memStallCycles_ = 0;
  std::uint64_t dispatchStallCycles_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t skipAheadChain_ = 0;
  std::uint64_t skipAheadIssue_ = 0;
  std::uint64_t heapPeak_ = 0;
};

/// Linear global ids of one work-group's work-items (local-id order,
/// matching the interpreter's numbering).
std::vector<std::uint64_t> workItemsOfGroup(const interp::NdRange& range,
                                            std::uint64_t groupLinear);

}  // namespace flexcl::sim
