// Event-driven execution engine of the system simulator.
//
// All compute units and their PE lanes advance through a single time-ordered
// event queue, so their memory accesses reach the DRAM simulator interleaved
// as they would in hardware — concurrent work-groups genuinely contend for
// banks and the data bus instead of being replayed one after another.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "dram/dram_sim.h"
#include "sim/system_sim.h"
#include "support/rng.h"

namespace flexcl::sim {

struct CuHardware {
  double iiHw = 1;     ///< realised work-item initiation interval (compute)
  double depthHw = 0;  ///< realised pipeline depth
  int nPe = 1;
  bool barrierMode = false;
  /// Work-group pipelining: the CU accepts the next group once the current
  /// one's work-items have all issued (drain overlaps the next fill).
  bool wgPipeline = false;
};

class SystemEngine {
 public:
  SystemEngine(const SimInput& input, dram::DramSim& dram, const CuHardware& hw,
               int numCus, int dispatchOverhead, double dispatchJitter,
               std::uint64_t seed);

  /// Runs every work-group to completion; returns the makespan in cycles.
  std::uint64_t run();

  // --- statistics ------------------------------------------------------------
  // Plain members, published once per run by the system simulator.
  /// Cycles retiring work-items spent waiting on memory beyond their compute
  /// pipeline drain (pipeline mode only; barrier mode serialises the phases).
  [[nodiscard]] std::uint64_t memStallCycles() const { return memStallCycles_; }
  /// Cycles CUs sat ready while the serial dispatcher was busy elsewhere.
  [[nodiscard]] std::uint64_t dispatchStallCycles() const {
    return dispatchStallCycles_;
  }

 private:
  struct Lane {
    std::uint64_t nextIssue = 0;   ///< earliest next work-item start (II pacing)
    // Current work-item state.
    bool hasWorkItem = false;
    std::uint64_t workItem = 0;
    std::size_t accessPos = 0;
    std::uint64_t computeDone = 0;
    std::uint64_t memTime = 0;
  };

  struct Cu {
    bool active = false;
    std::uint64_t currentGroup = 0;
    std::size_t nextLocalWi = 0;  ///< next unassigned work-item of the group
    std::size_t outstandingWis = 0;
    std::uint64_t groupDone = 0;   ///< max work-item completion so far
    std::uint64_t lastIssue = 0;   ///< latest work-item issue time
    std::vector<Lane> lanes;
    std::vector<std::uint64_t> groupWis;  ///< linear ids of the active group
  };

  struct Event {
    std::uint64_t time = 0;
    int cu = 0;
    int lane = 0;
    friend bool operator>(const Event& a, const Event& b) { return a.time > b.time; }
  };

  void dispatchNextGroup(int cu, std::uint64_t readyTime);
  /// Advances one lane at `ev.time`; may enqueue follow-up events.
  void step(const Event& ev);
  void laneAcquireWorkItem(int cuIdx, int laneIdx, std::uint64_t now);
  void finishWorkItem(int cuIdx, int laneIdx, std::uint64_t wiDone);

  const SimInput& input_;
  dram::DramSim& dram_;
  CuHardware hw_;
  int dispatchOverhead_;
  double dispatchJitter_;
  Rng rng_;

  std::vector<Cu> cus_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t nextGroup_ = 0;
  std::uint64_t totalGroups_ = 0;
  std::uint64_t dispatcherFree_ = 0;
  std::uint64_t makespan_ = 0;
  std::uint64_t memStallCycles_ = 0;
  std::uint64_t dispatchStallCycles_ = 0;
};

/// Linear global ids of one work-group's work-items (local-id order,
/// matching the interpreter's numbering).
std::vector<std::uint64_t> workItemsOfGroup(const interp::NdRange& range,
                                            std::uint64_t groupLinear);

}  // namespace flexcl::sim
