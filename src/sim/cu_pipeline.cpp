#include "sim/cu_pipeline.h"

#include <algorithm>
#include <cmath>

namespace flexcl::sim {

std::vector<std::uint64_t> workItemsOfGroup(const interp::NdRange& range,
                                            std::uint64_t groupLinear) {
  const auto groups = range.groupsPerDim();
  std::array<std::uint64_t, 3> groupId;
  groupId[0] = groupLinear % groups[0];
  groupId[1] = (groupLinear / groups[0]) % groups[1];
  groupId[2] = groupLinear / (groups[0] * groups[1]);

  std::vector<std::uint64_t> wis;
  wis.reserve(range.localCount());
  for (std::uint64_t l = 0; l < range.localCount(); ++l) {
    std::array<std::uint64_t, 3> localId;
    localId[0] = l % range.local[0];
    localId[1] = (l / range.local[0]) % range.local[1];
    localId[2] = l / (range.local[0] * range.local[1]);
    std::array<std::uint64_t, 3> globalId;
    for (int d = 0; d < 3; ++d) {
      globalId[static_cast<std::size_t>(d)] =
          groupId[static_cast<std::size_t>(d)] *
              range.local[static_cast<std::size_t>(d)] +
          localId[static_cast<std::size_t>(d)];
    }
    wis.push_back(globalId[0] + globalId[1] * range.global[0] +
                  globalId[2] * range.global[0] * range.global[1]);
  }
  return wis;
}

SystemEngine::SystemEngine(const SimInput& input, dram::DramSim& dram,
                           const CuHardware& hw, int numCus, int dispatchOverhead,
                           double dispatchJitter, std::uint64_t seed)
    : input_(input),
      dram_(dram),
      hw_(hw),
      dispatchOverhead_(dispatchOverhead),
      dispatchJitter_(dispatchJitter),
      rng_(seed) {
  const auto cus = static_cast<std::uint32_t>(std::max(1, numCus));
  // Barrier mode streams the work-group's transfers through one memory
  // engine; pipeline mode runs one engine per PE lane.
  lanesPerCu_ =
      hw_.barrierMode ? 1u : static_cast<std::uint32_t>(std::max(1, hw_.nPe));
  totalGroups_ = input_.range.groupCount();
  localCount_ = input_.range.localCount();

  const interp::NdRange& r = input_.range;
  localOffsets_.resize(localCount_);
  for (std::uint64_t l = 0; l < localCount_; ++l) {
    const std::uint64_t lx = l % r.local[0];
    const std::uint64_t ly = (l / r.local[0]) % r.local[1];
    const std::uint64_t lz = l / (r.local[0] * r.local[1]);
    localOffsets_[l] = lx + ly * r.global[0] + lz * r.global[0] * r.global[1];
  }

  iiCycles_ = static_cast<std::uint64_t>(std::llround(hw_.iiHw));
  depthCycles_ = static_cast<std::uint64_t>(std::llround(hw_.depthHw));
  // Barrier-mode per-group compute phase; the work-group size is constant
  // across groups, so the reference's per-group double math folds to one
  // constant.
  const double n = static_cast<double>(localCount_);
  const double nPe = std::max(1, hw_.nPe);
  barrierComputeCycles_ = static_cast<std::uint64_t>(std::llround(
      hw_.iiHw * std::ceil(std::max(0.0, n - nPe) / nPe) + hw_.depthHw));

  const std::size_t slots = static_cast<std::size_t>(cus) * lanesPerCu_;
  laneNextIssue_.assign(slots, 0);
  laneWorkItem_.assign(slots, 0);
  laneChainPos_.assign(slots, 0);
  laneChainEnd_.assign(slots, 0);
  laneComputeDone_.assign(slots, 0);
  laneMemTime_.assign(slots, 0);
  laneHasWi_.assign(slots, 0);
  cuActive_.assign(cus, 0);
  cuGroupBase_.assign(cus, 0);
  cuNextLocalWi_.assign(cus, 0);
  cuOutstanding_.assign(cus, 0);
  cuGroupDone_.assign(cus, 0);
  cuLastIssue_.assign(cus, 0);
  heap_.reserve(slots + 1);
}

void SystemEngine::heapPush(std::uint64_t time, std::uint32_t slot) {
  heap_.push_back(Event{time, slot});
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!keyLess(heap_[i].time, heap_[i].slot, heap_[parent].time,
                 heap_[parent].slot)) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
  heapPeak_ = std::max(heapPeak_, static_cast<std::uint64_t>(heap_.size()));
}

SystemEngine::Event SystemEngine::heapPop() {
  const Event top = heap_[0];
  const Event last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t i = 0;
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first = i * 4 + 1;
      if (first >= size) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + 4, size);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (keyLess(heap_[c].time, heap_[c].slot, heap_[best].time,
                    heap_[best].slot)) {
          best = c;
        }
      }
      if (!keyLess(heap_[best].time, heap_[best].slot, last.time, last.slot)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

std::uint64_t SystemEngine::groupBase(std::uint64_t group) const {
  const auto groups = input_.range.groupsPerDim();
  const std::uint64_t gx = group % groups[0];
  const std::uint64_t gy = (group / groups[0]) % groups[1];
  const std::uint64_t gz = group / (groups[0] * groups[1]);
  const interp::NdRange& r = input_.range;
  return gx * r.local[0] + gy * r.local[1] * r.global[0] +
         gz * r.local[2] * r.global[0] * r.global[1];
}

void SystemEngine::dispatchNextGroup(std::uint32_t cuIdx,
                                     std::uint64_t readyTime) {
  makespan_ = std::max(makespan_, readyTime);
  if (nextGroup_ >= totalGroups_) {
    cuActive_[cuIdx] = 0;
    return;
  }
  const std::uint64_t group = nextGroup_++;
  const std::uint64_t issue = std::max(dispatcherFree_, readyTime);
  dispatchStallCycles_ += issue - readyTime;
  const double factor = 1.0 + dispatchJitter_ * (rng_.nextDouble() - 0.5) * 2.0;
  const auto cost = static_cast<std::uint64_t>(
      std::llround(std::max(1.0, dispatchOverhead_ * factor)));
  dispatcherFree_ = issue + cost;
  const std::uint64_t start = issue + cost;

  cuActive_[cuIdx] = 1;
  cuGroupBase_[cuIdx] = groupBase(group);
  cuNextLocalWi_[cuIdx] = 0;
  cuOutstanding_[cuIdx] = 0;
  cuGroupDone_[cuIdx] = start;
  cuLastIssue_[cuIdx] = start;
  const std::uint32_t base = cuIdx * lanesPerCu_;
  for (std::uint32_t l = 0; l < lanesPerCu_; ++l) {
    const std::uint32_t slot = base + l;
    laneNextIssue_[slot] = start;
    laneWorkItem_[slot] = 0;
    laneChainPos_[slot] = 0;
    laneChainEnd_[slot] = 0;
    laneComputeDone_[slot] = 0;
    laneMemTime_[slot] = 0;
    laneHasWi_[slot] = 0;
    heapPush(start, slot);
  }
}

void SystemEngine::runLane(std::uint32_t slot, std::uint64_t now) {
  const std::uint32_t cuIdx = slot / lanesPerCu_;
  for (;;) {
    ++events_;
    if (cuActive_[cuIdx] == 0) return;

    if (laneHasWi_[slot] == 0) {
      // Acquire the group's next work-item, or go idle.
      if (cuNextLocalWi_[cuIdx] >= localCount_) return;
      const std::uint64_t start = std::max(now, laneNextIssue_[slot]);
      cuLastIssue_[cuIdx] = std::max(cuLastIssue_[cuIdx], start);
      laneHasWi_[slot] = 1;
      const std::uint64_t wi =
          cuGroupBase_[cuIdx] + localOffsets_[cuNextLocalWi_[cuIdx]++];
      laneWorkItem_[slot] = wi;
      if (wi < input_.workItemCount()) {
        laneChainPos_[slot] = input_.accessOffsets[wi];
        laneChainEnd_[slot] = input_.accessOffsets[wi + 1];
      } else {
        laneChainPos_[slot] = 0;
        laneChainEnd_[slot] = 0;
      }
      laneMemTime_[slot] = start;
      laneComputeDone_[slot] = start + depthCycles_;
      // II pacing applies in pipeline mode; barrier mode streams chains
      // back-to-back through the single engine.
      laneNextIssue_[slot] = hw_.barrierMode ? start : start + iiCycles_;
      ++cuOutstanding_[cuIdx];
      if (!canRunInline(start, slot)) {
        heapPush(start, slot);
        return;
      }
      now = start;
      ++skipAheadIssue_;
      continue;
    }

    if (laneChainPos_[slot] < laneChainEnd_[slot]) {
      if (heap_.empty()) {
        // Sole actor: nothing can interleave, so the whole remaining chain
        // drains through the DRAM simulator in one batch.
        const std::uint64_t count = laneChainEnd_[slot] - laneChainPos_[slot];
        laneMemTime_[slot] = dram_.accessChain(
            std::max(now, laneMemTime_[slot]),
            input_.accesses.data() + laneChainPos_[slot],
            static_cast<std::size_t>(count));
        laneChainPos_[slot] = laneChainEnd_[slot];
        events_ += count - 1;
        skipAheadChain_ += count - 1;
      } else {
        const dram::CoalescedAccess& a = input_.accesses[laneChainPos_[slot]++];
        const std::uint64_t memTime =
            dram_.access(std::max(now, laneMemTime_[slot]),
                         dram::linearAddress(a.buffer, a.offset), a.isWrite);
        laneMemTime_[slot] = memTime;
        if (laneChainPos_[slot] < laneChainEnd_[slot]) {
          if (!canRunInline(memTime, slot)) {
            heapPush(memTime, slot);
            return;
          }
          now = memTime;
          ++skipAheadChain_;
          continue;
        }
      }
    }

    // Chain complete (or empty): the work-item retires when both its memory
    // chain and its compute pipeline have drained.
    const std::uint64_t memTime = laneMemTime_[slot];
    const std::uint64_t wiDone =
        hw_.barrierMode ? memTime : std::max(memTime, laneComputeDone_[slot]);
    if (!hw_.barrierMode && memTime > laneComputeDone_[slot]) {
      memStallCycles_ += memTime - laneComputeDone_[slot];
    }
    laneHasWi_[slot] = 0;
    cuGroupDone_[cuIdx] = std::max(cuGroupDone_[cuIdx], wiDone);
    --cuOutstanding_[cuIdx];

    if (cuNextLocalWi_[cuIdx] < localCount_) {
      // Lane is ready for its next work-item once the II has elapsed and
      // its memory engine drained.
      const std::uint64_t ready = std::max(laneNextIssue_[slot], memTime);
      if (!canRunInline(ready, slot)) {
        heapPush(ready, slot);
        return;
      }
      now = ready;
      ++skipAheadIssue_;
      continue;
    }
    if (cuOutstanding_[cuIdx] == 0) {
      std::uint64_t done = cuGroupDone_[cuIdx];
      // Barrier mode: compute phase after the memory phase — the
      // (pipelined) PE array processes the work-items from on-chip data.
      if (hw_.barrierMode) done += barrierComputeCycles_;
      makespan_ = std::max(makespan_, done);
      // With work-group pipelining the next group starts filling while this
      // one drains: the CU is ready at its last issue, not its last retire.
      const bool overlap = hw_.wgPipeline && !hw_.barrierMode;
      dispatchNextGroup(cuIdx, overlap ? cuLastIssue_[cuIdx] : done);
    }
    return;
  }
}

std::uint64_t SystemEngine::run() {
  for (std::uint32_t c = 0; c < cuActive_.size(); ++c) {
    dispatchNextGroup(c, 0);
  }
  while (!heap_.empty()) {
    const Event ev = heapPop();
    runLane(ev.slot, ev.time);
  }
  return makespan_;
}

}  // namespace flexcl::sim
