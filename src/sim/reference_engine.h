// Reference execution engine of the system simulator (EngineKind::Reference).
//
// The straightforward per-event algorithm: one std::priority_queue event per
// lane advance, one DRAM command per popped event, a materialized work-item
// vector per dispatched group. Kept in tree as the differential-testing
// oracle for the skip-ahead SystemEngine (cu_pipeline.h) — both process the
// identical pinned (time, cu, lane) event order, and the 60-workload suite
// sweep in tests/test_simengine.cpp gates bit-identity on every SimResult
// field. bench_sim_throughput times the two against each other.
//
// Tie-breaking is pinned to the full (time, cu, lane) key. Tie order among
// equal-time events is observable (it decides lane -> work-item assignment
// and the interleaving of DRAM commands), and std::priority_queue's order
// for equal keys is implementation-defined — pinning makes the simulation a
// well-defined function of its inputs on every platform. Each lane has at
// most one *live* pending event, and duplicate keys (a stale wake racing a
// redispatch) are interchangeable, so the key order is total.
#pragma once

#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include "dram/dram_sim.h"
#include "sim/cu_pipeline.h"
#include "sim/system_sim.h"
#include "support/rng.h"

namespace flexcl::sim {

class ReferenceEngine {
 public:
  ReferenceEngine(const SimInput& input, dram::DramSim& dram,
                  const CuHardware& hw, int numCus, int dispatchOverhead,
                  double dispatchJitter, std::uint64_t seed);

  /// Runs every work-group to completion; returns the makespan in cycles.
  std::uint64_t run();

  // --- statistics ------------------------------------------------------------
  // Plain members, published once per run by the system simulator.
  /// Cycles retiring work-items spent waiting on memory beyond their compute
  /// pipeline drain (pipeline mode only; barrier mode serialises the phases).
  [[nodiscard]] std::uint64_t memStallCycles() const { return memStallCycles_; }
  /// Cycles CUs sat ready while the serial dispatcher was busy elsewhere.
  [[nodiscard]] std::uint64_t dispatchStallCycles() const {
    return dispatchStallCycles_;
  }

 private:
  struct Lane {
    std::uint64_t nextIssue = 0;   ///< earliest next work-item start (II pacing)
    // Current work-item state.
    bool hasWorkItem = false;
    std::uint64_t workItem = 0;
    std::size_t accessPos = 0;
    std::uint64_t computeDone = 0;
    std::uint64_t memTime = 0;
  };

  struct Cu {
    bool active = false;
    std::uint64_t currentGroup = 0;
    std::size_t nextLocalWi = 0;  ///< next unassigned work-item of the group
    std::size_t outstandingWis = 0;
    std::uint64_t groupDone = 0;   ///< max work-item completion so far
    std::uint64_t lastIssue = 0;   ///< latest work-item issue time
    std::vector<Lane> lanes;
    std::vector<std::uint64_t> groupWis;  ///< linear ids of the active group
  };

  struct Event {
    std::uint64_t time = 0;
    int cu = 0;
    int lane = 0;
    friend bool operator>(const Event& a, const Event& b) {
      return std::tie(a.time, a.cu, a.lane) > std::tie(b.time, b.cu, b.lane);
    }
  };

  void dispatchNextGroup(int cu, std::uint64_t readyTime);
  /// Advances one lane at `ev.time`; may enqueue follow-up events.
  void step(const Event& ev);
  void laneAcquireWorkItem(int cuIdx, int laneIdx, std::uint64_t now);
  void finishWorkItem(int cuIdx, int laneIdx, std::uint64_t wiDone);

  const SimInput& input_;
  dram::DramSim& dram_;
  CuHardware hw_;
  int dispatchOverhead_;
  double dispatchJitter_;
  Rng rng_;

  std::vector<Cu> cus_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::uint64_t nextGroup_ = 0;
  std::uint64_t totalGroups_ = 0;
  std::uint64_t dispatcherFree_ = 0;
  std::uint64_t makespan_ = 0;
  std::uint64_t memStallCycles_ = 0;
  std::uint64_t dispatchStallCycles_ = 0;
};

}  // namespace flexcl::sim
