// Lint pass interface and pass manager.
//
// Passes are stateless objects run in registration order over a shared
// PassContext: the kernel, its symbolic summary, the options, and (when the
// caller supplied launch info) the dynamic profile for cross-checking. Each
// pass appends findings and facts to the report; no pass depends on another
// pass's findings.
#pragma once

#include <memory>
#include <vector>

#include "analysis/report.h"
#include "analysis/symbolic.h"
#include "interp/profiler.h"

namespace flexcl::analysis {

struct LintOptions;

struct PassContext {
  const ir::Function& fn;
  const KernelSummary& summary;
  const LintOptions& options;
  /// Dynamic profile for the static-vs-profiled cross-check; null when the
  /// caller gave no launch info (static-only lint).
  const interp::KernelProfile* profile = nullptr;
  LintReport& report;
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void run(PassContext& ctx) = 0;
};

class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  void run(PassContext& ctx) const {
    for (const auto& pass : passes_) pass->run(ctx);
  }
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace flexcl::analysis
