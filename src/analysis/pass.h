// Lint pass interface and pass manager.
//
// Passes are stateless objects run in registration order over a shared
// PassContext: the kernel, its symbolic summary, the options, and (when the
// caller supplied launch info) the dynamic profile for cross-checking. Each
// pass appends findings and facts to the report; no pass depends on another
// pass's findings.
#pragma once

#include <memory>
#include <vector>

#include "analysis/dataflow/affine.h"
#include "analysis/report.h"
#include "analysis/symbolic.h"
#include "interp/profiler.h"

namespace flexcl::analysis {

namespace raceverify {
struct RaceVerdict;
}

struct LintOptions;

struct PassContext {
  const ir::Function& fn;
  const KernelSummary& summary;
  const LintOptions& options;
  /// Dynamic profile for the static-vs-profiled cross-check; null when the
  /// caller gave no launch info (static-only lint).
  const interp::KernelProfile* profile = nullptr;
  LintReport& report;
  /// Leaf ranges the dataflow passes evaluate under. Seeded from the launch
  /// range or reqd_work_group_size when available (rangesTrusted), otherwise
  /// from an assumed default geometry (distance detection only — never used
  /// for bounds claims or divergence discharge).
  const dataflow::LeafRanges* ranges = nullptr;
  bool rangesTrusted = false;
  /// Dataflow-resolved static trip counts per loopId (-1 unresolved); null
  /// when no launch range was supplied.
  const std::vector<std::int64_t>* staticTrips = nullptr;
  /// Race-verifier verdict (DESIGN.md §15); null when the lint ran without a
  /// trusted launch range.
  const raceverify::RaceVerdict* race = nullptr;
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void run(PassContext& ctx) = 0;
};

class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }
  void run(PassContext& ctx) const {
    for (const auto& pass : passes_) pass->run(ctx);
  }
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace flexcl::analysis
