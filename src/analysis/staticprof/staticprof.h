// Static profile synthesis (interpreter-free model evaluation).
//
// Replays the symbolic access/control tree of a kernel (analysis::
// KernelSummary) for the same work-groups the profiling interpreter would
// execute, evaluating per-work-item offsets, branch conditions and loop trip
// counts under the concrete NDRange geometry and launch-bound scalar
// arguments. When every decision resolves, the result is an
// interp::KernelProfile that is event-for-event identical to what
// interp::profileKernel produces — loop trip statistics, the globally
// interleaved memory trace (per barrier segment, work-items in linear local
// order, matching the interpreter's round-robin), and out-of-bounds counts —
// without ever running the interpreter.
//
// Every synthesis carries an exactness verdict. Only `Exact` profiles are
// consumed by the model (FlexCl::profileFor tier 1); `Approximate` and
// `Unsupported` kernels fall back to the interpreter, so the model's output
// is bit-identical whether the static tier is enabled or not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/symbolic.h"
#include "interp/profiler.h"

namespace flexcl::analysis::staticprof {

/// How faithful the synthesized profile is to an interpreter run.
enum class VerdictKind : std::uint8_t {
  Exact,        ///< event-identical to the interpreter; safe to consume
  Approximate,  ///< some decision was data-dependent or capped; fall back
  Unsupported,  ///< construct outside the synthesizer's model; fall back
};

const char* verdictName(VerdictKind kind);

struct Verdict {
  VerdictKind kind = VerdictKind::Unsupported;
  /// Why the synthesis is not exact (empty for Exact). The first blocking
  /// reason encountered; stable strings, usable as lint/explain surface.
  std::string reason;

  [[nodiscard]] bool exact() const { return kind == VerdictKind::Exact; }
  [[nodiscard]] const char* name() const { return verdictName(kind); }
};

struct SynthOptions {
  /// Work-groups to synthesize; must match the interpreter tier's
  /// ProfileOptions::groupsToProfile for event identity.
  std::uint64_t groupsToProfile = 2;
  bool captureLocalTrace = true;
  /// Safety caps: exceeding any of them yields Approximate (the interpreter
  /// tier then decides, under its own instruction budget).
  std::uint64_t maxEvents = 1ull << 22;
  std::int64_t maxTripPerLoop = 1ll << 20;
  std::uint64_t maxLoopIterations = 1ull << 22;
};

struct SynthResult {
  Verdict verdict;
  /// Valid only when verdict.kind == Exact (provenance == Synthesized).
  interp::KernelProfile profile;
};

/// Synthesizes the profile for (summary, range, args, buffers). Buffer
/// contents are never read — only their byte sizes (for the out-of-bounds
/// accounting the interpreter performs).
SynthResult synthesizeProfile(
    const KernelSummary& summary, const interp::NdRange& range,
    const std::vector<interp::KernelArg>& args,
    const std::vector<std::vector<std::uint8_t>>& buffers,
    const SynthOptions& options = {});

}  // namespace flexcl::analysis::staticprof
