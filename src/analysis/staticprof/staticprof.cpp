#include "analysis/staticprof/staticprof.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace flexcl::analysis::staticprof {

const char* verdictName(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::Exact: return "exact";
    case VerdictKind::Approximate: return "approximate";
    case VerdictKind::Unsupported: return "unsupported";
  }
  return "?";
}

namespace {

/// Per-loop facts the synthesizer needs beyond the access tree: whether the
/// loop's blocks are reachable at all (dead loops keep zero statistics, like
/// in the interpreter), and whether the body contains break/continue edges.
/// Those lower to plain branches that are invisible in the region tree, so
/// they are detected from the CFG: a reachable member block branching
/// unconditionally to the loop's exit block is a break; more than one
/// unconditional branch into the latch is a continue (the natural body end
/// funnels exactly one).
struct LoopCtl {
  bool reachable = false;
  bool breakish = false;
};

class LoopScan {
 public:
  explicit LoopScan(const ir::Function& fn) : fn_(fn) {
    ctl_.resize(static_cast<std::size_t>(std::max(0, fn.loopCount)));
    computeReachable();
    if (const ir::Region* root = fn.rootRegion()) scan(*root);
  }

  [[nodiscard]] const LoopCtl* of(int loopId) const {
    if (loopId < 0 || static_cast<std::size_t>(loopId) >= ctl_.size()) {
      return nullptr;
    }
    return &ctl_[static_cast<std::size_t>(loopId)];
  }

 private:
  void computeReachable() {
    const ir::BasicBlock* entry = fn_.entry();
    if (!entry) return;
    std::vector<const ir::BasicBlock*> worklist = {entry};
    reachable_.insert(entry);
    while (!worklist.empty()) {
      const ir::BasicBlock* bb = worklist.back();
      worklist.pop_back();
      const ir::Instruction* term = bb->terminator();
      if (!term) continue;
      for (ir::BasicBlock* t : {term->target0, term->target1}) {
        if (t && reachable_.insert(t).second) worklist.push_back(t);
      }
    }
  }

  void collectBlocks(const ir::Region& region,
                     std::vector<const ir::BasicBlock*>& out) const {
    if (region.block) out.push_back(region.block);
    if (region.condBlock) out.push_back(region.condBlock);
    if (region.latchBlock) out.push_back(region.latchBlock);
    for (const auto& child : region.children) collectBlocks(*child, out);
  }

  void scan(const ir::Region& region) {
    if (region.kind == ir::Region::Kind::Loop && region.loopId >= 0 &&
        static_cast<std::size_t>(region.loopId) < ctl_.size()) {
      LoopCtl& ctl = ctl_[static_cast<std::size_t>(region.loopId)];
      // The condition block is the loop's entry point for both while-style
      // loops (checked before the body) and do-loops (cond == latch, jumped
      // to from the body): a loop is live iff its cond block is reachable.
      // Loops with no cond block at all (for(;;)) are conservatively live.
      ctl.reachable = !region.condBlock || reachable_.count(region.condBlock) > 0;
      if (ctl.reachable) ctl.breakish = hasBreakish(region);
    }
    for (const auto& child : region.children) scan(*child);
  }

  bool hasBreakish(const ir::Region& region) const {
    const ir::BasicBlock* exit = nullptr;
    if (region.condBlock) {
      const ir::Instruction* term = region.condBlock->terminator();
      if (term && term->opcode() == ir::Opcode::CondBr) exit = term->target1;
    }
    std::vector<const ir::BasicBlock*> members;
    collectBlocks(region, members);
    int brToLatch = 0;
    for (const ir::BasicBlock* bb : members) {
      if (!reachable_.count(bb)) continue;
      const ir::Instruction* term = bb->terminator();
      if (!term || term->opcode() != ir::Opcode::Br) continue;
      if (exit && term->target0 == exit) return true;  // break
      if (term->target0 == region.latchBlock) ++brToLatch;
    }
    return brToLatch > 1;  // continue
  }

  const ir::Function& fn_;
  std::vector<LoopCtl> ctl_;
  std::unordered_set<const ir::BasicBlock*> reachable_;
};

/// Outcome of walking one subtree for one work-item.
enum class Flow : std::uint8_t {
  Continue,  ///< keep walking
  Returned,  ///< the work-item executed Ret (stop, no further loop exits)
  Fail,      ///< verdict degraded; synthesis aborts
};

struct LoopCounters {
  std::uint64_t body = 0;
  std::uint64_t entries = 0;
};

class Synthesizer {
 public:
  Synthesizer(const KernelSummary& summary, const interp::NdRange& range,
              const std::vector<interp::KernelArg>& args,
              const std::vector<std::vector<std::uint8_t>>& buffers,
              const SynthOptions& options)
      : summary_(summary),
        range_(range),
        args_(args),
        buffers_(buffers),
        options_(options) {}

  SynthResult run() {
    SynthResult result;
    if (!summary_.fn) {
      return failResult(VerdictKind::Unsupported, "no kernel summary");
    }
    for (int d = 0; d < 3; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      if (range_.local[sd] == 0 || range_.global[sd] % range_.local[sd] != 0) {
        return failResult(VerdictKind::Unsupported,
                          "global size is not a multiple of local size");
      }
    }

    const ir::Function& fn = *summary_.fn;
    scan_ = std::make_unique<LoopScan>(fn);
    loopCounters_.assign(static_cast<std::size_t>(std::max(0, fn.loopCount)),
                         LoopCounters{});

    const auto gpd = range_.groupsPerDim();
    for (int d = 0; d < 3; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      base_.globalSize[sd] = static_cast<std::int64_t>(range_.global[sd]);
      base_.localSize[sd] = static_cast<std::int64_t>(range_.local[sd]);
      base_.numGroups[sd] = static_cast<std::int64_t>(gpd[sd]);
    }
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const interp::KernelArg& a = args_[i];
      if (!a.isBuffer && a.scalar.kind == interp::RtValue::Kind::Int) {
        base_.scalarArgs[static_cast<int>(i)] = a.scalar.i;
      }
    }

    const std::uint64_t groupsToRun =
        std::min<std::uint64_t>(range_.groupCount(), options_.groupsToProfile);
    const std::uint64_t wgSize = range_.localCount();
    std::vector<interp::MemoryAccessEvent> trace;

    for (std::uint64_t g = 0; g < groupsToRun; ++g) {
      // Per-work-item event streams, partitioned at barriers. The
      // interpreter runs work-items round-robin, each until its next
      // barrier: the group's trace is segment-major, work-items in linear
      // local order within each segment.
      std::vector<std::vector<std::vector<interp::MemoryAccessEvent>>> streams;
      streams.reserve(wgSize);
      for (std::uint64_t l = 0; l < wgSize; ++l) {
        bind_ = base_;
        bind_.groupId[0] = static_cast<std::int64_t>(g % gpd[0]);
        bind_.groupId[1] = static_cast<std::int64_t>((g / gpd[0]) % gpd[1]);
        bind_.groupId[2] = static_cast<std::int64_t>(g / (gpd[0] * gpd[1]));
        bind_.localId[0] = static_cast<std::int64_t>(l % range_.local[0]);
        bind_.localId[1] =
            static_cast<std::int64_t>((l / range_.local[0]) % range_.local[1]);
        bind_.localId[2] =
            static_cast<std::int64_t>(l / (range_.local[0] * range_.local[1]));
        for (std::size_t d = 0; d < 3; ++d) {
          bind_.globalId[d] =
              bind_.groupId[d] * base_.localSize[d] + bind_.localId[d];
        }
        linearGlobal_ =
            static_cast<std::uint64_t>(bind_.globalId[0]) +
            static_cast<std::uint64_t>(bind_.globalId[1]) * range_.global[0] +
            static_cast<std::uint64_t>(bind_.globalId[2]) * range_.global[0] *
                range_.global[1];
        group_ = static_cast<std::uint32_t>(g);
        segments_.clear();
        segments_.emplace_back();
        const Flow flow = walkSpan(summary_.roots, 0, summary_.roots.size());
        if (flow == Flow::Fail) return takeFailure();
        streams.push_back(std::move(segments_));
      }
      // The interpreter requires every work-item of a group to reach the
      // same number of barriers, else it aborts with a divergence error —
      // fall back so the error text comes from the interpreter itself.
      for (const auto& s : streams) {
        if (s.size() != streams.front().size()) {
          return failResult(VerdictKind::Unsupported,
                            "work-items disagree on barrier count");
        }
      }
      const std::size_t segmentCount = streams.front().size();
      for (std::size_t seg = 0; seg < segmentCount; ++seg) {
        for (auto& s : streams) {
          auto& events = s[seg];
          trace.insert(trace.end(), events.begin(), events.end());
        }
      }
      ++profiledGroups_;
      profiledWorkItems_ += wgSize;
    }

    result.verdict.kind = VerdictKind::Exact;
    interp::KernelProfile& p = result.profile;
    p.ok = true;
    p.range = range_;
    p.provenance = interp::KernelProfile::Provenance::Synthesized;
    p.loopTripCounts.resize(loopCounters_.size(), 0.0);
    for (std::size_t i = 0; i < loopCounters_.size(); ++i) {
      const LoopCounters& c = loopCounters_[i];
      p.loopTripCounts[i] =
          c.entries == 0 ? 0.0
                         : static_cast<double>(c.body) /
                               static_cast<double>(c.entries);
    }
    for (interp::MemoryAccessEvent& ev : trace) {
      if (ev.space == ir::AddressSpace::Local) {
        p.localTrace.push_back(ev);
      } else {
        p.globalTrace.push_back(ev);
      }
    }
    p.profiledGroups = profiledGroups_;
    p.profiledWorkItems = profiledWorkItems_;
    p.oobAccesses = oobAccesses_;
    return result;
  }

 private:
  // --- failure plumbing ------------------------------------------------------
  Flow fail(VerdictKind kind, std::string reason) {
    if (failure_.reason.empty()) {
      failure_.kind = kind;
      failure_.reason = std::move(reason);
    }
    return Flow::Fail;
  }

  SynthResult failResult(VerdictKind kind, std::string reason) {
    SynthResult r;
    r.verdict.kind = kind;
    r.verdict.reason = std::move(reason);
    return r;
  }

  SynthResult takeFailure() {
    SynthResult r;
    r.verdict = std::move(failure_);
    return r;
  }

  // --- observability ---------------------------------------------------------
  /// True when skipping `node` under an undecidable branch could change the
  /// profile: memory events, barriers, early returns, and live loops (their
  /// trip statistics are part of the profile) are all observable.
  bool observable(const AccessTreeNode& node) const {
    switch (node.kind) {
      case AccessTreeNode::Kind::Access:
      case AccessTreeNode::Kind::Barrier:
      case AccessTreeNode::Kind::Return:
        return true;
      case AccessTreeNode::Kind::Loop: {
        const LoopCtl* ctl = scan_->of(node.loopId);
        return !ctl || ctl->reachable;
      }
      case AccessTreeNode::Kind::Cond:
        for (const AccessTreeNode& child : node.children) {
          if (observable(child)) return true;
        }
        return false;
    }
    return true;
  }

  // --- tree walk (one work-item) ---------------------------------------------
  Flow walkSpan(const std::vector<AccessTreeNode>& nodes, std::size_t begin,
                std::size_t end) {
    for (std::size_t i = begin; i < end && i < nodes.size(); ++i) {
      const Flow flow = walkNode(nodes[i]);
      if (flow != Flow::Continue) return flow;
    }
    return Flow::Continue;
  }

  Flow walkNode(const AccessTreeNode& node) {
    switch (node.kind) {
      case AccessTreeNode::Kind::Access:
        return walkAccess(node);
      case AccessTreeNode::Kind::Barrier:
        segments_.emplace_back();
        return Flow::Continue;
      case AccessTreeNode::Kind::Return:
        return Flow::Returned;
      case AccessTreeNode::Kind::Cond:
        return walkCond(node);
      case AccessTreeNode::Kind::Loop:
        return walkLoop(node);
    }
    return Flow::Continue;
  }

  Flow walkCond(const AccessTreeNode& node) {
    const auto cond = symEval(node.cond.get(), bind_);
    if (!cond) {
      if (observable(node)) {
        return fail(VerdictKind::Approximate, "data-dependent branch");
      }
      return Flow::Continue;
    }
    const std::size_t split = std::min(node.thenCount, node.children.size());
    return *cond != 0 ? walkSpan(node.children, 0, split)
                      : walkSpan(node.children, split, node.children.size());
  }

  Flow walkLoop(const AccessTreeNode& node) {
    const LoopCtl* ctl = scan_->of(node.loopId);
    if (ctl && !ctl->reachable) return Flow::Continue;  // dead code: stays 0
    if (!node.loopCond && node.staticTrip < 0) {
      return fail(VerdictKind::Approximate, "statically unbounded loop");
    }
    if (ctl && ctl->breakish) {
      return fail(VerdictKind::Approximate, "loop contains break/continue");
    }
    if (!ctl) {
      return fail(VerdictKind::Unsupported, "loop without dense loop id");
    }

    // Trip count under the current binding: evaluate the captured condition
    // per iteration (slots there are entry + step*iter); fall back to the
    // lowerer's static trip count when the condition is not evaluable.
    std::int64_t trips = -1;
    if (node.loopCond) {
      for (std::int64_t k = 0;; ++k) {
        bind_.loopIters[node.loopId] = k;
        const auto c = symEval(node.loopCond.get(), bind_);
        if (!c) break;  // unevaluable: same for every k (pure expression)
        if (*c == 0) {
          trips = node.condFirst ? k : k + 1;
          break;
        }
        if (k >= options_.maxTripPerLoop) {
          bind_.loopIters.erase(node.loopId);
          return fail(VerdictKind::Approximate,
                      "loop trip count exceeds synthesis cap");
        }
      }
    }
    if (trips < 0) trips = node.staticTrip;
    if (trips < 0) {
      bind_.loopIters.erase(node.loopId);
      return fail(VerdictKind::Approximate, "data-dependent loop trip count");
    }
    if (trips > options_.maxTripPerLoop) {
      bind_.loopIters.erase(node.loopId);
      return fail(VerdictKind::Approximate,
                  "loop trip count exceeds synthesis cap");
    }

    LoopCounters& counters =
        loopCounters_[static_cast<std::size_t>(node.loopId)];
    for (std::int64_t k = 0; k < trips; ++k) {
      if (++loopIterations_ > options_.maxLoopIterations) {
        bind_.loopIters.erase(node.loopId);
        return fail(VerdictKind::Approximate,
                    "total loop iterations exceed synthesis cap");
      }
      bind_.loopIters[node.loopId] = k;
      ++counters.body;  // one jump into the body per started iteration
      const Flow flow = walkSpan(node.children, 0, node.children.size());
      if (flow != Flow::Continue) {
        // Returned: the interpreter never jumps to the exit block, so the
        // entry counter is not incremented for this (or any enclosing) loop.
        bind_.loopIters.erase(node.loopId);
        return flow;
      }
    }
    if (node.condFirst) {
      // The failing check still executes the condition block once more.
      bind_.loopIters[node.loopId] = trips;
      const Flow flow = walkSpan(node.children, 0, node.condChildCount);
      if (flow != Flow::Continue) {
        bind_.loopIters.erase(node.loopId);
        return flow;
      }
    }
    ++counters.entries;  // the one jump to the exit block
    bind_.loopIters.erase(node.loopId);
    return Flow::Continue;
  }

  Flow walkAccess(const AccessTreeNode& node) {
    if (node.accessIndex < 0 ||
        static_cast<std::size_t>(node.accessIndex) >=
            summary_.accesses.size()) {
      return fail(VerdictKind::Unsupported, "malformed access tree");
    }
    const MemAccessInfo& info =
        summary_.accesses[static_cast<std::size_t>(node.accessIndex)];
    if (info.space == ir::AddressSpace::Private) return Flow::Continue;

    std::int32_t buffer = -1;
    std::int64_t poolSize = -1;  // unknown pool: every access counts as OOB
    switch (info.base) {
      case PtrBase::BufferArg: {
        if (info.baseIndex < 0 ||
            static_cast<std::size_t>(info.baseIndex) >= args_.size()) {
          return fail(VerdictKind::Unsupported,
                      "buffer argument without binding");
        }
        const interp::KernelArg& arg =
            args_[static_cast<std::size_t>(info.baseIndex)];
        if (!arg.isBuffer || arg.bufferIndex < 0) {
          return fail(VerdictKind::Unsupported,
                      "buffer argument without binding");
        }
        buffer = arg.bufferIndex;
        if (static_cast<std::size_t>(arg.bufferIndex) < buffers_.size()) {
          poolSize = static_cast<std::int64_t>(
              buffers_[static_cast<std::size_t>(arg.bufferIndex)].size());
        }
        break;
      }
      case PtrBase::LocalAlloca: {
        buffer = info.baseIndex;
        const auto& allocas = summary_.fn->localAllocas;
        if (info.baseIndex >= 0 &&
            static_cast<std::size_t>(info.baseIndex) < allocas.size() &&
            allocas[static_cast<std::size_t>(info.baseIndex)]->allocaType) {
          poolSize = static_cast<std::int64_t>(
              allocas[static_cast<std::size_t>(info.baseIndex)]
                  ->allocaType->sizeInBytes());
        }
        break;
      }
      case PtrBase::LocalArg:
        // A __local pointer argument indexes the same pools as the allocas
        // in the interpreter; modelling that aliasing is out of scope.
        return fail(VerdictKind::Unsupported, "__local pointer argument");
      default:
        return fail(VerdictKind::Approximate, "unresolved pointer base");
    }

    const auto offset = symEval(info.offset.get(), bind_);
    if (!offset) {
      return fail(VerdictKind::Approximate, "data-dependent access offset");
    }
    const bool inBounds =
        poolSize >= 0 && *offset >= 0 &&
        *offset + static_cast<std::int64_t>(info.size) <= poolSize;
    if (!inBounds) ++oobAccesses_;  // the interpreter records and moves on

    const bool record = info.space == ir::AddressSpace::Local
                            ? options_.captureLocalTrace
                            : true;
    if (!record) return Flow::Continue;
    if (++recordedEvents_ > options_.maxEvents) {
      return fail(VerdictKind::Approximate, "event volume exceeds synthesis cap");
    }
    interp::MemoryAccessEvent ev;
    ev.workItem = linearGlobal_;
    ev.group = group_;
    ev.space = info.space;
    ev.buffer = buffer;
    ev.offset = *offset;
    ev.size = info.size;
    ev.isWrite = info.isWrite;
    ev.instId = info.instId;
    segments_.back().push_back(ev);
    return Flow::Continue;
  }

  const KernelSummary& summary_;
  const interp::NdRange& range_;
  const std::vector<interp::KernelArg>& args_;
  const std::vector<std::vector<std::uint8_t>>& buffers_;
  const SynthOptions& options_;

  std::unique_ptr<LoopScan> scan_;
  SymBinding base_;
  SymBinding bind_;
  std::vector<std::vector<interp::MemoryAccessEvent>> segments_;
  std::vector<LoopCounters> loopCounters_;
  std::uint64_t linearGlobal_ = 0;
  std::uint32_t group_ = 0;
  std::uint64_t recordedEvents_ = 0;
  std::uint64_t loopIterations_ = 0;
  std::uint64_t oobAccesses_ = 0;
  std::uint64_t profiledGroups_ = 0;
  std::uint64_t profiledWorkItems_ = 0;
  Verdict failure_;
};

}  // namespace

SynthResult synthesizeProfile(
    const KernelSummary& summary, const interp::NdRange& range,
    const std::vector<interp::KernelArg>& args,
    const std::vector<std::vector<std::uint8_t>>& buffers,
    const SynthOptions& options) {
  return Synthesizer(summary, range, args, buffers, options).run();
}

}  // namespace flexcl::analysis::staticprof
