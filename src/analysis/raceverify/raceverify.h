// GPUVerify-style static race & barrier-synchronization verifier
// (DESIGN.md §15).
//
// Partitions a kernel's access tree into barrier intervals (epochs) and
// checks every cross-work-item access pair that can share memory — local
// pairs within one work-group, global pairs within and across work-groups —
// using a two-work-item symbolic abstraction over the strided-affine domain:
// the second work-item's ids are the first's plus a bounded delta, the byte
// offsets of both instances are linearized, and their difference is tested
// against the byte-overlap window with interval (Banerjee) reach bounds and
// a GCD divisibility test. Accesses provably separated by a barrier (their
// epoch expressions can never be equal) cannot race within a group; barriers
// never order accesses of different groups.
//
// Verdicts form a lattice: RaceFree (every pair proven independent or
// ordered) < Unknown (some pair neither proven nor concretely witnessed) <
// Racy (a pair with a concrete two-work-item witness: ids, addresses and
// matching barrier epochs, validated by evaluating both offsets and every
// enclosing guard). A Racy verdict therefore always carries evidence the
// dynamic race checker (interp::InterpOptions::raceCheck) can reproduce —
// the static/dynamic cross-validation contract asserted over all bundled
// workloads in tests/test_raceverify.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/symbolic.h"
#include "interp/interpreter.h"

namespace flexcl::analysis::raceverify {

enum class RaceVerdictKind : std::uint8_t { RaceFree, Racy, Unknown };

/// Concrete evidence for one racy pair: two distinct work-items whose
/// accesses overlap in bytes and are not ordered by a barrier.
struct RaceWitness {
  std::uint64_t workItemA = 0;  ///< linear global work-item id
  std::uint64_t workItemB = 0;
  std::uint32_t groupA = 0;  ///< linear work-group id
  std::uint32_t groupB = 0;
  unsigned instA = 0;  ///< IR instruction ids of the two accesses
  unsigned instB = 0;
  ir::AddressSpace space = ir::AddressSpace::Global;
  int baseIndex = -1;  ///< arg index / position in fn.localAllocas
  std::int64_t offsetA = 0;  ///< byte offsets from the base
  std::int64_t offsetB = 0;
  std::uint32_t sizeA = 0;
  std::uint32_t sizeB = 0;

  [[nodiscard]] std::string str() const;
};

/// Verdict for one checked access pair (only non-RaceFree pairs are kept on
/// the kernel verdict).
struct PairResult {
  unsigned instA = 0;
  unsigned instB = 0;
  RaceVerdictKind kind = RaceVerdictKind::Unknown;
  std::string reason;  ///< set for Unknown pairs
  std::optional<RaceWitness> witness;  ///< set for Racy pairs
};

struct RaceVerdict {
  RaceVerdictKind kind = RaceVerdictKind::Unknown;
  /// Witness summary (Racy) or the first blocking reason (Unknown); empty
  /// for RaceFree.
  std::string reason;
  /// Racy and Unknown pairs (RaceFree pairs are only counted).
  std::vector<PairResult> pairs;

  std::uint64_t pairsChecked = 0;
  std::uint64_t pairsProven = 0;  ///< proven independent or barrier-ordered
  std::uint64_t racyPairs = 0;
  std::uint64_t unknownPairs = 0;
  /// Barrier intervals one work-item passes through (barriers executed + 1);
  /// 0 when the barrier structure is not statically countable.
  std::uint64_t barrierIntervals = 0;
  /// Every access got an exact epoch expression (no barrier under
  /// non-uniform control flow, no barrier loop with unresolved trip).
  bool epochsExact = false;

  [[nodiscard]] bool raceFree() const {
    return kind == RaceVerdictKind::RaceFree;
  }
  /// "race-free" | "racy" | "unknown".
  [[nodiscard]] const char* name() const;
};

struct VerifyOptions {
  /// Kernel arguments: integer scalars fold into the offset forms and feed
  /// witness validation. Null leaves scalar-argument leaves symbolic.
  const std::vector<interp::KernelArg>* args = nullptr;
  /// Dataflow-resolved trip counts per loopId (-1 unresolved), e.g.
  /// model::StaticInputs::staticTrips. Null resolves from LoopFact only.
  const std::vector<std::int64_t>* staticTrips = nullptr;
  /// Global buffer sizes in bytes (indexed by buffer index). When present,
  /// witnesses must fall inside the buffer — out-of-bounds addresses are not
  /// real memory and the dynamic checker never sees them.
  const std::vector<std::uint64_t>* bufferBytes = nullptr;
};

/// Verifies `summary` under the launch geometry `range` (the effective
/// NDRange: local sizes must divide global sizes). Bumps the
/// `analysis.race.{free,racy,unknown}` counters once per call.
RaceVerdict verifyRaces(const KernelSummary& summary,
                        const interp::NdRange& range,
                        const VerifyOptions& options = {});

}  // namespace flexcl::analysis::raceverify
