// GPUVerify-style static race verifier (DESIGN.md §15).
//
// Pipeline per kernel:
//   1. Collect: walk the access tree once, attaching to every access site its
//      guard stack, enclosing loops and a symbolic barrier-epoch expression
//      base + Σ per·iter — exact unless a barrier hides under non-uniform
//      control flow or inside a loop with an unresolved trip count.
//   2. Pair: group accesses by base object (buffer argument — aliases
//      resolved through the launch args — or local allocation) and take every
//      pair with at least one write.
//   3. Prove: per pair, enumerate two-work-item scenarios (same-group id
//      deltas per leading dimension; cross-group deltas for global memory),
//      linearize both byte offsets over the strided-affine domain, decompose
//      get_global_id into group·localSize + localId, and test
//      offsetA − offsetB against the byte-overlap window with interval
//      (Banerjee) reach bounds and a GCD divisibility test. Same-group
//      scenarios additionally solve the epoch-equality constraint: accesses
//      that only co-execute in different barrier intervals are ordered by the
//      barrier and cannot race. Barriers never order different groups.
//   4. Witness: pairs not proven independent get a bounded concrete search
//      (corner work-item ids, small/extremal loop iterations) that validates
//      guards, loop trips and epoch equality with symEval before reporting a
//      Racy witness; a feasible-but-unwitnessed pair stays Unknown.
#include "analysis/raceverify/raceverify.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "analysis/dataflow/affine.h"
#include "analysis/dataflow/interval.h"
#include "obs/registry.h"

namespace flexcl::analysis::raceverify {
namespace {

using dataflow::AffineForm;
using dataflow::AffineTerm;
using dataflow::Interval;

// Stand-in iteration bound for loops with unresolved trip counts: large
// enough to never exclude a real iteration, small enough that interval
// arithmetic over it stays useful before degrading to top.
constexpr std::int64_t kUnboundedIter = std::int64_t{1} << 56;
// Loop-condition replay cap when validating a witness iteration of an
// unresolved-trip loop.
constexpr std::int64_t kCondReplayCap = 64;
// symEval budget for one pair's witness search.
constexpr std::uint64_t kWitnessBudget = 50000;

bool addOv(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return __builtin_add_overflow(a, b, &out);
}
bool mulOv(std::int64_t a, std::int64_t b, std::int64_t& out) {
  return __builtin_mul_overflow(a, b, &out);
}

std::int64_t floorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if (a % b != 0 && (a < 0) != (b < 0)) --q;
  return q;
}

// ---------------------------------------------------------------------------
// Access collection: epochs, guards, enclosing loops
// ---------------------------------------------------------------------------

struct Guard {
  SymExprPtr cond;
  bool taken = true;
};

struct LoopCtx {
  int loopId = -1;
  SymExprPtr cond;             // per-iteration condition; null for for(;;)
  bool condFirst = true;
  std::int64_t trip = -1;      // resolved trip count; -1 unknown
  bool inCondPrefix = false;   // access sits in the condition-block prefix
  std::int64_t epochsPerIter = 0;
};

/// Barrier epoch of an access as base + Σ per·iter over enclosing
/// barrier-loops. Inexact once a barrier hides under a condition or a
/// barrier-loop's trip is unresolved.
struct EpochExpr {
  bool exact = true;
  std::int64_t base = 0;
  std::vector<std::pair<int, std::int64_t>> coeffs;  // (loopId, barriers/iter)
};

struct AccessRec {
  const MemAccessInfo* info = nullptr;
  EpochExpr epoch;
  std::vector<Guard> guards;
  std::vector<LoopCtx> loops;  // outermost first
  bool neverExecutes = false;  // enclosed by a loop with trip 0
};

class Collector {
 public:
  Collector(const KernelSummary& summary, const VerifyOptions& options)
      : summary_(summary) {
    for (const LoopFact& lf : summary.loops) {
      std::int64_t trip = lf.staticTrip;
      if (trip < 0 && options.staticTrips && lf.loopId >= 0 &&
          static_cast<std::size_t>(lf.loopId) < options.staticTrips->size()) {
        trip = (*options.staticTrips)[static_cast<std::size_t>(lf.loopId)];
      }
      trips_[lf.loopId] = trip;
    }
  }

  void run() {
    for (const AccessTreeNode& n : summary_.roots) visit(n);
  }

  [[nodiscard]] std::int64_t tripOf(int loopId) const {
    auto it = trips_.find(loopId);
    return it == trips_.end() ? -1 : it->second;
  }

  /// Barriers one work-item executes over the whole kernel; nullopt when the
  /// barrier structure is not statically countable.
  [[nodiscard]] std::optional<std::int64_t> totalBarriers() const {
    std::int64_t total = 0;
    for (const AccessTreeNode& n : summary_.roots) {
      auto c = countBarriers(n);
      if (!c || addOv(total, *c, total)) return std::nullopt;
    }
    return total;
  }

  std::vector<AccessRec> records;
  bool epochsExact = true;

 private:
  [[nodiscard]] std::optional<std::int64_t> countBarriers(
      const AccessTreeNode& n) const {
    switch (n.kind) {
      case AccessTreeNode::Kind::Access:
      case AccessTreeNode::Kind::Return:
        return 0;
      case AccessTreeNode::Kind::Barrier:
        return 1;
      case AccessTreeNode::Kind::Cond: {
        // A barrier under a condition is not a per-work-item constant count.
        std::int64_t sum = 0;
        for (const AccessTreeNode& ch : n.children) {
          auto c = countBarriers(ch);
          if (!c) return std::nullopt;
          sum += *c;
        }
        if (sum != 0) return std::nullopt;
        return 0;
      }
      case AccessTreeNode::Kind::Loop: {
        std::int64_t per = 0;
        for (const AccessTreeNode& ch : n.children) {
          auto c = countBarriers(ch);
          if (!c) return std::nullopt;
          per += *c;
        }
        if (per == 0) return 0;
        std::int64_t trip = tripOf(n.loopId);
        std::int64_t total = 0;
        if (trip < 0 || mulOv(per, trip, total)) return std::nullopt;
        return total;
      }
    }
    return std::nullopt;
  }

  void visit(const AccessTreeNode& n) {
    switch (n.kind) {
      case AccessTreeNode::Kind::Access: {
        if (n.accessIndex < 0 ||
            static_cast<std::size_t>(n.accessIndex) >=
                summary_.accesses.size()) {
          return;
        }
        AccessRec rec;
        rec.info = &summary_.accesses[static_cast<std::size_t>(n.accessIndex)];
        rec.epoch = epoch_;
        rec.guards = guards_;
        rec.loops = loops_;
        for (const LoopCtx& lc : loops_) {
          if (lc.trip == 0 && !lc.inCondPrefix) rec.neverExecutes = true;
        }
        records.push_back(std::move(rec));
        return;
      }
      case AccessTreeNode::Kind::Return:
        return;
      case AccessTreeNode::Kind::Barrier:
        if (epoch_.exact) epoch_.base += 1;
        return;
      case AccessTreeNode::Kind::Cond: {
        auto barriers = countBarriers(n);
        if (!barriers) {
          // Possibly-divergent barrier: epochs of everything from here on are
          // unknown.
          epoch_.exact = false;
          epochsExact = false;
        }
        std::size_t i = 0;
        for (const AccessTreeNode& ch : n.children) {
          guards_.push_back(Guard{n.cond, i < n.thenCount});
          visit(ch);
          guards_.pop_back();
          ++i;
        }
        return;
      }
      case AccessTreeNode::Kind::Loop:
        visitLoop(n);
        return;
    }
  }

  void visitLoop(const AccessTreeNode& n) {
    std::int64_t per = 0;
    bool perKnown = true;
    for (const AccessTreeNode& ch : n.children) {
      auto c = countBarriers(ch);
      if (!c) {
        perKnown = false;
        break;
      }
      per += *c;
    }
    const std::int64_t trip = tripOf(n.loopId);

    LoopCtx ctx;
    ctx.loopId = n.loopId;
    ctx.cond = n.loopCond;
    ctx.condFirst = n.condFirst;
    ctx.trip = trip;
    ctx.epochsPerIter = perKnown ? per : -1;

    const std::int64_t baseBefore = epoch_.base;
    const bool exactBefore = epoch_.exact;
    if (!perKnown) {
      epoch_.exact = false;
      epochsExact = false;
    } else if (per > 0 && epoch_.exact) {
      epoch_.coeffs.emplace_back(n.loopId, per);
    }

    loops_.push_back(ctx);
    std::size_t i = 0;
    for (const AccessTreeNode& ch : n.children) {
      loops_.back().inCondPrefix = n.condFirst && i < n.condChildCount;
      visit(ch);
      ++i;
    }
    loops_.pop_back();

    if (perKnown && per > 0 && exactBefore && epoch_.exact) {
      // Walking the body advanced base by one iteration's worth; rewrite to
      // the post-loop total per·trip. With the trip unresolved, accesses
      // inside the loop keep their exact base + per·iter epoch but everything
      // after the loop is unknown.
      if (!epoch_.coeffs.empty() && epoch_.coeffs.back().first == n.loopId) {
        epoch_.coeffs.pop_back();
      }
      std::int64_t total = 0;
      if (trip >= 0 && !mulOv(per, trip, total) &&
          !addOv(baseBefore, total, epoch_.base)) {
        // epoch_.base updated by addOv.
      } else {
        epoch_.exact = false;
        epochsExact = false;
      }
    }
  }

  const KernelSummary& summary_;
  std::unordered_map<int, std::int64_t> trips_;
  EpochExpr epoch_;
  std::vector<Guard> guards_;
  std::vector<LoopCtx> loops_;
};

// ---------------------------------------------------------------------------
// Base-object identity
// ---------------------------------------------------------------------------

enum class BaseClass : std::uint8_t { None, Resolved, Unresolved };

struct BaseId {
  BaseClass cls = BaseClass::None;
  bool local = false;  ///< __local object (per-group) vs global buffer pool
  int id = -1;
};

BaseId baseOf(const MemAccessInfo& a, const std::vector<interp::KernelArg>* args) {
  if (a.space == ir::AddressSpace::Private) return {BaseClass::None, false, -1};
  if (a.space == ir::AddressSpace::Local) {
    if (a.base == PtrBase::LocalAlloca) {
      return {BaseClass::Resolved, true, a.baseIndex};
    }
    if (a.base == PtrBase::LocalArg) {
      return {BaseClass::Resolved, true, 1000000 + a.baseIndex};
    }
    return {BaseClass::Unresolved, true, -1};
  }
  // Global / Constant share the kernel buffer pool; aliased pointer args
  // resolve to the same buffer through the launch args.
  if (a.base == PtrBase::BufferArg) {
    int id = a.baseIndex;
    if (args != nullptr && a.baseIndex >= 0 &&
        static_cast<std::size_t>(a.baseIndex) < args->size() &&
        (*args)[static_cast<std::size_t>(a.baseIndex)].isBuffer) {
      id = (*args)[static_cast<std::size_t>(a.baseIndex)].bufferIndex;
    }
    return {BaseClass::Resolved, false, id};
  }
  if (a.base == PtrBase::PrivateAlloca) return {BaseClass::None, false, -1};
  return {BaseClass::Unresolved, false, -1};
}

// ---------------------------------------------------------------------------
// Epoch-equality relation between two access instances
// ---------------------------------------------------------------------------

struct EpochRelation {
  bool neverEqual = false;  ///< barrier always separates the two instances
  /// Both instances iterate the same barrier-loop: iterB = iterA − shift.
  std::optional<std::pair<int, std::int64_t>> sharedShift;
  std::vector<std::pair<int, std::int64_t>> pinsA, pinsB;
  bool usable = true;  ///< false: equality not solved, no constraint derived
};

EpochRelation relateEpochs(const EpochExpr& a, const EpochExpr& b,
                           const Collector& col) {
  EpochRelation rel;
  if (!a.exact || !b.exact) {
    rel.usable = false;
    return rel;
  }
  const std::int64_t diff = b.base - a.base;  // Σ cA·iA − Σ cB·iB = diff
  if (a.coeffs.empty() && b.coeffs.empty()) {
    rel.neverEqual = diff != 0;
    return rel;
  }
  if (a.coeffs.size() == 1 && b.coeffs.empty()) {
    const auto [loop, c] = a.coeffs[0];
    if (diff % c != 0 || diff / c < 0) {
      rel.neverEqual = true;
      return rel;
    }
    const std::int64_t k = diff / c;
    const std::int64_t trip = col.tripOf(loop);
    // k == trip stays feasible: condition-prefix accesses run once more.
    if (trip >= 0 && k > trip) {
      rel.neverEqual = true;
      return rel;
    }
    rel.pinsA.emplace_back(loop, k);
    return rel;
  }
  if (b.coeffs.size() == 1 && a.coeffs.empty()) {
    const auto [loop, c] = b.coeffs[0];
    if (diff % c != 0 || -(diff / c) < 0) {
      rel.neverEqual = true;
      return rel;
    }
    const std::int64_t k = -(diff / c);
    const std::int64_t trip = col.tripOf(loop);
    if (trip >= 0 && k > trip) {
      rel.neverEqual = true;
      return rel;
    }
    rel.pinsB.emplace_back(loop, k);
    return rel;
  }
  if (a.coeffs.size() == 1 && b.coeffs.size() == 1 &&
      a.coeffs[0].first == b.coeffs[0].first) {
    const int loop = a.coeffs[0].first;
    const std::int64_t ca = a.coeffs[0].second;
    const std::int64_t cb = b.coeffs[0].second;
    if (ca == cb) {
      // ca·(iA − iB) = diff  →  iterB = iterA − diff/ca.
      if (diff % ca != 0) {
        rel.neverEqual = true;
        return rel;
      }
      rel.sharedShift = std::make_pair(loop, diff / ca);
      return rel;
    }
    const std::int64_t g = std::gcd(std::abs(ca), std::abs(cb));
    if (g != 0 && diff % g != 0) {
      rel.neverEqual = true;
      return rel;
    }
    rel.usable = false;
    return rel;
  }
  // Multiple / mismatched barrier loops: refute by gcd when possible.
  std::int64_t g = 0;
  for (const auto& [loop, c] : a.coeffs) g = std::gcd(g, std::abs(c));
  for (const auto& [loop, c] : b.coeffs) g = std::gcd(g, std::abs(c));
  if (g != 0 && diff % g != 0) {
    rel.neverEqual = true;
    return rel;
  }
  rel.usable = false;
  return rel;
}

// ---------------------------------------------------------------------------
// Affine decomposition over the launch geometry
// ---------------------------------------------------------------------------

/// Offset form with get_global_id split into groupId·localSize + localId and
/// size leaves folded to launch constants.
struct Decomp {
  std::array<std::int64_t, 3> lid{0, 0, 0};
  std::array<std::int64_t, 3> grp{0, 0, 0};
  std::vector<std::pair<int, std::int64_t>> loops;    // loopId → coeff
  std::vector<std::pair<int, std::int64_t>> scalars;  // argIdx → coeff
  std::int64_t c = 0;

  [[nodiscard]] std::int64_t loopCoeff(int loopId) const {
    for (const auto& [id, c2] : loops) {
      if (id == loopId) return c2;
    }
    return 0;
  }
};

void bump(std::vector<std::pair<int, std::int64_t>>& v, int key,
          std::int64_t by, bool& overflow) {
  for (auto& [k, c] : v) {
    if (k == key) {
      overflow = overflow || addOv(c, by, c);
      return;
    }
  }
  v.emplace_back(key, by);
}

std::optional<Decomp> decompose(const AffineForm& f,
                                const interp::NdRange& range) {
  const auto ng = range.groupsPerDim();
  Decomp d;
  d.c = f.constant;
  bool ov = false;
  for (const AffineTerm& t : f.terms) {
    const int dim = t.leaf.index;
    const bool isDim = dim >= 0 && dim <= 2;
    switch (t.leaf.sym) {
      case Sym::GlobalId: {
        if (!isDim) return std::nullopt;
        std::int64_t scaled = 0;
        ov = ov ||
             mulOv(t.coeff, static_cast<std::int64_t>(range.local[dim]), scaled);
        ov = ov || addOv(d.lid[dim], t.coeff, d.lid[dim]);
        ov = ov || addOv(d.grp[dim], scaled, d.grp[dim]);
        break;
      }
      case Sym::LocalId:
        if (!isDim) return std::nullopt;
        ov = ov || addOv(d.lid[dim], t.coeff, d.lid[dim]);
        break;
      case Sym::GroupId:
        if (!isDim) return std::nullopt;
        ov = ov || addOv(d.grp[dim], t.coeff, d.grp[dim]);
        break;
      case Sym::GlobalSize:
      case Sym::LocalSize:
      case Sym::NumGroups: {
        if (!isDim) return std::nullopt;
        const std::uint64_t v = t.leaf.sym == Sym::GlobalSize ? range.global[dim]
                                : t.leaf.sym == Sym::LocalSize ? range.local[dim]
                                                               : ng[dim];
        std::int64_t folded = 0;
        ov = ov || mulOv(t.coeff, static_cast<std::int64_t>(v), folded);
        ov = ov || addOv(d.c, folded, d.c);
        break;
      }
      case Sym::ScalarArg:
        bump(d.scalars, t.leaf.index, t.coeff, ov);
        break;
      case Sym::LoopIter:
        bump(d.loops, t.leaf.index, t.coeff, ov);
        break;
    }
    if (ov) return std::nullopt;
  }
  return d;
}

// ---------------------------------------------------------------------------
// Two-work-item scenario solver (Banerjee reach + GCD)
// ---------------------------------------------------------------------------

struct Var {
  std::int64_t coeff = 0;
  Interval range = Interval::top();
};

/// Can  c0 + Σ coeff_i·v_i  land inside [wLo, wHi]? Refutes with the interval
/// reach (Banerjee bounds) and with gcd divisibility; inconclusive → true.
bool mayHitWindow(const std::vector<Var>& vars, std::int64_t c0,
                  std::int64_t wLo, std::int64_t wHi) {
  Interval reach = Interval::point(c0);
  for (const Var& v : vars) {
    reach = dataflow::addI(reach, dataflow::mulI(Interval::point(v.coeff), v.range));
  }
  if (reach.hi < wLo || reach.lo > wHi) return false;

  std::int64_t c = c0;
  std::int64_t g = 0;
  for (const Var& v : vars) {
    if (v.coeff == 0) continue;
    if (v.range.isPoint()) {
      std::int64_t t = 0;
      if (mulOv(v.coeff, v.range.lo, t) || addOv(c, t, c)) return true;
    } else {
      if (v.coeff == INT64_MIN) return true;
      g = std::gcd(g, std::abs(v.coeff));
    }
  }
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  if (__builtin_sub_overflow(wLo, c, &lo) ||
      __builtin_sub_overflow(wHi, c, &hi)) {
    return true;
  }
  if (g == 0) return lo <= 0 && 0 <= hi;
  if (lo == INT64_MIN) return true;
  return floorDiv(hi, g) >= floorDiv(lo - 1, g) + 1;
}

struct Scenario {
  bool sameGroup = true;
  std::array<Interval, 3> dLid;  // localId of B minus localId of A
  std::array<Interval, 3> dGrp;  // groupId of B minus groupId of A
};

/// All scenarios with a lexicographically positive id delta (running each
/// pair in both orders covers negative deltas).
std::vector<Scenario> scenariosFor(bool global, const interp::NdRange& range) {
  std::vector<Scenario> out;
  const auto ng = range.groupsPerDim();
  for (int h = 0; h < 3; ++h) {
    if (range.local[h] <= 1) continue;
    Scenario s;
    s.sameGroup = true;
    for (int d = 0; d < 3; ++d) {
      const auto l = static_cast<std::int64_t>(range.local[d]) - 1;
      s.dLid[d] = d == h   ? Interval::range(1, l)
                  : d < h ? Interval::range(-l, l)
                          : Interval::point(0);
      s.dGrp[d] = Interval::point(0);
    }
    out.push_back(s);
  }
  if (global) {
    for (int h = 0; h < 3; ++h) {
      if (ng[h] <= 1) continue;
      Scenario s;
      s.sameGroup = false;
      for (int d = 0; d < 3; ++d) {
        const auto l = static_cast<std::int64_t>(range.local[d]) - 1;
        const auto g = static_cast<std::int64_t>(ng[d]) - 1;
        s.dLid[d] = l > 0 ? Interval::range(-l, l) : Interval::point(0);
        s.dGrp[d] = d == h   ? Interval::range(1, g)
                    : d < h ? Interval::range(-g, g)
                            : Interval::point(0);
      }
      out.push_back(s);
    }
  }
  return out;
}

/// Iteration interval of `loopId` as seen by `rec`: [0, trip-1] inside the
/// loop ([0, trip] for condition-prefix accesses, which run once more), [0,
/// trip] after it (final induction value), unbounded when unresolved.
Interval iterRange(const AccessRec& rec, int loopId, const Collector& col) {
  const std::int64_t trip = col.tripOf(loopId);
  if (trip < 0) return Interval::range(0, kUnboundedIter);
  bool enclosing = false;
  bool prefix = false;
  for (const LoopCtx& lc : rec.loops) {
    if (lc.loopId == loopId) {
      enclosing = true;
      prefix = lc.inCondPrefix;
    }
  }
  std::int64_t hi = enclosing && !prefix ? trip - 1 : trip;
  if (hi < 0) hi = 0;
  return Interval::range(0, hi);
}

/// Builds the difference form offA(A-instance) − offB(B-instance) under a
/// scenario and epoch relation. Returns nullopt when the scenario is
/// infeasible (epoch tie incompatible with the iteration ranges) — which
/// proves the scenario race-free.
std::optional<std::pair<std::vector<Var>, std::int64_t>> buildDiff(
    const Decomp& da, const Decomp& db, const AccessRec& ra,
    const AccessRec& rb, const Scenario& s, const EpochRelation& rel,
    const interp::NdRange& range, const Collector& col, bool& overflow) {
  std::vector<Var> vars;
  std::int64_t c0 = 0;
  overflow = overflow || __builtin_sub_overflow(da.c, db.c, &c0);

  const auto ng = range.groupsPerDim();
  for (int d = 0; d < 3; ++d) {
    std::int64_t shared = 0;
    overflow = overflow || __builtin_sub_overflow(da.lid[d], db.lid[d], &shared);
    const auto lmax = static_cast<std::int64_t>(range.local[d]) - 1;
    if (shared != 0) vars.push_back({shared, Interval::range(0, lmax)});
    if (db.lid[d] != 0 && !(s.dLid[d] == Interval::point(0))) {
      vars.push_back({db.lid[d] == INT64_MIN ? db.lid[d] : -db.lid[d], s.dLid[d]});
      if (db.lid[d] == INT64_MIN) overflow = true;
    }
    std::int64_t sharedG = 0;
    overflow = overflow || __builtin_sub_overflow(da.grp[d], db.grp[d], &sharedG);
    const auto gmax = static_cast<std::int64_t>(ng[d]) - 1;
    if (sharedG != 0) vars.push_back({sharedG, Interval::range(0, gmax)});
    if (db.grp[d] != 0 && !(s.dGrp[d] == Interval::point(0))) {
      vars.push_back({db.grp[d] == INT64_MIN ? db.grp[d] : -db.grp[d], s.dGrp[d]});
      if (db.grp[d] == INT64_MIN) overflow = true;
    }
  }

  // Scalar arguments are launch constants: shared between the instances, so
  // only the coefficient difference survives.
  {
    std::vector<std::pair<int, std::int64_t>> merged = da.scalars;
    bool ov = false;
    for (const auto& [arg, cb] : db.scalars) {
      if (cb == INT64_MIN) ov = true;
      bump(merged, arg, cb == INT64_MIN ? cb : -cb, ov);
    }
    overflow = overflow || ov;
    for (const auto& [arg, c] : merged) {
      if (c != 0) vars.push_back({c, Interval::top()});
    }
  }

  // Loop iteration counters are per-instance unless the epoch relation ties
  // or pins them.
  std::vector<int> loopIds;
  for (const auto& [id, c] : da.loops) loopIds.push_back(id);
  for (const auto& [id, c] : db.loops) {
    if (std::find(loopIds.begin(), loopIds.end(), id) == loopIds.end()) {
      loopIds.push_back(id);
    }
  }
  for (const int id : loopIds) {
    const std::int64_t ca = da.loopCoeff(id);
    const std::int64_t cb = db.loopCoeff(id);
    const Interval ia = iterRange(ra, id, col);
    const Interval ib = iterRange(rb, id, col);
    if (rel.sharedShift && rel.sharedShift->first == id) {
      // iterB = iterA − shift:  ca·iA − cb·iB = (ca−cb)·iA + cb·shift.
      const std::int64_t shift = rel.sharedShift->second;
      std::int64_t lo = std::max<std::int64_t>(0, shift);
      std::int64_t hiB = 0;
      if (addOv(ib.hi, shift, hiB)) {
        overflow = true;
        hiB = ia.hi;
      }
      const std::int64_t hi = std::min(ia.hi, hiB);
      if (lo > hi) return std::nullopt;  // tie infeasible → no co-execution
      std::int64_t coeff = 0;
      overflow = overflow || __builtin_sub_overflow(ca, cb, &coeff);
      if (coeff != 0) vars.push_back({coeff, Interval::range(lo, hi)});
      std::int64_t fold = 0;
      overflow = overflow || mulOv(cb, shift, fold) || addOv(c0, fold, c0);
      continue;
    }
    bool pinnedA = false;
    for (const auto& [pl, pv] : rel.pinsA) {
      if (pl == id) {
        std::int64_t fold = 0;
        overflow = overflow || mulOv(ca, pv, fold) || addOv(c0, fold, c0);
        pinnedA = true;
      }
    }
    if (!pinnedA && ca != 0) vars.push_back({ca, ia});
    bool pinnedB = false;
    for (const auto& [pl, pv] : rel.pinsB) {
      if (pl == id) {
        std::int64_t fold = 0;
        overflow = overflow ||
                   mulOv(cb == INT64_MIN ? cb : -cb, pv, fold) ||
                   addOv(c0, fold, c0);
        if (cb == INT64_MIN) overflow = true;
        pinnedB = true;
      }
    }
    if (!pinnedB && cb != 0) {
      if (cb == INT64_MIN) overflow = true;
      vars.push_back({cb == INT64_MIN ? cb : -cb, ib});
    }
  }
  if (overflow) return std::nullopt;
  return std::make_pair(std::move(vars), c0);
}

// ---------------------------------------------------------------------------
// Concrete witness search
// ---------------------------------------------------------------------------

std::vector<std::int64_t> cornerValues(std::int64_t count) {
  std::vector<std::int64_t> out;
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, count - 2, count - 1}) {
    if (v >= 0 && v < count &&
        std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(v);
    }
  }
  if (out.empty()) out.push_back(0);
  std::sort(out.begin(), out.end());
  return out;
}

void collectLoopIds(const SymExpr* e, std::vector<int>& out) {
  if (e == nullptr) return;
  if (e->op == SymExpr::Op::Leaf && e->sym == Sym::LoopIter) {
    if (std::find(out.begin(), out.end(), e->index) == out.end()) {
      out.push_back(e->index);
    }
  }
  collectLoopIds(e->a.get(), out);
  collectLoopIds(e->b.get(), out);
  collectLoopIds(e->c.get(), out);
}

struct WitnessInstance {
  const AccessRec* rec = nullptr;
  std::array<std::int64_t, 3> lid{0, 0, 0};
  std::array<std::int64_t, 3> grp{0, 0, 0};
};

class WitnessSearch {
 public:
  WitnessSearch(const AccessRec& a, const AccessRec& b,
                const interp::NdRange& range, const Collector& col,
                const VerifyOptions& options)
      : a_(a), b_(b), range_(range), col_(col), options_(options) {
    ng_ = range.groupsPerDim();
    for (int d = 0; d < 3; ++d) {
      lidCand_[d] = cornerValues(static_cast<std::int64_t>(range.local[d]));
      grpCand_[d] = cornerValues(static_cast<std::int64_t>(ng_[d]));
    }
    base_.globalSize = {static_cast<std::int64_t>(range.global[0]),
                        static_cast<std::int64_t>(range.global[1]),
                        static_cast<std::int64_t>(range.global[2])};
    base_.localSize = {static_cast<std::int64_t>(range.local[0]),
                       static_cast<std::int64_t>(range.local[1]),
                       static_cast<std::int64_t>(range.local[2])};
    base_.numGroups = {static_cast<std::int64_t>(ng_[0]),
                       static_cast<std::int64_t>(ng_[1]),
                       static_cast<std::int64_t>(ng_[2])};
    if (options.args != nullptr) {
      for (std::size_t i = 0; i < options.args->size(); ++i) {
        const interp::KernelArg& arg = (*options.args)[i];
        if (!arg.isBuffer && arg.scalar.isInt()) {
          base_.scalarArgs[static_cast<int>(i)] = arg.scalar.i;
        }
      }
    }
    collectRelevantLoops(a_, loopsA_);
    collectRelevantLoops(b_, loopsB_);
  }

  std::optional<RaceWitness> run() {
    const bool localSpace = a_.info->space == ir::AddressSpace::Local;
    std::optional<RaceWitness> found;
    enumerateIds(0, localSpace, found);
    return found;
  }

 private:
  void collectRelevantLoops(const AccessRec& rec, std::vector<int>& out) {
    collectLoopIds(rec.info->offset.get(), out);
    for (const Guard& g : rec.guards) collectLoopIds(g.cond.get(), out);
    for (const LoopCtx& lc : rec.loops) {
      collectLoopIds(lc.cond.get(), out);
      // Every enclosing loop needs a bound iteration for validity replay.
      if (std::find(out.begin(), out.end(), lc.loopId) == out.end()) {
        out.push_back(lc.loopId);
      }
    }
    for (const auto& [id, per] : rec.epoch.coeffs) {
      if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
    }
  }

  [[nodiscard]] std::vector<std::int64_t> iterCandidates(
      const AccessRec& rec, int loopId) const {
    const std::int64_t trip = col_.tripOf(loopId);
    bool enclosing = false;
    bool prefix = false;
    for (const LoopCtx& lc : rec.loops) {
      if (lc.loopId == loopId) {
        enclosing = true;
        prefix = lc.inCondPrefix;
      }
    }
    std::vector<std::int64_t> out;
    std::int64_t hi = trip < 0 ? 3 : (enclosing && !prefix ? trip - 1 : trip);
    for (std::int64_t v :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{2}, std::int64_t{3},
          hi - 1, hi}) {
      if (v >= 0 && v <= hi &&
          std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
    if (out.empty()) out.push_back(0);
    std::sort(out.begin(), out.end());
    return out;
  }

  // Odometer over the 2×3 lid dims and 2×3 grp dims.
  void enumerateIds(int slot, bool localSpace, std::optional<RaceWitness>& found) {
    if (found || budget_ == 0) return;
    if (slot == 12) {
      tryIds(localSpace, found);
      return;
    }
    const int d = slot % 3;
    if (slot < 3) {
      for (std::int64_t v : lidCand_[d]) {
        lidA_[d] = v;
        enumerateIds(slot + 1, localSpace, found);
      }
    } else if (slot < 6) {
      for (std::int64_t v : grpCand_[d]) {
        grpA_[d] = v;
        enumerateIds(slot + 1, localSpace, found);
      }
    } else if (slot < 9) {
      for (std::int64_t v : lidCand_[d]) {
        lidB_[d] = v;
        enumerateIds(slot + 1, localSpace, found);
      }
    } else {
      if (localSpace) {
        grpB_[d] = grpA_[d];
        enumerateIds(slot + 1, localSpace, found);
      } else {
        for (std::int64_t v : grpCand_[d]) {
          grpB_[d] = v;
          enumerateIds(slot + 1, localSpace, found);
        }
      }
    }
  }

  void tryIds(bool localSpace, std::optional<RaceWitness>& found) {
    if (lidA_ == lidB_ && grpA_ == grpB_) return;  // same work-item
    (void)localSpace;
    itersA_.clear();
    itersB_.clear();
    enumerateIters(0, /*forA=*/true, found);
  }

  void enumerateIters(std::size_t idx, bool forA,
                      std::optional<RaceWitness>& found) {
    if (found || budget_ == 0) return;
    const std::vector<int>& loops = forA ? loopsA_ : loopsB_;
    auto& iters = forA ? itersA_ : itersB_;
    if (idx == loops.size()) {
      if (forA) {
        enumerateIters(0, /*forA=*/false, found);
      } else {
        tryCombo(found);
      }
      return;
    }
    const AccessRec& rec = forA ? a_ : b_;
    for (std::int64_t v : iterCandidates(rec, loops[idx])) {
      iters[loops[idx]] = v;
      enumerateIters(idx + 1, forA, found);
      if (found || budget_ == 0) return;
    }
  }

  [[nodiscard]] SymBinding bindingFor(const std::array<std::int64_t, 3>& lid,
                                      const std::array<std::int64_t, 3>& grp,
                                      const std::unordered_map<int, std::int64_t>&
                                          iters) const {
    SymBinding b = base_;
    for (int d = 0; d < 3; ++d) {
      b.localId[d] = lid[d];
      b.groupId[d] = grp[d];
      b.globalId[d] = grp[d] * base_.localSize[d] + lid[d];
    }
    b.loopIters = iters;
    return b;
  }

  /// Validates that `rec` actually executes under `bind`: every guard takes
  /// the recorded direction and every enclosing loop reaches its bound
  /// iteration (replaying unresolved conditions up to kCondReplayCap).
  bool validInstance(const AccessRec& rec, const SymBinding& bind) const {
    for (const Guard& g : rec.guards) {
      if (g.cond == nullptr) return false;
      auto v = symEval(g.cond.get(), bind);
      if (!v || (*v != 0) != g.taken) return false;
    }
    for (const LoopCtx& lc : rec.loops) {
      auto it = bind.loopIters.find(lc.loopId);
      if (it == bind.loopIters.end()) return false;
      const std::int64_t iter = it->second;
      if (iter < 0) return false;
      if (lc.trip >= 0) {
        const std::int64_t hi = lc.inCondPrefix ? lc.trip : lc.trip - 1;
        if (iter > hi) return false;
        continue;
      }
      // Unresolved trip: replay the loop condition for iterations 0..k. The
      // body at iteration i requires the condition to hold at 0..i (condFirst)
      // or 0..i-1 (do-loops); the condition prefix at iteration i requires it
      // at 0..i-1.
      if (lc.cond == nullptr) return false;  // for(;;): cannot validate
      if (iter > kCondReplayCap) return false;
      const std::int64_t upto =
          lc.condFirst && !lc.inCondPrefix ? iter : iter - 1;
      SymBinding replay = bind;
      for (std::int64_t j = 0; j <= upto; ++j) {
        replay.loopIters[lc.loopId] = j;
        auto v = symEval(lc.cond.get(), replay);
        if (!v || *v == 0) return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::optional<std::int64_t> epochOf(
      const AccessRec& rec,
      const std::unordered_map<int, std::int64_t>& iters) const {
    if (!rec.epoch.exact) return std::nullopt;
    std::int64_t e = rec.epoch.base;
    for (const auto& [loop, per] : rec.epoch.coeffs) {
      auto it = iters.find(loop);
      if (it == iters.end()) return std::nullopt;
      std::int64_t t = 0;
      if (mulOv(per, it->second, t) || addOv(e, t, e)) return std::nullopt;
    }
    return e;
  }

  [[nodiscard]] bool inBounds(const AccessRec& rec, std::int64_t offset) const {
    if (offset < 0) return false;
    const MemAccessInfo& info = *rec.info;
    if (info.space == ir::AddressSpace::Local) return true;
    if (options_.bufferBytes == nullptr || options_.args == nullptr) return true;
    if (info.base != PtrBase::BufferArg || info.baseIndex < 0 ||
        static_cast<std::size_t>(info.baseIndex) >= options_.args->size()) {
      return true;
    }
    const interp::KernelArg& arg =
        (*options_.args)[static_cast<std::size_t>(info.baseIndex)];
    if (!arg.isBuffer || arg.bufferIndex < 0 ||
        static_cast<std::size_t>(arg.bufferIndex) >=
            options_.bufferBytes->size()) {
      return true;
    }
    const auto bytes = static_cast<std::int64_t>(
        (*options_.bufferBytes)[static_cast<std::size_t>(arg.bufferIndex)]);
    return offset + static_cast<std::int64_t>(info.size) <= bytes;
  }

  void tryCombo(std::optional<RaceWitness>& found) {
    if (budget_ == 0) return;
    --budget_;
    const bool sameGroup = grpA_ == grpB_;
    if (sameGroup) {
      // Same group: only unordered if the accesses land in the same barrier
      // interval — requires exact epochs on both sides.
      auto ea = epochOf(a_, itersA_);
      auto eb = epochOf(b_, itersB_);
      if (!ea || !eb || *ea != *eb) return;
    }
    const SymBinding bindA = bindingFor(lidA_, grpA_, itersA_);
    const SymBinding bindB = bindingFor(lidB_, grpB_, itersB_);
    if (!validInstance(a_, bindA) || !validInstance(b_, bindB)) return;
    auto offA = symEval(a_.info->offset.get(), bindA);
    auto offB = symEval(b_.info->offset.get(), bindB);
    if (!offA || !offB) return;
    const auto szA = static_cast<std::int64_t>(a_.info->size);
    const auto szB = static_cast<std::int64_t>(b_.info->size);
    if (!(*offA < *offB + szB && *offB < *offA + szA)) return;
    if (!inBounds(a_, *offA) || !inBounds(b_, *offB)) return;

    RaceWitness w;
    w.workItemA = linearWi(bindA);
    w.workItemB = linearWi(bindB);
    w.groupA = linearGroup(grpA_);
    w.groupB = linearGroup(grpB_);
    w.instA = a_.info->instId;
    w.instB = b_.info->instId;
    w.space = a_.info->space;
    w.baseIndex = a_.info->baseIndex;
    w.offsetA = *offA;
    w.offsetB = *offB;
    w.sizeA = a_.info->size;
    w.sizeB = b_.info->size;
    found = w;
  }

  [[nodiscard]] std::uint64_t linearWi(const SymBinding& b) const {
    const auto g0 = static_cast<std::uint64_t>(b.globalId[0]);
    const auto g1 = static_cast<std::uint64_t>(b.globalId[1]);
    const auto g2 = static_cast<std::uint64_t>(b.globalId[2]);
    return g0 + range_.global[0] * (g1 + range_.global[1] * g2);
  }

  [[nodiscard]] std::uint32_t linearGroup(
      const std::array<std::int64_t, 3>& grp) const {
    const auto g0 = static_cast<std::uint64_t>(grp[0]);
    const auto g1 = static_cast<std::uint64_t>(grp[1]);
    const auto g2 = static_cast<std::uint64_t>(grp[2]);
    return static_cast<std::uint32_t>(g0 + ng_[0] * (g1 + ng_[1] * g2));
  }

  const AccessRec& a_;
  const AccessRec& b_;
  const interp::NdRange& range_;
  const Collector& col_;
  const VerifyOptions& options_;
  std::array<std::uint64_t, 3> ng_{1, 1, 1};
  std::array<std::vector<std::int64_t>, 3> lidCand_, grpCand_;
  std::vector<int> loopsA_, loopsB_;
  std::array<std::int64_t, 3> lidA_{0, 0, 0}, grpA_{0, 0, 0};
  std::array<std::int64_t, 3> lidB_{0, 0, 0}, grpB_{0, 0, 0};
  std::unordered_map<int, std::int64_t> itersA_, itersB_;
  SymBinding base_;
  std::uint64_t budget_ = kWitnessBudget;
};

// ---------------------------------------------------------------------------
// Pair verification
// ---------------------------------------------------------------------------

enum class Proof : std::uint8_t { Independent, MayRace, NotAffine };

/// One ordered direction: instance B's ids are instance A's plus a
/// lexicographically positive delta.
Proof proveOrdered(const AccessRec& ra, const AccessRec& rb, bool global,
                   const interp::NdRange& range, const Collector& col,
                   const SymBinding* partial) {
  auto fa = dataflow::linearize(ra.info->offset.get(), partial);
  auto fb = dataflow::linearize(rb.info->offset.get(), partial);
  if (!fa || !fb) return Proof::NotAffine;
  auto da = decompose(*fa, range);
  auto db = decompose(*fb, range);
  if (!da || !db) return Proof::NotAffine;

  const auto wLo = -(static_cast<std::int64_t>(rb.info->size) - 1);
  const auto wHi = static_cast<std::int64_t>(ra.info->size) - 1;

  for (const Scenario& s : scenariosFor(global, range)) {
    EpochRelation rel;
    if (s.sameGroup) {
      rel = relateEpochs(ra.epoch, rb.epoch, col);
      if (rel.neverEqual) continue;  // barrier always orders this scenario
    } else {
      rel.usable = false;  // barriers never order distinct groups
    }
    if (!rel.usable) rel = EpochRelation{false, std::nullopt, {}, {}, false};
    bool overflow = false;
    auto diff = buildDiff(*da, *db, ra, rb, s, rel, range, col, overflow);
    if (overflow) return Proof::MayRace;
    if (!diff) continue;  // epoch tie infeasible
    if (mayHitWindow(diff->first, diff->second, wLo, wHi)) {
      return Proof::MayRace;
    }
  }
  return Proof::Independent;
}

std::string describeAccess(const MemAccessInfo& info) {
  std::ostringstream os;
  os << (info.isWrite ? "write" : "read") << " at inst " << info.instId;
  if (info.loc.line > 0) os << " (line " << info.loc.line << ")";
  return os.str();
}

}  // namespace

std::string RaceWitness::str() const {
  std::ostringstream os;
  os << "work-items " << workItemA << " and " << workItemB << " ("
     << ir::addressSpaceName(space) << " base " << baseIndex << "): inst "
     << instA << " @ byte " << offsetA << "+" << sizeA << " overlaps inst "
     << instB << " @ byte " << offsetB << "+" << sizeB;
  return os.str();
}

const char* RaceVerdict::name() const {
  switch (kind) {
    case RaceVerdictKind::RaceFree:
      return "race-free";
    case RaceVerdictKind::Racy:
      return "racy";
    case RaceVerdictKind::Unknown:
      return "unknown";
  }
  return "unknown";
}

RaceVerdict verifyRaces(const KernelSummary& summary,
                        const interp::NdRange& range,
                        const VerifyOptions& options) {
  RaceVerdict verdict;
  Collector col(summary, options);
  col.run();
  if (auto total = col.totalBarriers()) {
    verdict.barrierIntervals = static_cast<std::uint64_t>(*total) + 1;
  }
  verdict.epochsExact = col.epochsExact;

  // Partial binding folding known integer scalar arguments into the forms
  // (loop counters stay symbolic — only scalarArgs is populated).
  SymBinding partial;
  if (options.args != nullptr) {
    for (std::size_t i = 0; i < options.args->size(); ++i) {
      const interp::KernelArg& arg = (*options.args)[i];
      if (!arg.isBuffer && arg.scalar.isInt()) {
        partial.scalarArgs[static_cast<int>(i)] = arg.scalar.i;
      }
    }
  }

  std::vector<BaseId> bases;
  bases.reserve(col.records.size());
  for (const AccessRec& rec : col.records) {
    bases.push_back(baseOf(*rec.info, options.args));
  }

  for (std::size_t i = 0; i < col.records.size(); ++i) {
    const AccessRec& ra = col.records[i];
    if (bases[i].cls == BaseClass::None || ra.neverExecutes) continue;
    for (std::size_t j = i; j < col.records.size(); ++j) {
      const AccessRec& rb = col.records[j];
      if (bases[j].cls == BaseClass::None || rb.neverExecutes) continue;
      if (!ra.info->isWrite && !rb.info->isWrite) continue;
      if (bases[i].local != bases[j].local) continue;  // disjoint spaces
      const bool anyUnresolved = bases[i].cls == BaseClass::Unresolved ||
                                 bases[j].cls == BaseClass::Unresolved;
      if (!anyUnresolved && bases[i].id != bases[j].id) continue;
      if (i == j && !ra.info->isWrite) continue;

      ++verdict.pairsChecked;
      PairResult pr;
      pr.instA = ra.info->instId;
      pr.instB = rb.info->instId;

      if (anyUnresolved) {
        pr.kind = RaceVerdictKind::Unknown;
        pr.reason = "pointer base not statically resolvable";
        ++verdict.unknownPairs;
        verdict.pairs.push_back(std::move(pr));
        continue;
      }

      const bool global = !bases[i].local;
      Proof fwd = proveOrdered(ra, rb, global, range, col, &partial);
      Proof bwd = i == j ? Proof::Independent
                         : proveOrdered(rb, ra, global, range, col, &partial);
      if (fwd == Proof::Independent && bwd == Proof::Independent) {
        ++verdict.pairsProven;
        continue;
      }

      WitnessSearch search(ra, rb, range, col, options);
      if (auto w = search.run()) {
        pr.kind = RaceVerdictKind::Racy;
        pr.witness = *w;
        ++verdict.racyPairs;
        verdict.pairs.push_back(std::move(pr));
        continue;
      }
      pr.kind = RaceVerdictKind::Unknown;
      if (fwd == Proof::NotAffine || bwd == Proof::NotAffine) {
        pr.reason = "offset not affine: " + describeAccess(*ra.info) + " vs " +
                    describeAccess(*rb.info);
      } else {
        pr.reason = "not proven independent, no concrete witness: " +
                    describeAccess(*ra.info) + " vs " +
                    describeAccess(*rb.info);
      }
      ++verdict.unknownPairs;
      verdict.pairs.push_back(std::move(pr));
    }
  }

  if (verdict.racyPairs > 0) {
    verdict.kind = RaceVerdictKind::Racy;
    for (const PairResult& pr : verdict.pairs) {
      if (pr.witness) {
        verdict.reason = pr.witness->str();
        break;
      }
    }
    obs::add("analysis.race.racy");
  } else if (verdict.unknownPairs > 0) {
    verdict.kind = RaceVerdictKind::Unknown;
    for (const PairResult& pr : verdict.pairs) {
      if (pr.kind == RaceVerdictKind::Unknown) {
        verdict.reason = pr.reason;
        break;
      }
    }
    obs::add("analysis.race.unknown");
  } else {
    verdict.kind = RaceVerdictKind::RaceFree;
    obs::add("analysis.race.free");
  }
  return verdict;
}

}  // namespace flexcl::analysis::raceverify
