#include "analysis/symbolic.h"

#include <algorithm>
#include <unordered_set>

namespace flexcl::analysis {

// ---------------------------------------------------------------------------
// Expression construction / evaluation
// ---------------------------------------------------------------------------

SymExprPtr symConst(std::int64_t v) {
  auto e = std::make_shared<SymExpr>();
  e->op = SymExpr::Op::Const;
  e->value = v;
  return e;
}

SymExprPtr symLeaf(Sym s, int index) {
  auto e = std::make_shared<SymExpr>();
  e->op = SymExpr::Op::Leaf;
  e->sym = s;
  e->index = index;
  return e;
}

SymExprPtr symOpaque() {
  static const SymExprPtr opaque = [] {
    auto e = std::make_shared<SymExpr>();
    e->op = SymExpr::Op::Opaque;
    return e;
  }();
  return opaque;
}

namespace {

bool isConst(const SymExprPtr& e, std::int64_t v) {
  return e && e->op == SymExpr::Op::Const && e->value == v;
}

std::optional<std::int64_t> foldBinary(SymExpr::Op op, std::int64_t l,
                                       std::int64_t r) {
  // Decline (nullopt) instead of wrapping: a folded constant feeds trip
  // counts and offsets, where a silent wrap would be unsound.
  std::int64_t v = 0;
  switch (op) {
    case SymExpr::Op::Add:
      if (__builtin_add_overflow(l, r, &v)) return std::nullopt;
      return v;
    case SymExpr::Op::Sub:
      if (__builtin_sub_overflow(l, r, &v)) return std::nullopt;
      return v;
    case SymExpr::Op::Mul:
      if (__builtin_mul_overflow(l, r, &v)) return std::nullopt;
      return v;
    case SymExpr::Op::Div: return r == 0 ? std::nullopt : std::optional(l / r);
    case SymExpr::Op::Rem: return r == 0 ? std::nullopt : std::optional(l % r);
    case SymExpr::Op::Shl:
      if (r < 0 || r > 62 ||
          __builtin_mul_overflow(l, std::int64_t{1} << r, &v)) {
        return std::nullopt;
      }
      return v;
    case SymExpr::Op::Shr: return (r < 0 || r > 62) ? std::nullopt : std::optional(l >> r);
    case SymExpr::Op::And: return l & r;
    case SymExpr::Op::Or: return l | r;
    case SymExpr::Op::Xor: return l ^ r;
    default: return std::nullopt;
  }
}

}  // namespace

SymExprPtr symBinary(SymExpr::Op op, SymExprPtr lhs, SymExprPtr rhs) {
  if (!lhs || !rhs) return symOpaque();
  if (lhs->op == SymExpr::Op::Const && rhs->op == SymExpr::Op::Const) {
    if (auto v = foldBinary(op, lhs->value, rhs->value)) return symConst(*v);
  }
  // Identity simplifications keep offset trees small.
  if (op == SymExpr::Op::Add) {
    if (isConst(lhs, 0)) return rhs;
    if (isConst(rhs, 0)) return lhs;
  }
  if (op == SymExpr::Op::Sub && isConst(rhs, 0)) return lhs;
  if (op == SymExpr::Op::Mul) {
    if (isConst(lhs, 1)) return rhs;
    if (isConst(rhs, 1)) return lhs;
    if (isConst(lhs, 0) || isConst(rhs, 0)) return symConst(0);
  }
  auto e = std::make_shared<SymExpr>();
  e->op = op;
  e->a = std::move(lhs);
  e->b = std::move(rhs);
  return e;
}

SymExprPtr symCmp(ir::CmpPred pred, SymExprPtr lhs, SymExprPtr rhs) {
  if (!lhs || !rhs) return symOpaque();
  auto e = std::make_shared<SymExpr>();
  e->op = SymExpr::Op::Cmp;
  e->pred = pred;
  e->a = std::move(lhs);
  e->b = std::move(rhs);
  return e;
}

SymExprPtr symSelect(SymExprPtr cond, SymExprPtr thenV, SymExprPtr elseV) {
  if (!cond || !thenV || !elseV) return symOpaque();
  auto e = std::make_shared<SymExpr>();
  e->op = SymExpr::Op::Select;
  e->a = std::move(cond);
  e->b = std::move(thenV);
  e->c = std::move(elseV);
  return e;
}

std::optional<std::int64_t> symEval(const SymExpr* e, const SymBinding& bind) {
  if (!e) return std::nullopt;
  switch (e->op) {
    case SymExpr::Op::Const:
      return e->value;
    case SymExpr::Op::Leaf: {
      const int d = e->index;
      auto dim = [&](const std::array<std::int64_t, 3>& a)
          -> std::optional<std::int64_t> {
        if (d < 0 || d > 2) return std::nullopt;
        return a[static_cast<std::size_t>(d)];
      };
      switch (e->sym) {
        case Sym::GlobalId: return dim(bind.globalId);
        case Sym::LocalId: return dim(bind.localId);
        case Sym::GroupId: return dim(bind.groupId);
        case Sym::GlobalSize: return dim(bind.globalSize);
        case Sym::LocalSize: return dim(bind.localSize);
        case Sym::NumGroups: return dim(bind.numGroups);
        case Sym::ScalarArg: {
          auto it = bind.scalarArgs.find(e->index);
          if (it == bind.scalarArgs.end()) return std::nullopt;
          return it->second;
        }
        case Sym::LoopIter: {
          auto it = bind.loopIters.find(e->index);
          if (it == bind.loopIters.end()) return std::nullopt;
          return it->second;
        }
      }
      return std::nullopt;
    }
    case SymExpr::Op::Cmp: {
      auto l = symEval(e->a.get(), bind);
      auto r = symEval(e->b.get(), bind);
      if (!l || !r) return std::nullopt;
      switch (e->pred) {
        case ir::CmpPred::Eq: return *l == *r ? 1 : 0;
        case ir::CmpPred::Ne: return *l != *r ? 1 : 0;
        case ir::CmpPred::Lt: return *l < *r ? 1 : 0;
        case ir::CmpPred::Le: return *l <= *r ? 1 : 0;
        case ir::CmpPred::Gt: return *l > *r ? 1 : 0;
        case ir::CmpPred::Ge: return *l >= *r ? 1 : 0;
      }
      return std::nullopt;
    }
    case SymExpr::Op::Select: {
      auto c = symEval(e->a.get(), bind);
      if (!c) return std::nullopt;
      return symEval(*c != 0 ? e->b.get() : e->c.get(), bind);
    }
    case SymExpr::Op::Opaque:
      return std::nullopt;
    default: {
      auto l = symEval(e->a.get(), bind);
      auto r = symEval(e->b.get(), bind);
      if (!l || !r) return std::nullopt;
      return foldBinary(e->op, *l, *r);
    }
  }
}

bool symIsOpaque(const SymExpr* e) {
  if (!e) return true;
  if (e->op == SymExpr::Op::Opaque) return true;
  return (e->a && symIsOpaque(e->a.get())) || (e->b && symIsOpaque(e->b.get())) ||
         (e->c && symIsOpaque(e->c.get()));
}

bool symMentions(const SymExpr* e, Sym kind) {
  if (!e) return false;
  if (e->op == SymExpr::Op::Leaf && e->sym == kind) return true;
  return (e->a && symMentions(e->a.get(), kind)) ||
         (e->b && symMentions(e->b.get(), kind)) ||
         (e->c && symMentions(e->c.get(), kind));
}

std::string symStr(const SymExpr* e) {
  if (!e) return "?";
  switch (e->op) {
    case SymExpr::Op::Const: return std::to_string(e->value);
    case SymExpr::Op::Leaf: {
      const char* base = "?";
      switch (e->sym) {
        case Sym::GlobalId: base = "gid"; break;
        case Sym::LocalId: base = "lid"; break;
        case Sym::GroupId: base = "grp"; break;
        case Sym::GlobalSize: base = "gsz"; break;
        case Sym::LocalSize: base = "lsz"; break;
        case Sym::NumGroups: base = "ngrp"; break;
        case Sym::ScalarArg: base = "arg"; break;
        case Sym::LoopIter: base = "it"; break;
      }
      return std::string(base) + std::to_string(e->index);
    }
    case SymExpr::Op::Opaque: return "opaque";
    case SymExpr::Op::Cmp:
      return "(" + symStr(e->a.get()) + " " + ir::cmpPredName(e->pred) + " " +
             symStr(e->b.get()) + ")";
    case SymExpr::Op::Select:
      return "(" + symStr(e->a.get()) + " ? " + symStr(e->b.get()) + " : " +
             symStr(e->c.get()) + ")";
    default: {
      const char* opc = "?";
      switch (e->op) {
        case SymExpr::Op::Add: opc = "+"; break;
        case SymExpr::Op::Sub: opc = "-"; break;
        case SymExpr::Op::Mul: opc = "*"; break;
        case SymExpr::Op::Div: opc = "/"; break;
        case SymExpr::Op::Rem: opc = "%"; break;
        case SymExpr::Op::Shl: opc = "<<"; break;
        case SymExpr::Op::Shr: opc = ">>"; break;
        case SymExpr::Op::And: opc = "&"; break;
        case SymExpr::Op::Or: opc = "|"; break;
        case SymExpr::Op::Xor: opc = "^"; break;
        default: break;
      }
      return "(" + symStr(e->a.get()) + opc + symStr(e->b.get()) + ")";
    }
  }
}

namespace {

/// Structural equality with a depth cap (shared subtrees make pointer
/// equality hit the common cases first).
bool symEqual(const SymExpr* a, const SymExpr* b, int depth = 16) {
  if (a == b) return true;
  if (!a || !b || depth <= 0) return false;
  if (a->op != b->op) return false;
  switch (a->op) {
    case SymExpr::Op::Const: return a->value == b->value;
    case SymExpr::Op::Leaf: return a->sym == b->sym && a->index == b->index;
    case SymExpr::Op::Opaque: return true;
    case SymExpr::Op::Cmp:
      if (a->pred != b->pred) return false;
      [[fallthrough]];
    default:
      return symEqual(a->a.get(), b->a.get(), depth - 1) &&
             symEqual(a->b.get(), b->b.get(), depth - 1) &&
             symEqual(a->c.get(), b->c.get(), depth - 1);
  }
}

// ---------------------------------------------------------------------------
// Symbolic walker
// ---------------------------------------------------------------------------

struct PtrVal {
  PtrBase base = PtrBase::Unknown;
  int index = -1;
  const ir::Instruction* allocaInst = nullptr;
  SymExprPtr offset;  // never null
};

struct ValState {
  enum class Kind : std::uint8_t { Unknown, Int, Ptr };
  Kind kind = Kind::Unknown;
  SymExprPtr i;
  PtrVal p;

  static ValState unknown() { return {}; }
  static ValState intVal(SymExprPtr e) {
    ValState v;
    v.kind = Kind::Int;
    v.i = std::move(e);
    return v;
  }
  static ValState ptrVal(PtrVal p) {
    ValState v;
    v.kind = Kind::Ptr;
    v.p = std::move(p);
    return v;
  }
};

bool sameBase(const PtrVal& a, const PtrVal& b) {
  return a.base == b.base && a.index == b.index && a.allocaInst == b.allocaInst;
}

Sym symForQuery(ir::WiQuery q) {
  switch (q) {
    case ir::WiQuery::GlobalId: return Sym::GlobalId;
    case ir::WiQuery::LocalId: return Sym::LocalId;
    case ir::WiQuery::GroupId: return Sym::GroupId;
    case ir::WiQuery::GlobalSize: return Sym::GlobalSize;
    case ir::WiQuery::LocalSize: return Sym::LocalSize;
    case ir::WiQuery::NumGroups: return Sym::NumGroups;
  }
  return Sym::GlobalId;
}

class Walker {
 public:
  explicit Walker(const ir::Function& fn) : fn_(fn) {
    out_.fn = &fn;
    for (std::size_t i = 0; i < fn.localAllocas.size(); ++i) {
      localAllocaIndex_[fn.localAllocas[i]] = static_cast<int>(i);
    }
    computeReachable();
  }

  KernelSummary run() {
    if (const ir::Region* root = fn_.rootRegion()) {
      walkRegion(*root, &out_.roots);
    }
    return std::move(out_);
  }

 private:
  // --- reachability (skip dead blocks lowered after return/break) -----------
  void computeReachable() {
    const ir::BasicBlock* entry = fn_.entry();
    if (!entry) return;
    std::vector<const ir::BasicBlock*> worklist = {entry};
    reachable_.insert(entry);
    while (!worklist.empty()) {
      const ir::BasicBlock* bb = worklist.back();
      worklist.pop_back();
      const ir::Instruction* term = bb->terminator();
      if (!term) continue;
      for (ir::BasicBlock* t : {term->target0, term->target1}) {
        if (t && reachable_.insert(t).second) worklist.push_back(t);
      }
    }
  }

  // --- value lattice ---------------------------------------------------------
  ValState valueOf(const ir::Value* v) {
    if (!v) return ValState::unknown();
    switch (v->valueKind()) {
      case ir::Value::Kind::Constant: {
        const auto* c = static_cast<const ir::Constant*>(v);
        if (c->isFloatConstant()) return ValState::unknown();
        return ValState::intVal(symConst(c->intValue()));
      }
      case ir::Value::Kind::Argument: {
        const auto* arg = static_cast<const ir::Argument*>(v);
        const ir::Type* t = arg->type();
        if (t->isPointer()) {
          PtrVal p;
          p.index = static_cast<int>(arg->index());
          p.offset = symConst(0);
          switch (t->addressSpace()) {
            case ir::AddressSpace::Global:
            case ir::AddressSpace::Constant:
              p.base = PtrBase::BufferArg;
              return ValState::ptrVal(p);
            case ir::AddressSpace::Local:
              p.base = PtrBase::LocalArg;
              return ValState::ptrVal(p);
            default:
              return ValState::unknown();
          }
        }
        if (t->isInt() || t->isBool()) {
          return ValState::intVal(
              symLeaf(Sym::ScalarArg, static_cast<int>(arg->index())));
        }
        return ValState::unknown();
      }
      case ir::Value::Kind::Instruction: {
        const auto* inst = static_cast<const ir::Instruction*>(v);
        if (inst->opcode() == ir::Opcode::Alloca) {
          PtrVal p;
          p.allocaInst = inst;
          p.offset = symConst(0);
          if (inst->allocaSpace == ir::AddressSpace::Local) {
            p.base = PtrBase::LocalAlloca;
            auto it = localAllocaIndex_.find(inst);
            p.index = it == localAllocaIndex_.end() ? -1 : it->second;
          } else {
            p.base = PtrBase::PrivateAlloca;
          }
          return ValState::ptrVal(p);
        }
        auto it = vals_.find(inst);
        return it == vals_.end() ? ValState::unknown() : it->second;
      }
    }
    return ValState::unknown();
  }

  SymExprPtr intExprOf(const ir::Value* v) {
    ValState s = valueOf(v);
    return s.kind == ValState::Kind::Int ? s.i : symOpaque();
  }

  // --- instruction execution -------------------------------------------------
  void execBlock(const ir::BasicBlock* bb, std::vector<AccessTreeNode>* into) {
    if (!bb || !reachable_.count(bb)) return;
    for (const ir::Instruction* inst : bb->instructions()) execInst(*inst, into);
  }

  void execInst(const ir::Instruction& inst, std::vector<AccessTreeNode>* into) {
    using ir::Opcode;
    switch (inst.opcode()) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl: case Opcode::Shr: {
        SymExpr::Op op = SymExpr::Op::Opaque;
        switch (inst.opcode()) {
          case Opcode::Add: op = SymExpr::Op::Add; break;
          case Opcode::Sub: op = SymExpr::Op::Sub; break;
          case Opcode::Mul: op = SymExpr::Op::Mul; break;
          case Opcode::Div: op = SymExpr::Op::Div; break;
          case Opcode::Rem: op = SymExpr::Op::Rem; break;
          case Opcode::And: op = SymExpr::Op::And; break;
          case Opcode::Or: op = SymExpr::Op::Or; break;
          case Opcode::Xor: op = SymExpr::Op::Xor; break;
          case Opcode::Shl: op = SymExpr::Op::Shl; break;
          case Opcode::Shr: op = SymExpr::Op::Shr; break;
          default: break;
        }
        ValState l = valueOf(inst.operand(0));
        ValState r = valueOf(inst.operand(1));
        if (l.kind == ValState::Kind::Int && r.kind == ValState::Kind::Int) {
          vals_[&inst] = ValState::intVal(symBinary(op, l.i, r.i));
        } else {
          vals_[&inst] = ValState::unknown();
        }
        break;
      }
      case Opcode::ICmp: {
        ValState l = valueOf(inst.operand(0));
        ValState r = valueOf(inst.operand(1));
        if (l.kind == ValState::Kind::Int && r.kind == ValState::Kind::Int) {
          vals_[&inst] = ValState::intVal(symCmp(inst.cmpPred, l.i, r.i));
        } else {
          vals_[&inst] = ValState::unknown();
        }
        break;
      }
      case Opcode::Select: {
        ValState c = valueOf(inst.operand(0));
        ValState a = valueOf(inst.operand(1));
        ValState b = valueOf(inst.operand(2));
        if (c.kind == ValState::Kind::Int && a.kind == ValState::Kind::Int &&
            b.kind == ValState::Kind::Int) {
          vals_[&inst] = ValState::intVal(symSelect(c.i, a.i, b.i));
        } else {
          vals_[&inst] = ValState::unknown();
        }
        break;
      }
      case Opcode::Trunc: case Opcode::ZExt: case Opcode::SExt:
      case Opcode::Bitcast:
        // Width changes are transparent: offsets stay well inside 64 bits for
        // every geometry we model.
        vals_[&inst] = valueOf(inst.operand(0));
        break;
      case Opcode::PtrAdd: {
        ValState base = valueOf(inst.operand(0));
        SymExprPtr off = intExprOf(inst.operand(1));
        if (base.kind == ValState::Kind::Ptr) {
          PtrVal p = base.p;
          p.offset = symBinary(SymExpr::Op::Add, p.offset, off);
          vals_[&inst] = ValState::ptrVal(p);
        } else {
          vals_[&inst] = ValState::unknown();
        }
        break;
      }
      case Opcode::WorkItemId: {
        ValState d = valueOf(inst.operand(0));
        if (d.kind == ValState::Kind::Int && d.i->op == SymExpr::Op::Const) {
          vals_[&inst] = ValState::intVal(
              symLeaf(symForQuery(inst.wiQuery), static_cast<int>(d.i->value)));
        } else {
          vals_[&inst] = ValState::unknown();
        }
        break;
      }
      case Opcode::Call:
        vals_[&inst] = execMathCall(inst);
        break;
      case Opcode::Load:
        execLoad(inst, into);
        break;
      case Opcode::Store:
        execStore(inst, into);
        break;
      case Opcode::Barrier:
        if (recording_) {
          recordBarrier(inst);
          if (into) {
            AccessTreeNode node;
            node.kind = AccessTreeNode::Kind::Barrier;
            into->push_back(std::move(node));
          }
        }
        break;
      case Opcode::Ret:
        if (recording_ && into) {
          AccessTreeNode node;
          node.kind = AccessTreeNode::Kind::Return;
          into->push_back(std::move(node));
        }
        break;
      case Opcode::Alloca:
      case Opcode::Br: case Opcode::CondBr:
        break;
      default:
        // Float arithmetic, vector lane ops, remaining casts: not tracked.
        vals_[&inst] = ValState::unknown();
        break;
    }
  }

  ValState execMathCall(const ir::Instruction& inst) {
    // Integer min/max/abs/clamp show up in index computations; everything
    // else is numeric data the offset analysis never needs.
    const ir::Type* t = inst.type();
    if (!t || !(t->isInt() || t->isBool())) return ValState::unknown();
    auto arg = [&](std::size_t i) { return intExprOf(inst.operand(i)); };
    const auto n = inst.operands().size();
    switch (inst.mathFunc) {
      case ir::MathFunc::Min:
        if (n == 2) {
          return ValState::intVal(
              symSelect(symCmp(ir::CmpPred::Le, arg(0), arg(1)), arg(0), arg(1)));
        }
        break;
      case ir::MathFunc::Max:
        if (n == 2) {
          return ValState::intVal(
              symSelect(symCmp(ir::CmpPred::Ge, arg(0), arg(1)), arg(0), arg(1)));
        }
        break;
      case ir::MathFunc::Abs:
        if (n == 1) {
          return ValState::intVal(
              symSelect(symCmp(ir::CmpPred::Ge, arg(0), symConst(0)), arg(0),
                        symBinary(SymExpr::Op::Sub, symConst(0), arg(0))));
        }
        break;
      case ir::MathFunc::Clamp:
        if (n == 3) {
          SymExprPtr lo = symSelect(symCmp(ir::CmpPred::Ge, arg(0), arg(1)),
                                    arg(0), arg(1));
          return ValState::intVal(
              symSelect(symCmp(ir::CmpPred::Le, lo, arg(2)), lo, arg(2)));
        }
        break;
      default:
        break;
    }
    return ValState::unknown();
  }

  bool isWholeSlotAccess(const PtrVal& p, const ir::Type* accessType) const {
    return p.base == PtrBase::PrivateAlloca && p.allocaInst &&
           p.offset->op == SymExpr::Op::Const && p.offset->value == 0 &&
           p.allocaInst->allocaType == accessType;
  }

  void execLoad(const ir::Instruction& inst, std::vector<AccessTreeNode>* into) {
    ValState ptr = valueOf(inst.operand(0));
    const ir::AddressSpace space = inst.memSpace;
    if (space == ir::AddressSpace::Private) {
      if (ptr.kind == ValState::Kind::Ptr && isWholeSlotAccess(ptr.p, inst.type())) {
        auto it = slots_.find(ptr.p.allocaInst);
        vals_[&inst] = it == slots_.end() ? ValState::unknown() : it->second;
      } else {
        vals_[&inst] = ValState::unknown();
      }
      return;
    }
    recordAccess(inst, ptr, /*isWrite=*/false, into);
    vals_[&inst] = ValState::unknown();
  }

  void execStore(const ir::Instruction& inst, std::vector<AccessTreeNode>* into) {
    ValState ptr = valueOf(inst.operand(1));
    const ir::AddressSpace space = inst.memSpace;
    if (space == ir::AddressSpace::Private) {
      if (ptr.kind == ValState::Kind::Ptr) {
        if (isWholeSlotAccess(ptr.p, inst.operand(0)->type())) {
          slots_[ptr.p.allocaInst] = valueOf(inst.operand(0));
        } else if (ptr.p.base == PtrBase::PrivateAlloca && ptr.p.allocaInst) {
          // Partial write (vector lane, array element): drop what we knew.
          slots_[ptr.p.allocaInst] = ValState::unknown();
        }
      }
      return;
    }
    recordAccess(inst, ptr, /*isWrite=*/true, into);
  }

  void recordAccess(const ir::Instruction& inst, const ValState& ptr,
                    bool isWrite, std::vector<AccessTreeNode>* into) {
    if (!recording_ || !into) return;
    MemAccessInfo info;
    info.inst = &inst;
    info.instId = inst.id;
    info.loc = inst.loc;
    info.isWrite = isWrite;
    info.space = inst.memSpace;
    const ir::Type* vt = isWrite ? inst.operand(0)->type() : inst.type();
    info.size = vt ? static_cast<std::uint32_t>(vt->sizeInBytes()) : 0;
    if (ptr.kind == ValState::Kind::Ptr) {
      info.base = ptr.p.base;
      info.baseIndex = ptr.p.index;
      info.offset = ptr.p.offset;
    } else {
      info.base = PtrBase::Unknown;
      info.offset = symOpaque();
    }
    info.divergent = contextDivergent();
    AccessTreeNode node;
    node.kind = AccessTreeNode::Kind::Access;
    node.accessIndex = static_cast<int>(out_.accesses.size());
    out_.accesses.push_back(std::move(info));
    into->push_back(std::move(node));
  }

  bool contextDivergent() const {
    for (const SymExprPtr& c : condCtx_) {
      if (!c) continue;
      if (symIsOpaque(c.get()) || symMentions(c.get(), Sym::GlobalId) ||
          symMentions(c.get(), Sym::LocalId)) {
        return true;
      }
    }
    return false;
  }

  void recordBarrier(const ir::Instruction& inst) {
    BarrierFact fact;
    fact.inst = &inst;
    fact.loc = inst.loc;
    fact.underCondition = !condCtx_.empty();
    for (const SymExprPtr& c : condCtx_) {
      if (!c) continue;
      if (symMentions(c.get(), Sym::GlobalId) || symMentions(c.get(), Sym::LocalId)) {
        fact.condMentionsId = true;
      } else if (symIsOpaque(c.get())) {
        fact.condOpaque = true;
      }
      fact.conds.push_back(c);
    }
    out_.barriers.push_back(fact);
  }

  // --- region walk -----------------------------------------------------------
  SymExprPtr condOfBlock(const ir::BasicBlock* bb) {
    if (!bb) return nullptr;
    const ir::Instruction* term = bb->terminator();
    if (!term || term->opcode() != ir::Opcode::CondBr || term->operands().empty()) {
      return nullptr;
    }
    return intExprOf(term->operand(0));
  }

  void walkRegion(const ir::Region& region, std::vector<AccessTreeNode>* into) {
    switch (region.kind) {
      case ir::Region::Kind::Seq:
        for (const auto& child : region.children) walkRegion(*child, into);
        break;
      case ir::Region::Kind::Block:
        execBlock(region.block, into);
        break;
      case ir::Region::Kind::If:
        walkIf(region, into);
        break;
      case ir::Region::Kind::Loop:
        walkLoop(region, into);
        break;
    }
  }

  void walkIf(const ir::Region& region, std::vector<AccessTreeNode>* into) {
    // The cond block was walked as the preceding Block node; its terminator
    // holds the branch condition.
    SymExprPtr cond = condOfBlock(region.condBlock);
    if (!cond) cond = symOpaque();

    AccessTreeNode node;
    node.kind = AccessTreeNode::Kind::Cond;
    node.cond = cond;

    auto snapshot = slots_;
    condCtx_.push_back(cond);
    if (!region.children.empty()) walkRegion(*region.children[0], &node.children);
    node.thenCount = node.children.size();
    auto thenSlots = std::move(slots_);
    slots_ = snapshot;
    if (region.children.size() > 1) walkRegion(*region.children[1], &node.children);
    condCtx_.pop_back();

    // Join: keep slots both arms agree on, drop the rest.
    auto& elseSlots = slots_;
    std::unordered_map<const ir::Instruction*, ValState> merged;
    for (const auto& [slot, tv] : thenSlots) {
      auto it = elseSlots.find(slot);
      if (it == elseSlots.end()) continue;
      const ValState& ev = it->second;
      if (tv.kind != ev.kind) continue;
      if (tv.kind == ValState::Kind::Int && symEqual(tv.i.get(), ev.i.get())) {
        merged[slot] = tv;
      } else if (tv.kind == ValState::Kind::Ptr && sameBase(tv.p, ev.p) &&
                 symEqual(tv.p.offset.get(), ev.p.offset.get())) {
        merged[slot] = tv;
      }
    }
    slots_ = std::move(merged);

    if (recording_ && into) into->push_back(std::move(node));
  }

  /// Syntactic scan: every alloca stored anywhere under `region` (including
  /// cond/latch blocks). Used to conservatively squash nested loops during
  /// the induction probe.
  void collectStoredSlots(const ir::Region& region,
                          std::unordered_set<const ir::Instruction*>& out) {
    auto scanBlock = [&](const ir::BasicBlock* bb) {
      if (!bb) return;
      for (const ir::Instruction* inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::Store) continue;
        ValState ptr = valueOf(inst->operand(1));
        if (ptr.kind == ValState::Kind::Ptr && ptr.p.allocaInst) {
          out.insert(ptr.p.allocaInst);
        }
      }
    };
    scanBlock(region.block);
    scanBlock(region.condBlock);
    scanBlock(region.latchBlock);
    for (const auto& child : region.children) collectStoredSlots(*child, out);
  }

  /// One pass over the loop's header/body/latch. In probe mode nothing is
  /// recorded and nested loops are squashed to "clobbers everything it
  /// stores"; the slot delta tells us which slots are inductions.
  void walkLoopOnce(const ir::Region& region, bool probe,
                    std::vector<AccessTreeNode>* into, SymExprPtr* condOut,
                    std::size_t* condCountOut = nullptr) {
    const bool condFirst = region.condBlock != region.latchBlock;
    if (probe) {
      const bool savedRecording = recording_;
      recording_ = false;
      if (condFirst) execBlock(region.condBlock, nullptr);
      for (const auto& child : region.children) walkRegionProbe(*child);
      execBlock(region.latchBlock, nullptr);
      recording_ = savedRecording;
      return;
    }
    if (condFirst) {
      const std::size_t before = into ? into->size() : 0;
      execBlock(region.condBlock, into);
      if (condCountOut && into) *condCountOut = into->size() - before;
      if (condOut) *condOut = condOfBlock(region.condBlock);
    }
    condCtx_.push_back(condOut ? *condOut : nullptr);
    for (const auto& child : region.children) walkRegion(*child, into);
    if (region.latchBlock != region.condBlock) execBlock(region.latchBlock, into);
    if (!condFirst) {
      execBlock(region.condBlock, into);
      if (condOut) *condOut = condOfBlock(region.condBlock);
    }
    condCtx_.pop_back();
  }

  /// Probe-mode region walk: like walkRegion but nested loops only smash the
  /// slots they store to (no fixpoint needed to learn the outer body's shape).
  void walkRegionProbe(const ir::Region& region) {
    switch (region.kind) {
      case ir::Region::Kind::Seq:
        for (const auto& child : region.children) walkRegionProbe(*child);
        break;
      case ir::Region::Kind::Block:
        execBlock(region.block, nullptr);
        break;
      case ir::Region::Kind::If:
        walkIf(region, nullptr);
        break;
      case ir::Region::Kind::Loop: {
        std::unordered_set<const ir::Instruction*> stored;
        collectStoredSlots(region, stored);
        for (const ir::Instruction* slot : stored) {
          slots_[slot] = ValState::unknown();
        }
        break;
      }
    }
  }

  void walkLoop(const ir::Region& region, std::vector<AccessTreeNode>* into) {
    // Probe: run the body once to find induction slots (slot' = slot + const,
    // including pointer walks). Each slot is replaced by a unique opaque
    // placeholder for the probe — probing against the real entry value would
    // let constant folding destroy the additive shape (i = 0 stepping by 1
    // yields Const 1, not Add(i, 1)).
    auto entrySlots = slots_;
    // symOpaque() returns a shared singleton, which would give every slot the
    // SAME placeholder: a slot assigned from another slot (x = y) would then
    // compare pointer-equal to its own placeholder and pass as "unchanged",
    // leaking its loop-entry value into the body walk. Mint a distinct node
    // per slot so identity comparison actually distinguishes them.
    auto freshOpaque = [] {
      auto e = std::make_shared<SymExpr>();
      e->op = SymExpr::Op::Opaque;
      return e;
    };
    std::unordered_map<const ir::Instruction*, SymExprPtr> placeholders;
    for (auto& [slot, val] : slots_) {
      if (val.kind == ValState::Kind::Int) {
        placeholders[slot] = val.i = freshOpaque();
      } else if (val.kind == ValState::Kind::Ptr) {
        placeholders[slot] = val.p.offset = freshOpaque();
      }
    }
    walkLoopOnce(region, /*probe=*/true, nullptr, nullptr);

    struct Induction {
      ValState entry;
      std::int64_t step = 0;
      bool isPtr = false;
    };
    std::unordered_map<const ir::Instruction*, Induction> inductions;
    std::unordered_set<const ir::Instruction*> clobbered;

    auto stepOf = [](const SymExpr* oldE, const SymExpr* newE)
        -> std::optional<std::int64_t> {
      if (!newE) return std::nullopt;
      if (newE->op == SymExpr::Op::Add) {
        if (newE->a.get() == oldE && newE->b && newE->b->op == SymExpr::Op::Const)
          return newE->b->value;
        if (newE->b.get() == oldE && newE->a && newE->a->op == SymExpr::Op::Const)
          return newE->a->value;
      }
      if (newE->op == SymExpr::Op::Sub && newE->a.get() == oldE && newE->b &&
          newE->b->op == SymExpr::Op::Const) {
        return -newE->b->value;
      }
      return std::nullopt;
    };

    for (const auto& [slot, newVal] : slots_) {
      auto oldIt = entrySlots.find(slot);
      const ValState* oldVal = oldIt == entrySlots.end() ? nullptr : &oldIt->second;
      auto phIt = placeholders.find(slot);
      const SymExpr* ph = phIt == placeholders.end() ? nullptr : phIt->second.get();
      if (!ph || !oldVal) {
        // No placeholder: the slot held no expression at entry (Unknown, or
        // first stored inside the loop). Unknown -> Unknown is a no-change;
        // anything else is a clobber.
        if (!(oldVal && oldVal->kind == ValState::Kind::Unknown &&
              newVal.kind == ValState::Kind::Unknown)) {
          clobbered.insert(slot);
        }
        continue;
      }
      // Placeholders are compared by identity: symEqual treats any two
      // opaque nodes as equal, which would alias distinct slots.
      const bool kindAndBaseMatch =
          oldVal->kind == newVal.kind &&
          (newVal.kind != ValState::Kind::Ptr || sameBase(oldVal->p, newVal.p));
      const SymExpr* newE = newVal.kind == ValState::Kind::Int
                                ? newVal.i.get()
                                : newVal.kind == ValState::Kind::Ptr
                                      ? newVal.p.offset.get()
                                      : nullptr;
      if (kindAndBaseMatch && newE == ph) continue;  // unchanged
      if (kindAndBaseMatch) {
        if (auto s = stepOf(ph, newE)) {
          inductions[slot] = {*oldVal, *s,
                              newVal.kind == ValState::Kind::Ptr};
          continue;
        }
      }
      clobbered.insert(slot);
    }

    // Real walk: inductions become entry + step*iter, the rest is unknown.
    slots_ = std::move(entrySlots);
    SymExprPtr iter = symLeaf(Sym::LoopIter, region.loopId);
    for (const auto& [slot, ind] : inductions) {
      SymExprPtr delta =
          symBinary(SymExpr::Op::Mul, symConst(ind.step), iter);
      if (ind.isPtr) {
        PtrVal p = ind.entry.p;
        p.offset = symBinary(SymExpr::Op::Add, p.offset, delta);
        slots_[slot] = ValState::ptrVal(p);
      } else {
        slots_[slot] =
            ValState::intVal(symBinary(SymExpr::Op::Add, ind.entry.i, delta));
      }
    }
    for (const ir::Instruction* slot : clobbered) {
      slots_[slot] = ValState::unknown();
    }

    AccessTreeNode node;
    node.kind = AccessTreeNode::Kind::Loop;
    node.loopId = region.loopId;
    node.condFirst = region.condBlock != region.latchBlock;
    node.staticTrip = region.staticTripCount;
    SymExprPtr cond;
    walkLoopOnce(region, /*probe=*/false, &node.children, &cond,
                 &node.condChildCount);
    node.loopCond = cond;

    if (recording_) {
      LoopFact fact;
      fact.loopId = region.loopId;
      fact.loc = region.loc;
      fact.staticTrip = region.staticTripCount;
      fact.condSymbolic = cond && !symIsOpaque(cond.get());
      fact.dependsOnId = cond && (symMentions(cond.get(), Sym::GlobalId) ||
                                  symMentions(cond.get(), Sym::LocalId));
      out_.loops.push_back(fact);
    }

    // Post-loop slot state: a closed form needs the trip count; only the
    // statically-known case is kept, everything else turns unknown.
    for (const auto& [slot, ind] : inductions) {
      if (region.staticTripCount >= 0) {
        SymExprPtr delta = symBinary(
            SymExpr::Op::Mul, symConst(ind.step), symConst(region.staticTripCount));
        if (ind.isPtr) {
          PtrVal p = ind.entry.p;
          p.offset = symBinary(SymExpr::Op::Add, p.offset, delta);
          slots_[slot] = ValState::ptrVal(p);
        } else {
          slots_[slot] =
              ValState::intVal(symBinary(SymExpr::Op::Add, ind.entry.i, delta));
        }
      } else {
        slots_[slot] = ValState::unknown();
      }
    }

    if (recording_ && into) into->push_back(std::move(node));
  }

  const ir::Function& fn_;
  KernelSummary out_;
  std::unordered_map<const ir::Value*, ValState> vals_;
  std::unordered_map<const ir::Instruction*, ValState> slots_;
  std::unordered_map<const ir::Instruction*, int> localAllocaIndex_;
  std::unordered_set<const ir::BasicBlock*> reachable_;
  std::vector<SymExprPtr> condCtx_;
  bool recording_ = true;
};

}  // namespace

KernelSummary summarizeKernel(const ir::Function& fn) {
  return Walker(fn).run();
}

}  // namespace flexcl::analysis
