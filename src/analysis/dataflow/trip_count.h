// Profiler-free trip counts from loop exit conditions.
//
// A loop whose per-iteration condition is a non-opaque symbolic expression
// over launch-uniform leaves (NDRange sizes, bound scalar arguments and its
// own iteration counter) has one trip count for every work-item; bounded
// evaluation of the condition — mirroring the access-pattern expander's loop
// semantics exactly — resolves it without running the interpreter. This is
// the static tier between the induction matcher (Region::staticTripCount)
// and the profiler in cdfg::resolveTripCounts.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/symbolic.h"

namespace flexcl::analysis::dataflow {

/// Shared trip-count configuration (the single home of the old
/// cdfg::TripCountOptions / analysis::CrossCheckOptions fallback knobs).
struct TripCountConfig {
  /// Assumed trips for loops that neither tier resolves. Double because the
  /// model consumes profiler averages through the same slot.
  double fallbackTripCount = 16.0;
  /// Upper bound on the static condition scan and on expanded loop trips.
  std::int64_t maxStaticTrips = std::int64_t{1} << 16;

  [[nodiscard]] std::int64_t fallbackTripsInt() const {
    return fallbackTripCount <= 0 ? 0
                                  : static_cast<std::int64_t>(fallbackTripCount);
  }
};

/// Where a loop's modelled trip count came from (reported per loopId by
/// cdfg::KernelAnalysis::tripSources).
enum class TripSource : std::uint8_t {
  StaticInduction,  ///< induction matcher (Region::staticTripCount)
  StaticDataflow,   ///< this resolver
  Profile,          ///< interpreter trip-count profile
  Fallback,         ///< TripCountConfig::fallbackTripCount
};

const char* tripSourceName(TripSource s);

/// Per-loopId static trip counts (size fn->loopCount; -1 where unresolved).
/// `launch` must bind the launch-uniform leaves: global/local/numGroups sizes
/// and whatever scalar arguments are known; its id fields are ignored because
/// loops whose condition mentions any work-item id are never resolved here.
/// Loops the induction matcher already resolved keep their staticTrip.
std::vector<std::int64_t> resolveStaticTrips(const KernelSummary& summary,
                                             const SymBinding& launch,
                                             const TripCountConfig& config);

}  // namespace flexcl::analysis::dataflow
