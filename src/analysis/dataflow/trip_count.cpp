#include "analysis/dataflow/trip_count.h"

#include "obs/registry.h"

namespace flexcl::analysis::dataflow {
namespace {

/// Bounded condition scan, mirroring Expander::walkLoop: a cond-first loop
/// runs until the condition first evaluates to 0 (trips = that k); a do-loop
/// checks after the body (trips = first-false k + 1). Any evaluation failure
/// or hitting the scan cap leaves the loop unresolved.
std::int64_t scanLoop(const AccessTreeNode& loop, SymBinding& bind,
                      const TripCountConfig& config) {
  for (std::int64_t k = 0;; ++k) {
    if (k >= config.maxStaticTrips) return -1;
    bind.loopIters[loop.loopId] = k;
    const auto c = symEval(loop.loopCond.get(), bind);
    if (!c) return -1;
    if (*c == 0) return loop.condFirst ? k : k + 1;
  }
}

void resolveNode(const AccessTreeNode& node, SymBinding& bind,
                 const TripCountConfig& config,
                 std::vector<std::int64_t>* out) {
  if (node.kind == AccessTreeNode::Kind::Loop && node.loopId >= 0 &&
      node.loopId < static_cast<int>(out->size())) {
    auto& slot = (*out)[node.loopId];
    if (node.staticTrip >= 0) {
      slot = node.staticTrip;
    } else if (node.loopCond && !symIsOpaque(node.loopCond.get()) &&
               !symMentions(node.loopCond.get(), Sym::GlobalId) &&
               !symMentions(node.loopCond.get(), Sym::LocalId) &&
               !symMentions(node.loopCond.get(), Sym::GroupId)) {
      slot = scanLoop(node, bind, config);
      bind.loopIters.erase(node.loopId);
      if (slot >= 0) obs::add("analysis.dataflow.static_loops_resolved");
    }
  }
  for (const AccessTreeNode& child : node.children) {
    resolveNode(child, bind, config, out);
  }
}

}  // namespace

const char* tripSourceName(TripSource s) {
  switch (s) {
    case TripSource::StaticInduction: return "static";
    case TripSource::StaticDataflow: return "dataflow";
    case TripSource::Profile: return "profile";
    case TripSource::Fallback: return "fallback";
  }
  return "?";
}

std::vector<std::int64_t> resolveStaticTrips(const KernelSummary& summary,
                                             const SymBinding& launch,
                                             const TripCountConfig& config) {
  const int loops = summary.fn ? summary.fn->loopCount : 0;
  std::vector<std::int64_t> out(static_cast<std::size_t>(std::max(0, loops)),
                                -1);
  if (out.empty()) return out;
  SymBinding bind = launch;
  bind.loopIters.clear();  // nested conditions over other loops stay unresolved
  for (const AccessTreeNode& root : summary.roots) {
    resolveNode(root, bind, config, &out);
  }
  return out;
}

}  // namespace flexcl::analysis::dataflow
