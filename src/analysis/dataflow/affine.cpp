#include "analysis/dataflow/affine.h"

#include <algorithm>

namespace flexcl::analysis::dataflow {
namespace {

bool addChecked(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}
bool mulChecked(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}

std::optional<AffineForm> combine(const AffineForm& a, const AffineForm& b,
                                  std::int64_t bSign) {
  AffineForm r;
  if (!mulChecked(b.constant, bSign, &r.constant) ||
      !addChecked(a.constant, r.constant, &r.constant)) {
    return std::nullopt;
  }
  r.terms.reserve(a.terms.size() + b.terms.size());
  std::size_t i = 0, j = 0;
  while (i < a.terms.size() || j < b.terms.size()) {
    if (j == b.terms.size() ||
        (i < a.terms.size() && a.terms[i].leaf < b.terms[j].leaf)) {
      r.terms.push_back(a.terms[i++]);
      continue;
    }
    std::int64_t coeff;
    if (!mulChecked(b.terms[j].coeff, bSign, &coeff)) return std::nullopt;
    if (i < a.terms.size() && a.terms[i].leaf == b.terms[j].leaf) {
      if (!addChecked(a.terms[i].coeff, coeff, &coeff)) return std::nullopt;
      ++i;
    }
    if (coeff != 0) r.terms.push_back({b.terms[j].leaf, coeff});
    ++j;
  }
  return r;
}

}  // namespace

std::int64_t AffineForm::coeffOf(const LeafKey& key) const {
  for (const AffineTerm& t : terms) {
    if (t.leaf == key) return t.coeff;
  }
  return 0;
}

bool AffineForm::mentions(Sym sym) const {
  return std::any_of(terms.begin(), terms.end(),
                     [&](const AffineTerm& t) { return t.leaf.sym == sym; });
}

AffineForm AffineForm::without(const LeafKey& key) const {
  AffineForm r;
  r.constant = constant;
  for (const AffineTerm& t : terms) {
    if (!(t.leaf == key)) r.terms.push_back(t);
  }
  return r;
}

std::optional<AffineForm> addForms(const AffineForm& a, const AffineForm& b) {
  return combine(a, b, 1);
}

std::optional<AffineForm> subForms(const AffineForm& a, const AffineForm& b) {
  return combine(a, b, -1);
}

std::optional<AffineForm> scaleForm(const AffineForm& a, std::int64_t k) {
  AffineForm r;
  if (!mulChecked(a.constant, k, &r.constant)) return std::nullopt;
  if (k == 0) return r;
  r.terms.reserve(a.terms.size());
  for (const AffineTerm& t : a.terms) {
    std::int64_t coeff;
    if (!mulChecked(t.coeff, k, &coeff)) return std::nullopt;
    r.terms.push_back({t.leaf, coeff});
  }
  return r;
}

std::optional<AffineForm> linearize(const SymExpr* e,
                                    const SymBinding* partial) {
  if (!e) return std::nullopt;
  switch (e->op) {
    case SymExpr::Op::Const: {
      AffineForm r;
      r.constant = e->value;
      return r;
    }
    case SymExpr::Op::Leaf: {
      // Fold only leaves the caller explicitly bound: scalar arguments and
      // loop iterations (geometry leaves stay symbolic; a binding's zeroed
      // id defaults must not leak in as facts).
      if (partial) {
        if (e->sym == Sym::ScalarArg) {
          auto it = partial->scalarArgs.find(e->index);
          if (it != partial->scalarArgs.end()) {
            AffineForm r;
            r.constant = it->second;
            return r;
          }
        } else if (e->sym == Sym::LoopIter) {
          auto it = partial->loopIters.find(e->index);
          if (it != partial->loopIters.end()) {
            AffineForm r;
            r.constant = it->second;
            return r;
          }
        }
      }
      AffineForm r;
      r.terms.push_back({LeafKey{e->sym, e->index}, 1});
      return r;
    }
    case SymExpr::Op::Add:
    case SymExpr::Op::Sub: {
      auto a = linearize(e->a.get(), partial);
      auto b = linearize(e->b.get(), partial);
      if (!a || !b) return std::nullopt;
      return combine(*a, *b, e->op == SymExpr::Op::Add ? 1 : -1);
    }
    case SymExpr::Op::Mul: {
      auto a = linearize(e->a.get(), partial);
      auto b = linearize(e->b.get(), partial);
      if (!a || !b) return std::nullopt;
      if (a->isConstant()) return scaleForm(*b, a->constant);
      if (b->isConstant()) return scaleForm(*a, b->constant);
      return std::nullopt;
    }
    case SymExpr::Op::Shl: {
      auto a = linearize(e->a.get(), partial);
      auto b = linearize(e->b.get(), partial);
      if (!a || !b || !b->isConstant()) return std::nullopt;
      if (b->constant < 0 || b->constant > 62) return std::nullopt;
      return scaleForm(*a, std::int64_t{1} << b->constant);
    }
    case SymExpr::Op::Div:
    case SymExpr::Op::Rem:
    case SymExpr::Op::Shr:
    case SymExpr::Op::And:
    case SymExpr::Op::Or:
    case SymExpr::Op::Xor: {
      // Affine only when both sides fold to constants.
      auto a = linearize(e->a.get(), partial);
      auto b = linearize(e->b.get(), partial);
      if (!a || !b || !a->isConstant() || !b->isConstant()) return std::nullopt;
      const std::int64_t x = a->constant, y = b->constant;
      AffineForm r;
      switch (e->op) {
        case SymExpr::Op::Div:
          if (y == 0 || (x == INT64_MIN && y == -1)) return std::nullopt;
          r.constant = x / y;
          break;
        case SymExpr::Op::Rem:
          if (y == 0 || (x == INT64_MIN && y == -1)) return std::nullopt;
          r.constant = x % y;
          break;
        case SymExpr::Op::Shr:
          if (y < 0 || y > 63) return std::nullopt;
          r.constant = x >> y;
          break;
        case SymExpr::Op::And: r.constant = x & y; break;
        case SymExpr::Op::Or: r.constant = x | y; break;
        default: r.constant = x ^ y; break;
      }
      return r;
    }
    case SymExpr::Op::Cmp:
    case SymExpr::Op::Select:
    case SymExpr::Op::Opaque:
      return std::nullopt;
  }
  return std::nullopt;
}

void LeafRanges::set(const LeafKey& key, const Interval& value) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, const LeafKey& k) { return entry.first < k; });
  if (it != entries.end() && it->first == key) {
    it->second = value;
  } else {
    entries.insert(it, {key, value});
  }
}

Interval LeafRanges::of(const LeafKey& key) const {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const auto& entry, const LeafKey& k) { return entry.first < k; });
  if (it != entries.end() && it->first == key) return it->second;
  return Interval::top();
}

LeafRanges LeafRanges::fromRange(const interp::NdRange& range) {
  LeafRanges r;
  const auto gpd = range.groupsPerDim();
  for (int d = 0; d < 3; ++d) {
    const auto gsz = static_cast<std::int64_t>(range.global[d]);
    const auto lsz = static_cast<std::int64_t>(range.local[d]);
    const auto ng = static_cast<std::int64_t>(gpd[d]);
    r.set(Sym::GlobalId, d, Interval::belowCount(gsz));
    r.set(Sym::LocalId, d, Interval::belowCount(lsz));
    r.set(Sym::GroupId, d, Interval::belowCount(ng));
    r.set(Sym::GlobalSize, d, Interval::point(gsz));
    r.set(Sym::LocalSize, d, Interval::point(lsz));
    r.set(Sym::NumGroups, d, Interval::point(ng));
  }
  return r;
}

LeafRanges LeafRanges::fromReqdWorkGroupSize(
    const std::array<std::uint32_t, 3>& reqd) {
  LeafRanges r;
  if (reqd[0] == 0 && reqd[1] == 0 && reqd[2] == 0) return r;
  for (int d = 0; d < 3; ++d) {
    const std::int64_t lsz = std::max<std::int64_t>(1, reqd[d]);
    r.set(Sym::LocalId, d, Interval::belowCount(lsz));
    r.set(Sym::LocalSize, d, Interval::point(lsz));
  }
  return r;
}

Interval rangeOf(const AffineForm& form, const LeafRanges& ranges) {
  Interval acc = Interval::point(form.constant);
  for (const AffineTerm& t : form.terms) {
    acc = addI(acc, mulI(Interval::point(t.coeff), ranges.of(t.leaf)));
    if (acc.isTop()) return acc;
  }
  return acc;
}

Interval rangeOfSym(const SymExpr* e, const LeafRanges& ranges) {
  if (!e) return Interval::top();
  switch (e->op) {
    case SymExpr::Op::Const: return Interval::point(e->value);
    case SymExpr::Op::Leaf: return ranges.of(LeafKey{e->sym, e->index});
    case SymExpr::Op::Add:
      return addI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Sub:
      return subI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Mul:
      return mulI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Div:
      return divI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Rem:
      return remI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Shl:
      return shlI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Shr:
      return shrI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::And:
      return andI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Or:
      return orI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Xor:
      return xorI(rangeOfSym(e->a.get(), ranges), rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Cmp:
      return cmpI(e->pred, rangeOfSym(e->a.get(), ranges),
                  rangeOfSym(e->b.get(), ranges));
    case SymExpr::Op::Select: {
      const Interval c = rangeOfSym(e->c.get(), ranges);
      if (!c.containsZero()) return rangeOfSym(e->a.get(), ranges);
      if (c.isPoint()) return rangeOfSym(e->b.get(), ranges);  // exactly zero
      return join(rangeOfSym(e->a.get(), ranges),
                  rangeOfSym(e->b.get(), ranges));
    }
    case SymExpr::Op::Opaque: return Interval::top();
  }
  return Interval::top();
}

}  // namespace flexcl::analysis::dataflow
