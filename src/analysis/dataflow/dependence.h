// GCD/Banerjee-style array dependence testing over affine subscript pairs.
//
// Both tests reduce to one conflict equation: the byte ranges of two accesses
// overlap iff  offset₁(instance₁) − offset₂(instance₂) lands in a small
// window around zero. Instance₂ trails instance₁ by an unknown distance d
// along one axis (the linear work-item index, or a loop's iteration count);
// solving for admissible d gives either a proven distance, proven
// independence (no integer d with the leaf ranges admits a conflict — by
// interval bounds, Banerjee-style, or by divisibility, the GCD test), or
// Unknown, which callers must treat conservatively (distance 1).
#pragma once

#include "analysis/dataflow/affine.h"

namespace flexcl::analysis::dataflow {

enum class DepKind : std::uint8_t {
  Independent,  ///< proven: no conflicting pair of instances exists
  Distance,     ///< proven conflict; `distance` is the smallest admissible d
  Unknown,      ///< cannot decide — callers assume distance 1
};

struct DepResult {
  DepKind kind = DepKind::Unknown;
  std::int64_t distance = 0;
};

/// One subscript: exact affine byte offset plus access width in bytes.
struct AccessForm {
  AffineForm offset;
  std::uint32_t bytes = 0;
};

/// Cross-work-item dependence: `store` executed by work-item t, `later` by
/// work-item t+d of the same work-group (d ≥ 1). Only sound for effectively
/// one-dimensional work-groups — when the dim-1/2 local ranges in `ranges`
/// are not the point 0 the result is Unknown. LocalId0/GlobalId0 advance by
/// d between the instances; GroupId, sizes and scalar arguments are shared;
/// LoopIter leaves are per-work-item and independent. `maxDistance` should
/// be localSize0 − 1: work-items further apart sit in different groups and
/// never share local memory.
DepResult testCrossWorkItem(const AccessForm& store, const AccessForm& later,
                            const LeafRanges& ranges,
                            std::int64_t maxDistance);

/// Loop-carried dependence between iteration k of `src` and iteration k+d of
/// `dst` (d ≥ 1) of loop `loopId`, same work-item: every leaf except the
/// loop's own iteration counter is shared between the instances.
DepResult testLoopCarried(const AccessForm& src, const AccessForm& dst,
                          int loopId, const LeafRanges& ranges,
                          std::int64_t maxDistance);

}  // namespace flexcl::analysis::dataflow
