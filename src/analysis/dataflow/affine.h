// Strided-affine domain over analysis::SymExpr trees.
//
// An AffineForm is an exact linearization  c0 + Σ ci·leaf_i  of a symbolic
// byte-offset or condition operand: coefficients are int64 and every
// coefficient operation is overflow-checked, so a form either represents the
// expression exactly or linearization fails. LeafRanges binds each leaf to an
// interval (seeded from the NDRange geometry, reqd_work_group_size, scalar
// argument values and resolved loop trip counts); rangeOf evaluates a form —
// or, via rangeOfSym, an arbitrary SymExpr tree — to a sound interval.
#pragma once

#include <optional>
#include <vector>

#include "analysis/dataflow/interval.h"
#include "analysis/symbolic.h"
#include "interp/interpreter.h"

namespace flexcl::analysis::dataflow {

/// Identity of one SymExpr leaf (kind + its dimension/arg/loop index).
struct LeafKey {
  Sym sym = Sym::GlobalId;
  int index = 0;

  bool operator==(const LeafKey& o) const {
    return sym == o.sym && index == o.index;
  }
  bool operator<(const LeafKey& o) const {
    return sym != o.sym ? sym < o.sym : index < o.index;
  }
};

struct AffineTerm {
  LeafKey leaf;
  std::int64_t coeff = 0;
};

/// c0 + Σ ci·leaf_i with terms sorted by leaf and all coefficients nonzero.
struct AffineForm {
  std::vector<AffineTerm> terms;
  std::int64_t constant = 0;

  [[nodiscard]] bool isConstant() const { return terms.empty(); }
  [[nodiscard]] std::int64_t coeffOf(const LeafKey& key) const;
  [[nodiscard]] bool mentions(Sym sym) const;
  /// Form without the `key` term (for solving along one variable).
  [[nodiscard]] AffineForm without(const LeafKey& key) const;

  bool operator==(const AffineForm& o) const {
    return constant == o.constant && terms.size() == o.terms.size() &&
           std::equal(terms.begin(), terms.end(), o.terms.begin(),
                      [](const AffineTerm& a, const AffineTerm& b) {
                        return a.leaf == b.leaf && a.coeff == b.coeff;
                      });
  }
};

/// Exact linearization; nullopt for non-affine trees (products of two
/// non-constant subtrees, division, Opaque, Cmp/Select) and on any int64
/// coefficient overflow. Leaves bound to a concrete value in `partial` fold
/// into the constant (e.g. scalar arguments known at lint time).
std::optional<AffineForm> linearize(const SymExpr* e,
                                    const SymBinding* partial = nullptr);

/// Checked form arithmetic (nullopt on coefficient overflow).
std::optional<AffineForm> addForms(const AffineForm& a, const AffineForm& b);
std::optional<AffineForm> subForms(const AffineForm& a, const AffineForm& b);
std::optional<AffineForm> scaleForm(const AffineForm& a, std::int64_t k);

/// Interval environment for leaves; unbound leaves are top.
struct LeafRanges {
  std::vector<std::pair<LeafKey, Interval>> entries;  // sorted by key

  void set(const LeafKey& key, const Interval& value);
  void set(Sym sym, int index, const Interval& value) {
    set(LeafKey{sym, index}, value);
  }
  [[nodiscard]] Interval of(const LeafKey& key) const;

  /// Geometry seeding: gid_d ∈ [0, global_d-1], lid_d ∈ [0, local_d-1],
  /// group_d ∈ [0, numGroups_d-1] and the three size kinds as points.
  static LeafRanges fromRange(const interp::NdRange& range);
  /// Seeds only the local dimensions (and their derived ranges) from a
  /// reqd_work_group_size attribute; global geometry stays top.
  static LeafRanges fromReqdWorkGroupSize(
      const std::array<std::uint32_t, 3>& reqd);
};

/// Exact interval of an affine form under `ranges`: terms over distinct
/// leaves vary independently, so the sum of per-term extremes is tight.
Interval rangeOf(const AffineForm& form, const LeafRanges& ranges);

/// Sound interval of an arbitrary SymExpr tree (Opaque/unbound leaves are
/// top; interval transfer functions throughout).
Interval rangeOfSym(const SymExpr* e, const LeafRanges& ranges);

}  // namespace flexcl::analysis::dataflow
