#include "analysis/dataflow/dependence.h"

#include <algorithm>
#include <numeric>

namespace flexcl::analysis::dataflow {
namespace {

bool addChecked(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}
bool subChecked(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_sub_overflow(a, b, out);
}

std::int64_t floorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
std::int64_t ceilDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

std::uint64_t absU(std::int64_t v) {
  return v == INT64_MIN ? (1ull << 63) : static_cast<std::uint64_t>(v < 0 ? -v : v);
}

/// The conflict equation  dCoeff·d + Σ ci·vi + constant ∈ [windowLo, windowHi]
/// over d ∈ [1, maxDistance] and each vi in its interval.
struct ConflictEq {
  std::int64_t dCoeff = 0;
  std::int64_t constant = 0;
  std::vector<std::pair<std::int64_t, Interval>> vars;
  bool exact = true;

  void addVar(std::int64_t coeff, const Interval& range) {
    if (coeff == 0) return;
    if (range.isPoint()) {
      std::int64_t folded;
      if (!__builtin_mul_overflow(coeff, range.lo, &folded) &&
          addChecked(constant, folded, &constant)) {
        return;
      }
      exact = false;
      return;
    }
    vars.push_back({coeff, range});
  }
};

DepResult solve(const ConflictEq& eq, std::int64_t windowLo,
                std::int64_t windowHi, std::int64_t maxDistance) {
  DepResult unknown;
  if (!eq.exact || maxDistance < 1) return unknown;

  if (eq.vars.empty()) {
    if (eq.dCoeff == 0) {
      // Same cell for every pair of instances iff the constant difference
      // lands in the window.
      if (eq.constant >= windowLo && eq.constant <= windowHi) {
        return {DepKind::Distance, 1};
      }
      return {DepKind::Independent, 0};
    }
    // dCoeff·d ∈ [windowLo − c, windowHi − c]
    std::int64_t lo, hi;
    if (!subChecked(windowLo, eq.constant, &lo) ||
        !subChecked(windowHi, eq.constant, &hi)) {
      return unknown;
    }
    std::int64_t dMin, dMax;
    if (eq.dCoeff > 0) {
      dMin = ceilDiv(lo, eq.dCoeff);
      dMax = floorDiv(hi, eq.dCoeff);
    } else {
      dMin = ceilDiv(hi, eq.dCoeff);
      dMax = floorDiv(lo, eq.dCoeff);
    }
    dMin = std::max<std::int64_t>(dMin, 1);
    dMax = std::min(dMax, maxDistance);
    if (dMin > dMax) return {DepKind::Independent, 0};
    return {DepKind::Distance, dMin};
  }

  // Banerjee-style interval test: the reachable set of the left-hand side
  // over all admissible d and vi; if it misses the window entirely the pair
  // is independent.
  Interval reach = Interval::point(eq.constant);
  if (eq.dCoeff != 0) {
    reach = addI(reach, mulI(Interval::point(eq.dCoeff),
                             Interval::range(1, maxDistance)));
  }
  for (const auto& [coeff, range] : eq.vars) {
    reach = addI(reach, mulI(Interval::point(coeff), range));
  }
  if (!reach.isTop() && (reach.hi < windowLo || reach.lo > windowHi)) {
    return {DepKind::Independent, 0};
  }

  // GCD test: dCoeff·d + Σ ci·vi = w − constant needs g | (w − constant)
  // for g = gcd of all coefficients; a small window lets us check every w.
  if (windowHi - windowLo < 64) {
    std::uint64_t g = absU(eq.dCoeff);
    for (const auto& [coeff, range] : eq.vars) {
      g = std::gcd(g, absU(coeff));
    }
    if (g > 1) {
      bool anySolvable = false;
      for (std::int64_t w = windowLo; w <= windowHi; ++w) {
        std::int64_t rhs;
        if (!subChecked(w, eq.constant, &rhs)) {
          anySolvable = true;
          break;
        }
        if (absU(rhs) % g == 0) {
          anySolvable = true;
          break;
        }
      }
      if (!anySolvable) return {DepKind::Independent, 0};
    }
  }
  return unknown;
}

bool isDistanceLeafCrossWi(const LeafKey& leaf) {
  return (leaf.sym == Sym::LocalId || leaf.sym == Sym::GlobalId) &&
         leaf.index == 0;
}

bool isSharedLeafCrossWi(const LeafKey& leaf, const LeafRanges& ranges) {
  switch (leaf.sym) {
    case Sym::GroupId:
    case Sym::GlobalSize:
    case Sym::LocalSize:
    case Sym::NumGroups:
    case Sym::ScalarArg:
      return true;
    case Sym::LocalId:
    case Sym::GlobalId: {
      // Dim-1/2 ids are shared only when the geometry pins them to a point
      // (effectively 1-D groups); the caller has already rejected the rest.
      const Interval r = ranges.of(leaf);
      return leaf.index != 0 && r.isPoint();
    }
    case Sym::LoopIter:
      return false;  // each work-item runs its own iterations
  }
  return false;
}

/// Builds S(instance₁) − L(instance₂) where instance₂'s distance leaves read
/// leaf + d. Shared leaves cancel termwise; non-shared leaves contribute one
/// independent variable per instance.
ConflictEq buildEq(const AffineForm& s, const AffineForm& l,
                   const LeafRanges& ranges,
                   bool (*isDistance)(const LeafKey&, int), int axisIndex,
                   bool (*isShared)(const LeafKey&, const LeafRanges&)) {
  ConflictEq eq;
  if (!subChecked(s.constant, l.constant, &eq.constant)) {
    eq.exact = false;
    return eq;
  }
  // Store-side terms.
  for (const AffineTerm& t : s.terms) {
    const std::int64_t cl = l.coeffOf(t.leaf);
    if (isDistance(t.leaf, axisIndex) || isShared(t.leaf, ranges)) {
      std::int64_t diff;
      if (!subChecked(t.coeff, cl, &diff)) {
        eq.exact = false;
        return eq;
      }
      eq.addVar(diff, ranges.of(t.leaf));
    } else {
      eq.addVar(t.coeff, ranges.of(t.leaf));
      if (cl != 0) {
        std::int64_t neg;
        if (!subChecked(0, cl, &neg)) {
          eq.exact = false;
          return eq;
        }
        eq.addVar(neg, ranges.of(t.leaf));
      }
    }
    // The later instance's distance leaves read leaf + d: subtracting
    // cl·(leaf + d) contributes −cl·d on top of the termwise difference.
    if (isDistance(t.leaf, axisIndex)) {
      std::int64_t dc;
      if (!subChecked(eq.dCoeff, cl, &dc)) {
        eq.exact = false;
        return eq;
      }
      eq.dCoeff = dc;
    }
  }
  // Load-side-only terms.
  for (const AffineTerm& t : l.terms) {
    if (s.coeffOf(t.leaf) != 0) continue;  // handled above
    std::int64_t neg;
    if (!subChecked(0, t.coeff, &neg)) {
      eq.exact = false;
      return eq;
    }
    // Shared or not, a load-only term has no store-side counterpart to
    // cancel against: it contributes one variable either way.
    eq.addVar(neg, ranges.of(t.leaf));
    if (isDistance(t.leaf, axisIndex)) {
      std::int64_t dc;
      if (!addChecked(eq.dCoeff, neg, &dc)) {
        eq.exact = false;
        return eq;
      }
      eq.dCoeff = dc;
    }
  }
  return eq;
}

bool crossWiDistance(const LeafKey& leaf, int) {
  return isDistanceLeafCrossWi(leaf);
}
bool crossWiShared(const LeafKey& leaf, const LeafRanges& ranges) {
  return isSharedLeafCrossWi(leaf, ranges);
}

bool loopDistance(const LeafKey& leaf, int loopId) {
  return leaf.sym == Sym::LoopIter && leaf.index == loopId;
}
bool loopShared(const LeafKey&, const LeafRanges&) {
  return true;  // same work-item, same enclosing iteration: all leaves shared
}

DepResult testPair(const AccessForm& first, const AccessForm& second,
                   const LeafRanges& ranges,
                   bool (*isDistance)(const LeafKey&, int), int axisIndex,
                   bool (*isShared)(const LeafKey&, const LeafRanges&),
                   std::int64_t maxDistance) {
  if (first.bytes == 0 || second.bytes == 0) return {};
  const ConflictEq eq =
      buildEq(first.offset, second.offset, ranges, isDistance, axisIndex, isShared);
  // Byte ranges [S, S+sb) and [L, L+lb) overlap iff S−L ∈ (−lb, sb).
  return solve(eq, -static_cast<std::int64_t>(second.bytes) + 1,
               static_cast<std::int64_t>(first.bytes) - 1, maxDistance);
}

}  // namespace

DepResult testCrossWorkItem(const AccessForm& store, const AccessForm& later,
                            const LeafRanges& ranges,
                            std::int64_t maxDistance) {
  // Only effectively 1-D work-groups: the linear work-item order then
  // advances lid0 (and gid0 within the group) by exactly d.
  for (int d = 1; d < 3; ++d) {
    const Interval lid = ranges.of(LeafKey{Sym::LocalId, d});
    if (!(lid.isPoint() && lid.lo == 0)) return {};
  }
  return testPair(store, later, ranges, crossWiDistance, 0, crossWiShared,
                  maxDistance);
}

DepResult testLoopCarried(const AccessForm& src, const AccessForm& dst,
                          int loopId, const LeafRanges& ranges,
                          std::int64_t maxDistance) {
  return testPair(src, dst, ranges, loopDistance, loopId, loopShared,
                  maxDistance);
}

}  // namespace flexcl::analysis::dataflow
