// Signed interval (value-range) domain with a known-bits refinement.
//
// The dataflow engine and the affine range evaluator both compute over
// inclusive signed 64-bit intervals. Every transfer function is conservative:
// when a result could exceed int64 (the analysis' model of the IR's integer
// semantics) the interval degrades to top instead of wrapping, so a range
// never under-approximates the concrete value set. KnownBits tracks bits
// proven zero/one across all executions; intervals and bits refine each other
// through AbstractInt::normalized().
#pragma once

#include <cstdint>
#include <string>

#include "ir/ir.h"

namespace flexcl::analysis::dataflow {

struct Interval {
  static constexpr std::int64_t kMin = INT64_MIN;
  static constexpr std::int64_t kMax = INT64_MAX;

  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  static Interval top() { return {kMin, kMax}; }
  static Interval point(std::int64_t v) { return {v, v}; }
  static Interval range(std::int64_t lo, std::int64_t hi) { return {lo, hi}; }
  /// [0, n-1]; top when n <= 0.
  static Interval belowCount(std::int64_t n);

  [[nodiscard]] bool isTop() const { return lo == kMin && hi == kMax; }
  [[nodiscard]] bool isPoint() const { return lo == hi; }
  [[nodiscard]] bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  [[nodiscard]] bool containsZero() const { return contains(0); }
  [[nodiscard]] bool isNonNegative() const { return lo >= 0; }
  /// Width as unsigned distance; kMax when it would overflow.
  [[nodiscard]] std::uint64_t width() const;

  bool operator==(const Interval& o) const { return lo == o.lo && hi == o.hi; }
  bool operator!=(const Interval& o) const { return !(*this == o); }

  [[nodiscard]] std::string str() const;
};

/// Least upper bound (interval hull).
Interval join(const Interval& a, const Interval& b);
/// Standard widening: bounds that grew jump to ±∞ so loops converge.
Interval widen(const Interval& prev, const Interval& next);
/// Intersection; when the intersection is empty the *refining* operand is
/// ignored (returns `a`) — refinement must never manufacture bottom.
Interval meet(const Interval& a, const Interval& b);

// Transfer functions. All are sound over int64: any possible overflow of the
// concrete op yields top (the concrete IR value would have wrapped; we give
// up rather than model the wrap).
Interval addI(const Interval& a, const Interval& b);
Interval subI(const Interval& a, const Interval& b);
Interval mulI(const Interval& a, const Interval& b);
/// Signed division. Divisor ranges containing zero are handled by excluding
/// zero from the divisor (division by zero has no defined result to bound);
/// a divisor of exactly [0,0] yields top.
Interval divI(const Interval& a, const Interval& b);
/// Signed remainder, same zero-divisor policy as divI.
Interval remI(const Interval& a, const Interval& b);
Interval shlI(const Interval& a, const Interval& b);
Interval shrI(const Interval& a, const Interval& b);
Interval andI(const Interval& a, const Interval& b);
Interval orI(const Interval& a, const Interval& b);
Interval xorI(const Interval& a, const Interval& b);
Interval negI(const Interval& a);
Interval minI(const Interval& a, const Interval& b);
Interval maxI(const Interval& a, const Interval& b);

/// Comparison result as a 0/1 interval: [1,1] proven true, [0,0] proven
/// false, [0,1] undecided.
Interval cmpI(ir::CmpPred pred, const Interval& a, const Interval& b);

/// Refines `a` under the assumption `pred(a, b)` holds (branch refinement).
Interval assumeCmp(ir::CmpPred pred, const Interval& a, const Interval& b);

/// Bits proven equal across every concrete execution. `zeros` has a 1 for
/// every bit known to be 0, `ones` for every bit known to be 1; the two masks
/// are disjoint. Default: nothing known.
struct KnownBits {
  std::uint64_t zeros = 0;
  std::uint64_t ones = 0;

  [[nodiscard]] bool isUnknown() const { return zeros == 0 && ones == 0; }
  bool operator==(const KnownBits& o) const {
    return zeros == o.zeros && ones == o.ones;
  }
};

KnownBits joinBits(const KnownBits& a, const KnownBits& b);
KnownBits andBits(const KnownBits& a, const KnownBits& b);
KnownBits orBits(const KnownBits& a, const KnownBits& b);
KnownBits xorBits(const KnownBits& a, const KnownBits& b);
/// Shift by a constant amount in [0, 63]; anything else returns unknown.
KnownBits shlBits(const KnownBits& a, const Interval& amount);
KnownBits shrBits(const KnownBits& a, const Interval& amount);
KnownBits bitsOfConstant(std::int64_t v);

/// The product domain: an interval and the bits known of the same value,
/// each refining the other.
struct AbstractInt {
  Interval range = Interval::top();
  KnownBits bits;

  static AbstractInt top() { return {}; }
  static AbstractInt point(std::int64_t v) {
    return {Interval::point(v), bitsOfConstant(v)};
  }
  static AbstractInt fromRange(const Interval& r) { return {r, {}}; }

  [[nodiscard]] bool isPoint() const { return range.isPoint(); }

  /// Cross-refines: a non-negative range with hi < 2^k proves the bits above
  /// k zero; known bits bounding the value tighten the range.
  [[nodiscard]] AbstractInt normalized() const;

  bool operator==(const AbstractInt& o) const {
    return range == o.range && bits == o.bits;
  }
};

AbstractInt joinA(const AbstractInt& a, const AbstractInt& b);
AbstractInt widenA(const AbstractInt& prev, const AbstractInt& next);

}  // namespace flexcl::analysis::dataflow
