#include "analysis/dataflow/interval.h"

#include <algorithm>
#include <sstream>

namespace flexcl::analysis::dataflow {
namespace {

/// Checked int64 arithmetic: false means the mathematical result does not fit
/// (the concrete machine value would have wrapped; callers degrade to top).
bool addChecked(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}
bool subChecked(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_sub_overflow(a, b, out);
}
bool mulChecked(std::int64_t a, std::int64_t b, std::int64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}

constexpr std::uint64_t kSignBit = 1ull << 63;

std::uint64_t highMask(std::int64_t s) {
  return s <= 0 ? 0 : ~0ull << (64 - s);
}

}  // namespace

Interval Interval::belowCount(std::int64_t n) {
  if (n <= 0) return top();
  return {0, n - 1};
}

std::uint64_t Interval::width() const {
  return static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
}

std::string Interval::str() const {
  std::ostringstream os;
  os << '[';
  if (lo == kMin) os << "-inf"; else os << lo;
  os << ", ";
  if (hi == kMax) os << "+inf"; else os << hi;
  os << ']';
  return os.str();
}

Interval join(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval widen(const Interval& prev, const Interval& next) {
  Interval r = prev;
  if (next.lo < prev.lo) r.lo = Interval::kMin;
  if (next.hi > prev.hi) r.hi = Interval::kMax;
  return r;
}

Interval meet(const Interval& a, const Interval& b) {
  Interval r{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  if (r.lo > r.hi) return a;  // contradiction: keep the unrefined operand
  return r;
}

Interval addI(const Interval& a, const Interval& b) {
  Interval r;
  if (!addChecked(a.lo, b.lo, &r.lo) || !addChecked(a.hi, b.hi, &r.hi)) {
    return Interval::top();
  }
  return r;
}

Interval subI(const Interval& a, const Interval& b) {
  Interval r;
  if (!subChecked(a.lo, b.hi, &r.lo) || !subChecked(a.hi, b.lo, &r.hi)) {
    return Interval::top();
  }
  return r;
}

Interval mulI(const Interval& a, const Interval& b) {
  const std::int64_t as[2] = {a.lo, a.hi};
  const std::int64_t bs[2] = {b.lo, b.hi};
  std::int64_t lo = Interval::kMax, hi = Interval::kMin;
  for (std::int64_t x : as) {
    for (std::int64_t y : bs) {
      std::int64_t p;
      if (!mulChecked(x, y, &p)) return Interval::top();
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  return {lo, hi};
}

namespace {

/// Division corners for a divisor interval entirely on one side of zero.
bool divCorners(const Interval& a, const Interval& b, std::int64_t* lo,
                std::int64_t* hi) {
  const std::int64_t as[2] = {a.lo, a.hi};
  const std::int64_t bs[2] = {b.lo, b.hi};
  for (std::int64_t x : as) {
    for (std::int64_t y : bs) {
      if (x == Interval::kMin && y == -1) return false;  // the one UB quotient
      const std::int64_t q = x / y;
      *lo = std::min(*lo, q);
      *hi = std::max(*hi, q);
    }
  }
  return true;
}

}  // namespace

Interval divI(const Interval& a, const Interval& b) {
  std::int64_t lo = Interval::kMax, hi = Interval::kMin;
  bool any = false;
  if (b.lo <= -1) {  // negative part of the divisor
    if (!divCorners(a, {b.lo, std::min<std::int64_t>(b.hi, -1)}, &lo, &hi)) {
      return Interval::top();
    }
    any = true;
  }
  if (b.hi >= 1) {  // positive part
    if (!divCorners(a, {std::max<std::int64_t>(b.lo, 1), b.hi}, &lo, &hi)) {
      return Interval::top();
    }
    any = true;
  }
  if (!any) return Interval::top();  // divisor is exactly [0, 0]
  return {lo, hi};
}

Interval remI(const Interval& a, const Interval& b) {
  if (b.lo == 0 && b.hi == 0) return Interval::top();
  if (a.isPoint() && b.isPoint()) {
    if (b.lo == -1) return Interval::point(0);  // also covers kMin % -1 (UB)
    return Interval::point(a.lo % b.lo);
  }
  // |a % b| < max(|b.lo|, |b.hi|); the sign follows the dividend.
  std::uint64_t mag = std::max(
      b.lo == Interval::kMin ? kSignBit : static_cast<std::uint64_t>(b.lo < 0 ? -b.lo : b.lo),
      b.hi == Interval::kMin ? kSignBit : static_cast<std::uint64_t>(b.hi < 0 ? -b.hi : b.hi));
  const std::int64_t bound =
      mag == 0 ? 0
               : static_cast<std::int64_t>(
                     std::min<std::uint64_t>(mag - 1, Interval::kMax));
  Interval r{-bound, bound};
  if (a.lo >= 0) r.lo = 0;
  if (a.hi <= 0) r.hi = 0;
  // The remainder's magnitude never exceeds the dividend's.
  if (a.lo >= 0) r.hi = std::min(r.hi, a.hi);
  if (a.hi <= 0) r.lo = std::max(r.lo, a.lo);
  return r;
}

Interval shlI(const Interval& a, const Interval& b) {
  if (b.lo < 0 || b.hi > 63) return Interval::top();
  std::int64_t lo = Interval::kMax, hi = Interval::kMin;
  const std::int64_t ss[2] = {b.lo, b.hi};
  const std::int64_t as[2] = {a.lo, a.hi};
  for (std::int64_t s : ss) {
    if (s == 63) return Interval::top();  // 1 << 63 is not an int64 factor
    const std::int64_t factor = std::int64_t{1} << s;
    for (std::int64_t x : as) {
      std::int64_t p;
      if (!mulChecked(x, factor, &p)) return Interval::top();
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  return {lo, hi};
}

Interval shrI(const Interval& a, const Interval& b) {
  if (b.lo < 0 || b.hi > 63) return Interval::top();
  std::int64_t lo = Interval::kMax, hi = Interval::kMin;
  const std::int64_t ss[2] = {b.lo, b.hi};
  const std::int64_t as[2] = {a.lo, a.hi};
  for (std::int64_t s : ss) {
    for (std::int64_t x : as) {
      const std::int64_t q = x >> s;  // arithmetic shift
      lo = std::min(lo, q);
      hi = std::max(hi, q);
    }
  }
  return {lo, hi};
}

Interval andI(const Interval& a, const Interval& b) {
  if (a.lo < 0 || b.lo < 0) return Interval::top();
  return {0, std::min(a.hi, b.hi)};
}

Interval orI(const Interval& a, const Interval& b) {
  if (a.lo < 0 || b.lo < 0) return Interval::top();
  std::int64_t hi;
  if (!addChecked(a.hi, b.hi, &hi)) return Interval::top();  // or <= a + b
  return {std::max(a.lo, b.lo), hi};
}

Interval xorI(const Interval& a, const Interval& b) {
  if (a.lo < 0 || b.lo < 0) return Interval::top();
  std::int64_t hi;
  if (!addChecked(a.hi, b.hi, &hi)) return Interval::top();
  return {0, hi};
}

Interval negI(const Interval& a) { return subI(Interval::point(0), a); }

Interval minI(const Interval& a, const Interval& b) {
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval maxI(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval cmpI(ir::CmpPred pred, const Interval& a, const Interval& b) {
  auto verdict = [](bool provedTrue, bool provedFalse) {
    if (provedTrue) return Interval::point(1);
    if (provedFalse) return Interval::point(0);
    return Interval::range(0, 1);
  };
  switch (pred) {
    case ir::CmpPred::Lt: return verdict(a.hi < b.lo, a.lo >= b.hi);
    case ir::CmpPred::Le: return verdict(a.hi <= b.lo, a.lo > b.hi);
    case ir::CmpPred::Gt: return verdict(a.lo > b.hi, a.hi <= b.lo);
    case ir::CmpPred::Ge: return verdict(a.lo >= b.hi, a.hi < b.lo);
    case ir::CmpPred::Eq:
      return verdict(a.isPoint() && b.isPoint() && a.lo == b.lo,
                     a.hi < b.lo || b.hi < a.lo);
    case ir::CmpPred::Ne:
      return verdict(a.hi < b.lo || b.hi < a.lo,
                     a.isPoint() && b.isPoint() && a.lo == b.lo);
  }
  return Interval::range(0, 1);
}

Interval assumeCmp(ir::CmpPred pred, const Interval& a, const Interval& b) {
  Interval r = a;
  switch (pred) {
    case ir::CmpPred::Lt:
      if (b.hi > Interval::kMin) r.hi = std::min(r.hi, b.hi - 1);
      break;
    case ir::CmpPred::Le:
      r.hi = std::min(r.hi, b.hi);
      break;
    case ir::CmpPred::Gt:
      if (b.lo < Interval::kMax) r.lo = std::max(r.lo, b.lo + 1);
      break;
    case ir::CmpPred::Ge:
      r.lo = std::max(r.lo, b.lo);
      break;
    case ir::CmpPred::Eq:
      return meet(a, b);
    case ir::CmpPred::Ne:
      if (b.isPoint()) {
        if (a.lo == b.lo && a.lo < Interval::kMax) r.lo = a.lo + 1;
        if (a.hi == b.lo && a.hi > Interval::kMin) r.hi = a.hi - 1;
      }
      break;
  }
  if (r.lo > r.hi) return a;  // contradiction: path is dead, keep a
  return r;
}

KnownBits joinBits(const KnownBits& a, const KnownBits& b) {
  return {a.zeros & b.zeros, a.ones & b.ones};
}

KnownBits andBits(const KnownBits& a, const KnownBits& b) {
  return {a.zeros | b.zeros, a.ones & b.ones};
}

KnownBits orBits(const KnownBits& a, const KnownBits& b) {
  return {a.zeros & b.zeros, a.ones | b.ones};
}

KnownBits xorBits(const KnownBits& a, const KnownBits& b) {
  const std::uint64_t known = (a.zeros | a.ones) & (b.zeros | b.ones);
  const std::uint64_t value = a.ones ^ b.ones;
  return {known & ~value, known & value};
}

KnownBits shlBits(const KnownBits& a, const Interval& amount) {
  if (!amount.isPoint() || amount.lo < 0 || amount.lo > 63) return {};
  const auto s = amount.lo;
  return {(a.zeros << s) | (s > 0 ? (1ull << s) - 1 : 0), a.ones << s};
}

KnownBits shrBits(const KnownBits& a, const Interval& amount) {
  if (!amount.isPoint() || amount.lo < 0 || amount.lo > 63) return {};
  const auto s = amount.lo;
  const std::uint64_t fill = highMask(s);
  if (a.zeros & kSignBit) return {(a.zeros >> s) | fill, a.ones >> s};
  if (a.ones & kSignBit) return {a.zeros >> s, (a.ones >> s) | fill};
  return {(a.zeros >> s) & ~fill, (a.ones >> s) & ~fill};
}

KnownBits bitsOfConstant(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  return {~u, u};
}

AbstractInt AbstractInt::normalized() const {
  AbstractInt r = *this;
  // Range -> bits: a value in [0, hi] has every bit above bit_width(hi) zero.
  if (r.range.lo >= 0) {
    const auto hiU = static_cast<std::uint64_t>(r.range.hi);
    int k = 0;
    while (k < 63 && (hiU >> k) != 0) ++k;
    r.bits.zeros |= k >= 63 ? kSignBit : ~((1ull << k) - 1);
    r.bits.zeros &= ~r.bits.ones;
  }
  if (r.range.isPoint()) r.bits = bitsOfConstant(r.range.lo);
  // Bits -> range: with a known sign bit, unknown bits at 0 / 1 give the
  // extreme patterns, and uint64 order equals int64 order.
  if ((r.bits.zeros | r.bits.ones) & kSignBit) {
    const auto lo = static_cast<std::int64_t>(r.bits.ones);
    const auto hi = static_cast<std::int64_t>(~r.bits.zeros);
    r.range = meet(r.range, {lo, hi});
  }
  return r;
}

AbstractInt joinA(const AbstractInt& a, const AbstractInt& b) {
  return {join(a.range, b.range), joinBits(a.bits, b.bits)};
}

AbstractInt widenA(const AbstractInt& prev, const AbstractInt& next) {
  // KnownBits is a finite lattice: plain join already converges.
  return {widen(prev.range, next.range), joinBits(prev.bits, next.bits)};
}

}  // namespace flexcl::analysis::dataflow
