// Worklist-driven forward dataflow engine over the lowered IR.
//
// Computes one AbstractInt (interval + known bits) per instruction by
// iterating the CFG to a fixpoint. Private scalar slots (alloca + load/store,
// the IR's substitute for SSA phis) are tracked as part of the per-block
// abstract state, so loop induction variables and branch-refined bounds flow
// through memory the same way registers do. Geometry facts (NDRange sizes,
// reqd_work_group_size, scalar argument values) enter through the LeafRanges
// seed; every transfer function mirrors the interpreter's normalizeInt
// semantics, degrading to the full type range when a value could wrap.
#pragma once

#include <vector>

#include "analysis/dataflow/affine.h"
#include "ir/ir.h"

namespace flexcl::analysis::dataflow {

/// Fixpoint result: one abstract value per instruction id. Instructions that
/// produce no integer value (floats, pointers, terminators) are top.
struct ValueRangeResult {
  std::vector<AbstractInt> values;

  [[nodiscard]] AbstractInt abstractOf(const ir::Instruction& inst) const {
    return inst.id < values.size() ? values[inst.id] : AbstractInt::top();
  }
  [[nodiscard]] Interval rangeOf(const ir::Instruction& inst) const {
    return abstractOf(inst).range;
  }
};

/// Runs the engine over a lowered, renumbered kernel. `seed` supplies the
/// ranges of WorkItemId queries (by dimension) and integer scalar arguments
/// (Sym::ScalarArg by argument index); unbound leaves are top.
ValueRangeResult analyzeRanges(const ir::Function& fn, const LeafRanges& seed);

}  // namespace flexcl::analysis::dataflow
