#include "analysis/dataflow/engine.h"

#include <deque>
#include <unordered_map>

namespace flexcl::analysis::dataflow {
namespace {

using ir::Opcode;

/// Value set of an integer type after normalizeInt: signed types sign-extend,
/// unsigned types below 64 bits zero-extend. 64-bit values are stored as raw
/// int64 bit patterns, so unsigned 64-bit admits negatives — top.
Interval typeInterval(const ir::Type* t) {
  if (!t) return Interval::top();
  if (t->isBool()) return {0, 1};
  if (!t->isInt()) return Interval::top();
  const unsigned b = t->bits();
  if (b >= 64) return Interval::top();
  if (t->isSigned()) {
    const std::int64_t hi = (std::int64_t{1} << (b - 1)) - 1;
    return {-hi - 1, hi};
  }
  return {0, (std::int64_t{1} << b) - 1};
}

/// Mirrors normalizeInt: a computed range inside the type's value set passes
/// through; anything that could wrap degrades to the full type range.
AbstractInt clampToType(const AbstractInt& v, const ir::Type* t) {
  const Interval tr = typeInterval(t);
  if (tr.isTop()) return v.normalized();
  if (v.range.lo >= tr.lo && v.range.hi <= tr.hi) return v.normalized();
  return AbstractInt::fromRange(tr).normalized();
}

/// True when a value of this type is interpreted unsigned but may be stored
/// as a negative int64 (unsigned 64-bit): unsigned div/rem/shift/compare
/// transfer functions are then unsound on the signed range.
bool unsignedWide(const ir::Type* t) {
  return t && t->isInt() && !t->isSigned() && t->bits() >= 64;
}

Sym symOfQuery(ir::WiQuery q) {
  switch (q) {
    case ir::WiQuery::GlobalId: return Sym::GlobalId;
    case ir::WiQuery::LocalId: return Sym::LocalId;
    case ir::WiQuery::GroupId: return Sym::GroupId;
    case ir::WiQuery::GlobalSize: return Sym::GlobalSize;
    case ir::WiQuery::LocalSize: return Sym::LocalSize;
    case ir::WiQuery::NumGroups: return Sym::NumGroups;
  }
  return Sym::GlobalId;
}

ir::CmpPred swapPred(ir::CmpPred p) {
  switch (p) {
    case ir::CmpPred::Lt: return ir::CmpPred::Gt;
    case ir::CmpPred::Le: return ir::CmpPred::Ge;
    case ir::CmpPred::Gt: return ir::CmpPred::Lt;
    case ir::CmpPred::Ge: return ir::CmpPred::Le;
    default: return p;
  }
}

ir::CmpPred negatePred(ir::CmpPred p) {
  switch (p) {
    case ir::CmpPred::Eq: return ir::CmpPred::Ne;
    case ir::CmpPred::Ne: return ir::CmpPred::Eq;
    case ir::CmpPred::Lt: return ir::CmpPred::Ge;
    case ir::CmpPred::Le: return ir::CmpPred::Gt;
    case ir::CmpPred::Gt: return ir::CmpPred::Le;
    case ir::CmpPred::Ge: return ir::CmpPred::Lt;
  }
  return p;
}

/// Abs with the INT64_MIN wrap (negation overflows) degraded to top.
Interval absRange(const Interval& a) {
  if (a.lo == Interval::kMin) return Interval::top();
  if (a.lo >= 0) return a;
  if (a.hi <= 0) return negI(a);
  return join(Interval::range(0, a.hi), negI(Interval::range(a.lo, -1)));
}

class Engine {
 public:
  Engine(const ir::Function& fn, const LeafRanges& seed) : fn_(fn), seed_(seed) {
    values_.assign(fn.instructionCount(), AbstractInt::top());
    for (ir::Instruction* a : fn.privateAllocas) {
      if (a->allocaType && (a->allocaType->isInt() || a->allocaType->isBool())) {
        slotIndex_[a] = static_cast<int>(slotCount_++);
      }
    }
  }

  ValueRangeResult run() {
    const auto& blocks = fn_.blocks();
    const std::size_t n = blocks.size();
    entry_.assign(n, Env(slotCount_, AbstractInt::top()));
    reachable_.assign(n, false);
    visits_.assign(n, 0);
    if (n == 0) return {std::move(values_)};

    reachable_[fn_.entry()->id] = true;
    std::deque<const ir::BasicBlock*> worklist{fn_.entry()};
    // Widening makes the chain finite; the cap is a safety net only. If it
    // ever trips, every result degrades to top (a partial fixpoint would
    // under-approximate).
    const std::size_t cap = (n + 1) * 256;
    std::size_t processed = 0;
    while (!worklist.empty()) {
      if (++processed > cap) {
        values_.assign(values_.size(), AbstractInt::top());
        break;
      }
      const ir::BasicBlock* bb = worklist.front();
      worklist.pop_front();
      ++visits_[bb->id];
      transferBlock(*bb, [&](const ir::BasicBlock* succ, const Env& out) {
        if (!succ) return;
        const unsigned id = succ->id;
        if (!reachable_[id]) {
          reachable_[id] = true;
          entry_[id] = out;
          worklist.push_back(succ);
          return;
        }
        Env merged = entry_[id];
        bool changed = false;
        for (std::size_t s = 0; s < slotCount_; ++s) {
          AbstractInt next = joinA(merged[s], out[s]);
          if (visits_[id] > kWidenAfter) next = widenA(merged[s], next);
          if (!(next == merged[s])) {
            merged[s] = next;
            changed = true;
          }
        }
        if (changed) {
          entry_[id] = std::move(merged);
          worklist.push_back(succ);
        }
      });
    }
    return {std::move(values_)};
  }

 private:
  using Env = std::vector<AbstractInt>;
  static constexpr int kWidenAfter = 3;

  AbstractInt valueOf(const ir::Value* v) const {
    switch (v->valueKind()) {
      case ir::Value::Kind::Constant: {
        const auto* c = static_cast<const ir::Constant*>(v);
        if (c->isFloatConstant()) return AbstractInt::top();
        return AbstractInt::point(c->intValue());
      }
      case ir::Value::Kind::Argument: {
        const ir::Type* t = v->type();
        if (!t->isInt() && !t->isBool()) return AbstractInt::top();
        const auto* arg = static_cast<const ir::Argument*>(v);
        const Interval r =
            seed_.of(LeafKey{Sym::ScalarArg, static_cast<int>(arg->index())});
        return clampToType(AbstractInt::fromRange(r), t);
      }
      case ir::Value::Kind::Instruction: {
        const auto* inst = static_cast<const ir::Instruction*>(v);
        return inst->id < values_.size() ? values_[inst->id]
                                         : AbstractInt::top();
      }
    }
    return AbstractInt::top();
  }

  /// The private alloca a pointer value ultimately addresses; null when the
  /// base cannot be identified.
  const ir::Instruction* baseAllocaOf(const ir::Value* v) const {
    while (v && v->valueKind() == ir::Value::Kind::Instruction) {
      const auto* inst = static_cast<const ir::Instruction*>(v);
      if (inst->opcode() == Opcode::Alloca) return inst;
      if (inst->opcode() != Opcode::PtrAdd) return nullptr;
      v = inst->operand(0);
    }
    return nullptr;
  }

  int trackedSlotOf(const ir::Value* addr) const {
    if (!addr || addr->valueKind() != ir::Value::Kind::Instruction) return -1;
    const auto it =
        slotIndex_.find(static_cast<const ir::Instruction*>(addr));
    return it == slotIndex_.end() ? -1 : it->second;
  }

  template <typename EmitEdge>
  void transferBlock(const ir::BasicBlock& bb, EmitEdge&& emit) {
    Env env = entry_[bb.id];
    // Loads whose value still equals the slot's current abstract state; a
    // store to the slot invalidates them (used for branch refinement).
    std::unordered_map<const ir::Value*, int> liveLoads;

    for (const ir::Instruction* inst : bb.instructions()) {
      switch (inst->opcode()) {
        case Opcode::Store: {
          const ir::Value* addr = inst->operand(1);
          const int slot = trackedSlotOf(addr);
          if (slot >= 0) {
            // Whole-slot write of the slot's scalar type.
            env[slot] = clampToType(valueOf(inst->operand(0)),
                                    slotType(addr));
            invalidate(liveLoads, slot);
            break;
          }
          if (inst->memSpace == ir::AddressSpace::Private) {
            const ir::Instruction* base = baseAllocaOf(addr);
            const int via = base ? trackedSlotOfAlloca(base) : -1;
            if (via >= 0) {
              env[via] = AbstractInt::top();
              invalidate(liveLoads, via);
            } else if (!base) {
              // Unknown private pointer: clobber every tracked slot.
              for (auto& s : env) s = AbstractInt::top();
              liveLoads.clear();
            }
          }
          break;
        }
        case Opcode::CondBr: {
          Env trueEnv = env, falseEnv = env;
          refineEdges(inst, liveLoads, env, &trueEnv, &falseEnv);
          emit(inst->target0, trueEnv);
          emit(inst->target1, falseEnv);
          return;
        }
        case Opcode::Br:
          emit(inst->target0, env);
          return;
        case Opcode::Ret:
          return;
        default: {
          AbstractInt v = transferValue(*inst, env, liveLoads);
          if (inst->id < values_.size()) values_[inst->id] = v;
          break;
        }
      }
    }
    // Block without terminator (malformed): no successors.
  }

  const ir::Type* slotType(const ir::Value* addr) const {
    return static_cast<const ir::Instruction*>(addr)->allocaType;
  }

  int trackedSlotOfAlloca(const ir::Instruction* alloca) const {
    const auto it = slotIndex_.find(alloca);
    return it == slotIndex_.end() ? -1 : it->second;
  }

  static void invalidate(std::unordered_map<const ir::Value*, int>& liveLoads,
                         int slot) {
    for (auto it = liveLoads.begin(); it != liveLoads.end();) {
      it = it->second == slot ? liveLoads.erase(it) : std::next(it);
    }
  }

  AbstractInt transferValue(const ir::Instruction& inst, Env& env,
                            std::unordered_map<const ir::Value*, int>& liveLoads) {
    const ir::Type* t = inst.type();
    const bool intLike = t && (t->isInt() || t->isBool());
    switch (inst.opcode()) {
      case Opcode::Load: {
        const int slot = trackedSlotOf(inst.operand(0));
        if (slot < 0) return AbstractInt::top();
        liveLoads[&inst] = slot;
        return env[slot];
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul: {
        if (!intLike) return AbstractInt::top();
        const Interval a = valueOf(inst.operand(0)).range;
        const Interval b = valueOf(inst.operand(1)).range;
        Interval r;
        switch (inst.opcode()) {
          case Opcode::Add: r = addI(a, b); break;
          case Opcode::Sub: r = subI(a, b); break;
          default: r = mulI(a, b); break;
        }
        return clampToType(AbstractInt::fromRange(r), t);
      }
      case Opcode::Div:
      case Opcode::Rem: {
        if (!intLike) return AbstractInt::top();
        const AbstractInt av = valueOf(inst.operand(0));
        const AbstractInt bv = valueOf(inst.operand(1));
        if (unsignedWide(inst.operand(0)->type()) &&
            (!av.range.isNonNegative() || !bv.range.isNonNegative())) {
          return clampToType(AbstractInt::top(), t);
        }
        Interval r = inst.opcode() == Opcode::Div ? divI(av.range, bv.range)
                                                  : remI(av.range, bv.range);
        // The interpreter defines x/0 and x%0 as 0.
        if (bv.range.containsZero()) r = join(r, Interval::point(0));
        return clampToType(AbstractInt::fromRange(r), t);
      }
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        if (!intLike) return AbstractInt::top();
        const AbstractInt a = valueOf(inst.operand(0));
        const AbstractInt b = valueOf(inst.operand(1));
        AbstractInt r;
        switch (inst.opcode()) {
          case Opcode::And:
            r = {andI(a.range, b.range), andBits(a.bits, b.bits)};
            break;
          case Opcode::Or:
            r = {orI(a.range, b.range), orBits(a.bits, b.bits)};
            break;
          default:
            r = {xorI(a.range, b.range), xorBits(a.bits, b.bits)};
            break;
        }
        return clampToType(r, t);
      }
      case Opcode::Shl: {
        if (!intLike) return AbstractInt::top();
        const AbstractInt a = valueOf(inst.operand(0));
        const AbstractInt b = valueOf(inst.operand(1));
        return clampToType({shlI(a.range, b.range), shlBits(a.bits, b.range)},
                           t);
      }
      case Opcode::Shr: {
        if (!intLike) return AbstractInt::top();
        const AbstractInt a = valueOf(inst.operand(0));
        const AbstractInt b = valueOf(inst.operand(1));
        if (unsignedWide(inst.operand(0)->type()) &&
            !a.range.isNonNegative()) {
          return clampToType(AbstractInt::top(), t);
        }
        return clampToType({shrI(a.range, b.range), shrBits(a.bits, b.range)},
                           t);
      }
      case Opcode::ICmp: {
        const ir::Type* opType = inst.operand(0)->type();
        const AbstractInt a = valueOf(inst.operand(0));
        const AbstractInt b = valueOf(inst.operand(1));
        if (opType->isPointer()) return AbstractInt::fromRange({0, 1});
        const bool signedCmp = opType->isBool() || opType->isSigned();
        if (!signedCmp &&
            (!a.range.isNonNegative() || !b.range.isNonNegative())) {
          return AbstractInt::fromRange({0, 1});
        }
        return AbstractInt::fromRange(cmpI(inst.cmpPred, a.range, b.range))
            .normalized();
      }
      case Opcode::FCmp:
        return AbstractInt::fromRange({0, 1});
      case Opcode::Select: {
        if (!intLike) return AbstractInt::top();
        const Interval c = valueOf(inst.operand(0)).range;
        const AbstractInt a = valueOf(inst.operand(1));
        const AbstractInt b = valueOf(inst.operand(2));
        if (!c.containsZero()) return a;
        if (c.isPoint()) return b;  // exactly zero
        return joinA(a, b);
      }
      case Opcode::Trunc:
      case Opcode::SExt:
        return intLike ? clampToType(valueOf(inst.operand(0)), t)
                       : AbstractInt::top();
      case Opcode::ZExt: {
        if (!intLike) return AbstractInt::top();
        AbstractInt v = valueOf(inst.operand(0));
        if (!v.range.isNonNegative()) v = AbstractInt::top();
        return clampToType(v, t);
      }
      case Opcode::Bitcast: {
        const ir::Type* from = inst.operand(0)->type();
        if (intLike && from && (from->isInt() || from->isBool()) &&
            from->bits() == t->bits()) {
          return clampToType(valueOf(inst.operand(0)), t);
        }
        return AbstractInt::top();
      }
      case Opcode::WorkItemId: {
        // The lowering routes the dimension through a bitcast, so evaluate
        // the operand abstractly and require a single known value.
        const AbstractInt dimVal = valueOf(inst.operand(0));
        if (!dimVal.isPoint()) return AbstractInt::top();
        const std::int64_t dim = dimVal.range.lo;
        if (dim < 0 || dim > 2) return AbstractInt::top();
        const Interval r = seed_.of(
            LeafKey{symOfQuery(inst.wiQuery), static_cast<int>(dim)});
        return clampToType(AbstractInt::fromRange(r), t);
      }
      case Opcode::Call: {
        if (!intLike) return AbstractInt::top();
        const auto& ops = inst.operands();
        switch (inst.mathFunc) {
          case ir::MathFunc::Abs:
            if (ops.size() < 1) return AbstractInt::top();
            return clampToType(
                AbstractInt::fromRange(absRange(valueOf(ops[0]).range)), t);
          case ir::MathFunc::Max:
            if (ops.size() < 2) return AbstractInt::top();
            return clampToType(
                AbstractInt::fromRange(
                    maxI(valueOf(ops[0]).range, valueOf(ops[1]).range)),
                t);
          case ir::MathFunc::Min:
            if (ops.size() < 2) return AbstractInt::top();
            return clampToType(
                AbstractInt::fromRange(
                    minI(valueOf(ops[0]).range, valueOf(ops[1]).range)),
                t);
          case ir::MathFunc::Clamp:
            if (ops.size() < 3) return AbstractInt::top();
            return clampToType(
                AbstractInt::fromRange(
                    minI(maxI(valueOf(ops[0]).range, valueOf(ops[1]).range),
                         valueOf(ops[2]).range)),
                t);
          default:
            return clampToType(AbstractInt::top(), t);
        }
      }
      default:
        return AbstractInt::top();
    }
  }

  /// Branch refinement: when the condition is an ICmp over live slot loads,
  /// the slot's value is narrowed on each outgoing edge.
  void refineEdges(const ir::Instruction* condBr,
                   const std::unordered_map<const ir::Value*, int>& liveLoads,
                   const Env& env, Env* trueEnv, Env* falseEnv) {
    const ir::Value* cond = condBr->operand(0);
    if (cond->valueKind() != ir::Value::Kind::Instruction) return;
    const auto* cmp = static_cast<const ir::Instruction*>(cond);
    if (cmp->opcode() != Opcode::ICmp) return;
    const ir::Type* opType = cmp->operand(0)->type();
    const bool signedCmp =
        !opType->isPointer() && (opType->isBool() || opType->isSigned());
    if (!signedCmp) {
      const Interval a = valueOf(cmp->operand(0)).range;
      const Interval b = valueOf(cmp->operand(1)).range;
      if (opType->isPointer() || !a.isNonNegative() || !b.isNonNegative()) {
        return;  // unsigned order may disagree with the signed intervals
      }
    }
    for (int side = 0; side < 2; ++side) {
      const ir::Value* refined = cmp->operand(side);
      const ir::Value* other = cmp->operand(1 - side);
      const auto it = liveLoads.find(refined);
      if (it == liveLoads.end()) continue;
      const int slot = it->second;
      const ir::CmpPred pred =
          side == 0 ? cmp->cmpPred : swapPred(cmp->cmpPred);
      const Interval otherR = valueOf(other).range;
      (*trueEnv)[slot] = AbstractInt{
          assumeCmp(pred, env[slot].range, otherR), env[slot].bits}
                             .normalized();
      (*falseEnv)[slot] = AbstractInt{
          assumeCmp(negatePred(pred), env[slot].range, otherR),
          env[slot].bits}
                              .normalized();
    }
  }

  const ir::Function& fn_;
  const LeafRanges& seed_;
  std::vector<AbstractInt> values_;
  std::unordered_map<const ir::Instruction*, int> slotIndex_;
  std::size_t slotCount_ = 0;
  std::vector<Env> entry_;
  std::vector<bool> reachable_;
  std::vector<int> visits_;
};

}  // namespace

ValueRangeResult analyzeRanges(const ir::Function& fn, const LeafRanges& seed) {
  return Engine(fn, seed).run();
}

}  // namespace flexcl::analysis::dataflow
