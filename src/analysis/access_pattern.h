// Static Table 1 access-pattern classification (paper §3.4, without the
// interpreter).
//
// The symbolic KernelSummary gives every global load/store a byte-offset
// expression and the control tree it executes under. This module expands
// that into a synthetic per-work-item access stream for the same work-groups
// the profiler would run, replays it through the DRAM bank/row state machine,
// and majority-votes a pattern per instruction. When a dynamic profile is
// available the same replay runs over the profiled trace and the two
// classifications are cross-checked; every divergence is reported.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "analysis/dataflow/trip_count.h"
#include "analysis/symbolic.h"
#include "dram/address_map.h"
#include "dram/pattern.h"
#include "interp/profiler.h"

namespace flexcl::analysis {

struct CrossCheckOptions {
  dram::DramConfig dram;
  /// Work-groups to expand statically; matched against the profiled group
  /// count when a profile is supplied.
  std::uint64_t groupsToExpand = 2;
  /// Shared trip-count knobs (fallback for unresolvable loops, expansion
  /// cap) — the same struct the model's resolver consumes, so the static
  /// and model paths cannot silently diverge.
  dataflow::TripCountConfig trips;
  /// Safety cap on static expansion.
  std::uint64_t maxStreamEvents = 1ull << 22;
};

/// Per-instruction pattern histogram (one side of the cross-check).
struct InstPattern {
  unsigned instId = 0;
  SourceLocation loc;
  bool isWrite = false;
  std::array<std::uint64_t, dram::kPatternCount> counts{};
  std::uint64_t events = 0;        ///< classified accesses
  std::uint64_t opaqueEvents = 0;  ///< static side: offset not evaluable

  /// Most frequent pattern index, or -1 when no event was classified.
  [[nodiscard]] int majority() const;
};

/// One instruction where the static majority disagrees with the profiled one.
struct PatternDivergence {
  unsigned instId = 0;
  SourceLocation loc;
  int staticPattern = -1;    ///< dram::AccessPattern index; -1 unclassified
  int profiledPattern = -1;
  std::uint64_t profiledEvents = 0;
  std::string offsetText;    ///< symbolic offset, for the diagnostic
};

struct PatternCrossCheck {
  std::vector<InstPattern> staticByInst;
  std::vector<InstPattern> profiledByInst;  ///< empty without a profile
  std::vector<PatternDivergence> divergences;
  /// Fraction of profiled global-access events whose instruction's static
  /// majority matches the profiled majority. 1.0 when there is nothing to
  /// compare.
  double agreement = 1.0;
  std::uint64_t staticStreamEvents = 0;
  std::uint64_t profiledStreamEvents = 0;
  /// Static expansion hit a safety cap; static counts are partial.
  bool truncated = false;
};

/// Expands and classifies. `args` supplies buffer indices and scalar values
/// for offset evaluation (may be empty: accesses whose offsets need scalar
/// args then count as opaque). `profile` may be null (static side only).
PatternCrossCheck crossCheckPatterns(const KernelSummary& summary,
                                     const interp::NdRange& range,
                                     const std::vector<interp::KernelArg>& args,
                                     const interp::KernelProfile* profile,
                                     const CrossCheckOptions& options);

}  // namespace flexcl::analysis
