// Entry point of the static kernel analysis subsystem.
//
// runLintPasses() runs the standard pass pipeline over a lowered kernel:
//   verifier          — extended IR invariants (re-reported as findings)
//   trip-count        — loops neither the induction matcher nor the dataflow
//                       trip resolver can bound statically
//   barrier           — barriers under divergent control flow (divergence
//                       provably-uniform branches are discharged)
//   uniform-branch    — reports each such discharge as a note
//   local-dependence  — cross-work-item RAW dependences through local memory
//                       (GCD/Banerjee dependence tester)
//   access-bounds     — byte-extent facts + provable out-of-bounds global
//                       accesses under the launch geometry
//   loop-overflow     — loop-bound arithmetic that can exceed int64
//   access-pattern    — static Table 1 classification (+ profiled cross-check)
//
// With only a Function, the lint is purely static. Supplying range/args
// enables the static access-stream expansion; additionally supplying buffers
// (with profileCrossCheck set) runs the profiling interpreter and
// cross-checks the static classification against the profiled one.
#pragma once

#include "analysis/access_pattern.h"
#include "analysis/report.h"

namespace flexcl::analysis {

struct LintOptions {
  /// Launch geometry for static stream expansion (null = static-only lint).
  const interp::NdRange* range = nullptr;
  /// Kernel arguments: buffer indices and scalar values for offset
  /// evaluation. Null is treated as "no scalar bindings".
  const std::vector<interp::KernelArg>* args = nullptr;
  /// Buffer contents for the profiling run (null disables the cross-check).
  const std::vector<std::vector<std::uint8_t>>* buffers = nullptr;
  /// Run the profiling interpreter and cross-check static vs profiled
  /// classification (needs range, args and buffers).
  bool profileCrossCheck = true;
  /// Work-groups to profile / expand (the paper profiles "a few").
  std::uint64_t groupsToProfile = 2;
  CrossCheckOptions patterns;
};

/// Runs the standard lint pipeline. `fn` must be lowered and renumbered (as
/// produced by ir::compileOpenCl).
LintReport runLintPasses(const ir::Function& fn, const LintOptions& options = {});

}  // namespace flexcl::analysis
