// Symbolic execution over the IR region tree (static kernel analysis).
//
// Walks a kernel once, tracking private scalar slots as symbolic expressions
// over NDRange queries, scalar arguments and loop iteration counters. The
// result is a KernelSummary: every global/local memory access with a symbolic
// byte-offset expression and buffer provenance, the control tree the accesses
// sit in (loops with per-iteration conditions, guarded branches), and the
// loop/barrier facts the lint passes report on. This is what lets the model
// classify Table 1 access patterns without running the interpreter.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ir.h"

namespace flexcl::analysis {

// ---------------------------------------------------------------------------
// Symbolic expressions
// ---------------------------------------------------------------------------

/// Leaf symbols. The `index` of a leaf is the NDRange dimension (id/size
/// kinds), the kernel argument index (ScalarArg) or the loop id (LoopIter).
enum class Sym : std::uint8_t {
  GlobalId, LocalId, GroupId, GlobalSize, LocalSize, NumGroups,
  ScalarArg,
  LoopIter,
};

struct SymExpr;
using SymExprPtr = std::shared_ptr<const SymExpr>;

/// Expression tree over int64 semantics. Opaque marks values the analysis
/// cannot see through (data loaded from memory, float-derived values);
/// evaluation of any expression containing Opaque fails.
struct SymExpr {
  enum class Op : std::uint8_t {
    Const, Leaf,
    Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor,
    Cmp,     // pred(a, b) -> 0/1
    Select,  // c ? a : b
    Opaque,
  };
  Op op = Op::Opaque;
  std::int64_t value = 0;             // Const
  Sym sym = Sym::GlobalId;            // Leaf
  int index = 0;                      // Leaf payload (see Sym)
  ir::CmpPred pred = ir::CmpPred::Eq; // Cmp
  SymExprPtr a, b, c;
};

SymExprPtr symConst(std::int64_t v);
SymExprPtr symLeaf(Sym s, int index);
SymExprPtr symOpaque();
/// Binary node with local constant folding and +0/*1 simplification.
SymExprPtr symBinary(SymExpr::Op op, SymExprPtr lhs, SymExprPtr rhs);
SymExprPtr symCmp(ir::CmpPred pred, SymExprPtr lhs, SymExprPtr rhs);
SymExprPtr symSelect(SymExprPtr cond, SymExprPtr thenV, SymExprPtr elseV);

/// Concrete bindings for evaluation. Loop iteration values are looked up by
/// loopId in `loopIters` (missing id -> evaluation fails).
struct SymBinding {
  std::array<std::int64_t, 3> globalId{0, 0, 0};
  std::array<std::int64_t, 3> localId{0, 0, 0};
  std::array<std::int64_t, 3> groupId{0, 0, 0};
  std::array<std::int64_t, 3> globalSize{1, 1, 1};
  std::array<std::int64_t, 3> localSize{1, 1, 1};
  std::array<std::int64_t, 3> numGroups{1, 1, 1};
  /// Integer values of scalar kernel args by argument index; entries for
  /// non-integer args are ignored. May be empty (evaluation of ScalarArg
  /// leaves then fails).
  std::unordered_map<int, std::int64_t> scalarArgs;
  std::unordered_map<int, std::int64_t> loopIters;
};

/// Evaluates under `bind`; nullopt when the expression contains Opaque or an
/// unbound leaf, or divides by zero.
std::optional<std::int64_t> symEval(const SymExpr* e, const SymBinding& bind);

/// True when the tree contains an Opaque node.
bool symIsOpaque(const SymExpr* e);
/// True when the tree contains a leaf of the given kind.
bool symMentions(const SymExpr* e, Sym kind);
/// Compact rendering for diagnostics, e.g. "((gid0*4)+(arg2*16))".
std::string symStr(const SymExpr* e);

// ---------------------------------------------------------------------------
// Kernel summary
// ---------------------------------------------------------------------------

/// What a pointer expression is based on.
enum class PtrBase : std::uint8_t {
  None,          ///< not a pointer
  BufferArg,     ///< __global/__constant pointer argument (index = arg index)
  LocalArg,      ///< __local pointer argument (index = arg index)
  LocalAlloca,   ///< __local variable (index = position in fn.localAllocas)
  PrivateAlloca, ///< private slot/array (index unused)
  Unknown,
};

/// One static global/local memory access site (a Load or Store instruction),
/// with its byte offset relative to the base as a symbolic expression.
struct MemAccessInfo {
  const ir::Instruction* inst = nullptr;
  unsigned instId = 0;
  SourceLocation loc;
  bool isWrite = false;
  ir::AddressSpace space = ir::AddressSpace::Global;
  std::uint32_t size = 0;  ///< bytes moved
  PtrBase base = PtrBase::Unknown;
  int baseIndex = -1;
  SymExprPtr offset;       ///< byte offset from base; contains Opaque when unknown
  bool divergent = false;  ///< under id-dependent or opaque control flow
};

/// Node of the access/control tree used to statically expand the per-work-item
/// access stream. Children of a Cond node split at `thenCount`. Barrier and
/// Return nodes mark work-group synchronisation points and kernel exit in
/// program order (the static profile synthesizer segments per-work-item event
/// streams at them); the pattern expander ignores both.
struct AccessTreeNode {
  enum class Kind : std::uint8_t { Access, Cond, Loop, Barrier, Return };
  Kind kind = Kind::Access;

  int accessIndex = -1;  // Access: index into KernelSummary::accesses

  // Cond
  SymExprPtr cond;          // Opaque-containing when not statically known
  std::size_t thenCount = 0;

  // Loop
  int loopId = -1;
  SymExprPtr loopCond;      // re-evaluated per iteration; null for for(;;)
  bool condFirst = true;    // false for do-loops (body runs before the check)
  std::int64_t staticTrip = -1;
  /// condFirst loops: number of leading children emitted by the condition
  /// block each iteration (the interpreter runs that block once more after
  /// the final failing check; the synthesizer replays exactly that prefix).
  std::size_t condChildCount = 0;

  std::vector<AccessTreeNode> children;
};

struct LoopFact {
  int loopId = -1;
  SourceLocation loc;
  std::int64_t staticTrip = -1;
  /// Condition is a non-opaque symbolic expression (resolvable once launch
  /// constants are known).
  bool condSymbolic = false;
  /// Trip count varies per work-item (condition mentions global/local id).
  bool dependsOnId = false;
};

struct BarrierFact {
  const ir::Instruction* inst = nullptr;
  SourceLocation loc;
  bool underCondition = false;
  /// Enclosing condition mentions get_global_id/get_local_id: work-items of
  /// one group can disagree on reaching the barrier.
  bool condMentionsId = false;
  /// Enclosing condition is data-dependent (opaque): possibly divergent.
  bool condOpaque = false;
  /// The enclosing condition expressions themselves (innermost last), for
  /// range-based uniformity discharge (lint's provably-uniform-branch).
  std::vector<SymExprPtr> conds;
};

struct KernelSummary {
  const ir::Function* fn = nullptr;
  std::vector<MemAccessInfo> accesses;
  std::vector<AccessTreeNode> roots;  ///< program-order access/control tree
  std::vector<LoopFact> loops;
  std::vector<BarrierFact> barriers;

  [[nodiscard]] std::size_t globalAccessCount() const {
    std::size_t n = 0;
    for (const auto& a : accesses) {
      if (a.space == ir::AddressSpace::Global ||
          a.space == ir::AddressSpace::Constant) {
        ++n;
      }
    }
    return n;
  }
};

/// Runs the symbolic walk. Requires a lowered kernel with a region tree and
/// renumbered instructions (as produced by ir::compileOpenCl).
KernelSummary summarizeKernel(const ir::Function& fn);

}  // namespace flexcl::analysis
