// Lint report: the structured output of the static analysis passes.
//
// A LintReport aggregates every pass's findings plus the analysis facts the
// DSE feasibility check needs (required work-group size, cross-work-item
// dependences, classification results). It renders to human-readable text,
// to JSON (for tooling), and into a support::DiagnosticEngine.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/access_pattern.h"
#include "model/design_point.h"
#include "support/diagnostics.h"

namespace flexcl::analysis {

/// One diagnostic from a lint pass.
struct LintFinding {
  std::string pass;  ///< emitting pass name (e.g. "verifier")
  std::string rule;  ///< stable kebab-case rule id (e.g. "def-before-use")
  DiagSeverity severity = DiagSeverity::Warning;
  SourceLocation loc;
  std::string message;
  int instId = -1;  ///< IR instruction id when the finding is access-specific
  int loopId = -1;  ///< loop id when the finding is loop-specific
};

/// A statically detected cross-work-item RAW dependence through local memory
/// (Figure 3's B[tid-1] shape): work-item t+distance reads what work-item t
/// stored.
struct CrossWiDependence {
  unsigned storeInstId = 0;
  unsigned loadInstId = 0;
  std::int64_t distance = 0;  ///< in work-items, > 0
  SourceLocation loc;         ///< location of the load
};

struct LintReport {
  std::string kernelName;
  std::vector<LintFinding> findings;

  // Feasibility inputs.
  std::array<std::uint32_t, 3> reqdWorkGroupSize = {0, 0, 0};
  bool usesBarrier = false;
  std::vector<CrossWiDependence> crossWiDeps;

  // Analysis statistics.
  std::size_t loopCount = 0;
  std::size_t unresolvedTripLoops = 0;
  std::size_t globalAccessSites = 0;
  std::size_t classifiedSites = 0;  ///< sites with a static pattern majority
  PatternCrossCheck patterns;
  bool crossChecked = false;  ///< profiled comparison ran

  [[nodiscard]] std::size_t errorCount() const;
  [[nodiscard]] std::size_t warningCount() const;
  [[nodiscard]] bool hasErrors() const { return errorCount() > 0; }

  /// Forwards every finding into `diags` as "[pass/rule] message".
  void emitTo(DiagnosticEngine& diags) const;
};

/// Static feasibility of one design point for this kernel.
struct Feasibility {
  bool feasible = true;
  /// Pipeline-mode point whose initiation interval is bound by a
  /// cross-work-item recurrence (still feasible, but RecMII-limited).
  bool recMiiBound = false;
  std::string reason;  ///< set when infeasible or RecMII-bound
};

/// Checks a design point against the report: lint errors make every point
/// infeasible, a reqd_work_group_size mismatch makes that point infeasible,
/// and pipeline-mode points with cross-work-item dependences are flagged
/// RecMII-bound.
Feasibility checkDesign(const LintReport& report,
                        const model::DesignPoint& design);

/// Human-readable multi-line rendering.
std::string renderText(const LintReport& report);
/// JSON rendering (single object; see README for the schema).
std::string renderJson(const LintReport& report);

}  // namespace flexcl::analysis
